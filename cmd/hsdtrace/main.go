// Command hsdtrace renders ASCII execution timelines of simulated CALU
// runs — the tool behind the paper's profiling figures (1, 4, 14, 15):
//
//	hsdtrace -machine amd48 -workers 16 -n 2500 -layout 2l -sched static
//	hsdtrace -machine amd48 -workers 16 -n 2500 -layout cm -sched dynamic
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/layout"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	machineName := flag.String("machine", "amd48", "machine model: intel16 | amd48")
	workers := flag.Int("workers", 16, "cores used")
	n := flag.Int("n", 2500, "matrix dimension")
	b := flag.Int("b", 100, "block size")
	layoutName := flag.String("layout", "2l", "layout: cm | bcl | 2l")
	schedName := flag.String("sched", "static", "scheduler: static | dynamic | hybrid | worksteal")
	dratio := flag.Float64("dratio", 0.1, "dynamic fraction for hybrid")
	width := flag.Int("width", 160, "gantt width in characters")
	seed := flag.Int64("seed", 42, "noise seed")
	flag.Parse()

	var m sim.Machine
	switch *machineName {
	case "intel16":
		m = sim.IntelXeon16()
	case "amd48":
		m = sim.AMDOpteron48()
	default:
		fmt.Fprintf(os.Stderr, "hsdtrace: unknown machine %q\n", *machineName)
		os.Exit(2)
	}
	var kind layout.Kind
	switch strings.ToLower(*layoutName) {
	case "cm":
		kind = layout.CM
	case "bcl":
		kind = layout.BCL
	case "2l", "2l-bl":
		kind = layout.TwoLevel
	default:
		fmt.Fprintf(os.Stderr, "hsdtrace: unknown layout %q\n", *layoutName)
		os.Exit(2)
	}
	nb := (*n + *b - 1) / *b
	var pol sched.Policy
	ns := nb
	switch strings.ToLower(*schedName) {
	case "static":
		pol = sched.NewStatic()
	case "dynamic":
		pol = sched.NewDynamic()
		ns = 0
	case "hybrid":
		pol = sched.NewHybrid()
		ns = nb - int(float64(nb)**dratio+0.5)
	case "worksteal", "ws":
		pol = sched.NewWorkStealing(*seed)
	default:
		fmt.Fprintf(os.Stderr, "hsdtrace: unknown scheduler %q\n", *schedName)
		os.Exit(2)
	}
	group := 1
	if kind == layout.BCL {
		group = 3
	}
	tr := trace.New(*workers)
	res, err := sim.FactorSim(*n, *n, *b, ns, group, sim.Config{
		Machine: m, Workers: *workers, Layout: kind, Policy: pol, Trace: tr, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hsdtrace: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s %s/%s n=%d b=%d workers=%d: %.4fs, %.1f Gflop/s, idle %.1f%%\n",
		m.Name, kind, *schedName, *n, *b, *workers,
		res.Makespan, res.Gflops, 100*tr.IdleFraction())
	fmt.Printf("90%% of workers permanently idle after %.0f%% of the makespan\n",
		100*tr.PermanentIdlePoint(0.9))
	fmt.Println("P=panel preprocessing  F=pivot factor  L/U=panel factors  S=update  .=idle")
	fmt.Print(tr.Gantt(*width))
}

// Command hsdrouter is the cluster front door over a set of hsdserve
// engine shards: it consistent-hashes factorization keys onto shards
// (virtual-node hash ring), factors each key on its owner, replicates
// the serialized factorization to -replicas shards for solve
// read-scaling, and routes solves to any replica with failover. Shard
// lifecycle is handled live: health probes evict unreachable shards
// from the ring (solves fail over to surviving replicas),
// /v1/admin/join rebalances the ring and migrates reassigned keys to a
// new shard, and /v1/admin/drain retires a shard after handing its
// kept factorizations to the owners under the shrunken ring.
//
//	hsdrouter -addr :8090 \
//	    -shards s1=http://10.0.0.1:8080,s2=http://10.0.0.2:8080,s3=http://10.0.0.3:8080 \
//	    -replicas 2 -probe 2s
//
// Clients speak the same /v1/factor, /v1/cholesky, /v1/solve,
// /v1/cholesky/solve and /v1/stats surface as a single hsdserve —
// the router assigns ids, so factor requests must not carry one.
// /v1/stats aggregates per-shard request counts, failovers,
// replication lag and the ring generation alongside each live shard's
// own stats. A solve whose every holding shard is gone returns a typed
// 503 with "ownerSetDown": true.
//
//	curl -s localhost:8090/v1/admin/join -H 'Content-Type: application/json' \
//	    -d '{"name":"s4","url":"http://10.0.0.4:8080"}'
//	curl -s localhost:8090/v1/admin/drain -H 'Content-Type: application/json' \
//	    -d '{"name":"s2"}'
//
// SIGINT or SIGTERM starts a graceful shutdown: stop accepting
// connections, finish inflight requests (up to -shutdown), stop the
// probe loop.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

// parseShards turns "s1=http://host:port,s2=..." into ShardInfos.
func parseShards(spec string) ([]cluster.ShardInfo, error) {
	var out []cluster.ShardInfo
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad shard %q, want name=url", part)
		}
		out = append(out, cluster.ShardInfo{Name: name, URL: strings.TrimSuffix(url, "/")})
	}
	return out, nil
}

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	shards := flag.String("shards", "", "comma-separated name=url shard list (required)")
	replicas := flag.Int("replicas", 2, "shards holding each factorization (owner + replicas-1)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per shard on the hash ring (0 = default)")
	probe := flag.Duration("probe", 2*time.Second, "health-probe interval (0 disables probing)")
	failAfter := flag.Int("failafter", 3, "consecutive failures before a shard is evicted from the ring")
	maxBody := flag.Int64("maxbody", 256<<20, "request body cap in bytes")
	shutdown := flag.Duration("shutdown", 30*time.Second, "graceful-shutdown deadline for inflight requests")
	flag.Parse()

	infos, err := parseShards(*shards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hsdrouter: %v\n", err)
		os.Exit(2)
	}
	if len(infos) == 0 {
		fmt.Fprintf(os.Stderr, "hsdrouter: -shards is required (name=url,name=url,...)\n")
		os.Exit(2)
	}

	rt, err := cluster.NewRouter(cluster.RouterOptions{
		Shards:        infos,
		Replicas:      *replicas,
		VNodes:        *vnodes,
		ProbeInterval: *probe,
		FailAfter:     *failAfter,
		MaxBody:       *maxBody,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hsdrouter: %v\n", err)
		os.Exit(2)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("hsdrouter: %d shards, replicas=%d, listening on %s", len(infos), *replicas, *addr)

	select {
	case err := <-errc:
		rt.Close()
		log.Fatalf("hsdrouter: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	log.Printf("hsdrouter: signal received, draining inflight requests (up to %s)", *shutdown)
	sctx, cancel := context.WithTimeout(context.Background(), *shutdown)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Printf("hsdrouter: shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("hsdrouter: serve: %v", err)
	}
	rt.Close()
	log.Printf("hsdrouter: bye")
}

// Command hsdserve exposes the resident factorization engine over
// HTTP/JSON: one long-lived worker pool serving concurrent Factor and
// Solve requests with the two-level hybrid static/dynamic scheduling
// of internal/engine (static per-job worker reservations, dynamic
// lending across jobs). Admission is traffic-shaped: small jobs ride
// an express lane and are fused into composite DAGs sharing one
// reservation, big jobs are bounded to a share of the pool, and jobs
// may carry a deadline — infeasible ones are shed before queueing.
//
//	hsdserve -addr :8080 -pool 8 -dratio 0.25 -maxinflight 32
//
// Factor a random 512x512 test matrix with a 2-worker share and keep
// the factorization resident for later solves:
//
//	curl -s localhost:8080/v1/factor -H 'Content-Type: application/json' \
//	    -d '{"n":512,"seed":7,"workers":2}'
//
// Factor a caller-supplied matrix (row-major flat array) and solve,
// single or many right-hand sides (column-major flat, nrhs columns):
//
//	curl -s localhost:8080/v1/factor -H 'Content-Type: application/json' \
//	    -d '{"rows":2,"cols":2,"data":[4,3,6,3],"residual":true}'
//	curl -s localhost:8080/v1/solve -H 'Content-Type: application/json' \
//	    -d '{"id":"f-1","b":[10,12]}'
//
// Cholesky jobs ride the same pool via /v1/cholesky and
// /v1/cholesky/solve; /v1/stats reports engine, class and store
// snapshots. The full endpoint semantics — traffic classes, deadlines,
// 405/413/415/422/429/503 behaviour, the cluster admin plane
// (/v1/admin/export, /v1/admin/import, /v1/admin/drain) and the
// /healthz and /readyz probes — live in internal/serve; this binary
// only parses flags, owns the engine and handles signals: SIGINT or
// SIGTERM starts a graceful shutdown that stops accepting connections,
// waits up to -shutdown for inflight requests, then closes the engine.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	pool := flag.Int("pool", 0, "resident worker pool size (0 = NumCPU)")
	dratio := flag.Float64("dratio", 0.25, "inter-job dynamic ratio (0 fully static .. 1 fully dynamic)")
	maxInflight := flag.Int("maxinflight", 0, "admission bound (0 = 4*pool)")
	keep := flag.Int("keep", 64, "factorizations kept resident for /v1/solve (>= 1)")
	maxBody := flag.Int64("maxbody", serve.DefaultMaxBody, "request body cap in bytes")
	memBudget := flag.Int64("membudget", 0, "resident factorization memory budget in bytes (0 = unbounded)")
	ttl := flag.Duration("ttl", 0, "idle expiry of resident factorizations (0 = never)")
	shutdown := flag.Duration("shutdown", 30*time.Second, "graceful-shutdown deadline for inflight requests")
	flag.Parse()
	if *keep < 1 {
		fmt.Fprintf(os.Stderr, "hsdserve: -keep must be >= 1 (every /v1/factor reply references a kept factorization)\n")
		os.Exit(2)
	}
	if *maxBody < 1 {
		fmt.Fprintf(os.Stderr, "hsdserve: -maxbody must be >= 1\n")
		os.Exit(2)
	}

	eng, err := engine.New(engine.Options{
		Workers: *pool, MaxInflight: *maxInflight, DynamicRatio: *dratio,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hsdserve: %v\n", err)
		os.Exit(2)
	}

	s := serve.New(eng, serve.Options{
		Keep: *keep, MaxBody: *maxBody, MemBudget: *memBudget, TTL: *ttl,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		// Generous body/response windows: factor payloads can be large
		// and jobs queue behind the admission bound, but no connection
		// may sit on a goroutine forever.
		ReadTimeout:  5 * time.Minute,
		WriteTimeout: 5 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("hsdserve: engine up (%+v), listening on %s", eng.Stats(), *addr)

	select {
	case err := <-errc:
		eng.Close()
		log.Fatalf("hsdserve: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	log.Printf("hsdserve: signal received, draining inflight requests (up to %s)", *shutdown)
	sctx, cancel := context.WithTimeout(context.Background(), *shutdown)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Printf("hsdserve: shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("hsdserve: serve: %v", err)
	}
	eng.Close()
	log.Printf("hsdserve: engine closed, bye")
}

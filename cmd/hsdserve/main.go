// Command hsdserve exposes the resident factorization engine over
// HTTP/JSON: one long-lived worker pool serving concurrent Factor and
// Solve requests with the two-level hybrid static/dynamic scheduling
// of internal/engine (static per-job worker reservations, dynamic
// lending across jobs). Admission is traffic-shaped: small jobs ride
// an express lane and are fused into composite DAGs sharing one
// reservation, big jobs are bounded to a share of the pool, and jobs
// may carry a deadline — infeasible ones are shed before queueing.
//
//	hsdserve -addr :8080 -pool 8 -dratio 0.25 -maxinflight 32
//
// Factor a random 512x512 test matrix with a 2-worker share and keep
// the factorization resident for later solves:
//
//	curl -s localhost:8080/v1/factor -H 'Content-Type: application/json' \
//	    -d '{"n":512,"seed":7,"workers":2}'
//
// Factor a caller-supplied matrix (row-major flat array) and solve,
// single or many right-hand sides (column-major flat, nrhs columns):
//
//	curl -s localhost:8080/v1/factor -H 'Content-Type: application/json' \
//	    -d '{"rows":2,"cols":2,"data":[4,3,6,3],"residual":true}'
//	curl -s localhost:8080/v1/solve -H 'Content-Type: application/json' \
//	    -d '{"id":"f-1","b":[10,12]}'
//	curl -s localhost:8080/v1/solve -H 'Content-Type: application/json' \
//	    -d '{"id":"f-1","b":[10,12,4,3],"nrhs":2,"workers":2}'
//
// Cholesky jobs ride the same pool (n/seed generates a random SPD test
// matrix; data must be SPD, lower triangle read):
//
//	curl -s localhost:8080/v1/cholesky -H 'Content-Type: application/json' \
//	    -d '{"n":512,"seed":7,"workers":2}'
//	curl -s localhost:8080/v1/cholesky/solve -H 'Content-Type: application/json' \
//	    -d '{"id":"c-1","b":[...]}'
//	curl -s localhost:8080/v1/stats
//
// Traffic shaping: every job request takes "class" ("auto", "small",
// "large"; default auto classifies by estimated flops) and
// "deadlineMs", a submit-relative SLO. A request whose estimated
// service time already exceeds its deadline is shed with a cheap 503
// (Retry-After set) before it consumes a worker reservation:
//
//	curl -s localhost:8080/v1/factor -H 'Content-Type: application/json' \
//	    -d '{"n":64,"seed":1,"class":"small","deadlineMs":250}'
//
// Mutating endpoints are POST-only (405 otherwise), require a JSON
// Content-Type when one is sent (415 otherwise), cap bodies at
// -maxbody bytes (413) and reject trailing data after the JSON value
// (400). Saturation (admission queue at -maxinflight) returns 429 so
// load balancers can back off; a shed deadline returns 503; a solve
// against a degraded factorization returns 422 with the solvable
// prefix. Factorizations are kept resident under -keep / -membudget
// with least-recently-used eviction and an optional -ttl idle expiry.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"mime"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro"
)

// defaultMaxBody caps request bodies (a 2048x2048 JSON matrix is
// ~90 MB; we stop well before a streaming client can grow memory
// without bound). Override with -maxbody.
const defaultMaxBody = 256 << 20

// stored is one resident factorization: exactly one of lu/chol is set.
type stored struct {
	lu   *repro.Factorization
	chol *repro.CholeskyFactorization
}

// n returns the order of the stored system.
func (st stored) n() int {
	if st.lu != nil {
		return st.lu.L.Rows
	}
	return st.chol.L.Rows
}

// solvable returns the factorization behind the engine's Solvable
// interface.
func (st stored) solvable() repro.Solvable {
	if st.lu != nil {
		return st.lu
	}
	return st.chol
}

// sizeBytes estimates the resident cost of the factors (the dominant
// allocations; pivot vectors and metadata are noise at this scale).
func (st stored) sizeBytes() int64 {
	if st.lu != nil {
		return int64(len(st.lu.L.Data)+len(st.lu.U.Data)) * 8
	}
	return int64(len(st.chol.L.Data)) * 8
}

// entry is one resident factorization plus its eviction bookkeeping.
type entry struct {
	st    stored
	bytes int64
	last  time.Time // last store or lookup; drives TTL expiry
}

// server wires the engine to the HTTP mux and owns the factorization
// store: an LRU bounded by both entry count (keep) and estimated bytes
// (memBudget, 0 = unbounded), with optional idle-TTL expiry.
type server struct {
	eng       *repro.Engine
	maxBody   int64
	memBudget int64
	ttl       time.Duration

	mu    sync.Mutex
	next  int
	keep  int
	bytes int64
	order []string // LRU order: front = least recently used
	facs  map[string]*entry
}

// newServer builds a server around an engine. keep must be >= 1;
// memBudget and ttl of 0 disable the byte bound and idle expiry.
func newServer(eng *repro.Engine, keep int, maxBody, memBudget int64, ttl time.Duration) *server {
	return &server{
		eng: eng, keep: keep, maxBody: maxBody,
		memBudget: memBudget, ttl: ttl,
		facs: map[string]*entry{},
	}
}

type factorRequest struct {
	// Either a generated test matrix ...
	N    int   `json:"n"`
	Seed int64 `json:"seed"`
	// ... or caller-supplied data (row-major, rows*cols entries).
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`

	Block        int     `json:"block"`
	Workers      int     `json:"workers"`
	Scheduler    string  `json:"scheduler"`
	Layout       string  `json:"layout"`
	DynamicRatio float64 `json:"dynamicRatio"`
	// Class routes the job in the engine's two-lane admission: "auto"
	// (default), "small" or "large".
	Class string `json:"class"`
	// DeadlineMs is the submit-relative SLO; jobs the engine estimates
	// cannot meet it are shed with 503. 0 means no deadline.
	DeadlineMs float64 `json:"deadlineMs"`
	// Residual requests the O(n^3) backward-error check in the reply.
	Residual bool `json:"residual"`
}

type factorReply struct {
	ID          string   `json:"id"`
	Class       string   `json:"class"`
	Granted     int      `json:"granted"`
	QueueWaitMs float64  `json:"queueWaitMs"`
	SpanMs      float64  `json:"spanMs"`
	Residual    *float64 `json:"residual,omitempty"`
}

type solveRequest struct {
	ID string `json:"id"`
	// B is the right-hand side: n entries for one system, n*nrhs
	// entries (column-major) when NRHS > 1.
	B    []float64 `json:"b"`
	NRHS int       `json:"nrhs"`

	Block        int     `json:"block"`
	Workers      int     `json:"workers"`
	Scheduler    string  `json:"scheduler"`
	DynamicRatio float64 `json:"dynamicRatio"`
	Class        string  `json:"class"`
	DeadlineMs   float64 `json:"deadlineMs"`
}

type solveReply struct {
	ID string `json:"id"`
	// X is the solution, column-major n x nrhs.
	X           []float64 `json:"x"`
	NRHS        int       `json:"nrhs"`
	Class       string    `json:"class"`
	Granted     int       `json:"granted"`
	QueueWaitMs float64   `json:"queueWaitMs"`
	SpanMs      float64   `json:"spanMs"`
}

func schedulerOptions(name string, opt *repro.Options) error {
	switch strings.ToLower(name) {
	case "", "hybrid":
		opt.Scheduler = repro.ScheduleHybrid
		if opt.DynamicRatio == 0 {
			opt.DynamicRatio = 0.1
		}
	case "static":
		opt.Scheduler = repro.ScheduleStatic
	case "dynamic":
		opt.Scheduler = repro.ScheduleDynamic
	case "worksteal":
		opt.Scheduler = repro.ScheduleWorkStealing
	default:
		return fmt.Errorf("unknown scheduler %q", name)
	}
	return nil
}

// classOptions maps the request's traffic-shaping fields onto Options.
func classOptions(class string, deadlineMs float64, opt *repro.Options) error {
	switch strings.ToLower(class) {
	case "", "auto":
		opt.Class = repro.ClassAuto
	case "small":
		opt.Class = repro.ClassSmall
	case "large", "big":
		opt.Class = repro.ClassLarge
	default:
		return fmt.Errorf("unknown class %q (use auto, small or large)", class)
	}
	if deadlineMs < 0 {
		return fmt.Errorf("deadlineMs must be >= 0, got %g", deadlineMs)
	}
	opt.Deadline = time.Duration(deadlineMs * float64(time.Millisecond))
	return nil
}

func (s *server) options(req *factorRequest) (repro.Options, error) {
	opt := repro.Options{
		Block:        req.Block,
		Workers:      req.Workers,
		DynamicRatio: req.DynamicRatio,
		Seed:         req.Seed,
	}
	switch strings.ToLower(req.Layout) {
	case "", "bcl":
		opt.Layout = repro.LayoutBlockCyclic
	case "cm":
		opt.Layout = repro.LayoutColMajor
	case "2l", "2l-bl", "twolevel":
		opt.Layout = repro.LayoutTwoLevel
	default:
		return opt, fmt.Errorf("unknown layout %q", req.Layout)
	}
	if err := schedulerOptions(req.Scheduler, &opt); err != nil {
		return opt, err
	}
	if err := classOptions(req.Class, req.DeadlineMs, &opt); err != nil {
		return opt, err
	}
	return opt, nil
}

// matrix materializes the request's input matrix. spd selects the
// generated-matrix flavour for /v1/cholesky.
func (s *server) matrix(req *factorRequest, spd bool) (*repro.Matrix, error) {
	if len(req.Data) > 0 {
		if req.Rows <= 0 || req.Cols <= 0 || len(req.Data) != req.Rows*req.Cols {
			return nil, fmt.Errorf("data needs rows*cols = %d*%d entries, got %d",
				req.Rows, req.Cols, len(req.Data))
		}
		a := repro.NewMatrix(req.Rows, req.Cols)
		for i := 0; i < req.Rows; i++ {
			for j := 0; j < req.Cols; j++ {
				a.Set(i, j, req.Data[i*req.Cols+j])
			}
		}
		return a, nil
	}
	if req.N <= 0 {
		return nil, fmt.Errorf("need either n > 0 or rows/cols/data")
	}
	if spd {
		return repro.RandomSPD(req.N, req.Seed), nil
	}
	return repro.RandomMatrix(req.N, req.N, req.Seed), nil
}

// removeLocked drops one entry from the store (mu held).
func (s *server) removeLocked(id string) {
	e, ok := s.facs[id]
	if !ok {
		return
	}
	delete(s.facs, id)
	s.bytes -= e.bytes
	for i, v := range s.order {
		if v == id {
			s.order = append(s.order[:i:i], s.order[i+1:]...)
			break
		}
	}
}

// expireLocked lazily drops idle-expired entries. The LRU order is
// also last-use order, so expired entries cluster at the front.
func (s *server) expireLocked(now time.Time) {
	if s.ttl <= 0 {
		return
	}
	for len(s.order) > 0 {
		e := s.facs[s.order[0]]
		if now.Sub(e.last) <= s.ttl {
			return
		}
		s.removeLocked(s.order[0])
	}
}

func (s *server) store(prefix string, st stored) string {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(now)
	s.next++
	id := fmt.Sprintf("%s-%d", prefix, s.next)
	e := &entry{st: st, bytes: st.sizeBytes(), last: now}
	s.facs[id] = e
	s.bytes += e.bytes
	s.order = append(s.order, id)
	// Evict least-recently-used entries past either bound — but never
	// the entry just stored: every factor reply must reference a live
	// id, even when one factorization alone exceeds the byte budget.
	for len(s.order) > 1 &&
		(len(s.order) > s.keep || (s.memBudget > 0 && s.bytes > s.memBudget)) {
		s.removeLocked(s.order[0])
	}
	return id
}

func (s *server) lookup(id string) (stored, bool) {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.facs[id]
	if !ok {
		return stored{}, false
	}
	if s.ttl > 0 && now.Sub(e.last) > s.ttl {
		s.removeLocked(id)
		return stored{}, false
	}
	e.last = now
	for i, v := range s.order { // bump to most-recently-used
		if v == id {
			s.order = append(append(s.order[:i:i], s.order[i+1:]...), id)
			break
		}
	}
	return e.st, true
}

// storeStats snapshots the resident store for /v1/stats.
func (s *server) storeStats() map[string]any {
	s.mu.Lock()
	defer s.mu.Unlock()
	return map[string]any{
		"count":       len(s.facs),
		"bytes":       s.bytes,
		"budgetBytes": s.memBudget,
		"keep":        s.keep,
		"ttlMs":       s.ttl.Seconds() * 1e3,
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// decodePost guards a mutating endpoint: POST only (405 otherwise), a
// JSON Content-Type when one is sent (415 otherwise — a body that is
// not JSON was almost certainly not meant for this API), the body
// capped at maxBody (413) and exactly one JSON value in it — trailing
// garbage after the value (a second JSON document, stray bytes) is a
// malformed request, not something to silently ignore.
func (s *server) decodePost(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, "method %s not allowed, use POST", r.Method)
		return false
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || mt != "application/json" {
			httpError(w, http.StatusUnsupportedMediaType,
				"unsupported Content-Type %q, use application/json", ct)
			return false
		}
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return false
		}
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return false
	}
	// Token (not More) is the complete trailing check: More reports
	// false for a stray closing bracket, while Token returns io.EOF
	// only when nothing but whitespace follows the value.
	if _, err := dec.Token(); err != io.EOF {
		httpError(w, http.StatusBadRequest, "bad request: trailing data after JSON body")
		return false
	}
	return true
}

// submitError maps an engine submission error to an HTTP reply: a shed
// deadline is 503 (the request was refused for its SLO, not for load —
// retrying with a looser deadline can succeed), saturation is 429 so
// load balancers back off, anything else is the caller's fault.
func submitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, repro.ErrEngineDeadlineInfeasible):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, repro.ErrEngineSaturated):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "engine saturated, retry later")
	default:
		httpError(w, http.StatusBadRequest, "%v", err)
	}
}

// handleFactor serves /v1/factor (chol=false) and /v1/cholesky
// (chol=true).
func (s *server) handleFactor(w http.ResponseWriter, r *http.Request, chol bool) {
	var req factorRequest
	if !s.decodePost(w, r, &req) {
		return
	}
	opt, err := s.options(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	a, err := s.matrix(&req, chol)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var job *repro.EngineJob
	if chol {
		job, err = s.eng.TrySubmitCholeskyFactor(a, opt)
	} else {
		job, err = s.eng.TrySubmitFactor(a, opt)
	}
	if err != nil {
		submitError(w, err)
		return
	}
	if err := job.Wait(); err != nil {
		httpError(w, http.StatusUnprocessableEntity, "factorization failed: %v", err)
		return
	}
	var st stored
	var id string
	var res float64
	if chol {
		st = stored{chol: job.CholeskyFactorization()}
		id = s.store("c", st)
		if req.Residual {
			res = repro.CholeskyResidual(a, st.chol)
		}
	} else {
		st = stored{lu: job.Factorization()}
		id = s.store("f", st)
		if req.Residual {
			res = repro.Residual(a, st.lu)
		}
	}
	rep := factorReply{
		ID:          id,
		Class:       job.Class().String(),
		Granted:     job.Granted(),
		QueueWaitMs: job.QueueWait().Seconds() * 1e3,
		SpanMs:      job.Span().Seconds() * 1e3,
	}
	if req.Residual {
		rep.Residual = &res
	}
	reply(w, rep)
}

// handleSolve serves /v1/solve (any stored id) and /v1/cholesky/solve
// (cholesky ids only).
func (s *server) handleSolve(w http.ResponseWriter, r *http.Request, wantChol bool) {
	var req solveRequest
	if !s.decodePost(w, r, &req) {
		return
	}
	st, ok := s.lookup(req.ID)
	if !ok {
		httpError(w, http.StatusNotFound, "no factorization %q (evicted or never existed)", req.ID)
		return
	}
	if wantChol && st.chol == nil {
		httpError(w, http.StatusBadRequest, "%q is not a cholesky factorization", req.ID)
		return
	}
	n := st.n()
	nrhs := req.NRHS
	if nrhs <= 0 {
		nrhs = 1
	}
	// nrhs > len(B) is always invalid (n >= 1) and, checked first, keeps
	// the n*nrhs product far from integer overflow for any body that
	// fits the request size cap.
	if nrhs > len(req.B) || len(req.B) != n*nrhs {
		httpError(w, http.StatusBadRequest, "rhs needs n*nrhs = %d*%d entries, got %d", n, nrhs, len(req.B))
		return
	}
	opt := repro.Options{Block: req.Block, Workers: req.Workers, DynamicRatio: req.DynamicRatio}
	if err := schedulerOptions(req.Scheduler, &opt); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := classOptions(req.Class, req.DeadlineMs, &opt); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	bm := repro.NewMatrix(n, nrhs)
	copy(bm.Data, req.B)
	job, err := s.eng.TrySubmitSolveMany(st.solvable(), bm, opt)
	if err != nil {
		submitError(w, err)
		return
	}
	if err := job.Wait(); err != nil {
		var se *repro.SingularSolveError
		if errors.As(err, &se) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusUnprocessableEntity)
			json.NewEncoder(w).Encode(map[string]any{
				"error":          err.Error(),
				"solvablePrefix": se.Prefix,
				"n":              se.N,
				"degradedSystem": true,
			})
			return
		}
		httpError(w, http.StatusUnprocessableEntity, "solve failed: %v", err)
		return
	}
	// The solution block is tightly strided (mat.New), so its backing
	// array IS the column-major flat reply — no copy on the hot path.
	x := job.SolutionMatrix()
	reply(w, solveReply{
		ID: req.ID, X: x.Data, NRHS: nrhs,
		Class:       job.Class().String(),
		Granted:     job.Granted(),
		QueueWaitMs: job.QueueWait().Seconds() * 1e3,
		SpanMs:      job.Span().Seconds() * 1e3,
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, "method %s not allowed, use GET", r.Method)
		return
	}
	reply(w, map[string]any{
		"engine": s.eng.Stats(),
		"store":  s.storeStats(),
	})
}

// mux builds the route table. Method checks live in the handlers (not
// in method-qualified patterns) so direct handler tests and the live
// server agree on 405 behaviour.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/factor", func(w http.ResponseWriter, r *http.Request) { s.handleFactor(w, r, false) })
	mux.HandleFunc("/v1/cholesky", func(w http.ResponseWriter, r *http.Request) { s.handleFactor(w, r, true) })
	mux.HandleFunc("/v1/solve", func(w http.ResponseWriter, r *http.Request) { s.handleSolve(w, r, false) })
	mux.HandleFunc("/v1/cholesky/solve", func(w http.ResponseWriter, r *http.Request) { s.handleSolve(w, r, true) })
	mux.HandleFunc("/v1/stats", s.handleStats)
	return mux
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	pool := flag.Int("pool", 0, "resident worker pool size (0 = NumCPU)")
	dratio := flag.Float64("dratio", 0.25, "inter-job dynamic ratio (0 fully static .. 1 fully dynamic)")
	maxInflight := flag.Int("maxinflight", 0, "admission bound (0 = 4*pool)")
	keep := flag.Int("keep", 64, "factorizations kept resident for /v1/solve (>= 1)")
	maxBody := flag.Int64("maxbody", defaultMaxBody, "request body cap in bytes")
	memBudget := flag.Int64("membudget", 0, "resident factorization memory budget in bytes (0 = unbounded)")
	ttl := flag.Duration("ttl", 0, "idle expiry of resident factorizations (0 = never)")
	flag.Parse()
	if *keep < 1 {
		fmt.Fprintf(os.Stderr, "hsdserve: -keep must be >= 1 (every /v1/factor reply references a kept factorization)\n")
		os.Exit(2)
	}
	if *maxBody < 1 {
		fmt.Fprintf(os.Stderr, "hsdserve: -maxbody must be >= 1\n")
		os.Exit(2)
	}

	eng, err := repro.NewEngine(repro.EngineOptions{
		Workers: *pool, MaxInflight: *maxInflight, DynamicRatio: *dratio,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hsdserve: %v\n", err)
		os.Exit(2)
	}
	defer eng.Close()

	s := newServer(eng, *keep, *maxBody, *memBudget, *ttl)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.mux(),
		ReadHeaderTimeout: 10 * time.Second,
		// Generous body/response windows: factor payloads can be large
		// and jobs queue behind the admission bound, but no connection
		// may sit on a goroutine forever.
		ReadTimeout:  5 * time.Minute,
		WriteTimeout: 5 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}
	log.Printf("hsdserve: engine up (%+v), listening on %s", eng.Stats(), *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatalf("hsdserve: %v", err)
	}
}

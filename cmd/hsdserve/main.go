// Command hsdserve exposes the resident factorization engine over
// HTTP/JSON: one long-lived worker pool serving concurrent Factor and
// Solve requests with the two-level hybrid static/dynamic scheduling
// of internal/engine (static per-job worker reservations, dynamic
// lending across jobs). Solves execute as blocked triangular-solve
// task graphs at the job's granted share, so big and multi-RHS solves
// parallelize like factorizations.
//
//	hsdserve -addr :8080 -pool 8 -dratio 0.25 -maxinflight 32
//
// Factor a random 512x512 test matrix with a 2-worker share and keep
// the factorization resident for later solves:
//
//	curl -s localhost:8080/v1/factor -d '{"n":512,"seed":7,"workers":2}'
//
// Factor a caller-supplied matrix (row-major flat array) and solve,
// single or many right-hand sides (column-major flat, nrhs columns):
//
//	curl -s localhost:8080/v1/factor \
//	    -d '{"rows":2,"cols":2,"data":[4,3,6,3],"residual":true}'
//	curl -s localhost:8080/v1/solve -d '{"id":"f-1","b":[10,12]}'
//	curl -s localhost:8080/v1/solve \
//	    -d '{"id":"f-1","b":[10,12,4,3],"nrhs":2,"workers":2}'
//
// Cholesky jobs ride the same pool (n/seed generates a random SPD test
// matrix; data must be SPD, lower triangle read):
//
//	curl -s localhost:8080/v1/cholesky -d '{"n":512,"seed":7,"workers":2}'
//	curl -s localhost:8080/v1/cholesky/solve -d '{"id":"c-1","b":[...]}'
//	curl -s localhost:8080/v1/stats
//
// Mutating endpoints are POST-only (405 otherwise) and reject bodies
// with trailing data after the JSON value (400). Saturation (admission
// queue at -maxinflight) returns 503 so load balancers can back off;
// a solve against a degraded factorization returns 422 with the
// solvable prefix. Factorizations are kept for -keep solves and
// evicted FIFO.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro"
)

// maxBody caps request bodies (a 2048x2048 JSON matrix is ~90 MB; we
// stop well before a streaming client can grow memory without bound).
const maxBody = 256 << 20

// stored is one resident factorization: exactly one of lu/chol is set.
type stored struct {
	lu   *repro.Factorization
	chol *repro.CholeskyFactorization
}

// n returns the order of the stored system.
func (st stored) n() int {
	if st.lu != nil {
		return st.lu.L.Rows
	}
	return st.chol.L.Rows
}

// solvable returns the factorization behind the engine's Solvable
// interface.
func (st stored) solvable() repro.Solvable {
	if st.lu != nil {
		return st.lu
	}
	return st.chol
}

// server wires the engine to the HTTP mux and owns the factorization
// store.
type server struct {
	eng *repro.Engine

	mu    sync.Mutex
	next  int
	keep  int
	order []string
	facs  map[string]stored
}

type factorRequest struct {
	// Either a generated test matrix ...
	N    int   `json:"n"`
	Seed int64 `json:"seed"`
	// ... or caller-supplied data (row-major, rows*cols entries).
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`

	Block        int     `json:"block"`
	Workers      int     `json:"workers"`
	Scheduler    string  `json:"scheduler"`
	Layout       string  `json:"layout"`
	DynamicRatio float64 `json:"dynamicRatio"`
	// Residual requests the O(n^3) backward-error check in the reply.
	Residual bool `json:"residual"`
}

type factorReply struct {
	ID          string   `json:"id"`
	Granted     int      `json:"granted"`
	QueueWaitMs float64  `json:"queueWaitMs"`
	SpanMs      float64  `json:"spanMs"`
	Residual    *float64 `json:"residual,omitempty"`
}

type solveRequest struct {
	ID string `json:"id"`
	// B is the right-hand side: n entries for one system, n*nrhs
	// entries (column-major) when NRHS > 1.
	B    []float64 `json:"b"`
	NRHS int       `json:"nrhs"`

	Block        int     `json:"block"`
	Workers      int     `json:"workers"`
	Scheduler    string  `json:"scheduler"`
	DynamicRatio float64 `json:"dynamicRatio"`
}

type solveReply struct {
	ID string `json:"id"`
	// X is the solution, column-major n x nrhs.
	X           []float64 `json:"x"`
	NRHS        int       `json:"nrhs"`
	Granted     int       `json:"granted"`
	QueueWaitMs float64   `json:"queueWaitMs"`
	SpanMs      float64   `json:"spanMs"`
}

func schedulerOptions(name string, opt *repro.Options) error {
	switch strings.ToLower(name) {
	case "", "hybrid":
		opt.Scheduler = repro.ScheduleHybrid
		if opt.DynamicRatio == 0 {
			opt.DynamicRatio = 0.1
		}
	case "static":
		opt.Scheduler = repro.ScheduleStatic
	case "dynamic":
		opt.Scheduler = repro.ScheduleDynamic
	case "worksteal":
		opt.Scheduler = repro.ScheduleWorkStealing
	default:
		return fmt.Errorf("unknown scheduler %q", name)
	}
	return nil
}

func (s *server) options(req *factorRequest) (repro.Options, error) {
	opt := repro.Options{
		Block:        req.Block,
		Workers:      req.Workers,
		DynamicRatio: req.DynamicRatio,
		Seed:         req.Seed,
	}
	switch strings.ToLower(req.Layout) {
	case "", "bcl":
		opt.Layout = repro.LayoutBlockCyclic
	case "cm":
		opt.Layout = repro.LayoutColMajor
	case "2l", "2l-bl", "twolevel":
		opt.Layout = repro.LayoutTwoLevel
	default:
		return opt, fmt.Errorf("unknown layout %q", req.Layout)
	}
	if err := schedulerOptions(req.Scheduler, &opt); err != nil {
		return opt, err
	}
	return opt, nil
}

// matrix materializes the request's input matrix. spd selects the
// generated-matrix flavour for /v1/cholesky.
func (s *server) matrix(req *factorRequest, spd bool) (*repro.Matrix, error) {
	if len(req.Data) > 0 {
		if req.Rows <= 0 || req.Cols <= 0 || len(req.Data) != req.Rows*req.Cols {
			return nil, fmt.Errorf("data needs rows*cols = %d*%d entries, got %d",
				req.Rows, req.Cols, len(req.Data))
		}
		a := repro.NewMatrix(req.Rows, req.Cols)
		for i := 0; i < req.Rows; i++ {
			for j := 0; j < req.Cols; j++ {
				a.Set(i, j, req.Data[i*req.Cols+j])
			}
		}
		return a, nil
	}
	if req.N <= 0 {
		return nil, fmt.Errorf("need either n > 0 or rows/cols/data")
	}
	if spd {
		return repro.RandomSPD(req.N, req.Seed), nil
	}
	return repro.RandomMatrix(req.N, req.N, req.Seed), nil
}

func (s *server) store(prefix string, st stored) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	id := fmt.Sprintf("%s-%d", prefix, s.next)
	s.facs[id] = st
	s.order = append(s.order, id)
	for len(s.order) > s.keep {
		delete(s.facs, s.order[0])
		s.order = s.order[1:]
	}
	return id
}

func (s *server) lookup(id string) (stored, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.facs[id]
	return st, ok
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// decodePost guards a mutating endpoint: POST only (405 otherwise) and
// exactly one JSON value in the body — trailing garbage after the
// value (a second JSON document, stray bytes) is a malformed request,
// not something to silently ignore.
func decodePost(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, "method %s not allowed, use POST", r.Method)
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return false
	}
	// Token (not More) is the complete trailing check: More reports
	// false for a stray closing bracket, while Token returns io.EOF
	// only when nothing but whitespace follows the value.
	if _, err := dec.Token(); err != io.EOF {
		httpError(w, http.StatusBadRequest, "bad request: trailing data after JSON body")
		return false
	}
	return true
}

// submitError maps an engine submission error to an HTTP reply.
func submitError(w http.ResponseWriter, err error) {
	if errors.Is(err, repro.ErrEngineSaturated) {
		httpError(w, http.StatusServiceUnavailable, "engine saturated, retry later")
		return
	}
	httpError(w, http.StatusBadRequest, "%v", err)
}

// handleFactor serves /v1/factor (chol=false) and /v1/cholesky
// (chol=true).
func (s *server) handleFactor(w http.ResponseWriter, r *http.Request, chol bool) {
	var req factorRequest
	if !decodePost(w, r, &req) {
		return
	}
	opt, err := s.options(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	a, err := s.matrix(&req, chol)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var job *repro.EngineJob
	if chol {
		job, err = s.eng.TrySubmitCholeskyFactor(a, opt)
	} else {
		job, err = s.eng.TrySubmitFactor(a, opt)
	}
	if err != nil {
		submitError(w, err)
		return
	}
	if err := job.Wait(); err != nil {
		httpError(w, http.StatusUnprocessableEntity, "factorization failed: %v", err)
		return
	}
	var st stored
	var id string
	var res float64
	if chol {
		st = stored{chol: job.CholeskyFactorization()}
		id = s.store("c", st)
		if req.Residual {
			res = repro.CholeskyResidual(a, st.chol)
		}
	} else {
		st = stored{lu: job.Factorization()}
		id = s.store("f", st)
		if req.Residual {
			res = repro.Residual(a, st.lu)
		}
	}
	rep := factorReply{
		ID:          id,
		Granted:     job.Granted(),
		QueueWaitMs: job.QueueWait().Seconds() * 1e3,
		SpanMs:      job.Span().Seconds() * 1e3,
	}
	if req.Residual {
		rep.Residual = &res
	}
	reply(w, rep)
}

// handleSolve serves /v1/solve (any stored id) and /v1/cholesky/solve
// (cholesky ids only).
func (s *server) handleSolve(w http.ResponseWriter, r *http.Request, wantChol bool) {
	var req solveRequest
	if !decodePost(w, r, &req) {
		return
	}
	st, ok := s.lookup(req.ID)
	if !ok {
		httpError(w, http.StatusNotFound, "no factorization %q (evicted or never existed)", req.ID)
		return
	}
	if wantChol && st.chol == nil {
		httpError(w, http.StatusBadRequest, "%q is not a cholesky factorization", req.ID)
		return
	}
	n := st.n()
	nrhs := req.NRHS
	if nrhs <= 0 {
		nrhs = 1
	}
	// nrhs > len(B) is always invalid (n >= 1) and, checked first, keeps
	// the n*nrhs product far from integer overflow for any body that
	// fits the request size cap.
	if nrhs > len(req.B) || len(req.B) != n*nrhs {
		httpError(w, http.StatusBadRequest, "rhs needs n*nrhs = %d*%d entries, got %d", n, nrhs, len(req.B))
		return
	}
	opt := repro.Options{Block: req.Block, Workers: req.Workers, DynamicRatio: req.DynamicRatio}
	if err := schedulerOptions(req.Scheduler, &opt); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	bm := repro.NewMatrix(n, nrhs)
	copy(bm.Data, req.B)
	job, err := s.eng.TrySubmitSolveMany(st.solvable(), bm, opt)
	if err != nil {
		submitError(w, err)
		return
	}
	if err := job.Wait(); err != nil {
		var se *repro.SingularSolveError
		if errors.As(err, &se) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusUnprocessableEntity)
			json.NewEncoder(w).Encode(map[string]any{
				"error":          err.Error(),
				"solvablePrefix": se.Prefix,
				"n":              se.N,
				"degradedSystem": true,
			})
			return
		}
		httpError(w, http.StatusUnprocessableEntity, "solve failed: %v", err)
		return
	}
	// The solution block is tightly strided (mat.New), so its backing
	// array IS the column-major flat reply — no copy on the hot path.
	x := job.SolutionMatrix()
	reply(w, solveReply{
		ID: req.ID, X: x.Data, NRHS: nrhs,
		Granted:     job.Granted(),
		QueueWaitMs: job.QueueWait().Seconds() * 1e3,
		SpanMs:      job.Span().Seconds() * 1e3,
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, "method %s not allowed, use GET", r.Method)
		return
	}
	s.mu.Lock()
	stored := len(s.facs)
	s.mu.Unlock()
	reply(w, map[string]any{
		"engine": s.eng.Stats(),
		"stored": stored,
	})
}

// mux builds the route table. Method checks live in the handlers (not
// in method-qualified patterns) so direct handler tests and the live
// server agree on 405 behaviour.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/factor", func(w http.ResponseWriter, r *http.Request) { s.handleFactor(w, r, false) })
	mux.HandleFunc("/v1/cholesky", func(w http.ResponseWriter, r *http.Request) { s.handleFactor(w, r, true) })
	mux.HandleFunc("/v1/solve", func(w http.ResponseWriter, r *http.Request) { s.handleSolve(w, r, false) })
	mux.HandleFunc("/v1/cholesky/solve", func(w http.ResponseWriter, r *http.Request) { s.handleSolve(w, r, true) })
	mux.HandleFunc("/v1/stats", s.handleStats)
	return mux
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	pool := flag.Int("pool", 0, "resident worker pool size (0 = NumCPU)")
	dratio := flag.Float64("dratio", 0.25, "inter-job dynamic ratio (0 fully static .. 1 fully dynamic)")
	maxInflight := flag.Int("maxinflight", 0, "admission bound (0 = 4*pool)")
	keep := flag.Int("keep", 64, "factorizations kept resident for /v1/solve (>= 1)")
	flag.Parse()
	if *keep < 1 {
		fmt.Fprintf(os.Stderr, "hsdserve: -keep must be >= 1 (every /v1/factor reply references a kept factorization)\n")
		os.Exit(2)
	}

	eng, err := repro.NewEngine(repro.EngineOptions{
		Workers: *pool, MaxInflight: *maxInflight, DynamicRatio: *dratio,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hsdserve: %v\n", err)
		os.Exit(2)
	}
	defer eng.Close()

	s := &server{eng: eng, keep: *keep, facs: map[string]stored{}}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.mux(),
		ReadHeaderTimeout: 10 * time.Second,
		// Generous body/response windows: factor payloads can be large
		// and jobs queue behind the admission bound, but no connection
		// may sit on a goroutine forever.
		ReadTimeout:  5 * time.Minute,
		WriteTimeout: 5 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}
	log.Printf("hsdserve: engine up (%+v), listening on %s", eng.Stats(), *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatalf("hsdserve: %v", err)
	}
}

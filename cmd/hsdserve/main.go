// Command hsdserve exposes the resident factorization engine over
// HTTP/JSON: one long-lived worker pool serving concurrent Factor and
// Solve requests with the two-level hybrid static/dynamic scheduling
// of internal/engine (static per-job worker reservations, dynamic
// lending across jobs).
//
//	hsdserve -addr :8080 -pool 8 -dratio 0.25 -maxinflight 32
//
// Factor a random 512x512 test matrix with a 2-worker share and keep
// the factorization resident for later solves:
//
//	curl -s localhost:8080/v1/factor -d '{"n":512,"seed":7,"workers":2}'
//
// Factor a caller-supplied matrix (row-major flat array) and solve:
//
//	curl -s localhost:8080/v1/factor \
//	    -d '{"rows":2,"cols":2,"data":[4,3,6,3],"residual":true}'
//	curl -s localhost:8080/v1/solve -d '{"id":"f-1","b":[10,12]}'
//	curl -s localhost:8080/v1/stats
//
// Saturation (admission queue at -maxinflight) returns 503 so load
// balancers can back off; factorizations are kept for -keep solves
// and evicted FIFO.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro"
)

// maxBody caps request bodies (a 2048x2048 JSON matrix is ~90 MB; we
// stop well before a streaming client can grow memory without bound).
const maxBody = 256 << 20

// server wires the engine to the HTTP mux and owns the factorization
// store.
type server struct {
	eng *repro.Engine

	mu    sync.Mutex
	next  int
	keep  int
	order []string
	facs  map[string]*repro.Factorization
}

type factorRequest struct {
	// Either a generated test matrix ...
	N    int   `json:"n"`
	Seed int64 `json:"seed"`
	// ... or caller-supplied data (row-major, rows*cols entries).
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`

	Block        int     `json:"block"`
	Workers      int     `json:"workers"`
	Scheduler    string  `json:"scheduler"`
	Layout       string  `json:"layout"`
	DynamicRatio float64 `json:"dynamicRatio"`
	// Residual requests the O(n^3) backward-error check in the reply.
	Residual bool `json:"residual"`
}

type factorReply struct {
	ID          string   `json:"id"`
	Granted     int      `json:"granted"`
	QueueWaitMs float64  `json:"queueWaitMs"`
	SpanMs      float64  `json:"spanMs"`
	Residual    *float64 `json:"residual,omitempty"`
}

type solveRequest struct {
	ID string    `json:"id"`
	B  []float64 `json:"b"`
}

func (s *server) options(req *factorRequest) (repro.Options, error) {
	opt := repro.Options{
		Block:        req.Block,
		Workers:      req.Workers,
		DynamicRatio: req.DynamicRatio,
		Seed:         req.Seed,
	}
	switch strings.ToLower(req.Layout) {
	case "", "bcl":
		opt.Layout = repro.LayoutBlockCyclic
	case "cm":
		opt.Layout = repro.LayoutColMajor
	case "2l", "2l-bl", "twolevel":
		opt.Layout = repro.LayoutTwoLevel
	default:
		return opt, fmt.Errorf("unknown layout %q", req.Layout)
	}
	switch strings.ToLower(req.Scheduler) {
	case "", "hybrid":
		opt.Scheduler = repro.ScheduleHybrid
		if opt.DynamicRatio == 0 {
			opt.DynamicRatio = 0.1
		}
	case "static":
		opt.Scheduler = repro.ScheduleStatic
	case "dynamic":
		opt.Scheduler = repro.ScheduleDynamic
	case "worksteal":
		opt.Scheduler = repro.ScheduleWorkStealing
	default:
		return opt, fmt.Errorf("unknown scheduler %q", req.Scheduler)
	}
	return opt, nil
}

func (s *server) matrix(req *factorRequest) (*repro.Matrix, error) {
	if len(req.Data) > 0 {
		if req.Rows <= 0 || req.Cols <= 0 || len(req.Data) != req.Rows*req.Cols {
			return nil, fmt.Errorf("data needs rows*cols = %d*%d entries, got %d",
				req.Rows, req.Cols, len(req.Data))
		}
		a := repro.NewMatrix(req.Rows, req.Cols)
		for i := 0; i < req.Rows; i++ {
			for j := 0; j < req.Cols; j++ {
				a.Set(i, j, req.Data[i*req.Cols+j])
			}
		}
		return a, nil
	}
	if req.N <= 0 {
		return nil, fmt.Errorf("need either n > 0 or rows/cols/data")
	}
	return repro.RandomMatrix(req.N, req.N, req.Seed), nil
}

func (s *server) store(f *repro.Factorization) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	id := fmt.Sprintf("f-%d", s.next)
	s.facs[id] = f
	s.order = append(s.order, id)
	for len(s.order) > s.keep {
		delete(s.facs, s.order[0])
		s.order = s.order[1:]
	}
	return id
}

func (s *server) lookup(id string) *repro.Factorization {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.facs[id]
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *server) handleFactor(w http.ResponseWriter, r *http.Request) {
	var req factorRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	opt, err := s.options(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	a, err := s.matrix(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	job, err := s.eng.TrySubmitFactor(a, opt)
	switch {
	case err == repro.ErrEngineSaturated:
		httpError(w, http.StatusServiceUnavailable, "engine saturated, retry later")
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := job.Wait(); err != nil {
		httpError(w, http.StatusUnprocessableEntity, "factorization failed: %v", err)
		return
	}
	f := job.Factorization()
	rep := factorReply{
		ID:          s.store(f),
		Granted:     job.Granted(),
		QueueWaitMs: job.QueueWait().Seconds() * 1e3,
		SpanMs:      job.Span().Seconds() * 1e3,
	}
	if req.Residual {
		r := repro.Residual(a, f)
		rep.Residual = &r
	}
	reply(w, rep)
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	f := s.lookup(req.ID)
	if f == nil {
		httpError(w, http.StatusNotFound, "no factorization %q (evicted or never existed)", req.ID)
		return
	}
	job, err := s.eng.TrySubmitSolve(f, req.B)
	switch {
	case err == repro.ErrEngineSaturated:
		httpError(w, http.StatusServiceUnavailable, "engine saturated, retry later")
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := job.Wait(); err != nil {
		httpError(w, http.StatusUnprocessableEntity, "solve failed: %v", err)
		return
	}
	reply(w, map[string]any{"id": req.ID, "x": job.Solution()})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	stored := len(s.facs)
	s.mu.Unlock()
	reply(w, map[string]any{
		"engine": s.eng.Stats(),
		"stored": stored,
	})
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	pool := flag.Int("pool", 0, "resident worker pool size (0 = NumCPU)")
	dratio := flag.Float64("dratio", 0.25, "inter-job dynamic ratio (0 fully static .. 1 fully dynamic)")
	maxInflight := flag.Int("maxinflight", 0, "admission bound (0 = 4*pool)")
	keep := flag.Int("keep", 64, "factorizations kept resident for /v1/solve (>= 1)")
	flag.Parse()
	if *keep < 1 {
		fmt.Fprintf(os.Stderr, "hsdserve: -keep must be >= 1 (every /v1/factor reply references a kept factorization)\n")
		os.Exit(2)
	}

	eng, err := repro.NewEngine(repro.EngineOptions{
		Workers: *pool, MaxInflight: *maxInflight, DynamicRatio: *dratio,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hsdserve: %v\n", err)
		os.Exit(2)
	}
	defer eng.Close()

	s := &server{eng: eng, keep: *keep, facs: map[string]*repro.Factorization{}}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/factor", s.handleFactor)
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("GET /v1/stats", s.handleStats)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		// Generous body/response windows: factor payloads can be large
		// and jobs queue behind the admission bound, but no connection
		// may sit on a goroutine forever.
		ReadTimeout:  5 * time.Minute,
		WriteTimeout: 5 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}
	log.Printf("hsdserve: engine up (%+v), listening on %s", eng.Stats(), *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatalf("hsdserve: %v", err)
	}
}

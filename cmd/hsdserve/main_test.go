package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
)

// newTestServer spins up a small resident engine behind the real mux.
func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	eng, err := repro.NewEngine(repro.EngineOptions{Workers: 2, MaxInflight: 8, DynamicRatio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	s := &server{eng: eng, keep: 8, facs: map[string]stored{}}
	ts := httptest.NewServer(s.mux())
	t.Cleanup(func() {
		ts.Close()
		eng.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding reply: %v", err)
	}
	return resp, out
}

// TestServeFactorSolveRoundTrip drives factor then single- and
// multi-RHS solves through the HTTP surface and checks the arithmetic.
func TestServeFactorSolveRoundTrip(t *testing.T) {
	_, ts := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/v1/factor",
		`{"rows":2,"cols":2,"data":[4,3,6,3],"residual":true,"workers":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("factor: %d %v", resp.StatusCode, out)
	}
	id := out["id"].(string)
	if r := out["residual"].(float64); r > 1e-12 {
		t.Fatalf("factor residual %g", r)
	}

	resp, out = postJSON(t, ts.URL+"/v1/solve", fmt.Sprintf(`{"id":%q,"b":[10,12]}`, id))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %v", resp.StatusCode, out)
	}
	x := out["x"].([]any)
	// 4x+3y=10, 6x+3y=12 -> x=1, y=2.
	if len(x) != 2 || abs(x[0].(float64)-1) > 1e-12 || abs(x[1].(float64)-2) > 1e-12 {
		t.Fatalf("solve got %v, want [1 2]", x)
	}

	// Two right-hand sides at once, column-major.
	resp, out = postJSON(t, ts.URL+"/v1/solve",
		fmt.Sprintf(`{"id":%q,"b":[10,12,7,9],"nrhs":2}`, id))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve nrhs=2: %d %v", resp.StatusCode, out)
	}
	if got := out["x"].([]any); len(got) != 4 {
		t.Fatalf("multi-RHS solution length %d, want 4", len(got))
	}
	if out["nrhs"].(float64) != 2 {
		t.Fatalf("nrhs echoed %v", out["nrhs"])
	}
}

// TestServeCholeskyEndpoints round-trips /v1/cholesky and
// /v1/cholesky/solve, and checks the cholesky solve endpoint rejects
// LU ids.
func TestServeCholeskyEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/v1/cholesky", `{"n":48,"seed":3,"workers":1,"residual":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cholesky factor: %d %v", resp.StatusCode, out)
	}
	id := out["id"].(string)
	if !strings.HasPrefix(id, "c-") {
		t.Fatalf("cholesky id %q", id)
	}
	if r := out["residual"].(float64); r > 1e-10 {
		t.Fatalf("cholesky residual %g", r)
	}
	b := make([]string, 48)
	for i := range b {
		b[i] = "1"
	}
	resp, out = postJSON(t, ts.URL+"/v1/cholesky/solve",
		fmt.Sprintf(`{"id":%q,"b":[%s]}`, id, strings.Join(b, ",")))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cholesky solve: %d %v", resp.StatusCode, out)
	}
	if len(out["x"].([]any)) != 48 {
		t.Fatalf("cholesky solution length %d", len(out["x"].([]any)))
	}

	// An LU id is not accepted by the cholesky solve endpoint.
	resp, out = postJSON(t, ts.URL+"/v1/factor", `{"n":16,"seed":1,"workers":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("factor: %d %v", resp.StatusCode, out)
	}
	luID := out["id"].(string)
	resp, _ = postJSON(t, ts.URL+"/v1/cholesky/solve",
		fmt.Sprintf(`{"id":%q,"b":[%s]}`, luID, strings.Repeat("1,", 15)+"1"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cholesky solve of LU id: %d, want 400", resp.StatusCode)
	}
}

// TestServeMethodNotAllowed: every mutating endpoint rejects non-POST
// with 405 (and an Allow header); /v1/stats rejects non-GET.
func TestServeMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/v1/factor", "/v1/solve", "/v1/cholesky", "/v1/cholesky/solve"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s: %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
			t.Fatalf("GET %s: Allow %q, want POST", path, allow)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/stats", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/stats: %d, want 405", resp.StatusCode)
	}
}

// TestServeTrailingGarbageRejected: a body with data after the first
// JSON value is a 400, on every mutating endpoint.
func TestServeTrailingGarbageRejected(t *testing.T) {
	_, ts := newTestServer(t)
	bodies := map[string]string{
		"/v1/factor":         `{"n":8,"seed":1} {"n":9}`,
		"/v1/cholesky":       `{"n":8,"seed":1} garbage`,
		"/v1/solve":          `{"id":"f-1","b":[1]} []`,
		"/v1/cholesky/solve": `{"id":"c-1","b":[1]} 42`,
	}
	for path, body := range bodies {
		resp, out := postJSON(t, ts.URL+path, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s with trailing data: %d (%v), want 400", path, resp.StatusCode, out)
		}
	}
	// Stray closing brackets are the json.Decoder.More blind spot: More
	// peeks '}'/']' and reports false, so only a Token/EOF check
	// catches them.
	for _, body := range []string{`{"n":8,"seed":1} }`, `{"n":8,"seed":1} ]`} {
		resp, out := postJSON(t, ts.URL+"/v1/factor", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("trailing bracket %q: %d (%v), want 400", body, resp.StatusCode, out)
		}
	}
	// A clean body still works after the rejections.
	resp, out := postJSON(t, ts.URL+"/v1/factor", `{"n":8,"seed":1,"workers":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean factor after rejects: %d %v", resp.StatusCode, out)
	}
}

// TestServeDegradedSolveReportsPrefix: solving against a degraded
// factorization returns 422 with the solvable prefix, not an opaque
// error string.
func TestServeDegradedSolveReportsPrefix(t *testing.T) {
	s, ts := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/v1/factor", `{"n":32,"seed":5,"workers":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("factor: %d %v", resp.StatusCode, out)
	}
	id := out["id"].(string)
	// Degrade the stored factorization the way a prefix-padded singular
	// fallback would: zero the factored tail of U.
	st, ok := s.lookup(id)
	if !ok {
		t.Fatalf("stored factorization %q missing", id)
	}
	for j := 20; j < 32; j++ {
		st.lu.U.Set(j, j, 0)
	}
	b := strings.Repeat("1,", 31) + "1"
	resp, out = postJSON(t, ts.URL+"/v1/solve", fmt.Sprintf(`{"id":%q,"b":[%s]}`, id, b))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("degraded solve: %d %v, want 422", resp.StatusCode, out)
	}
	if p := out["solvablePrefix"].(float64); p != 20 {
		t.Fatalf("solvablePrefix %v, want 20", p)
	}
	if n := out["n"].(float64); n != 32 {
		t.Fatalf("n %v, want 32", n)
	}
}

// TestServeSolveBadShapes covers rhs-shape validation and unknown ids.
func TestServeSolveBadShapes(t *testing.T) {
	_, ts := newTestServer(t)
	resp, _ := postJSON(t, ts.URL+"/v1/solve", `{"id":"f-404","b":[1,2]}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: %d, want 404", resp.StatusCode)
	}
	resp, out := postJSON(t, ts.URL+"/v1/factor", `{"n":8,"seed":2,"workers":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("factor: %d %v", resp.StatusCode, out)
	}
	id := out["id"].(string)
	resp, _ = postJSON(t, ts.URL+"/v1/solve", fmt.Sprintf(`{"id":%q,"b":[1,2,3]}`, id))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short rhs: %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/solve", fmt.Sprintf(`{"id":%q,"b":[1,2,3,4,5,6,7,8],"nrhs":3}`, id))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("rhs not n*nrhs: %d, want 400", resp.StatusCode)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestServeSolveHugeNRHSRejected: an absurd nrhs must be a 400, not an
// overflow that sneaks past the n*nrhs length check.
func TestServeSolveHugeNRHSRejected(t *testing.T) {
	_, ts := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/v1/factor", `{"n":3,"seed":2,"workers":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("factor: %d %v", resp.StatusCode, out)
	}
	id := out["id"].(string)
	// 3 * 6148914691236517206 wraps to 2 in uint64 arithmetic; the
	// handler must still reject the two-entry rhs.
	resp, _ = postJSON(t, ts.URL+"/v1/solve",
		fmt.Sprintf(`{"id":%q,"b":[1,2],"nrhs":6148914691236517206}`, id))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("huge nrhs: %d, want 400", resp.StatusCode)
	}
}

// Command hsdfactor factors a random matrix with CALU on this machine
// (real arithmetic, goroutine workers) and reports throughput and the
// backward error. It is the quickest way to see the library do real
// work:
//
//	hsdfactor -n 2048 -b 64 -workers 4 -layout bcl -sched hybrid -dratio 0.1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	n := flag.Int("n", 1024, "matrix dimension")
	b := flag.Int("b", 64, "block size")
	workers := flag.Int("workers", 4, "worker goroutines")
	layoutName := flag.String("layout", "bcl", "layout: cm | bcl | 2l")
	schedName := flag.String("sched", "hybrid", "scheduler: static | dynamic | hybrid | worksteal")
	dratio := flag.Float64("dratio", 0.1, "dynamic fraction for the hybrid scheduler")
	seed := flag.Int64("seed", 1, "matrix seed")
	solve := flag.Bool("solve", true, "also solve A x = b and report the residual")
	flag.Parse()

	opt := repro.Options{
		Block:        *b,
		Workers:      *workers,
		DynamicRatio: *dratio,
		Seed:         *seed,
	}
	switch strings.ToLower(*layoutName) {
	case "cm":
		opt.Layout = repro.LayoutColMajor
	case "bcl":
		opt.Layout = repro.LayoutBlockCyclic
	case "2l", "2l-bl", "twolevel":
		opt.Layout = repro.LayoutTwoLevel
	default:
		fmt.Fprintf(os.Stderr, "hsdfactor: unknown layout %q\n", *layoutName)
		os.Exit(2)
	}
	switch strings.ToLower(*schedName) {
	case "static":
		opt.Scheduler = repro.ScheduleStatic
	case "dynamic":
		opt.Scheduler = repro.ScheduleDynamic
	case "hybrid":
		opt.Scheduler = repro.ScheduleHybrid
	case "worksteal", "ws":
		opt.Scheduler = repro.ScheduleWorkStealing
	default:
		fmt.Fprintf(os.Stderr, "hsdfactor: unknown scheduler %q\n", *schedName)
		os.Exit(2)
	}

	a := repro.RandomMatrix(*n, *n, *seed)
	f, err := repro.Factor(a, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hsdfactor: %v\n", err)
		os.Exit(1)
	}
	flops := 2.0 / 3.0 * float64(*n) * float64(*n) * float64(*n)
	secs := f.Makespan.Seconds()
	fmt.Printf("CALU %s/%s  n=%d b=%d workers=%d\n", *layoutName, *schedName, *n, *b, *workers)
	fmt.Printf("  time        %.3fs (%.2f Gflop/s)\n", secs, flops/secs/1e9)
	fmt.Printf("  tasks       %d (%d static, %d dynamic)\n", f.Stats.Total, f.Stats.StaticTask, f.Stats.DynTask)
	fmt.Printf("  dequeues    %d static, %d dynamic, %d steals, %d migrated\n",
		f.Counters.DequeueStatic, f.Counters.DequeueDynamic, f.Counters.Steals, f.Counters.Mismatches)
	fmt.Printf("  ||PA-LU||   %.2e (normalized)\n", repro.Residual(a, f))
	if *solve {
		rhs := make([]float64, *n)
		for i := range rhs {
			rhs[i] = 1
		}
		x, err := f.Solve(rhs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hsdfactor: solve: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  ||Ax-b||    %.2e (normalized)\n", repro.SolveResidual(a, x, rhs))
	}
}

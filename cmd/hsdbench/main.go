// Command hsdbench regenerates the paper's tables and figures.
//
// Usage:
//
//	hsdbench -list
//	hsdbench -exp fig7
//	hsdbench -exp all -scale 0.5 -seed 7
//
// Every experiment id maps to one table or figure of the paper (see
// DESIGN.md's experiment index). Scale 1.0 runs paper-sized matrices on
// the simulated machines; smaller scales run proportionally smaller
// problems for quick iteration.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id (fig1..fig17, table1, thm1, exascale, ablation) or 'all'")
	scale := flag.Float64("scale", 1.0, "matrix size multiplier relative to the paper")
	seed := flag.Int64("seed", 42, "noise / victim-selection seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list || *exp == "" {
		titles := experiments.Titles()
		fmt.Println("available experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-9s %s\n", id, titles[id])
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		tbl, err := experiments.Run(id, *scale, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hsdbench: %v\n", err)
			os.Exit(1)
		}
		tbl.ID = id
		fmt.Println(tbl.String())
	}
}

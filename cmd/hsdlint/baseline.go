// Baseline support: record the suite's current findings, then fail
// future runs only on findings that are not in the record. This is how
// a new analyzer lands in CI before its burn-down finishes, and how the
// lint gate compares a branch against main (-diff) without a checked-in
// baseline file.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// baselineKey identifies a finding stably across checkouts and small
// edits: the module-root-relative file, the analyzer, and the message.
// Line and column are deliberately excluded — unrelated edits move
// findings around and must not churn the baseline.
type baselineKey struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// baselineEntry is one line of the on-disk baseline: a key plus a
// multiset count, so two identical findings in one file stay two.
type baselineEntry struct {
	baselineKey
	Count int `json:"count"`
}

// baselineFile is the hsdlint.baseline.json wire shape.
type baselineFile struct {
	Version  int             `json:"version"`
	Findings []baselineEntry `json:"findings"`
}

// keyOf builds the baseline key for a finding, relativising the file
// against root (the module root of the tree the finding came from).
func keyOf(f analysis.Finding, root string) baselineKey {
	file := f.File
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return baselineKey{File: filepath.ToSlash(file), Analyzer: f.Analyzer, Message: f.Message}
}

// toBaseline folds findings into a multiset of keys.
func toBaseline(findings []analysis.Finding, root string) map[baselineKey]int {
	base := make(map[baselineKey]int, len(findings))
	for _, f := range findings {
		base[keyOf(f, root)]++
	}
	return base
}

// saveBaseline writes the findings as a sorted baseline file.
func saveBaseline(path string, findings []analysis.Finding, root string) error {
	base := toBaseline(findings, root)
	out := baselineFile{Version: 1, Findings: make([]baselineEntry, 0, len(base))}
	for k, n := range base {
		out.Findings = append(out.Findings, baselineEntry{baselineKey: k, Count: n})
	}
	sort.Slice(out.Findings, func(i, j int) bool {
		a, b := out.Findings[i], out.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	raw, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// loadBaseline reads a baseline file back into a multiset.
func loadBaseline(path string) (map[baselineKey]int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("hsdlint: reading baseline: %w", err)
	}
	var in baselineFile
	if err := json.Unmarshal(raw, &in); err != nil {
		return nil, fmt.Errorf("hsdlint: parsing baseline %s: %w", path, err)
	}
	base := make(map[baselineKey]int, len(in.Findings))
	for _, e := range in.Findings {
		n := e.Count
		if n < 1 {
			n = 1
		}
		base[e.baselineKey] += n
	}
	return base, nil
}

// subtractBaseline splits findings into fresh ones and a count of known
// ones. Each baseline entry absorbs at most Count findings — the
// multiset semantics — so a regression that duplicates a known finding
// still fails the gate.
func subtractBaseline(findings []analysis.Finding, base map[baselineKey]int, root string) ([]analysis.Finding, int) {
	budget := make(map[baselineKey]int, len(base))
	for k, n := range base {
		budget[k] = n
	}
	var fresh []analysis.Finding
	known := 0
	for _, f := range findings {
		k := keyOf(f, root)
		if budget[k] > 0 {
			budget[k]--
			known++
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh, known
}

// moduleRoot resolves the module root directory for dir, used to make
// finding paths checkout-independent.
func moduleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("hsdlint: resolving module root: %w", err)
	}
	return strings.TrimSpace(string(out)), nil
}

// refBaseline computes the baseline implied by a git ref: check the ref
// out into a throwaway worktree, run the *current* analyzers over it,
// and key the findings against the worktree root. Corpus-directory
// arguments are paths into this tree and are ignored; only package
// patterns carry over.
func refBaseline(ref string, args []string) (map[baselineKey]int, error) {
	root, err := moduleRoot(".")
	if err != nil {
		return nil, err
	}
	tmp, err := os.MkdirTemp("", "hsdlint-diff-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	wt := filepath.Join(tmp, "wt")
	if out, err := exec.Command("git", "-C", root, "worktree", "add", "--detach", wt, ref).CombinedOutput(); err != nil {
		return nil, fmt.Errorf("hsdlint: checking out %s: %v\n%s", ref, err, out)
	}
	defer exec.Command("git", "-C", root, "worktree", "remove", "--force", wt).Run()

	var patterns []string
	for _, a := range args {
		if !isCorpusDir(a) {
			patterns = append(patterns, a)
		}
	}
	prog, err := analysis.Load(wt, patterns)
	if err != nil {
		return nil, fmt.Errorf("hsdlint: linting %s: %w", ref, err)
	}
	// Relativise against the worktree's own module root (as go sees
	// it), which matches the Finding.File paths from the same loader.
	wtroot, err := moduleRoot(wt)
	if err != nil {
		return nil, err
	}
	return toBaseline(analysis.Run(prog, analysis.All()), wtroot), nil
}

package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

const corpusRoot = "../../internal/analysis/testdata/src"

// TestCorpusExitsNonzero pins the acceptance contract: the driver must
// exit nonzero with findings on every corpus package.
func TestCorpusExitsNonzero(t *testing.T) {
	dirs, err := filepath.Glob(filepath.Join(corpusRoot, "*"))
	if err != nil || len(dirs) == 0 {
		t.Fatalf("no corpus dirs: %v", err)
	}
	for _, dir := range dirs {
		if got := run([]string{dir}); got != 1 {
			t.Errorf("run(%s) exit = %d, want 1", dir, got)
		}
	}
}

// TestTreeExitsZero runs the suite over the whole module (the CI lint
// gate) and requires a clean exit.
func TestTreeExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	if got := run([]string{"repro/..."}); got != 0 {
		t.Fatalf("run(repro/...) exit = %d, want 0", got)
	}
}

// TestBadPatternExitsTwo pins the load-error exit code.
func TestBadPatternExitsTwo(t *testing.T) {
	if got := run([]string{"repro/internal/does-not-exist"}); got != 2 {
		t.Fatalf("run(bogus) exit = %d, want 2", got)
	}
}

// TestJSONFindings pins the -json wire shape: lower-case keys carrying
// file, line and analyzer, so future tooling can diff findings across
// PRs.
func TestJSONFindings(t *testing.T) {
	findings, err := lint([]string{filepath.Join(corpusRoot, "tunegate")})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("tunegate corpus produced no findings")
	}
	raw, err := json.Marshal(findings[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"file"`, `"line"`, `"col"`, `"analyzer"`, `"message"`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("JSON finding %s lacks %s", raw, key)
		}
	}
}

// TestListExitsZero keeps -list wired up.
func TestListExitsZero(t *testing.T) {
	if got := run([]string{"-list"}); got != 0 {
		t.Fatalf("run(-list) exit = %d, want 0", got)
	}
}

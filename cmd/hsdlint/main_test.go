package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

const corpusRoot = "../../internal/analysis/testdata/src"

// TestCorpusExitsNonzero pins the acceptance contract: the driver must
// exit nonzero with findings on every corpus package.
func TestCorpusExitsNonzero(t *testing.T) {
	dirs, err := filepath.Glob(filepath.Join(corpusRoot, "*"))
	if err != nil || len(dirs) == 0 {
		t.Fatalf("no corpus dirs: %v", err)
	}
	for _, dir := range dirs {
		if got := run([]string{dir}); got != 1 {
			t.Errorf("run(%s) exit = %d, want 1", dir, got)
		}
	}
}

// TestTreeExitsZero runs the suite over the whole module (the CI lint
// gate) and requires a clean exit.
func TestTreeExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	if got := run([]string{"repro/..."}); got != 0 {
		t.Fatalf("run(repro/...) exit = %d, want 0", got)
	}
}

// TestBadPatternExitsTwo pins the load-error exit code.
func TestBadPatternExitsTwo(t *testing.T) {
	if got := run([]string{"repro/internal/does-not-exist"}); got != 2 {
		t.Fatalf("run(bogus) exit = %d, want 2", got)
	}
}

// TestJSONFindings pins the -json wire shape: lower-case keys carrying
// file, line and analyzer, so future tooling can diff findings across
// PRs.
func TestJSONFindings(t *testing.T) {
	findings, err := lint([]string{filepath.Join(corpusRoot, "tunegate")})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("tunegate corpus produced no findings")
	}
	raw, err := json.Marshal(findings[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"file"`, `"line"`, `"col"`, `"analyzer"`, `"message"`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("JSON finding %s lacks %s", raw, key)
		}
	}
}

// TestListExitsZero keeps -list wired up.
func TestListExitsZero(t *testing.T) {
	if got := run([]string{"-list"}); got != 0 {
		t.Fatalf("run(-list) exit = %d, want 0", got)
	}
}

// TestListShowsFlowTags pins the -list columns: every analyzer carries
// a flow-sensitive tag, and both values occur in the current suite.
func TestListShowsFlowTags(t *testing.T) {
	var buf strings.Builder
	listAnalyzers(&buf)
	out := buf.String()
	if !strings.Contains(out, "flow-sensitive: yes") {
		t.Errorf("-list output has no flow-sensitive analyzers:\n%s", out)
	}
	if !strings.Contains(out, "flow-sensitive: no") {
		t.Errorf("-list output has no syntax-only analyzers:\n%s", out)
	}
	for _, a := range analysis.All() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output lacks analyzer %s", a.Name)
		}
	}
}

// TestBaselineRoundTrip: recording a corpus's findings and replaying
// them as a baseline suppresses every one of them — the multiset
// subtraction is exact.
func TestBaselineRoundTrip(t *testing.T) {
	dir := filepath.Join(corpusRoot, "lockorder")
	findings, err := lint([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("lockorder corpus produced no findings")
	}
	root, err := moduleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "hsdlint.baseline.json")
	if err := saveBaseline(path, findings, root); err != nil {
		t.Fatal(err)
	}
	base, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	fresh, known := subtractBaseline(findings, base, root)
	if len(fresh) != 0 || known != len(findings) {
		t.Fatalf("round trip: %d fresh, %d known, want 0 fresh and %d known", len(fresh), known, len(findings))
	}
}

// TestBaselineFailsOnNewFindings: a baseline missing one entry lets
// exactly that finding through, and an entry's count absorbs only its
// recorded number of duplicates.
func TestBaselineFailsOnNewFindings(t *testing.T) {
	dir := filepath.Join(corpusRoot, "errstatus")
	findings, err := lint([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) < 2 {
		t.Fatalf("errstatus corpus produced %d findings, need at least 2", len(findings))
	}
	root, err := moduleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	base := toBaseline(findings[1:], root)
	fresh, known := subtractBaseline(findings, base, root)
	if len(fresh) != 1 || known != len(findings)-1 {
		t.Fatalf("partial baseline: %d fresh, %d known, want 1 fresh and %d known", len(fresh), known, len(findings)-1)
	}
	if fresh[0].Message != findings[0].Message {
		t.Fatalf("wrong finding survived: %s", fresh[0])
	}
}

// TestWriteBaselineFlagExitsZero: -write-baseline records findings and
// exits clean even on a corpus full of violations, and a follow-up run
// with -baseline is clean too.
func TestWriteBaselineFlagExitsZero(t *testing.T) {
	dir := filepath.Join(corpusRoot, "goloop")
	path := filepath.Join(t.TempDir(), "hsdlint.baseline.json")
	if got := run([]string{"-write-baseline", path, dir}); got != 0 {
		t.Fatalf("run(-write-baseline) exit = %d, want 0", got)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("baseline file not written: %v", err)
	}
	if got := run([]string{"-baseline", path, dir}); got != 0 {
		t.Fatalf("run(-baseline) exit = %d, want 0 with all findings known", got)
	}
	if got := run([]string{dir}); got != 1 {
		t.Fatalf("run without baseline exit = %d, want 1", got)
	}
}

// TestBaselineDiffFlagsExclusive pins the usage error.
func TestBaselineDiffFlagsExclusive(t *testing.T) {
	if got := run([]string{"-baseline", "x.json", "-diff", "HEAD"}); got != 2 {
		t.Fatalf("run(-baseline -diff) exit = %d, want 2", got)
	}
}

// TestDiffAgainstHead runs the full -diff machinery: lint the module,
// lint a worktree of HEAD with the same suite, fail only on findings
// the working tree added. Whatever HEAD's state, the working tree
// linting clean means -diff must be clean too.
func TestDiffAgainstHead(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the module twice")
	}
	if got := run([]string{"-diff", "HEAD", "repro/..."}); got != 0 {
		t.Fatalf("run(-diff HEAD) exit = %d, want 0", got)
	}
}

// Command hsdlint runs the project's invariant analyzers
// (internal/analysis) over the module and reports violations as
//
//	file:line: [analyzer] message
//
// exiting nonzero if anything is found, so CI can gate merges on it.
//
// Usage:
//
//	hsdlint [-json] [-list] [patterns...]
//
// Patterns are go package patterns (default "./..."), resolved in the
// current directory. An argument naming a testdata directory (which go
// package patterns never reach) is loaded as a bare directory of Go
// files instead — that is how the golden tests and ad-hoc corpus runs
// invoke the driver.
//
// Exit codes: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("hsdlint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	findings, err := lint(fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	if *jsonOut {
		if findings == nil {
			findings = []analysis.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "hsdlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// lint resolves the command-line arguments and runs the full suite.
// Go package patterns load together as one program (so cross-package
// contracts are visible); each corpus directory loads as its own
// little program. Findings are aggregated across all of them.
func lint(args []string) ([]analysis.Finding, error) {
	var patterns, dirs []string
	for _, a := range args {
		if isCorpusDir(a) {
			dirs = append(dirs, a)
		} else {
			patterns = append(patterns, a)
		}
	}

	var findings []analysis.Finding
	if len(patterns) > 0 || len(dirs) == 0 {
		prog, err := analysis.Load(".", patterns)
		if err != nil {
			return nil, err
		}
		findings = append(findings, analysis.Run(prog, analysis.All())...)
	}
	for _, dir := range dirs {
		prog, err := analysis.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		findings = append(findings, analysis.Run(prog, analysis.All())...)
	}
	return findings, nil
}

// isCorpusDir reports whether arg names a testdata directory, which go
// package patterns cannot reach and must be loaded directly. Anything
// else — including other existing directories — goes through go list,
// whose loader has full module context.
func isCorpusDir(arg string) bool {
	if strings.Contains(arg, "...") {
		return false
	}
	st, err := os.Stat(arg)
	if err != nil || !st.IsDir() {
		return false
	}
	return strings.Contains(filepath.ToSlash(arg), "testdata")
}

// Command hsdlint runs the project's invariant analyzers
// (internal/analysis) over the module and reports violations as
//
//	file:line: [analyzer] message
//
// exiting nonzero if anything is found, so CI can gate merges on it.
//
// Usage:
//
//	hsdlint [-json] [-list] [-baseline file] [-write-baseline file] [-diff ref] [patterns...]
//
// Patterns are go package patterns (default "./..."), resolved in the
// current directory. An argument naming a testdata directory (which go
// package patterns never reach) is loaded as a bare directory of Go
// files instead — that is how the golden tests and ad-hoc corpus runs
// invoke the driver.
//
// Baseline mode lets a new analyzer land before its burn-down is done:
// -write-baseline records today's findings to a file (conventionally
// hsdlint.baseline.json); -baseline suppresses exactly those recorded
// findings and fails only on new ones. -diff <ref> does the same
// without a file: it runs the current analyzers over a throwaway git
// worktree of <ref> and uses those findings as the baseline, so CI can
// gate a branch on "no findings beyond main".
//
// -list prints each analyzer with a flow-sensitive tag: flow-sensitive
// analyzers run on the CFG/dataflow engine, the rest match syntax.
//
// Exit codes: 0 clean (or only known findings), 1 new findings,
// 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("hsdlint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	list := fs.Bool("list", false, "list the analyzers and exit")
	baselinePath := fs.String("baseline", "", "suppress findings recorded in this baseline file; fail only on new ones")
	writeBaseline := fs.String("write-baseline", "", "run the suite and record the findings to this file, then exit 0")
	diffRef := fs.String("diff", "", "suppress findings also present at this git ref; fail only on new ones")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		listAnalyzers(os.Stdout)
		return 0
	}
	if *baselinePath != "" && *diffRef != "" {
		fmt.Fprintln(os.Stderr, "hsdlint: -baseline and -diff are mutually exclusive")
		return 2
	}

	findings, err := lint(fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	if *writeBaseline != "" {
		root, err := moduleRoot(".")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if err := saveBaseline(*writeBaseline, findings, root); err != nil {
			fmt.Fprintln(os.Stderr, "hsdlint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "hsdlint: recorded %d finding(s) in %s\n", len(findings), *writeBaseline)
		return 0
	}

	known := 0
	if *baselinePath != "" || *diffRef != "" {
		var base map[baselineKey]int
		if *diffRef != "" {
			base, err = refBaseline(*diffRef, fs.Args())
		} else {
			base, err = loadBaseline(*baselinePath)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		root, err := moduleRoot(".")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		findings, known = subtractBaseline(findings, base, root)
	}

	if *jsonOut {
		if findings == nil {
			findings = []analysis.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "hsdlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
	}
	if known > 0 {
		fmt.Fprintf(os.Stderr, "hsdlint: %d known finding(s) suppressed by baseline\n", known)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// listAnalyzers prints the suite, tagging each analyzer with whether it
// runs on the CFG/dataflow engine or matches syntax shapes.
func listAnalyzers(w io.Writer) {
	for _, a := range analysis.All() {
		flow := "no"
		if a.Flow {
			flow = "yes"
		}
		fmt.Fprintf(w, "%-14s flow-sensitive: %-3s  %s\n", a.Name, flow, a.Doc)
	}
}

// lint resolves the command-line arguments and runs the full suite.
// Go package patterns load together as one program (so cross-package
// contracts are visible); each corpus directory loads as its own
// little program. Findings are aggregated across all of them.
func lint(args []string) ([]analysis.Finding, error) {
	var patterns, dirs []string
	for _, a := range args {
		if isCorpusDir(a) {
			dirs = append(dirs, a)
		} else {
			patterns = append(patterns, a)
		}
	}

	var findings []analysis.Finding
	if len(patterns) > 0 || len(dirs) == 0 {
		prog, err := analysis.Load(".", patterns)
		if err != nil {
			return nil, err
		}
		findings = append(findings, analysis.Run(prog, analysis.All())...)
	}
	for _, dir := range dirs {
		prog, err := analysis.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		findings = append(findings, analysis.Run(prog, analysis.All())...)
	}
	return findings, nil
}

// isCorpusDir reports whether arg names a testdata directory, which go
// package patterns cannot reach and must be loaded directly. Anything
// else — including other existing directories — goes through go list,
// whose loader has full module context.
func isCorpusDir(arg string) bool {
	if strings.Contains(arg, "...") {
		return false
	}
	st, err := os.Stat(arg)
	if err != nil || !st.IsDir() {
		return false
	}
	return strings.Contains(filepath.ToSlash(arg), "testdata")
}

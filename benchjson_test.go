// -benchjson: machine-readable kernel throughput. `go test -bench=...
// -benchjson BENCH_kernel.json` writes a {benchmark name: GFLOPS} JSON
// object for the kernel benchmarks that report a GFLOPS metric, so CI
// can archive per-shape throughput as an artifact and PRs can diff it
// against a recorded baseline instead of eyeballing ns/op logs.
package repro

import (
	"encoding/json"
	"flag"
	"os"
	"sync"
	"testing"
)

var benchJSONPath = flag.String("benchjson", "", "write kernel benchmark GFLOPS to this JSON file")

var (
	benchJSONMu  sync.Mutex
	benchJSONRec = map[string]float64{}
)

// recordBenchGFLOPS notes one benchmark's throughput and rewrites the
// JSON file. Benchmarks have no global teardown hook, so rewriting the
// accumulated map on every record keeps the file complete whenever the
// run ends; repeated runs of one benchmark are last-write-wins.
func recordBenchGFLOPS(b *testing.B, gflops float64) {
	if *benchJSONPath == "" {
		return
	}
	benchJSONMu.Lock()
	defer benchJSONMu.Unlock()
	benchJSONRec[b.Name()] = gflops
	buf, err := json.MarshalIndent(benchJSONRec, "", "  ")
	if err != nil {
		b.Fatalf("benchjson: %v", err)
	}
	if err := os.WriteFile(*benchJSONPath, append(buf, '\n'), 0o644); err != nil {
		b.Fatalf("benchjson: %v", err)
	}
}

// Package serve is the engine shard server: the HTTP/JSON surface that
// cmd/hsdserve listens on and that the cluster router places work on.
// One Server wraps one resident engine plus an LRU keep-store of
// completed factorizations, and exposes:
//
//   - the data plane — /v1/factor, /v1/cholesky, /v1/solve,
//     /v1/cholesky/solve, /v1/stats — with the traffic-shaped admission
//     semantics of internal/engine (429 saturation, 503 shed deadlines,
//     422 degraded solves with the solvable prefix);
//   - the cluster admin plane — /v1/admin/export and /v1/admin/import
//     move serialized factorizations between shards for replication and
//     drain migration, /v1/admin/drain flips the shard into draining
//     (new jobs 503, inflight finishes, readiness false);
//   - health — /healthz (process up) and /readyz (engine open and not
//     draining), which probes and load balancers key off.
//
// Mutating endpoints are POST-only (405 otherwise), require a matching
// Content-Type when one is sent (415), cap bodies (413) and reject
// trailing data after the JSON value (400).
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"mime"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/layout"
	"repro/internal/mat"
)

// DefaultMaxBody caps request bodies (a 2048x2048 JSON matrix is
// ~90 MB; we stop well before a streaming client can grow memory
// without bound).
const DefaultMaxBody = 256 << 20

// Options configures a Server around an engine.
type Options struct {
	// Keep is the resident-factorization count bound (clamped >= 1).
	Keep int
	// MaxBody caps request bodies; <= 0 selects DefaultMaxBody.
	MaxBody int64
	// MemBudget bounds resident factorization bytes; 0 = unbounded.
	MemBudget int64
	// TTL expires idle resident factorizations; 0 = never.
	TTL time.Duration
}

// Server wires one engine to the HTTP mux and owns its keep-store.
type Server struct {
	eng      *engine.Engine
	store    *engine.Store
	maxBody  int64
	draining atomic.Bool
}

// New builds a Server. The caller keeps ownership of the engine (and
// closes it).
func New(eng *engine.Engine, opt Options) *Server {
	if opt.MaxBody <= 0 {
		opt.MaxBody = DefaultMaxBody
	}
	return &Server{
		eng:     eng,
		maxBody: opt.MaxBody,
		store: engine.NewStore(engine.StoreOptions{
			Keep: opt.Keep, MemBudget: opt.MemBudget, TTL: opt.TTL,
		}),
	}
}

// Store exposes the keep-store (tests and admin tooling).
func (s *Server) Store() *engine.Store { return s.store }

// Draining reports whether the shard has been told to drain.
func (s *Server) Draining() bool { return s.draining.Load() }

type factorRequest struct {
	// ID, when set, stores the factorization under an explicit id —
	// the cluster router assigns cluster-wide keys this way. Empty
	// picks a generated local id.
	ID string `json:"id"`

	// Either a generated test matrix ...
	N    int   `json:"n"`
	Seed int64 `json:"seed"`
	// ... or caller-supplied data (row-major, rows*cols entries).
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`

	Block        int     `json:"block"`
	Workers      int     `json:"workers"`
	Scheduler    string  `json:"scheduler"`
	Layout       string  `json:"layout"`
	DynamicRatio float64 `json:"dynamicRatio"`
	// Class routes the job in the engine's two-lane admission: "auto"
	// (default), "small" or "large".
	Class string `json:"class"`
	// DeadlineMs is the submit-relative SLO; jobs the engine estimates
	// cannot meet it are shed with 503. 0 means no deadline.
	DeadlineMs float64 `json:"deadlineMs"`
	// Residual requests the O(n^3) backward-error check in the reply.
	Residual bool `json:"residual"`
}

type factorReply struct {
	ID          string   `json:"id"`
	Class       string   `json:"class"`
	Granted     int      `json:"granted"`
	QueueWaitMs float64  `json:"queueWaitMs"`
	SpanMs      float64  `json:"spanMs"`
	Residual    *float64 `json:"residual,omitempty"`
}

type solveRequest struct {
	ID string `json:"id"`
	// B is the right-hand side: n entries for one system, n*nrhs
	// entries (column-major) when NRHS > 1.
	B    []float64 `json:"b"`
	NRHS int       `json:"nrhs"`

	Block        int     `json:"block"`
	Workers      int     `json:"workers"`
	Scheduler    string  `json:"scheduler"`
	DynamicRatio float64 `json:"dynamicRatio"`
	Class        string  `json:"class"`
	DeadlineMs   float64 `json:"deadlineMs"`
}

type solveReply struct {
	ID string `json:"id"`
	// X is the solution, column-major n x nrhs.
	X           []float64 `json:"x"`
	NRHS        int       `json:"nrhs"`
	Class       string    `json:"class"`
	Granted     int       `json:"granted"`
	QueueWaitMs float64   `json:"queueWaitMs"`
	SpanMs      float64   `json:"spanMs"`
}

func schedulerOptions(name string, opt *core.Options) error {
	switch strings.ToLower(name) {
	case "", "hybrid":
		opt.Scheduler = core.ScheduleHybrid
		if opt.DynamicRatio == 0 {
			opt.DynamicRatio = 0.1
		}
	case "static":
		opt.Scheduler = core.ScheduleStatic
	case "dynamic":
		opt.Scheduler = core.ScheduleDynamic
	case "worksteal":
		opt.Scheduler = core.ScheduleWorkStealing
	default:
		return fmt.Errorf("unknown scheduler %q", name)
	}
	return nil
}

// classOptions maps the request's traffic-shaping fields onto Options.
func classOptions(class string, deadlineMs float64, opt *core.Options) error {
	switch strings.ToLower(class) {
	case "", "auto":
		opt.Class = core.ClassAuto
	case "small":
		opt.Class = core.ClassSmall
	case "large", "big":
		opt.Class = core.ClassLarge
	default:
		return fmt.Errorf("unknown class %q (use auto, small or large)", class)
	}
	if deadlineMs < 0 {
		return fmt.Errorf("deadlineMs must be >= 0, got %g", deadlineMs)
	}
	opt.Deadline = time.Duration(deadlineMs * float64(time.Millisecond))
	return nil
}

func (s *Server) options(req *factorRequest) (core.Options, error) {
	opt := core.Options{
		Block:        req.Block,
		Workers:      req.Workers,
		DynamicRatio: req.DynamicRatio,
		Seed:         req.Seed,
	}
	switch strings.ToLower(req.Layout) {
	case "", "bcl":
		opt.Layout = layout.BCL
	case "cm":
		opt.Layout = layout.CM
	case "2l", "2l-bl", "twolevel":
		opt.Layout = layout.TwoLevel
	default:
		return opt, fmt.Errorf("unknown layout %q", req.Layout)
	}
	if err := schedulerOptions(req.Scheduler, &opt); err != nil {
		return opt, err
	}
	if err := classOptions(req.Class, req.DeadlineMs, &opt); err != nil {
		return opt, err
	}
	return opt, nil
}

// matrix materializes the request's input matrix. spd selects the
// generated-matrix flavour for /v1/cholesky.
func (s *Server) matrix(req *factorRequest, spd bool) (*mat.Dense, error) {
	if len(req.Data) > 0 {
		if req.Rows <= 0 || req.Cols <= 0 || len(req.Data) != req.Rows*req.Cols {
			return nil, fmt.Errorf("data needs rows*cols = %d*%d entries, got %d",
				req.Rows, req.Cols, len(req.Data))
		}
		a := mat.New(req.Rows, req.Cols)
		for i := 0; i < req.Rows; i++ {
			for j := 0; j < req.Cols; j++ {
				a.Set(i, j, req.Data[i*req.Cols+j])
			}
		}
		return a, nil
	}
	if req.N <= 0 {
		return nil, fmt.Errorf("need either n > 0 or rows/cols/data")
	}
	if spd {
		return core.RandomSPD(req.N, req.Seed), nil
	}
	return mat.Random(req.N, req.N, rand.New(rand.NewSource(req.Seed))), nil
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// drainError is the 503 every job-creating endpoint returns once the
// shard is draining: the router reads it as "fail over".
func drainError(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	httpError(w, http.StatusServiceUnavailable, "shard draining, no new jobs")
}

// decodePost guards a mutating endpoint: POST only (405 otherwise), a
// JSON Content-Type when one is sent (415 otherwise — a body that is
// not JSON was almost certainly not meant for this API), the body
// capped at maxBody (413) and exactly one JSON value in it — trailing
// garbage after the value (a second JSON document, stray bytes) is a
// malformed request, not something to silently ignore.
func (s *Server) decodePost(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, "method %s not allowed, use POST", r.Method)
		return false
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || mt != "application/json" {
			httpError(w, http.StatusUnsupportedMediaType,
				"unsupported Content-Type %q, use application/json", ct)
			return false
		}
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err := dec.Decode(v); err != nil {
		bodyError(w, err)
		return false
	}
	// Token (not More) is the complete trailing check: More reports
	// false for a stray closing bracket, while Token returns io.EOF
	// only when nothing but whitespace follows the value.
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		//hsd:allow errstatus io.EOF is the success condition here, not an error being mapped
		httpError(w, http.StatusBadRequest, "bad request: trailing data after JSON body")
		return false
	}
	return true
}

// bodyError maps a request-body read or decode error to its HTTP
// reply: an oversized body is 413 carrying the limit, anything else is
// the caller's 400. Part of the package's error-to-status table
// (//hsd:statusmap): hsdlint's errstatus analyzer keeps every
// errors.Is/As → 4xx/5xx mapping inside table functions like this one.
//
//hsd:statusmap
func bodyError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		httpError(w, http.StatusRequestEntityTooLarge,
			"request body exceeds %d bytes", tooBig.Limit)
		return
	}
	httpError(w, http.StatusBadRequest, "bad request: %v", err)
}

// submitError maps an engine submission error to an HTTP reply: a shed
// deadline is 503 (the request was refused for its SLO, not for load —
// retrying with a looser deadline can succeed), saturation is 429 so
// load balancers back off, anything else is the caller's fault. Part of
// the package's error-to-status table.
//
//hsd:statusmap
func submitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, engine.ErrDeadlineInfeasible):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, engine.ErrSaturated):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "engine saturated, retry later")
	default:
		httpError(w, http.StatusBadRequest, "%v", err)
	}
}

// solveError maps a failed solve job to its HTTP reply: a singular
// system gets the typed 422 carrying how much of the system is still
// solvable, anything else a plain 422. Part of the package's
// error-to-status table.
//
//hsd:statusmap
func solveError(w http.ResponseWriter, err error) {
	var se *core.SingularSolveError
	if errors.As(err, &se) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		json.NewEncoder(w).Encode(map[string]any{
			"error":          err.Error(),
			"solvablePrefix": se.Prefix,
			"n":              se.N,
			"degradedSystem": true,
		})
		return
	}
	httpError(w, http.StatusUnprocessableEntity, "solve failed: %v", err)
}

// handleFactor serves /v1/factor (chol=false) and /v1/cholesky
// (chol=true).
func (s *Server) handleFactor(w http.ResponseWriter, r *http.Request, chol bool) {
	var req factorRequest
	if !s.decodePost(w, r, &req) {
		return
	}
	if s.draining.Load() {
		drainError(w)
		return
	}
	opt, err := s.options(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	a, err := s.matrix(&req, chol)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var job *engine.Job
	if chol {
		job, err = s.eng.TrySubmitCholeskyFactor(a, opt)
	} else {
		job, err = s.eng.TrySubmitFactor(a, opt)
	}
	if err != nil {
		submitError(w, err)
		return
	}
	if err := job.Wait(); err != nil {
		httpError(w, http.StatusUnprocessableEntity, "factorization failed: %v", err)
		return
	}
	var k engine.Kept
	var res float64
	if chol {
		k = engine.Kept{Chol: job.CholeskyFactorization()}
		if req.Residual {
			res = core.CholeskyResidual(a, k.Chol)
		}
	} else {
		k = engine.Kept{LU: job.Factorization()}
		if req.Residual {
			res = core.Residual(a, k.LU)
		}
	}
	id := req.ID
	if id != "" {
		s.store.PutAs(id, k)
	} else if chol {
		id = s.store.Put("c", k)
	} else {
		id = s.store.Put("f", k)
	}
	rep := factorReply{
		ID:          id,
		Class:       job.Class().String(),
		Granted:     job.Granted(),
		QueueWaitMs: job.QueueWait().Seconds() * 1e3,
		SpanMs:      job.Span().Seconds() * 1e3,
	}
	if req.Residual {
		rep.Residual = &res
	}
	reply(w, rep)
}

// handleSolve serves /v1/solve (any stored id) and /v1/cholesky/solve
// (cholesky ids only).
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request, wantChol bool) {
	var req solveRequest
	if !s.decodePost(w, r, &req) {
		return
	}
	if s.draining.Load() {
		drainError(w)
		return
	}
	k, ok := s.store.Get(req.ID)
	if !ok {
		httpError(w, http.StatusNotFound, "no factorization %q (evicted or never existed)", req.ID)
		return
	}
	if wantChol && k.Chol == nil {
		httpError(w, http.StatusBadRequest, "%q is not a cholesky factorization", req.ID)
		return
	}
	n := k.N()
	nrhs := req.NRHS
	if nrhs <= 0 {
		nrhs = 1
	}
	// nrhs > len(B) is always invalid (n >= 1) and, checked first, keeps
	// the n*nrhs product far from integer overflow for any body that
	// fits the request size cap.
	if nrhs > len(req.B) || len(req.B) != n*nrhs {
		httpError(w, http.StatusBadRequest, "rhs needs n*nrhs = %d*%d entries, got %d", n, nrhs, len(req.B))
		return
	}
	opt := core.Options{Block: req.Block, Workers: req.Workers, DynamicRatio: req.DynamicRatio}
	if err := schedulerOptions(req.Scheduler, &opt); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := classOptions(req.Class, req.DeadlineMs, &opt); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	bm := mat.New(n, nrhs)
	copy(bm.Data, req.B)
	job, err := s.eng.TrySubmitSolveMany(k.Solvable(), bm, opt)
	if err != nil {
		submitError(w, err)
		return
	}
	if err := job.Wait(); err != nil {
		solveError(w, err)
		return
	}
	// The solution block is tightly strided (mat.New), so its backing
	// array IS the column-major flat reply — no copy on the hot path.
	x := job.SolutionMatrix()
	reply(w, solveReply{
		ID: req.ID, X: x.Data, NRHS: nrhs,
		Class:       job.Class().String(),
		Granted:     job.Granted(),
		QueueWaitMs: job.QueueWait().Seconds() * 1e3,
		SpanMs:      job.Span().Seconds() * 1e3,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, "method %s not allowed, use GET", r.Method)
		return
	}
	st := s.store.Stats()
	reply(w, map[string]any{
		"engine":   s.eng.Stats(),
		"draining": s.draining.Load(),
		"store": map[string]any{
			"count":       st.Count,
			"bytes":       st.Bytes,
			"budgetBytes": st.BudgetBytes,
			"keep":        st.Keep,
			"ttlMs":       st.TTL.Seconds() * 1e3,
			"evictions":   st.Evictions,
			"expiries":    st.Expiries,
			"imports":     st.Imports,
		},
	})
}

// handleHealthz answers as long as the process serves requests at all.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, "method %s not allowed, use GET", r.Method)
		return
	}
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

// handleReadyz reports readiness for new work: the engine is open and
// the shard is not draining.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, "method %s not allowed, use GET", r.Method)
		return
	}
	switch {
	case s.draining.Load():
		httpError(w, http.StatusServiceUnavailable, "draining")
	case s.eng.Stats().Closed:
		httpError(w, http.StatusServiceUnavailable, "engine closed")
	default:
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ready\n")
	}
}

// handleExport serves /v1/admin/export: with ?id= it streams the
// serialized factorization (the unit of replication and migration);
// without, it lists resident ids as JSON.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, "method %s not allowed, use GET", r.Method)
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		reply(w, map[string]any{"ids": s.store.IDs()})
		return
	}
	k, ok := s.store.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no factorization %q (evicted or never existed)", id)
		return
	}
	wire, err := cluster.EncodeFactorization(k.LU, k.Chol)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encode %q: %v", id, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(wire)))
	w.Write(wire)
}

// handleImport serves /v1/admin/import?id=...: the body is the wire
// encoding of a factorization, stored under the given id. This is how
// replicas and migration targets receive kept state.
func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, "method %s not allowed, use POST", r.Method)
		return
	}
	mt, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if err != nil || mt != "application/octet-stream" {
		httpError(w, http.StatusUnsupportedMediaType,
			"unsupported Content-Type, use application/octet-stream")
		return
	}
	if s.draining.Load() {
		drainError(w)
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		httpError(w, http.StatusBadRequest, "missing id query parameter")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		bodyError(w, err)
		return
	}
	lu, chol, err := cluster.DecodeFactorization(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad factorization payload: %v", err)
		return
	}
	s.store.PutAs(id, engine.Kept{LU: lu, Chol: chol})
	reply(w, map[string]string{"imported": id})
}

// handleDrain serves /v1/admin/drain: the shard stops accepting new
// jobs (factor, solve and import all 503), finishes what is inflight,
// and reports not-ready. Idempotent.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	var req struct{}
	if !s.decodePost(w, r, &req) {
		return
	}
	s.draining.Store(true)
	reply(w, map[string]bool{"draining": true})
}

// Handler builds the route table. Method checks live in the handlers
// (not in method-qualified patterns) so direct handler tests and the
// live server agree on 405 behaviour.
func (s *Server) Handler() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/factor", func(w http.ResponseWriter, r *http.Request) { s.handleFactor(w, r, false) })
	mux.HandleFunc("/v1/cholesky", func(w http.ResponseWriter, r *http.Request) { s.handleFactor(w, r, true) })
	mux.HandleFunc("/v1/solve", func(w http.ResponseWriter, r *http.Request) { s.handleSolve(w, r, false) })
	mux.HandleFunc("/v1/cholesky/solve", func(w http.ResponseWriter, r *http.Request) { s.handleSolve(w, r, true) })
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/admin/export", s.handleExport)
	mux.HandleFunc("/v1/admin/import", s.handleImport)
	mux.HandleFunc("/v1/admin/drain", s.handleDrain)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	return mux
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mat"
)

// newTestServer spins up a small resident engine behind the real mux.
func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	eng, err := engine.New(engine.Options{Workers: 2, MaxInflight: 8, DynamicRatio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Keep == 0 {
		opt.Keep = 8
	}
	s := New(eng, opt)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		eng.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding reply: %v", err)
	}
	return resp, out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestServeFactorSolveRoundTrip drives factor then single- and
// multi-RHS solves through the HTTP surface and checks the arithmetic.
func TestServeFactorSolveRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, out := postJSON(t, ts.URL+"/v1/factor",
		`{"rows":2,"cols":2,"data":[4,3,6,3],"residual":true,"workers":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("factor: %d %v", resp.StatusCode, out)
	}
	id := out["id"].(string)
	if r := out["residual"].(float64); r > 1e-12 {
		t.Fatalf("factor residual %g", r)
	}

	resp, out = postJSON(t, ts.URL+"/v1/solve", fmt.Sprintf(`{"id":%q,"b":[10,12]}`, id))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %v", resp.StatusCode, out)
	}
	x := out["x"].([]any)
	// 4x+3y=10, 6x+3y=12 -> x=1, y=2.
	if len(x) != 2 || abs(x[0].(float64)-1) > 1e-12 || abs(x[1].(float64)-2) > 1e-12 {
		t.Fatalf("solve got %v, want [1 2]", x)
	}

	// Two right-hand sides at once, column-major.
	resp, out = postJSON(t, ts.URL+"/v1/solve",
		fmt.Sprintf(`{"id":%q,"b":[10,12,7,9],"nrhs":2}`, id))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve nrhs=2: %d %v", resp.StatusCode, out)
	}
	if got := out["x"].([]any); len(got) != 4 {
		t.Fatalf("multi-RHS solution length %d, want 4", len(got))
	}
	if out["nrhs"].(float64) != 2 {
		t.Fatalf("nrhs echoed %v", out["nrhs"])
	}
}

// TestServeCholeskyEndpoints round-trips /v1/cholesky and
// /v1/cholesky/solve, and checks the cholesky solve endpoint rejects
// LU ids.
func TestServeCholeskyEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, out := postJSON(t, ts.URL+"/v1/cholesky", `{"n":48,"seed":3,"workers":1,"residual":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cholesky factor: %d %v", resp.StatusCode, out)
	}
	id := out["id"].(string)
	if !strings.HasPrefix(id, "c-") {
		t.Fatalf("cholesky id %q", id)
	}
	if r := out["residual"].(float64); r > 1e-10 {
		t.Fatalf("cholesky residual %g", r)
	}
	b := make([]string, 48)
	for i := range b {
		b[i] = "1"
	}
	resp, out = postJSON(t, ts.URL+"/v1/cholesky/solve",
		fmt.Sprintf(`{"id":%q,"b":[%s]}`, id, strings.Join(b, ",")))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cholesky solve: %d %v", resp.StatusCode, out)
	}
	if len(out["x"].([]any)) != 48 {
		t.Fatalf("cholesky solution length %d", len(out["x"].([]any)))
	}

	// An LU id is not accepted by the cholesky solve endpoint.
	resp, out = postJSON(t, ts.URL+"/v1/factor", `{"n":16,"seed":1,"workers":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("factor: %d %v", resp.StatusCode, out)
	}
	luID := out["id"].(string)
	resp, _ = postJSON(t, ts.URL+"/v1/cholesky/solve",
		fmt.Sprintf(`{"id":%q,"b":[%s]}`, luID, strings.Repeat("1,", 15)+"1"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cholesky solve of LU id: %d, want 400", resp.StatusCode)
	}
}

// TestServeMethodNotAllowed: every mutating endpoint rejects non-POST
// with 405 (and an Allow header); GET-only endpoints reject POST.
func TestServeMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, path := range []string{
		"/v1/factor", "/v1/solve", "/v1/cholesky", "/v1/cholesky/solve",
		"/v1/admin/import", "/v1/admin/drain",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s: %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
			t.Fatalf("GET %s: Allow %q, want POST", path, allow)
		}
	}
	for _, path := range []string{"/v1/stats", "/v1/admin/export", "/healthz", "/readyz"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s: %d, want 405", path, resp.StatusCode)
		}
	}
}

// TestServeTrailingGarbageRejected: a body with data after the first
// JSON value is a 400, on every mutating endpoint.
func TestServeTrailingGarbageRejected(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	bodies := map[string]string{
		"/v1/factor":         `{"n":8,"seed":1} {"n":9}`,
		"/v1/cholesky":       `{"n":8,"seed":1} garbage`,
		"/v1/solve":          `{"id":"f-1","b":[1]} []`,
		"/v1/cholesky/solve": `{"id":"c-1","b":[1]} 42`,
	}
	for path, body := range bodies {
		resp, out := postJSON(t, ts.URL+path, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s with trailing data: %d (%v), want 400", path, resp.StatusCode, out)
		}
	}
	// Stray closing brackets are the json.Decoder.More blind spot: More
	// peeks '}'/']' and reports false, so only a Token/EOF check
	// catches them.
	for _, body := range []string{`{"n":8,"seed":1} }`, `{"n":8,"seed":1} ]`} {
		resp, out := postJSON(t, ts.URL+"/v1/factor", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("trailing bracket %q: %d (%v), want 400", body, resp.StatusCode, out)
		}
	}
	// A clean body still works after the rejections.
	resp, out := postJSON(t, ts.URL+"/v1/factor", `{"n":8,"seed":1,"workers":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean factor after rejects: %d %v", resp.StatusCode, out)
	}
}

// TestServeDegradedSolveReportsPrefix: solving against a degraded
// factorization returns 422 with the solvable prefix, not an opaque
// error string.
func TestServeDegradedSolveReportsPrefix(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	resp, out := postJSON(t, ts.URL+"/v1/factor", `{"n":32,"seed":5,"workers":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("factor: %d %v", resp.StatusCode, out)
	}
	id := out["id"].(string)
	// Degrade the stored factorization the way a prefix-padded singular
	// fallback would: zero the factored tail of U.
	k, ok := s.Store().Get(id)
	if !ok {
		t.Fatalf("stored factorization %q missing", id)
	}
	for j := 20; j < 32; j++ {
		k.LU.U.Set(j, j, 0)
	}
	b := strings.Repeat("1,", 31) + "1"
	resp, out = postJSON(t, ts.URL+"/v1/solve", fmt.Sprintf(`{"id":%q,"b":[%s]}`, id, b))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("degraded solve: %d %v, want 422", resp.StatusCode, out)
	}
	if p := out["solvablePrefix"].(float64); p != 20 {
		t.Fatalf("solvablePrefix %v, want 20", p)
	}
	if n := out["n"].(float64); n != 32 {
		t.Fatalf("n %v, want 32", n)
	}
}

// TestServeSolveBadShapes covers rhs-shape validation and unknown ids.
func TestServeSolveBadShapes(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, _ := postJSON(t, ts.URL+"/v1/solve", `{"id":"f-404","b":[1,2]}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: %d, want 404", resp.StatusCode)
	}
	resp, out := postJSON(t, ts.URL+"/v1/factor", `{"n":8,"seed":2,"workers":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("factor: %d %v", resp.StatusCode, out)
	}
	id := out["id"].(string)
	resp, _ = postJSON(t, ts.URL+"/v1/solve", fmt.Sprintf(`{"id":%q,"b":[1,2,3]}`, id))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short rhs: %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/solve", fmt.Sprintf(`{"id":%q,"b":[1,2,3,4,5,6,7,8],"nrhs":3}`, id))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("rhs not n*nrhs: %d, want 400", resp.StatusCode)
	}
}

// TestServeContentTypeRejected: a POST with a non-JSON Content-Type is
// 415; an absent Content-Type or application/json with parameters is
// accepted.
func TestServeContentTypeRejected(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := `{"n":8,"seed":1,"workers":1}`

	resp, err := http.Post(ts.URL+"/v1/factor", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("text/plain POST: %d, want 415", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/factor", strings.NewReader(body))
	resp, err = http.DefaultClient.Do(req) // no Content-Type at all
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("no-Content-Type POST: %d, want 200", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/factor", "application/json; charset=utf-8", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("charset-parameterized JSON POST: %d, want 200", resp.StatusCode)
	}
}

// TestServeBodyTooLarge: a body past the cap is 413, and the server
// keeps working afterwards.
func TestServeBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxBody: 128})
	big := fmt.Sprintf(`{"n":8,"seed":1,"data":[%s1]}`, strings.Repeat("1,", 200))
	resp, out := postJSON(t, ts.URL+"/v1/factor", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d %v, want 413", resp.StatusCode, out)
	}
	resp, out = postJSON(t, ts.URL+"/v1/factor", `{"n":8,"workers":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small body after 413: %d %v", resp.StatusCode, out)
	}
}

// TestServeStoreLRUEviction: the keep bound evicts the least recently
// USED factorization, not the oldest stored — a solve refreshes its
// factorization's position.
func TestServeStoreLRUEviction(t *testing.T) {
	_, ts := newTestServer(t, Options{Keep: 2})
	factor := func() string {
		resp, out := postJSON(t, ts.URL+"/v1/factor", `{"n":8,"seed":1,"workers":1}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("factor: %d %v", resp.StatusCode, out)
		}
		return out["id"].(string)
	}
	solve := func(id string) int {
		resp, _ := postJSON(t, ts.URL+"/v1/solve",
			fmt.Sprintf(`{"id":%q,"b":[1,1,1,1,1,1,1,1]}`, id))
		return resp.StatusCode
	}

	a, b := factor(), factor()
	if solve(a) != http.StatusOK { // refresh a: now b is least recently used
		t.Fatalf("solve %s before eviction failed", a)
	}
	factor() // third entry: evicts b, not a
	if code := solve(a); code != http.StatusOK {
		t.Fatalf("recently-used %s evicted (solve %d)", a, code)
	}
	if code := solve(b); code != http.StatusNotFound {
		t.Fatalf("least-recently-used %s still resident (solve %d, want 404)", b, code)
	}
}

// TestServeStoreMemBudget: the byte budget evicts old factorizations
// even below the keep count, but never the one just stored.
func TestServeStoreMemBudget(t *testing.T) {
	// A 16x16 LU costs 2*16*16*8 = 4096 bytes; budget one and a half.
	s, ts := newTestServer(t, Options{Keep: 64, MemBudget: 6000})
	factor := func() string {
		resp, out := postJSON(t, ts.URL+"/v1/factor", `{"n":16,"seed":1,"workers":1}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("factor: %d %v", resp.StatusCode, out)
		}
		return out["id"].(string)
	}
	a := factor()
	b := factor() // pushes bytes to 8192 > 6000: evicts a
	if st := s.Store().Stats(); st.Count != 1 || st.Bytes != 4096 {
		t.Fatalf("store after budget eviction: %d entries / %d bytes, want 1 / 4096", st.Count, st.Bytes)
	}
	if _, ok := s.Store().Get(a); ok {
		t.Fatalf("%s survived the byte budget", a)
	}
	if _, ok := s.Store().Get(b); !ok {
		t.Fatalf("just-stored %s was evicted", b)
	}
}

// TestServeStoreTTL: an idle factorization past the TTL is gone at
// next touch (lazy expiry; the entry is backdated instead of sleeping).
func TestServeStoreTTL(t *testing.T) {
	s, ts := newTestServer(t, Options{TTL: time.Minute})
	resp, out := postJSON(t, ts.URL+"/v1/factor", `{"n":8,"seed":1,"workers":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("factor: %d %v", resp.StatusCode, out)
	}
	id := out["id"].(string)
	if !s.Store().SetLastUsed(id, time.Now().Add(-2*time.Minute)) {
		t.Fatalf("%s missing right after store", id)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/solve", fmt.Sprintf(`{"id":%q,"b":[1,1,1,1,1,1,1,1]}`, id))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("solve of TTL-expired %s: %d, want 404", id, resp.StatusCode)
	}
	if st := s.Store().Stats(); st.Count != 0 || st.Bytes != 0 {
		t.Fatalf("expired entry not reaped: %+v", st)
	}
}

// TestServeDeadlineShed503: a deadline the engine cannot meet is shed
// with a cheap 503 + Retry-After, no worker consumed; a negative
// deadline is the caller's fault (400).
func TestServeDeadlineShed503(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	// 512^3 * 2/3 flops against the cold-engine rate prior is tens of
	// milliseconds; a 1-microsecond SLO is infeasible on any hardware.
	resp, out := postJSON(t, ts.URL+"/v1/factor",
		`{"n":512,"seed":1,"workers":1,"deadlineMs":0.001}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("infeasible deadline: %d %v, want 503", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed reply missing Retry-After")
	}
	resp, _ = postJSON(t, ts.URL+"/v1/factor", `{"n":8,"seed":1,"deadlineMs":-5}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative deadlineMs: %d, want 400", resp.StatusCode)
	}
	// The shed consumed nothing: a feasible job still runs.
	resp, out = postJSON(t, ts.URL+"/v1/factor", `{"n":8,"seed":1,"workers":1,"deadlineMs":60000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feasible deadline after shed: %d %v", resp.StatusCode, out)
	}
}

// TestServeSaturation429: admission at MaxInflight is 429 (back off),
// distinct from the 503 shed.
func TestServeSaturation429(t *testing.T) {
	eng, err := engine.New(engine.Options{Workers: 1, MaxInflight: 1, DynamicRatio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng, Options{Keep: 8})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); eng.Close() })

	// Occupy the single admission slot with a job gated on a channel.
	release := make(chan struct{})
	var once sync.Once
	gate, err := eng.SubmitFactor(mat.Random(96, 96, rand.New(rand.NewSource(1))), core.Options{
		Workers: 1,
		Noise:   func(int) time.Duration { once.Do(func() { <-release }); return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, out := postJSON(t, ts.URL+"/v1/factor", `{"n":8,"seed":1,"workers":1}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated factor: %d %v, want 429", resp.StatusCode, out)
	}
	close(release)
	if err := gate.Wait(); err != nil {
		t.Fatalf("gate job: %v", err)
	}
	resp, out = postJSON(t, ts.URL+"/v1/factor", `{"n":8,"seed":1,"workers":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("factor after release: %d %v", resp.StatusCode, out)
	}
}

// TestServeClassAndStats: replies echo the resolved job class and
// /v1/stats exposes per-class digests plus the store snapshot.
func TestServeClassAndStats(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, out := postJSON(t, ts.URL+"/v1/factor", `{"n":16,"seed":1,"workers":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("factor: %d %v", resp.StatusCode, out)
	}
	if out["class"] != "small" { // 16^3 flops is far under any threshold
		t.Fatalf("tiny factor classified %v, want small", out["class"])
	}
	resp, out = postJSON(t, ts.URL+"/v1/factor", `{"n":16,"seed":1,"workers":1,"class":"large"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forced-large factor: %d %v", resp.StatusCode, out)
	}
	if out["class"] != "large" {
		t.Fatalf("forced class echoed %v, want large", out["class"])
	}
	resp, _ = postJSON(t, ts.URL+"/v1/factor", `{"n":16,"class":"premium"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown class: %d, want 400", resp.StatusCode)
	}

	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	engStats, ok := stats["engine"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing engine block: %v", stats)
	}
	small, ok := engStats["Small"].(map[string]any)
	if !ok {
		t.Fatalf("engine stats missing Small class digest: %v", engStats)
	}
	if small["Done"].(float64) < 1 {
		t.Fatalf("small-class Done %v, want >= 1", small["Done"])
	}
	store, ok := stats["store"].(map[string]any)
	if !ok || store["count"].(float64) != 2 {
		t.Fatalf("store snapshot %v, want count 2", stats["store"])
	}
	if stats["draining"] != false {
		t.Fatalf("draining %v, want false", stats["draining"])
	}
}

// TestServeSolveHugeNRHSRejected: an absurd nrhs must be a 400, not an
// overflow that sneaks past the n*nrhs length check.
func TestServeSolveHugeNRHSRejected(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, out := postJSON(t, ts.URL+"/v1/factor", `{"n":3,"seed":2,"workers":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("factor: %d %v", resp.StatusCode, out)
	}
	id := out["id"].(string)
	// 3 * 6148914691236517206 wraps to 2 in uint64 arithmetic; the
	// handler must still reject the two-entry rhs.
	resp, _ = postJSON(t, ts.URL+"/v1/solve",
		fmt.Sprintf(`{"id":%q,"b":[1,2],"nrhs":6148914691236517206}`, id))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("huge nrhs: %d, want 400", resp.StatusCode)
	}
}

// TestServeHealthAndReadiness: /healthz is always 200 while serving;
// /readyz flips to 503 once the shard drains.
func TestServeHealthAndReadiness(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d, want 200", path, resp.StatusCode)
		}
	}
	resp, out := postJSON(t, ts.URL+"/v1/admin/drain", `{}`)
	if resp.StatusCode != http.StatusOK || out["draining"] != true {
		t.Fatalf("drain: %d %v", resp.StatusCode, out)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: %d, want 200", resp.StatusCode)
	}
}

// TestServeDrainRefusesNewJobs: after /v1/admin/drain, factor, solve
// and import all 503 (Retry-After set) while stats and export still
// answer; drain is idempotent.
func TestServeDrainRefusesNewJobs(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, out := postJSON(t, ts.URL+"/v1/factor", `{"n":8,"seed":1,"workers":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("factor: %d %v", resp.StatusCode, out)
	}
	id := out["id"].(string)
	for i := 0; i < 2; i++ { // idempotent
		resp, out = postJSON(t, ts.URL+"/v1/admin/drain", `{}`)
		if resp.StatusCode != http.StatusOK || out["draining"] != true {
			t.Fatalf("drain #%d: %d %v", i+1, resp.StatusCode, out)
		}
	}
	resp, _ = postJSON(t, ts.URL+"/v1/factor", `{"n":8,"seed":1,"workers":1}`)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("factor while draining: %d, want 503 + Retry-After", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/solve", fmt.Sprintf(`{"id":%q,"b":[1,1,1,1,1,1,1,1]}`, id))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("solve while draining: %d, want 503", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/admin/import?id=x", strings.NewReader("data"))
	req.Header.Set("Content-Type", "application/octet-stream")
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("import while draining: %d, want 503", r2.StatusCode)
	}
	// Export of kept state still works (drain migration reads it).
	r3, err := http.Get(ts.URL + "/v1/admin/export?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r3.Body)
	r3.Body.Close()
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("export while draining: %d, want 200", r3.StatusCode)
	}
}

// TestServeExportImportRoundTrip: a factorization exported from one
// shard and imported into another solves identically, byte for byte.
func TestServeExportImportRoundTrip(t *testing.T) {
	_, src := newTestServer(t, Options{})
	_, dst := newTestServer(t, Options{})

	resp, out := postJSON(t, src.URL+"/v1/factor", `{"n":24,"seed":9,"workers":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("factor: %d %v", resp.StatusCode, out)
	}
	id := out["id"].(string)

	exp, err := http.Get(src.URL + "/v1/admin/export?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := io.ReadAll(exp.Body)
	exp.Body.Close()
	if err != nil || exp.StatusCode != http.StatusOK {
		t.Fatalf("export: %d %v", exp.StatusCode, err)
	}
	if ct := exp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("export Content-Type %q", ct)
	}

	req, _ := http.NewRequest(http.MethodPost, dst.URL+"/v1/admin/import?id="+id, bytes.NewReader(wire))
	req.Header.Set("Content-Type", "application/octet-stream")
	imp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, imp.Body)
	imp.Body.Close()
	if imp.StatusCode != http.StatusOK {
		t.Fatalf("import: %d", imp.StatusCode)
	}

	b := strings.Repeat("1,", 23) + "1"
	_, x1 := postJSON(t, src.URL+"/v1/solve", fmt.Sprintf(`{"id":%q,"b":[%s]}`, id, b))
	_, x2 := postJSON(t, dst.URL+"/v1/solve", fmt.Sprintf(`{"id":%q,"b":[%s]}`, id, b))
	a1, a2 := x1["x"].([]any), x2["x"].([]any)
	if len(a1) != 24 || len(a2) != 24 {
		t.Fatalf("solution lengths %d / %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i].(float64) != a2[i].(float64) {
			t.Fatalf("imported solve diverges at %d: %v vs %v", i, a1[i], a2[i])
		}
	}

	// Export listing includes the id; unknown export is 404; garbage
	// import is 400.
	lr, lout := func() (*http.Response, map[string]any) {
		r, err := http.Get(src.URL + "/v1/admin/export")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var m map[string]any
		json.NewDecoder(r.Body).Decode(&m)
		return r, m
	}()
	if lr.StatusCode != http.StatusOK || len(lout["ids"].([]any)) != 1 {
		t.Fatalf("export listing: %d %v", lr.StatusCode, lout)
	}
	nf, err := http.Get(src.URL + "/v1/admin/export?id=f-404")
	if err != nil {
		t.Fatal(err)
	}
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Fatalf("export of unknown id: %d, want 404", nf.StatusCode)
	}
	bad, _ := http.NewRequest(http.MethodPost, dst.URL+"/v1/admin/import?id=z", strings.NewReader("junk"))
	bad.Header.Set("Content-Type", "application/octet-stream")
	br, err := http.DefaultClient.Do(bad)
	if err != nil {
		t.Fatal(err)
	}
	br.Body.Close()
	if br.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage import: %d, want 400", br.StatusCode)
	}
}

// TestServeExplicitFactorID: a factor request carrying an id keeps the
// factorization under exactly that id — the router's placement
// contract.
func TestServeExplicitFactorID(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	resp, out := postJSON(t, ts.URL+"/v1/factor", `{"id":"f-77","n":8,"seed":1,"workers":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("factor: %d %v", resp.StatusCode, out)
	}
	if out["id"] != "f-77" {
		t.Fatalf("explicit id echoed as %v", out["id"])
	}
	if _, ok := s.Store().Get("f-77"); !ok {
		t.Fatal("explicit id not resident")
	}
	resp, _ = postJSON(t, ts.URL+"/v1/solve", `{"id":"f-77","b":[1,1,1,1,1,1,1,1]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve by explicit id: %d", resp.StatusCode)
	}
}

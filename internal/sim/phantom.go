package sim

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/layout"
	"repro/internal/mat"
)

// PhantomLayout implements layout.Layout for shape-only simulation: it
// answers every structural query (dimensions, block counts, ownership,
// grouping contiguity) exactly like the real layout of the same kind,
// but holds no matrix data. Building a CALU graph over a phantom layout
// with SimOnly set lets the simulator handle paper-scale matrices
// (n = 15000) without allocating gigabytes.
type PhantomLayout struct {
	kind    layout.Kind
	m, n, b int
	grid    layout.Grid
}

// NewPhantomLayout creates a shape-only layout descriptor.
func NewPhantomLayout(kind layout.Kind, m, n, b int, g layout.Grid) *PhantomLayout {
	if b <= 0 {
		panic("sim: block size must be positive")
	}
	return &PhantomLayout{kind: kind, m: m, n: n, b: b, grid: g}
}

// Kind reports the emulated storage scheme.
func (l *PhantomLayout) Kind() layout.Kind { return l.kind }

// Dims returns rows, cols, block size.
func (l *PhantomLayout) Dims() (int, int, int) { return l.m, l.n, l.b }

// Blocks returns the block grid extents.
func (l *PhantomLayout) Blocks() (int, int) {
	return (l.m + l.b - 1) / l.b, (l.n + l.b - 1) / l.b
}

// Grid returns the worker grid.
func (l *PhantomLayout) Grid() layout.Grid { return l.grid }

// Owner matches the real layouts' block-cyclic ownership.
func (l *PhantomLayout) Owner(i, j int) int { return l.grid.Owner(i, j) }

// GroupWidth mirrors the real layouts' contiguity rules: BCL and CM can
// fuse owned block columns, 2l-BL cannot.
func (l *PhantomLayout) GroupWidth(i, j, maxGroup int) int {
	_, nb := l.Blocks()
	switch l.kind {
	case layout.TwoLevel:
		return 1
	case layout.CM:
		w := 1
		for w < maxGroup && j+w < nb {
			w++
		}
		return w
	default: // BCL
		w := 1
		for w < maxGroup && j+w*l.grid.PC < nb {
			w++
		}
		return w
	}
}

// RowGroupWidth mirrors the real layouts' vertical contiguity rules.
func (l *PhantomLayout) RowGroupWidth(i, j, maxGroup int) int {
	mb, _ := l.Blocks()
	switch l.kind {
	case layout.TwoLevel:
		return 1
	case layout.CM:
		w := 1
		for w < maxGroup && i+w < mb {
			w++
		}
		return w
	default: // BCL
		w := 1
		for w < maxGroup && i+w*l.grid.PR < mb {
			w++
		}
		return w
	}
}

// GroupedRows is unavailable on a phantom layout.
func (l *PhantomLayout) GroupedRows(i, j, width int) kernel.View {
	panic("sim: phantom layout holds no data (GroupedRows)")
}

// Block is unavailable on a phantom layout.
func (l *PhantomLayout) Block(i, j int) kernel.View {
	panic(fmt.Sprintf("sim: phantom layout holds no data (Block %d,%d)", i, j))
}

// GroupedBlock is unavailable on a phantom layout.
func (l *PhantomLayout) GroupedBlock(i, j, width int) kernel.View {
	panic("sim: phantom layout holds no data (GroupedBlock)")
}

// SwapRows is unavailable on a phantom layout.
func (l *PhantomLayout) SwapRows(jb, r1, r2 int) {
	panic("sim: phantom layout holds no data (SwapRows)")
}

// ToDense is unavailable on a phantom layout.
func (l *PhantomLayout) ToDense() *mat.Dense {
	panic("sim: phantom layout holds no data (ToDense)")
}

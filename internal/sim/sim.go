package sim

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/dag"
	"repro/internal/layout"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Config describes one simulated execution.
type Config struct {
	// Machine is the platform model.
	Machine Machine
	// Workers caps the cores used (0 = all cores); the paper's 24-core
	// AMD experiments use half the machine.
	Workers int
	// Layout tells the cost model which storage scheme the graph's
	// tasks operate on.
	Layout layout.Kind
	// Policy is the scheduling strategy; the same objects the real
	// runtime uses.
	Policy sched.Policy
	// Trace, if non-nil, records the virtual-time execution timeline.
	Trace *trace.Trace
	// Seed re-seeds the machine's noise generator so repeated runs are
	// reproducible yet distinct across seeds.
	Seed int64
}

// Result reports a simulated execution.
type Result struct {
	// Makespan is the virtual execution time in seconds.
	Makespan float64
	// BusyTime is aggregate compute seconds across workers; Overhead is
	// dequeue + migration seconds; NoiseTime is injected interference;
	// IdleTime closes the accounting identity
	// Busy+Overhead+Noise+Idle = Makespan*Workers.
	BusyTime, OverheadTime, NoiseTime, IdleTime float64
	// Gflops is total task flops / makespan / 1e9.
	Gflops float64
	// Counters carries scheduler instrumentation.
	Counters sched.Counters
	// PerWorkerBusy supports the delta estimation of the section 6 model.
	PerWorkerBusy []float64
	// PerWorkerNoise is the injected interference per worker — the
	// delta_i of Theorem 1, measured directly.
	PerWorkerNoise []float64
}

// event is a task completion in the virtual timeline.
type event struct {
	at     float64
	worker int
	task   *dag.Task
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Run executes the graph on the machine model and returns the virtual
// makespan and accounting. The graph's Run closures are never invoked.
func Run(g *dag.Graph, cfg Config) (Result, error) {
	if err := cfg.Machine.Validate(); err != nil {
		return Result{}, err
	}
	p := cfg.Workers
	if p <= 0 || p > cfg.Machine.Cores() {
		p = cfg.Machine.Cores()
	}
	if cfg.Machine.Noise != nil {
		cfg.Machine.Noise.Reset(cfg.Seed)
	}
	pol := cfg.Policy
	pol.Reset(g, p)
	effScale := cfg.Machine.EffScale
	if effScale <= 0 {
		effScale = 1
	}

	n := len(g.Tasks)
	// The dependency state lives on the graph (dag.ResetDeps); the
	// simulator drives it serially from its event loop, which keeps
	// every policy decision deterministic and byte-for-byte identical
	// across runs.
	for _, t := range g.ResetDeps() {
		pol.Ready(t)
	}
	var readyScratch []*dag.Task

	res := Result{PerWorkerBusy: make([]float64, p), PerWorkerNoise: make([]float64, p)}
	var events eventHeap
	now := 0.0
	completed := 0
	queueFreeAt := 0.0 // shared-queue serialization point
	idle := make([]bool, p)
	for w := range idle {
		idle[w] = true
	}
	idleSince := make([]float64, p)

	// dispatch assigns as many ready tasks as possible at virtual time
	// `now`, in worker order (deterministic).
	dispatch := func() {
		for {
			progress := false
			order := make([]int, 0, p)
			for w := 0; w < p; w++ {
				if idle[w] {
					order = append(order, w)
				}
			}
			sort.Ints(order)
			for _, w := range order {
				t := pol.Next(w)
				if t == nil {
					continue
				}
				progress = true
				start := now
				overhead := 0.0
				if t.Static {
					overhead += cfg.Machine.StaticDequeueSec
				} else {
					// Shared-queue pops serialize: the pop cannot begin
					// before the previous pop's critical section ended.
					if queueFreeAt > start {
						overhead += queueFreeAt - start
					}
					overhead += cfg.Machine.DynamicDequeueSec
					queueFreeAt = start + overhead
				}
				// Locality: executing away from the data home costs a
				// per-byte migration penalty scaled by NUMA distance.
				home := t.Owner % p
				var nsPerByte float64
				switch {
				case home == w:
					nsPerByte = 0
				case cfg.Machine.Socket(home) == cfg.Machine.Socket(w):
					nsPerByte = cfg.Machine.SameSocketNsPerByte
				default:
					nsPerByte = cfg.Machine.RemoteNsPerByte
				}
				if cfg.Layout == layout.CM && nsPerByte > 0 {
					nsPerByte *= cfg.Machine.CMExtraFactor
				}
				migration := t.Bytes * nsPerByte * 1e-9
				compute := t.Flops / (cfg.Machine.CoreGflops * 1e9 * Efficiency(t, cfg.Layout) * effScale)
				if home != w && cfg.Layout == layout.TwoLevel && t.Kind == dag.S {
					// A migrated tile update loses the cache residency the
					// two-level layout exists to provide.
					compute *= 1 + cfg.Machine.TileReuseLossFactor
				}
				if home != w && t.Kind != dag.S && cfg.Machine.PanelMigrationFactor > 1 {
					// Panel-class kernels are latency-bound column gathers;
					// running them on a far core multiplies their cost.
					compute *= cfg.Machine.PanelMigrationFactor
				}
				nz := 0.0
				if cfg.Machine.Noise != nil {
					nz = cfg.Machine.Noise.Delay(w, start, compute+migration+overhead)
				}
				end := start + overhead + migration + compute + nz
				res.BusyTime += compute
				res.OverheadTime += overhead + migration
				res.NoiseTime += nz
				res.PerWorkerNoise[w] += nz
				res.PerWorkerBusy[w] += compute + migration
				if cfg.Trace != nil {
					cfg.Trace.Add(w, t.ID, trace.KindLabel(t.Kind.String()), start, end)
				}
				idle[w] = false
				heap.Push(&events, event{at: end, worker: w, task: t})
			}
			if !progress {
				return
			}
		}
	}

	dispatch()
	for completed < n {
		if events.Len() == 0 {
			return Result{}, fmt.Errorf("sim: graph %q stuck with %d/%d tasks done", g.Name, completed, n)
		}
		e := heap.Pop(&events).(event)
		now = e.at
		completed++
		idle[e.worker] = true
		idleSince[e.worker] = now
		readyScratch = g.ResolveSuccessors(e.task, readyScratch[:0])
		for _, t := range readyScratch {
			pol.Ready(t)
		}
		dispatch()
	}

	res.Makespan = now
	res.Counters = pol.Counters()
	total := 0.0
	for _, t := range g.Tasks {
		total += t.Flops
	}
	if now > 0 {
		res.Gflops = total / now / 1e9
	}
	res.IdleTime = now*float64(p) - res.BusyTime - res.OverheadTime - res.NoiseTime
	return res, nil
}

// CriticalPathSeconds returns the longest compute-weighted path through
// the graph under the machine's efficiency model (no migration, queue
// or noise costs): the T_criticalPath term that section 6 adds to the
// denominator of Theorem 1 when the core count is large relative to
// T1/T_criticalPath.
func CriticalPathSeconds(g *dag.Graph, m Machine, kind layout.Kind) float64 {
	effScale := m.EffScale
	if effScale <= 0 {
		effScale = 1
	}
	cost := func(t *dag.Task) float64 {
		return t.Flops / (m.CoreGflops * 1e9 * Efficiency(t, kind) * effScale)
	}
	n := len(g.Tasks)
	longest := make([]float64, n)
	indeg := make([]int32, n)
	for _, t := range g.Tasks {
		indeg[t.ID] = t.NumDeps
	}
	queue := make([]int32, 0, n)
	for _, t := range g.Tasks {
		if t.NumDeps == 0 {
			queue = append(queue, t.ID)
			longest[t.ID] = cost(t)
		}
	}
	best := 0.0
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if longest[id] > best {
			best = longest[id]
		}
		for _, o := range g.Tasks[id].Outs {
			if cand := longest[id] + cost(g.Tasks[o]); cand > longest[o] {
				longest[o] = cand
			}
			indeg[o]--
			if indeg[o] == 0 {
				queue = append(queue, o)
			}
		}
	}
	return best
}

// FactorSim builds a CALU graph for an (m x n) matrix with block size b
// over the worker grid implied by cfg and simulates it, without any
// numeric data: the matrix is shape-only, which is what makes
// paper-scale sizes (n = 15000) simulable in milliseconds.
func FactorSim(m, n, b int, nstaticCols, group int, cfg Config) (Result, error) {
	p := cfg.Workers
	if p <= 0 || p > cfg.Machine.Cores() {
		p = cfg.Machine.Cores()
		cfg.Workers = p
	}
	l := NewPhantomLayout(cfg.Layout, m, n, b, layout.NewGrid(p))
	cg := dag.BuildCALU(l, dag.CALUOptions{NstaticCols: nstaticCols, Group: group})
	return Run(cg.Graph, cfg)
}

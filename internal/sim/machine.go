// Package sim executes task dependency graphs on a discrete-event
// model of a multicore machine, reproducing the paper's two evaluation
// platforms — a 16-core Intel Xeon and a 48-core AMD Opteron NUMA
// machine — which this repository cannot run on natively. The
// simulator drives exactly the same sched.Policy implementations as the
// real runtime, so the scheduling decisions under study are identical;
// what the machine model adds is their *cost*: per-kernel efficiency by
// layout, NUMA migration penalties, serialized dynamic-queue dequeues,
// and stochastic OS noise. Constants are calibrated once against the
// percentages the paper reports (see EXPERIMENTS.md) and then held
// fixed across every experiment.
package sim

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/layout"
	"repro/internal/noise"
)

// Machine describes a simulated platform.
type Machine struct {
	// Name appears in reports ("intel16", "amd48").
	Name string
	// Sockets and CoresPerSocket define the topology; worker w runs on
	// core w, socket w/CoresPerSocket (compact placement).
	Sockets        int
	CoresPerSocket int
	// CoreGflops is the per-core double-precision peak.
	CoreGflops float64
	// EffScale uniformly scales every kernel efficiency, capturing
	// machine-level losses the per-kernel model does not itemize
	// (shared memory bandwidth, SMT arbitration, DRAM pressure). It is
	// the knob that pins the simulator's absolute Gflop/s to the
	// paper's reported peak fractions (79% Intel, 49% AMD at n=15000).
	EffScale float64
	// RemoteNsPerByte is the extra cost of touching data homed on
	// another socket (the NUMA remote-access penalty); SameSocketNsPerByte
	// is the milder cross-core, same-socket coherence cost.
	RemoteNsPerByte     float64
	SameSocketNsPerByte float64
	// CMExtraFactor multiplies migration costs for the column-major
	// layout, whose strided blocks defeat prefetching.
	CMExtraFactor float64
	// StaticDequeueSec is the cost of popping a worker-private queue;
	// DynamicDequeueSec is the critical-section length of a shared-queue
	// pop — shared pops additionally serialize against each other, which
	// is how dequeue contention emerges at high core counts.
	StaticDequeueSec  float64
	DynamicDequeueSec float64
	// TileReuseLossFactor inflates the compute time of a 2l-BL update
	// executed away from its data home: the whole point of the tile
	// layout is that a tile sits in its owner's cache, and dynamic
	// migration forfeits that reuse (the paper's first reason dynamic
	// collapses on 2l-BL, section 5.1.2).
	TileReuseLossFactor float64
	// PanelMigrationFactor inflates the compute time of panel-class
	// tasks (TSLU leaves/combines, F, L, U) executed away from their
	// home: these kernels are latency-bound gathers over a whole block
	// column, the worst case for remote NUMA access. Because panel work
	// is a large share of the flops on small matrices and vanishing on
	// large ones, this term reproduces the paper's observation that
	// fully dynamic scheduling hurts most at small n on the NUMA box.
	PanelMigrationFactor float64
	// Noise models transient OS interference (delta_i); nil means quiet.
	Noise noise.Generator
}

// Cores returns the total core count.
func (m Machine) Cores() int { return m.Sockets * m.CoresPerSocket }

// Socket returns the socket of a core.
func (m Machine) Socket(core int) int { return core / m.CoresPerSocket }

// Validate sanity-checks the machine description.
func (m Machine) Validate() error {
	if m.Sockets <= 0 || m.CoresPerSocket <= 0 {
		return fmt.Errorf("sim: bad topology %dx%d", m.Sockets, m.CoresPerSocket)
	}
	if m.CoreGflops <= 0 {
		return fmt.Errorf("sim: non-positive core rate %g", m.CoreGflops)
	}
	return nil
}

// IntelXeon16 models the paper's four-socket, quad-core Intel Xeon
// EMT64 (2.67 GHz, 85.3 Gflop/s peak): low-latency coherence, cheap
// remote access — the machine where fully dynamic scheduling is almost
// free and fully static scheduling loses ~8% to load imbalance.
func IntelXeon16() Machine {
	return Machine{
		Name:                 "intel16",
		Sockets:              4,
		CoresPerSocket:       4,
		CoreGflops:           85.3 / 16,
		EffScale:             0.86,
		RemoteNsPerByte:      0.040,
		SameSocketNsPerByte:  0.010,
		CMExtraFactor:        3.0,
		StaticDequeueSec:     0.05e-6,
		DynamicDequeueSec:    0.35e-6,
		TileReuseLossFactor:  0.06,
		PanelMigrationFactor: 1.12,
		Noise:                noise.NewPoisson(40, 120e-6, 1),
	}
}

// AMDOpteron48 models the paper's eight-socket, six-core AMD Opteron
// (2.1 GHz, 539.5 Gflop/s peak): a NUMA machine where remote memory
// access is expensive, so locality — and therefore mostly static
// scheduling with a small dynamic share — wins (section 5.1.3).
func AMDOpteron48() Machine {
	return Machine{
		Name:                 "amd48",
		Sockets:              8,
		CoresPerSocket:       6,
		CoreGflops:           539.5 / 48,
		EffScale:             0.60,
		RemoteNsPerByte:      0.45,
		SameSocketNsPerByte:  0.06,
		CMExtraFactor:        3.0,
		StaticDequeueSec:     0.05e-6,
		DynamicDequeueSec:    2.5e-6,
		TileReuseLossFactor:  0.45,
		PanelMigrationFactor: 1.45,
		Noise:                noise.NewPoisson(40, 120e-6, 1),
	}
}

// Quiet returns a copy of the machine with noise disabled, used by
// experiments that isolate scheduling effects from noise effects.
func (m Machine) Quiet() Machine {
	m.Noise = noise.None{}
	return m
}

// WithNoise returns a copy using the given generator.
func (m Machine) WithNoise(g noise.Generator) Machine {
	m.Noise = g
	return m
}

// kernel efficiency model: fraction of per-core peak achieved by each
// task kind on each layout. These constants encode the paper's
// qualitative storage arguments: BCL reaches the best gemm rates when
// its grouped updates materialize (the k=3 fused calls), 2l-BL has the
// best ungrouped tile gemm (tiles are cache-resident), CM pays for
// strided panels everywhere.
const (
	gemmEffBCL      = 0.80 // ungrouped BCL gemm
	gemmEffBCLBonus = 0.16 // added at full k=3 grouping (0.96 peak share)
	gemmEffTwoLevel = 0.86 // contiguous tile gemm
	gemmEffCM       = 0.62 // strided gemm
	panelEff        = 0.60 // trsm/getf2-class kernels (BCL, 2l-BL)
	panelEffCM      = 0.26
	tsluEff         = 0.80 // recursive-LU leaves/combines are BLAS-3 rich
	tsluEffCM       = 0.30
)

// Efficiency returns the modeled fraction of peak for one task.
func Efficiency(t *dag.Task, kind layout.Kind) float64 {
	switch t.Kind {
	case dag.S:
		switch kind {
		case layout.BCL:
			width := 1
			if len(t.Group) > 1 {
				width = len(t.Group)
			}
			return gemmEffBCL + gemmEffBCLBonus*float64(width-1)/2
		case layout.TwoLevel:
			return gemmEffTwoLevel
		default:
			return gemmEffCM
		}
	case dag.PLeaf, dag.PCombine:
		if kind == layout.CM {
			return tsluEffCM
		}
		return tsluEff
	default: // Final, L, U
		if kind == layout.CM {
			return panelEffCM
		}
		return panelEff
	}
}

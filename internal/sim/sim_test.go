package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/layout"
	"repro/internal/mat"
	"repro/internal/sched"
	"repro/internal/trace"
)

func quietConfig(kind layout.Kind, pol sched.Policy, workers int) Config {
	return Config{Machine: AMDOpteron48().Quiet(), Workers: workers, Layout: kind, Policy: pol, Seed: 1}
}

func TestMachineValidate(t *testing.T) {
	if err := IntelXeon16().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := AMDOpteron48().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Machine{Sockets: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid machine accepted")
	}
}

func TestMachineTopology(t *testing.T) {
	m := AMDOpteron48()
	if m.Cores() != 48 {
		t.Fatalf("cores %d", m.Cores())
	}
	if m.Socket(0) != 0 || m.Socket(5) != 0 || m.Socket(6) != 1 || m.Socket(47) != 7 {
		t.Fatal("socket mapping wrong")
	}
	if IntelXeon16().Cores() != 16 {
		t.Fatal("intel core count")
	}
}

func TestPeakRatesMatchPaper(t *testing.T) {
	if g := IntelXeon16().CoreGflops * 16; math.Abs(g-85.3) > 1e-9 {
		t.Fatalf("intel peak %g want 85.3", g)
	}
	if g := AMDOpteron48().CoreGflops * 48; math.Abs(g-539.5) > 1e-9 {
		t.Fatalf("amd peak %g want 539.5", g)
	}
}

func TestSimConservation(t *testing.T) {
	res, err := FactorSim(1600, 1600, 100, 16, 3, quietConfig(layout.BCL, sched.NewStatic(), 16))
	if err != nil {
		t.Fatal(err)
	}
	total := res.BusyTime + res.OverheadTime + res.NoiseTime + res.IdleTime
	want := res.Makespan * 16
	if math.Abs(total-want)/want > 1e-9 {
		t.Fatalf("accounting broken: %g vs %g", total, want)
	}
	if res.NoiseTime != 0 {
		t.Fatal("quiet machine produced noise")
	}
}

func TestSimDeterministic(t *testing.T) {
	cfg := Config{Machine: AMDOpteron48(), Workers: 24, Layout: layout.BCL, Policy: sched.NewHybrid(), Seed: 5}
	a, err := FactorSim(2000, 2000, 100, 18, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := Config{Machine: AMDOpteron48(), Workers: 24, Layout: layout.BCL, Policy: sched.NewHybrid(), Seed: 5}
	b, err := FactorSim(2000, 2000, 100, 18, 3, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("same seed diverged: %g vs %g", a.Makespan, b.Makespan)
	}
}

func TestSimSeedChangesNoise(t *testing.T) {
	r1, err := FactorSim(1600, 1600, 100, 16, 3, Config{Machine: AMDOpteron48(), Workers: 16, Layout: layout.BCL, Policy: sched.NewStatic(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := FactorSim(1600, 1600, 100, 16, 3, Config{Machine: AMDOpteron48(), Workers: 16, Layout: layout.BCL, Policy: sched.NewStatic(), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan == r2.Makespan {
		t.Fatal("different noise seeds should perturb the makespan")
	}
}

func TestStaticRunsEntirelyLocal(t *testing.T) {
	res, err := FactorSim(1600, 1600, 100, 16, 3, quietConfig(layout.BCL, sched.NewStatic(), 16))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Mismatches != 0 {
		t.Fatalf("static run migrated %d tasks", res.Counters.Mismatches)
	}
	if res.Counters.DequeueDynamic != 0 {
		t.Fatal("static run touched the shared queue")
	}
}

func TestDynamicPaysOverheadStaticDoesNot(t *testing.T) {
	st, err := FactorSim(2400, 2400, 100, 24, 3, quietConfig(layout.BCL, sched.NewStatic(), 24))
	if err != nil {
		t.Fatal(err)
	}
	dy, err := FactorSim(2400, 2400, 100, 0, 3, quietConfig(layout.BCL, sched.NewDynamic(), 24))
	if err != nil {
		t.Fatal(err)
	}
	if dy.OverheadTime <= st.OverheadTime {
		t.Fatalf("dynamic overhead %g not above static %g", dy.OverheadTime, st.OverheadTime)
	}
	if dy.IdleTime >= st.IdleTime {
		t.Fatalf("dynamic idle %g not below static %g", dy.IdleTime, st.IdleTime)
	}
}

// The headline result: on the NUMA machine, hybrid with a small dynamic
// share beats both pure strategies (paper section 5.1, Figures 7/8).
func TestHybridBeatsBothOnNUMA(t *testing.T) {
	n, b, w := 6000, 100, 48
	nb := n / b
	st, err := FactorSim(n, n, b, nb, 3, Config{Machine: AMDOpteron48(), Workers: w, Layout: layout.BCL, Policy: sched.NewStatic(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dy, err := FactorSim(n, n, b, 0, 3, Config{Machine: AMDOpteron48(), Workers: w, Layout: layout.BCL, Policy: sched.NewDynamic(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	hy, err := FactorSim(n, n, b, nb-nb/10, 3, Config{Machine: AMDOpteron48(), Workers: w, Layout: layout.BCL, Policy: sched.NewHybrid(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if hy.Gflops <= st.Gflops {
		t.Fatalf("hybrid %g not above static %g", hy.Gflops, st.Gflops)
	}
	if hy.Gflops <= dy.Gflops {
		t.Fatalf("hybrid %g not above dynamic %g", hy.Gflops, dy.Gflops)
	}
}

// On the low-latency Intel machine, dynamic is nearly free and static
// trails (paper Figure 6).
func TestIntelStaticTrailsDynamic(t *testing.T) {
	n, b := 5000, 100
	nb := n / b
	st, err := FactorSim(n, n, b, nb, 3, Config{Machine: IntelXeon16(), Workers: 16, Layout: layout.BCL, Policy: sched.NewStatic(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dy, err := FactorSim(n, n, b, 0, 3, Config{Machine: IntelXeon16(), Workers: 16, Layout: layout.BCL, Policy: sched.NewDynamic(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if dy.Gflops <= st.Gflops {
		t.Fatalf("dynamic %g should beat static %g on intel", dy.Gflops, st.Gflops)
	}
}

// 2l-BL under fully dynamic scheduling collapses on the NUMA machine
// (paper Figure 10): tile reuse is lost and nothing can be grouped.
func TestTwoLevelDynamicCollapsesOnNUMA(t *testing.T) {
	n, b := 5000, 100
	nb := n / b
	dy, err := FactorSim(n, n, b, 0, 1, Config{Machine: AMDOpteron48(), Workers: 48, Layout: layout.TwoLevel, Policy: sched.NewDynamic(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	hy, err := FactorSim(n, n, b, nb-nb/10, 1, Config{Machine: AMDOpteron48(), Workers: 48, Layout: layout.TwoLevel, Policy: sched.NewHybrid(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if hy.Gflops < 1.3*dy.Gflops {
		t.Fatalf("2l-BL dynamic should collapse: hybrid %g vs dynamic %g", hy.Gflops, dy.Gflops)
	}
}

// CM under dynamic scheduling is the worst configuration (Figure 14).
func TestColumnMajorDynamicWorst(t *testing.T) {
	n, b := 2500, 100
	cm, err := FactorSim(n, n, b, 0, 1, Config{Machine: AMDOpteron48(), Workers: 16, Layout: layout.CM, Policy: sched.NewDynamic(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	bcl, err := FactorSim(n, n, b, 0, 3, Config{Machine: AMDOpteron48(), Workers: 16, Layout: layout.BCL, Policy: sched.NewDynamic(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cm.Gflops >= bcl.Gflops {
		t.Fatalf("CM dynamic %g should trail BCL dynamic %g", cm.Gflops, bcl.Gflops)
	}
}

func TestPhantomLayoutStructureMatchesReal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := mat.Random(40, 56, rng)
	g := layout.NewGrid(6)
	real := layout.NewBlockCyclic(src, 8, g)
	ph := NewPhantomLayout(layout.BCL, 40, 56, 8, g)
	mbR, nbR := real.Blocks()
	mbP, nbP := ph.Blocks()
	if mbR != mbP || nbR != nbP {
		t.Fatal("block counts differ")
	}
	for i := 0; i < mbR; i++ {
		for j := 0; j < nbR; j++ {
			if real.Owner(i, j) != ph.Owner(i, j) {
				t.Fatalf("owner differs at (%d,%d)", i, j)
			}
			for _, mg := range []int{1, 2, 3} {
				if real.GroupWidth(i, j, mg) != ph.GroupWidth(i, j, mg) {
					t.Fatalf("group width differs at (%d,%d) max %d", i, j, mg)
				}
			}
		}
	}
}

func TestPhantomLayoutPanicsOnData(t *testing.T) {
	ph := NewPhantomLayout(layout.BCL, 16, 16, 4, layout.NewGrid(2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Block access")
		}
	}()
	ph.Block(0, 0)
}

func TestSimGraphMatchesRealGraphStructure(t *testing.T) {
	// SimOnly graphs must have identical structure to real graphs.
	rng := rand.New(rand.NewSource(2))
	src := mat.Random(48, 48, rng)
	g := layout.NewGrid(4)
	realG := dag.BuildCALU(layout.NewBlockCyclic(src, 8, g), dag.CALUOptions{NstaticCols: 4, Group: 3})
	simG := dag.BuildCALU(NewPhantomLayout(layout.BCL, 48, 48, 8, g), dag.CALUOptions{NstaticCols: 4, Group: 3, SimOnly: true})
	if len(realG.Tasks) != len(simG.Tasks) {
		t.Fatalf("task counts differ: %d vs %d", len(realG.Tasks), len(simG.Tasks))
	}
	for i := range realG.Tasks {
		a, b := realG.Tasks[i], simG.Tasks[i]
		if a.Kind != b.Kind || a.K != b.K || a.I != b.I || a.J != b.J ||
			a.Owner != b.Owner || a.Static != b.Static || a.Flops != b.Flops ||
			a.NumDeps != b.NumDeps || len(a.Outs) != len(b.Outs) {
			t.Fatalf("task %d differs: %+v vs %+v", i, a, b)
		}
		if b.Run != nil {
			t.Fatal("SimOnly graph has Run closures")
		}
	}
}

func TestTraceRecordsVirtualTimeline(t *testing.T) {
	tr := trace.New(16)
	_, err := FactorSim(1600, 1600, 100, 16, 3, Config{
		Machine: AMDOpteron48().Quiet(), Workers: 16, Layout: layout.BCL,
		Policy: sched.NewStatic(), Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Makespan() <= 0 {
		t.Fatal("no virtual makespan")
	}
	spans := 0
	for w := 0; w < 16; w++ {
		spans += len(tr.Spans[w])
	}
	if spans == 0 {
		t.Fatal("no spans recorded")
	}
}

func TestEfficiencyModel(t *testing.T) {
	grouped := &dag.Task{Kind: dag.S, Group: []int{1, 3, 5}}
	single := &dag.Task{Kind: dag.S}
	if Efficiency(grouped, layout.BCL) <= Efficiency(single, layout.BCL) {
		t.Fatal("grouping must raise BCL gemm efficiency")
	}
	if Efficiency(single, layout.TwoLevel) <= Efficiency(single, layout.BCL) {
		t.Fatal("ungrouped tile gemm must beat ungrouped BCL gemm")
	}
	if Efficiency(single, layout.CM) >= Efficiency(single, layout.TwoLevel) {
		t.Fatal("CM gemm must be the slowest")
	}
	panel := &dag.Task{Kind: dag.Final}
	if Efficiency(panel, layout.BCL) >= Efficiency(single, layout.TwoLevel) {
		t.Fatal("panel kernels must be slower than gemm")
	}
}

func TestFewerWorkersSlower(t *testing.T) {
	cfg24 := quietConfig(layout.BCL, sched.NewHybrid(), 24)
	cfg48 := quietConfig(layout.BCL, sched.NewHybrid(), 48)
	r24, err := FactorSim(6000, 6000, 100, 54, 3, cfg24)
	if err != nil {
		t.Fatal(err)
	}
	r48, err := FactorSim(6000, 6000, 100, 54, 3, cfg48)
	if err != nil {
		t.Fatal(err)
	}
	if r24.Gflops >= r48.Gflops {
		t.Fatalf("24 cores %g not slower than 48 cores %g", r24.Gflops, r48.Gflops)
	}
}

// Property: simulation never loses tasks and always conserves time, for
// random shapes, layouts and policies.
func TestSimConservationProperty(t *testing.T) {
	kinds := []layout.Kind{layout.CM, layout.BCL, layout.TwoLevel}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 400 + int(rng.Int31n(1200))
		b := 50 + int(rng.Int31n(100))
		w := 1 + int(rng.Int31n(48))
		kind := kinds[rng.Intn(3)]
		nb := (n + b - 1) / b
		ns := int(rng.Int31n(int32(nb + 1)))
		var pol sched.Policy
		switch rng.Intn(4) {
		case 0:
			pol = sched.NewStatic()
			ns = nb
		case 1:
			pol = sched.NewDynamic()
			ns = 0
		case 2:
			pol = sched.NewHybrid()
		default:
			pol = sched.NewWorkStealing(seed)
			ns = nb
		}
		res, err := FactorSim(n, n, b, ns, 1+int(rng.Int31n(3)), Config{
			Machine: AMDOpteron48(), Workers: w, Layout: kind, Policy: pol, Seed: seed,
		})
		if err != nil {
			return false
		}
		total := res.BusyTime + res.OverheadTime + res.NoiseTime + res.IdleTime
		return math.Abs(total-res.Makespan*float64(w)) < 1e-6*total && res.Gflops > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

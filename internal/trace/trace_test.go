package trace

import (
	"math"
	"strings"
	"testing"
)

func mkTrace() *Trace {
	tr := New(2)
	tr.Add(0, 1, 'S', 0, 1)
	tr.Add(0, 2, 'S', 1, 2)
	tr.Add(1, 3, 'U', 0, 1)
	// Worker 1 idles for [1,2).
	return tr
}

func TestMakespan(t *testing.T) {
	tr := mkTrace()
	if tr.Makespan() != 2 {
		t.Fatalf("makespan %g want 2", tr.Makespan())
	}
}

func TestBusyAndIdle(t *testing.T) {
	tr := mkTrace()
	if tr.BusyTime(0) != 2 || tr.BusyTime(1) != 1 {
		t.Fatalf("busy %g,%g", tr.BusyTime(0), tr.BusyTime(1))
	}
	// Idle = 1 - 3/(2*2) = 0.25
	if math.Abs(tr.IdleFraction()-0.25) > 1e-12 {
		t.Fatalf("idle fraction %g want 0.25", tr.IdleFraction())
	}
}

func TestEmptyTrace(t *testing.T) {
	tr := New(3)
	if tr.Makespan() != 0 || tr.IdleFraction() != 0 {
		t.Fatal("empty trace must be all zeros")
	}
	if !strings.Contains(tr.Gantt(10), "empty") {
		t.Fatal("empty gantt must say so")
	}
}

func TestPermanentIdlePoint(t *testing.T) {
	tr := New(10)
	// 9 workers finish at t=6, one at t=10.
	for w := 0; w < 9; w++ {
		tr.Add(w, int32(w), 'S', 0, 6)
	}
	tr.Add(9, 9, 'S', 0, 10)
	// 90% of workers are permanently idle after 60% of the makespan —
	// exactly Figure 14's pathology.
	got := tr.PermanentIdlePoint(0.9)
	if math.Abs(got-0.6) > 1e-9 {
		t.Fatalf("idle point %g want 0.6", got)
	}
}

func TestBusyCurve(t *testing.T) {
	tr := mkTrace()
	c := tr.BusyCurve(4)
	if len(c) != 4 {
		t.Fatal("bad curve length")
	}
	if c[0] != 1.0 { // both workers busy at start
		t.Fatalf("start busyness %g want 1", c[0])
	}
	for _, v := range c {
		if v < 0 || v > 1 {
			t.Fatalf("curve out of range: %v", c)
		}
	}
}

func TestGantt(t *testing.T) {
	tr := mkTrace()
	g := tr.Gantt(20)
	if !strings.Contains(g, "w00") || !strings.Contains(g, "w01") {
		t.Fatal("gantt missing workers")
	}
	if !strings.Contains(g, "S") || !strings.Contains(g, "U") {
		t.Fatal("gantt missing task labels")
	}
	if !strings.Contains(g, ".") {
		t.Fatal("gantt missing idle cells")
	}
}

func TestKindLabels(t *testing.T) {
	cases := map[string]byte{"P-leaf": 'P', "P-comb": 'P', "F": 'F', "L": 'L', "U": 'U', "S": 'S', "???": '?'}
	for k, want := range cases {
		if got := KindLabel(k); got != want {
			t.Errorf("KindLabel(%q) = %c want %c", k, got, want)
		}
	}
}

func TestLastBusy(t *testing.T) {
	tr := mkTrace()
	if tr.LastBusy(0) != 2 || tr.LastBusy(1) != 1 {
		t.Fatal("LastBusy wrong")
	}
}

func TestLowOccupancyPoint(t *testing.T) {
	tr := New(4)
	// All 4 workers busy for [0,6), then a single-worker tail to t=10.
	for w := 0; w < 4; w++ {
		tr.Add(w, int32(w), 'S', 0, 6)
	}
	tr.Add(0, 9, 'S', 6, 10)
	got := tr.LowOccupancyPoint(0.5)
	if got < 0.55 || got > 0.65 {
		t.Fatalf("low-occupancy onset %g want ~0.6", got)
	}
	// A fully busy trace never drops below threshold before the end.
	tr2 := New(2)
	tr2.Add(0, 0, 'S', 0, 10)
	tr2.Add(1, 1, 'S', 0, 10)
	if p := tr2.LowOccupancyPoint(0.5); p < 0.99 {
		t.Fatalf("fully busy trace onset %g want ~1", p)
	}
}

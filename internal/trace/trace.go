// Package trace records per-worker execution timelines and computes
// the idle-time statistics behind the paper's profiling figures
// (Figures 1, 4, 14, 15): busy/idle fractions, the point at which most
// workers go permanently idle, and an ASCII Gantt rendering of the
// timeline with the paper's task taxonomy.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Span is one executed task on one worker's timeline. Times are seconds
// from the start of the run — wall-clock seconds in real mode, virtual
// seconds in simulation.
type Span struct {
	TaskID int32
	Label  byte // 'P','F','L','U','S' (or 'N' for injected noise)
	Start  float64
	End    float64
}

// Trace is a complete execution timeline.
type Trace struct {
	Workers int
	Spans   [][]Span // Spans[w] is worker w's timeline, in start order
}

// New creates an empty trace for the given worker count.
func New(workers int) *Trace {
	return &Trace{Workers: workers, Spans: make([][]Span, workers)}
}

// Add appends a span to worker w's timeline. Each worker must only
// append to its own timeline (which is how both runtimes use it), so no
// locking is needed.
func (tr *Trace) Add(w int, id int32, label byte, start, end float64) {
	tr.Spans[w] = append(tr.Spans[w], Span{TaskID: id, Label: label, Start: start, End: end})
}

// EnsureWorkers grows the trace to at least n timelines. The runtime
// calls it before merging spans recorded on lending slots — borrowed
// worker identities beyond the reserved count the trace was sized
// for — so cross-job lending shows up as extra timelines instead of
// an out-of-range panic.
func (tr *Trace) EnsureWorkers(n int) {
	for tr.Workers < n {
		tr.Spans = append(tr.Spans, nil)
		tr.Workers++
	}
}

// Merge appends a batch of spans to worker w's timeline. The concurrent
// runtime buffers spans in worker-local slices during the run and
// merges each worker's batch once at the end, keeping the hot dispatch
// path free of shared-slice growth; within a batch spans are already in
// start order, so the Spans invariant is preserved.
func (tr *Trace) Merge(w int, spans []Span) {
	tr.Spans[w] = append(tr.Spans[w], spans...)
}

// Makespan returns the latest span end across all workers.
func (tr *Trace) Makespan() float64 {
	end := 0.0
	for _, spans := range tr.Spans {
		for _, s := range spans {
			if s.End > end {
				end = s.End
			}
		}
	}
	return end
}

// BusyTime returns the total busy seconds of worker w.
func (tr *Trace) BusyTime(w int) float64 {
	t := 0.0
	for _, s := range tr.Spans[w] {
		t += s.End - s.Start
	}
	return t
}

// IdleFraction returns 1 - sum(busy) / (makespan * workers): the share
// of all core-seconds spent idle — the white space of Figure 1.
func (tr *Trace) IdleFraction() float64 {
	ms := tr.Makespan()
	if ms == 0 {
		return 0
	}
	busy := 0.0
	for w := 0; w < tr.Workers; w++ {
		busy += tr.BusyTime(w)
	}
	return 1 - busy/(ms*float64(tr.Workers))
}

// LastBusy returns the time at which worker w finished its final task.
func (tr *Trace) LastBusy(w int) float64 {
	end := 0.0
	for _, s := range tr.Spans[w] {
		if s.End > end {
			end = s.End
		}
	}
	return end
}

// PermanentIdlePoint returns the fraction of the makespan at which at
// least `frac` of the workers have finished their last task — the
// metric behind Figure 14's observation that with dynamic scheduling
// and column-major storage, 90% of threads are idle after only ~60% of
// the factorization time.
func (tr *Trace) PermanentIdlePoint(frac float64) float64 {
	ms := tr.Makespan()
	if ms == 0 {
		return 0
	}
	lasts := make([]float64, tr.Workers)
	for w := range lasts {
		lasts[w] = tr.LastBusy(w)
	}
	sort.Float64s(lasts)
	idx := int(frac*float64(tr.Workers)+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(lasts) {
		idx = len(lasts) - 1
	}
	return lasts[idx] / ms
}

// LowOccupancyPoint returns the fraction of the makespan after which
// the instantaneous busy fraction never again exceeds maxBusy — the
// onset of the drain-out tail visible in Figure 14, where most threads
// sit idle while the last chains complete.
func (tr *Trace) LowOccupancyPoint(maxBusy float64) float64 {
	const samples = 400
	curve := tr.BusyCurve(samples)
	onset := samples
	for i := samples - 1; i >= 0; i-- {
		if curve[i] > maxBusy {
			break
		}
		onset = i
	}
	return float64(onset) / float64(samples)
}

// BusyCurve samples the fraction of busy workers at n evenly spaced
// instants (bucket midpoints), normalized to [0,1]. It is the "pockets
// of idle time" visualization reduced to a curve.
func (tr *Trace) BusyCurve(n int) []float64 {
	ms := tr.Makespan()
	out := make([]float64, n)
	if ms == 0 {
		return out
	}
	for i := 0; i < n; i++ {
		at := (float64(i) + 0.5) / float64(n) * ms
		busy := 0
		for w := 0; w < tr.Workers; w++ {
			for _, s := range tr.Spans[w] {
				if s.Start <= at && at < s.End {
					busy++
					break
				}
			}
		}
		out[i] = float64(busy) / float64(tr.Workers)
	}
	return out
}

// Gantt renders the timeline as ASCII art: one row per worker, width
// columns across the makespan, with each cell showing the task kind
// running at that instant ('.' = idle). It is the textual analogue of
// the paper's timeline figures.
func (tr *Trace) Gantt(width int) string {
	ms := tr.Makespan()
	var b strings.Builder
	if ms == 0 {
		return "(empty trace)\n"
	}
	for w := 0; w < tr.Workers; w++ {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range tr.Spans[w] {
			i0 := int(s.Start / ms * float64(width))
			i1 := int(s.End / ms * float64(width))
			if i1 >= width {
				i1 = width - 1
			}
			for i := i0; i <= i1; i++ {
				row[i] = s.Label
			}
		}
		fmt.Fprintf(&b, "w%02d |%s|\n", w, string(row))
	}
	fmt.Fprintf(&b, "      makespan %.4fs, idle %.1f%%\n", ms, 100*tr.IdleFraction())
	return b.String()
}

// KindLabel maps a task kind name to its Gantt letter.
func KindLabel(kind string) byte {
	switch kind {
	case "P-leaf", "P-comb":
		return 'P'
	case "F":
		return 'F'
	case "L":
		return 'L'
	case "U":
		return 'U'
	case "S":
		return 'S'
	case "D":
		return 'D'
	case "R":
		return 'R'
	}
	return '?'
}

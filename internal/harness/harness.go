// Package harness boots a whole hsdcluster in one process: N engine
// shards behind real HTTP listeners (httptest) and a router in front,
// with knobs to kill a shard mid-flight, spawn-and-join a new one, or
// drain one out. Cluster integration tests and the router benchmarks
// drive the exact binaries' code paths — internal/serve handlers and
// internal/cluster routing — without forking processes.
package harness

import (
	"fmt"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/serve"
)

// Options sizes the in-process cluster. Zero values pick CI-safe
// defaults (small pools, manual probing).
type Options struct {
	// Shards is the initial shard count (default 3).
	Shards int
	// Replicas is the owner-set size (default 2).
	Replicas int
	// Workers is each shard engine's pool size (default 1 — safe on a
	// single-CPU CI runner).
	Workers int
	// Keep bounds each shard's resident factorizations (default 32).
	Keep int
	// FailAfter is the router's eviction threshold (default 2 — two
	// ProbeNow calls retire a killed shard).
	FailAfter int
	// ProbeInterval enables background probing; 0 (default) leaves
	// probing to explicit Router.ProbeNow calls, keeping tests
	// deterministic.
	ProbeInterval time.Duration
}

// Shard is one in-process engine shard.
type Shard struct {
	Name   string
	Server *serve.Server
	Engine *engine.Engine
	HTTP   *httptest.Server
}

// URL returns the shard's listener address.
func (s *Shard) URL() string { return s.HTTP.URL }

// Cluster is a running in-process cluster: a router fronting shards.
type Cluster struct {
	Router     *cluster.Router
	RouterHTTP *httptest.Server

	opt Options

	mu     sync.Mutex
	next   int
	shards map[string]*Shard
}

// newShard boots one serve.Server on a live listener.
func (c *Cluster) newShard() (*Shard, error) {
	eng, err := engine.New(engine.Options{Workers: c.opt.Workers, MaxInflight: 16, DynamicRatio: 0.25})
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.next++
	name := fmt.Sprintf("s%d", c.next)
	c.mu.Unlock()
	srv := serve.New(eng, serve.Options{Keep: c.opt.Keep})
	sh := &Shard{Name: name, Server: srv, Engine: eng, HTTP: httptest.NewServer(srv.Handler())}
	c.mu.Lock()
	c.shards[name] = sh
	c.mu.Unlock()
	return sh, nil
}

// Start boots opt.Shards shards and a router over them.
func Start(opt Options) (*Cluster, error) {
	if opt.Shards <= 0 {
		opt.Shards = 3
	}
	if opt.Replicas <= 0 {
		opt.Replicas = 2
	}
	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	if opt.Keep <= 0 {
		opt.Keep = 32
	}
	if opt.FailAfter <= 0 {
		opt.FailAfter = 2
	}
	c := &Cluster{opt: opt, shards: map[string]*Shard{}}
	infos := make([]cluster.ShardInfo, 0, opt.Shards)
	for i := 0; i < opt.Shards; i++ {
		sh, err := c.newShard()
		if err != nil {
			c.Close()
			return nil, err
		}
		infos = append(infos, cluster.ShardInfo{Name: sh.Name, URL: sh.URL()})
	}
	rt, err := cluster.NewRouter(cluster.RouterOptions{
		Shards:        infos,
		Replicas:      opt.Replicas,
		FailAfter:     opt.FailAfter,
		ProbeInterval: opt.ProbeInterval,
	})
	if err != nil {
		c.Close()
		return nil, err
	}
	c.Router = rt
	c.RouterHTTP = httptest.NewServer(rt.Handler())
	return c, nil
}

// URL returns the router's client-facing address.
func (c *Cluster) URL() string { return c.RouterHTTP.URL }

// Shard returns a running shard by name (nil if killed or unknown).
func (c *Cluster) Shard(name string) *Shard {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shards[name]
}

// Names lists the running shards in sorted order.
func (c *Cluster) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.shards))
	for n := range c.shards {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Kill tears a shard down abruptly — listener and engine both die, the
// way a crashed process looks to the router. The router notices via
// transport errors or probes.
func (c *Cluster) Kill(name string) {
	c.mu.Lock()
	sh := c.shards[name]
	delete(c.shards, name)
	c.mu.Unlock()
	if sh == nil {
		return
	}
	sh.HTTP.CloseClientConnections()
	sh.HTTP.Close()
	sh.Engine.Close()
}

// Spawn boots a fresh shard and joins it through the router: the ring
// rebalances and keys it now owns are migrated onto it before it takes
// traffic.
func (c *Cluster) Spawn() (*Shard, error) {
	sh, err := c.newShard()
	if err != nil {
		return nil, err
	}
	if err := c.Router.Join(cluster.ShardInfo{Name: sh.Name, URL: sh.URL()}); err != nil {
		c.Kill(sh.Name)
		return nil, err
	}
	return sh, nil
}

// Close stops the router and every remaining shard.
func (c *Cluster) Close() {
	if c.RouterHTTP != nil {
		c.RouterHTTP.Close()
	}
	if c.Router != nil {
		c.Router.Close()
	}
	for _, name := range c.Names() {
		c.Kill(name)
	}
}

// Package model implements the paper's theoretical analysis (section
// 6): Theorem 1's upper bound on the static fraction fs that still
// attains ideal execution time in the presence of per-core excess work
// delta_i, the extended denominator that accounts for critical-path and
// migration costs, the resulting best-dynamic-ratio predictor, and the
// exascale projection of section 7.
package model

import (
	"fmt"
	"math"
)

// Params collects the quantities of the section 6 analysis.
type Params struct {
	// T1 is the serial execution time of the whole computation.
	T1 float64
	// P is the core count.
	P int
	// DeltaMax and DeltaAvg are the maximum and average excess work
	// (seconds) across cores — the delta_i of Theorem 1.
	DeltaMax float64
	DeltaAvg float64
	// TCriticalPath is the execution time of the critical path, added to
	// the denominator when p >= T1/TcriticalPath (section 6's extension).
	TCriticalPath float64
	// TMigration is the aggregate task-migration (coherence miss) cost.
	TMigration float64
	// TOverhead folds in any further load-balancing costs (dequeue
	// overhead etc.), the paper's final generalization.
	TOverhead float64
}

// Tp returns the parallel-time denominator: T1/p plus the extension
// terms (the paper starts from Tp = T1/p and then argues the
// denominator should really be T1/p + TcriticalPath + Tmigration +
// Toverhead).
func (p Params) Tp() float64 {
	if p.P <= 0 {
		return math.Inf(1)
	}
	return p.T1/float64(p.P) + p.TCriticalPath + p.TMigration + p.TOverhead
}

// MaxStaticFraction evaluates Theorem 1:
//
//	fs <= 1 - (deltaMax - deltaAvg) / Tp
//
// clamped to [0,1]: the largest fraction of the work that can be
// scheduled statically while the worst-case time under unbalanced noise
// stays no worse than the fully balanced ideal time.
func (p Params) MaxStaticFraction() float64 {
	tp := p.Tp()
	if tp <= 0 || math.IsInf(tp, 1) {
		return 0
	}
	fs := 1 - (p.DeltaMax-p.DeltaAvg)/tp
	return clamp01(fs)
}

// MinDynamicRatio is the paper's tuning knob derived from Theorem 1:
// dratio >= 1 - fs_max.
func (p Params) MinDynamicRatio() float64 {
	return clamp01(1 - p.MaxStaticFraction())
}

// IdealTime returns t_ideal = (T1 + sum(delta_i))/p, assuming the
// excess work can be perfectly balanced; SumDelta = p * DeltaAvg.
func (p Params) IdealTime() float64 {
	if p.P <= 0 {
		return math.Inf(1)
	}
	return (p.T1 + float64(p.P)*p.DeltaAvg) / float64(p.P)
}

// ActualTime returns t_actual(fs) = fs*T1/p + deltaMax, the worst-case
// completion time when a fraction fs of the work is static and the
// noise lands entirely on one core (the proof's construction with
// phi = 1).
func (p Params) ActualTime(fs float64) float64 {
	if p.P <= 0 {
		return math.Inf(1)
	}
	return fs*p.T1/float64(p.P) + p.DeltaMax
}

// Feasible reports whether the given static fraction satisfies the
// theorem's inequality t_actual(fs) <= t_ideal.
func (p Params) Feasible(fs float64) bool {
	return p.ActualTime(fs) <= p.IdealTime()+1e-15
}

// Validate sanity-checks the parameters.
func (p Params) Validate() error {
	if p.T1 < 0 || p.DeltaMax < 0 || p.DeltaAvg < 0 {
		return fmt.Errorf("model: negative times in %+v", p)
	}
	if p.DeltaAvg > p.DeltaMax {
		return fmt.Errorf("model: deltaAvg %g > deltaMax %g", p.DeltaAvg, p.DeltaMax)
	}
	if p.P <= 0 {
		return fmt.Errorf("model: non-positive core count %d", p.P)
	}
	return nil
}

// Projection is one row of the section 7 exascale projection.
type Projection struct {
	Cores         int
	NoiseAmp      float64
	MaxStaticFrac float64
	MinDynamicPct float64
}

// ProjectExascale sweeps core counts while keeping the work per core
// constant (weak scaling, as section 7 prescribes) and amplifying the
// delta spread by amp(p); it returns the projected minimum dynamic
// percentage per configuration. As the paper concludes, the bound
// forces the dynamic share upward on larger machines.
func ProjectExascale(base Params, cores []int, amp func(p int) float64) []Projection {
	out := make([]Projection, 0, len(cores))
	perCore := base.T1 / float64(base.P)
	for _, p := range cores {
		a := amp(p)
		cfg := base
		cfg.P = p
		cfg.T1 = perCore * float64(p) // constant work per core
		cfg.DeltaMax = base.DeltaMax * a
		cfg.DeltaAvg = base.DeltaAvg // the *spread* grows, not the mean
		if cfg.DeltaAvg > cfg.DeltaMax {
			cfg.DeltaAvg = cfg.DeltaMax
		}
		fs := cfg.MaxStaticFraction()
		out = append(out, Projection{
			Cores:         p,
			NoiseAmp:      a,
			MaxStaticFrac: fs,
			MinDynamicPct: 100 * (1 - fs),
		})
	}
	return out
}

// FitDeltas estimates (deltaMax, deltaAvg) from observed per-core busy
// times: the excess of each core over the least loaded one. It is how
// the experiments extract the theorem's inputs from a trace.
func FitDeltas(busy []float64) (deltaMax, deltaAvg float64) {
	if len(busy) == 0 {
		return 0, 0
	}
	minB := busy[0]
	for _, b := range busy {
		if b < minB {
			minB = b
		}
	}
	sum := 0.0
	for _, b := range busy {
		d := b - minB
		sum += d
		if d > deltaMax {
			deltaMax = d
		}
	}
	return deltaMax, sum / float64(len(busy))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

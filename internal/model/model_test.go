package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTheorem1Boundary(t *testing.T) {
	// At fs = fs_max the actual time must equal the ideal time (the
	// theorem's equality point), for delta spread chosen to keep fs in
	// (0,1).
	p := Params{T1: 100, P: 10, DeltaMax: 2, DeltaAvg: 0.5}
	fs := p.MaxStaticFraction()
	if fs <= 0 || fs >= 1 {
		t.Fatalf("fs = %g not in (0,1)", fs)
	}
	if math.Abs(p.ActualTime(fs)-p.IdealTime()) > 1e-9 {
		t.Fatalf("boundary not tight: actual %g ideal %g", p.ActualTime(fs), p.IdealTime())
	}
}

func TestTheorem1Feasibility(t *testing.T) {
	p := Params{T1: 100, P: 10, DeltaMax: 2, DeltaAvg: 0.5}
	fs := p.MaxStaticFraction()
	if !p.Feasible(fs) {
		t.Fatal("fs_max must be feasible")
	}
	if p.Feasible(fs + 0.01) {
		t.Fatal("fs above the bound must be infeasible")
	}
}

func TestNoNoiseAllowsFullyStatic(t *testing.T) {
	p := Params{T1: 100, P: 10}
	if p.MaxStaticFraction() != 1 {
		t.Fatal("quiet machine admits fs = 1")
	}
	if p.MinDynamicRatio() != 0 {
		t.Fatal("quiet machine needs no dynamic work")
	}
}

func TestHugeNoiseForcesDynamic(t *testing.T) {
	p := Params{T1: 10, P: 10, DeltaMax: 100, DeltaAvg: 0}
	if p.MaxStaticFraction() != 0 {
		t.Fatal("overwhelming noise must clamp fs to 0")
	}
}

func TestExtendedDenominatorLowersStaticFraction(t *testing.T) {
	base := Params{T1: 100, P: 10, DeltaMax: 2, DeltaAvg: 0.5}
	ext := base
	ext.TCriticalPath = 5
	ext.TMigration = 1
	ext.TOverhead = 1
	// A bigger denominator tolerates more static work (section 6: the
	// terms are added to Tp in the bound's denominator).
	if ext.MaxStaticFraction() <= base.MaxStaticFraction() {
		t.Fatalf("extended fs %g <= base fs %g", ext.MaxStaticFraction(), base.MaxStaticFraction())
	}
}

func TestLargerMatrixAllowsMoreStatic(t *testing.T) {
	// Section 6: increasing T1 with architecture fixed raises fs_max.
	small := Params{T1: 10, P: 10, DeltaMax: 1, DeltaAvg: 0.2}
	big := Params{T1: 1000, P: 10, DeltaMax: 1, DeltaAvg: 0.2}
	if big.MaxStaticFraction() <= small.MaxStaticFraction() {
		t.Fatal("more work must allow a larger static fraction")
	}
}

func TestValidate(t *testing.T) {
	if err := (Params{T1: 1, P: 2, DeltaMax: 1, DeltaAvg: 0.5}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Params{T1: 1, P: 0}).Validate(); err == nil {
		t.Fatal("p=0 must fail validation")
	}
	if err := (Params{T1: 1, P: 2, DeltaMax: 1, DeltaAvg: 2}).Validate(); err == nil {
		t.Fatal("avg > max must fail validation")
	}
	if err := (Params{T1: -1, P: 2}).Validate(); err == nil {
		t.Fatal("negative time must fail validation")
	}
}

func TestProjectExascale(t *testing.T) {
	base := Params{T1: 480, P: 48, DeltaMax: 0.5, DeltaAvg: 0.1}
	cores := []int{48, 192, 768, 3072}
	proj := ProjectExascale(base, cores, func(p int) float64 {
		return math.Sqrt(float64(p) / 48)
	})
	if len(proj) != len(cores) {
		t.Fatal("wrong projection length")
	}
	// Section 7: the minimum dynamic percentage must grow with scale.
	for i := 1; i < len(proj); i++ {
		if proj[i].MinDynamicPct < proj[i-1].MinDynamicPct {
			t.Fatalf("dynamic share must be monotone: %+v", proj)
		}
	}
	if proj[0].Cores != 48 || proj[len(proj)-1].Cores != 3072 {
		t.Fatal("core counts mangled")
	}
}

func TestFitDeltas(t *testing.T) {
	busy := []float64{10, 12, 11, 10}
	dmax, davg := FitDeltas(busy)
	if dmax != 2 {
		t.Fatalf("deltaMax %g want 2", dmax)
	}
	if math.Abs(davg-0.75) > 1e-12 {
		t.Fatalf("deltaAvg %g want 0.75", davg)
	}
	if d, a := FitDeltas(nil); d != 0 || a != 0 {
		t.Fatal("empty input must give zeros")
	}
}

// Property: the theorem's bound is exactly the feasibility frontier for
// random parameter draws.
func TestBoundIsFrontierProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{
			T1:       10 + rng.Float64()*1000,
			P:        1 + rng.Intn(128),
			DeltaAvg: rng.Float64(),
		}
		p.DeltaMax = p.DeltaAvg + rng.Float64()*3
		fs := p.MaxStaticFraction()
		if fs > 0 && !p.Feasible(fs-1e-9) {
			return false
		}
		if fs < 1 && p.Feasible(fs+1e-6) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

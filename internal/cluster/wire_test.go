package cluster

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/mat"
)

// randDense fills an r x c matrix with deterministic values, salting in
// a few special floats so bit-exactness is actually exercised.
func randDense(r, c int, seed int64) *mat.Dense {
	rng := rand.New(rand.NewSource(seed))
	d := mat.New(r, c)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	if len(d.Data) > 4 {
		d.Data[0] = math.Copysign(0, -1)  // -0
		d.Data[1] = math.SmallestNonzeroFloat64
		d.Data[2] = math.Inf(1)
		d.Data[3] = math.NaN()
	}
	return d
}

func bitEqual(t *testing.T, name string, a, b *mat.Dense) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			t.Fatalf("%s: element %d differs: %x vs %x",
				name, i, math.Float64bits(a.Data[i]), math.Float64bits(b.Data[i]))
		}
	}
}

// TestWireLURoundTrip: LU factorizations of assorted (including ragged,
// sub-block and multi-block) sizes survive the wire bit-identically,
// permutation included.
func TestWireLURoundTrip(t *testing.T) {
	for _, n := range []int{1, 7, 128, 200} {
		lu := &core.Factorization{
			Perm: rand.New(rand.NewSource(int64(n))).Perm(n),
			L:    randDense(n, n, int64(n)),
			U:    randDense(n, n, int64(n)+1),
		}
		data, err := EncodeFactorization(lu, nil)
		if err != nil {
			t.Fatalf("n=%d: encode: %v", n, err)
		}
		got, ch, err := DecodeFactorization(data)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if ch != nil || got == nil {
			t.Fatalf("n=%d: decoded wrong kind", n)
		}
		if len(got.Perm) != n {
			t.Fatalf("n=%d: perm length %d", n, len(got.Perm))
		}
		for i, p := range lu.Perm {
			if got.Perm[i] != p {
				t.Fatalf("n=%d: perm[%d] = %d, want %d", n, i, got.Perm[i], p)
			}
		}
		bitEqual(t, "L", lu.L, got.L)
		bitEqual(t, "U", lu.U, got.U)
	}
}

// TestWireCholeskyRoundTrip: Cholesky factors travel without a
// permutation and come back bit-identical.
func TestWireCholeskyRoundTrip(t *testing.T) {
	for _, n := range []int{1, 33, 150} {
		ch := &core.CholeskyFactorization{L: randDense(n, n, int64(n))}
		data, err := EncodeFactorization(nil, ch)
		if err != nil {
			t.Fatalf("n=%d: encode: %v", n, err)
		}
		lu, got, err := DecodeFactorization(data)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if lu != nil || got == nil {
			t.Fatalf("n=%d: decoded wrong kind", n)
		}
		bitEqual(t, "chol L", ch.L, got.L)
	}
}

// TestWireRejectsInvalidInput: encode refuses ambiguous arguments,
// decode refuses malformed bytes without panicking.
func TestWireRejectsInvalidInput(t *testing.T) {
	if _, err := EncodeFactorization(nil, nil); err == nil {
		t.Fatal("encoded neither kind")
	}
	both := &core.Factorization{L: mat.New(1, 1), U: mat.New(1, 1)}
	if _, err := EncodeFactorization(both, &core.CholeskyFactorization{L: mat.New(1, 1)}); err == nil {
		t.Fatal("encoded both kinds")
	}

	good, err := EncodeFactorization(&core.Factorization{
		Perm: []int{1, 0, 2},
		L:    randDense(3, 3, 1),
		U:    randDense(3, 3, 2),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":        nil,
		"short":        good[:3],
		"header only":  good[:wireHdrLen],
		"perm only":    good[:wireHdrLen+4],
		"truncated L":  good[:len(good)/2],
		"truncated U":  good[:len(good)-1],
		"trailing":     append(append([]byte(nil), good...), 0),
		"bad magic":    append([]byte("NOPE"), good[4:]...),
		"bad version":  append(append([]byte(nil), good[:4]...), append([]byte{99}, good[5:]...)...),
		"bad kind":     append(append([]byte(nil), good[:5]...), append([]byte{7}, good[6:]...)...),
		"perm len lie": func() []byte {
			b := append([]byte(nil), good...)
			b[wireHdrLen] = 200 // claims 200 perm entries
			return b
		}(),
	}
	for name, data := range cases {
		if _, _, err := DecodeFactorization(data); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}

	// Perm length / L rows mismatch (well-formed pieces, inconsistent).
	mis, err := EncodeFactorization(&core.Factorization{
		Perm: []int{0, 1},
		L:    randDense(3, 3, 1),
		U:    randDense(3, 3, 2),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeFactorization(mis); err == nil {
		t.Error("perm/L mismatch accepted")
	}
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ShardInfo names one engine shard and where to reach it.
type ShardInfo struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// RouterOptions configures a Router.
type RouterOptions struct {
	// Shards is the initial membership; at least one is required.
	Shards []ShardInfo
	// Replicas is the owner-set size R: the factorization lives on the
	// primary owner plus R-1 replicas. Default 2, clamped to >= 1.
	Replicas int
	// VNodes is the virtual-node count per shard (<= 0 = default).
	VNodes int
	// ProbeInterval drives the background health probe; 0 disables it —
	// probes then run only through ProbeNow (harness/tests) and
	// transport errors on the data path.
	ProbeInterval time.Duration
	// FailAfter is how many consecutive probe or transport failures
	// evict a shard from the ring. Default 3, clamped to >= 1.
	FailAfter int
	// MaxBody bounds client request bodies. Default 256 MiB.
	MaxBody int64
	// Client is the HTTP client used to reach shards; nil = a default.
	Client *http.Client
}

// shardState is the router's view of one shard. Counter fields are
// atomic so the data path never takes the flag mutex just to count.
type shardState struct {
	name string
	url  string

	requests atomic.Int64 // proxied requests (data + admin)
	errs     atomic.Int64 // transport-level failures

	mu          sync.Mutex //hsd:lockrank shardState.mu 40
	healthy     bool
	draining    bool // no new factor placements; still serves solves
	retired     bool // drained out; never routed again
	consecFails int
}

// Router is the cluster front door: it consistent-hashes factorization
// keys onto shards, factors on the key's owner, fans the serialized
// factorization out to replicas, and routes solves to any holder with
// failover. It also runs the shard lifecycle: Join, Drain, and
// probe-driven eviction. Serve it with its Handler.
type Router struct {
	opt    RouterOptions
	client *http.Client

	// adminMu serializes migrating membership changes (join, drain) so
	// their rebalances never interleave; probe-driven evict/rejoin
	// touch only ringMu. The lock hierarchy below is machine-checked by
	// hsdlint's lockorder analyzer from the //hsd:lockrank annotations
	// (lower rank = acquired first):
	// adminMu > shardMu > ringMu > shardState.mu > placeMu.
	adminMu sync.Mutex //hsd:lockrank adminMu 10

	shardMu sync.RWMutex //hsd:lockrank shardMu 20
	shards  map[string]*shardState

	ringMu sync.RWMutex //hsd:lockrank ringMu 30
	ring   *Ring

	// placements records which shards hold each key — written at factor
	// time and rewritten by migrations. It is what lets a solve for a
	// lost key answer "owner set down" (503) instead of "never heard of
	// it" (404), and what drains and joins enumerate.
	placeMu    sync.Mutex //hsd:lockrank placeMu 50
	placements map[string][]string

	seq       atomic.Int64
	factors   atomic.Int64
	solves    atomic.Int64
	failovers atomic.Int64
	repOK     atomic.Int64
	repFail   atomic.Int64
	rotor     atomic.Int64

	lagMu    sync.Mutex
	repLagMs float64 // EWMA of factor-reply-to-replicas-imported latency

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewRouter builds a router over the given shards and, when
// ProbeInterval > 0, starts its health-probe loop.
func NewRouter(opt RouterOptions) (*Router, error) {
	if len(opt.Shards) == 0 {
		return nil, errors.New("cluster: router needs at least one shard")
	}
	if opt.Replicas < 1 {
		opt.Replicas = 2
	}
	if opt.FailAfter < 1 {
		opt.FailAfter = 3
	}
	if opt.MaxBody <= 0 {
		opt.MaxBody = 256 << 20
	}
	rt := &Router{
		opt:        opt,
		client:     opt.Client,
		shards:     map[string]*shardState{},
		ring:       NewRing(opt.VNodes),
		placements: map[string][]string{},
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	if rt.client == nil {
		rt.client = &http.Client{}
	}
	for _, si := range opt.Shards {
		if si.Name == "" || si.URL == "" {
			return nil, fmt.Errorf("cluster: shard needs a name and url, got %+v", si)
		}
		if _, dup := rt.shards[si.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard name %q", si.Name)
		}
		rt.shards[si.Name] = &shardState{name: si.Name, url: si.URL, healthy: true}
		rt.ring.Add(si.Name)
	}
	if opt.ProbeInterval > 0 {
		go rt.probeLoop()
	} else {
		close(rt.done)
	}
	return rt, nil
}

// Close stops the probe loop. It does not touch the shards.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	<-rt.done
}

// ---- placement ----------------------------------------------------------

func (rt *Router) ownerSet(key string) []string {
	rt.ringMu.RLock()
	defer rt.ringMu.RUnlock()
	return rt.ring.Owners(key, rt.opt.Replicas)
}

func (rt *Router) shard(name string) *shardState {
	rt.shardMu.RLock()
	defer rt.shardMu.RUnlock()
	return rt.shards[name]
}

func (rt *Router) shardList() []*shardState {
	rt.shardMu.RLock()
	defer rt.shardMu.RUnlock()
	out := make([]*shardState, 0, len(rt.shards))
	for _, s := range rt.shards {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// routable: may receive solves and admin traffic.
func (s *shardState) routable() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.healthy && !s.retired
}

// placeable: may receive new factor placements.
func (s *shardState) placeable() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.healthy && !s.retired && !s.draining
}

func (rt *Router) holders(key string) []string {
	rt.placeMu.Lock()
	defer rt.placeMu.Unlock()
	return append([]string(nil), rt.placements[key]...)
}

// Holders reports which shards hold a key's factorization according to
// the placement table: the primary owner first, then replicas. Nil
// means the router never placed the key.
func (rt *Router) Holders(key string) []string { return rt.holders(key) }

func (rt *Router) setHolders(key string, hs []string) {
	rt.placeMu.Lock()
	defer rt.placeMu.Unlock()
	rt.placements[key] = hs
}

// ---- shard transport ----------------------------------------------------

// post sends body to a shard path; transport failures count against the
// shard's health.
func (rt *Router) post(s *shardState, path, ct string, body []byte) (*http.Response, error) {
	s.requests.Add(1)
	resp, err := rt.client.Post(s.url+path, ct, bytes.NewReader(body))
	if err != nil {
		rt.noteTransportError(s)
	} else {
		rt.noteAlive(s)
	}
	return resp, err
}

func (rt *Router) get(s *shardState, path string) (*http.Response, error) {
	s.requests.Add(1)
	resp, err := rt.client.Get(s.url + path)
	if err != nil {
		rt.noteTransportError(s)
	} else {
		rt.noteAlive(s)
	}
	return resp, err
}

// noteTransportError counts a failure and evicts the shard from the
// ring once FailAfter consecutive failures accumulate.
func (rt *Router) noteTransportError(s *shardState) {
	s.errs.Add(1)
	s.mu.Lock()
	s.consecFails++
	trip := s.healthy && s.consecFails >= rt.opt.FailAfter
	if trip {
		s.healthy = false
	}
	s.mu.Unlock()
	// Only ringMu here, never adminMu: transport errors surface inside
	// Join/Drain migrations too, which already hold adminMu. A ring
	// swap racing this eviction can resurrect the node's points, but
	// routing re-checks shard health on every request, so a stale ring
	// entry costs a skipped candidate, not a misroute.
	if trip {
		rt.ringMu.Lock()
		rt.ring.Remove(s.name)
		rt.ringMu.Unlock()
	}
}

// noteAlive resets the failure streak; a previously evicted shard
// rejoins the ring (its kept state may be stale or gone — solve
// failover covers the 404s until new placements repopulate it).
func (rt *Router) noteAlive(s *shardState) {
	s.mu.Lock()
	s.consecFails = 0
	rejoin := !s.healthy && !s.retired
	if rejoin {
		s.healthy = true
	}
	s.mu.Unlock()
	if rejoin {
		rt.ringMu.Lock()
		rt.ring.Add(s.name)
		rt.ringMu.Unlock()
	}
}

// probeLoop drives periodic health probes until Close.
func (rt *Router) probeLoop() {
	defer close(rt.done)
	t := time.NewTicker(rt.opt.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.ProbeNow()
		}
	}
}

// ProbeNow runs one synchronous health-probe pass over every
// non-retired shard. The in-process harness and tests call it directly
// instead of waiting out a probe interval.
func (rt *Router) ProbeNow() {
	for _, s := range rt.shardList() {
		s.mu.Lock()
		retired := s.retired
		s.mu.Unlock()
		if retired {
			continue
		}
		//hsd:allow ctxflow probes are fire-and-forget with their own deadline; no caller ctx exists
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.url+"/healthz", nil)
		if err != nil {
			cancel()
			continue
		}
		resp, err := rt.client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		cancel()
		if err != nil || resp.StatusCode != http.StatusOK {
			rt.noteTransportError(s)
		} else {
			rt.noteAlive(s)
		}
	}
}

// ---- replication and migration ------------------------------------------

// exportFrom fetches the serialized factorization for key from a shard.
func (rt *Router) exportFrom(s *shardState, key string) ([]byte, error) {
	resp, err := rt.get(s, "/v1/admin/export?id="+url.QueryEscape(key))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("export %s from %s: status %d: %s", key, s.name, resp.StatusCode, bytes.TrimSpace(b))
	}
	return io.ReadAll(resp.Body)
}

// importTo ships serialized factorization bytes to a shard under key.
func (rt *Router) importTo(s *shardState, key string, wire []byte) error {
	resp, err := rt.post(s, "/v1/admin/import?id="+url.QueryEscape(key), "application/octet-stream", wire)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("import %s to %s: status %d", key, s.name, resp.StatusCode)
	}
	return nil
}

// replicate copies key from src to every named target that is routable,
// returning the shards now holding the key (src included).
func (rt *Router) replicate(src *shardState, key string, targets []string) []string {
	holding := []string{src.name}
	var wire []byte
	for _, name := range targets {
		if name == src.name {
			continue
		}
		t := rt.shard(name)
		if t == nil || !t.routable() {
			rt.repFail.Add(1)
			continue
		}
		if wire == nil {
			var err error
			wire, err = rt.exportFrom(src, key)
			if err != nil {
				rt.repFail.Add(1)
				return holding
			}
		}
		if err := rt.importTo(t, key, wire); err != nil {
			rt.repFail.Add(1)
			continue
		}
		rt.repOK.Add(1)
		holding = append(holding, name)
	}
	return holding
}

// migrateKey makes every shard in want hold key, exporting from the
// preferred holder (or any routable current holder). It returns the
// shards confirmed to hold the key afterwards.
func (rt *Router) migrateKey(key string, current []string, want []string, prefer string) []string {
	holds := map[string]bool{}
	for _, h := range current {
		holds[h] = true
	}
	var wire []byte
	fetch := func() bool {
		if wire != nil {
			return true
		}
		order := append([]string(nil), current...)
		if prefer != "" {
			order = append([]string{prefer}, order...)
		}
		for _, name := range order {
			s := rt.shard(name)
			if s == nil || !s.routable() {
				continue
			}
			b, err := rt.exportFrom(s, key)
			if err == nil {
				wire = b
				return true
			}
		}
		return false
	}
	out := make([]string, 0, len(want))
	for _, name := range want {
		if holds[name] {
			out = append(out, name)
			continue
		}
		t := rt.shard(name)
		if t == nil || !t.routable() || !fetch() {
			rt.repFail.Add(1)
			continue
		}
		if err := rt.importTo(t, key, wire); err != nil {
			rt.repFail.Add(1)
			continue
		}
		rt.repOK.Add(1)
		out = append(out, name)
	}
	if len(out) == 0 {
		// Migration failed outright; keep the old holders rather than
		// forgetting where the key lives.
		return current
	}
	return out
}

// Join adds a shard to the cluster: it is probed, inserted into the
// shard set, handed the keys the rebalanced ring assigns it, and only
// then placed on the live ring.
func (rt *Router) Join(si ShardInfo) error {
	if si.Name == "" || si.URL == "" {
		return fmt.Errorf("cluster: join needs a name and url, got %+v", si)
	}
	rt.adminMu.Lock()
	defer rt.adminMu.Unlock()
	rt.shardMu.Lock()
	if _, dup := rt.shards[si.Name]; dup {
		rt.shardMu.Unlock()
		return fmt.Errorf("cluster: shard %q already a member", si.Name)
	}
	s := &shardState{name: si.Name, url: si.URL, healthy: true}
	rt.shards[si.Name] = s
	rt.shardMu.Unlock()

	resp, err := rt.client.Get(si.URL + "/readyz")
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if err != nil || resp.StatusCode != http.StatusOK {
		rt.shardMu.Lock()
		delete(rt.shards, si.Name)
		rt.shardMu.Unlock()
		return fmt.Errorf("cluster: shard %q at %s is not ready", si.Name, si.URL)
	}

	// Migrate against the prospective ring, then swap it in: keys the
	// new shard will own are resident before any request can route on
	// the new topology.
	rt.ringMu.RLock()
	next := rt.ring.Clone()
	rt.ringMu.RUnlock()
	next.Add(si.Name)
	rt.rebalanceLocked(next, "")

	rt.installRing(next)
	return nil
}

// Drain retires a shard with zero failed requests: stop placing new
// factorizations on it, migrate its kept state to the owners under the
// shrunken ring, swap the ring, tell the shard itself to drain, and
// only then stop routing solves to it.
func (rt *Router) Drain(name string) error {
	rt.adminMu.Lock()
	defer rt.adminMu.Unlock()
	s := rt.shard(name)
	if s == nil {
		return fmt.Errorf("cluster: unknown shard %q", name)
	}
	s.mu.Lock()
	if s.retired {
		s.mu.Unlock()
		return fmt.Errorf("cluster: shard %q already drained", name)
	}
	s.draining = true
	s.mu.Unlock()

	rt.ringMu.RLock()
	next := rt.ring.Clone()
	rt.ringMu.RUnlock()
	next.Remove(name)
	rt.rebalanceLocked(next, name)

	rt.installRing(next)

	// Shard-side drain: it finishes inflight work and refuses new jobs.
	// A solve racing this gets the shard's 503 and fails over to a
	// freshly migrated replica, so clients never see the retirement.
	resp, err := rt.post(s, "/v1/admin/drain", "application/json", []byte("{}"))
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	s.mu.Lock()
	s.retired = true
	s.mu.Unlock()

	// Drop the retired shard from every placement record.
	rt.placeMu.Lock()
	for key, hs := range rt.placements {
		kept := hs[:0]
		for _, h := range hs {
			if h != name {
				kept = append(kept, h)
			}
		}
		rt.placements[key] = kept
	}
	rt.placeMu.Unlock()
	if err != nil {
		return fmt.Errorf("cluster: shard %q state migrated but drain call failed: %w", name, err)
	}
	return nil
}

// installRing publishes a prospective ring built by a migration
// (adminMu held). The clone the migration worked against predates the
// swap, so any membership event that raced it — a probe or transport
// eviction, a rejoin — only landed on the ring being replaced: swapping
// the stale clone in verbatim would resurrect an evicted shard's ring
// points (or drop a rejoined shard's) until the next event fixed it up.
// Reconcile under ringMu: re-read each shard's flags and apply them to
// the prospective ring before it goes live. Flag writers (noteAlive,
// noteTransportError) set the flag under shardState.mu strictly before
// their own ringMu section, so every event is either visible to this
// re-read or its ring edit lands on the installed ring — never neither.
func (rt *Router) installRing(next *Ring) {
	shards := rt.shardList()
	rt.ringMu.Lock()
	for _, s := range shards {
		s.mu.Lock()
		healthy, retired, draining := s.healthy, s.retired, s.draining
		s.mu.Unlock()
		switch {
		case !healthy || retired:
			next.Remove(s.name)
		case !draining:
			next.Add(s.name)
		}
	}
	rt.ring = next
	rt.ringMu.Unlock()
}

// rebalanceLocked (adminMu held) rewrites every placement to the owner
// set under the prospective ring, migrating factorizations to owners
// that lack them. prefer names the shard to export from first (the
// draining shard — it is the authoritative holder on its way out).
func (rt *Router) rebalanceLocked(next *Ring, prefer string) {
	rt.placeMu.Lock()
	snap := make(map[string][]string, len(rt.placements))
	for k, hs := range rt.placements {
		snap[k] = append([]string(nil), hs...)
	}
	rt.placeMu.Unlock()
	for key, current := range snap {
		want := next.Owners(key, rt.opt.Replicas)
		after := rt.migrateKey(key, current, want, prefer)
		rt.setHolders(key, after)
	}
}

// ---- HTTP surface -------------------------------------------------------

type routerError struct {
	Error        string `json:"error"`
	OwnerSetDown bool   `json:"ownerSetDown,omitempty"`
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(routerError{Error: msg})
}

// ownerSetDown is the typed 503 a solve gets when every shard that held
// its key is gone.
func ownerSetDown(w http.ResponseWriter, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(routerError{Error: msg, OwnerSetDown: true})
}

// readPost guards then reads a request body: POST only, exact media
// type, size-capped. Order matters — method and Content-Type are
// checked before any body byte is read. This is the package's
// error-to-status table for request-body errors; hsdlint's errstatus
// analyzer keeps any new errors.Is/As → 4xx/5xx mapping in here.
//
//hsd:statusmap
func (rt *Router) readPost(w http.ResponseWriter, r *http.Request, want string) ([]byte, bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return nil, false
	}
	mt, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if err != nil || mt != want {
		httpError(w, http.StatusUnsupportedMediaType, "send Content-Type: "+want)
		return nil, false
	}
	r.Body = http.MaxBytesReader(w, r.Body, rt.opt.MaxBody)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", rt.opt.MaxBody))
		} else {
			httpError(w, http.StatusBadRequest, "could not read request body")
		}
		return nil, false
	}
	return body, true
}

// relay copies a shard response through to the client.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// handleFactor places a factor job: the router assigns the key, hashes
// it to an owner set, factors on the first placeable owner, then fans
// the serialized factorization out to the rest of the set.
func (rt *Router) handleFactor(w http.ResponseWriter, r *http.Request, chol bool) {
	body, ok := rt.readPost(w, r, "application/json")
	if !ok {
		return
	}
	var raw map[string]any
	if err := json.Unmarshal(body, &raw); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if _, has := raw["id"]; has {
		httpError(w, http.StatusBadRequest, "id is router-assigned; do not supply one")
		return
	}
	prefix, path := "f", "/v1/factor"
	if chol {
		prefix, path = "c", "/v1/cholesky"
	}
	key := fmt.Sprintf("%s-%d", prefix, rt.seq.Add(1))
	raw["id"] = key
	fwd, err := json.Marshal(raw)
	if err != nil {
		httpError(w, http.StatusBadRequest, "could not re-encode request: "+err.Error())
		return
	}
	owners := rt.ownerSet(key)
	rt.factors.Add(1)

	var last *http.Response
	tried := 0
	for _, name := range owners {
		s := rt.shard(name)
		if s == nil || !s.placeable() {
			continue
		}
		if tried > 0 {
			rt.failovers.Add(1)
		}
		tried++
		start := time.Now()
		resp, err := rt.post(s, path, "application/json", fwd)
		if err != nil {
			continue
		}
		if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
			// Owner shed or saturated: the next owner in the set is a
			// legitimate factor target — the key still hashes to it.
			if last != nil {
				last.Body.Close()
			}
			last = resp
			continue
		}
		if resp.StatusCode == http.StatusOK {
			holders := rt.replicate(s, key, owners)
			rt.observeRepLag(time.Since(start))
			rt.setHolders(key, holders)
		}
		if last != nil {
			last.Body.Close()
		}
		relay(w, resp)
		return
	}
	if last != nil {
		relay(w, last)
		return
	}
	ownerSetDown(w, "no live owner for key "+key)
}

// handleSolve routes a solve to any shard holding the key, rotating the
// starting replica for read scaling and failing over past dead or
// evicted holders. Unknown keys are 404; keys whose every holder is
// gone get the typed ownerSetDown 503.
func (rt *Router) handleSolve(w http.ResponseWriter, r *http.Request, chol bool) {
	body, ok := rt.readPost(w, r, "application/json")
	if !ok {
		return
	}
	var req struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if req.ID == "" {
		httpError(w, http.StatusBadRequest, "missing factorization id")
		return
	}
	path := "/v1/solve"
	if chol {
		path = "/v1/cholesky/solve"
	}
	holders := rt.holders(req.ID)
	if holders == nil {
		httpError(w, http.StatusNotFound, "unknown factorization id "+req.ID)
		return
	}
	rt.solves.Add(1)

	var last *http.Response
	start := int(rt.rotor.Add(1))
	tried := 0
	for i := 0; i < len(holders); i++ {
		name := holders[(start+i)%len(holders)]
		s := rt.shard(name)
		if s == nil || !s.routable() {
			continue
		}
		if tried > 0 {
			rt.failovers.Add(1)
		}
		tried++
		resp, err := rt.post(s, path, "application/json", body)
		if err != nil {
			continue
		}
		if resp.StatusCode >= 500 || resp.StatusCode == http.StatusNotFound ||
			resp.StatusCode == http.StatusTooManyRequests {
			// Holder draining, saturated, or it lost the entry (LRU):
			// another replica can still answer.
			if last != nil {
				last.Body.Close()
			}
			last = resp
			continue
		}
		if last != nil {
			last.Body.Close()
		}
		relay(w, resp)
		return
	}
	if last != nil {
		relay(w, last)
		return
	}
	ownerSetDown(w, "every shard holding "+req.ID+" is unreachable")
}

// observeRepLag folds one factor-to-replicated latency into the EWMA.
func (rt *Router) observeRepLag(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	rt.lagMu.Lock()
	if rt.repLagMs == 0 {
		rt.repLagMs = ms
	} else {
		rt.repLagMs = 0.7*rt.repLagMs + 0.3*ms
	}
	rt.lagMu.Unlock()
}

// routerShardStats is the per-shard block in the router's /v1/stats.
type routerShardStats struct {
	URL             string          `json:"url"`
	Healthy         bool            `json:"healthy"`
	Draining        bool            `json:"draining"`
	Retired         bool            `json:"retired"`
	Requests        int64           `json:"requests"`
	TransportErrors int64           `json:"transportErrors"`
	Stats           json.RawMessage `json:"stats,omitempty"` // the shard's own /v1/stats, fetched live
}

type routerStats struct {
	RingGen             uint64                      `json:"ringGen"`
	RingMembers         []string                    `json:"ringMembers"`
	Replicas            int                         `json:"replicas"`
	Keys                int                         `json:"keys"`
	Factors             int64                       `json:"factors"`
	Solves              int64                       `json:"solves"`
	Failovers           int64                       `json:"failovers"`
	Replications        int64                       `json:"replications"`
	ReplicationFailures int64                       `json:"replicationFailures"`
	ReplicationLagMs    float64                     `json:"replicationLagMs"`
	Shards              map[string]routerShardStats `json:"shards"`
}

// Stats snapshots the router, fetching each routable shard's own stats
// block live.
func (rt *Router) Stats() routerStats {
	rt.ringMu.RLock()
	gen := rt.ring.Gen()
	members := rt.ring.Nodes()
	rt.ringMu.RUnlock()
	rt.placeMu.Lock()
	keys := len(rt.placements)
	rt.placeMu.Unlock()
	rt.lagMu.Lock()
	lag := rt.repLagMs
	rt.lagMu.Unlock()

	out := routerStats{
		RingGen:             gen,
		RingMembers:         members,
		Replicas:            rt.opt.Replicas,
		Keys:                keys,
		Factors:             rt.factors.Load(),
		Solves:              rt.solves.Load(),
		Failovers:           rt.failovers.Load(),
		Replications:        rt.repOK.Load(),
		ReplicationFailures: rt.repFail.Load(),
		ReplicationLagMs:    lag,
		Shards:              map[string]routerShardStats{},
	}
	for _, s := range rt.shardList() {
		s.mu.Lock()
		st := routerShardStats{
			URL:             s.url,
			Healthy:         s.healthy,
			Draining:        s.draining,
			Retired:         s.retired,
			Requests:        s.requests.Load(),
			TransportErrors: s.errs.Load(),
		}
		alive := s.healthy && !s.retired
		s.mu.Unlock()
		if alive {
			if resp, err := rt.get(s, "/v1/stats"); err == nil {
				if resp.StatusCode == http.StatusOK {
					if b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20)); err == nil && json.Valid(b) {
						st.Stats = b
					}
				}
				resp.Body.Close()
			}
		}
		out.Shards[s.name] = st
	}
	return out
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rt.Stats())
}

func (rt *Router) handleJoin(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readPost(w, r, "application/json")
	if !ok {
		return
	}
	var si ShardInfo
	if err := json.Unmarshal(body, &si); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if err := rt.Join(si); err != nil {
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"joined\":%q}\n", si.Name)
}

func (rt *Router) handleDrain(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readPost(w, r, "application/json")
	if !ok {
		return
	}
	var req struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if req.Name == "" {
		httpError(w, http.StatusBadRequest, "missing shard name")
		return
	}
	if err := rt.Drain(req.Name); err != nil {
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"drained\":%q}\n", req.Name)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	for _, s := range rt.shardList() {
		if s.placeable() {
			w.WriteHeader(http.StatusOK)
			io.WriteString(w, "ready\n")
			return
		}
	}
	httpError(w, http.StatusServiceUnavailable, "no placeable shard")
}

// Handler returns the router's HTTP surface.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/factor", func(w http.ResponseWriter, r *http.Request) { rt.handleFactor(w, r, false) })
	mux.HandleFunc("/v1/cholesky", func(w http.ResponseWriter, r *http.Request) { rt.handleFactor(w, r, true) })
	mux.HandleFunc("/v1/solve", func(w http.ResponseWriter, r *http.Request) { rt.handleSolve(w, r, false) })
	mux.HandleFunc("/v1/cholesky/solve", func(w http.ResponseWriter, r *http.Request) { rt.handleSolve(w, r, true) })
	mux.HandleFunc("/v1/stats", rt.handleStats)
	mux.HandleFunc("/v1/admin/join", rt.handleJoin)
	mux.HandleFunc("/v1/admin/drain", rt.handleDrain)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/readyz", rt.handleReadyz)
	return mux
}

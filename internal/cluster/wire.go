package cluster

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/mat"
)

// The factorization wire format: what a shard exports when the router
// replicates, migrates or drains kept state. A factorization travels
// as a small header, the pivot permutation, and the packed factor
// blocks — each factor serialized through the layout package's block
// iteration (layout.Encode), so values round-trip bit-identically and
// a replica's solve reproduces the owner's solve exactly.
//
//	magic "HSDW" | version u8 | kind u8 (1=LU, 2=Cholesky)
//	| permLen u32 | perm u32... (LU only; Cholesky has no pivoting)
//	| layout.Encode(L) | layout.Encode(U)   (U for LU only)
//
// Run metadata (Makespan, Counters, Stats) describes the original
// execution, not the factors; it does not travel.

const (
	wireMagic   = "HSDW"
	wireVersion = 1
	wireKindLU  = 1
	wireKindCh  = 2
	wireHdrLen  = 4 + 1 + 1

	// wireBlock is the tile size factors are packed with on the wire.
	// Any positive value round-trips; 128 keeps tile count low without
	// creating huge contiguous runs.
	wireBlock = 128
)

// wireLayout wraps a dense factor for encoding: two-level tiles (each
// tile contiguous — the natural pack format) on a single-worker grid,
// since wire bytes carry no ownership.
func wireLayout(d *mat.Dense) layout.Layout {
	return layout.NewTwoLevel(d, wireBlock, layout.NewGrid(1))
}

// EncodeFactorization serializes a kept factorization: exactly one of
// lu, chol must be non-nil.
func EncodeFactorization(lu *core.Factorization, chol *core.CholeskyFactorization) ([]byte, error) {
	if (lu != nil) == (chol != nil) {
		return nil, fmt.Errorf("cluster: need exactly one of LU or Cholesky to encode")
	}
	le := binary.LittleEndian
	out := make([]byte, wireHdrLen)
	copy(out, wireMagic)
	out[4] = wireVersion
	if chol != nil {
		out[5] = wireKindCh
		return append(out, layout.Encode(wireLayout(chol.L))...), nil
	}
	out[5] = wireKindLU
	var plen [4]byte
	le.PutUint32(plen[:], uint32(len(lu.Perm)))
	out = append(out, plen[:]...)
	var pe [4]byte
	for _, p := range lu.Perm {
		if p < 0 || int64(p) > int64(^uint32(0)) {
			return nil, fmt.Errorf("cluster: permutation entry %d out of wire range", p)
		}
		le.PutUint32(pe[:], uint32(p))
		out = append(out, pe[:]...)
	}
	out = append(out, layout.Encode(wireLayout(lu.L))...)
	out = append(out, layout.Encode(wireLayout(lu.U))...)
	return out, nil
}

// DecodeFactorization inverts EncodeFactorization. The returned
// factorization carries the factors and permutation only — run
// metadata is zero.
func DecodeFactorization(data []byte) (*core.Factorization, *core.CholeskyFactorization, error) {
	if len(data) < wireHdrLen {
		return nil, nil, fmt.Errorf("cluster: wire data too short (%d bytes)", len(data))
	}
	if string(data[:4]) != wireMagic {
		return nil, nil, fmt.Errorf("cluster: bad wire magic %q", data[:4])
	}
	if data[4] != wireVersion {
		return nil, nil, fmt.Errorf("cluster: unsupported wire version %d", data[4])
	}
	kind := data[5]
	rest := data[wireHdrLen:]
	switch kind {
	case wireKindCh:
		l, n, err := layout.Decode(rest)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: cholesky factor: %w", err)
		}
		if len(rest) != n {
			return nil, nil, fmt.Errorf("cluster: %d trailing bytes after cholesky factor", len(rest)-n)
		}
		d := l.ToDense()
		if d.Rows != d.Cols {
			return nil, nil, fmt.Errorf("cluster: cholesky factor is %dx%d, want square", d.Rows, d.Cols)
		}
		return nil, &core.CholeskyFactorization{L: d}, nil
	case wireKindLU:
		le := binary.LittleEndian
		if len(rest) < 4 {
			return nil, nil, fmt.Errorf("cluster: truncated permutation length")
		}
		plen := int(le.Uint32(rest))
		rest = rest[4:]
		if plen > len(rest)/4 {
			return nil, nil, fmt.Errorf("cluster: truncated permutation (%d entries)", plen)
		}
		perm := make([]int, plen)
		for i := range perm {
			perm[i] = int(le.Uint32(rest[4*i:]))
		}
		rest = rest[4*plen:]
		ll, n, err := layout.Decode(rest)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: L factor: %w", err)
		}
		rest = rest[n:]
		lu, n, err := layout.Decode(rest)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: U factor: %w", err)
		}
		if len(rest) != n {
			return nil, nil, fmt.Errorf("cluster: %d trailing bytes after U factor", len(rest)-n)
		}
		ld, ud := ll.ToDense(), lu.ToDense()
		if ld.Rows != plen {
			return nil, nil, fmt.Errorf("cluster: permutation length %d does not match L rows %d", plen, ld.Rows)
		}
		if ld.Cols != ud.Rows {
			return nil, nil, fmt.Errorf("cluster: factor shapes %dx%d / %dx%d do not chain",
				ld.Rows, ld.Cols, ud.Rows, ud.Cols)
		}
		return &core.Factorization{Perm: perm, L: ld, U: ud}, nil, nil
	default:
		return nil, nil, fmt.Errorf("cluster: unknown wire kind %d", kind)
	}
}

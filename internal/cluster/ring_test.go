package cluster

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	ks := make([]string, n)
	for i := range ks {
		ks[i] = fmt.Sprintf("f-%d", i+1)
	}
	return ks
}

// TestRingDeterminism: two rings built from the same membership agree
// on every owner set — the property offline placement math relies on.
func TestRingDeterminism(t *testing.T) {
	build := func() *Ring {
		r := NewRing(32)
		r.Add("s2")
		r.Add("s0")
		r.Add("s1")
		return r
	}
	a, b := build(), build()
	for _, k := range keys(500) {
		oa, ob := a.Owners(k, 2), b.Owners(k, 2)
		if fmt.Sprint(oa) != fmt.Sprint(ob) {
			t.Fatalf("key %s: %v vs %v", k, oa, ob)
		}
	}
}

// TestRingOwnerSets: owner sets are distinct nodes, capped at the
// membership size, and the primary is stable across calls.
func TestRingOwnerSets(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 3; i++ {
		r.Add(fmt.Sprintf("s%d", i))
	}
	if got := r.Owners("k", 5); len(got) != 3 {
		t.Fatalf("owner set %v, want all 3 members", got)
	}
	for _, k := range keys(200) {
		o := r.Owners(k, 2)
		if len(o) != 2 || o[0] == o[1] {
			t.Fatalf("key %s: owner set %v", k, o)
		}
	}
	if r.Owners("k", 0) != nil {
		t.Fatal("n=0 should own nothing")
	}
	empty := NewRing(8)
	if empty.Owners("k", 2) != nil {
		t.Fatal("empty ring should own nothing")
	}
}

// TestRingBalance: with virtual nodes, no shard of three owns a wildly
// disproportionate share of primaries.
func TestRingBalance(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 3; i++ {
		r.Add(fmt.Sprintf("s%d", i))
	}
	count := map[string]int{}
	ks := keys(3000)
	for _, k := range ks {
		count[r.Owners(k, 1)[0]]++
	}
	for n, c := range count {
		frac := float64(c) / float64(len(ks))
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("shard %s owns %.0f%% of primaries: %v", n, frac*100, count)
		}
	}
}

// TestRingMinimalDisruption: adding a node only moves keys onto the new
// node; removing one only moves keys that it owned.
func TestRingMinimalDisruption(t *testing.T) {
	r := NewRing(64)
	r.Add("s0")
	r.Add("s1")
	ks := keys(1000)
	before := map[string]string{}
	for _, k := range ks {
		before[k] = r.Owners(k, 1)[0]
	}

	gen := r.Gen()
	if !r.Add("s2") || r.Gen() != gen+1 {
		t.Fatal("Add did not bump the generation")
	}
	moved := 0
	for _, k := range ks {
		now := r.Owners(k, 1)[0]
		if now != before[k] {
			if now != "s2" {
				t.Fatalf("key %s moved %s -> %s, not to the joined shard", k, before[k], now)
			}
			moved++
		}
	}
	if moved == 0 || moved == len(ks) {
		t.Fatalf("join moved %d/%d keys", moved, len(ks))
	}

	after := map[string]string{}
	for _, k := range ks {
		after[k] = r.Owners(k, 1)[0]
	}
	if !r.Remove("s2") {
		t.Fatal("Remove failed")
	}
	if r.Remove("s2") {
		t.Fatal("Remove of a non-member succeeded")
	}
	for _, k := range ks {
		now := r.Owners(k, 1)[0]
		if after[k] != "s2" && now != after[k] {
			t.Fatalf("key %s not owned by the removed shard still moved %s -> %s", k, after[k], now)
		}
		if now != before[k] {
			t.Fatalf("remove did not restore the pre-join owner for %s", k)
		}
	}
}

// TestRingCloneIndependent: mutating a clone leaves the original ring
// untouched.
func TestRingCloneIndependent(t *testing.T) {
	r := NewRing(16)
	r.Add("s0")
	r.Add("s1")
	c := r.Clone()
	c.Remove("s0")
	if r.Len() != 2 || c.Len() != 1 {
		t.Fatalf("lens %d/%d, want 2/1", r.Len(), c.Len())
	}
	if got := fmt.Sprint(r.Nodes()); got != "[s0 s1]" {
		t.Fatalf("original nodes %s", got)
	}
	if r.Owners("k", 1)[0] == "" {
		t.Fatal("original ring broken after clone mutation")
	}
}

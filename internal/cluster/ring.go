// Package cluster is the sharded serving tier: a consistent-hash ring
// that maps factorization keys onto engine shards, a wire format that
// ships completed factorizations between shards (pivots plus packed
// L/U blocks through the layout package's block iteration), and the
// router front door that places factor jobs on a key's owner, fans the
// serialized factorization out to replicas for solve read-scaling, and
// handles shard lifecycle — join (ring rebalance plus migration of
// reassigned keys), drain (stop placing, migrate kept state, then
// retire) and failure (probe-driven eviction with solve failover to
// surviving replicas).
//
// The split mirrors the paper's static-partition-plus-dynamic-remainder
// idea one level up: the ring is the static partition of the key space
// (cheap, deterministic, no coordination per request), while failover,
// replica rotation and lending-style re-placement absorb the dynamic
// remainder — shards that die, drain or join.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVNodes is the virtual-node count per shard: enough that a
// three-shard ring splits the key space within a few percent of evenly
// while keeping rebuilds trivially cheap.
const defaultVNodes = 64

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring with virtual nodes. Membership is
// deterministic in (vnodes, node names): two rings built with the same
// inputs agree on every key's owner set, which is what lets tests — and
// operators — recompute placements offline. Not safe for concurrent
// use; the Router guards it.
type Ring struct {
	vnodes int
	gen    uint64
	nodes  map[string]bool
	points []ringPoint // sorted by hash
}

// NewRing returns an empty ring; vnodes <= 0 selects the default.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	return &Ring{vnodes: vnodes, nodes: map[string]bool{}}
}

// Clone returns an independent copy (same generation).
func (r *Ring) Clone() *Ring {
	c := &Ring{vnodes: r.vnodes, gen: r.gen, nodes: make(map[string]bool, len(r.nodes))}
	for n := range r.nodes {
		c.nodes[n] = true
	}
	c.points = append([]ringPoint(nil), r.points...)
	return c
}

// hashKey positions a key (or virtual node label) on the circle.
// FNV-1a alone avalanches poorly on short strings — "s1#0".."s1#63"
// come out nearly sequential, clustering a shard's virtual nodes into
// one arc — so the output goes through a splitmix64-style finalizer.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a node's virtual points, reporting whether membership
// changed. Every membership change bumps the generation.
func (r *Ring) Add(node string) bool {
	if r.nodes[node] {
		return false
	}
	r.nodes[node] = true
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", node, v)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	r.gen++
	return true
}

// Remove deletes a node's virtual points, reporting whether it was a
// member.
func (r *Ring) Remove(node string) bool {
	if !r.nodes[node] {
		return false
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
	r.gen++
	return true
}

// Gen returns the membership generation: it increments on every Add or
// Remove that changed the ring, so routers and stats can tell apart
// placements computed under different topologies.
func (r *Ring) Gen() uint64 { return r.gen }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the members in sorted order.
func (r *Ring) Nodes() []string {
	ns := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

// Owners returns the key's owner set: up to n distinct nodes starting
// at the key's successor point and walking the circle. The first entry
// is the primary owner (where factor jobs land); the rest are the
// replicas the factorization fans out to.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			owners = append(owners, p.node)
		}
	}
	return owners
}

package cluster_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/serve"
)

func postJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding reply from %s: %v", url, err)
	}
	return resp.StatusCode, out
}

func ones(n int) string { return strings.Repeat("1,", n-1) + "1" }

// factorVia factors a deterministic test matrix through any front door
// (router or single shard) and returns the assigned id.
func factorVia(t *testing.T, base string, n int, seed int) string {
	t.Helper()
	code, out := postJSON(t, base+"/v1/factor",
		fmt.Sprintf(`{"n":%d,"seed":%d,"workers":1}`, n, seed))
	if code != http.StatusOK {
		t.Fatalf("factor n=%d seed=%d: %d %v", n, seed, code, out)
	}
	return out["id"].(string)
}

func solveVia(t *testing.T, base, id string, n int) (int, map[string]any) {
	t.Helper()
	return postJSON(t, base+"/v1/solve", fmt.Sprintf(`{"id":%q,"b":[%s]}`, id, ones(n)))
}

// TestClusterKillOwnerSolveFromReplica is the tentpole acceptance path:
// factor through the router, kill the shard that owns the key, and the
// solve still succeeds from a replica — bit-identical to the same
// factor+solve on a single-process server.
func TestClusterKillOwnerSolveFromReplica(t *testing.T) {
	c, err := harness.Start(harness.Options{Shards: 3, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n, seed = 32, 7
	id := factorVia(t, c.URL(), n, seed)
	holders := c.Router.Holders(id)
	if len(holders) != 2 {
		t.Fatalf("holders %v, want 2 shards", holders)
	}

	// Single-process reference: same request against one lone server.
	eng, err := engine.New(engine.Options{Workers: 1, MaxInflight: 8, DynamicRatio: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	lone := httptest.NewServer(serve.New(eng, serve.Options{Keep: 4}).Handler())
	defer lone.Close()
	refID := factorVia(t, lone.URL, n, seed)
	code, refOut := solveVia(t, lone.URL, refID, n)
	if code != http.StatusOK {
		t.Fatalf("reference solve: %d %v", code, refOut)
	}
	ref := refOut["x"].([]any)

	// Kill the owner; two failed probes evict it from the ring.
	c.Kill(holders[0])
	c.Router.ProbeNow()
	c.Router.ProbeNow()

	// Every solve now lands on the surviving replica; the answer must
	// be byte-for-byte the single-process answer.
	for round := 0; round < 3; round++ {
		code, out := solveVia(t, c.URL(), id, n)
		if code != http.StatusOK {
			t.Fatalf("solve after owner kill (round %d): %d %v", round, code, out)
		}
		x := out["x"].([]any)
		if len(x) != n {
			t.Fatalf("solution length %d, want %d", len(x), n)
		}
		for i := range x {
			if x[i].(float64) != ref[i].(float64) {
				t.Fatalf("replica solve diverges from single-process at %d: %v vs %v",
					i, x[i], ref[i])
			}
		}
	}
}

// TestClusterOwnerSetDown: with replicas=1 the key lives on exactly one
// shard; killing it turns solves into the typed ownerSetDown 503, while
// an id the router never placed stays a plain 404, and client-supplied
// factor ids are rejected.
func TestClusterOwnerSetDown(t *testing.T) {
	c, err := harness.Start(harness.Options{Shards: 2, Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	code, out := postJSON(t, c.URL()+"/v1/factor", `{"id":"f-9","n":8,"seed":1,"workers":1}`)
	if code != http.StatusBadRequest {
		t.Fatalf("client-supplied id: %d %v, want 400", code, out)
	}

	const n = 16
	id := factorVia(t, c.URL(), n, 3)
	holders := c.Router.Holders(id)
	if len(holders) != 1 {
		t.Fatalf("holders %v, want exactly 1 with replicas=1", holders)
	}
	c.Kill(holders[0])
	c.Router.ProbeNow()
	c.Router.ProbeNow()

	code, out = solveVia(t, c.URL(), id, n)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("solve with owner set down: %d %v, want 503", code, out)
	}
	if out["ownerSetDown"] != true {
		t.Fatalf("503 not typed: %v", out)
	}

	code, _ = solveVia(t, c.URL(), "f-404", n)
	if code != http.StatusNotFound {
		t.Fatalf("unknown id: %d, want 404", code)
	}
}

// TestClusterDrainZeroFailedRequests drains a shard while solves hammer
// every key: the kept factorizations migrate to the owners under the
// shrunken ring and no client request fails at any point.
func TestClusterDrainZeroFailedRequests(t *testing.T) {
	c, err := harness.Start(harness.Options{Shards: 3, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n, keys = 16, 6
	ids := make([]string, keys)
	for i := range ids {
		ids[i] = factorVia(t, c.URL(), n, i+1)
	}
	// Drain a shard that actually holds keys (with 6 keys x 2 replicas
	// over 3 shards, every shard holds some; pick the first holder of
	// the first key to be sure).
	victim := c.Router.Holders(ids[0])[0]

	var failed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := fmt.Sprintf(`{"id":%q,"b":[%s]}`, ids[0], ones(n))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				b := body
				if i%2 == 1 { // alternate keys for spread
					b = fmt.Sprintf(`{"id":%q,"b":[%s]}`, ids[i%keys], ones(n))
				}
				resp, err := http.Post(c.URL()+"/v1/solve", "application/json", strings.NewReader(b))
				if err != nil {
					failed.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					failed.Add(1)
				}
				resp.Body.Close()
			}
		}()
	}

	code, out := postJSON(t, c.URL()+"/v1/admin/drain", fmt.Sprintf(`{"name":%q}`, victim))
	close(stop)
	wg.Wait()
	if code != http.StatusOK {
		t.Fatalf("drain: %d %v", code, out)
	}
	if f := failed.Load(); f != 0 {
		t.Fatalf("%d client requests failed during drain, want 0", f)
	}

	// Post-drain invariants: the victim holds no placements, every key
	// kept its replica count on the survivors, and all keys still solve.
	for _, id := range ids {
		hs := c.Router.Holders(id)
		if len(hs) != 2 {
			t.Fatalf("key %s holders %v after drain, want 2", id, hs)
		}
		for _, h := range hs {
			if h == victim {
				t.Fatalf("key %s still placed on drained shard %s", id, victim)
			}
			sh := c.Shard(h)
			if sh == nil {
				t.Fatalf("holder %s of %s not running", h, id)
			}
			if _, ok := sh.Server.Store().Get(id); !ok {
				t.Fatalf("holder %s does not actually hold %s", h, id)
			}
		}
		if code, out := solveVia(t, c.URL(), id, n); code != http.StatusOK {
			t.Fatalf("solve %s after drain: %d %v", id, code, out)
		}
	}
	// The drained shard reports not-ready and refuses new jobs.
	resp, err := http.Get(c.Shard(victim).URL() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drained shard readyz: %d, want 503", resp.StatusCode)
	}
}

// TestClusterJoinMigratesReassignedKeys: a spawned shard joins through
// the router, the ring generation bumps, and every key's holder set
// matches an offline recomputation of the rebalanced ring — keys
// reassigned to the new shard were physically migrated.
func TestClusterJoinMigratesReassignedKeys(t *testing.T) {
	c, err := harness.Start(harness.Options{Shards: 2, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n, keys = 8, 8
	ids := make([]string, keys)
	for i := range ids {
		ids[i] = factorVia(t, c.URL(), n, i+1)
	}
	genBefore := c.Router.Stats().RingGen

	sh, err := c.Spawn()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Router.Stats().RingGen; got != genBefore+1 {
		t.Fatalf("ring generation %d after join, want %d", got, genBefore+1)
	}

	// Offline recomputation: the ring is deterministic in membership,
	// so an independent build must agree with the router's placements.
	ref := cluster.NewRing(0)
	ref.Add("s1")
	ref.Add("s2")
	ref.Add(sh.Name)
	migrated := 0
	for _, id := range ids {
		want := ref.Owners(id, 2)
		got := c.Router.Holders(id)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("key %s holders %v, want ring owners %v", id, got, want)
		}
		for _, h := range want {
			if _, ok := c.Shard(h).Server.Store().Get(id); !ok {
				t.Fatalf("ring owner %s does not hold %s after join", h, id)
			}
			if h == sh.Name {
				migrated++
			}
		}
		if code, out := solveVia(t, c.URL(), id, n); code != http.StatusOK {
			t.Fatalf("solve %s after join: %d %v", id, code, out)
		}
	}
	if migrated == 0 {
		t.Fatalf("no key migrated to the joined shard %s (holders all %v)", sh.Name, c.Router.Holders(ids[0]))
	}
}

// TestClusterStatsAggregation: the router's /v1/stats carries ring
// state, router counters and a live per-shard block.
func TestClusterStatsAggregation(t *testing.T) {
	c, err := harness.Start(harness.Options{Shards: 3, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 16
	a := factorVia(t, c.URL(), n, 1)
	b := factorVia(t, c.URL(), n, 2)
	for _, id := range []string{a, b} {
		if code, out := solveVia(t, c.URL(), id, n); code != http.StatusOK {
			t.Fatalf("solve %s: %d %v", id, code, out)
		}
	}

	resp, err := http.Get(c.URL() + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st["ringGen"].(float64) != 3 { // three initial Adds
		t.Fatalf("ringGen %v, want 3", st["ringGen"])
	}
	if st["replicas"].(float64) != 2 || st["keys"].(float64) != 2 ||
		st["factors"].(float64) != 2 || st["solves"].(float64) != 2 {
		t.Fatalf("router counters off: %v", st)
	}
	if st["replications"].(float64) < 2 { // each factor fanned out once
		t.Fatalf("replications %v, want >= 2", st["replications"])
	}
	shards := st["shards"].(map[string]any)
	if len(shards) != 3 {
		t.Fatalf("stats cover %d shards, want 3", len(shards))
	}
	var reqs float64
	for name, v := range shards {
		blk := v.(map[string]any)
		if blk["healthy"] != true || blk["retired"] != false {
			t.Fatalf("shard %s state %v", name, blk)
		}
		reqs += blk["requests"].(float64)
		inner, ok := blk["stats"].(map[string]any)
		if !ok {
			t.Fatalf("shard %s missing live stats block", name)
		}
		if _, ok := inner["engine"]; !ok {
			t.Fatalf("shard %s live stats missing engine block: %v", name, inner)
		}
	}
	if reqs < 4 {
		t.Fatalf("total proxied shard requests %v, want >= 4", reqs)
	}
	// Readiness: healthy cluster is ready; the router itself is healthy.
	for _, path := range []string{"/healthz", "/readyz"} {
		r, err := http.Get(c.URL() + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("router %s: %d, want 200", path, r.StatusCode)
		}
	}
}

// TestClusterFactorFailoverToReplica: if the primary owner dies before
// a factor request, the router places the job on the next shard in the
// owner set rather than failing the request.
func TestClusterFactorFailoverToReplica(t *testing.T) {
	c, err := harness.Start(harness.Options{Shards: 3, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Discover where the next key would land without consuming its id:
	// factor once, kill the primary of the NEXT key by prediction. The
	// ring is deterministic, so "f-2"'s owners are knowable in advance.
	ref := cluster.NewRing(0)
	for _, name := range c.Names() {
		ref.Add(name)
	}
	owners := ref.Owners("f-1", 2)
	c.Kill(owners[0])
	c.Router.ProbeNow()
	c.Router.ProbeNow()

	const n = 16
	id := factorVia(t, c.URL(), n, 5) // must succeed on the replica
	if id != "f-1" {
		t.Fatalf("first key %q, want f-1", id)
	}
	hs := c.Router.Holders(id)
	if len(hs) == 0 || hs[0] != owners[1] {
		t.Fatalf("holders %v, want primary fallback %s", hs, owners[1])
	}
	if code, out := solveVia(t, c.URL(), id, n); code != http.StatusOK {
		t.Fatalf("solve after factor failover: %d %v", code, out)
	}
}

// TestClusterJoinDoesNotResurrectEvictedShard pins the installRing
// reconciliation against the probe/ring-swap race: Join clones the
// ring, migrates against the clone, and only then installs it. A shard
// evicted for transport failures during that migration window was
// edited out of the *old* ring; the swap must not bring it back.
func TestClusterJoinDoesNotResurrectEvictedShard(t *testing.T) {
	newShard := func(name string) (*serve.Server, *engine.Engine) {
		eng, err := engine.New(engine.Options{Workers: 1, MaxInflight: 16, DynamicRatio: 0.25})
		if err != nil {
			t.Fatalf("engine for %s: %v", name, err)
		}
		return serve.New(eng, serve.Options{Keep: 32}), eng
	}
	srvA, engA := newShard("a")
	defer engA.Close()
	shardA := httptest.NewServer(srvA.Handler())
	defer shardA.Close()
	srvB, engB := newShard("b")
	defer engB.Close()
	shardB := httptest.NewServer(srvB.Handler())
	defer shardB.Close()

	rt, err := cluster.NewRouter(cluster.RouterOptions{
		Shards: []cluster.ShardInfo{
			{Name: "a", URL: shardA.URL},
			{Name: "b", URL: shardB.URL},
		},
		Replicas:  2,
		FailAfter: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	const n, keys = 8, 8
	for i := 0; i < keys; i++ {
		factorVia(t, front.URL, n, i+1)
	}

	// Shard c is a real serve shard behind an interposer: the first
	// import that reaches it runs mid-Join — after the prospective ring
	// was cloned, before it is installed. At exactly that point, kill b
	// and force a probe pass, so the eviction edits the ring the Join
	// is about to replace.
	srvC, engC := newShard("c")
	defer engC.Close()
	var tripped atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/admin/import") && tripped.CompareAndSwap(false, true) {
			shardB.Close()
			rt.ProbeNow()
		}
		srvC.Handler().ServeHTTP(w, r)
	})
	shardC := httptest.NewServer(mux)
	defer shardC.Close()

	if err := rt.Join(cluster.ShardInfo{Name: "c", URL: shardC.URL}); err != nil {
		t.Fatalf("join: %v", err)
	}
	if !tripped.Load() {
		t.Fatal("no import reached the joining shard; the eviction window was never exercised")
	}

	members := map[string]bool{}
	for _, m := range rt.Stats().RingMembers {
		members[m] = true
	}
	if members["b"] {
		t.Fatalf("shard b was evicted mid-join but the ring swap resurrected it: members %v", rt.Stats().RingMembers)
	}
	if !members["a"] || !members["c"] {
		t.Fatalf("live shards missing from the installed ring: members %v", rt.Stats().RingMembers)
	}
}

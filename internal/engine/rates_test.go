package engine

import (
	"testing"
	"time"
)

func newRateEngine() *Engine {
	e := &Engine{}
	for c := range e.rates {
		e.rates[c] = ratePrior
	}
	return e
}

// TestPerClassRatesIndependent: a burst of fast factor completions must
// not inflate the solve class's service-rate estimate (and vice versa)
// — the skew the split estimator exists to remove.
func TestPerClassRatesIndependent(t *testing.T) {
	e := newRateEngine()
	// Factors completing at 10 flops/ns, well above the 1.0 prior.
	for i := 0; i < 20; i++ {
		e.observeRateLocked(&Job{kind: factorJob, estFlops: 1e9}, 100*time.Millisecond)
	}
	if e.rates[rateGemm] <= 2*ratePrior {
		t.Fatalf("gemm rate %v did not move toward the observed 10 flops/ns", e.rates[rateGemm])
	}
	if e.rates[rateMem] != ratePrior {
		t.Fatalf("solve rate %v moved on factor-only traffic", e.rates[rateMem])
	}
	// Solves completing at 0.1 flops/ns.
	for i := 0; i < 20; i++ {
		e.observeRateLocked(&Job{kind: solveJob, estFlops: 1e8}, time.Second)
	}
	if e.rates[rateMem] >= ratePrior {
		t.Fatalf("solve rate %v did not move toward the observed 0.1 flops/ns", e.rates[rateMem])
	}
	// Same flop count now estimates ~100x longer as a solve than as a
	// factor — the class split admission decisions depend on.
	estF := e.estServiceLocked(&Job{kind: factorJob, estFlops: 1e9})
	estS := e.estServiceLocked(&Job{kind: solveJob, estFlops: 1e9})
	if estS < 10*estF {
		t.Fatalf("per-class estimates barely differ: factor %v solve %v", estF, estS)
	}
}

// TestCompositeSplitsFlopsByClass: a fused composite's estimate is the
// sum of its members' per-class predictions, and observing its span
// updates both classes (attributed by predicted share), not just one.
func TestCompositeSplitsFlopsByClass(t *testing.T) {
	e := newRateEngine()
	e.rates[rateGemm] = 10
	e.rates[rateMem] = 0.1
	comp := &Job{
		role: roleComposite,
		members: []*Job{
			{kind: factorJob, estFlops: 1e9},
			{kind: choleskyJob, estFlops: 1e9},
			{kind: solveJob, estFlops: 1e8},
		},
		estFlops: 2.1e9,
	}
	fl := classFlops(comp)
	if fl[rateGemm] != 2e9 || fl[rateMem] != 1e8 {
		t.Fatalf("classFlops = %v, want [2e9 1e8]", fl)
	}
	// Predicted: 2e9/10 + 1e8/0.1 = 0.2s + 1s = 1.2s.
	if got, want := e.estServiceLocked(comp), 1200*time.Millisecond; got != want {
		t.Fatalf("composite estimate %v, want %v", got, want)
	}
	// A span exactly matching the prediction is a fixed point: both
	// class rates observe their own predicted rate and must not move.
	g0, m0 := e.rates[rateGemm], e.rates[rateMem]
	e.observeRateLocked(comp, 1200*time.Millisecond)
	const eps = 1e-9
	if d := e.rates[rateGemm] - g0; d > eps || d < -eps {
		t.Errorf("gemm rate moved %v on a perfectly predicted span", d)
	}
	if d := e.rates[rateMem] - m0; d > eps || d < -eps {
		t.Errorf("mem rate moved %v on a perfectly predicted span", d)
	}
	// A faster-than-predicted span raises both.
	e.observeRateLocked(comp, 600*time.Millisecond)
	if e.rates[rateGemm] <= g0 || e.rates[rateMem] <= m0 {
		t.Errorf("rates [%v %v] did not rise on a 2x-faster span", e.rates[rateGemm], e.rates[rateMem])
	}
}

// TestObserveRateIgnoresDegenerate: zero/negative spans and zero-flop
// jobs must leave the estimates untouched.
func TestObserveRateIgnoresDegenerate(t *testing.T) {
	e := newRateEngine()
	e.observeRateLocked(&Job{kind: factorJob, estFlops: 1e9}, 0)
	e.observeRateLocked(&Job{kind: factorJob, estFlops: 1e9}, -time.Second)
	e.observeRateLocked(&Job{kind: solveJob, estFlops: 0}, time.Second)
	for c, r := range e.rates {
		if r != ratePrior {
			t.Errorf("class %d rate %v mutated by degenerate observations", c, r)
		}
	}
}

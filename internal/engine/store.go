package engine

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// Kept is one resident factorization in a Store: exactly one of LU or
// Chol is set. It is the unit the serving tier keeps for /v1/solve and
// the unit the cluster tier exports, ships and imports between shards.
type Kept struct {
	LU   *core.Factorization
	Chol *core.CholeskyFactorization
}

// Valid reports whether exactly one factorization is set.
func (k Kept) Valid() bool { return (k.LU != nil) != (k.Chol != nil) }

// N returns the order of the stored system.
func (k Kept) N() int {
	if k.LU != nil {
		return k.LU.L.Rows
	}
	return k.Chol.L.Rows
}

// Solvable returns the factorization behind the engine's Solvable
// interface.
func (k Kept) Solvable() Solvable {
	if k.LU != nil {
		return k.LU
	}
	return k.Chol
}

// SizeBytes estimates the resident cost of the factors (the dominant
// allocations; pivot vectors and metadata are noise at this scale).
func (k Kept) SizeBytes() int64 {
	if k.LU != nil {
		return int64(len(k.LU.L.Data)+len(k.LU.U.Data)) * 8
	}
	return int64(len(k.Chol.L.Data)) * 8
}

// StoreOptions bounds a Store.
type StoreOptions struct {
	// Keep is the entry-count bound (min 1: every Put must leave its
	// entry resident so the caller's reply references a live id).
	Keep int
	// MemBudget bounds the estimated resident bytes; 0 = unbounded.
	MemBudget int64
	// TTL expires entries idle longer than this, lazily at the next
	// touch; 0 = never.
	TTL time.Duration
}

// StoreStats is a point-in-time snapshot of a Store.
type StoreStats struct {
	Count       int
	Bytes       int64
	BudgetBytes int64
	Keep        int
	TTL         time.Duration
	Evictions   int64 // entries dropped by the keep or byte bound
	Expiries    int64 // entries dropped by the idle TTL
	Imports     int64 // entries stored under an explicit id (PutAs)
}

// storeEntry is one resident factorization plus eviction bookkeeping.
type storeEntry struct {
	k     Kept
	bytes int64
	last  time.Time // last store or lookup; drives TTL expiry
}

// Store is the engine-level keep-store for completed factorizations:
// an LRU keyed by id, bounded by entry count and estimated bytes, with
// optional idle-TTL expiry. The serving tier keeps one per shard;
// replication imports entries under their cluster-wide id with PutAs
// and exports them with Get/IDs. Safe for concurrent use.
type Store struct {
	opt StoreOptions

	mu        sync.Mutex
	next      int
	bytes     int64
	order     []string // LRU order: front = least recently used
	entries   map[string]*storeEntry
	evictions int64
	expiries  int64
	imports   int64
}

// NewStore builds a store; Keep is clamped to >= 1.
func NewStore(opt StoreOptions) *Store {
	if opt.Keep < 1 {
		opt.Keep = 1
	}
	return &Store{opt: opt, entries: map[string]*storeEntry{}}
}

// removeLocked drops one entry (mu held).
func (s *Store) removeLocked(id string) {
	e, ok := s.entries[id]
	if !ok {
		return
	}
	delete(s.entries, id)
	s.bytes -= e.bytes
	for i, v := range s.order {
		if v == id {
			s.order = append(s.order[:i:i], s.order[i+1:]...)
			break
		}
	}
}

// expireLocked lazily drops idle-expired entries. The LRU order is
// also last-use order, so expired entries cluster at the front.
func (s *Store) expireLocked(now time.Time) {
	if s.opt.TTL <= 0 {
		return
	}
	for len(s.order) > 0 {
		e := s.entries[s.order[0]]
		if now.Sub(e.last) <= s.opt.TTL {
			return
		}
		s.removeLocked(s.order[0])
		s.expiries++
	}
}

// insertLocked stores k under id at the most-recently-used position
// and evicts past either bound — but never the entry just stored:
// every store must leave a live id, even when one factorization alone
// exceeds the byte budget.
func (s *Store) insertLocked(id string, k Kept, now time.Time) {
	if old, ok := s.entries[id]; ok { // overwrite: replace in place
		s.bytes -= old.bytes
		delete(s.entries, id)
		for i, v := range s.order {
			if v == id {
				s.order = append(s.order[:i:i], s.order[i+1:]...)
				break
			}
		}
	}
	e := &storeEntry{k: k, bytes: k.SizeBytes(), last: now}
	s.entries[id] = e
	s.bytes += e.bytes
	s.order = append(s.order, id)
	for len(s.order) > 1 &&
		(len(s.order) > s.opt.Keep || (s.opt.MemBudget > 0 && s.bytes > s.opt.MemBudget)) {
		s.removeLocked(s.order[0])
		s.evictions++
	}
}

// Put stores k under a fresh generated id "<prefix>-<seq>" and returns
// the id.
func (s *Store) Put(prefix string, k Kept) string {
	if !k.Valid() {
		panic("engine: Store.Put needs exactly one of LU or Chol")
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(now)
	s.next++
	id := fmt.Sprintf("%s-%d", prefix, s.next)
	s.insertLocked(id, k, now)
	return id
}

// PutAs stores k under an explicit id — the import half of cluster
// replication, where the id is the cluster-wide factorization key and
// must survive the hop. An existing entry under id is replaced.
func (s *Store) PutAs(id string, k Kept) {
	if !k.Valid() {
		panic("engine: Store.PutAs needs exactly one of LU or Chol")
	}
	if id == "" {
		panic("engine: Store.PutAs needs a non-empty id")
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(now)
	s.insertLocked(id, k, now)
	s.imports++
}

// Get returns the entry under id, refreshing its recency. A TTL-expired
// entry is reaped and reported missing.
func (s *Store) Get(id string) (Kept, bool) {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if !ok {
		return Kept{}, false
	}
	if s.opt.TTL > 0 && now.Sub(e.last) > s.opt.TTL {
		s.removeLocked(id)
		s.expiries++
		return Kept{}, false
	}
	e.last = now
	for i, v := range s.order { // bump to most-recently-used
		if v == id {
			s.order = append(append(s.order[:i:i], s.order[i+1:]...), id)
			break
		}
	}
	return e.k, true
}

// Remove drops the entry under id, reporting whether it existed.
func (s *Store) Remove(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[id]
	s.removeLocked(id)
	return ok
}

// IDs returns the resident ids in sorted order — the export listing a
// drain or rebalance enumerates. TTL-expired entries are reaped first.
func (s *Store) IDs() []string {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(now)
	ids := make([]string, len(s.order))
	copy(ids, s.order)
	sort.Strings(ids)
	return ids
}

// Len returns the resident entry count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// SetLastUsed backdates (or forward-dates) an entry's recency stamp,
// reporting whether the entry exists. Lazy TTL expiry is untestable
// without real sleeps otherwise; admin tooling can also use it to pin
// an entry hot. It does not reorder the LRU list.
func (s *Store) SetLastUsed(id string, last time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if ok {
		e.last = last
	}
	return ok
}

// Stats snapshots the store.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Count:       len(s.entries),
		Bytes:       s.bytes,
		BudgetBytes: s.opt.MemBudget,
		Keep:        s.opt.Keep,
		TTL:         s.opt.TTL,
		Evictions:   s.evictions,
		Expiries:    s.expiries,
		Imports:     s.imports,
	}
}

// Package engine is the resident factorization service: one long-lived
// pool of worker goroutines executing many Factor/Solve jobs
// concurrently, instead of every call spawning and tearing down its own
// workers (the one-shot rt.Run mode).
//
// The scheduling is the paper's hybrid static/dynamic split lifted to
// the inter-job level. Within one factorization, Donfack et al. reserve
// a static share of the block columns for locality and let a dynamic
// share absorb load imbalance; across competing jobs the engine does
// the same with workers. Each admitted job receives a static
// reservation — a guaranteed share of the pool that attaches to the
// job's rt.Executor and drives it to completion, preserving the
// intra-job owner-computes locality — while the pool's dynamic share
// (Options.DynamicRatio) floats: an idle floater lends itself to
// whichever job has published globally poppable work (the shared
// dynamic heap of the hybrid policy, stealable deques of work
// stealing), absorbing inter-job imbalance exactly like the paper's
// dynamic section absorbs intra-job imbalance. DynamicRatio 0 is the
// fully static A/B end (jobs partition the pool, no lending) and 1 is
// the fully dynamic end (every job pinned to a single guaranteed
// worker, everyone else floating).
//
// Admission is traffic-shaped (see admission.go): jobs are classified
// small or large by a flop cost model and routed to two lanes. Small
// jobs take an express lane and are fused — a waiting burst becomes one
// composite forest (dag.Fuse) sharing a single reservation — while big
// jobs take a lane whose reservations are bounded to Options.BigShare
// of the static pool whenever express traffic is waiting, so one huge
// factorization cannot head-of-line-block a stream of tiny solves.
// Within each lane, jobs with deadlines are served in laxity order and
// infeasible deadlines are shed at submission with
// ErrDeadlineInfeasible; floaters lend preferentially to the running
// job closest to missing its deadline. Options.FIFO restores the
// strict single-queue arrival order as an A/B baseline.
//
// A job whose requested share is not available starts anyway with what
// the pool can guarantee (at least one worker), so service is
// work-conserving and a job can never be starved by wide requests. The
// granted share is the parallelism the job's task graph is built for:
// its result is bit-identical to a one-shot core.Factor at
// Workers=Granted (the graph's dataflow fixes the arithmetic;
// scheduling only reorders it) — and fusion keeps that property,
// because dag.Fuse adds no edges between members.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/rt"
	"repro/internal/sched"
)

var (
	// ErrClosed is returned by submissions after Close.
	ErrClosed = errors.New("engine: closed")
	// ErrSaturated is returned by TrySubmit* when the admission queue
	// is at MaxInflight.
	ErrSaturated = errors.New("engine: admission queue full")
)

// Options configures an Engine.
type Options struct {
	// Workers is the resident pool size (default runtime.NumCPU()).
	Workers int
	// MaxInflight bounds admitted jobs (queued + running); further
	// submissions block (Submit*) or fail (TrySubmit*). Default
	// 4*Workers.
	MaxInflight int
	// DynamicRatio is the inter-job dratio: the fraction of the pool
	// that lends itself dynamically across jobs instead of being
	// reservable as static per-job shares. 0 partitions the pool fully
	// statically (no lending — the A/B baseline); 1 pins each job to
	// one guaranteed worker and floats everyone else (fully dynamic).
	// Values in between reproduce the paper's hybrid sweet spot at the
	// job level.
	DynamicRatio float64
	// SmallJobFlops is the classification threshold: a job whose
	// estimated flop count is at or below it is ClassSmall when the
	// submission left Class auto. Default 1e6 (a ~96x96 LU classifies
	// small, a 128x128 LU large).
	SmallJobFlops float64
	// FuseLimit caps how many waiting express-lane jobs one worker
	// fuses into a single composite forest. Default 8.
	FuseLimit int
	// BigShare bounds the big lane: while express traffic is waiting,
	// big-lane jobs may hold at most BigShare of the reservable
	// (non-floater) pool. With an empty express lane the bound is
	// lifted — the pool stays work-conserving for pure-big workloads.
	// Default 0.75.
	BigShare float64
	// FIFO disables traffic shaping: one arrival-ordered queue, no
	// fusion, no deadline shedding — the A/B baseline the mixed-traffic
	// benchmark compares the two-lane path against.
	FIFO bool
}

func (o *Options) fill() error {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 4 * o.Workers
	}
	if o.DynamicRatio < 0 || o.DynamicRatio > 1 || math.IsNaN(o.DynamicRatio) {
		return fmt.Errorf("engine: DynamicRatio %v outside [0,1]", o.DynamicRatio)
	}
	if o.SmallJobFlops <= 0 {
		o.SmallJobFlops = 1e6
	}
	if o.FuseLimit <= 0 {
		o.FuseLimit = 8
	}
	if o.BigShare == 0 {
		o.BigShare = 0.75
	}
	if o.BigShare < 0 || o.BigShare > 1 || math.IsNaN(o.BigShare) {
		return fmt.Errorf("engine: BigShare %v outside (0,1]", o.BigShare)
	}
	return nil
}

// Stats is a point-in-time snapshot of the engine.
type Stats struct {
	// Workers is the resident pool size; Floaters its dynamic share.
	Workers, Floaters int
	// Pending counts queued jobs across both lanes (SmallQueued +
	// BigQueued); Active counts live executors (fused composites count
	// once, not per member); ReservedInUse is the sum of active static
	// grants, BigReserved the big-lane slice of it; HelpersOut the
	// floaters currently lent to a job.
	Pending, Active, ReservedInUse, BigReserved, HelpersOut int
	// SmallQueued and BigQueued are the live lane depths.
	SmallQueued, BigQueued int
	// JobsDone/JobsFailed count completed jobs; Lends counts Assist
	// attachments that executed at least one task for a foreign job.
	JobsDone, JobsFailed, Lends int64
	// FusionBatches counts composite forests launched; FusedJobs the
	// member jobs they carried. Shed counts deadline-infeasible
	// submissions rejected (at admission or at start); Cancelled counts
	// queued jobs withdrawn by their submission context.
	FusionBatches, FusedJobs, Shed, Cancelled int64
	// Small and Large are the per-class latency digests.
	Small, Large ClassStats
	Closed       bool
}

// Engine is the resident factorization service. Create with New, feed
// with Submit*/TrySubmit*, and Close when done.
type Engine struct {
	opt Options
	ws  *kernel.Reservation

	mu    sync.Mutex
	work  *sync.Cond // workers wait here for assignments
	capa  *sync.Cond // submitters wait here for admission capacity
	small laneQueue  // express lane (fused composites)
	big   laneQueue  // bounded lane
	run   []*Job     // started, executor live
	// inflight = queued + started-but-unfinished user jobs (composites
	// excluded, members included); bounded by MaxInflight.
	inflight      int
	reservedInUse int
	bigReserved   int
	helpersOut    int
	rotor         int
	seq           uint64
	// rates are the per-class EWMA service-rate estimates, flops per
	// nanosecond, indexed by rate class (rateGemm, rateMem): factor
	// traffic runs at GEMM speed, solve traffic at memory speed, and
	// mixing them in one estimate would skew both (admission.go).
	rates              [numRateClasses]float64
	latSmall, latLarge latRing
	// classDone/classFailed are indexed by classIdx.
	classDone, classFailed [2]int64
	closed                 bool

	wg sync.WaitGroup

	jobsDone      atomic.Int64
	jobsFailed    atomic.Int64
	lends         atomic.Int64
	fusionBatches atomic.Int64
	fusedJobs     atomic.Int64
	shedCount     atomic.Int64
	cancelled     atomic.Int64
}

// New starts a resident engine: the worker goroutines and the pool-wide
// kernel workspace reservation live until Close.
func New(opt Options) (*Engine, error) {
	if err := opt.fill(); err != nil {
		return nil, err
	}
	e := &Engine{opt: opt}
	for c := range e.rates {
		e.rates[c] = ratePrior
	}
	e.work = sync.NewCond(&e.mu)
	e.capa = sync.NewCond(&e.mu)
	// One refcounted pool-wide reservation: at most Workers goroutines
	// ever call kernels at once, however many jobs are in flight, so
	// per-job executors run with ExternalWorkspace.
	e.ws = kernel.Reserve(opt.Workers)
	e.wg.Add(opt.Workers)
	for w := 0; w < opt.Workers; w++ {
		go e.worker()
	}
	return e, nil
}

// floaters is the pool's dynamic share: the number of workers that lend
// themselves across jobs instead of being statically reservable.
func (e *Engine) floaters() int {
	return int(math.Round(float64(e.opt.Workers) * e.opt.DynamicRatio))
}

// classIdx maps a resolved job class to the per-class counter slot.
func classIdx(c core.JobClass) int {
	if c == core.ClassSmall {
		return 0
	}
	return 1
}

func (e *Engine) ring(idx int) *latRing {
	if idx == 0 {
		return &e.latSmall
	}
	return &e.latLarge
}

// Close rejects queued jobs, waits for running jobs and the workers to
// finish, and releases the pool's kernel workspaces. Safe to call once.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	dropped := e.small.drain()
	dropped = append(dropped, e.big.drain()...)
	e.inflight -= len(dropped)
	for _, j := range dropped {
		e.classFailed[classIdx(j.class)]++
	}
	e.work.Broadcast()
	e.capa.Broadcast()
	e.mu.Unlock()
	for _, j := range dropped {
		j.err = ErrClosed
		e.jobsFailed.Add(1)
		if j.stopCancel != nil {
			j.stopCancel()
		}
		close(j.done)
	}
	e.wg.Wait()
	e.ws.Release()
}

// Stats returns a snapshot of the engine's state.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	s := Stats{
		Workers:       e.opt.Workers,
		Floaters:      e.floaters(),
		Pending:       e.small.depth + e.big.depth,
		SmallQueued:   e.small.depth,
		BigQueued:     e.big.depth,
		Active:        len(e.run),
		ReservedInUse: e.reservedInUse,
		BigReserved:   e.bigReserved,
		HelpersOut:    e.helpersOut,
		Closed:        e.closed,
	}
	s.Small = ClassStats{Done: e.classDone[0], Failed: e.classFailed[0], Queued: e.small.depth}
	s.Small.P50Ms, s.Small.P99Ms = e.latSmall.percentiles()
	s.Large = ClassStats{Done: e.classDone[1], Failed: e.classFailed[1], Queued: e.big.depth}
	s.Large.P50Ms, s.Large.P99Ms = e.latLarge.percentiles()
	e.mu.Unlock()
	s.JobsDone = e.jobsDone.Load()
	s.JobsFailed = e.jobsFailed.Load()
	s.Lends = e.lends.Load()
	s.FusionBatches = e.fusionBatches.Load()
	s.FusedJobs = e.fusedJobs.Load()
	s.Shed = e.shedCount.Load()
	s.Cancelled = e.cancelled.Load()
	return s
}

// ---------------------------------------------------------------------
// Jobs.

type jobKind uint8

const (
	factorJob jobKind = iota
	choleskyJob
	solveJob
)

// Solvable is a completed factorization the engine can schedule a
// blocked triangular-solve graph for: *core.Factorization and
// *core.CholeskyFactorization both qualify.
type Solvable interface {
	PrepareSolve(b *mat.Dense, opt core.Options) (*core.SolveJob, error)
}

// Job is the handle of one submitted Factor, CholeskyFactor or Solve.
// Wait (or Done) observes completion; the result accessors are valid
// afterwards. Every kind of job executes as a task graph on the pool:
// solves are no longer a single inline task but a blocked two-sweep
// triangular-solve DAG scheduled at the job's granted share, lending
// included. Small jobs may execute as members of a fused composite
// forest sharing one reservation with their batch mates; the handle
// behaves identically either way.
type Job struct {
	kind jobKind

	// Factor inputs.
	a      *mat.Dense
	reqOpt core.Options
	// Solve inputs: the source factorization and the RHS block. single
	// marks a one-column convenience submission whose result is also
	// exposed as a flat slice.
	src    Solvable
	bmat   *mat.Dense
	single bool

	// Admission state; all guarded by Engine.mu unless noted.
	class    core.JobClass // resolved class (never ClassAuto)
	lane     lane
	role     jobRole
	state    jobState
	seq      uint64
	estFlops float64
	// deadlineAbs is the absolute SLO deadline (zero = none); startBy
	// its laxity key (deadline minus estimated service, UnixNano), or
	// noDeadline.
	deadlineAbs time.Time
	startBy     int64
	// members are the fused user jobs of a roleComposite driver.
	members []*Job
	// stopCancel releases the submission context's cancellation hook.
	stopCancel func() bool

	// Execution state.
	ex *rt.Executor
	// finish assembles the job's result from the runtime result; set by
	// prepare together with the graph.
	finish  func(rt.Result)
	granted int
	// nextSeat hands reserved seats [1,granted) to claiming workers
	// (seat 0 belongs to the starter); guarded by Engine.mu.
	nextSeat int
	// helperSlots holds the free lending-slot ids of this job's
	// executor; possession of an id serializes Assist on that slot.
	helperSlots chan int
	// lendHint is set when the executor published shared work with all
	// reserved workers busy, and cleared by a floater that attached
	// and found nothing: the engine only sends floaters where the hint
	// is up.
	lendHint atomic.Bool
	// finishing elects the single finalizer: the first driver back for
	// solo/composite jobs, OnDone vs composite-failure for members.
	finishing atomic.Bool

	queued, started time.Time
	queueWait, span time.Duration

	done chan struct{}
	fac  *core.Factorization
	cfac *core.CholeskyFactorization
	xmat *mat.Dense
	x    []float64
	err  error
}

// req is the requested static share. For factorizations an unset
// request means "as much as the pool can guarantee"; for solves it
// means one worker — a solve is O(n²·nrhs) against the factorization's
// O(n³), so a service that doesn't ask for a wider share should not
// have tiny solves reserving the whole pool. An explicitly requested
// share is honoured for every kind, and even a one-worker solve still
// publishes shared work for the pool's floaters to lend into.
func (j *Job) req(pool int) int {
	if j.reqOpt.Workers <= 0 {
		if j.kind == solveJob {
			return 1
		}
		return pool
	}
	return j.reqOpt.Workers
}

// reqExpress is the express-lane share request: an explicit Workers is
// honoured, unset defaults to one — a small job gets its throughput
// from batch mates sharing the reservation, not from a wide personal
// share.
func reqExpress(j *Job) int {
	if j.reqOpt.Workers > 0 {
		return j.reqOpt.Workers
	}
	return 1
}

// label names the job in fused-composite traces.
func (j *Job) label() string {
	switch j.kind {
	case factorJob:
		return fmt.Sprintf("lu %dx%d", j.a.Rows, j.a.Cols)
	case choleskyJob:
		return fmt.Sprintf("chol %d", j.a.Rows)
	default:
		return fmt.Sprintf("solve %dx%d", j.bmat.Rows, j.bmat.Cols)
	}
}

// Done returns a channel closed when the job has completed.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job completes and returns its error, if any.
func (j *Job) Wait() error {
	<-j.done
	return j.err
}

// Factorization returns the result of a completed Factor job.
func (j *Job) Factorization() *core.Factorization { return j.fac }

// CholeskyFactorization returns the result of a completed
// CholeskyFactor job.
func (j *Job) CholeskyFactorization() *core.CholeskyFactorization { return j.cfac }

// Solution returns the result of a completed single-RHS Solve job as a
// flat vector (the first column of SolutionMatrix).
func (j *Job) Solution() []float64 { return j.x }

// SolutionMatrix returns the n x nrhs solution block of a completed
// Solve job.
func (j *Job) SolutionMatrix() *mat.Dense { return j.xmat }

// Granted is the static worker share the job's task graph was built
// for (valid once the job has started; final after Wait). The result
// is bit-identical to a one-shot core.Factor at Workers=Granted. For a
// job that ran inside a fused composite this is the member graph's
// width, while the composite's reservation is shared with its batch
// mates.
func (j *Job) Granted() int { return j.granted }

// Class is the job's resolved admission class (never ClassAuto); valid
// once the submission has returned.
func (j *Job) Class() core.JobClass { return j.class }

// QueueWait is the time the job spent admitted but not started; Span
// is its start-to-completion service time.
func (j *Job) QueueWait() time.Duration { return j.queueWait }
func (j *Job) Span() time.Duration      { return j.span }

// SubmitFactor admits a factorization of a (not modified) under opt,
// blocking while the admission queue is full. opt.Workers is the
// requested static share; the engine may grant less under load (at
// least 1), recorded in Job.Granted.
func (e *Engine) SubmitFactor(a *mat.Dense, opt core.Options) (*Job, error) {
	return e.SubmitFactorCtx(context.Background(), a, opt) //hsd:allow ctxflow ctx-free compat API is the documented non-cancellable form
}

// SubmitFactorCtx is SubmitFactor bound to a context: cancellation
// unblocks a submission waiting for admission capacity, and withdraws
// the job if it is still queued when the context fires (the job then
// fails with the context's cause instead of executing).
func (e *Engine) SubmitFactorCtx(ctx context.Context, a *mat.Dense, opt core.Options) (*Job, error) {
	if a == nil || a.Rows == 0 || a.Cols == 0 {
		return nil, errors.New("engine: factor needs a non-empty matrix")
	}
	return e.admit(ctx, &Job{kind: factorJob, a: a, reqOpt: opt, done: make(chan struct{})}, true)
}

// TrySubmitFactor is SubmitFactor with ErrSaturated instead of
// blocking when the admission queue is full.
func (e *Engine) TrySubmitFactor(a *mat.Dense, opt core.Options) (*Job, error) {
	if a == nil || a.Rows == 0 || a.Cols == 0 {
		return nil, errors.New("engine: factor needs a non-empty matrix")
	}
	return e.admit(context.Background(), &Job{kind: factorJob, a: a, reqOpt: opt, done: make(chan struct{})}, false) //hsd:allow ctxflow non-blocking Try form never waits, nothing to cancel
}

// SubmitCholeskyFactor admits a tiled Cholesky factorization of the
// symmetric positive definite matrix a (only the lower triangle is
// read; a is not modified) under opt, blocking while the admission
// queue is full. Cholesky jobs ride the pool exactly like CALU jobs:
// granted static share, dynamic lending, bit-identical to a one-shot
// core.FactorCholesky at Workers=Granted.
func (e *Engine) SubmitCholeskyFactor(a *mat.Dense, opt core.Options) (*Job, error) {
	return e.SubmitCholeskyFactorCtx(context.Background(), a, opt) //hsd:allow ctxflow ctx-free compat API is the documented non-cancellable form
}

// SubmitCholeskyFactorCtx is SubmitCholeskyFactor bound to a context;
// see SubmitFactorCtx for the cancellation semantics.
func (e *Engine) SubmitCholeskyFactorCtx(ctx context.Context, a *mat.Dense, opt core.Options) (*Job, error) {
	if a == nil || a.Rows == 0 || a.Cols == 0 {
		return nil, errors.New("engine: factor needs a non-empty matrix")
	}
	return e.admit(ctx, &Job{kind: choleskyJob, a: a, reqOpt: opt, done: make(chan struct{})}, true)
}

// TrySubmitCholeskyFactor is SubmitCholeskyFactor with ErrSaturated
// instead of blocking when the admission queue is full.
func (e *Engine) TrySubmitCholeskyFactor(a *mat.Dense, opt core.Options) (*Job, error) {
	if a == nil || a.Rows == 0 || a.Cols == 0 {
		return nil, errors.New("engine: factor needs a non-empty matrix")
	}
	return e.admit(context.Background(), &Job{kind: choleskyJob, a: a, reqOpt: opt, done: make(chan struct{})}, false) //hsd:allow ctxflow non-blocking Try form never waits, nothing to cancel
}

// solveJobOf wraps a solve submission. The single-RHS convenience form
// aliases b as a one-column block and mirrors the solution back as a
// flat vector.
func solveJobOf(f Solvable, b []float64, opt core.Options) (*Job, error) {
	if f == nil {
		return nil, errors.New("engine: solve needs a completed factorization")
	}
	if len(b) == 0 {
		return nil, errors.New("engine: solve needs a non-empty right-hand side")
	}
	bm := mat.FromColMajor(len(b), 1, len(b), b)
	return &Job{kind: solveJob, src: f, bmat: bm, single: true, reqOpt: opt, done: make(chan struct{})}, nil
}

// solveManyJobOf wraps a multi-RHS solve submission.
func solveManyJobOf(f Solvable, b *mat.Dense, opt core.Options) (*Job, error) {
	if f == nil {
		return nil, errors.New("engine: solve needs a completed factorization")
	}
	if b == nil || b.Rows == 0 || b.Cols == 0 {
		return nil, errors.New("engine: solve needs a non-empty right-hand side")
	}
	return &Job{kind: solveJob, src: f, bmat: b, reqOpt: opt, done: make(chan struct{})}, nil
}

// SubmitSolve admits a single-RHS solve of f (a completed LU or
// Cholesky factorization) against rhs b, blocking while the admission
// queue is full. The solve executes as a blocked triangular-solve
// graph on the pool at the job's granted share (opt.Workers requests
// the share; opt.Scheduler/Block/DynamicRatio shape the graph), so big
// solves parallelize and lend exactly like factorizations.
func (e *Engine) SubmitSolve(f Solvable, b []float64, opt core.Options) (*Job, error) {
	return e.SubmitSolveCtx(context.Background(), f, b, opt) //hsd:allow ctxflow ctx-free compat API is the documented non-cancellable form
}

// SubmitSolveCtx is SubmitSolve bound to a context; see
// SubmitFactorCtx for the cancellation semantics.
func (e *Engine) SubmitSolveCtx(ctx context.Context, f Solvable, b []float64, opt core.Options) (*Job, error) {
	j, err := solveJobOf(f, b, opt)
	if err != nil {
		return nil, err
	}
	return e.admit(ctx, j, true)
}

// TrySubmitSolve is SubmitSolve with ErrSaturated instead of blocking.
func (e *Engine) TrySubmitSolve(f Solvable, b []float64, opt core.Options) (*Job, error) {
	j, err := solveJobOf(f, b, opt)
	if err != nil {
		return nil, err
	}
	return e.admit(context.Background(), j, false) //hsd:allow ctxflow non-blocking Try form never waits, nothing to cancel
}

// SubmitSolveMany admits a multi-RHS solve of f against the n x nrhs
// block b (not modified), blocking while the admission queue is full.
func (e *Engine) SubmitSolveMany(f Solvable, b *mat.Dense, opt core.Options) (*Job, error) {
	return e.SubmitSolveManyCtx(context.Background(), f, b, opt) //hsd:allow ctxflow ctx-free compat API is the documented non-cancellable form
}

// SubmitSolveManyCtx is SubmitSolveMany bound to a context; see
// SubmitFactorCtx for the cancellation semantics.
func (e *Engine) SubmitSolveManyCtx(ctx context.Context, f Solvable, b *mat.Dense, opt core.Options) (*Job, error) {
	j, err := solveManyJobOf(f, b, opt)
	if err != nil {
		return nil, err
	}
	return e.admit(ctx, j, true)
}

// TrySubmitSolveMany is SubmitSolveMany with ErrSaturated instead of
// blocking.
func (e *Engine) TrySubmitSolveMany(f Solvable, b *mat.Dense, opt core.Options) (*Job, error) {
	j, err := solveManyJobOf(f, b, opt)
	if err != nil {
		return nil, err
	}
	return e.admit(context.Background(), j, false) //hsd:allow ctxflow non-blocking Try form never waits, nothing to cancel
}

// SubmitCholeskySolve is SubmitSolve for a Cholesky factorization,
// named for symmetry with SubmitCholeskyFactor (Cholesky
// factorizations are Solvable, so the generic Submit/TrySubmit solve
// entry points accept them directly).
func (e *Engine) SubmitCholeskySolve(f *core.CholeskyFactorization, b []float64, opt core.Options) (*Job, error) {
	return e.SubmitSolve(f, b, opt)
}

// admit classifies, routes and enqueues the job: the traffic-shaping
// decision point. ctx cancellation unblocks the capacity wait and,
// once queued, withdraws the job (cancelQueued).
func (e *Engine) admit(ctx context.Context, j *Job, wait bool) (*Job, error) {
	j.estFlops = estimateFlops(j)
	if wait && ctx.Done() != nil {
		// Wake the capacity wait when the submitter gives up; Broadcast
		// because several submissions may share one context.
		stop := context.AfterFunc(ctx, func() {
			e.mu.Lock()
			e.capa.Broadcast()
			e.mu.Unlock()
		})
		defer stop()
	}
	e.mu.Lock()
	for {
		if e.closed {
			e.mu.Unlock()
			return nil, ErrClosed
		}
		if err := ctx.Err(); err != nil {
			e.mu.Unlock()
			return nil, err
		}
		if e.inflight < e.opt.MaxInflight {
			break
		}
		if !wait {
			e.mu.Unlock()
			return nil, ErrSaturated
		}
		e.capa.Wait()
	}
	now := time.Now()
	j.queued = now
	j.seq = e.seq
	e.seq++
	j.class = classify(j, e.opt.SmallJobFlops)
	j.startBy = noDeadline
	if e.opt.FIFO {
		// Baseline mode: one arrival-ordered lane, deadlines ignored.
		j.lane = laneBig
	} else {
		if d := j.reqOpt.Deadline; d != 0 {
			est := e.estServiceLocked(j)
			if d < 0 || est > d {
				e.mu.Unlock()
				e.shedCount.Add(1)
				return nil, fmt.Errorf("engine: estimated service %v exceeds deadline %v: %w", est, d, ErrDeadlineInfeasible)
			}
			j.deadlineAbs = now.Add(d)
			j.startBy = j.deadlineAbs.Add(-est).UnixNano()
		}
		if j.class == core.ClassSmall {
			j.lane = laneSmall
		} else {
			j.lane = laneBig
		}
	}
	e.inflight++
	if j.lane == laneSmall {
		e.small.push(j)
	} else {
		e.big.push(j)
	}
	if ctx.Done() != nil {
		// Registered under e.mu so a firing cancellation always observes
		// the queued state (cancelQueued re-checks it under the lock).
		j.stopCancel = context.AfterFunc(ctx, func() {
			e.cancelQueued(j, context.Cause(ctx))
		})
	}
	e.work.Signal()
	e.mu.Unlock()
	return j, nil
}

// cancelQueued withdraws a job whose submission context fired while it
// was still waiting in a lane: it is marked failed with the context's
// cause and never executes. Jobs already started run to completion.
func (e *Engine) cancelQueued(j *Job, cause error) {
	e.mu.Lock()
	if j.state != jsQueued {
		e.mu.Unlock()
		return
	}
	if j.lane == laneSmall {
		e.small.cancel(j)
	} else {
		e.big.cancel(j)
	}
	e.inflight--
	e.classFailed[classIdx(j.class)]++
	e.capa.Signal()
	e.mu.Unlock()
	if cause == nil {
		cause = context.Canceled
	}
	j.err = cause
	e.cancelled.Add(1)
	e.jobsFailed.Add(1)
	close(j.done)
}

// ---------------------------------------------------------------------
// The resident worker loop.

// worker is one resident pool goroutine. Assignments, in preference
// order: claim an open reserved seat of a running job (finish what was
// started), start lane work (an express batch, a big-lane head, or a
// deadline-expired pop to shed), or float — lend itself to a running
// job that has signalled spare shared work.
func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		var j *Job
		var batch []*Job
		var seat, slot, grant int
		mode := 0
		for {
			if j, seat = e.claimSeatLocked(); j != nil {
				mode = 1
				break
			}
			if batch, grant = e.startableLocked(); batch != nil {
				mode = 2
				break
			}
			if j, slot = e.assistableLocked(); j != nil {
				mode = 3
				e.helpersOut++
				break
			}
			// Exit on inflight, not queue/run emptiness: a job between
			// startableLocked and its publication to e.run (its starter
			// is building the graph outside the lock) is in neither
			// list, but its open reserved seats still need this worker
			// — only completeJob's inflight decrement says it is safe
			// to go.
			if e.closed && e.inflight == 0 {
				e.mu.Unlock()
				return
			}
			e.work.Wait()
		}
		e.mu.Unlock()
		switch mode {
		case 1:
			e.driveJob(j, seat)
		case 2:
			e.startBatch(batch, grant)
		case 3:
			// Lower the hint BEFORE probing: a shared publish that
			// lands mid-assist then wins the lendSignal CAS and sends a
			// fresh signal, so no lend request is ever swallowed by the
			// store. If the probe does find work, re-raise the hint —
			// a queue deep enough to feed one floater likely has more.
			j.lendHint.Store(false)
			if j.ex.Assist(slot) {
				e.lends.Add(1)
				j.lendHint.Store(true)
			}
			j.helperSlots <- slot
			e.mu.Lock()
			e.helpersOut--
			e.mu.Unlock()
		}
	}
}

// claimSeatLocked finds a running job with an unclaimed reserved seat.
func (e *Engine) claimSeatLocked() (*Job, int) {
	for _, j := range e.run {
		if j.nextSeat < j.granted {
			s := j.nextSeat
			j.nextSeat++
			return j, s
		}
	}
	return nil, 0
}

// grantShed marks a startableLocked batch that was popped only to be
// shed: its jobs' deadlines expired while they waited.
const grantShed = -1

// startableLocked picks the next lane work, in order: deadline-expired
// heads to shed, an express-lane batch (fused when several small jobs
// wait), then the big-lane head under its share bound. On success the
// batch's jobs have been popped and the grant charged to the pool.
func (e *Engine) startableLocked() ([]*Job, int) {
	if exp := e.expiredLocked(); exp != nil {
		return exp, grantShed
	}
	// Express lane: one worker takes every fusable waiting small job
	// (up to FuseLimit) as a single composite sharing one reservation.
	if head := e.small.peek(); head != nil && e.grantLocked(1) > 0 {
		head = e.small.pop()
		head.state = jsStarted
		batch := []*Job{head}
		req := reqExpress(head)
		if head.fusable() {
			for len(batch) < e.opt.FuseLimit {
				next := e.small.peek()
				if next == nil || !next.fusable() {
					break
				}
				e.small.pop()
				next.state = jsStarted
				batch = append(batch, next)
				if r := reqExpress(next); r > req {
					req = r
				}
			}
		}
		g := e.grantLocked(req) // >= 1: grantLocked(1) above saw a free worker
		e.reservedInUse += g
		if len(batch) == 1 {
			batch[0].granted = g
		}
		return batch, g
	}
	// Big lane, bounded to BigShare of the reservable pool while
	// express traffic waits.
	if head := e.big.peek(); head != nil {
		g := e.grantBigLocked(head.req(e.opt.Workers))
		if g == 0 {
			return nil, 0
		}
		e.big.pop()
		head.state = jsStarted
		head.granted = g
		e.reservedInUse += g
		e.bigReserved += g
		return []*Job{head}, g
	}
	return nil, 0
}

// expiredLocked pops lane heads whose absolute deadline has already
// passed: starting them could only burn a reservation on work that
// will miss its SLO, so they are shed instead (never in FIFO mode).
func (e *Engine) expiredLocked() []*Job {
	if e.opt.FIFO {
		return nil
	}
	var exp []*Job
	now := time.Now()
	for _, q := range []*laneQueue{&e.small, &e.big} {
		for {
			h := q.peek()
			if h == nil || h.deadlineAbs.IsZero() || now.Before(h.deadlineAbs) {
				break
			}
			q.pop()
			h.state = jsStarted
			exp = append(exp, h)
		}
	}
	return exp
}

// grantLocked sizes a job's static share: its request capped by the
// reservable share S = Workers - floaters, with a floor of one worker
// (the per-job liveness guarantee — lending slots cannot serve
// owner-pinned tasks, so every job keeps at least one reserved
// driver), and never more seats than workers left unreserved.
func (e *Engine) grantLocked(req int) int {
	free := e.opt.Workers - e.reservedInUse
	if free < 1 {
		return 0
	}
	g := req
	if avail := e.opt.Workers - e.floaters() - e.reservedInUse; g > avail {
		g = avail
	}
	if g < 1 {
		g = 1
	}
	if g > free {
		g = free
	}
	return g
}

// grantBigLocked is grantLocked with the big lane's bound applied:
// while express traffic is waiting, big-lane jobs may together hold at
// most BigShare of the reservable pool, so a stream of small jobs is
// never head-of-line-blocked behind wide factorizations. With an empty
// express lane the bound is lifted (work conservation).
func (e *Engine) grantBigLocked(req int) int {
	g := e.grantLocked(req)
	if g == 0 || e.small.depth == 0 {
		return g
	}
	bigCap := int(math.Round(e.opt.BigShare * float64(e.opt.Workers-e.floaters())))
	if bigCap < 1 {
		bigCap = 1
	}
	room := bigCap - e.bigReserved
	if room < 1 {
		return 0
	}
	if g > room {
		g = room
	}
	return g
}

// assistableLocked picks the running job a floater should lend itself
// to, bounded by the pool's floater share. Among jobs whose lend hint
// is up, the one with the least laxity (earliest startBy — closest to
// missing its deadline) wins; ties break toward the job with the most
// globally poppable work (SharedBacklog), then rotor order for
// fairness among equals.
func (e *Engine) assistableLocked() (*Job, int) {
	d := e.floaters()
	if d == 0 || e.helpersOut >= d || len(e.run) == 0 {
		return nil, 0
	}
	n := len(e.run)
	type cand struct {
		j       *Job
		backlog int
	}
	var cands []cand
	for i := 0; i < n; i++ {
		if j := e.run[(e.rotor+i)%n]; j.lendHint.Load() {
			cands = append(cands, cand{j: j})
		}
	}
	if len(cands) == 0 {
		return nil, 0
	}
	if len(cands) > 1 {
		for i := range cands {
			cands[i].backlog = cands[i].j.ex.SharedBacklog()
		}
		sort.SliceStable(cands, func(a, b int) bool {
			if cands[a].j.startBy != cands[b].j.startBy {
				return cands[a].j.startBy < cands[b].j.startBy
			}
			return cands[a].backlog > cands[b].backlog
		})
	}
	for _, c := range cands {
		select {
		case s := <-c.j.helperSlots:
			e.rotor = (e.rotor + 1) % n
			return c.j, s
		default:
		}
	}
	return nil, 0
}

// prepare builds the job's task graph, policy and result finisher (the
// expensive part, run outside the engine lock). A panicking prepare —
// a malformed matrix shape, a nil factorization behind the Solvable
// interface — is converted to a job error so a bad submission can
// never take down a pool worker.
func (j *Job) prepare(opt core.Options) (g *dag.Graph, pol sched.Policy, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: prepare %v", r)
		}
	}()
	switch j.kind {
	case factorJob:
		fj, err := core.PrepareFactor(j.a, opt)
		if err != nil {
			return nil, nil, err
		}
		j.finish = func(res rt.Result) { j.fac = fj.Finish(res) }
		return fj.Graph(), fj.Policy(), nil
	case choleskyJob:
		cj, err := core.PrepareCholesky(j.a, opt)
		if err != nil {
			return nil, nil, err
		}
		j.finish = func(res rt.Result) { j.cfac = cj.Finish(res) }
		return cj.Graph(), cj.Policy(), nil
	default:
		sj, err := j.src.PrepareSolve(j.bmat, opt)
		if err != nil {
			return nil, nil, err
		}
		j.finish = func(res rt.Result) {
			j.xmat = sj.Finish(res).X
			if j.single {
				j.x = j.xmat.Col(0)
			}
		}
		return sj.Graph(), sj.Policy(), nil
	}
}

// startBatch dispatches what startableLocked popped: a shed batch, a
// solo job, or an express batch to fuse.
func (e *Engine) startBatch(batch []*Job, grant int) {
	if grant == grantShed {
		for _, j := range batch {
			j.err = fmt.Errorf("engine: deadline expired before start: %w", ErrDeadlineInfeasible)
			e.shedCount.Add(1)
			e.completeJob(j, false)
		}
		return
	}
	if len(batch) == 1 {
		e.startJob(batch[0])
		return
	}
	e.startFused(batch, grant)
}

// startJob runs a solo job: it builds the job's task graph and
// executor (outside the engine lock), publishes its open seats and
// lending slots, and the starter becomes reserved driver 0. Factor,
// Cholesky and solve jobs all take this path — a solve is a blocked
// triangular-solve graph, not an inline call, so it executes at the
// granted share and participates in lending like any factorization.
func (e *Engine) startJob(j *Job) {
	j.started = time.Now()
	j.queueWait = j.started.Sub(j.queued)
	opt := j.reqOpt
	opt.Workers = j.granted
	g, pol, err := j.prepare(opt)
	if err != nil {
		j.err = err
		e.completeJob(j, false)
		return
	}
	e.launch(j, g, pol, opt)
}

// startFused runs an express batch as one composite: every member's
// graph is built at its own small width, dag.Fuse merges them into a
// forest with owner interleaving and per-member completion callbacks,
// and a single engine-internal composite job drives the forest on one
// shared reservation. Members complete individually as their subgraphs
// drain; a member whose prepare fails is failed alone and its batch
// mates still run.
func (e *Engine) startFused(batch []*Job, granted int) {
	now := time.Now()
	parts := make([]dag.FusePart, 0, len(batch))
	members := make([]*Job, 0, len(batch))
	minStart := noDeadline
	totalFlops := 0.0
	for _, m := range batch {
		m.role = roleMember
		m.started = now
		m.queueWait = now.Sub(m.queued)
		opt := m.reqOpt
		w := opt.Workers
		if w <= 0 {
			w = 1
		}
		if w > granted {
			w = granted
		}
		opt.Workers = w
		g, _, err := m.prepare(opt)
		if err != nil {
			m.err = err
			if m.finishing.CompareAndSwap(false, true) {
				e.completeJob(m, false)
			}
			continue
		}
		m.granted = w
		mm := m
		parts = append(parts, dag.FusePart{G: g, Label: mm.label(), OnDone: func() { e.finishFusedMember(mm) }})
		members = append(members, m)
		if m.startBy < minStart {
			minStart = m.startBy
		}
		totalFlops += m.estFlops
	}
	if len(parts) == 0 {
		// Every member died in prepare; give the reservation back.
		e.mu.Lock()
		e.reservedInUse -= granted
		e.work.Broadcast()
		e.mu.Unlock()
		return
	}
	fused := dag.Fuse(parts...)
	// Fold the interleaved owner space [0, sum of member widths) onto
	// the granted seats. Policies map owners onto slots modulo the TOTAL
	// slot count — reserved seats plus lending seats — so an owner left
	// beyond granted would pin static tasks to a lending seat, which is
	// only served when a floater happens to attach: the member would
	// straggle behind whatever big job the floaters are busy with.
	for _, t := range fused.Tasks {
		t.Owner %= granted
	}
	e.fusionBatches.Add(1)
	e.fusedJobs.Add(int64(len(members)))
	comp := &Job{
		role:     roleComposite,
		lane:     laneSmall,
		class:    core.ClassSmall,
		granted:  granted,
		members:  members,
		startBy:  minStart,
		estFlops: totalFlops,
		queued:   now,
		started:  now,
		done:     make(chan struct{}),
		finish:   func(rt.Result) {},
	}
	// The forest always runs under the hybrid policy: the members'
	// graphs already carry their own static/dynamic split (shaped by
	// each member's Scheduler choice), and hybrid's shared section is
	// what the pool's floaters lend into.
	e.launch(comp, fused.Graph, sched.NewHybrid(), core.Options{})
}

// finishFusedMember completes one member of a fused composite, called
// from the worker goroutine that executed the member's last task. The
// finishing CAS elects it against the composite-failure path.
func (e *Engine) finishFusedMember(m *Job) {
	if !m.finishing.CompareAndSwap(false, true) {
		return
	}
	// Members assemble from their own graph layout; the composite's
	// runtime counters are not attributable per member, so Makespan and
	// Counters stay zero on fused results.
	m.finish(rt.Result{})
	e.completeJob(m, false)
}

// launch builds the executor for a prepared solo or composite job,
// publishes its open seats and lending slots, and drives seat 0.
func (e *Engine) launch(j *Job, g *dag.Graph, pol sched.Policy, opt core.Options) {
	helpers := e.floaters()
	ex, err := rt.NewExecutor(g, pol, rt.Options{
		Workers:           j.granted,
		Helpers:           helpers,
		ExternalWorkspace: true,
		Trace:             opt.Trace,
		Noise:             opt.Noise,
		Lend:              func() { e.lendSignal(j) },
	})
	if err != nil {
		j.err = err
		e.completeJob(j, false)
		return
	}
	j.ex = ex
	j.helperSlots = make(chan int, helpers)
	for s := 0; s < helpers; s++ {
		j.helperSlots <- j.granted + s
	}
	// The seeded roots may already include shared work.
	j.lendHint.Store(true)
	j.nextSeat = 1 // seat 0 is ours
	e.mu.Lock()
	e.run = append(e.run, j)
	// Open seats and lending slots are up for grabs; queued jobs may
	// also now start on other workers.
	e.work.Broadcast()
	e.mu.Unlock()
	e.driveJob(j, 0)
}

// lendSignal is the executor's Lend hook: shared work was published
// while every reserved worker of j was busy. Raise the job's hint and
// poke one parked pool worker. The engine lock is taken so the signal
// cannot slip between a parked worker's last scan and its wait.
func (e *Engine) lendSignal(j *Job) {
	if j.lendHint.CompareAndSwap(false, true) {
		e.mu.Lock()
		e.work.Signal()
		e.mu.Unlock()
	}
}

// driveJob attaches as reserved worker `seat` until the run completes;
// the first driver back finalizes the job.
func (e *Engine) driveJob(j *Job, seat int) {
	j.ex.Drive(seat)
	if !j.finishing.CompareAndSwap(false, true) {
		return
	}
	res, err := j.ex.Wait()
	if err != nil {
		j.err = err
	} else {
		j.finish(res)
	}
	e.completeJob(j, true)
}

// completeJob releases the job's share of the pool, retires it from
// the running set, records per-class stats and wakes submitters
// waiting on admission capacity. Role-aware: solo jobs release both
// their reservation and their admission slot, fused members only the
// slot (the composite holds the shared reservation), composites only
// the reservation — and a failed composite fails every member whose
// completion callback never fired.
func (e *Engine) completeJob(j *Job, running bool) {
	var orphans []*Job
	e.mu.Lock()
	j.state = jsDone
	switch j.role {
	case roleSolo:
		e.reservedInUse -= j.granted
		if j.lane == laneBig {
			e.bigReserved -= j.granted
		}
		e.inflight--
	case roleMember:
		e.inflight--
	case roleComposite:
		e.reservedInUse -= j.granted
		if j.err != nil {
			// The forest aborted: members that never reached their
			// OnDone inherit the composite's error. The finishing CAS
			// excludes members completing normally right now.
			for _, m := range j.members {
				if m.finishing.CompareAndSwap(false, true) {
					orphans = append(orphans, m)
				}
			}
		}
	}
	if running {
		for i, r := range e.run {
			if r == j {
				e.run = append(e.run[:i], e.run[i+1:]...)
				break
			}
		}
	}
	if j.role != roleComposite {
		idx := classIdx(j.class)
		if j.err != nil {
			e.classFailed[idx]++
		} else {
			e.classDone[idx]++
			e.ring(idx).add(float64(time.Since(j.queued).Microseconds()) / 1e3)
		}
	}
	// Fold successful solo/composite spans into the per-class
	// service-rate EWMAs; members overlap their batch mates, so their
	// spans would skew it.
	if j.err == nil && j.role != roleMember && !j.started.IsZero() {
		e.observeRateLocked(j, time.Since(j.started))
	}
	stop := j.stopCancel
	e.work.Broadcast()
	// Exactly one admission slot was freed: wake one blocked
	// submitter, not all of them (Close is the broadcast case).
	e.capa.Signal()
	e.mu.Unlock()
	if stop != nil {
		stop()
	}
	if j.role != roleComposite {
		if j.err != nil {
			e.jobsFailed.Add(1)
		} else {
			e.jobsDone.Add(1)
		}
	}
	if !j.started.IsZero() {
		j.span = time.Since(j.started)
	}
	close(j.done)
	for _, m := range orphans {
		m.err = j.err
		e.completeJob(m, false)
	}
}

// Package engine is the resident factorization service: one long-lived
// pool of worker goroutines executing many Factor/Solve jobs
// concurrently, instead of every call spawning and tearing down its own
// workers (the one-shot rt.Run mode).
//
// The scheduling is the paper's hybrid static/dynamic split lifted to
// the inter-job level. Within one factorization, Donfack et al. reserve
// a static share of the block columns for locality and let a dynamic
// share absorb load imbalance; across competing jobs the engine does
// the same with workers. Each admitted job receives a static
// reservation — a guaranteed share of the pool that attaches to the
// job's rt.Executor and drives it to completion, preserving the
// intra-job owner-computes locality — while the pool's dynamic share
// (Options.DynamicRatio) floats: an idle floater lends itself to
// whichever job has published globally poppable work (the shared
// dynamic heap of the hybrid policy, stealable deques of work
// stealing), absorbing inter-job imbalance exactly like the paper's
// dynamic section absorbs intra-job imbalance. DynamicRatio 0 is the
// fully static A/B end (jobs partition the pool, no lending) and 1 is
// the fully dynamic end (every job pinned to a single guaranteed
// worker, everyone else floating).
//
// Jobs enter a bounded admission queue (Options.MaxInflight) and start
// FIFO as static capacity frees up; a job whose requested share is not
// available starts anyway with what the pool can guarantee (at least
// one worker), so service is work-conserving and a job can never be
// starved by wide requests. The granted share is the parallelism the
// job's task graph is built for: its result is bit-identical to a
// one-shot core.Factor at Workers=Granted (the graph's dataflow fixes
// the arithmetic; scheduling only reorders it).
package engine

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/rt"
	"repro/internal/sched"
)

var (
	// ErrClosed is returned by submissions after Close.
	ErrClosed = errors.New("engine: closed")
	// ErrSaturated is returned by TrySubmit* when the admission queue
	// is at MaxInflight.
	ErrSaturated = errors.New("engine: admission queue full")
)

// Options configures an Engine.
type Options struct {
	// Workers is the resident pool size (default runtime.NumCPU()).
	Workers int
	// MaxInflight bounds admitted jobs (queued + running); further
	// submissions block (Submit*) or fail (TrySubmit*). Default
	// 4*Workers.
	MaxInflight int
	// DynamicRatio is the inter-job dratio: the fraction of the pool
	// that lends itself dynamically across jobs instead of being
	// reservable as static per-job shares. 0 partitions the pool fully
	// statically (no lending — the A/B baseline); 1 pins each job to
	// one guaranteed worker and floats everyone else (fully dynamic).
	// Values in between reproduce the paper's hybrid sweet spot at the
	// job level.
	DynamicRatio float64
}

func (o *Options) fill() error {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 4 * o.Workers
	}
	if o.DynamicRatio < 0 || o.DynamicRatio > 1 || math.IsNaN(o.DynamicRatio) {
		return fmt.Errorf("engine: DynamicRatio %v outside [0,1]", o.DynamicRatio)
	}
	return nil
}

// Stats is a point-in-time snapshot of the engine.
type Stats struct {
	// Workers is the resident pool size; Floaters its dynamic share.
	Workers, Floaters int
	// Pending and Active count admitted jobs by phase; ReservedInUse is
	// the sum of active jobs' static grants; HelpersOut the floaters
	// currently lent to a job.
	Pending, Active, ReservedInUse, HelpersOut int
	// JobsDone/JobsFailed count completed jobs; Lends counts Assist
	// attachments that executed at least one task for a foreign job.
	JobsDone, JobsFailed, Lends int64
	Closed                      bool
}

// Engine is the resident factorization service. Create with New, feed
// with Submit*/TrySubmit*, and Close when done.
type Engine struct {
	opt Options
	ws  *kernel.Reservation

	mu    sync.Mutex
	work  *sync.Cond // workers wait here for assignments
	capa  *sync.Cond // submitters wait here for admission capacity
	queue []*Job     // admitted, not yet started (FIFO)
	run   []*Job     // started, executor live
	// inflight = len(queue) + started-but-unfinished jobs; bounded by
	// MaxInflight.
	inflight      int
	reservedInUse int
	helpersOut    int
	rotor         int
	closed        bool

	wg sync.WaitGroup

	jobsDone   atomic.Int64
	jobsFailed atomic.Int64
	lends      atomic.Int64
}

// New starts a resident engine: the worker goroutines and the pool-wide
// kernel workspace reservation live until Close.
func New(opt Options) (*Engine, error) {
	if err := opt.fill(); err != nil {
		return nil, err
	}
	e := &Engine{opt: opt}
	e.work = sync.NewCond(&e.mu)
	e.capa = sync.NewCond(&e.mu)
	// One refcounted pool-wide reservation: at most Workers goroutines
	// ever call kernels at once, however many jobs are in flight, so
	// per-job executors run with ExternalWorkspace.
	e.ws = kernel.Reserve(opt.Workers)
	e.wg.Add(opt.Workers)
	for w := 0; w < opt.Workers; w++ {
		go e.worker()
	}
	return e, nil
}

// floaters is the pool's dynamic share: the number of workers that lend
// themselves across jobs instead of being statically reservable.
func (e *Engine) floaters() int {
	return int(math.Round(float64(e.opt.Workers) * e.opt.DynamicRatio))
}

// Close rejects queued jobs, waits for running jobs and the workers to
// finish, and releases the pool's kernel workspaces. Safe to call once.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	dropped := e.queue
	e.queue = nil
	e.inflight -= len(dropped)
	e.work.Broadcast()
	e.capa.Broadcast()
	e.mu.Unlock()
	for _, j := range dropped {
		j.err = ErrClosed
		e.jobsFailed.Add(1)
		close(j.done)
	}
	e.wg.Wait()
	e.ws.Release()
}

// Stats returns a snapshot of the engine's state.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	s := Stats{
		Workers:       e.opt.Workers,
		Floaters:      e.floaters(),
		Pending:       len(e.queue),
		Active:        len(e.run),
		ReservedInUse: e.reservedInUse,
		HelpersOut:    e.helpersOut,
		Closed:        e.closed,
	}
	e.mu.Unlock()
	s.JobsDone = e.jobsDone.Load()
	s.JobsFailed = e.jobsFailed.Load()
	s.Lends = e.lends.Load()
	return s
}

// ---------------------------------------------------------------------
// Jobs.

type jobKind uint8

const (
	factorJob jobKind = iota
	choleskyJob
	solveJob
)

// Solvable is a completed factorization the engine can schedule a
// blocked triangular-solve graph for: *core.Factorization and
// *core.CholeskyFactorization both qualify.
type Solvable interface {
	PrepareSolve(b *mat.Dense, opt core.Options) (*core.SolveJob, error)
}

// Job is the handle of one submitted Factor, CholeskyFactor or Solve.
// Wait (or Done) observes completion; the result accessors are valid
// afterwards. Every kind of job executes as a task graph on the pool:
// solves are no longer a single inline task but a blocked two-sweep
// triangular-solve DAG scheduled at the job's granted share, lending
// included.
type Job struct {
	kind jobKind

	// Factor inputs.
	a      *mat.Dense
	reqOpt core.Options
	// Solve inputs: the source factorization and the RHS block. single
	// marks a one-column convenience submission whose result is also
	// exposed as a flat slice.
	src    Solvable
	bmat   *mat.Dense
	single bool

	// Execution state.
	ex *rt.Executor
	// finish assembles the job's result from the runtime result; set by
	// startJob together with ex.
	finish  func(rt.Result)
	granted int
	// nextSeat hands reserved seats [1,granted) to claiming workers
	// (seat 0 belongs to the starter); guarded by Engine.mu.
	nextSeat int
	// helperSlots holds the free lending-slot ids of this job's
	// executor; possession of an id serializes Assist on that slot.
	helperSlots chan int
	// lendHint is set when the executor published shared work with all
	// reserved workers busy, and cleared by a floater that attached
	// and found nothing: the engine only sends floaters where the hint
	// is up.
	lendHint  atomic.Bool
	finishing atomic.Bool

	queued, started time.Time
	queueWait, span time.Duration

	done chan struct{}
	fac  *core.Factorization
	cfac *core.CholeskyFactorization
	xmat *mat.Dense
	x    []float64
	err  error
}

// req is the requested static share. For factorizations an unset
// request means "as much as the pool can guarantee"; for solves it
// means one worker — a solve is O(n²·nrhs) against the factorization's
// O(n³), so a service that doesn't ask for a wider share should not
// have tiny solves reserving the whole pool. An explicitly requested
// share is honoured for every kind, and even a one-worker solve still
// publishes shared work for the pool's floaters to lend into.
func (j *Job) req(pool int) int {
	if j.reqOpt.Workers <= 0 {
		if j.kind == solveJob {
			return 1
		}
		return pool
	}
	return j.reqOpt.Workers
}

// Done returns a channel closed when the job has completed.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job completes and returns its error, if any.
func (j *Job) Wait() error {
	<-j.done
	return j.err
}

// Factorization returns the result of a completed Factor job.
func (j *Job) Factorization() *core.Factorization { return j.fac }

// CholeskyFactorization returns the result of a completed
// CholeskyFactor job.
func (j *Job) CholeskyFactorization() *core.CholeskyFactorization { return j.cfac }

// Solution returns the result of a completed single-RHS Solve job as a
// flat vector (the first column of SolutionMatrix).
func (j *Job) Solution() []float64 { return j.x }

// SolutionMatrix returns the n x nrhs solution block of a completed
// Solve job.
func (j *Job) SolutionMatrix() *mat.Dense { return j.xmat }

// Granted is the static worker share the job ran with (valid once the
// job has started; final after Wait). The result is bit-identical to a
// one-shot core.Factor at Workers=Granted.
func (j *Job) Granted() int { return j.granted }

// QueueWait is the time the job spent admitted but not started; Span
// is its start-to-completion service time.
func (j *Job) QueueWait() time.Duration { return j.queueWait }
func (j *Job) Span() time.Duration      { return j.span }

// SubmitFactor admits a factorization of a (not modified) under opt,
// blocking while the admission queue is full. opt.Workers is the
// requested static share; the engine may grant less under load (at
// least 1), recorded in Job.Granted.
func (e *Engine) SubmitFactor(a *mat.Dense, opt core.Options) (*Job, error) {
	if a == nil || a.Rows == 0 || a.Cols == 0 {
		return nil, errors.New("engine: factor needs a non-empty matrix")
	}
	return e.admit(&Job{kind: factorJob, a: a, reqOpt: opt, done: make(chan struct{})}, true)
}

// TrySubmitFactor is SubmitFactor with ErrSaturated instead of
// blocking when the admission queue is full.
func (e *Engine) TrySubmitFactor(a *mat.Dense, opt core.Options) (*Job, error) {
	if a == nil || a.Rows == 0 || a.Cols == 0 {
		return nil, errors.New("engine: factor needs a non-empty matrix")
	}
	return e.admit(&Job{kind: factorJob, a: a, reqOpt: opt, done: make(chan struct{})}, false)
}

// SubmitCholeskyFactor admits a tiled Cholesky factorization of the
// symmetric positive definite matrix a (only the lower triangle is
// read; a is not modified) under opt, blocking while the admission
// queue is full. Cholesky jobs ride the pool exactly like CALU jobs:
// granted static share, dynamic lending, bit-identical to a one-shot
// core.FactorCholesky at Workers=Granted.
func (e *Engine) SubmitCholeskyFactor(a *mat.Dense, opt core.Options) (*Job, error) {
	if a == nil || a.Rows == 0 || a.Cols == 0 {
		return nil, errors.New("engine: factor needs a non-empty matrix")
	}
	return e.admit(&Job{kind: choleskyJob, a: a, reqOpt: opt, done: make(chan struct{})}, true)
}

// TrySubmitCholeskyFactor is SubmitCholeskyFactor with ErrSaturated
// instead of blocking when the admission queue is full.
func (e *Engine) TrySubmitCholeskyFactor(a *mat.Dense, opt core.Options) (*Job, error) {
	if a == nil || a.Rows == 0 || a.Cols == 0 {
		return nil, errors.New("engine: factor needs a non-empty matrix")
	}
	return e.admit(&Job{kind: choleskyJob, a: a, reqOpt: opt, done: make(chan struct{})}, false)
}

// solveJobOf wraps a solve submission. The single-RHS convenience form
// aliases b as a one-column block and mirrors the solution back as a
// flat vector.
func solveJobOf(f Solvable, b []float64, opt core.Options) (*Job, error) {
	if f == nil {
		return nil, errors.New("engine: solve needs a completed factorization")
	}
	if len(b) == 0 {
		return nil, errors.New("engine: solve needs a non-empty right-hand side")
	}
	bm := mat.FromColMajor(len(b), 1, len(b), b)
	return &Job{kind: solveJob, src: f, bmat: bm, single: true, reqOpt: opt, done: make(chan struct{})}, nil
}

// solveManyJobOf wraps a multi-RHS solve submission.
func solveManyJobOf(f Solvable, b *mat.Dense, opt core.Options) (*Job, error) {
	if f == nil {
		return nil, errors.New("engine: solve needs a completed factorization")
	}
	if b == nil || b.Rows == 0 || b.Cols == 0 {
		return nil, errors.New("engine: solve needs a non-empty right-hand side")
	}
	return &Job{kind: solveJob, src: f, bmat: b, reqOpt: opt, done: make(chan struct{})}, nil
}

// SubmitSolve admits a single-RHS solve of f (a completed LU or
// Cholesky factorization) against rhs b, blocking while the admission
// queue is full. The solve executes as a blocked triangular-solve
// graph on the pool at the job's granted share (opt.Workers requests
// the share; opt.Scheduler/Block/DynamicRatio shape the graph), so big
// solves parallelize and lend exactly like factorizations.
func (e *Engine) SubmitSolve(f Solvable, b []float64, opt core.Options) (*Job, error) {
	j, err := solveJobOf(f, b, opt)
	if err != nil {
		return nil, err
	}
	return e.admit(j, true)
}

// TrySubmitSolve is SubmitSolve with ErrSaturated instead of blocking.
func (e *Engine) TrySubmitSolve(f Solvable, b []float64, opt core.Options) (*Job, error) {
	j, err := solveJobOf(f, b, opt)
	if err != nil {
		return nil, err
	}
	return e.admit(j, false)
}

// SubmitSolveMany admits a multi-RHS solve of f against the n x nrhs
// block b (not modified), blocking while the admission queue is full.
func (e *Engine) SubmitSolveMany(f Solvable, b *mat.Dense, opt core.Options) (*Job, error) {
	j, err := solveManyJobOf(f, b, opt)
	if err != nil {
		return nil, err
	}
	return e.admit(j, true)
}

// TrySubmitSolveMany is SubmitSolveMany with ErrSaturated instead of
// blocking.
func (e *Engine) TrySubmitSolveMany(f Solvable, b *mat.Dense, opt core.Options) (*Job, error) {
	j, err := solveManyJobOf(f, b, opt)
	if err != nil {
		return nil, err
	}
	return e.admit(j, false)
}

// SubmitCholeskySolve is SubmitSolve for a Cholesky factorization,
// named for symmetry with SubmitCholeskyFactor (Cholesky
// factorizations are Solvable, so the generic Submit/TrySubmit solve
// entry points accept them directly).
func (e *Engine) SubmitCholeskySolve(f *core.CholeskyFactorization, b []float64, opt core.Options) (*Job, error) {
	return e.SubmitSolve(f, b, opt)
}

func (e *Engine) admit(j *Job, wait bool) (*Job, error) {
	e.mu.Lock()
	for {
		if e.closed {
			e.mu.Unlock()
			return nil, ErrClosed
		}
		if e.inflight < e.opt.MaxInflight {
			break
		}
		if !wait {
			e.mu.Unlock()
			return nil, ErrSaturated
		}
		e.capa.Wait()
	}
	e.inflight++
	j.queued = time.Now()
	e.queue = append(e.queue, j)
	e.work.Signal()
	e.mu.Unlock()
	return j, nil
}

// ---------------------------------------------------------------------
// The resident worker loop.

// worker is one resident pool goroutine. Assignments, in preference
// order: claim an open reserved seat of a running job (finish what was
// started), start the queue head, or float — lend itself to a running
// job that has signalled spare shared work.
func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		var j *Job
		var seat, slot int
		mode := 0
		for {
			if j, seat = e.claimSeatLocked(); j != nil {
				mode = 1
				break
			}
			if j = e.startableLocked(); j != nil {
				mode = 2
				break
			}
			if j, slot = e.assistableLocked(); j != nil {
				mode = 3
				e.helpersOut++
				break
			}
			// Exit on inflight, not queue/run emptiness: a job between
			// startableLocked and its publication to e.run (its starter
			// is building the graph outside the lock) is in neither
			// list, but its open reserved seats still need this worker
			// — only completeJob's inflight decrement says it is safe
			// to go.
			if e.closed && e.inflight == 0 {
				e.mu.Unlock()
				return
			}
			e.work.Wait()
		}
		e.mu.Unlock()
		switch mode {
		case 1:
			e.driveJob(j, seat)
		case 2:
			e.startJob(j)
		case 3:
			// Lower the hint BEFORE probing: a shared publish that
			// lands mid-assist then wins the lendSignal CAS and sends a
			// fresh signal, so no lend request is ever swallowed by the
			// store. If the probe does find work, re-raise the hint —
			// a queue deep enough to feed one floater likely has more.
			j.lendHint.Store(false)
			if j.ex.Assist(slot) {
				e.lends.Add(1)
				j.lendHint.Store(true)
			}
			j.helperSlots <- slot
			e.mu.Lock()
			e.helpersOut--
			e.mu.Unlock()
		}
	}
}

// claimSeatLocked finds a running job with an unclaimed reserved seat.
func (e *Engine) claimSeatLocked() (*Job, int) {
	for _, j := range e.run {
		if j.nextSeat < j.granted {
			s := j.nextSeat
			j.nextSeat++
			return j, s
		}
	}
	return nil, 0
}

// startableLocked pops the queue head if the pool can grant it a
// static share. Admission is strictly FIFO: a wide job at the head
// waits for capacity rather than being bypassed.
func (e *Engine) startableLocked() *Job {
	if len(e.queue) == 0 {
		return nil
	}
	g := e.grantLocked(e.queue[0].req(e.opt.Workers))
	if g == 0 {
		return nil
	}
	j := e.queue[0]
	e.queue = e.queue[1:]
	j.granted = g
	e.reservedInUse += g
	return j
}

// grantLocked sizes a job's static share: its request capped by the
// reservable share S = Workers - floaters, with a floor of one worker
// (the per-job liveness guarantee — lending slots cannot serve
// owner-pinned tasks, so every job keeps at least one reserved
// driver), and never more seats than workers left unreserved.
func (e *Engine) grantLocked(req int) int {
	free := e.opt.Workers - e.reservedInUse
	if free < 1 {
		return 0
	}
	g := req
	if avail := e.opt.Workers - e.floaters() - e.reservedInUse; g > avail {
		g = avail
	}
	if g < 1 {
		g = 1
	}
	if g > free {
		g = free
	}
	return g
}

// assistableLocked finds a running job whose lend hint is up and
// borrows one of its lending slots, bounded by the pool's floater
// share.
func (e *Engine) assistableLocked() (*Job, int) {
	d := e.floaters()
	if d == 0 || e.helpersOut >= d || len(e.run) == 0 {
		return nil, 0
	}
	n := len(e.run)
	for i := 0; i < n; i++ {
		j := e.run[(e.rotor+i)%n]
		if !j.lendHint.Load() {
			continue
		}
		select {
		case s := <-j.helperSlots:
			e.rotor = (e.rotor + i + 1) % n
			return j, s
		default:
		}
	}
	return nil, 0
}

// prepare builds the job's task graph, policy and result finisher (the
// expensive part, run outside the engine lock). A panicking prepare —
// a malformed matrix shape, a nil factorization behind the Solvable
// interface — is converted to a job error so a bad submission can
// never take down a pool worker.
func (j *Job) prepare(opt core.Options) (g *dag.Graph, pol sched.Policy, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: prepare %v", r)
		}
	}()
	switch j.kind {
	case factorJob:
		fj, err := core.PrepareFactor(j.a, opt)
		if err != nil {
			return nil, nil, err
		}
		j.finish = func(res rt.Result) { j.fac = fj.Finish(res) }
		return fj.Graph(), fj.Policy(), nil
	case choleskyJob:
		cj, err := core.PrepareCholesky(j.a, opt)
		if err != nil {
			return nil, nil, err
		}
		j.finish = func(res rt.Result) { j.cfac = cj.Finish(res) }
		return cj.Graph(), cj.Policy(), nil
	default:
		sj, err := j.src.PrepareSolve(j.bmat, opt)
		if err != nil {
			return nil, nil, err
		}
		j.finish = func(res rt.Result) {
			j.xmat = sj.Finish(res).X
			if j.single {
				j.x = j.xmat.Col(0)
			}
		}
		return sj.Graph(), sj.Policy(), nil
	}
}

// startJob runs the admitted job: it builds the job's task graph and
// executor (outside the engine lock), publishes its open seats and
// lending slots, and the starter becomes reserved driver 0. Factor,
// Cholesky and solve jobs all take this path — a solve is a blocked
// triangular-solve graph, not an inline call, so it executes at the
// granted share and participates in lending like any factorization.
func (e *Engine) startJob(j *Job) {
	j.started = time.Now()
	j.queueWait = j.started.Sub(j.queued)
	opt := j.reqOpt
	opt.Workers = j.granted
	g, pol, err := j.prepare(opt)
	if err != nil {
		j.err = err
		e.completeJob(j, false)
		return
	}
	helpers := e.floaters()
	ex, err := rt.NewExecutor(g, pol, rt.Options{
		Workers:           j.granted,
		Helpers:           helpers,
		ExternalWorkspace: true,
		Trace:             opt.Trace,
		Noise:             opt.Noise,
		Lend:              func() { e.lendSignal(j) },
	})
	if err != nil {
		j.err = err
		e.completeJob(j, false)
		return
	}
	j.ex = ex
	j.helperSlots = make(chan int, helpers)
	for s := 0; s < helpers; s++ {
		j.helperSlots <- j.granted + s
	}
	// The seeded roots may already include shared work.
	j.lendHint.Store(true)
	j.nextSeat = 1 // seat 0 is ours
	e.mu.Lock()
	e.run = append(e.run, j)
	// Open seats and lending slots are up for grabs; queued jobs may
	// also now start on other workers.
	e.work.Broadcast()
	e.mu.Unlock()
	e.driveJob(j, 0)
}

// lendSignal is the executor's Lend hook: shared work was published
// while every reserved worker of j was busy. Raise the job's hint and
// poke one parked pool worker. The engine lock is taken so the signal
// cannot slip between a parked worker's last scan and its wait.
func (e *Engine) lendSignal(j *Job) {
	if j.lendHint.CompareAndSwap(false, true) {
		e.mu.Lock()
		e.work.Signal()
		e.mu.Unlock()
	}
}

// driveJob attaches as reserved worker `seat` until the run completes;
// the first driver back finalizes the job.
func (e *Engine) driveJob(j *Job, seat int) {
	j.ex.Drive(seat)
	if !j.finishing.CompareAndSwap(false, true) {
		return
	}
	res, err := j.ex.Wait()
	if err != nil {
		j.err = err
	} else {
		j.finish(res)
	}
	e.completeJob(j, true)
}

// completeJob releases the job's grant, retires it from the running
// set, records stats and wakes submitters waiting on admission
// capacity.
func (e *Engine) completeJob(j *Job, running bool) {
	e.mu.Lock()
	e.reservedInUse -= j.granted
	e.inflight--
	if running {
		for i, r := range e.run {
			if r == j {
				e.run = append(e.run[:i], e.run[i+1:]...)
				break
			}
		}
	}
	e.work.Broadcast()
	// Exactly one admission slot was freed: wake one blocked
	// submitter, not all of them (Close is the broadcast case).
	e.capa.Signal()
	e.mu.Unlock()
	if j.err != nil {
		e.jobsFailed.Add(1)
	} else {
		e.jobsDone.Add(1)
	}
	j.span = time.Since(j.started)
	close(j.done)
}

package engine

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mat"
)

func randMatrix(t *testing.T, n int, seed int64) *mat.Dense {
	t.Helper()
	return mat.Random(n, n, rand.New(rand.NewSource(seed)))
}

// gate submits a big-lane factorization whose first task blocks until
// the returned release is closed: a deterministic way to pin the
// pool's worker while further traffic queues up behind it. waitGated
// confirms the gate holds the worker (it is live and will stay live).
func gate(t *testing.T, e *Engine) (*Job, func()) {
	t.Helper()
	release := make(chan struct{})
	var once sync.Once
	j, err := e.SubmitFactor(randMatrix(t, 96, 3), core.Options{
		Class: core.ClassLarge,
		Noise: func(int) time.Duration { once.Do(func() { <-release }); return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	var rel sync.Once
	return j, func() { rel.Do(func() { close(release) }) }
}

// waitGated polls until the engine reports a live executor — with the
// gate blocking its first task, Active stays up until release.
func waitGated(t *testing.T, e *Engine) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Active < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("gate job never started: %+v", e.Stats())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestEngineAutoClassification checks the flop cost model's routing: a
// 64x64 LU (~1.7e5 flops) classifies small, a 256x256 (~1.1e7) large,
// and explicit Class requests override the model.
func TestEngineAutoClassification(t *testing.T) {
	e, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	cases := []struct {
		n    int
		opt  core.Options
		want core.JobClass
	}{
		{64, core.Options{}, core.ClassSmall},
		{256, core.Options{}, core.ClassLarge},
		{64, core.Options{Class: core.ClassLarge}, core.ClassLarge},
		{256, core.Options{Class: core.ClassSmall}, core.ClassSmall},
	}
	for _, c := range cases {
		j, err := e.SubmitFactor(randMatrix(t, c.n, 1), c.opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Wait(); err != nil {
			t.Fatalf("n=%d: %v", c.n, err)
		}
		if j.Class() != c.want {
			t.Errorf("n=%d Class=%v: resolved %v, want %v", c.n, c.opt.Class, j.Class(), c.want)
		}
	}
	s := e.Stats()
	if s.Small.Done != 2 || s.Large.Done != 2 {
		t.Errorf("class counters: small %d large %d, want 2 and 2", s.Small.Done, s.Large.Done)
	}
	if s.Small.P50Ms <= 0 || s.Large.P50Ms <= 0 {
		t.Errorf("latency digests empty: small p50 %v, large p50 %v", s.Small.P50Ms, s.Large.P50Ms)
	}
}

// TestEngineFusesSmallBurst queues a burst of small jobs behind a
// gated job on a one-worker pool: when the worker frees up it must
// take the whole burst as one fused composite, and every member's
// result must be bit-identical to a one-shot run at the same width.
func TestEngineFusesSmallBurst(t *testing.T) {
	e, err := New(Options{Workers: 1, MaxInflight: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	big, release := gate(t, e)
	waitGated(t, e)

	const burst = 4
	mats := make([]*mat.Dense, burst)
	jobs := make([]*Job, burst)
	for i := range jobs {
		mats[i] = randMatrix(t, 64, int64(100+i))
		jobs[i], err = e.SubmitFactor(mats[i].Clone(), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
	}
	release()
	if err := big.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		if err := j.Wait(); err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
		if j.Granted() != 1 {
			t.Errorf("member %d granted %d, want member width 1", i, j.Granted())
		}
		want, err := core.Factor(mats[i], core.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		got := j.Factorization()
		if !mat.Equal(got.L, want.L, 0) || !mat.Equal(got.U, want.U, 0) {
			t.Errorf("member %d: fused result differs from one-shot run", i)
		}
	}
	s := e.Stats()
	if s.FusionBatches != 1 || s.FusedJobs != burst {
		t.Errorf("fusion stats: %d batches carrying %d jobs, want 1 carrying %d",
			s.FusionBatches, s.FusedJobs, burst)
	}
	if s.JobsDone != burst+1 {
		t.Errorf("JobsDone %d, want %d", s.JobsDone, burst+1)
	}
}

// TestEngineExpressOvertakesBigLane queues a big job and then a small
// job behind a gated job on a one-worker pool: with traffic shaping
// the small job must complete before the earlier-arrived big job; in
// FIFO baseline mode arrival order must win instead.
func TestEngineExpressOvertakesBigLane(t *testing.T) {
	run := func(t *testing.T, fifo bool) (smallFirst bool) {
		e, err := New(Options{Workers: 1, FIFO: fifo})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		gated, release := gate(t, e)
		waitGated(t, e)
		big, err := e.SubmitFactor(randMatrix(t, 256, 4), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		small, err := e.SubmitFactor(randMatrix(t, 64, 5), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		release()
		if err := gated.Wait(); err != nil {
			t.Fatal(err)
		}
		if err := big.Wait(); err != nil {
			t.Fatal(err)
		}
		if err := small.Wait(); err != nil {
			t.Fatal(err)
		}
		// The pool is serial, so start order is the service order.
		return small.started.Before(big.started)
	}
	if !run(t, false) {
		t.Error("two-lane: small job did not overtake the earlier big job on a serial pool")
	}
	if run(t, true) {
		t.Error("FIFO baseline: arrival order was not preserved")
	}
}

// TestEngineLaxityOrdersLane checks SLO ordering inside a lane: of two
// queued big jobs the one with a deadline must start first even though
// it arrived second.
func TestEngineLaxityOrdersLane(t *testing.T) {
	e, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	gated, release := gate(t, e)
	waitGated(t, e)
	relaxed, err := e.SubmitFactor(randMatrix(t, 256, 4), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	urgent, err := e.SubmitFactor(randMatrix(t, 256, 5), core.Options{Deadline: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	release()
	if err := gated.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := relaxed.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := urgent.Wait(); err != nil {
		t.Fatal(err)
	}
	// The pool is serial, so start order is the service order.
	if !urgent.started.Before(relaxed.started) {
		t.Errorf("deadline job started %v, after the no-deadline job at %v",
			urgent.started, relaxed.started)
	}
}

// TestEngineShedsInfeasibleDeadline submits work whose estimated
// service time cannot fit its deadline: the submission must fail with
// ErrDeadlineInfeasible without consuming an admission slot, a queue
// entry or a reservation.
func TestEngineShedsInfeasibleDeadline(t *testing.T) {
	e, err := New(Options{Workers: 2, MaxInflight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	_, err = e.SubmitFactor(randMatrix(t, 256, 1), core.Options{Deadline: time.Nanosecond})
	if !errors.Is(err, ErrDeadlineInfeasible) {
		t.Fatalf("err %v, want ErrDeadlineInfeasible", err)
	}
	if _, err := e.SubmitFactor(randMatrix(t, 64, 2), core.Options{Deadline: -time.Second}); !errors.Is(err, ErrDeadlineInfeasible) {
		t.Fatalf("negative deadline: err %v, want ErrDeadlineInfeasible", err)
	}
	s := e.Stats()
	if s.Shed != 2 {
		t.Errorf("Shed %d, want 2", s.Shed)
	}
	if s.Pending != 0 || s.ReservedInUse != 0 {
		t.Errorf("shed submission left state behind: pending %d reserved %d", s.Pending, s.ReservedInUse)
	}
	if s.JobsFailed != 0 {
		t.Errorf("sheds counted as failed jobs: %d", s.JobsFailed)
	}
	// The admission slot was not consumed: a MaxInflight=1 engine still
	// accepts (and completes) a feasible job.
	j, err := e.SubmitFactor(randMatrix(t, 64, 3), core.Options{Deadline: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineSubmitCtxCancelsQueued cancels a job that is waiting in a
// lane: it must be marked failed with the context's cause and never
// execute. Jobs already running are unaffected.
func TestEngineSubmitCtxCancelsQueued(t *testing.T) {
	e, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	gated, release := gate(t, e)
	waitGated(t, e)

	ctx, cancel := context.WithCancelCause(context.Background())
	queued, err := e.SubmitFactorCtx(ctx, randMatrix(t, 128, 2), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cause := errors.New("client went away")
	cancel(cause)
	if err := queued.Wait(); !errors.Is(err, cause) {
		t.Fatalf("cancelled job err %v, want cause %v", err, cause)
	}
	if queued.Factorization() != nil || queued.Span() != 0 {
		t.Error("cancelled job executed")
	}
	release()
	if err := gated.Wait(); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Cancelled != 1 {
		t.Errorf("Cancelled %d, want 1", s.Cancelled)
	}
	if s.JobsFailed != 1 {
		t.Errorf("JobsFailed %d, want 1 (the cancelled job)", s.JobsFailed)
	}
}

// TestEngineSubmitCtxUnblocksAdmission cancels a submission that is
// blocked waiting for an admission slot: Submit must return the
// context error instead of blocking forever.
func TestEngineSubmitCtxUnblocksAdmission(t *testing.T) {
	e, err := New(Options{Workers: 1, MaxInflight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	gated, release := gate(t, e)
	waitGated(t, e)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := e.SubmitFactorCtx(ctx, randMatrix(t, 64, 2), core.Options{})
		errc <- err
	}()
	// Let the submitter reach the capacity wait, then cancel it.
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled submission still blocked in admission")
	}
	release()
	if err := gated.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineFusedMixedKinds fuses factor and solve jobs in one burst
// and checks each member's result against its one-shot equivalent.
func TestEngineFusedMixedKinds(t *testing.T) {
	e, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	a := randMatrix(t, 64, 11)
	fac, err := core.Factor(a.Clone(), core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 64)
	for i := range b {
		b[i] = float64(i + 1)
	}
	bm := mat.FromColMajor(len(b), 1, len(b), append([]float64(nil), b...))
	wantX, err := fac.SolveMany(bm, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	gated, release := gate(t, e)
	waitGated(t, e)
	jf, err := e.SubmitFactor(a.Clone(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	js, err := e.SubmitSolve(fac, b, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	release()
	if err := gated.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := jf.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := js.Wait(); err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(jf.Factorization().L, fac.L, 0) || !mat.Equal(jf.Factorization().U, fac.U, 0) {
		t.Error("fused factor differs from one-shot factor")
	}
	for i, want := range wantX.Col(0) {
		if js.Solution()[i] != want {
			t.Fatalf("fused solve x[%d] = %v, want %v", i, js.Solution()[i], want)
		}
	}
	if s := e.Stats(); s.FusedJobs < 2 {
		t.Errorf("FusedJobs %d, want the factor and the solve fused together", s.FusedJobs)
	}
}

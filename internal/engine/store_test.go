package engine

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mat"
)

// keptLU builds a minimal LU Kept of order n (2*n*n*8 bytes).
func keptLU(n int) Kept {
	return Kept{LU: &core.Factorization{L: mat.New(n, n), U: mat.New(n, n)}}
}

func TestStoreLRUEvictsLeastRecentlyUsed(t *testing.T) {
	s := NewStore(StoreOptions{Keep: 2})
	a := s.Put("f", keptLU(4))
	b := s.Put("f", keptLU(4))
	if _, ok := s.Get(a); !ok { // refresh a: b is now least recently used
		t.Fatalf("%s missing right after store", a)
	}
	c := s.Put("f", keptLU(4)) // evicts b, not a
	if _, ok := s.Get(a); !ok {
		t.Fatalf("recently-used %s evicted", a)
	}
	if _, ok := s.Get(b); ok {
		t.Fatalf("least-recently-used %s still resident", b)
	}
	if _, ok := s.Get(c); !ok {
		t.Fatalf("just-stored %s missing", c)
	}
	if st := s.Stats(); st.Evictions != 1 || st.Count != 2 {
		t.Fatalf("stats %+v, want 1 eviction / 2 resident", st)
	}
}

func TestStoreMemBudgetNeverEvictsNewest(t *testing.T) {
	// A 16x16 LU costs 2*16*16*8 = 4096 bytes; budget one and a half.
	s := NewStore(StoreOptions{Keep: 64, MemBudget: 6000})
	a := s.Put("f", keptLU(16))
	b := s.Put("f", keptLU(16)) // pushes bytes to 8192 > 6000: evicts a
	if st := s.Stats(); st.Count != 1 || st.Bytes != 4096 {
		t.Fatalf("after budget eviction: %d entries / %d bytes, want 1 / 4096", st.Count, st.Bytes)
	}
	if _, ok := s.Get(a); ok {
		t.Fatalf("%s survived the byte budget", a)
	}
	if _, ok := s.Get(b); !ok {
		t.Fatalf("just-stored %s was evicted", b)
	}
	// One entry alone over budget still sticks.
	big := s.Put("f", keptLU(64)) // 65536 bytes >> 6000
	if _, ok := s.Get(big); !ok {
		t.Fatalf("over-budget entry %s not retained", big)
	}
	if s.Len() != 1 {
		t.Fatalf("store holds %d entries, want only the over-budget one", s.Len())
	}
}

func TestStoreTTLLazyExpiry(t *testing.T) {
	s := NewStore(StoreOptions{Keep: 8, TTL: time.Minute})
	id := s.Put("f", keptLU(4))
	if !s.SetLastUsed(id, time.Now().Add(-2*time.Minute)) {
		t.Fatalf("%s missing before expiry", id)
	}
	if _, ok := s.Get(id); ok {
		t.Fatalf("TTL-expired %s still served", id)
	}
	if st := s.Stats(); st.Count != 0 || st.Bytes != 0 || st.Expiries != 1 {
		t.Fatalf("expired entry not reaped: %+v", st)
	}
	if s.SetLastUsed("nope", time.Now()) {
		t.Fatal("SetLastUsed invented an entry")
	}
}

func TestStorePutAsImportsAndOverwrites(t *testing.T) {
	s := NewStore(StoreOptions{Keep: 8})
	s.PutAs("f-remote-1", keptLU(4))
	if _, ok := s.Get("f-remote-1"); !ok {
		t.Fatal("imported entry missing")
	}
	// Overwriting the same id replaces bytes, not duplicates.
	s.PutAs("f-remote-1", keptLU(8))
	if st := s.Stats(); st.Count != 1 || st.Bytes != 2*8*8*8 || st.Imports != 2 {
		t.Fatalf("after overwrite: %+v", st)
	}
	ids := s.IDs()
	if len(ids) != 1 || ids[0] != "f-remote-1" {
		t.Fatalf("IDs %v", ids)
	}
	if !s.Remove("f-remote-1") || s.Remove("f-remote-1") {
		t.Fatal("Remove semantics broken")
	}
	if st := s.Stats(); st.Count != 0 || st.Bytes != 0 {
		t.Fatalf("after remove: %+v", st)
	}
}

func TestStoreGeneratedIDsAndListing(t *testing.T) {
	s := NewStore(StoreOptions{Keep: 16})
	var want []string
	for i := 0; i < 3; i++ {
		want = append(want, s.Put("f", keptLU(2)))
	}
	c := s.Put("c", Kept{Chol: &core.CholeskyFactorization{L: mat.New(2, 2)}})
	want = append(want, c)
	if want[0] != "f-1" || c != "c-4" {
		t.Fatalf("generated ids %v (one shared counter expected)", want)
	}
	ids := s.IDs()
	if len(ids) != 4 {
		t.Fatalf("IDs %v", ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("IDs not sorted: %v", ids)
		}
	}
	k, ok := s.Get(c)
	if !ok || k.Chol == nil || k.LU != nil || k.N() != 2 {
		t.Fatalf("cholesky entry round-trip: %+v ok=%v", k, ok)
	}
}

func TestStoreInvalidKeptPanics(t *testing.T) {
	s := NewStore(StoreOptions{Keep: 1})
	for name, fn := range map[string]func(){
		"both nil":  func() { s.Put("f", Kept{}) },
		"both set":  func() { s.Put("f", Kept{LU: keptLU(2).LU, Chol: &core.CholeskyFactorization{L: mat.New(2, 2)}}) },
		"empty id":  func() { s.PutAs("", keptLU(2)) },
		"putas nil": func() { s.PutAs("x", Kept{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore(StoreOptions{Keep: 8, MemBudget: 1 << 20, TTL: time.Hour})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				id := s.Put("f", keptLU(4))
				s.PutAs(fmt.Sprintf("x-%d-%d", g, i), keptLU(4))
				s.Get(id)
				s.IDs()
				s.Stats()
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if s.Len() > 8 {
		t.Fatalf("keep bound violated: %d resident", s.Len())
	}
}

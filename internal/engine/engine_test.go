package engine

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/mat"
	"repro/internal/trace"
)

const tol = 1e-9

var allSchedulers = []core.Scheduler{
	core.ScheduleStatic, core.ScheduleDynamic, core.ScheduleHybrid, core.ScheduleWorkStealing,
}

// sameFactorization fails unless f and ref have bit-identical pivot
// sequences and factors.
func sameFactorization(t *testing.T, tag string, f, ref *core.Factorization) {
	t.Helper()
	for i := range ref.Perm {
		if f.Perm[i] != ref.Perm[i] {
			t.Fatalf("%s: pivot %d differs: %d vs %d", tag, i, f.Perm[i], ref.Perm[i])
		}
	}
	for i := range ref.L.Data {
		if f.L.Data[i] != ref.L.Data[i] {
			t.Fatalf("%s: L[%d] differs: %x vs %x",
				tag, i, math.Float64bits(f.L.Data[i]), math.Float64bits(ref.L.Data[i]))
		}
	}
	for i := range ref.U.Data {
		if f.U.Data[i] != ref.U.Data[i] {
			t.Fatalf("%s: U[%d] differs: %x vs %x",
				tag, i, math.Float64bits(f.U.Data[i]), math.Float64bits(ref.U.Data[i]))
		}
	}
}

// TestEngineConcurrentJobsBitIdentical is the engine's end-to-end
// guarantee: N simultaneous Factor jobs across every scheduler and
// mixed requested worker counts produce pivots/L/U bit-identical to
// the same jobs run serially through the one-shot path at the granted
// share (the graph's dataflow fixes the arithmetic; a shared resident
// pool only reorders it). Run under -race to certify the engine's
// attach/detach and lending paths.
func TestEngineConcurrentJobsBitIdentical(t *testing.T) {
	e, err := New(Options{Workers: 4, MaxInflight: 16, DynamicRatio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	rng := rand.New(rand.NewSource(101))
	type spec struct {
		a   *mat.Dense
		opt core.Options
		job *Job
	}
	var specs []*spec
	sizes := [][2]int{{64, 64}, {96, 96}, {72, 48}, {80, 80}}
	if testing.Short() {
		sizes = sizes[:2]
	}
	for si, sz := range sizes {
		for wi, workers := range []int{1, 2, 4} {
			s := &spec{
				a: mat.Random(sz[0], sz[1], rng),
				opt: core.Options{
					Block: 8, Workers: workers,
					Scheduler:    allSchedulers[(si+wi)%len(allSchedulers)],
					DynamicRatio: 0.3, Seed: int64(si),
				},
			}
			specs = append(specs, s)
		}
	}
	// Submit everything at once so jobs genuinely overlap on the pool.
	for _, s := range specs {
		j, err := e.SubmitFactor(s.a, s.opt)
		if err != nil {
			t.Fatal(err)
		}
		s.job = j
	}
	for i, s := range specs {
		if err := s.job.Wait(); err != nil {
			t.Fatalf("job %d (%v): %v", i, s.opt.Scheduler, err)
		}
		// The serial rerun of the same job: identical options at the
		// share the engine granted (the parallelism the task graph was
		// built for).
		ser := s.opt
		ser.Workers = s.job.Granted()
		ref, err := core.Factor(s.a, ser)
		if err != nil {
			t.Fatalf("serial rerun %d: %v", i, err)
		}
		tag := s.opt.Scheduler.String()
		sameFactorization(t, tag, s.job.Factorization(), ref)
		if r := core.Residual(s.a, s.job.Factorization()); r > tol {
			t.Fatalf("job %d residual %g", i, r)
		}
	}
}

// TestEngineJobsOverlap proves two jobs execute genuinely concurrently
// on the shared pool: each job's first executed task blocks until the
// other job has also executed one, a rendezvous that only completes if
// the engine runs both at once.
func TestEngineJobsOverlap(t *testing.T) {
	e, err := New(Options{Workers: 4, MaxInflight: 8, DynamicRatio: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	rng := rand.New(rand.NewSource(7))
	mkNoise := func(mine, other chan struct{}, timedOut *bool) func(int) time.Duration {
		var once sync.Once
		return func(int) time.Duration {
			once.Do(func() {
				close(mine)
				select {
				case <-other:
				case <-time.After(20 * time.Second):
					*timedOut = true
				}
			})
			return 0
		}
	}
	c1, c2 := make(chan struct{}), make(chan struct{})
	var to1, to2 bool
	a1, a2 := mat.Random(64, 64, rng), mat.Random(64, 64, rng)
	j1, err := e.SubmitFactor(a1, core.Options{
		Block: 8, Workers: 1, Scheduler: core.ScheduleHybrid, DynamicRatio: 0.3,
		Noise: mkNoise(c1, c2, &to1),
	})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := e.SubmitFactor(a2, core.Options{
		Block: 8, Workers: 1, Scheduler: core.ScheduleHybrid, DynamicRatio: 0.3,
		Noise: mkNoise(c2, c1, &to2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := j2.Wait(); err != nil {
		t.Fatal(err)
	}
	if to1 || to2 {
		t.Fatal("rendezvous timed out: the jobs did not overlap")
	}
	if r := core.Residual(a1, j1.Factorization()); r > tol {
		t.Fatalf("job 1 residual %g", r)
	}
	if r := core.Residual(a2, j2.Factorization()); r > tol {
		t.Fatalf("job 2 residual %g", r)
	}
}

// TestEngineSingularFallback routes the tournament prefix-fallback
// path (an exactly singular chunk confined to one panel region)
// through the engine under every scheduler: the jobs must complete
// with normal residuals and match their serial reruns bit for bit.
func TestEngineSingularFallback(t *testing.T) {
	e, err := New(Options{Workers: 4, MaxInflight: 8, DynamicRatio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	rng := rand.New(rand.NewSource(71))
	a := mat.Random(64, 64, rng)
	// Blank the panel columns of rows 4..31 so the first tournament
	// chunk of panel 0 is exactly singular while the matrix stays
	// nonsingular (the same construction as core's singular tests).
	for i := 4; i < 32; i++ {
		for j := 0; j < 8; j++ {
			a.Set(i, j, 0)
		}
	}
	var jobs []*Job
	var opts []core.Options
	for _, s := range allSchedulers {
		opt := core.Options{
			Layout: layout.BCL, Block: 8, Workers: 4,
			Scheduler: s, DynamicRatio: 0.25,
		}
		j, err := e.SubmitFactor(a, opt)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
		opts = append(opts, opt)
	}
	for i, j := range jobs {
		if err := j.Wait(); err != nil {
			t.Fatalf("%v: singular chunk aborted the engine job: %v", opts[i].Scheduler, err)
		}
		if r := core.Residual(a, j.Factorization()); r > tol {
			t.Fatalf("%v: residual %g", opts[i].Scheduler, r)
		}
		ser := opts[i]
		ser.Workers = j.Granted()
		ref, err := core.Factor(a, ser)
		if err != nil {
			t.Fatal(err)
		}
		sameFactorization(t, opts[i].Scheduler.String(), j.Factorization(), ref)
	}
}

// TestEngineSolve round-trips Factor then Solve through the engine.
func TestEngineSolve(t *testing.T) {
	e, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	a := core.RandomSPD(48, 3)
	fj, err := e.SubmitFactor(a, core.Options{Block: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := fj.Wait(); err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 48)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	sj, err := e.SubmitSolve(fj.Factorization(), b, core.Options{Block: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sj.Wait(); err != nil {
		t.Fatal(err)
	}
	if r := core.SolveResidual(a, sj.Solution(), b); r > tol {
		t.Fatalf("solve residual %g", r)
	}
}

// TestEngineAdmissionBound holds the pool busy with a gated job and
// checks TrySubmit fails with ErrSaturated exactly at MaxInflight.
func TestEngineAdmissionBound(t *testing.T) {
	e, err := New(Options{Workers: 1, MaxInflight: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	gate := make(chan struct{})
	var once sync.Once
	rng := rand.New(rand.NewSource(5))
	a := mat.Random(32, 32, rng)
	blocked, err := e.SubmitFactor(a, core.Options{
		Block: 8, Workers: 1,
		Noise: func(int) time.Duration { once.Do(func() { <-gate }); return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := e.TrySubmitFactor(a, core.Options{Block: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.TrySubmitFactor(a, core.Options{Block: 8, Workers: 1}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("expected ErrSaturated at MaxInflight, got %v", err)
	}
	close(gate)
	if err := blocked.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := queued.Wait(); err != nil {
		t.Fatal(err)
	}
	// Capacity freed: submission works again.
	j, err := e.TrySubmitFactor(a, core.Options{Block: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineStaticDynamicKnob pins the two A/B endpoints of the
// inter-job split: at DynamicRatio 0 the pool partitions statically
// and never lends; at 1 every job runs on exactly one guaranteed
// worker plus lending, and with a shared-queue scheduler the floaters
// demonstrably execute foreign tasks.
func TestEngineStaticDynamicKnob(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := mat.Random(128, 128, rng)

	est, err := New(Options{Workers: 4, MaxInflight: 8, DynamicRatio: 0})
	if err != nil {
		t.Fatal(err)
	}
	var jobs []*Job
	for i := 0; i < 4; i++ {
		j, err := est.SubmitFactor(a, core.Options{
			Block: 16, Workers: 2, Scheduler: core.ScheduleDynamic,
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		if err := j.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if lends := est.Stats().Lends; lends != 0 {
		t.Fatalf("fully static engine lent %d times", lends)
	}
	est.Close()

	edy, err := New(Options{Workers: 4, MaxInflight: 8, DynamicRatio: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer edy.Close()
	// One job with a single reserved driver and three floaters. The
	// driver deterministically stalls (Noise hook) on its fourth task —
	// after panel 0's Final has fanned the U tasks into the shared heap
	// — until a floater has executed one, so lending must happen even
	// on a single-CPU host where a fast driver would otherwise drain
	// the whole graph before a floater ever runs.
	var driverTasks int
	floaterRan := make(chan struct{})
	var floaterOnce sync.Once
	timedOut := false
	// The trace is sized for the REQUESTED worker count; floater spans
	// land on lending slots beyond it, which the executor must grow the
	// trace to hold rather than panic (regression: out-of-range merge).
	tr := trace.New(4)
	j, err := edy.SubmitFactor(a, core.Options{
		Block: 16, Workers: 4, Scheduler: core.ScheduleDynamic, Trace: tr,
		Noise: func(w int) time.Duration {
			if w != 0 {
				floaterOnce.Do(func() { close(floaterRan) })
				return 0
			}
			driverTasks++
			if driverTasks == 4 {
				select {
				case <-floaterRan:
				case <-time.After(20 * time.Second):
					timedOut = true
				}
			}
			return 0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	if timedOut {
		t.Fatal("no floater executed a task while the reserved driver was stalled")
	}
	if j.Granted() != 1 {
		t.Fatalf("fully dynamic engine granted %d reserved workers, want 1", j.Granted())
	}
	if lends := edy.Stats().Lends; lends == 0 {
		t.Fatal("fully dynamic engine never lent a worker to a shared-queue job")
	}
	spans, helperSpans := 0, 0
	for w, s := range tr.Spans {
		spans += len(s)
		if w >= 1 { // slots beyond the single reserved driver
			helperSpans += len(s)
		}
	}
	if want := j.Factorization().Stats.Total; spans != want {
		t.Fatalf("trace recorded %d spans want %d", spans, want)
	}
	if helperSpans == 0 {
		t.Fatal("no spans on lending-slot timelines despite a forced lend")
	}
}

// TestEngineCloseSemantics: queued jobs are rejected with ErrClosed,
// running jobs complete, and later submissions fail.
func TestEngineCloseSemantics(t *testing.T) {
	e, err := New(Options{Workers: 1, MaxInflight: 4})
	if err != nil {
		t.Fatal(err)
	}
	gate, started := make(chan struct{}), make(chan struct{})
	var once sync.Once
	rng := rand.New(rand.NewSource(13))
	a := mat.Random(32, 32, rng)
	running, err := e.SubmitFactor(a, core.Options{
		Block: 8, Workers: 1,
		Noise: func(int) time.Duration {
			once.Do(func() { close(started); <-gate })
			return 0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the job is genuinely running before Close
	queued, err := e.SubmitFactor(a, core.Options{Block: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	go func() { e.Close(); close(closed) }()
	// Close must reject the queued job even while a job is running.
	if err := queued.Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("queued job got %v, want ErrClosed", err)
	}
	close(gate)
	if err := running.Wait(); err != nil {
		t.Fatalf("running job must complete across Close: %v", err)
	}
	<-closed
	if _, err := e.SubmitFactor(a, core.Options{Block: 8}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submission after Close got %v, want ErrClosed", err)
	}
}

// TestEngineCloseDuringStartGap races Close against the window where a
// multi-seat job has been popped from the queue but not yet published
// to the running set (its starter is building the graph outside the
// engine lock). Workers must not treat the pool as drained during that
// gap: the job's open reserved seats still need them, and exiting
// early deadlocks the job and Close (regression test — exit is keyed
// off inflight, which does count in-gap jobs).
func TestEngineCloseDuringStartGap(t *testing.T) {
	iters := 50
	if testing.Short() {
		iters = 10
	}
	rng := rand.New(rand.NewSource(31))
	a := mat.Random(192, 192, rng) // sizeable graph build widens the gap
	for i := 0; i < iters; i++ {
		e, err := New(Options{Workers: 2, MaxInflight: 4})
		if err != nil {
			t.Fatal(err)
		}
		j, err := e.SubmitFactor(a, core.Options{Block: 8, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		closed := make(chan struct{})
		go func() { e.Close(); close(closed) }()
		select {
		case <-j.Done():
		case <-time.After(30 * time.Second):
			t.Fatal("job stranded: a worker exited while its reserved seat was pending")
		}
		if err := j.Wait(); err != nil && !errors.Is(err, ErrClosed) {
			t.Fatal(err)
		}
		select {
		case <-closed:
		case <-time.After(30 * time.Second):
			t.Fatal("Close hung")
		}
	}
}

// TestEngineStress floods a small pool with concurrent mixed-size,
// mixed-scheduler Factor and Solve traffic from several submitter
// goroutines — the short-mode engine stress for the -race job.
func TestEngineStress(t *testing.T) {
	e, err := New(Options{Workers: 4, MaxInflight: 8, DynamicRatio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	submitters, perSub := 4, 6
	if testing.Short() {
		submitters, perSub = 2, 3
	}
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + s)))
			for k := 0; k < perSub; k++ {
				n := 24 + 8*((s+k)%6)
				a := mat.Random(n, n, rng)
				opt := core.Options{
					Block: 8, Workers: 1 + (s+k)%4,
					Scheduler:    allSchedulers[(s+k)%len(allSchedulers)],
					DynamicRatio: 0.25, Seed: int64(k),
				}
				j, err := e.SubmitFactor(a, opt)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if err := j.Wait(); err != nil {
					t.Errorf("factor %dx%d: %v", n, n, err)
					return
				}
				if r := core.Residual(a, j.Factorization()); r > tol {
					t.Errorf("factor %dx%d residual %g", n, n, r)
					return
				}
				b := make([]float64, n)
				for i := range b {
					b[i] = rng.NormFloat64()
				}
				sj, err := e.SubmitSolve(j.Factorization(), b, opt)
				if err != nil {
					t.Errorf("solve submit: %v", err)
					return
				}
				if err := sj.Wait(); err != nil {
					t.Errorf("solve: %v", err)
					return
				}
				if r := core.SolveResidual(a, sj.Solution(), b); r > tol {
					t.Errorf("solve residual %g", r)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	st := e.Stats()
	if st.JobsFailed != 0 {
		t.Fatalf("%d jobs failed", st.JobsFailed)
	}
	if want := int64(2 * submitters * perSub); st.JobsDone != want {
		t.Fatalf("JobsDone %d want %d", st.JobsDone, want)
	}
}

// TestEngineSolveMultiRHS pushes an n x nrhs block through the engine's
// blocked solve graph and checks every column against the scalar
// oracle residual-wise.
func TestEngineSolveMultiRHS(t *testing.T) {
	e, err := New(Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	rng := rand.New(rand.NewSource(41))
	const n, nrhs = 96, 6
	a := mat.Random(n, n, rng)
	fj, err := e.SubmitFactor(a, core.Options{Block: 16, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := fj.Wait(); err != nil {
		t.Fatal(err)
	}
	b := mat.Random(n, nrhs, rng)
	sj, err := e.SubmitSolveMany(fj.Factorization(), b, core.Options{
		Block: 16, Workers: 2, Scheduler: core.ScheduleHybrid, DynamicRatio: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sj.Wait(); err != nil {
		t.Fatal(err)
	}
	x := sj.SolutionMatrix()
	if x == nil || x.Rows != n || x.Cols != nrhs {
		t.Fatalf("solution block missing or misshapen: %+v", x)
	}
	for j := 0; j < nrhs; j++ {
		if r := core.SolveResidual(a, x.Col(j), b.Col(j)); r > tol {
			t.Fatalf("col %d residual %g", j, r)
		}
	}
}

// TestEngineSolveUsesMultipleWorkers is the acceptance check that a
// solve job with granted share > 1 is a real parallel citizen of the
// pool: its trace must show solve tasks executed on more than one
// worker timeline. A rendezvous in the noise hook makes the check
// deterministic on any machine (including a contended 1-CPU CI
// container): once the ready pool is deep, the first worker blocks
// until a second worker has also executed a task, which can only
// happen if the job truly runs on several of its granted seats.
func TestEngineSolveUsesMultipleWorkers(t *testing.T) {
	e, err := New(Options{Workers: 4, DynamicRatio: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	rng := rand.New(rand.NewSource(43))
	const n, nrhs = 512, 16
	a := mat.RandomDiagDominant(n, rng)
	fj, err := e.SubmitFactor(a, core.Options{Block: 32, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := fj.Wait(); err != nil {
		t.Fatal(err)
	}
	b := mat.Random(n, nrhs, rng)

	var mu sync.Mutex
	seen := map[int]bool{}
	completions := 0
	release := make(chan struct{})
	var releaseOnce sync.Once
	timedOut := false
	noise := func(w int) time.Duration {
		mu.Lock()
		seen[w] = true
		workers := len(seen)
		completions++
		c := completions
		mu.Unlock()
		if workers >= 2 {
			releaseOnce.Do(func() { close(release) })
			return 0
		}
		// Successors are resolved after this hook returns, so only
		// block once earlier completions have already published a deep
		// ready pool for the other seats to drain.
		if c >= 3 {
			select {
			case <-release:
			case <-time.After(20 * time.Second):
				mu.Lock()
				timedOut = true
				mu.Unlock()
				releaseOnce.Do(func() { close(release) })
			}
		}
		return 0
	}

	tr := trace.New(4)
	sj, err := e.SubmitSolveMany(fj.Factorization(), b, core.Options{
		Block: 32, Workers: 4, Scheduler: core.ScheduleDynamic, Trace: tr, Noise: noise,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sj.Wait(); err != nil {
		t.Fatal(err)
	}
	if g := sj.Granted(); g != 4 {
		t.Fatalf("granted %d, want the full static share 4", g)
	}
	if timedOut {
		t.Fatal("rendezvous timed out: no second worker ever executed a solve task")
	}
	busy := 0
	for w := 0; w < tr.Workers; w++ {
		if len(tr.Spans[w]) > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("solve tasks all ran on one worker; want them spread over the granted share")
	}
	// And the arithmetic is still right under the contention.
	x := sj.SolutionMatrix()
	for j := 0; j < nrhs; j++ {
		if r := core.SolveResidual(a, x.Col(j), b.Col(j)); r > tol {
			t.Fatalf("col %d residual %g", j, r)
		}
	}
}

// TestEngineCholesky routes a Cholesky factorization and its solves
// through the pool: SubmitCholeskyFactor must match a one-shot
// core.FactorCholesky bit-for-bit at the granted share, and
// SubmitCholeskySolve must hit the usual residual bound.
func TestEngineCholesky(t *testing.T) {
	e, err := New(Options{Workers: 4, DynamicRatio: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	a := core.RandomSPD(96, 9)
	opt := core.Options{Block: 16, Workers: 2, Scheduler: core.ScheduleHybrid, DynamicRatio: 0.25}
	cj, err := e.SubmitCholeskyFactor(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := cj.Wait(); err != nil {
		t.Fatal(err)
	}
	cf := cj.CholeskyFactorization()
	if cf == nil {
		t.Fatal("no cholesky result")
	}
	if r := core.CholeskyResidual(a, cf); r > tol {
		t.Fatalf("cholesky residual %g", r)
	}
	refOpt := opt
	refOpt.Workers = cj.Granted()
	ref, err := core.FactorCholesky(a, refOpt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.L.Data {
		if cf.L.Data[i] != ref.L.Data[i] {
			t.Fatalf("L[%d] differs from one-shot reference: %x vs %x",
				i, math.Float64bits(cf.L.Data[i]), math.Float64bits(ref.L.Data[i]))
		}
	}
	b := make([]float64, 96)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	sj, err := e.SubmitCholeskySolve(cf, b, core.Options{Block: 16, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sj.Wait(); err != nil {
		t.Fatal(err)
	}
	if r := core.SolveResidual(a, sj.Solution(), b); r > tol {
		t.Fatalf("cholesky solve residual %g", r)
	}
}

// TestEngineSolveDegradedReportsPrefix: a solve against a degraded
// factorization must fail with the typed *core.SingularSolveError so
// service layers can report the solvable prefix, and the failure must
// not poison the pool for later jobs.
func TestEngineSolveDegradedReportsPrefix(t *testing.T) {
	e, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	rng := rand.New(rand.NewSource(47))
	a := mat.Random(64, 64, rng)
	fj, err := e.SubmitFactor(a, core.Options{Block: 16, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := fj.Wait(); err != nil {
		t.Fatal(err)
	}
	f := fj.Factorization()
	for j := 40; j < 64; j++ {
		f.U.Set(j, j, 0)
	}
	b := make([]float64, 64)
	sj, err := e.SubmitSolve(f, b, core.Options{Block: 16, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var se *core.SingularSolveError
	if err := sj.Wait(); !errors.As(err, &se) || se.Prefix != 40 || se.N != 64 {
		t.Fatalf("want SingularSolveError prefix 40 of 64, got %v", err)
	}
	// The pool must still serve fresh jobs after the failed solve.
	g, err := e.SubmitFactor(a, core.Options{Block: 16, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
}

package engine

// Traffic-shaped admission: the machinery that turned the engine's
// strict FIFO queue into two-lane, class-aware, SLO-aware scheduling.
//
// Under a realistic mix — many tiny factors and solves plus a few huge
// factorizations — FIFO admission has two pathologies the paper's
// non-uniform-load analysis (Beaumont & Marchal) predicts: tiny jobs
// each pay a whole-worker static reservation, and one huge job at the
// queue head blocks everyone behind it. Admission therefore routes by
// job *class*, not arrival order:
//
//   - small jobs enter an express lane; when a worker picks the lane
//     up it fuses every waiting (fusable) small job into one composite
//     forest (dag.Fuse) that shares a single reservation;
//   - big jobs enter a lane whose total reservation is bounded to a
//     configurable share of the pool whenever small jobs are waiting,
//     so they cannot head-of-line-block the express traffic;
//   - within each lane jobs are ordered by laxity — the latest moment
//     the job may start and still meet its deadline — so SLO traffic
//     outranks best-effort arrivals; and
//   - a submission whose estimated service time already exceeds its
//     deadline is shed with ErrDeadlineInfeasible before it consumes
//     an admission slot or a reservation (the HTTP tier turns this
//     into a cheap 503).

import (
	"container/heap"
	"errors"
	"math"
	"sort"
	"time"

	"repro/internal/core"
)

// ErrDeadlineInfeasible is returned by submissions whose estimated
// service time already exceeds their deadline: queueing them could only
// burn workers on work that will miss its SLO, so they are shed before
// consuming an admission slot or a reservation. Detect with errors.Is.
var ErrDeadlineInfeasible = errors.New("engine: deadline infeasible, job shed")

// lane identifies the admission lane a job was routed to.
type lane uint8

const (
	laneSmall lane = iota // express lane: fused composite DAGs
	laneBig               // bounded lane: at most BigShare of the pool
)

// jobState tracks a job through admission; guarded by Engine.mu.
type jobState uint8

const (
	jsQueued  jobState = iota // in a lane queue
	jsStarted                 // popped by a worker (running or failing)
	jsDone                    // completed, cancelled or shed
)

// jobRole distinguishes how a Job relates to reservations.
type jobRole uint8

const (
	// roleSolo is a job with its own reservation (the pre-fusion
	// universal case).
	roleSolo jobRole = iota
	// roleMember is a small job executing inside a fused composite: it
	// holds an admission slot but no reservation of its own.
	roleMember
	// roleComposite is the engine-internal job driving a fused forest:
	// it holds the shared reservation but no admission slot.
	roleComposite
)

// noDeadline is the startBy key of jobs without a deadline: they sort
// after every deadline job, among themselves by arrival.
const noDeadline = int64(math.MaxInt64)

// estimateFlops is the admission cost model: the leading-order flop
// count of the job, used to classify small vs large, to order lanes by
// laxity and to decide deadline feasibility. It deliberately ignores
// lower-order terms — admission needs relative magnitudes, not exact
// counts.
func estimateFlops(j *Job) float64 {
	switch j.kind {
	case factorJob:
		m, n := float64(j.a.Rows), float64(j.a.Cols)
		r := math.Min(m, n)
		// LU of m x n: r^2 * (max(m,n) - r/3); 2/3 n^3 when square.
		return r * r * (math.Max(m, n) - r/3)
	case choleskyJob:
		n := float64(j.a.Rows)
		return n * n * n / 3
	default: // solveJob: forward + backward sweep, n^2*nrhs each.
		n, nrhs := float64(j.bmat.Rows), float64(j.bmat.Cols)
		return 2 * n * n * nrhs
	}
}

// laneQueue is one admission lane: a priority queue ordered by startBy
// (the laxity key: absolute deadline minus estimated service time, i.e.
// the latest moment the job may start and still meet its SLO) with
// arrival order breaking ties and ordering the no-deadline bulk.
// Cancelled jobs are removed lazily at peek time; depth counts only
// live entries. Guarded by Engine.mu.
type laneQueue struct {
	jobs  []*Job
	depth int
}

func (q *laneQueue) Len() int { return len(q.jobs) }
func (q *laneQueue) Less(i, j int) bool {
	a, b := q.jobs[i], q.jobs[j]
	if a.startBy != b.startBy {
		return a.startBy < b.startBy
	}
	return a.seq < b.seq
}
func (q *laneQueue) Swap(i, j int) { q.jobs[i], q.jobs[j] = q.jobs[j], q.jobs[i] }
func (q *laneQueue) Push(x any)    { q.jobs = append(q.jobs, x.(*Job)) }
func (q *laneQueue) Pop() any {
	old := q.jobs
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	q.jobs = old[:n-1]
	return j
}

// push enqueues a live job.
func (q *laneQueue) push(j *Job) {
	heap.Push(q, j)
	q.depth++
}

// peek returns the most urgent live job without removing it, dropping
// lazily-cancelled entries on the way; nil when the lane is empty.
func (q *laneQueue) peek() *Job {
	for len(q.jobs) > 0 {
		if j := q.jobs[0]; j.state == jsQueued {
			return j
		}
		heap.Pop(q)
	}
	return nil
}

// pop removes and returns the most urgent live job, or nil.
func (q *laneQueue) pop() *Job {
	j := q.peek()
	if j == nil {
		return nil
	}
	heap.Pop(q)
	q.depth--
	return j
}

// cancel marks a queued job dead (it stays in the heap until peek
// drops it) and fixes the live count.
func (q *laneQueue) cancel(j *Job) {
	j.state = jsDone
	q.depth--
}

// drain removes and returns every live job (Close).
func (q *laneQueue) drain() []*Job {
	var live []*Job
	for {
		j := q.pop()
		if j == nil {
			return live
		}
		j.state = jsDone
		live = append(live, j)
	}
}

// classify resolves the job's lane class: an explicit Class request
// wins, otherwise the flop estimate against the engine's threshold
// decides. estFlops must be set.
func classify(j *Job, smallFlops float64) core.JobClass {
	switch j.reqOpt.Class {
	case core.ClassSmall:
		return core.ClassSmall
	case core.ClassLarge:
		return core.ClassLarge
	default:
		if j.estFlops <= smallFlops {
			return core.ClassSmall
		}
		return core.ClassLarge
	}
}

// fusable reports whether the job may join a fused composite: jobs
// carrying per-executor hooks (Trace timelines sized for their own run,
// Noise injection) must run on their own executor.
func (j *Job) fusable() bool {
	return j.reqOpt.Trace == nil && j.reqOpt.Noise == nil
}

// ratePrior is the service-rate estimate used before any job of a
// class has completed: 1 flop/ns (one scalar GFLOP/s), deliberately
// conservative so a cold engine sheds obviously-infeasible deadlines
// without shedding plausible ones.
const ratePrior = 1.0

// Service-rate classes. Factorizations are GEMM-bound and run near the
// micro-kernel's flop rate; triangular solves stream the factor once
// per right-hand side and are memory-bound, typically an order of
// magnitude slower per flop. One shared EWMA lets whichever kind
// dominates recent traffic corrupt the other's deadline feasibility
// and laxity ordering, so each class keeps its own estimate.
const (
	rateGemm = iota // factorJob, choleskyJob
	rateMem         // solveJob
	numRateClasses
)

// rateClassOf maps a job kind to its service-rate class.
func rateClassOf(k jobKind) int {
	if k == solveJob {
		return rateMem
	}
	return rateGemm
}

// classFlops splits the job's estimated flops by rate class: a solo
// job's flops all land in its kind's class, a fused composite sums its
// members per class.
func classFlops(j *Job) [numRateClasses]float64 {
	var fl [numRateClasses]float64
	if len(j.members) > 0 {
		for _, m := range j.members {
			fl[rateClassOf(m.kind)] += m.estFlops
		}
		return fl
	}
	fl[rateClassOf(j.kind)] = j.estFlops
	return fl
}

// estServiceLocked estimates the job's service time from the per-class
// observed flop rates (EWMA over completed jobs, Engine.mu held).
// Composites add the classes' predicted times — their members run on
// one shared reservation, so the sum is the right scale even when the
// forest overlaps members internally.
func (e *Engine) estServiceLocked(j *Job) time.Duration {
	fl := classFlops(j)
	var ns float64
	for c, f := range fl {
		if f > 0 {
			ns += f / e.rates[c]
		}
	}
	return time.Duration(ns)
}

// observeRateLocked folds one completed job's achieved flop rates into
// the per-class EWMA estimates (Engine.mu held). A composite's span
// covers work from both classes; it is attributed to them in
// proportion to the current model's predicted shares, so each class's
// estimate is updated with a span consistent with what it was blamed
// for at admission time.
func (e *Engine) observeRateLocked(j *Job, span time.Duration) {
	if span <= 0 {
		return
	}
	fl := classFlops(j)
	var pred [numRateClasses]float64
	var predTotal float64
	for c, f := range fl {
		if f > 0 {
			pred[c] = f / e.rates[c]
			predTotal += pred[c]
		}
	}
	if predTotal <= 0 {
		return
	}
	const alpha = 0.25
	ns := float64(span.Nanoseconds())
	for c, f := range fl {
		if f <= 0 {
			continue
		}
		spanC := ns * pred[c] / predTotal
		if spanC <= 0 {
			continue
		}
		obs := f / spanC
		e.rates[c] = (1-alpha)*e.rates[c] + alpha*obs
	}
}

// ---------------------------------------------------------------------
// Per-class latency digests.

// latWindow is how many recent per-class latencies the engine keeps for
// the p50/p99 digests in Stats.
const latWindow = 512

// latRing is a fixed-size ring of recent latency samples, milliseconds.
// Guarded by Engine.mu.
type latRing struct {
	buf  [latWindow]float64
	next int
	n    int
}

func (r *latRing) add(ms float64) {
	r.buf[r.next] = ms
	r.next = (r.next + 1) % latWindow
	if r.n < latWindow {
		r.n++
	}
}

// percentiles returns the nearest-rank p50 and p99 of the window, or
// zeros when empty.
func (r *latRing) percentiles() (p50, p99 float64) {
	if r.n == 0 {
		return 0, 0
	}
	s := make([]float64, r.n)
	copy(s, r.buf[:r.n])
	sort.Float64s(s)
	rank := func(p float64) float64 {
		i := int(math.Ceil(p*float64(r.n))) - 1
		if i < 0 {
			i = 0
		}
		return s[i]
	}
	return rank(0.50), rank(0.99)
}

// ClassStats is the per-class slice of Stats: completion counts and
// submit-to-done latency percentiles over the last latWindow jobs.
type ClassStats struct {
	// Done and Failed count completed jobs of this class (failures
	// include cancellations; admission-time sheds never become jobs and
	// are counted in Stats.Shed instead).
	Done, Failed int64
	// Queued is the lane's current live depth.
	Queued int
	// P50Ms and P99Ms are submit-to-completion latency percentiles in
	// milliseconds over the recent window.
	P50Ms, P99Ms float64
}

package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/dag"
	"repro/internal/mat"
	"repro/internal/rt"
)

// TestFusedCompositeBitIdentical is the correctness contract behind
// the engine's express lane: fusing a mixed batch of small factor and
// solve jobs into one composite forest (dag.Fuse) must produce
// BIT-identical results to running each job alone, because fusion adds
// no edges between members — their dataflow, which fixes the
// arithmetic completely, is untouched. Checked across all four
// scheduling policies and both dispatchers (concurrent and the
// serialized global-lock path); run under -race to certify the
// dispatch paths too. Per-member OnDone callbacks must each fire
// exactly once.
func TestFusedCompositeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	aSmall := mat.Random(48, 48, rng)
	aWide := mat.Random(64, 40, rng)
	bOne := mat.Random(48, 1, rng)
	bMany := mat.Random(48, 3, rng)

	// References: each job alone. The factor graph's tournament bracket
	// follows the worker grid, so references use the same Workers as the
	// fused members; given that, scheduling cannot change the bits.
	ref := Options{Block: 8, Workers: 2, Scheduler: ScheduleHybrid, DynamicRatio: 0.25}
	refSmall, err := Factor(aSmall, ref)
	if err != nil {
		t.Fatal(err)
	}
	refWide, err := Factor(aWide, ref)
	if err != nil {
		t.Fatal(err)
	}
	refX1, err := refSmall.SolveMany(bOne, ref)
	if err != nil {
		t.Fatal(err)
	}
	refXm, err := refSmall.SolveMany(bMany, ref)
	if err != nil {
		t.Fatal(err)
	}

	sameX := func(tag string, got, want *mat.Dense) {
		t.Helper()
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("%s: X[%d] differs: %x vs %x", tag, i,
					math.Float64bits(got.Data[i]), math.Float64bits(want.Data[i]))
			}
		}
	}

	for _, gl := range []bool{false, true} {
		for _, s := range []Scheduler{ScheduleStatic, ScheduleDynamic, ScheduleHybrid, ScheduleWorkStealing} {
			tag := fmt.Sprintf("%s/globalLock=%v", s, gl)
			// Fused graphs are as single-use as their members: prepare
			// fresh jobs every round.
			opt := Options{
				Block: 8, Workers: 2, Scheduler: s, DynamicRatio: 0.25,
				Seed: 7, globalLock: gl,
			}
			fj1, err := PrepareFactor(aSmall, opt)
			if err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
			fj2, err := PrepareFactor(aWide, opt)
			if err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
			sj1, err := refSmall.PrepareSolve(bOne, opt)
			if err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
			sj2, err := refSmall.PrepareSolve(bMany, opt)
			if err != nil {
				t.Fatalf("%s: %v", tag, err)
			}

			var fired [4]atomic.Int32
			fused := dag.Fuse(
				dag.FusePart{G: fj1.Graph(), Label: "factor-48", OnDone: func() { fired[0].Add(1) }},
				dag.FusePart{G: sj1.Graph(), Label: "solve-48x1", OnDone: func() { fired[1].Add(1) }},
				dag.FusePart{G: fj2.Graph(), Label: "factor-64x40", OnDone: func() { fired[2].Add(1) }},
				dag.FusePart{G: sj2.Graph(), Label: "solve-48x3", OnDone: func() { fired[3].Add(1) }},
			)
			if err := fused.Validate(); err != nil {
				t.Fatalf("%s: fused graph invalid: %v", tag, err)
			}
			res, err := rt.Run(fused.Graph, opt.policy(), rt.Options{
				Workers: 4, GlobalLock: gl,
			})
			if err != nil {
				t.Fatalf("%s: fused run: %v", tag, err)
			}
			for i := range fired {
				if n := fired[i].Load(); n != 1 {
					t.Fatalf("%s: member %d OnDone fired %d times, want 1", tag, i, n)
				}
			}
			sameFactorization(t, tag+"/factor-48", fj1.Finish(res), refSmall)
			sameFactorization(t, tag+"/factor-64x40", fj2.Finish(res), refWide)
			sameX(tag+"/solve-48x1", sj1.Finish(res).X, refX1)
			sameX(tag+"/solve-48x3", sj2.Finish(res).X, refXm)
		}
	}
}

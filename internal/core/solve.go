package core

import (
	"fmt"
	"time"

	"repro/internal/dag"
	"repro/internal/mat"
	"repro/internal/rt"
	"repro/internal/sched"
)

// SingularSolveError reports a solve against a degraded factorization:
// one whose triangular factor carries an exactly zero diagonal entry
// (the prefix-padded output of a factorization that absorbed a singular
// tournament chunk, or a hand-assembled partial factorization). Like
// *kernel.SingularError it carries the factored-prefix length, so
// callers — the engine, hsdserve — can report how much of the system is
// solvable instead of an opaque failure.
type SingularSolveError struct {
	// Prefix is the factored-prefix length: the leading Prefix unknowns
	// form the largest nonsingular leading subsystem.
	Prefix int
	// N is the order of the full system.
	N int
}

// Error implements error.
func (e *SingularSolveError) Error() string {
	return fmt.Sprintf("core: singular system: zero diagonal at %d, only the leading %d of %d unknowns are determined", e.Prefix, e.Prefix, e.N)
}

// diagPrefix returns the length of the leading nonzero-diagonal prefix
// of a square triangular factor: the first index with a zero diagonal,
// or n if there is none.
func diagPrefix(t *mat.Dense) int {
	n := min(t.Rows, t.Cols)
	for j := 0; j < n; j++ {
		if t.At(j, j) == 0 {
			return j
		}
	}
	return n
}

// Solution is the result of a blocked triangular solve: the solution
// block plus the run metadata the factorization result also carries.
type Solution struct {
	// X is the n x nrhs solution block (column j solves column j of B).
	X *mat.Dense
	// Makespan is the wall-clock solve time.
	Makespan time.Duration
	// Counters carries the scheduler instrumentation.
	Counters sched.Counters
	// Stats summarizes the executed task graph.
	Stats dag.Stats
}

// SolveJob is a prepared blocked triangular solve: the RHS has been
// permuted/copied into the in-place solution buffer and the two-sweep
// solve graph is built, but nothing has executed yet. It mirrors
// FactorJob so the resident engine can drive solves through an
// rt.Executor at the job's granted share. A SolveJob is single-use.
type SolveJob struct {
	// Opt is the fully defaulted option set the job was built with.
	Opt Options
	sg  *dag.SolveGraph
}

// Graph returns the task graph to execute.
func (j *SolveJob) Graph() *dag.Graph { return j.sg.Graph }

// Policy returns a fresh scheduling policy instance for this job.
func (j *SolveJob) Policy() sched.Policy { return j.Opt.policy() }

// Finish assembles the Solution after the graph has executed to
// completion with the given runtime result.
func (j *SolveJob) Finish(res rt.Result) *Solution {
	return &Solution{
		X:        j.sg.X,
		Makespan: res.Makespan,
		Counters: res.Counters,
		Stats:    j.sg.ComputeStats(),
	}
}

// prepareSolve builds a solve job over explicit lower/upper triangles:
// x0 is the already permuted/copied RHS block that will be solved in
// place.
func prepareSolve(lower, upper, x0 *mat.Dense, unitLower bool, opt Options) (*SolveJob, error) {
	opt.fill()
	nb := (x0.Rows + opt.Block - 1) / opt.Block
	sg := dag.BuildSolve(lower, upper, x0, dag.SolveOptions{
		Block:       opt.Block,
		Workers:     opt.Workers,
		NstaticCols: opt.NstaticCols(nb),
		UnitLower:   unitLower,
	})
	if err := sg.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid solve graph: %w", err)
	}
	return &SolveJob{Opt: opt, sg: sg}, nil
}

// checkRHS validates an n-row right-hand-side block.
func checkRHS(b *mat.Dense, n int) error {
	if b == nil || b.Cols == 0 {
		return fmt.Errorf("core: solve needs a non-empty right-hand side")
	}
	if b.Rows != n {
		return fmt.Errorf("core: rhs has %d rows, system has %d", b.Rows, n)
	}
	return nil
}

// PrepareSolve builds the blocked triangular-solve graph for A X = B
// using the factorization (X = U^{-1} L^{-1} P B), without executing
// it: the multi-RHS counterpart of PrepareFactor, consumed either by
// SolveMany (one-shot rt.Run) or by the resident engine's solve jobs.
// B is not modified. A degraded factorization (zero diagonal in U) is
// rejected up front with a *SingularSolveError carrying the factored
// prefix.
func (f *Factorization) PrepareSolve(b *mat.Dense, opt Options) (*SolveJob, error) {
	m := f.L.Rows
	n := f.U.Cols
	if m != n {
		return nil, fmt.Errorf("core: solve requires a square factorization, got %dx%d", m, n)
	}
	if err := checkRHS(b, n); err != nil {
		return nil, err
	}
	if p := diagPrefix(f.U); p < n {
		return nil, &SingularSolveError{Prefix: p, N: n}
	}
	// x = P b.
	x := mat.New(n, b.Cols)
	for j := 0; j < b.Cols; j++ {
		src := b.Col(j)
		dst := x.Col(j)
		for i := 0; i < n; i++ {
			dst[i] = src[f.Perm[i]]
		}
	}
	return prepareSolve(f.L, f.U, x, true, opt)
}

// SolveMany solves A X = B for an n x nrhs block of right-hand sides
// through the blocked two-sweep solve graph, executed one-shot under
// opt's scheduler/layout-independent knobs (Block, Workers, Scheduler,
// DynamicRatio). B is not modified. The graph's dataflow fixes the
// arithmetic, so the result is bit-identical across schedulers, worker
// counts and dispatchers.
func (f *Factorization) SolveMany(b *mat.Dense, opt Options) (*mat.Dense, error) {
	job, err := f.PrepareSolve(b, opt)
	if err != nil {
		return nil, err
	}
	return runSolve(job)
}

// PrepareSolve is the Cholesky counterpart of Factorization.
// PrepareSolve: A X = B via L Y = B then Lᵀ X = Y, both sweeps on the
// same solve-graph shape (the backward sweep reads the transpose of L,
// materialized once per factorization and cached).
func (f *CholeskyFactorization) PrepareSolve(b *mat.Dense, opt Options) (*SolveJob, error) {
	n := f.L.Rows
	if err := checkRHS(b, n); err != nil {
		return nil, err
	}
	if p := diagPrefix(f.L); p < n {
		return nil, &SingularSolveError{Prefix: p, N: n}
	}
	x := mat.New(n, b.Cols)
	x.CopyFrom(b)
	return prepareSolve(f.L, f.lt(), x, false, opt)
}

// SolveMany solves A X = B for a block of right-hand sides using the
// Cholesky factors, through the same blocked solve graph as LU.
func (f *CholeskyFactorization) SolveMany(b *mat.Dense, opt Options) (*mat.Dense, error) {
	job, err := f.PrepareSolve(b, opt)
	if err != nil {
		return nil, err
	}
	return runSolve(job)
}

// runSolve executes a prepared solve job one-shot and returns X.
func runSolve(j *SolveJob) (*mat.Dense, error) {
	res, err := rt.Run(j.Graph(), j.Policy(), rt.Options{
		Workers: j.Opt.Workers, Trace: j.Opt.Trace, Noise: j.Opt.Noise,
		GlobalLock: j.Opt.globalLock,
	})
	if err != nil {
		return nil, err
	}
	return j.Finish(res).X, nil
}

package core

import (
	"fmt"
	"sync"

	"repro/internal/dag"
	"repro/internal/layout"
	"repro/internal/mat"
	"repro/internal/rt"
	"repro/internal/sched"
)

// CholeskyFactorization is the result of FactorCholesky: A = L*L^T.
// The factors are treated as immutable once solves begin: the blocked
// backward sweep caches a materialized Lᵀ on first use.
type CholeskyFactorization struct {
	L *mat.Dense // n x n lower triangular
	// Makespan, Counters and Stats mirror Factorization.
	Factorization

	// ltOnce/ltCache materialize Lᵀ once for the blocked backward
	// sweep; recomputing the O(n²) transpose per solve would rival the
	// solve itself for single-RHS requests.
	ltOnce  sync.Once
	ltCache *mat.Dense
}

// lt returns the materialized transpose of L (upper triangular),
// built once. Safe for concurrent solve preparations.
func (f *CholeskyFactorization) lt() *mat.Dense {
	f.ltOnce.Do(func() {
		n := f.L.Rows
		u := mat.New(n, n)
		for j := 0; j < n; j++ {
			lj := f.L.Col(j)
			for i := j; i < n; i++ {
				u.Set(j, i, lj[i])
			}
		}
		f.ltCache = u
	})
	return f.ltCache
}

// FactorCholesky computes the Cholesky factorization A = L*L^T of a
// symmetric positive definite matrix under the same layout and hybrid
// static/dynamic scheduling machinery as CALU — the section 9
// future-work item realized. Only the lower triangle of a is read.
func FactorCholesky(a *mat.Dense, opt Options) (*CholeskyFactorization, error) {
	job, err := PrepareCholesky(a, opt)
	if err != nil {
		return nil, err
	}
	res, err := rt.Run(job.Graph(), job.Policy(), rt.Options{
		Workers: job.Opt.Workers, Trace: job.Opt.Trace, Noise: job.Opt.Noise,
		GlobalLock: job.Opt.globalLock,
	})
	if err != nil {
		return nil, err
	}
	return job.Finish(res), nil
}

// CholeskyJob is a prepared Cholesky factorization, mirroring
// FactorJob: the layout is allocated and the tiled Cholesky graph is
// built, but nothing has executed yet. The resident engine drives it
// through an rt.Executor; FactorCholesky runs it one-shot. Single-use.
type CholeskyJob struct {
	// Opt is the fully defaulted option set the job was built with.
	Opt Options
	cg  *dag.CholeskyGraph
}

// PrepareCholesky builds the tiled Cholesky graph for factoring a
// (which is not modified) under opt.
func PrepareCholesky(a *mat.Dense, opt Options) (*CholeskyJob, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("core: cholesky needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	opt.fill()
	grid := layout.NewGrid(opt.Workers)
	l := layout.New(opt.Layout, a, opt.Block, grid)
	_, nb := l.Blocks()
	cg := dag.BuildCholesky(l, dag.CALUOptions{NstaticCols: opt.NstaticCols(nb)})
	if err := cg.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid Cholesky graph: %w", err)
	}
	return &CholeskyJob{Opt: opt, cg: cg}, nil
}

// Graph returns the task graph to execute.
func (j *CholeskyJob) Graph() *dag.Graph { return j.cg.Graph }

// Policy returns a fresh scheduling policy instance for this job.
func (j *CholeskyJob) Policy() sched.Policy { return j.Opt.policy() }

// Finish assembles the CholeskyFactorization after the graph has
// executed to completion with the given runtime result.
func (j *CholeskyJob) Finish(res rt.Result) *CholeskyFactorization {
	d := j.cg.Layout.ToDense()
	n := d.Rows
	lf := mat.New(n, n)
	for c := 0; c < n; c++ {
		for i := c; i < n; i++ {
			lf.Set(i, c, d.At(i, c))
		}
	}
	out := &CholeskyFactorization{L: lf}
	out.Makespan = res.Makespan
	out.Counters = res.Counters
	out.Stats = j.cg.ComputeStats()
	return out
}

// CholeskyResidual returns ||A - L*L^T||_max / (||A||_max * n), reading
// only the lower triangle of a (the factorization never touched the
// strict upper triangle).
func CholeskyResidual(a *mat.Dense, f *CholeskyFactorization) float64 {
	n := a.Rows
	llt := mat.New(n, n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			s := 0.0
			for k := 0; k <= j; k++ {
				s += f.L.At(i, k) * f.L.At(j, k)
			}
			llt.Set(i, j, s)
		}
	}
	maxDiff := 0.0
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			d := a.At(i, j) - llt.At(i, j)
			if d < 0 {
				d = -d
			}
			if d > maxDiff {
				maxDiff = d
			}
		}
	}
	denom := a.NormMax() * float64(n)
	if denom == 0 {
		denom = 1
	}
	return maxDiff / denom
}

// Solve solves A x = b for one right-hand side with scalar
// substitution: L y = b, L^T x = y. It is the sequential oracle of the
// blocked multi-RHS path (SolveMany / PrepareSolve). A zero diagonal
// in L yields a *SingularSolveError carrying the factored prefix.
func (f *CholeskyFactorization) Solve(b []float64) ([]float64, error) {
	n := f.L.Rows
	if len(b) != n {
		return nil, fmt.Errorf("core: rhs length %d != %d", len(b), n)
	}
	if p := diagPrefix(f.L); p < n {
		return nil, &SingularSolveError{Prefix: p, N: n}
	}
	y := make([]float64, n)
	copy(y, b)
	for j := 0; j < n; j++ {
		y[j] /= f.L.At(j, j)
		for i := j + 1; i < n; i++ {
			y[i] -= f.L.At(i, j) * y[j]
		}
	}
	for j := n - 1; j >= 0; j-- {
		y[j] /= f.L.At(j, j)
		for i := 0; i < j; i++ {
			y[i] -= f.L.At(j, i) * y[j]
		}
	}
	return y, nil
}

// RandomSPD returns a random symmetric positive definite matrix
// B^T B + n*I for Cholesky tests and examples.
func RandomSPD(n int, seed int64) *mat.Dense {
	b := mat.FromColMajor(n, n, n, randomData(n*n, seed))
	a := mat.New(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += b.At(k, i) * b.At(k, j)
			}
			a.Set(i, j, s)
		}
		a.Set(j, j, a.At(j, j)+float64(n))
	}
	return a
}

func randomData(n int, seed int64) []float64 {
	// Small linear congruential stream: deterministic without pulling
	// math/rand into the hot path of test setup.
	out := make([]float64, n)
	x := uint64(seed)*6364136223846793005 + 1442695040888963407
	for i := range out {
		x = x*6364136223846793005 + 1442695040888963407
		out[i] = float64(int64(x>>11))/float64(1<<52) - 0.5
	}
	return out
}

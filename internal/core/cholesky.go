package core

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/layout"
	"repro/internal/mat"
	"repro/internal/rt"
)

// CholeskyFactorization is the result of FactorCholesky: A = L*L^T.
type CholeskyFactorization struct {
	L *mat.Dense // n x n lower triangular
	// Makespan, Counters and Stats mirror Factorization.
	Factorization
}

// FactorCholesky computes the Cholesky factorization A = L*L^T of a
// symmetric positive definite matrix under the same layout and hybrid
// static/dynamic scheduling machinery as CALU — the section 9
// future-work item realized. Only the lower triangle of a is read.
func FactorCholesky(a *mat.Dense, opt Options) (*CholeskyFactorization, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("core: cholesky needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	opt.fill()
	grid := layout.NewGrid(opt.Workers)
	l := layout.New(opt.Layout, a, opt.Block, grid)
	_, nb := l.Blocks()
	cg := dag.BuildCholesky(l, dag.CALUOptions{NstaticCols: opt.NstaticCols(nb)})
	if err := cg.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid Cholesky graph: %w", err)
	}
	res, err := rt.Run(cg.Graph, opt.policy(), rt.Options{Workers: opt.Workers, Trace: opt.Trace, Noise: opt.Noise})
	if err != nil {
		return nil, err
	}
	d := l.ToDense()
	n := d.Rows
	lf := mat.New(n, n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			lf.Set(i, j, d.At(i, j))
		}
	}
	out := &CholeskyFactorization{L: lf}
	out.Makespan = res.Makespan
	out.Counters = res.Counters
	out.Stats = cg.ComputeStats()
	return out, nil
}

// CholeskyResidual returns ||A - L*L^T||_max / (||A||_max * n), reading
// only the lower triangle of a (the factorization never touched the
// strict upper triangle).
func CholeskyResidual(a *mat.Dense, f *CholeskyFactorization) float64 {
	n := a.Rows
	llt := mat.New(n, n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			s := 0.0
			for k := 0; k <= j; k++ {
				s += f.L.At(i, k) * f.L.At(j, k)
			}
			llt.Set(i, j, s)
		}
	}
	maxDiff := 0.0
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			d := a.At(i, j) - llt.At(i, j)
			if d < 0 {
				d = -d
			}
			if d > maxDiff {
				maxDiff = d
			}
		}
	}
	denom := a.NormMax() * float64(n)
	if denom == 0 {
		denom = 1
	}
	return maxDiff / denom
}

// Solve solves A x = b using the Cholesky factors: L y = b, L^T x = y.
func (f *CholeskyFactorization) Solve(b []float64) ([]float64, error) {
	n := f.L.Rows
	if len(b) != n {
		return nil, fmt.Errorf("core: rhs length %d != %d", len(b), n)
	}
	y := make([]float64, n)
	copy(y, b)
	for j := 0; j < n; j++ {
		ljj := f.L.At(j, j)
		if ljj == 0 {
			return nil, fmt.Errorf("core: singular L at %d", j)
		}
		y[j] /= ljj
		for i := j + 1; i < n; i++ {
			y[i] -= f.L.At(i, j) * y[j]
		}
	}
	for j := n - 1; j >= 0; j-- {
		y[j] /= f.L.At(j, j)
		for i := 0; i < j; i++ {
			y[i] -= f.L.At(j, i) * y[j]
		}
	}
	return y, nil
}

// RandomSPD returns a random symmetric positive definite matrix
// B^T B + n*I for Cholesky tests and examples.
func RandomSPD(n int, seed int64) *mat.Dense {
	b := mat.FromColMajor(n, n, n, randomData(n*n, seed))
	a := mat.New(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += b.At(k, i) * b.At(k, j)
			}
			a.Set(i, j, s)
		}
		a.Set(j, j, a.At(j, j)+float64(n))
	}
	return a
}

func randomData(n int, seed int64) []float64 {
	// Small linear congruential stream: deterministic without pulling
	// math/rand into the hot path of test setup.
	out := make([]float64, n)
	x := uint64(seed)*6364136223846793005 + 1442695040888963407
	for i := range out {
		x = x*6364136223846793005 + 1442695040888963407
		out[i] = float64(int64(x>>11))/float64(1<<52) - 0.5
	}
	return out
}

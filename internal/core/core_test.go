package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/layout"
	"repro/internal/mat"
	"repro/internal/trace"
)

const tol = 1e-9

func TestReferenceLU(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := mat.Random(50, 50, rng)
	f, err := ReferenceLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, f); r > tol {
		t.Fatalf("reference residual %g", r)
	}
}

// TestFactorDesignSpace exercises every cell of the paper's Table 1:
// {BCL, 2l-BL} x {static, dynamic, hybrid} plus CM x dynamic, and
// validates PA = LU numerically for each.
func TestFactorDesignSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := mat.Random(96, 96, rng)
	type cell struct {
		kind  layout.Kind
		sched Scheduler
	}
	cells := []cell{
		{layout.BCL, ScheduleStatic},
		{layout.BCL, ScheduleDynamic},
		{layout.BCL, ScheduleHybrid},
		{layout.TwoLevel, ScheduleStatic},
		{layout.TwoLevel, ScheduleDynamic},
		{layout.TwoLevel, ScheduleHybrid},
		{layout.CM, ScheduleDynamic},
	}
	for _, c := range cells {
		f, err := Factor(a, Options{
			Layout: c.kind, Block: 16, Workers: 4,
			Scheduler: c.sched, DynamicRatio: 0.25,
		})
		if err != nil {
			t.Fatalf("%v/%v: %v", c.kind, c.sched, err)
		}
		if r := Residual(a, f); r > tol {
			t.Errorf("%v/%v: residual %g", c.kind, c.sched, r)
		}
	}
}

func TestFactorWorkStealing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := mat.Random(64, 64, rng)
	f, err := Factor(a, Options{Layout: layout.BCL, Block: 16, Workers: 4, Scheduler: ScheduleWorkStealing, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, f); r > tol {
		t.Fatalf("worksteal residual %g", r)
	}
}

func TestFactorDratioSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := mat.Random(80, 80, rng)
	for _, d := range []float64{0, 0.1, 0.2, 0.5, 0.75, 1.0} {
		f, err := Factor(a, Options{Layout: layout.BCL, Block: 16, Workers: 4, Scheduler: ScheduleHybrid, DynamicRatio: d})
		if err != nil {
			t.Fatalf("dratio %g: %v", d, err)
		}
		if r := Residual(a, f); r > tol {
			t.Errorf("dratio %g: residual %g", d, r)
		}
	}
}

func TestFactorRectangular(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	shapes := [][2]int{{120, 40}, {40, 120}, {100, 30}, {37, 90}, {65, 65}}
	for _, s := range shapes {
		a := mat.Random(s[0], s[1], rng)
		f, err := Factor(a, Options{Layout: layout.BCL, Block: 16, Workers: 4, Scheduler: ScheduleHybrid, DynamicRatio: 0.3})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if r := Residual(a, f); r > tol {
			t.Errorf("%v: residual %g", s, r)
		}
	}
}

func TestFactorRaggedBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Sizes deliberately not multiples of the block size.
	for _, n := range []int{33, 47, 50, 63} {
		a := mat.Random(n, n, rng)
		for _, kind := range []layout.Kind{layout.CM, layout.BCL, layout.TwoLevel} {
			f, err := Factor(a, Options{Layout: kind, Block: 16, Workers: 3, Scheduler: ScheduleHybrid, DynamicRatio: 0.4})
			if err != nil {
				t.Fatalf("n=%d %v: %v", n, kind, err)
			}
			if r := Residual(a, f); r > tol {
				t.Errorf("n=%d %v: residual %g", n, kind, r)
			}
		}
	}
}

func TestFactorSingleWorker(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := mat.Random(48, 48, rng)
	f, err := Factor(a, Options{Layout: layout.TwoLevel, Block: 8, Workers: 1, Scheduler: ScheduleHybrid, DynamicRatio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, f); r > tol {
		t.Fatalf("residual %g", r)
	}
}

func TestFactorManyWorkersFewBlocks(t *testing.T) {
	// More workers than blocks: the DAG must still drain.
	rng := rand.New(rand.NewSource(8))
	a := mat.Random(32, 32, rng)
	f, err := Factor(a, Options{Layout: layout.BCL, Block: 16, Workers: 12, Scheduler: ScheduleHybrid, DynamicRatio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, f); r > tol {
		t.Fatalf("residual %g", r)
	}
}

func TestFactorBlockLargerThanMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := mat.Random(10, 10, rng)
	f, err := Factor(a, Options{Layout: layout.BCL, Block: 32, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, f); r > tol {
		t.Fatalf("residual %g", r)
	}
}

func TestSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 60
	a := mat.Random(n, n, rng)
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	for j := 0; j < n; j++ {
		col := a.Col(j)
		for i := 0; i < n; i++ {
			b[i] += col[i] * xTrue[j]
		}
	}
	f, err := Factor(a, Options{Layout: layout.BCL, Block: 16, Workers: 4, Scheduler: ScheduleHybrid, DynamicRatio: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := SolveResidual(a, x, b); r > 1e-10 {
		t.Fatalf("solve residual %g", r)
	}
	maxErr := 0.0
	for i := range x {
		maxErr = math.Max(maxErr, math.Abs(x[i]-xTrue[i]))
	}
	if maxErr > 1e-6 {
		t.Fatalf("solution error %g", maxErr)
	}
}

func TestSolveRejectsNonSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := mat.Random(40, 20, rng)
	f, err := Factor(a, Options{Layout: layout.BCL, Block: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve(make([]float64, 40)); err == nil {
		t.Fatal("expected error for non-square solve")
	}
}

func TestGrowthFactorComparableToGEPP(t *testing.T) {
	// Section 2: tournament pivoting is "as stable as partial pivoting
	// in practice". Compare growth factors on random matrices.
	rng := rand.New(rand.NewSource(12))
	a := mat.Random(128, 128, rng)
	ref, err := ReferenceLU(a)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Factor(a, Options{Layout: layout.BCL, Block: 16, Workers: 4, Scheduler: ScheduleHybrid, DynamicRatio: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	gCALU, gGEPP := GrowthFactor(a, f), GrowthFactor(a, ref)
	if gCALU > 30*gGEPP {
		t.Fatalf("tournament pivoting growth %g vs GEPP %g: unstable", gCALU, gGEPP)
	}
}

func TestPermIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := mat.Random(70, 70, rng)
	f, err := Factor(a, Options{Layout: layout.TwoLevel, Block: 16, Workers: 4, Scheduler: ScheduleDynamic})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, 70)
	for _, p := range f.Perm {
		if p < 0 || p >= 70 || seen[p] {
			t.Fatalf("perm is not a bijection: %v", f.Perm)
		}
		seen[p] = true
	}
}

func TestFactorWithTraceAndNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := mat.Random(64, 64, rng)
	tr := trace.New(4)
	noiseRng := rand.New(rand.NewSource(99))
	var mu chan struct{} = make(chan struct{}, 1)
	mu <- struct{}{}
	f, err := Factor(a, Options{
		Layout: layout.BCL, Block: 16, Workers: 4,
		Scheduler: ScheduleHybrid, DynamicRatio: 0.25,
		Trace: tr,
		Noise: func(w int) time.Duration {
			<-mu
			d := time.Duration(0)
			if noiseRng.Float64() < 0.05 {
				d = 200 * time.Microsecond
			}
			mu <- struct{}{}
			return d
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, f); r > tol {
		t.Fatalf("residual under noise %g", r)
	}
	total := 0
	for w := 0; w < 4; w++ {
		total += len(tr.Spans[w])
	}
	if total == 0 {
		t.Fatal("trace recorded nothing")
	}
	if tr.Makespan() <= 0 {
		t.Fatal("trace has no makespan")
	}
}

func TestCountersReflectScheduling(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := mat.Random(96, 96, rng)
	fs, err := Factor(a, Options{Layout: layout.BCL, Block: 16, Workers: 4, Scheduler: ScheduleStatic})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Counters.DequeueDynamic != 0 {
		t.Fatalf("static run has %d dynamic dequeues", fs.Counters.DequeueDynamic)
	}
	fd, err := Factor(a, Options{Layout: layout.BCL, Block: 16, Workers: 4, Scheduler: ScheduleDynamic})
	if err != nil {
		t.Fatal(err)
	}
	if fd.Counters.DequeueDynamic == 0 {
		t.Fatal("dynamic run recorded no dynamic dequeues")
	}
	if fd.Counters.DequeueStatic != 0 {
		t.Fatalf("dynamic run has %d static dequeues", fd.Counters.DequeueStatic)
	}
}

func TestNstaticCols(t *testing.T) {
	cases := []struct {
		sched Scheduler
		d     float64
		nb    int
		want  int
	}{
		{ScheduleStatic, 0.5, 10, 10},
		{ScheduleDynamic, 0.5, 10, 0},
		{ScheduleHybrid, 0.1, 10, 9},
		{ScheduleHybrid, 0.2, 10, 8},
		{ScheduleHybrid, 0, 10, 10},
		{ScheduleHybrid, 1, 10, 0},
		{ScheduleWorkStealing, 0.9, 10, 10},
	}
	for _, c := range cases {
		o := Options{Scheduler: c.sched, DynamicRatio: c.d}
		if got := o.NstaticCols(c.nb); got != c.want {
			t.Errorf("%v d=%g: Nstatic=%d want %d", c.sched, c.d, got, c.want)
		}
	}
}

// Property: CALU matches the reference factorization's solution on
// random well-conditioned systems for random configurations.
func TestFactorMatchesReferenceProperty(t *testing.T) {
	kinds := []layout.Kind{layout.CM, layout.BCL, layout.TwoLevel}
	scheds := []Scheduler{ScheduleStatic, ScheduleDynamic, ScheduleHybrid, ScheduleWorkStealing}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 24 + int(rng.Int31n(60))
		a := mat.RandomDiagDominant(n, rng)
		kind := kinds[rng.Intn(len(kinds))]
		sch := scheds[rng.Intn(len(scheds))]
		if kind == layout.CM {
			sch = ScheduleDynamic // Table 1: CM is evaluated with dynamic only
		}
		fac, err := Factor(a, Options{
			Layout: kind, Block: 8 + int(rng.Int31n(12)),
			Workers: 1 + int(rng.Int31n(5)), Scheduler: sch,
			DynamicRatio: rng.Float64(),
		})
		if err != nil {
			return false
		}
		return Residual(a, fac) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/layout"
	"repro/internal/mat"
)

// allSchedulers enumerates every scheduling policy; the singular-input
// semantics of Factor must not depend on how tasks are dispatched.
var allSchedulers = []Scheduler{ScheduleStatic, ScheduleDynamic, ScheduleHybrid, ScheduleWorkStealing}

// factorAll runs Factor under every scheduler and hands each result to
// check.
func factorAll(t *testing.T, a *mat.Dense, opt Options, check func(s Scheduler, f *Factorization, err error)) {
	t.Helper()
	for _, s := range allSchedulers {
		opt.Scheduler = s
		opt.DynamicRatio = 0.25
		f, err := Factor(a, opt)
		check(s, f, err)
	}
}

// TestFactorSingularChunkRecovers is the headline bugfix case: the
// first tournament chunk of the first panel is exactly singular (a
// zero-row region leaves it rank 4 over an 8-wide panel), which used to
// abort the whole factorization even though plain GEPP handles the
// matrix fine. With piv.Select's prefix fallback the tournament fields
// padded contestants and the factorization completes with a normal
// residual.
func TestFactorSingularChunkRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	a := mat.Random(64, 64, rng)
	// Workers=4 gives a 2x2 grid, so panel 0 splits into two 32-row
	// chunks. Blank the panel columns of rows 4..31: chunk 0's 32x8 GEPP
	// then hits an exactly zero pivot at column 4. The rows keep random
	// values in columns 8..63, so the matrix itself stays nonsingular.
	for i := 4; i < 32; i++ {
		for j := 0; j < 8; j++ {
			a.Set(i, j, 0)
		}
	}
	ref, err := ReferenceLU(a)
	if err != nil {
		t.Fatalf("reference GEPP must handle this matrix: %v", err)
	}
	if r := Residual(a, ref); r > tol {
		t.Fatalf("reference residual %g", r)
	}
	for _, kind := range []layout.Kind{layout.BCL, layout.TwoLevel} {
		factorAll(t, a, Options{Layout: kind, Block: 8, Workers: 4}, func(s Scheduler, f *Factorization, err error) {
			if err != nil {
				t.Fatalf("%v/%v: singular chunk aborted the factorization: %v", kind, s, err)
			}
			if r := Residual(a, f); r > tol {
				t.Errorf("%v/%v: residual %g after chunk fallback", kind, s, r)
			}
		})
	}
}

// TestFactorDuplicatedRowsInChunk covers the duplicate-row flavour of a
// degenerate chunk: rows whose panel-column prefixes coincide exactly.
// Whether the chunk's GEPP cancellation is exact (triggering the
// fallback) or leaves ulp-level residue, Factor must complete and match
// the reference residual-wise.
func TestFactorDuplicatedRowsInChunk(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	a := mat.Random(64, 64, rng)
	for i := 1; i < 24; i++ {
		for j := 0; j < 8; j++ {
			a.Set(i, j, a.At(0, j))
		}
	}
	if _, err := ReferenceLU(a); err != nil {
		t.Fatalf("reference GEPP must handle duplicated prefixes: %v", err)
	}
	factorAll(t, a, Options{Layout: layout.BCL, Block: 8, Workers: 4}, func(s Scheduler, f *Factorization, err error) {
		if err != nil {
			t.Fatalf("%v: duplicated rows aborted the factorization: %v", s, err)
		}
		if r := Residual(a, f); r > tol {
			t.Errorf("%v: residual %g", s, r)
		}
	})
}

// TestFactorZeroColumnMatchesReference: a matrix with an exactly zero
// column is rank deficient in a way no pivoting strategy can absorb.
// Factor must degrade exactly like ReferenceLU — an error return, never
// a panic or a silent bogus factorization.
func TestFactorZeroColumnMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	a := mat.Random(48, 48, rng)
	for i := 0; i < 48; i++ {
		a.Set(i, 20, 0)
	}
	_, refErr := ReferenceLU(a)
	var se *kernel.SingularError
	if !errors.As(refErr, &se) || se.K != 20 {
		t.Fatalf("reference: want SingularError at column 20, got %v", refErr)
	}
	factorAll(t, a, Options{Layout: layout.BCL, Block: 16, Workers: 4}, func(s Scheduler, f *Factorization, err error) {
		if err == nil {
			t.Fatalf("%v: factored a matrix with a zero column (residual would be meaningless)", s)
		}
	})
}

// TestFactorRankDeficientMatchesReference: rank r < n via a zero-row
// block. Reference GEPP fails at column r; every scheduler must fail
// too (gracefully), because past column r no chunk anywhere can field a
// nonzero pivot.
func TestFactorRankDeficientMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	a := mat.New(64, 64)
	a.Slice(0, 40, 0, 64).CopyFrom(mat.Random(40, 64, rng))
	_, refErr := ReferenceLU(a)
	var se *kernel.SingularError
	if !errors.As(refErr, &se) || se.K != 40 {
		t.Fatalf("reference: want SingularError at column 40, got %v", refErr)
	}
	factorAll(t, a, Options{Layout: layout.BCL, Block: 16, Workers: 4}, func(s Scheduler, f *Factorization, err error) {
		if err == nil {
			t.Fatalf("%v: factored a rank-40 matrix of order 64", s)
		}
	})
}

// TestFactorNumericallyRankDeficient: a product of thin factors is
// rank deficient in exact arithmetic but carries ulp-level noise, so
// partial pivoting marches through tiny pivots. Backward stability
// still holds; Factor and the reference must both succeed with small
// residuals.
func TestFactorNumericallyRankDeficient(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	b := mat.Random(64, 40, rng)
	c := mat.Random(40, 64, rng)
	a := mat.MulNaive(b, c)
	ref, refErr := ReferenceLU(a)
	factorAll(t, a, Options{Layout: layout.BCL, Block: 16, Workers: 4}, func(s Scheduler, f *Factorization, err error) {
		if (refErr == nil) != (err == nil) {
			t.Fatalf("%v: behavior diverged from reference: ref=%v factor=%v", s, refErr, err)
		}
		if err == nil {
			if r := Residual(a, f); r > 1e-7 {
				t.Errorf("%v: residual %g", s, r)
			}
		}
	})
	if refErr == nil {
		if r := Residual(a, ref); r > 1e-7 {
			t.Errorf("reference residual %g", r)
		}
	}
}

// Package core is the heart of the library: communication-avoiding LU
// factorization (CALU) with tournament pivoting, executed under the
// paper's static, dynamic, or hybrid static/dynamic scheduling over any
// of the three data layouts. It exposes a high-level Factor/Solve API
// and the residual checks used by the test suite and examples.
package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/dag"
	"repro/internal/kernel"
	"repro/internal/layout"
	"repro/internal/mat"
	"repro/internal/rt"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Scheduler selects the scheduling strategy of Table 1.
type Scheduler int

const (
	// ScheduleStatic is fully static owner-computes scheduling.
	ScheduleStatic Scheduler = iota
	// ScheduleDynamic is fully dynamic shared-queue scheduling.
	ScheduleDynamic
	// ScheduleHybrid is the paper's hybrid static/dynamic strategy; the
	// dynamic share is Options.DynamicRatio.
	ScheduleHybrid
	// ScheduleWorkStealing is randomized work stealing (section 8
	// comparison).
	ScheduleWorkStealing
)

// String names the scheduler like the paper's figure legends.
func (s Scheduler) String() string {
	switch s {
	case ScheduleStatic:
		return "static"
	case ScheduleDynamic:
		return "dynamic"
	case ScheduleHybrid:
		return "hybrid"
	case ScheduleWorkStealing:
		return "worksteal"
	}
	return fmt.Sprintf("Scheduler(%d)", int(s))
}

// JobClass labels a job for the resident engine's two-lane admission
// (engine package): small jobs ride an express lane that fuses waiting
// jobs into one composite DAG sharing a single worker reservation, big
// jobs are bounded to a configurable share of the pool so they cannot
// head-of-line-block everyone. One-shot Factor/Solve calls ignore it.
type JobClass uint8

const (
	// ClassAuto (the default) lets the engine classify the job by its
	// estimated flop cost.
	ClassAuto JobClass = iota
	// ClassSmall forces the job into the small-job express lane.
	ClassSmall
	// ClassLarge forces the job into the bounded big-job lane.
	ClassLarge
)

// String names the class like the /v1/stats output.
func (c JobClass) String() string {
	switch c {
	case ClassSmall:
		return "small"
	case ClassLarge:
		return "large"
	case ClassAuto:
		return "auto"
	}
	return fmt.Sprintf("JobClass(%d)", int(c))
}

// Options configures a factorization.
type Options struct {
	// Layout is the storage scheme (default BCL).
	Layout layout.Kind
	// Block is the block/tile size b (default 32; the paper uses 100).
	Block int
	// Workers is the parallelism degree (default 1).
	Workers int
	// Scheduler picks the policy (default ScheduleHybrid).
	Scheduler Scheduler
	// DynamicRatio is the paper's dratio: the fraction of block columns
	// scheduled dynamically under ScheduleHybrid. 0.1 reproduces the
	// paper's usual best configuration, "CALU static(10% dynamic)".
	DynamicRatio float64
	// Group is the k of the static section's grouped BLAS-3 updates;
	// <= 0 selects the paper's k=3 for groupable layouts.
	Group int
	// Trace, if non-nil, records the execution timeline.
	Trace *trace.Trace
	// Noise, if non-nil, injects a busy-wait after each task (failure
	// injection emulating OS interference).
	Noise func(worker int) time.Duration
	// Seed feeds the work-stealing victim selection.
	Seed int64
	// Class routes the job in the resident engine's two-lane admission;
	// ClassAuto classifies by estimated flop cost. Ignored by one-shot
	// calls.
	Class JobClass
	// Deadline, when positive, is the job's submit-relative SLO for the
	// resident engine: admission orders queued jobs by laxity (deadline
	// minus estimated service time), the dynamic share lends
	// preferentially to the latest job, and a submission whose
	// estimated service time already exceeds its deadline is shed with
	// ErrDeadlineInfeasible instead of queued. Zero means no deadline.
	// Ignored by one-shot calls.
	Deadline time.Duration

	// globalLock (tests only) runs the scheduler under the serialized
	// single-mutex dispatcher instead of the concurrent runtime: the A/B
	// reference the scheduler-equivalence tests compare bit-for-bit
	// against.
	globalLock bool
}

func (o *Options) fill() {
	if o.Block <= 0 {
		o.Block = 32
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Group <= 0 {
		// The paper's k=3 grouping exploits BCL's contiguity. For CM the
		// natural task granularity of Algorithm 2's dynamic section is a
		// whole column ("do task S ... for all I"), which CM's vertical
		// contiguity expresses as an unbounded row group. 2l-BL cannot
		// group at all (section 4.2).
		switch o.Layout {
		case layout.BCL:
			o.Group = 3
		case layout.CM:
			o.Group = 1 << 16
		default:
			o.Group = 1
		}
	}
}

// NstaticCols converts the scheduler + dratio into the number of block
// columns scheduled statically, Nstatic = N*(1-dratio) (Algorithm 1,
// line 2).
func (o Options) NstaticCols(nb int) int {
	switch o.Scheduler {
	case ScheduleDynamic:
		return 0
	case ScheduleStatic, ScheduleWorkStealing:
		return nb
	default:
		ns := int(math.Round(float64(nb) * (1 - o.DynamicRatio)))
		if ns < 0 {
			ns = 0
		}
		if ns > nb {
			ns = nb
		}
		return ns
	}
}

func (o Options) policy() sched.Policy {
	switch o.Scheduler {
	case ScheduleStatic:
		return sched.NewStatic()
	case ScheduleDynamic:
		return sched.NewDynamic()
	case ScheduleWorkStealing:
		return sched.NewWorkStealing(o.Seed)
	default:
		return sched.NewHybrid()
	}
}

// Factorization is the result of Factor: PA = LU with P encoded as a
// row permutation vector (Perm[i] is the original index of the row that
// ended up at position i).
type Factorization struct {
	Perm []int
	L    *mat.Dense // m x r unit lower triangular, r = min(m,n)
	U    *mat.Dense // r x n upper triangular
	// Makespan is the wall-clock factorization time.
	Makespan time.Duration
	// Counters carries the scheduler instrumentation.
	Counters sched.Counters
	// Stats summarizes the executed task graph.
	Stats dag.Stats
}

// Factor computes the CALU factorization of a (which is not modified)
// and returns PA = LU.
//
// Singular inputs degrade the same way ReferenceLU does: an exactly
// singular tournament chunk (duplicated or zero rows confined to one
// chunk of a panel) is absorbed by piv.Select's prefix fallback and the
// factorization completes normally, while a matrix whose panel is rank
// deficient as a whole — one plain GEPP would also abort on, such as an
// exactly zero column — returns an error rather than panicking (the
// runtime converts numerical-failure panics in tasks into errors).
func Factor(a *mat.Dense, opt Options) (*Factorization, error) {
	job, err := PrepareFactor(a, opt)
	if err != nil {
		return nil, err
	}
	res, err := rt.Run(job.Graph(), job.Policy(), rt.Options{
		Workers: job.Opt.Workers, Trace: job.Opt.Trace, Noise: job.Opt.Noise,
		GlobalLock: job.Opt.globalLock,
	})
	if err != nil {
		return nil, err
	}
	return job.Finish(res), nil
}

// FactorJob is a prepared factorization: the layout is allocated and
// the CALU task graph is built, but nothing has executed yet. It
// decouples graph construction from graph execution so a caller that
// owns its workers — the resident engine — can drive the graph through
// an rt.Executor instead of the spawn-per-call rt.Run. A FactorJob is
// single-use: its task closures mutate the layout in place.
type FactorJob struct {
	// Opt is the fully defaulted option set the job was built with.
	Opt Options
	cg  *dag.CALUGraph
}

// PrepareFactor builds the CALU graph for factoring a (which is not
// modified) under opt. The static distribution is built for
// opt.Workers owners; executing the graph with additional lending
// slots (rt.Options.Helpers) does not change the arithmetic, since the
// graph's dataflow fixes it completely.
func PrepareFactor(a *mat.Dense, opt Options) (*FactorJob, error) {
	opt.fill()
	grid := layout.NewGrid(opt.Workers)
	l := layout.New(opt.Layout, a, opt.Block, grid)
	_, nb := l.Blocks()
	cg := dag.BuildCALU(l, dag.CALUOptions{
		NstaticCols: opt.NstaticCols(nb),
		Group:       opt.Group,
	})
	if err := cg.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid CALU graph: %w", err)
	}
	return &FactorJob{Opt: opt, cg: cg}, nil
}

// Graph returns the task graph to execute.
func (j *FactorJob) Graph() *dag.Graph { return j.cg.Graph }

// Policy returns a fresh scheduling policy instance for this job.
func (j *FactorJob) Policy() sched.Policy { return j.Opt.policy() }

// Finish assembles the Factorization after the graph has executed to
// completion with the given runtime result.
func (j *FactorJob) Finish(res rt.Result) *Factorization {
	perm := j.cg.FinishPermutation()
	lf, uf := ExtractLU(j.cg.Layout)
	return &Factorization{
		Perm:     perm,
		L:        lf,
		U:        uf,
		Makespan: res.Makespan,
		Counters: res.Counters,
		Stats:    j.cg.ComputeStats(),
	}
}

// ExtractLU reads the packed factors out of a factored layout: L is the
// unit lower trapezoid, U the upper trapezoid.
func ExtractLU(l layout.Layout) (*mat.Dense, *mat.Dense) {
	d := l.ToDense()
	m, n := d.Rows, d.Cols
	r := min(m, n)
	lf := mat.New(m, r)
	uf := mat.New(r, n)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			v := d.At(i, j)
			if i > j && j < r {
				lf.Set(i, j, v)
			}
			if i <= j && i < r {
				uf.Set(i, j, v)
			}
		}
	}
	for i := 0; i < r; i++ {
		lf.Set(i, i, 1)
	}
	return lf, uf
}

// Residual returns the normalized backward error
// ||PA - LU||_max / (||A||_max * n): the end-to-end correctness metric
// for a factorization. Values around machine epsilon times a modest
// growth factor indicate success.
func Residual(a *mat.Dense, f *Factorization) float64 {
	pa := mat.PermuteRows(a, f.Perm)
	lu := mat.MulNaive(f.L, f.U)
	denom := a.NormMax() * float64(max(a.Rows, a.Cols))
	if denom == 0 {
		denom = 1
	}
	return mat.MaxAbsDiff(pa, lu) / denom
}

// Solve solves A x = b for one right-hand side with scalar
// substitution: x = U^{-1} L^{-1} P b. A must have been square. It is
// the sequential oracle of the blocked multi-RHS path (SolveMany /
// PrepareSolve), which routes the same arithmetic through the packed
// kernels and the task runtime. A degraded factorization — a zero
// diagonal in U, the prefix-padded output of a factorization that
// absorbed singular chunks — yields a *SingularSolveError carrying the
// factored-prefix length.
func (f *Factorization) Solve(b []float64) ([]float64, error) {
	m := f.L.Rows
	n := f.U.Cols
	if m != n {
		return nil, fmt.Errorf("core: solve requires a square factorization, got %dx%d", m, n)
	}
	if len(b) != m {
		return nil, fmt.Errorf("core: rhs length %d != %d", len(b), m)
	}
	if p := diagPrefix(f.U); p < n {
		return nil, &SingularSolveError{Prefix: p, N: n}
	}
	// y = P b
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		y[i] = b[f.Perm[i]]
	}
	// Forward substitution with unit L.
	for j := 0; j < n; j++ {
		for i := j + 1; i < m; i++ {
			y[i] -= f.L.At(i, j) * y[j]
		}
	}
	// Back substitution with U (the diagonal was screened above).
	for j := n - 1; j >= 0; j-- {
		y[j] /= f.U.At(j, j)
		for i := 0; i < j; i++ {
			y[i] -= f.U.At(i, j) * y[j]
		}
	}
	return y, nil
}

// SolveResidual returns ||A x - b||_inf / (||A||_inf * ||x||_inf), the
// normalized residual of a solve.
func SolveResidual(a *mat.Dense, x, b []float64) float64 {
	m := a.Rows
	r := make([]float64, m)
	copy(r, b)
	for j := 0; j < a.Cols; j++ {
		xj := x[j]
		col := a.Col(j)
		for i := 0; i < m; i++ {
			r[i] -= col[i] * xj
		}
	}
	rn, xn := 0.0, 0.0
	for _, v := range r {
		rn = math.Max(rn, math.Abs(v))
	}
	for _, v := range x {
		xn = math.Max(xn, math.Abs(v))
	}
	denom := a.NormInf() * xn
	if denom == 0 {
		denom = 1
	}
	return rn / denom
}

// ReferenceLU is the sequential oracle: plain recursive GEPP on a dense
// copy, returning the same Factorization shape as Factor. Its panel
// work rides the same blocked register-tiled GETRF leaves as the CALU
// tasks, so oracle and subject share kernels. An exactly singular
// pivot column yields a *kernel.SingularError.
func ReferenceLU(a *mat.Dense) (*Factorization, error) {
	m, n := a.Rows, a.Cols
	work := a.Clone()
	r := min(m, n)
	pivots := make([]int, r)
	v := kernel.View{Rows: m, Cols: n, Stride: work.Stride, Data: work.Data}
	if err := kernel.RecursiveLU(v, pivots); err != nil {
		return nil, err
	}
	perm := make([]int, m)
	for i := range perm {
		perm[i] = i
	}
	for k, p := range pivots {
		perm[k], perm[p] = perm[p], perm[k]
	}
	lf := mat.New(m, r)
	uf := mat.New(r, n)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			x := work.At(i, j)
			if i > j && j < r {
				lf.Set(i, j, x)
			}
			if i <= j && i < r {
				uf.Set(i, j, x)
			}
		}
	}
	for i := 0; i < r; i++ {
		lf.Set(i, i, 1)
	}
	return &Factorization{Perm: perm, L: lf, U: uf}, nil
}

// GrowthFactor returns ||U||_max / ||A||_max, the pivot-growth metric
// used to compare the stability of tournament pivoting against partial
// pivoting (section 2 claims they are comparable in practice).
func GrowthFactor(a *mat.Dense, f *Factorization) float64 {
	am := a.NormMax()
	if am == 0 {
		return 0
	}
	return f.U.NormMax() / am
}

package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// scalarSolveMany runs the scalar oracle column by column.
func scalarSolveMany(t *testing.T, f *Factorization, b *mat.Dense) *mat.Dense {
	t.Helper()
	x := mat.New(b.Rows, b.Cols)
	for j := 0; j < b.Cols; j++ {
		col, err := f.Solve(b.Col(j))
		if err != nil {
			t.Fatalf("scalar solve col %d: %v", j, err)
		}
		copy(x.Col(j), col)
	}
	return x
}

// solveManyResidual is the worst per-column SolveResidual of A X = B.
func solveManyResidual(a *mat.Dense, x, b *mat.Dense) float64 {
	worst := 0.0
	for j := 0; j < b.Cols; j++ {
		if r := SolveResidual(a, x.Col(j), b.Col(j)); r > worst {
			worst = r
		}
	}
	return worst
}

func sameMatrix(t *testing.T, tag string, got, want *mat.Dense) {
	t.Helper()
	for j := 0; j < want.Cols; j++ {
		gc, wc := got.Col(j), want.Col(j)
		for i := range wc {
			if gc[i] != wc[i] {
				t.Fatalf("%s: X[%d,%d] differs: %x vs %x",
					tag, i, j, math.Float64bits(gc[i]), math.Float64bits(wc[i]))
			}
		}
	}
}

// TestSolveBlockedMatchesScalarLU is the solve-equivalence suite: the
// blocked multi-RHS solve graph against the scalar substitution oracle,
// across every scheduling policy, 1/4/8 workers and both dispatchers
// (the concurrent runtime and the serialized global-lock A/B
// reference). The graph's dataflow fixes the arithmetic, so every
// configuration must produce BIT-identical solutions; all must satisfy
// the backward-error bound against A.
func TestSolveBlockedMatchesScalarLU(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	const n, nrhs = 96, 7
	a := mat.Random(n, n, rng)
	b := mat.Random(n, nrhs, rng)
	f, err := Factor(a, Options{Block: 16, Workers: 4, Scheduler: ScheduleHybrid, DynamicRatio: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	oracle := scalarSolveMany(t, f, b)
	if r := solveManyResidual(a, oracle, b); r > 1e-10 {
		t.Fatalf("scalar oracle residual %g", r)
	}

	var ref *mat.Dense
	for _, workers := range []int{1, 4, 8} {
		for _, s := range allSchedulers {
			for _, gl := range []bool{false, true} {
				x, err := f.SolveMany(b, Options{
					Block: 16, Workers: workers, Scheduler: s,
					DynamicRatio: 0.3, Seed: int64(workers), globalLock: gl,
				})
				tag := fmt.Sprintf("%v/w%d/gl=%v", s, workers, gl)
				if err != nil {
					t.Fatalf("%s: %v", tag, err)
				}
				if ref == nil {
					ref = x
				} else {
					sameMatrix(t, tag, x, ref)
				}
				if r := solveManyResidual(a, x, b); r > 1e-10 {
					t.Fatalf("%v/w%d/gl=%v: residual %g", s, workers, gl, r)
				}
			}
		}
	}
	// Blocked and scalar differ only by floating-point reassociation.
	for j := 0; j < nrhs; j++ {
		oc, rc := oracle.Col(j), ref.Col(j)
		for i := range oc {
			if d := math.Abs(oc[i] - rc[i]); d > 1e-9*math.Max(1, math.Abs(oc[i])) {
				t.Fatalf("blocked vs scalar col %d row %d: %g vs %g", j, i, rc[i], oc[i])
			}
		}
	}
}

// TestSolveBlockedMatchesScalarCholesky repeats the equivalence suite
// on the Cholesky path: same solve-graph shape, non-unit forward sweep
// on L, backward sweep on the materialized Lᵀ.
func TestSolveBlockedMatchesScalarCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	const n, nrhs = 80, 5
	a := RandomSPD(n, 7)
	b := mat.Random(n, nrhs, rng)
	f, err := FactorCholesky(a, Options{Block: 16, Workers: 4, Scheduler: ScheduleHybrid, DynamicRatio: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	oracle := mat.New(n, nrhs)
	for j := 0; j < nrhs; j++ {
		col, err := f.Solve(b.Col(j))
		if err != nil {
			t.Fatalf("scalar cholesky solve col %d: %v", j, err)
		}
		copy(oracle.Col(j), col)
	}
	if r := solveManyResidual(a, oracle, b); r > 1e-10 {
		t.Fatalf("scalar oracle residual %g", r)
	}

	var ref *mat.Dense
	for _, workers := range []int{1, 4, 8} {
		for _, s := range allSchedulers {
			for _, gl := range []bool{false, true} {
				x, err := f.SolveMany(b, Options{
					Block: 16, Workers: workers, Scheduler: s,
					DynamicRatio: 0.3, Seed: int64(workers), globalLock: gl,
				})
				tag := fmt.Sprintf("%v/w%d/gl=%v", s, workers, gl)
				if err != nil {
					t.Fatalf("%s: %v", tag, err)
				}
				if ref == nil {
					ref = x
				} else {
					sameMatrix(t, tag, x, ref)
				}
				if r := solveManyResidual(a, x, b); r > 1e-10 {
					t.Fatalf("%v/w%d/gl=%v: residual %g", s, workers, gl, r)
				}
			}
		}
	}
}

// TestSolveDegradedPrefixTypedError: a degraded factorization — U
// prefix-padded with zero diagonals past the factored prefix, the shape
// PR 3's singular-chunk fallback leaves behind — must be reported by
// every solve entry point as a *SingularSolveError carrying the
// factored-prefix length, not an opaque string error.
func TestSolveDegradedPrefixTypedError(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	const n, prefix = 64, 40
	a := mat.Random(n, n, rng)
	f, err := Factor(a, Options{Block: 16, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Degrade: wipe the factored tail, as a prefix fallback that ran out
	// of pivots would.
	for j := prefix; j < n; j++ {
		for i := 0; i <= j; i++ {
			f.U.Set(i, j, 0)
		}
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	checkErr := func(tag string, err error) {
		t.Helper()
		var se *SingularSolveError
		if !errors.As(err, &se) {
			t.Fatalf("%s: want *SingularSolveError, got %v", tag, err)
		}
		if se.Prefix != prefix || se.N != n {
			t.Fatalf("%s: want prefix %d of %d, got %d of %d", tag, prefix, n, se.Prefix, se.N)
		}
	}
	_, err = f.Solve(b)
	checkErr("scalar", err)
	bm := mat.FromColMajor(n, 1, n, b)
	_, err = f.SolveMany(bm, Options{Block: 16, Workers: 2})
	checkErr("blocked", err)
	_, err = f.PrepareSolve(bm, Options{Block: 16})
	checkErr("prepare", err)

	// Cholesky flavour: zero tail of L's diagonal.
	spd := RandomSPD(48, 5)
	cf, err := FactorCholesky(spd, Options{Block: 16, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for j := 30; j < 48; j++ {
		cf.L.Set(j, j, 0)
	}
	_, err = cf.Solve(make([]float64, 48))
	var se *SingularSolveError
	if !errors.As(err, &se) || se.Prefix != 30 {
		t.Fatalf("cholesky scalar: want prefix 30, got %v", err)
	}
	_, err = cf.SolveMany(mat.New(48, 2), Options{Block: 16})
	if !errors.As(err, &se) || se.Prefix != 30 || se.N != 48 {
		t.Fatalf("cholesky blocked: want prefix 30 of 48, got %v", err)
	}
}

// TestSolvePropertyRagged drives the blocked solve through randomized
// ragged shapes — n not a multiple of the block, single and many RHS,
// odd blocks, every scheduler — against the scalar oracle.
func TestSolvePropertyRagged(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	cases := 18
	if testing.Short() {
		cases = 8
	}
	for c := 0; c < cases; c++ {
		n := 5 + rng.Intn(93)
		nrhs := 1 + rng.Intn(9)
		block := []int{5, 8, 16, 24, 32}[rng.Intn(5)]
		workers := 1 + rng.Intn(4)
		s := allSchedulers[rng.Intn(len(allSchedulers))]
		a := mat.RandomDiagDominant(n, rng)
		b := mat.Random(n, nrhs, rng)
		f, err := Factor(a, Options{Block: block, Workers: workers})
		if err != nil {
			t.Fatalf("case %d (n=%d b=%d w=%d): factor: %v", c, n, block, workers, err)
		}
		oracle := scalarSolveMany(t, f, b)
		x, err := f.SolveMany(b, Options{
			Block: block, Workers: workers, Scheduler: s, DynamicRatio: 0.3, Seed: int64(c),
		})
		if err != nil {
			t.Fatalf("case %d (n=%d nrhs=%d b=%d w=%d %v): %v", c, n, nrhs, block, workers, s, err)
		}
		if r := solveManyResidual(a, x, b); r > 1e-10 {
			t.Fatalf("case %d (n=%d nrhs=%d b=%d w=%d %v): residual %g", c, n, nrhs, block, workers, s, r)
		}
		for j := 0; j < nrhs; j++ {
			oc, xc := oracle.Col(j), x.Col(j)
			for i := range oc {
				if d := math.Abs(oc[i] - xc[i]); d > 1e-8*math.Max(1, math.Abs(oc[i])) {
					t.Fatalf("case %d col %d row %d: blocked %g vs scalar %g", c, j, i, xc[i], oc[i])
				}
			}
		}
	}
}

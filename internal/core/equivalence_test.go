package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/layout"
	"repro/internal/mat"
)

// sameFactorization fails the test unless f and ref have bit-identical
// pivot sequences and factors.
func sameFactorization(t *testing.T, tag string, f, ref *Factorization) {
	t.Helper()
	for i := range ref.Perm {
		if f.Perm[i] != ref.Perm[i] {
			t.Fatalf("%s: pivot %d differs: %d vs %d", tag, i, f.Perm[i], ref.Perm[i])
		}
	}
	for i := range ref.L.Data {
		if f.L.Data[i] != ref.L.Data[i] {
			t.Fatalf("%s: L[%d] differs: %x vs %x",
				tag, i, math.Float64bits(f.L.Data[i]), math.Float64bits(ref.L.Data[i]))
		}
	}
	for i := range ref.U.Data {
		if f.U.Data[i] != ref.U.Data[i] {
			t.Fatalf("%s: U[%d] differs: %x vs %x",
				tag, i, math.Float64bits(f.U.Data[i]), math.Float64bits(ref.U.Data[i]))
		}
	}
}

// TestFactorBitIdenticalAcrossPoliciesAndDispatchers is the end-to-end
// guarantee the concurrent runtime must preserve. For a fixed worker
// count the task graph — including the tournament-pivoting tree, whose
// bracket follows the worker grid — is fixed, so its dataflow
// determines the arithmetic completely: every scheduling policy, and
// both the serialized global-lock dispatcher (the seed runtime's
// behaviour) and the concurrent lock-free runtime, must produce
// BIT-identical pivot sequences and factors. Any scheduling-dependent
// arithmetic — a lost update, a task run before its dependencies, a
// double execution — shows up here as a bit difference. Run under
// -race to also certify the dispatch paths.
func TestFactorBitIdenticalAcrossPoliciesAndDispatchers(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sizes := [][2]int{{96, 96}, {120, 72}}
	if testing.Short() {
		sizes = sizes[:1]
	}
	for _, sz := range sizes {
		m, n := sz[0], sz[1]
		a := mat.Random(m, n, rng)
		for _, workers := range []int{1, 2, 4, 8} {
			// Reference: the same graph under the serialized global-lock
			// dispatcher — the old serial execution order.
			ref, err := Factor(a, Options{
				Block: 8, Workers: workers, Scheduler: ScheduleHybrid,
				DynamicRatio: 0.3, globalLock: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if r := Residual(a, ref); r > 1e-12 {
				t.Fatalf("%dx%d workers=%d: reference residual %g too large", m, n, workers, r)
			}
			for _, s := range []Scheduler{ScheduleStatic, ScheduleDynamic, ScheduleHybrid, ScheduleWorkStealing} {
				f, err := Factor(a, Options{
					Block: 8, Workers: workers, Scheduler: s,
					DynamicRatio: 0.3, Seed: int64(workers),
				})
				if err != nil {
					t.Fatalf("%s workers=%d: %v", s, workers, err)
				}
				tag := s.String() + "/" + string(rune('0'+workers)) + "w"
				sameFactorization(t, tag, f, ref)
				if r := Residual(a, f); r > 1e-12 {
					t.Fatalf("%s workers=%d: residual %g too large", s, workers, r)
				}
			}
		}
	}
}

// TestFactorBitIdenticalAcrossLayoutsUnderConcurrency repeats the
// equivalence check on the other storage schemes at one contended
// configuration each, so layout-specific task closures are also covered
// by the race certification.
func TestFactorBitIdenticalAcrossLayoutsUnderConcurrency(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	a := mat.Random(80, 80, rng)
	for _, lay := range []layout.Kind{layout.BCL, layout.CM, layout.TwoLevel} {
		ref, err := Factor(a, Options{
			Layout: lay, Block: 8, Workers: 8, Scheduler: ScheduleHybrid,
			DynamicRatio: 0.25, globalLock: true,
		})
		if err != nil {
			t.Fatalf("%v: %v", lay, err)
		}
		f, err := Factor(a, Options{
			Layout: lay, Block: 8, Workers: 8, Scheduler: ScheduleHybrid, DynamicRatio: 0.25,
		})
		if err != nil {
			t.Fatalf("%v workers=8: %v", lay, err)
		}
		sameFactorization(t, lay.String(), f, ref)
	}
}

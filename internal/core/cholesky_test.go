package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/layout"
	"repro/internal/mat"
)

func TestCholeskyAllLayoutsAllSchedulers(t *testing.T) {
	a := RandomSPD(96, 3)
	for _, kind := range []layout.Kind{layout.CM, layout.BCL, layout.TwoLevel} {
		for _, sch := range []Scheduler{ScheduleStatic, ScheduleDynamic, ScheduleHybrid, ScheduleWorkStealing} {
			f, err := FactorCholesky(a, Options{
				Layout: kind, Block: 16, Workers: 4,
				Scheduler: sch, DynamicRatio: 0.25,
			})
			if err != nil {
				t.Fatalf("%v/%v: %v", kind, sch, err)
			}
			if r := CholeskyResidual(a, f); r > 1e-12 {
				t.Errorf("%v/%v: residual %g", kind, sch, r)
			}
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	n := 80
	a := RandomSPD(n, 5)
	f, err := FactorCholesky(a, Options{Layout: layout.BCL, Block: 16, Workers: 3, Scheduler: ScheduleHybrid, DynamicRatio: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetrize a for the residual helper (only lower was guaranteed).
	if r := SolveResidual(a, x, b); r > 1e-12 {
		t.Fatalf("cholesky solve residual %g", r)
	}
}

func TestCholeskyRejectsNonSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := FactorCholesky(mat.Random(10, 8, rng), Options{}); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := mat.New(8, 8) // zero matrix is not SPD
	if _, err := FactorCholesky(a, Options{Block: 4, Workers: 1}); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
}

func TestCholeskyRagged(t *testing.T) {
	a := RandomSPD(50, 7) // 50 is not a multiple of 16
	f, err := FactorCholesky(a, Options{Layout: layout.TwoLevel, Block: 16, Workers: 2, Scheduler: ScheduleDynamic})
	if err != nil {
		t.Fatal(err)
	}
	if r := CholeskyResidual(a, f); r > 1e-12 {
		t.Fatalf("ragged residual %g", r)
	}
}

func TestCholeskyDiagonalPositive(t *testing.T) {
	a := RandomSPD(40, 9)
	f, err := FactorCholesky(a, Options{Block: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if f.L.At(i, i) <= 0 {
			t.Fatalf("L[%d,%d] = %g not positive", i, i, f.L.At(i, i))
		}
	}
	// Strict upper triangle of L must be zero.
	for j := 1; j < 40; j++ {
		for i := 0; i < j; i++ {
			if f.L.At(i, j) != 0 {
				t.Fatalf("L[%d,%d] = %g above diagonal", i, j, f.L.At(i, j))
			}
		}
	}
}

func TestRandomSPDIsSPD(t *testing.T) {
	a := RandomSPD(30, 11)
	// Symmetric.
	for j := 0; j < 30; j++ {
		for i := 0; i < 30; i++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > 1e-12 {
				t.Fatal("RandomSPD not symmetric")
			}
		}
	}
	// Positive diagonal dominance implied by +n*I shift.
	for i := 0; i < 30; i++ {
		if a.At(i, i) <= 0 {
			t.Fatal("RandomSPD non-positive diagonal")
		}
	}
}

// Property: Cholesky under random layouts, schedulers, blocks and
// worker counts always reconstructs A to machine precision.
func TestCholeskyProperty(t *testing.T) {
	kinds := []layout.Kind{layout.CM, layout.BCL, layout.TwoLevel}
	scheds := []Scheduler{ScheduleStatic, ScheduleDynamic, ScheduleHybrid}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16 + int(rng.Int31n(60))
		a := RandomSPD(n, seed)
		fac, err := FactorCholesky(a, Options{
			Layout: kinds[rng.Intn(3)], Block: 8 + int(rng.Int31n(12)),
			Workers: 1 + int(rng.Int31n(4)), Scheduler: scheds[rng.Intn(3)],
			DynamicRatio: rng.Float64(),
		})
		if err != nil {
			return false
		}
		return CholeskyResidual(a, fac) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

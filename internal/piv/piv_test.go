package piv

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func ids(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

func TestSelectPicksLargestSingleColumn(t *testing.T) {
	vals := mat.New(5, 1)
	for i, v := range []float64{1, -7, 3, 2, 5} {
		vals.Set(i, 0, v)
	}
	c, err := Select(vals, ids(100, 105), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.IDs) != 1 || c.IDs[0] != 101 {
		t.Fatalf("selected %v want [101] (largest magnitude)", c.IDs)
	}
	if c.Vals.At(0, 0) != -7 {
		t.Fatal("candidate must carry original values")
	}
}

func TestSelectLeavesInputUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := mat.Random(10, 4, rng)
	orig := vals.Clone()
	if _, err := Select(vals, ids(0, 10), 4); err != nil {
		t.Fatal(err)
	}
	if mat.MaxAbsDiff(vals, orig) != 0 {
		t.Fatal("Select must not modify its input")
	}
}

func TestSelectFewerRowsThanB(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := mat.Random(3, 4, rng)
	c, err := Select(vals, ids(7, 10), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.IDs) != 3 {
		t.Fatalf("want all 3 rows as candidates, got %d", len(c.IDs))
	}
}

func TestCombineKeepsBestOfBoth(t *testing.T) {
	// One candidate has a huge row; it must survive the combine.
	a := mat.New(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	b := mat.New(2, 2)
	b.Set(0, 0, 1000)
	b.Set(0, 1, 1)
	b.Set(1, 1, 2)
	ca := Candidate{Vals: a, IDs: []int{10, 11}}
	cb := Candidate{Vals: b, IDs: []int{20, 21}}
	got, err := Combine(ca, cb, 2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range got.IDs {
		if id == 20 {
			found = true
		}
	}
	if !found {
		t.Fatalf("dominant row 20 lost in combine: %v", got.IDs)
	}
}

func TestCombineWithEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := mat.Random(2, 2, rng)
	c := Candidate{Vals: vals, IDs: []int{1, 2}}
	got, err := Combine(Candidate{}, c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.IDs) != 2 || got.IDs[0] != 1 {
		t.Fatal("combine with empty must return the non-empty side")
	}
}

func TestTournamentMatchesDirectGEPPPivotQuality(t *testing.T) {
	// Tournament pivoting need not pick the same rows as GEPP, but the
	// pivot block it selects must be far from singular on random input.
	rng := rand.New(rand.NewSource(4))
	b := 4
	panel := mat.Random(32, b, rng)
	var cands []Candidate
	for c := 0; c < 4; c++ {
		chunk := panel.Slice(c*8, (c+1)*8, 0, b)
		cand, err := Select(chunk, ids(c*8, (c+1)*8), b)
		if err != nil {
			t.Fatal(err)
		}
		cands = append(cands, cand)
	}
	winners, err := Tournament(cands, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(winners) != b {
		t.Fatalf("want %d winners, got %d", b, len(winners))
	}
	seen := map[int]bool{}
	for _, w := range winners {
		if w < 0 || w >= 32 || seen[w] {
			t.Fatalf("invalid winner set %v", winners)
		}
		seen[w] = true
	}
}

func TestTournamentSingleCandidate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := mat.Random(6, 3, rng)
	c, err := Select(vals, ids(0, 6), 3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Tournament([]Candidate{c}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 3 {
		t.Fatal("single-candidate tournament must return the candidate ids")
	}
}

func TestTournamentEmpty(t *testing.T) {
	if _, err := Tournament(nil, 3); err == nil {
		t.Fatal("expected error for empty tournament")
	}
}

func TestSwapsMovesPivotsIntoPlace(t *testing.T) {
	// Pivot rows 7, 3, 9 should land at rows 2, 3, 4 (base=2).
	swaps := Swaps([]int{7, 3, 9}, 2)
	order := ids(0, 10)
	ApplySwapsToPerm(order, swaps)
	if order[2] != 7 || order[3] != 3 || order[4] != 9 {
		t.Fatalf("after swaps rows are %v", order[:5])
	}
}

func TestSwapsIdentityWhenAlreadyPlaced(t *testing.T) {
	if got := Swaps([]int{5, 6, 7}, 5); len(got) != 0 {
		t.Fatalf("expected no swaps, got %v", got)
	}
}

func TestSwapsChained(t *testing.T) {
	// Pivot for slot 0 displaces a row that is itself a later pivot.
	swaps := Swaps([]int{1, 0}, 0)
	order := ids(0, 3)
	ApplySwapsToPerm(order, swaps)
	if order[0] != 1 || order[1] != 0 {
		t.Fatalf("chained displacement broken: %v", order)
	}
}

func TestChunkRows(t *testing.T) {
	chunks := ChunkRows(4, 36, 4, 4)
	if len(chunks) != 4 {
		t.Fatalf("want 4 chunks got %v", chunks)
	}
	if chunks[0][0] != 4 || chunks[3][1] != 36 {
		t.Fatalf("chunks must cover [4,36): %v", chunks)
	}
	total := 0
	for _, c := range chunks {
		total += c[1] - c[0]
	}
	if total != 32 {
		t.Fatalf("chunks cover %d rows want 32", total)
	}
}

func TestChunkRowsFewRows(t *testing.T) {
	// Only 6 rows with b=4: at most ceil(6/4)=2 chunks even if 8 requested.
	chunks := ChunkRows(0, 6, 4, 8)
	if len(chunks) != 2 {
		t.Fatalf("want 2 chunks got %v", chunks)
	}
}

func TestChunkRowsEmpty(t *testing.T) {
	if got := ChunkRows(10, 10, 4, 4); got != nil {
		t.Fatalf("want nil for empty range, got %v", got)
	}
}

// Property: tournament pivoting over random chunkings always yields a
// set of b distinct rows whose pivot block is invertible enough that
// the no-pivot LU of the reordered panel succeeds with bounded growth.
func TestTournamentPivotBlockInvertibleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := 2 + int(rng.Int31n(4))
		rows := b * (2 + int(rng.Int31n(6)))
		panel := mat.Random(rows, b, rng)
		nchunks := 1 + int(rng.Int31n(4))
		chunks := ChunkRows(0, rows, b, nchunks)
		var cands []Candidate
		for _, ch := range chunks {
			c, err := Select(panel.Slice(ch[0], ch[1], 0, b), ids(ch[0], ch[1]), b)
			if err != nil {
				return false
			}
			cands = append(cands, c)
		}
		winners, err := Tournament(cands, b)
		if err != nil || len(winners) != b {
			return false
		}
		// The pivot block must be well conditioned enough to factor.
		blockVals := mat.New(b, b)
		for t2, r := range winners {
			for j := 0; j < b; j++ {
				blockVals.Set(t2, j, panel.At(r, j))
			}
		}
		// Crude invertibility check via GEPP on the pivot block.
		c2, err := Select(blockVals, ids(0, b), b)
		if err != nil {
			return false
		}
		return len(c2.IDs) == b && !math.IsNaN(blockVals.NormMax())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// deficientChunk builds an r x c chunk with `rank` distinct random rows above
// a zero-row region — exactly singular as a chunk: zero rows stay
// exactly zero under elimination, so GEPP deterministically hits a zero
// pivot at column `rank` and the prefix fallback must engage.
func deficientChunk(r, c, rank int, rng *rand.Rand) *mat.Dense {
	out := mat.New(r, c)
	out.Slice(0, rank, 0, c).CopyFrom(mat.Random(rank, c, rng))
	return out
}

func TestSelectSingularChunkPrefixFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	vals := deficientChunk(8, 4, 2, rng)
	c, err := Select(vals, ids(10, 18), 4)
	if err != nil {
		t.Fatalf("a singular chunk must degrade, not error: %v", err)
	}
	if len(c.IDs) != 4 {
		t.Fatalf("fallback fielded %d contestants, want min(b, rows) = 4", len(c.IDs))
	}
	seen := map[int]bool{}
	for t2, id := range c.IDs {
		if id < 10 || id >= 18 || seen[id] {
			t.Fatalf("invalid candidate ids %v", c.IDs)
		}
		seen[id] = true
		// Candidates must carry original (unfactored) row values.
		for j := 0; j < 4; j++ {
			if c.Vals.At(t2, j) != vals.At(id-10, j) {
				t.Fatalf("candidate %d does not carry original values of row %d", t2, id)
			}
		}
	}
}

func TestSelectAllZeroChunk(t *testing.T) {
	vals := mat.New(6, 3)
	c, err := Select(vals, ids(0, 6), 3)
	if err != nil {
		t.Fatalf("zero chunk must still field contestants: %v", err)
	}
	if len(c.IDs) != 3 {
		t.Fatalf("want 3 padded candidates, got %d", len(c.IDs))
	}
	// With no established prefix the padding preserves input order.
	for i, id := range c.IDs {
		if id != i {
			t.Fatalf("padding order broken: %v", c.IDs)
		}
	}
}

func TestTournamentSurvivesSingularChunk(t *testing.T) {
	// One exactly singular chunk among healthy ones: the tournament must
	// still produce b distinct winners whose pivot block factors, because
	// the combine rounds outvote the singular chunk's padding.
	rng := rand.New(rand.NewSource(7))
	b := 4
	healthy := mat.Random(24, b, rng)
	var cands []Candidate
	for c := 0; c < 3; c++ {
		chunk := healthy.Slice(c*8, (c+1)*8, 0, b)
		cand, err := Select(chunk, ids(c*8, (c+1)*8), b)
		if err != nil {
			t.Fatal(err)
		}
		cands = append(cands, cand)
	}
	singVals := deficientChunk(8, b, 2, rng)
	sing, err := Select(singVals, ids(24, 32), b)
	if err != nil {
		t.Fatal(err)
	}
	cands = append(cands, sing)
	winners, err := Tournament(cands, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(winners) != b {
		t.Fatalf("want %d winners, got %d", b, len(winners))
	}
	block := mat.New(b, b)
	all := mat.New(32, b)
	all.Slice(0, 24, 0, b).CopyFrom(healthy)
	all.Slice(24, 32, 0, b).CopyFrom(singVals)
	seen := map[int]bool{}
	for t2, w := range winners {
		if w < 0 || w >= 32 || seen[w] {
			t.Fatalf("invalid winner set %v", winners)
		}
		seen[w] = true
		for j := 0; j < b; j++ {
			block.Set(t2, j, all.At(w, j))
		}
	}
	if c2, err := Select(block, ids(0, b), b); err != nil || len(c2.IDs) != b {
		t.Fatalf("winning pivot block not full rank: %v %v", c2.IDs, err)
	}
}

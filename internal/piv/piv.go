// Package piv implements tournament pivoting, the pivot-selection
// strategy of communication-avoiding LU (the TSLU preprocessing step of
// section 2). A panel of b columns is split row-wise into chunks; each
// chunk nominates its b best rows via Gaussian elimination with partial
// pivoting, and a binary reduction tree of further GEPP contests picks
// the final b pivot rows for the whole panel. The reduction operator
// is GEPP on the stacked candidates, with Toledo's recursive LU as the
// sequential algorithm, exactly as the paper does.
package piv

import (
	"errors"
	"fmt"

	"repro/internal/kernel"
	"repro/internal/mat"
)

// Candidate is one contestant in the tournament: up to b rows of
// original (unfactored) panel values together with their global row
// indices.
type Candidate struct {
	Vals *mat.Dense // Rows x panelWidth original values of the candidate rows
	IDs  []int      // global row index of each candidate row
}

// Select runs GEPP on vals (a copy is factored; vals is left untouched)
// and returns the candidate holding the top min(b, rows) pivot rows.
// ids[i] is the global row index of vals row i.
//
// A structurally singular chunk — a duplicated or zero row region whose
// GEPP hits an exactly zero pivot column — can still contribute rows:
// Select falls back to the pivot-row prefix GEPP established before
// failing and pads it with the remaining candidate rows in order, so
// the tournament always fields min(b, rows) contestants. Later combine
// rounds then outvote the padding with better rows from other chunks,
// which is what lets one singular chunk degrade gracefully instead of
// killing the whole factorization. An error is returned only for
// failures other than exact singularity.
func Select(vals *mat.Dense, ids []int, b int) (Candidate, error) {
	r, c := vals.Rows, vals.Cols
	if len(ids) != r {
		panic(fmt.Sprintf("piv: ids length %d != rows %d", len(ids), r))
	}
	steps := min(r, c)
	work := vals.Clone()
	pivots := make([]int, steps)
	err := kernel.RecursiveLU(kernel.View{Rows: r, Cols: c, Stride: work.Stride, Data: work.Data}, pivots)
	established := steps
	if err != nil {
		var se *kernel.SingularError
		if !errors.As(err, &se) {
			return Candidate{}, fmt.Errorf("piv: candidate selection failed: %w", err)
		}
		established = se.K
	}
	// Replay the established swap sequence on the local index
	// permutation; rows beyond the prefix keep their relative order and
	// become the padding.
	p := make([]int, r)
	for i := range p {
		p[i] = i
	}
	for k, q := range pivots[:established] {
		p[k], p[q] = p[q], p[k]
	}
	take := min(b, r)
	out := Candidate{Vals: mat.New(take, c), IDs: make([]int, take)}
	for t := 0; t < take; t++ {
		src := p[t]
		out.IDs[t] = ids[src]
		for j := 0; j < c; j++ {
			out.Vals.Set(t, j, vals.At(src, j))
		}
	}
	return out, nil
}

// Combine plays one reduction-tree game: the rows of both candidates
// are stacked and GEPP picks the top min(b, total) of them.
func Combine(a, b Candidate, bsize int) (Candidate, error) {
	if a.Vals == nil {
		return b, nil
	}
	if b.Vals == nil {
		return a, nil
	}
	if a.Vals.Cols != b.Vals.Cols {
		panic(fmt.Sprintf("piv: combine width mismatch %d vs %d", a.Vals.Cols, b.Vals.Cols))
	}
	ra, rb := a.Vals.Rows, b.Vals.Rows
	stack := mat.New(ra+rb, a.Vals.Cols)
	stack.Slice(0, ra, 0, stack.Cols).CopyFrom(a.Vals)
	stack.Slice(ra, ra+rb, 0, stack.Cols).CopyFrom(b.Vals)
	ids := make([]int, 0, ra+rb)
	ids = append(ids, a.IDs...)
	ids = append(ids, b.IDs...)
	return Select(stack, ids, bsize)
}

// Tournament reduces a slice of candidates with a binary tree (the
// communication-minimizing shape the paper uses) and returns the global
// row indices of the winning pivot rows, best first.
func Tournament(cands []Candidate, bsize int) ([]int, error) {
	if len(cands) == 0 {
		return nil, fmt.Errorf("piv: empty tournament")
	}
	round := cands
	for len(round) > 1 {
		next := make([]Candidate, 0, (len(round)+1)/2)
		for i := 0; i < len(round); i += 2 {
			if i+1 == len(round) {
				next = append(next, round[i])
				continue
			}
			c, err := Combine(round[i], round[i+1], bsize)
			if err != nil {
				return nil, err
			}
			next = append(next, c)
		}
		round = next
	}
	return round[0].IDs, nil
}

// Swaps converts the winning pivot rows into the sequence of global row
// interchanges that moves pivIDs[t] to row base+t, in order. The
// sequence is applied lazily, block column by block column, by the F
// and U tasks (the paper's "right swap"), and to the left part of L at
// the very end (Algorithm 1, line 43).
func Swaps(pivIDs []int, base int) [][2]int {
	where := make(map[int]int, len(pivIDs)) // row id -> current row
	occ := make(map[int]int, len(pivIDs))   // row -> id currently living there
	loc := func(id int) int {
		if w, ok := where[id]; ok {
			return w
		}
		return id
	}
	at := func(row int) int {
		if id, ok := occ[row]; ok {
			return id
		}
		return row
	}
	var swaps [][2]int
	for t, id := range pivIDs {
		dst := base + t
		src := loc(id)
		if src == dst {
			continue
		}
		swaps = append(swaps, [2]int{dst, src})
		displaced := at(dst)
		occ[src] = displaced
		where[displaced] = src
		occ[dst] = id
		where[id] = dst
	}
	return swaps
}

// ApplySwapsToPerm replays a swap sequence on a row-permutation vector
// (perm[i] = original index of the row now living at i).
func ApplySwapsToPerm(perm []int, swaps [][2]int) {
	for _, s := range swaps {
		perm[s[0]], perm[s[1]] = perm[s[1]], perm[s[0]]
	}
}

// ChunkRows partitions the panel rows base..m-1 into at most maxChunks
// contiguous chunks of at least b rows each (a chunk must be able to
// nominate b candidates, except when fewer rows remain in total).
// Returns the half-open global row ranges.
func ChunkRows(base, m, b, maxChunks int) [][2]int {
	rows := m - base
	if rows <= 0 {
		return nil
	}
	nc := maxChunks
	if nc < 1 {
		nc = 1
	}
	if nc > (rows+b-1)/b {
		nc = (rows + b - 1) / b
	}
	per := rows / nc
	rem := rows % nc
	out := make([][2]int, 0, nc)
	start := base
	for i := 0; i < nc; i++ {
		sz := per
		if i < rem {
			sz++
		}
		out = append(out, [2]int{start, start + sz})
		start += sz
	}
	return out
}

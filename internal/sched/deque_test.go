package sched

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dag"
)

func TestDequeLIFOOwnerFIFOThief(t *testing.T) {
	d := &clDeque{}
	d.init()
	t1 := &dag.Task{ID: 1}
	t2 := &dag.Task{ID: 2}
	t3 := &dag.Task{ID: 3}
	d.push(t1)
	d.push(t2)
	d.push(t3)
	if got := d.steal(); got != t1 {
		t.Fatalf("steal got %v want oldest (1)", got)
	}
	if got := d.pop(); got != t3 {
		t.Fatalf("pop got %v want newest (3)", got)
	}
	if got := d.pop(); got != t2 {
		t.Fatalf("pop got %v want 2", got)
	}
	if got := d.pop(); got != nil {
		t.Fatalf("empty pop got %v", got)
	}
	if got := d.steal(); got != nil {
		t.Fatalf("empty steal got %v", got)
	}
}

func TestDequeGrowsPastInitialCapacity(t *testing.T) {
	d := &clDeque{}
	d.init()
	const n = 1000 // well past the initial 64
	tasks := make([]*dag.Task, n)
	for i := range tasks {
		tasks[i] = &dag.Task{ID: int32(i)}
		d.push(tasks[i])
	}
	if d.size() != n {
		t.Fatalf("size = %d want %d", d.size(), n)
	}
	for i := n - 1; i >= 0; i-- {
		if got := d.pop(); got != tasks[i] {
			t.Fatalf("pop %d got %v", i, got)
		}
	}
}

// TestDequeConcurrentStress: one owner interleaving pushes and pops
// with several thieves stealing; every task must surface exactly once.
func TestDequeConcurrentStress(t *testing.T) {
	const (
		nTasks   = 20000
		nThieves = 3
	)
	d := &clDeque{}
	d.init()
	tasks := make([]*dag.Task, nTasks)
	for i := range tasks {
		tasks[i] = &dag.Task{ID: int32(i)}
	}
	seen := make([]int32, nTasks)
	var got atomic.Int64

	record := func(tk *dag.Task) {
		if tk != nil {
			atomic.AddInt32(&seen[tk.ID], 1)
			got.Add(1)
		}
	}

	var wg sync.WaitGroup
	for th := 0; th < nThieves; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for got.Load() < nTasks {
				record(d.steal())
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < nTasks; i++ {
			d.push(tasks[i])
			if i%3 == 0 {
				record(d.pop())
			}
		}
		for got.Load() < nTasks {
			record(d.pop())
		}
	}()
	wg.Wait()

	for id, n := range seen {
		if n != 1 {
			t.Fatalf("task %d surfaced %d times", id, n)
		}
	}
}

package sched

import (
	"testing"

	"repro/internal/dag"
)

// mkTask builds a standalone task for queue tests.
func mkTask(id int32, owner int, static bool, prio int64) *dag.Task {
	return &dag.Task{ID: id, Owner: owner, Static: static, Prio: prio}
}

func TestStaticPinsToOwner(t *testing.T) {
	p := NewStatic()
	p.Reset(&dag.Graph{}, 2)
	p.Ready(mkTask(1, 0, true, 10))
	p.Ready(mkTask(2, 1, true, 5))
	if got := p.Next(0); got == nil || got.ID != 1 {
		t.Fatalf("worker 0 got %v", got)
	}
	if got := p.Next(0); got != nil {
		t.Fatalf("worker 0 must not see worker 1's task, got %v", got)
	}
	if got := p.Next(1); got == nil || got.ID != 2 {
		t.Fatalf("worker 1 got %v", got)
	}
}

func TestStaticPriorityOrder(t *testing.T) {
	p := NewStatic()
	p.Reset(&dag.Graph{}, 1)
	p.Ready(mkTask(1, 0, true, 30))
	p.Ready(mkTask(2, 0, true, 10))
	p.Ready(mkTask(3, 0, true, 20))
	want := []int32{2, 3, 1}
	for _, w := range want {
		if got := p.Next(0); got.ID != w {
			t.Fatalf("got %d want %d", got.ID, w)
		}
	}
}

func TestDynamicAnyWorkerLowestPrioFirst(t *testing.T) {
	p := NewDynamic()
	p.Reset(&dag.Graph{}, 4)
	p.Ready(mkTask(1, 3, false, 50))
	p.Ready(mkTask(2, 2, false, 5))
	if got := p.Next(0); got.ID != 2 {
		t.Fatalf("got %d want 2 (DFS order)", got.ID)
	}
	if got := p.Next(3); got.ID != 1 {
		t.Fatalf("got %d want 1", got.ID)
	}
	c := p.Counters()
	if c.DequeueDynamic != 2 {
		t.Fatalf("dynamic dequeues = %d want 2", c.DequeueDynamic)
	}
	if c.Mismatches != 1 { // task 1 popped by worker 0, owner 3? no: task2 owner2 by w0 (mismatch), task1 owner3 by w3 (match)
		t.Fatalf("mismatches = %d want 1", c.Mismatches)
	}
}

func TestHybridPrefersOwnStaticQueue(t *testing.T) {
	p := NewHybrid()
	p.Reset(&dag.Graph{}, 2)
	p.Ready(mkTask(1, 0, true, 100)) // static, low priority value order but static wins
	p.Ready(mkTask(2, 0, false, 1))  // dynamic, better priority
	if got := p.Next(0); got.ID != 1 {
		t.Fatalf("hybrid must drain own static queue first, got %d", got.ID)
	}
	if got := p.Next(0); got.ID != 2 {
		t.Fatalf("then fall back to dynamic, got %d", got.ID)
	}
}

func TestHybridIdleWorkerTakesDynamic(t *testing.T) {
	// Algorithm 1 lines 8-10: a worker with no ready static tasks picks
	// up dynamic work instead of idling.
	p := NewHybrid()
	p.Reset(&dag.Graph{}, 2)
	p.Ready(mkTask(1, 1, true, 10))  // static task for worker 1
	p.Ready(mkTask(2, 1, false, 20)) // dynamic task
	if got := p.Next(0); got == nil || got.ID != 2 {
		t.Fatalf("worker 0 should pull dynamic task, got %v", got)
	}
	c := p.Counters()
	if c.DequeueDynamic != 1 || c.Mismatches != 1 {
		t.Fatalf("counters %+v", c)
	}
}

func TestHybridReadyCount(t *testing.T) {
	p := NewHybrid()
	p.Reset(&dag.Graph{}, 2)
	if p.ReadyCount() != 0 {
		t.Fatal("fresh policy not empty")
	}
	p.Ready(mkTask(1, 0, true, 1))
	p.Ready(mkTask(2, 0, false, 2))
	if p.ReadyCount() != 2 {
		t.Fatalf("ready = %d want 2", p.ReadyCount())
	}
	p.Next(0)
	p.Next(0)
	if p.ReadyCount() != 0 {
		t.Fatalf("ready = %d want 0", p.ReadyCount())
	}
}

func TestWorkStealingOwnDequeLIFO(t *testing.T) {
	p := NewWorkStealing(1)
	p.Reset(&dag.Graph{}, 2)
	p.Ready(mkTask(1, 0, true, 1))
	p.Ready(mkTask(2, 0, true, 2))
	if got := p.Next(0); got.ID != 2 {
		t.Fatalf("own deque must be LIFO, got %d", got.ID)
	}
}

func TestWorkStealingStealsFIFO(t *testing.T) {
	p := NewWorkStealing(1)
	p.Reset(&dag.Graph{}, 2)
	p.Ready(mkTask(1, 1, true, 1))
	p.Ready(mkTask(2, 1, true, 2))
	got := p.Next(0) // steal from worker 1
	if got == nil || got.ID != 1 {
		t.Fatalf("steal must be FIFO from victim, got %v", got)
	}
	c := p.Counters()
	if c.Steals != 1 {
		t.Fatalf("steals = %d want 1", c.Steals)
	}
}

func TestWorkStealingExhausted(t *testing.T) {
	p := NewWorkStealing(1)
	p.Reset(&dag.Graph{}, 3)
	if got := p.Next(1); got != nil {
		t.Fatalf("empty policy returned %v", got)
	}
}

func TestAllPoliciesDrainEverything(t *testing.T) {
	policies := []Policy{NewStatic(), NewDynamic(), NewHybrid(), NewWorkStealing(3)}
	for _, p := range policies {
		p.Reset(&dag.Graph{}, 3)
		for i := int32(0); i < 30; i++ {
			p.Ready(mkTask(i, int(i)%3, i%2 == 0, int64(i)))
		}
		got := 0
		for w := 0; got < 30; w = (w + 1) % 3 {
			if t2 := p.Next(w); t2 != nil {
				got++
			} else if p.ReadyCount() == 0 {
				break
			}
		}
		if got != 30 {
			t.Errorf("%s drained %d/30", p.Name(), got)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	if NewStatic().Name() != "static" || NewDynamic().Name() != "dynamic" ||
		NewHybrid().Name() != "hybrid" || NewWorkStealing(0).Name() != "worksteal" {
		t.Fatal("policy names must be stable for reports")
	}
}

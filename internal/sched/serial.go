package sched

import (
	"math/rand"

	"repro/internal/dag"
)

// This file holds the serial adapters: the deterministic, single-driver
// form of each policy. The discrete-event simulator calls them from its
// event loop, so they need no locks and their decisions are
// byte-for-byte reproducible. The concurrent forms live in
// concurrent.go.

// ---------------------------------------------------------------------
// Static policy: every task is pinned to its owner's queue.

// Static is the fully static owner-computes policy ("CALU static"):
// each worker executes exactly the tasks whose output blocks it owns
// under the 2D block-cyclic distribution, in look-ahead order. Load
// imbalance shows up as idle time (Figure 1).
type Static struct {
	queues []taskHeap
	ready  int
	c      Counters
}

// NewStatic returns a fully static policy.
func NewStatic() *Static { return &Static{} }

// Name implements Policy.
func (p *Static) Name() string { return "static" }

// Reset implements Policy.
func (p *Static) Reset(g *dag.Graph, workers int) {
	p.queues = make([]taskHeap, workers)
	p.ready = 0
	p.c = Counters{}
}

// Ready implements Policy.
func (p *Static) Ready(t *dag.Task) {
	w := t.Owner % len(p.queues)
	pushTask(&p.queues[w], t)
	p.ready++
}

// Next implements Policy.
func (p *Static) Next(worker int) *dag.Task {
	t := popTask(&p.queues[worker])
	if t != nil {
		p.ready--
		p.c.DequeueStatic++
	}
	return t
}

// ReadyCount implements Policy.
func (p *Static) ReadyCount() int { return p.ready }

// Counters implements Policy.
func (p *Static) Counters() Counters { return p.c }

// ---------------------------------------------------------------------
// Dynamic policy: one shared queue in DFS order.

// Dynamic is the fully dynamic policy ("CALU dynamic"): all ready tasks
// sit in one shared queue ordered left-to-right (Algorithm 2's DFS
// traversal, which keeps execution near the critical path), and any
// worker may pop any task. Load balance is ideal; locality and dequeue
// overhead pay for it (section 1).
type Dynamic struct {
	queue taskHeap
	c     Counters
}

// NewDynamic returns a fully dynamic policy.
func NewDynamic() *Dynamic { return &Dynamic{} }

// Name implements Policy.
func (p *Dynamic) Name() string { return "dynamic" }

// Reset implements Policy.
func (p *Dynamic) Reset(g *dag.Graph, workers int) {
	p.queue = p.queue[:0]
	p.c = Counters{}
}

// Ready implements Policy.
func (p *Dynamic) Ready(t *dag.Task) { pushTask(&p.queue, t) }

// Next implements Policy.
func (p *Dynamic) Next(worker int) *dag.Task {
	t := popTask(&p.queue)
	if t != nil {
		p.c.DequeueDynamic++
		if t.Owner != worker {
			p.c.Mismatches++
		}
	}
	return t
}

// ReadyCount implements Policy.
func (p *Dynamic) ReadyCount() int { return p.queue.Len() }

// Counters implements Policy.
func (p *Dynamic) Counters() Counters { return p.c }

// ---------------------------------------------------------------------
// Hybrid policy: Algorithm 1 + Algorithm 2.

// Hybrid is the paper's contribution: tasks of the first Nstatic panels
// (marked Static by the DAG builder) are pinned to their owners'
// queues; the rest go to one shared queue in Algorithm 2's DFS order.
// A worker always prefers its own static queue — ensuring progress on
// the critical path — and falls back to the shared dynamic queue when
// it would otherwise idle (Algorithm 1, lines 8-10 and 23-25).
type Hybrid struct {
	static []taskHeap
	dyn    taskHeap
	ready  int
	c      Counters
}

// NewHybrid returns the hybrid static/dynamic policy. The static
// fraction itself is decided by the DAG builder's NstaticCols (the
// dratio knob), not here: the policy simply respects the Static marks.
func NewHybrid() *Hybrid { return &Hybrid{} }

// Name implements Policy.
func (p *Hybrid) Name() string { return "hybrid" }

// Reset implements Policy.
func (p *Hybrid) Reset(g *dag.Graph, workers int) {
	p.static = make([]taskHeap, workers)
	p.dyn = p.dyn[:0]
	p.ready = 0
	p.c = Counters{}
}

// Ready implements Policy.
func (p *Hybrid) Ready(t *dag.Task) {
	if t.Static {
		pushTask(&p.static[t.Owner%len(p.static)], t)
	} else {
		pushTask(&p.dyn, t)
	}
	p.ready++
}

// Next implements Policy.
func (p *Hybrid) Next(worker int) *dag.Task {
	if t := popTask(&p.static[worker]); t != nil {
		p.ready--
		p.c.DequeueStatic++
		return t
	}
	if t := popTask(&p.dyn); t != nil {
		p.ready--
		p.c.DequeueDynamic++
		if t.Owner != worker {
			p.c.Mismatches++
		}
		return t
	}
	return nil
}

// ReadyCount implements Policy.
func (p *Hybrid) ReadyCount() int { return p.ready }

// Counters implements Policy.
func (p *Hybrid) Counters() Counters { return p.c }

// ---------------------------------------------------------------------
// Work stealing, for the section 8 comparison.

// WorkStealing approximates Cilk-style randomized work stealing: ready
// tasks go to their owner's deque; a worker pops its own deque LIFO and
// steals FIFO from a random victim when empty. As the paper argues
// (section 8), neither end of the victim's deque tracks the
// factorization's critical path, which is why the paper's DFS-ordered
// shared queue beats it.
type WorkStealing struct {
	deques [][]*dag.Task
	ready  int
	seed   int64
	rng    *rand.Rand
	c      Counters
}

// NewWorkStealing returns a randomized work-stealing policy with a
// deterministic victim-selection seed. The serial adapter runs under a
// single driver, so one RNG suffices; the concurrent form derived by
// Concurrent gives every worker its own RNG seeded from the same value.
func NewWorkStealing(seed int64) *WorkStealing {
	return &WorkStealing{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Policy.
func (p *WorkStealing) Name() string { return "worksteal" }

// Reset implements Policy.
func (p *WorkStealing) Reset(g *dag.Graph, workers int) {
	p.deques = make([][]*dag.Task, workers)
	p.ready = 0
	p.c = Counters{}
}

// Ready implements Policy.
func (p *WorkStealing) Ready(t *dag.Task) {
	w := t.Owner % len(p.deques)
	p.deques[w] = append(p.deques[w], t)
	p.ready++
}

// Next implements Policy.
func (p *WorkStealing) Next(worker int) *dag.Task {
	if d := p.deques[worker]; len(d) > 0 {
		t := d[len(d)-1] // LIFO from own deque
		p.deques[worker] = d[:len(d)-1]
		p.ready--
		p.c.DequeueStatic++
		return t
	}
	n := len(p.deques)
	start := p.rng.Intn(n)
	for k := 0; k < n; k++ {
		v := (start + k) % n
		if v == worker {
			continue
		}
		if d := p.deques[v]; len(d) > 0 {
			t := d[0] // FIFO steal from the victim's other end
			p.deques[v] = d[1:]
			p.ready--
			p.c.Steals++
			if t.Owner != worker {
				p.c.Mismatches++
			}
			return t
		}
	}
	return nil
}

// ReadyCount implements Policy.
func (p *WorkStealing) ReadyCount() int { return p.ready }

// Counters implements Policy.
func (p *WorkStealing) Counters() Counters { return p.c }

package sched

import (
	"sync/atomic"

	"repro/internal/dag"
)

// clDeque is a lock-free Chase-Lev work-stealing deque (Chase & Lev,
// SPAA'05; the CAS-validated variant of Lê et al., PPoPP'13). The owner
// pushes and pops at the bottom without synchronization beyond atomic
// loads/stores; thieves CAS the top. Go's sync/atomic operations are
// sequentially consistent, which subsumes the fences of the weak-memory
// formulation.
//
// The buffer only grows (doubling), and grow copies the live window
// [top, bottom) into the new array, so a thief holding a stale buffer
// pointer still reads the correct element for any index its later
// top-CAS can validate: slots in the live window are never overwritten
// in place, and a pop that empties the deque races through the same
// top-CAS the thief uses.
type clDeque struct {
	bottom atomic.Int64
	_      [7]int64 // keep owner-written bottom off the thieves' top line
	top    atomic.Int64
	_      [7]int64
	buf    atomic.Pointer[clBuf]
}

type clBuf struct {
	mask  int64 // len(a) - 1; len is a power of two
	tasks []atomic.Pointer[dag.Task]
}

func newCLBuf(n int64) *clBuf {
	return &clBuf{mask: n - 1, tasks: make([]atomic.Pointer[dag.Task], n)}
}

func (d *clDeque) init() {
	d.bottom.Store(0)
	d.top.Store(0)
	d.buf.Store(newCLBuf(64))
}

// push appends t at the bottom. Owner only.
func (d *clDeque) push(t *dag.Task) {
	b := d.bottom.Load()
	top := d.top.Load()
	buf := d.buf.Load()
	if b-top >= int64(len(buf.tasks)) {
		// Full: double, copying the live window.
		nb := newCLBuf(int64(len(buf.tasks)) * 2)
		for i := top; i < b; i++ {
			nb.tasks[i&nb.mask].Store(buf.tasks[i&buf.mask].Load())
		}
		d.buf.Store(nb)
		buf = nb
	}
	buf.tasks[b&buf.mask].Store(t)
	d.bottom.Store(b + 1)
}

// pop removes and returns the bottom (most recently pushed) task, or
// nil if the deque is empty. Owner only.
func (d *clDeque) pop() *dag.Task {
	b := d.bottom.Load() - 1
	buf := d.buf.Load()
	d.bottom.Store(b)
	top := d.top.Load()
	if top > b {
		// Empty: restore the canonical empty state.
		d.bottom.Store(top)
		return nil
	}
	t := buf.tasks[b&buf.mask].Load()
	if top == b {
		// Last element: race thieves for it through the top CAS.
		if !d.top.CompareAndSwap(top, top+1) {
			t = nil // a thief got it
		}
		d.bottom.Store(top + 1)
	}
	return t
}

// steal removes and returns the top (oldest) task, or nil if the deque
// looked empty or the CAS lost a race (callers just move on to another
// victim; the runtime's spin/park loop retries). Any goroutine.
func (d *clDeque) steal() *dag.Task {
	top := d.top.Load()
	b := d.bottom.Load()
	if top >= b {
		return nil
	}
	buf := d.buf.Load()
	t := buf.tasks[top&buf.mask].Load()
	if !d.top.CompareAndSwap(top, top+1) {
		return nil
	}
	return t
}

// size reports a linearizable-enough estimate of the element count;
// used only by tests and victim scans.
func (d *clDeque) size() int64 {
	b := d.bottom.Load()
	top := d.top.Load()
	if b < top {
		return 0
	}
	return b - top
}

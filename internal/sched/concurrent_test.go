package sched

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dag"
)

// drainConcurrently hammers a concurrent policy from `workers`
// goroutines until every task has been popped, and returns a per-task
// pop count (each must be exactly 1).
func drainConcurrently(t *testing.T, p ConcurrentPolicy, workers, tasks int, seedAll bool) []int32 {
	t.Helper()
	g := &dag.Graph{Name: "drain"}
	all := make([]*dag.Task, tasks)
	for i := range all {
		all[i] = &dag.Task{ID: int32(i), Owner: i % workers, Static: i%2 == 0, Prio: int64(i)}
		g.Tasks = append(g.Tasks, all[i])
	}
	p.Reset(g, workers)
	popped := make([]int32, tasks)
	var total atomic.Int64

	half := tasks / 2
	if seedAll {
		half = tasks
	}
	for _, tk := range all[:half] {
		p.Ready(SeedWorker, tk)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker enqueues a share of the second half mid-drain,
			// exercising concurrent Ready against concurrent Next.
			lo := half + w*(tasks-half)/workers
			hi := half + (w+1)*(tasks-half)/workers
			next := lo
			for total.Load() < int64(tasks) {
				if next < hi {
					p.Ready(w, all[next])
					next++
				}
				if tk := p.Next(w); tk != nil {
					atomic.AddInt32(&popped[tk.ID], 1)
					total.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	return popped
}

func TestConcurrentPoliciesDrainExactlyOnce(t *testing.T) {
	mk := []func() ConcurrentPolicy{
		func() ConcurrentPolicy { return NewConcurrentStatic() },
		func() ConcurrentPolicy { return NewConcurrentDynamic() },
		func() ConcurrentPolicy { return NewConcurrentHybrid() },
		func() ConcurrentPolicy { return NewConcurrentWorkStealing(7) },
		func() ConcurrentPolicy { return NewLocked(NewDynamic()) },
	}
	for _, f := range mk {
		for _, seedAll := range []bool{true, false} {
			p := f()
			popped := drainConcurrently(t, p, 4, 2000, seedAll)
			for id, n := range popped {
				if n != 1 {
					t.Fatalf("%s seedAll=%v: task %d popped %d times", p.Name(), seedAll, id, n)
				}
			}
		}
	}
}

func TestConcurrentCountersMatchWork(t *testing.T) {
	p := NewConcurrentDynamic()
	popped := drainConcurrently(t, p, 4, 500, true)
	_ = popped
	c := p.Counters()
	if c.DequeueDynamic != 500 {
		t.Fatalf("dynamic dequeues = %d want 500", c.DequeueDynamic)
	}
	ws := NewConcurrentWorkStealing(3)
	drainConcurrently(t, ws, 4, 500, true)
	cw := ws.Counters()
	if cw.DequeueStatic+cw.Steals != 500 {
		t.Fatalf("worksteal pops %d + steals %d != 500", cw.DequeueStatic, cw.Steals)
	}
}

// TestConcurrentStaticHonorsOwner: a concurrent static policy must only
// hand worker w tasks owned by w.
func TestConcurrentStaticHonorsOwner(t *testing.T) {
	p := NewConcurrentStatic()
	p.Reset(&dag.Graph{}, 2)
	p.Ready(SeedWorker, &dag.Task{ID: 1, Owner: 1, Prio: 1})
	if got := p.Next(0); got != nil {
		t.Fatalf("worker 0 must not see worker 1's task, got %v", got)
	}
	if got := p.Next(1); got == nil || got.ID != 1 {
		t.Fatalf("worker 1 got %v", got)
	}
}

// TestConcurrentHybridPrefersOwnStatic mirrors the serial adapter's
// contract: the own static queue wins over better-priority dynamic
// work.
func TestConcurrentHybridPrefersOwnStatic(t *testing.T) {
	p := NewConcurrentHybrid()
	p.Reset(&dag.Graph{}, 2)
	p.Ready(SeedWorker, &dag.Task{ID: 1, Owner: 0, Static: true, Prio: 100})
	p.Ready(SeedWorker, &dag.Task{ID: 2, Owner: 0, Static: false, Prio: 1})
	if got := p.Next(0); got == nil || got.ID != 1 {
		t.Fatalf("hybrid must drain own static queue first, got %v", got)
	}
	if got := p.Next(0); got == nil || got.ID != 2 {
		t.Fatalf("then fall back to dynamic, got %v", got)
	}
}

// TestConcurrentWorkStealingDeterministicPerWorker: the per-worker RNGs
// must be derived from the seed alone, so two policies with the same
// seed make identical victim choices for the same worker.
func TestConcurrentWorkStealingDeterministicPerWorker(t *testing.T) {
	seq := func() []int {
		p := NewConcurrentWorkStealing(42)
		p.Reset(&dag.Graph{}, 4)
		var ids []int
		// Ten tasks on worker 3's deque; workers 0-2 steal in a fixed
		// interleaving. Victim scan order is driven by each worker's own
		// RNG.
		for i := 0; i < 10; i++ {
			p.Ready(SeedWorker, &dag.Task{ID: int32(i), Owner: 3, Prio: int64(i)})
		}
		for i := 0; i < 10; i++ {
			if tk := p.Next(i % 3); tk != nil {
				ids = append(ids, int(tk.ID))
			}
		}
		return ids
	}
	a, b := seq(), seq()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("victim selection not deterministic at step %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestConcurrentFactoryMapsPolicies(t *testing.T) {
	cases := []struct {
		serial Policy
		want   string
	}{
		{NewStatic(), "static"},
		{NewDynamic(), "dynamic"},
		{NewHybrid(), "hybrid"},
		{NewWorkStealing(1), "worksteal"},
	}
	for _, c := range cases {
		cp := Concurrent(c.serial)
		if cp.Name() != c.want {
			t.Fatalf("Concurrent(%T).Name() = %q want %q", c.serial, cp.Name(), c.want)
		}
		if _, locked := cp.(*lockedPolicy); locked {
			t.Fatalf("built-in policy %q fell back to the global-lock adapter", c.want)
		}
	}
}

// TestConcurrentLendingSlots certifies the contract the resident
// engine's lending relies on: a policy Reset with more slots than the
// graph's owner range (extra "helper" slots borrowed by foreign
// workers) must (a) never pin an owner task to a helper slot — owners
// lie in [0, graph workers), so a departing helper strands no work —
// and (b) expose globally poppable work (shared heap, stealable
// deques) to helper slots.
func TestConcurrentLendingSlots(t *testing.T) {
	const owners, slots, tasks = 2, 5, 24
	mk := func() []*dag.Task {
		all := make([]*dag.Task, tasks)
		for i := range all {
			all[i] = &dag.Task{ID: int32(i), Owner: i % owners, Static: i%2 == 0, Prio: int64(i)}
		}
		return all
	}

	t.Run("static-pins-only-to-owners", func(t *testing.T) {
		p := NewConcurrentStatic()
		p.Reset(&dag.Graph{Workers: owners}, slots)
		for _, tk := range mk() {
			if w := p.Ready(SeedWorker, tk); w >= owners {
				t.Fatalf("task %d pinned to helper slot %d", tk.ID, w)
			}
		}
		for h := owners; h < slots; h++ {
			if tk := p.Next(h); tk != nil {
				t.Fatalf("helper slot %d popped owner-pinned task %d", h, tk.ID)
			}
		}
	})

	t.Run("hybrid-helpers-see-dynamic-only", func(t *testing.T) {
		p := NewConcurrentHybrid()
		p.Reset(&dag.Graph{Workers: owners}, slots)
		dyn := 0
		for _, tk := range mk() {
			if w := p.Ready(SeedWorker, tk); w == AnyWorker {
				dyn++
			} else if w >= owners {
				t.Fatalf("static task %d pinned to helper slot %d", tk.ID, w)
			}
		}
		got := 0
		for h := owners; h < slots; h++ {
			for p.Next(h) != nil {
				got++
			}
		}
		if got != dyn {
			t.Fatalf("helper slots drained %d of %d dynamic tasks", got, dyn)
		}
	})

	t.Run("worksteal-helpers-push-and-get-stolen", func(t *testing.T) {
		p := NewConcurrentWorkStealing(7)
		p.Reset(&dag.Graph{Workers: owners}, slots)
		all := mk()
		// A helper readies tasks onto its own deque (Chase-Lev bottoms
		// are single-producer); owners must be able to steal them after
		// the helper leaves.
		for _, tk := range all {
			p.Ready(slots-1, tk)
		}
		got := 0
		for w := 0; w < owners; w++ {
			for p.Next(w) != nil {
				got++
			}
		}
		if got != tasks {
			t.Fatalf("owners stole %d of %d tasks left on a helper deque", got, tasks)
		}
	})
}

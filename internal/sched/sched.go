// Package sched implements the scheduling policies of the paper's
// design space (Table 1): fully static owner-computes scheduling, fully
// dynamic shared-queue scheduling, the paper's hybrid static/dynamic
// strategy (Algorithms 1 and 2), and — for the related-work comparison
// of section 8 — classic randomized work stealing.
//
// Every policy is split into a pure priority-queue core (this file) and
// two drivers:
//
//   - A serial adapter (serial.go) implementing Policy. It performs no
//     synchronization and must be driven from a single goroutine; the
//     discrete-event simulator (internal/sim) uses it, which keeps the
//     simulator's scheduling decisions deterministic and byte-for-byte
//     reproducible — the property the paper's figures depend on.
//   - A concurrent driver (concurrent.go, deque.go) implementing
//     ConcurrentPolicy. Owner queues are per-worker with their own
//     locks, the shared dynamic heap has its own mutex, work stealing
//     uses lock-free Chase-Lev deques with per-worker RNGs, and
//     instrumentation is kept in per-worker padded slots. The real
//     goroutine runtime (internal/rt) derives one with Concurrent so
//     that dispatch never funnels through a global lock.
package sched

import (
	"container/heap"

	"repro/internal/dag"
)

// Counters aggregates scheduler-level instrumentation. DequeueStatic
// and DequeueDynamic count pops from owner queues and from the shared
// queue (the paper's dequeue-overhead source); Mismatches counts tasks
// executed by a worker other than their data home (the locality-loss
// source); Steals counts successful work-stealing attempts.
type Counters struct {
	DequeueStatic  int64
	DequeueDynamic int64
	Steals         int64
	Mismatches     int64
}

func (c *Counters) add(o Counters) {
	c.DequeueStatic += o.DequeueStatic
	c.DequeueDynamic += o.DequeueDynamic
	c.Steals += o.Steals
	c.Mismatches += o.Mismatches
}

// Policy dispenses ready tasks to workers. Implementations perform no
// synchronization of their own and must be driven from one goroutine at
// a time: they are the deterministic serial form used by the simulator.
// The concurrent runtime derives a thread-safe driver with Concurrent.
type Policy interface {
	// Name identifies the policy in reports ("static", "dynamic", ...).
	Name() string
	// Reset prepares the policy for a fresh execution of g on `workers`
	// workers, discarding all queued state.
	Reset(g *dag.Graph, workers int)
	// Ready enqueues a task whose dependencies are all satisfied.
	Ready(t *dag.Task)
	// Next pops the best ready task for the given worker, or nil if the
	// policy has nothing this worker may run right now.
	Next(worker int) *dag.Task
	// ReadyCount reports how many tasks are currently queued; the
	// simulator uses it to distinguish idle-waiting from deadlock.
	ReadyCount() int
	// Counters returns the instrumentation accumulated since Reset.
	Counters() Counters
}

// SeedWorker is the worker argument for ConcurrentPolicy.Ready calls
// made before the workers start (initial root seeding), when no worker
// identity exists yet.
const SeedWorker = -1

// Wake hints returned by ConcurrentPolicy.Ready. A task pinned to one
// worker's queue must wake exactly that worker — waking an arbitrary
// parked worker would let the signal be absorbed by someone who cannot
// pop the task, deadlocking the run once everyone parks.
const (
	// AnyWorker: the task is poppable by every worker (shared queue or
	// stealable deque); waking any one parked worker suffices.
	AnyWorker = -1
	// AllWorkers: the task's affinity is unknown (opaque policy behind
	// the global-lock adapter); the runtime must wake everyone, like
	// the seed runtime's cond.Broadcast did.
	AllWorkers = -2
)

// ConcurrentPolicy is the thread-safe driver interface used by the real
// runtime. Ready and Next may be called from any worker goroutine
// concurrently; Reset and Counters must not overlap with them (the
// runtime calls Reset before starting workers and Counters after they
// have all exited).
type ConcurrentPolicy interface {
	// Name identifies the policy in reports.
	Name() string
	// Reset prepares the policy for a fresh execution of g.
	Reset(g *dag.Graph, workers int)
	// Ready enqueues a ready task. worker is the enqueuing worker, or
	// SeedWorker when called before the workers start. The return value
	// tells the runtime whom to wake: a worker index when the task is
	// pinned to that worker's queue, else AnyWorker or AllWorkers.
	Ready(worker int, t *dag.Task) int
	// Next pops the best ready task for the given worker, or nil.
	Next(worker int) *dag.Task
	// SharedBacklog estimates how many queued tasks are globally
	// poppable — visible to a borrowed lending slot, not pinned to one
	// owner. It is a point-in-time hint for the engine's lend
	// arbitration (which running job is worth a floater), may be
	// slightly stale under concurrent Ready/Next traffic, and must be
	// cheap: callers poll it while holding their own admission lock.
	SharedBacklog() int
	// Counters returns the instrumentation accumulated since Reset.
	Counters() Counters
}

// ---------------------------------------------------------------------
// Priority-queue core shared by the serial and concurrent drivers.

// taskHeap is a priority queue ordered by Task.Prio (ascending), which
// encodes left-to-right column order with panel tasks first — the
// static section's look-ahead order and Algorithm 2's DFS order.
type taskHeap []*dag.Task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].Prio != h[j].Prio {
		return h[i].Prio < h[j].Prio
	}
	return h[i].ID < h[j].ID
}
func (h taskHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x interface{}) { *h = append(*h, x.(*dag.Task)) }
func (h *taskHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

func pushTask(h *taskHeap, t *dag.Task) { heap.Push(h, t) }
func popTask(h *taskHeap) *dag.Task {
	if h.Len() == 0 {
		return nil
	}
	return heap.Pop(h).(*dag.Task)
}

package sched

import (
	"math/rand"
	"sync"

	"repro/internal/dag"
)

// This file holds the concurrent drivers: the thread-safe form of each
// policy used by the real goroutine runtime. The design goal is that no
// two workers ever contend on a lock unless the policy semantically
// shares a queue: owner queues are per-worker with their own mutex, the
// shared dynamic heap has exactly one mutex of its own, work stealing
// is lock-free (Chase-Lev deques, per-worker RNGs), and instrumentation
// lives in per-worker cache-line-padded slots merged only when
// Counters is called after the run.

// Concurrent derives the concurrent driver matching a serial policy.
// The four built-in policies map to their purpose-built concurrent
// forms; any other Policy implementation is wrapped in NewLocked as a
// correct (if serialized) fallback.
func Concurrent(p Policy) ConcurrentPolicy {
	switch p := p.(type) {
	case *Static:
		return NewConcurrentStatic()
	case *Dynamic:
		return NewConcurrentDynamic()
	case *Hybrid:
		return NewConcurrentHybrid()
	case *WorkStealing:
		return NewConcurrentWorkStealing(p.seed)
	default:
		return NewLocked(p)
	}
}

// ownerSlot is one worker's owner queue plus its instrumentation,
// padded so neighbouring workers' slots do not share a cache line. The
// mutex guards only the heap: any worker may Ready into any owner
// queue, but only the owning worker pops it and only the owning worker
// touches the counters.
type ownerSlot struct {
	mu sync.Mutex
	h  taskHeap
	c  Counters
	_  [8]int64
}

func (s *ownerSlot) push(t *dag.Task) {
	s.mu.Lock()
	pushTask(&s.h, t)
	s.mu.Unlock()
}

func (s *ownerSlot) pop() *dag.Task {
	s.mu.Lock()
	t := popTask(&s.h)
	s.mu.Unlock()
	return t
}

// counterSlot is a padded per-worker Counters cell for policies whose
// queues are not per-worker.
type counterSlot struct {
	c Counters
	_ [4]int64
}

// ---------------------------------------------------------------------
// Concurrent static policy.

// ConcurrentStatic is the thread-safe form of Static: one locked heap
// per worker. A worker only ever takes its own queue's lock in Next and
// a dependent's owner lock in Ready, so there is no global serialization
// point.
type ConcurrentStatic struct {
	slots []ownerSlot
}

// NewConcurrentStatic returns a concurrent fully static policy.
func NewConcurrentStatic() *ConcurrentStatic { return &ConcurrentStatic{} }

// Name implements ConcurrentPolicy.
func (p *ConcurrentStatic) Name() string { return "static" }

// Reset implements ConcurrentPolicy.
func (p *ConcurrentStatic) Reset(g *dag.Graph, workers int) {
	p.slots = make([]ownerSlot, workers)
}

// Ready implements ConcurrentPolicy. Only the owner can pop the task,
// so the owner is whom the runtime must wake.
func (p *ConcurrentStatic) Ready(worker int, t *dag.Task) int {
	w := t.Owner % len(p.slots)
	p.slots[w].push(t)
	return w
}

// Next implements ConcurrentPolicy.
func (p *ConcurrentStatic) Next(worker int) *dag.Task {
	s := &p.slots[worker]
	t := s.pop()
	if t != nil {
		s.c.DequeueStatic++
	}
	return t
}

// SharedBacklog implements ConcurrentPolicy: a fully static policy
// exposes nothing to lending slots, so its shared backlog is always 0.
func (p *ConcurrentStatic) SharedBacklog() int { return 0 }

// Counters implements ConcurrentPolicy.
func (p *ConcurrentStatic) Counters() Counters {
	var c Counters
	for i := range p.slots {
		c.add(p.slots[i].c)
	}
	return c
}

// ---------------------------------------------------------------------
// Concurrent dynamic policy.

// ConcurrentDynamic is the thread-safe form of Dynamic: the single
// shared DFS-ordered heap keeps its semantics — and therefore remains a
// serialization point by design (that contention is the paper's
// dequeue-overhead argument) — but the mutex now guards only the heap
// operation itself, not the whole dispatch loop.
type ConcurrentDynamic struct {
	mu  sync.Mutex
	h   taskHeap
	cnt []counterSlot
}

// NewConcurrentDynamic returns a concurrent fully dynamic policy.
func NewConcurrentDynamic() *ConcurrentDynamic { return &ConcurrentDynamic{} }

// Name implements ConcurrentPolicy.
func (p *ConcurrentDynamic) Name() string { return "dynamic" }

// Reset implements ConcurrentPolicy.
func (p *ConcurrentDynamic) Reset(g *dag.Graph, workers int) {
	p.h = p.h[:0]
	p.cnt = make([]counterSlot, workers)
}

// Ready implements ConcurrentPolicy.
func (p *ConcurrentDynamic) Ready(worker int, t *dag.Task) int {
	p.mu.Lock()
	pushTask(&p.h, t)
	p.mu.Unlock()
	return AnyWorker
}

// Next implements ConcurrentPolicy.
func (p *ConcurrentDynamic) Next(worker int) *dag.Task {
	p.mu.Lock()
	t := popTask(&p.h)
	p.mu.Unlock()
	if t != nil {
		c := &p.cnt[worker].c
		c.DequeueDynamic++
		if t.Owner != worker {
			c.Mismatches++
		}
	}
	return t
}

// SharedBacklog implements ConcurrentPolicy: every queued task sits in
// the one shared heap, so the backlog is its length.
func (p *ConcurrentDynamic) SharedBacklog() int {
	p.mu.Lock()
	n := len(p.h)
	p.mu.Unlock()
	return n
}

// Counters implements ConcurrentPolicy.
func (p *ConcurrentDynamic) Counters() Counters {
	var c Counters
	for i := range p.cnt {
		c.add(p.cnt[i].c)
	}
	return c
}

// ---------------------------------------------------------------------
// Concurrent hybrid policy.

// ConcurrentHybrid is the thread-safe form of Hybrid: per-worker locked
// static queues plus the one shared dynamic heap with its own mutex. A
// worker that has static work never touches the shared lock — exactly
// the contention profile Algorithm 1 is designed to exploit.
type ConcurrentHybrid struct {
	slots []ownerSlot
	mu    sync.Mutex
	dyn   taskHeap
}

// NewConcurrentHybrid returns a concurrent hybrid policy.
func NewConcurrentHybrid() *ConcurrentHybrid { return &ConcurrentHybrid{} }

// Name implements ConcurrentPolicy.
func (p *ConcurrentHybrid) Name() string { return "hybrid" }

// Reset implements ConcurrentPolicy.
func (p *ConcurrentHybrid) Reset(g *dag.Graph, workers int) {
	p.slots = make([]ownerSlot, workers)
	p.dyn = p.dyn[:0]
}

// Ready implements ConcurrentPolicy. Static tasks are pinned to their
// owner; dynamic tasks may be popped by anyone.
func (p *ConcurrentHybrid) Ready(worker int, t *dag.Task) int {
	if t.Static {
		w := t.Owner % len(p.slots)
		p.slots[w].push(t)
		return w
	}
	p.mu.Lock()
	pushTask(&p.dyn, t)
	p.mu.Unlock()
	return AnyWorker
}

// Next implements ConcurrentPolicy.
func (p *ConcurrentHybrid) Next(worker int) *dag.Task {
	s := &p.slots[worker]
	if t := s.pop(); t != nil {
		s.c.DequeueStatic++
		return t
	}
	p.mu.Lock()
	t := popTask(&p.dyn)
	p.mu.Unlock()
	if t != nil {
		s.c.DequeueDynamic++
		if t.Owner != worker {
			s.c.Mismatches++
		}
	}
	return t
}

// SharedBacklog implements ConcurrentPolicy: only the dynamic heap is
// globally poppable; owner-pinned static queues are invisible to
// lending slots.
func (p *ConcurrentHybrid) SharedBacklog() int {
	p.mu.Lock()
	n := len(p.dyn)
	p.mu.Unlock()
	return n
}

// Counters implements ConcurrentPolicy.
func (p *ConcurrentHybrid) Counters() Counters {
	var c Counters
	for i := range p.slots {
		c.add(p.slots[i].c)
	}
	return c
}

// ---------------------------------------------------------------------
// Concurrent work stealing.

// ConcurrentWorkStealing is the lock-free form of WorkStealing: one
// Chase-Lev deque per worker, popped LIFO by its owner and stolen FIFO
// by everyone else, with an independent deterministic RNG per worker
// for victim selection (the serial adapter's single shared rand.Rand
// would be a data race here).
//
// Unlike the serial adapter, which pins ready tasks to their owner's
// deque, the concurrent form follows Cilk semantics: a task made ready
// by worker w goes onto w's own deque (the Chase-Lev bottom is
// single-producer). Mismatch accounting is still relative to the task's
// data home.
type ConcurrentWorkStealing struct {
	seed   int64
	deques []*clDeque
	rngs   []*rand.Rand
	cnt    []counterSlot
}

// NewConcurrentWorkStealing returns a lock-free work-stealing policy
// whose per-worker victim-selection RNGs are derived deterministically
// from seed.
func NewConcurrentWorkStealing(seed int64) *ConcurrentWorkStealing {
	return &ConcurrentWorkStealing{seed: seed}
}

// Name implements ConcurrentPolicy.
func (p *ConcurrentWorkStealing) Name() string { return "worksteal" }

// Reset implements ConcurrentPolicy.
func (p *ConcurrentWorkStealing) Reset(g *dag.Graph, workers int) {
	p.deques = make([]*clDeque, workers)
	p.rngs = make([]*rand.Rand, workers)
	p.cnt = make([]counterSlot, workers)
	for w := 0; w < workers; w++ {
		p.deques[w] = &clDeque{}
		p.deques[w].init()
		// SplitMix64-style odd-constant mixing keeps per-worker streams
		// distinct and deterministic for a given (seed, worker) pair.
		p.rngs[w] = rand.New(rand.NewSource(p.seed ^ (int64(w)+1)*-0x61c8864680b583eb))
	}
}

// Ready implements ConcurrentPolicy. Deques are stealable from every
// worker, so any parked worker may be woken.
func (p *ConcurrentWorkStealing) Ready(worker int, t *dag.Task) int {
	if worker < 0 {
		// Pre-run seeding (no workers running yet): distribute roots to
		// their owners' deques like the serial adapter does.
		p.deques[t.Owner%len(p.deques)].push(t)
		return AnyWorker
	}
	p.deques[worker].push(t)
	return AnyWorker
}

// Next implements ConcurrentPolicy.
func (p *ConcurrentWorkStealing) Next(worker int) *dag.Task {
	c := &p.cnt[worker].c
	if t := p.deques[worker].pop(); t != nil {
		c.DequeueStatic++
		// Own-deque pops can still be off their data home here (Cilk
		// enqueue semantics put tasks on the readying worker's deque,
		// not the owner's), so mismatch accounting stays relative to
		// the owner like everywhere else.
		if t.Owner%len(p.deques) != worker {
			c.Mismatches++
		}
		return t
	}
	n := len(p.deques)
	start := p.rngs[worker].Intn(n)
	for k := 0; k < n; k++ {
		v := (start + k) % n
		if v == worker {
			continue
		}
		if t := p.deques[v].steal(); t != nil {
			c.Steals++
			if t.Owner != worker {
				c.Mismatches++
			}
			return t
		}
	}
	return nil
}

// SharedBacklog implements ConcurrentPolicy: every deque is stealable,
// so the backlog is the (racy but monotonicity-free) sum of their
// sizes.
func (p *ConcurrentWorkStealing) SharedBacklog() int {
	var n int64
	for _, d := range p.deques {
		n += d.size()
	}
	return int(n)
}

// Counters implements ConcurrentPolicy.
func (p *ConcurrentWorkStealing) Counters() Counters {
	var c Counters
	for i := range p.cnt {
		c.add(p.cnt[i].c)
	}
	return c
}

// ---------------------------------------------------------------------
// Global-lock fallback.

// lockedPolicy drives an arbitrary serial Policy under one mutex: the
// seed runtime's dispatcher reduced to an adapter. It is the fallback
// for Policy implementations Concurrent does not recognize, and the
// A/B baseline BenchmarkDispatch uses to show what the global lock
// costs.
type lockedPolicy struct {
	mu sync.Mutex
	p  Policy
}

// NewLocked wraps a serial policy in a single mutex, making it a
// (fully serialized) ConcurrentPolicy.
func NewLocked(p Policy) ConcurrentPolicy { return &lockedPolicy{p: p} }

func (l *lockedPolicy) Name() string { return l.p.Name() }

func (l *lockedPolicy) Reset(g *dag.Graph, workers int) {
	l.mu.Lock()
	l.p.Reset(g, workers)
	l.mu.Unlock()
}

func (l *lockedPolicy) Ready(worker int, t *dag.Task) int {
	l.mu.Lock()
	l.p.Ready(t)
	l.mu.Unlock()
	// The wrapped policy's queue affinity is opaque, so the runtime has
	// to wake everyone — which is exactly the seed runtime's
	// cond.Broadcast behaviour this adapter exists to reproduce.
	return AllWorkers
}

func (l *lockedPolicy) Next(worker int) *dag.Task {
	l.mu.Lock()
	t := l.p.Next(worker)
	l.mu.Unlock()
	return t
}

// SharedBacklog reports the wrapped policy's whole ready count: behind
// the global lock every queue is reachable from every worker, so all
// queued work counts as shared.
func (l *lockedPolicy) SharedBacklog() int {
	l.mu.Lock()
	n := l.p.ReadyCount()
	l.mu.Unlock()
	return n
}

func (l *lockedPolicy) Counters() Counters {
	l.mu.Lock()
	c := l.p.Counters()
	l.mu.Unlock()
	return c
}

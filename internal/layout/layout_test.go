package layout

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

var allKinds = []Kind{CM, BCL, TwoLevel}

func TestNewGrid(t *testing.T) {
	cases := map[int][2]int{
		1:  {1, 1},
		2:  {1, 2},
		4:  {2, 2},
		6:  {2, 3},
		16: {4, 4},
		24: {4, 6},
		48: {6, 8},
		7:  {1, 7},
	}
	for p, want := range cases {
		g := NewGrid(p)
		if g.PR != want[0] || g.PC != want[1] {
			t.Errorf("NewGrid(%d) = %dx%d want %dx%d", p, g.PR, g.PC, want[0], want[1])
		}
		if g.Workers() != p {
			t.Errorf("NewGrid(%d).Workers() = %d", p, g.Workers())
		}
	}
}

func TestOwnerCyclic(t *testing.T) {
	g := Grid{PR: 2, PC: 3}
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			w := g.Owner(i, j)
			if w < 0 || w >= 6 {
				t.Fatalf("owner out of range: %d", w)
			}
			seen[w] = true
			if g.Owner(i+2, j) != w || g.Owner(i, j+3) != w {
				t.Fatal("ownership not cyclic")
			}
		}
	}
	if len(seen) != 6 {
		t.Fatalf("only %d owners used", len(seen))
	}
}

func TestRoundTripAllKindsAllShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := [][3]int{{8, 8, 4}, {9, 7, 4}, {16, 12, 4}, {5, 5, 8}, {30, 20, 7}, {12, 12, 3}}
	for _, kind := range allKinds {
		for _, s := range shapes {
			src := mat.Random(s[0], s[1], rng)
			l := New(kind, src, s[2], NewGrid(4))
			back := l.ToDense()
			if mat.MaxAbsDiff(src, back) != 0 {
				t.Errorf("%v round trip failed for shape %v", kind, s)
			}
		}
	}
}

func TestBlockViewsAliasStorage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := mat.Random(12, 12, rng)
	for _, kind := range allKinds {
		l := New(kind, src, 4, NewGrid(4))
		v := l.Block(1, 2)
		v.Set(0, 0, 123.5)
		if l.ToDense().At(4, 8) != 123.5 {
			t.Errorf("%v: block view does not alias storage", kind)
		}
	}
}

func TestEdgeBlockDims(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := mat.Random(10, 7, rng)
	for _, kind := range allKinds {
		l := New(kind, src, 4, NewGrid(2))
		mb, nb := l.Blocks()
		if mb != 3 || nb != 2 {
			t.Fatalf("%v: blocks = %dx%d want 3x2", kind, mb, nb)
		}
		v := l.Block(2, 1)
		if v.Rows != 2 || v.Cols != 3 {
			t.Errorf("%v: edge block %dx%d want 2x3", kind, v.Rows, v.Cols)
		}
	}
}

func TestSwapRowsWithinBlockColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := mat.Random(12, 12, rng)
	for _, kind := range allKinds {
		l := New(kind, src, 4, NewGrid(4))
		// Swap rows 1 and 9 (different block rows) in block column 1 only.
		l.SwapRows(1, 1, 9)
		got := l.ToDense()
		for j := 0; j < 12; j++ {
			wantTop, wantBot := src.At(1, j), src.At(9, j)
			if j >= 4 && j < 8 {
				wantTop, wantBot = wantBot, wantTop
			}
			if got.At(1, j) != wantTop || got.At(9, j) != wantBot {
				t.Errorf("%v: swap wrong at column %d", kind, j)
			}
		}
	}
}

func TestSwapSameRowNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := mat.Random(8, 8, rng)
	for _, kind := range allKinds {
		l := New(kind, src, 4, NewGrid(2))
		l.SwapRows(0, 3, 3)
		if mat.MaxAbsDiff(src, l.ToDense()) != 0 {
			t.Errorf("%v: same-row swap changed data", kind)
		}
	}
}

func TestBCLGrouping(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	src := mat.Random(16, 24, rng)
	g := NewGrid(4) // 2x2
	l := NewBlockCyclic(src, 4, g)
	// Worker of block (0,0) owns block columns 0,2,4 (PC=2).
	if w := l.GroupWidth(0, 0, 3); w != 3 {
		t.Fatalf("group width = %d want 3", w)
	}
	v := l.GroupedBlock(0, 0, 3)
	if v.Rows != 4 || v.Cols != 12 {
		t.Fatalf("grouped view %dx%d want 4x12", v.Rows, v.Cols)
	}
	// Columns of the grouped view must be block cols 0, 2, 4 in order.
	for w := 0; w < 3; w++ {
		for jj := 0; jj < 4; jj++ {
			for ii := 0; ii < 4; ii++ {
				want := src.At(ii, (2*w)*4+jj)
				if got := v.At(ii, w*4+jj); got != want {
					t.Fatalf("grouped view wrong at group %d (%d,%d): got %g want %g", w, ii, jj, got, want)
				}
			}
		}
	}
}

func TestBCLGroupWidthStopsAtEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := mat.Random(8, 12, rng) // 3 block columns with b=4
	l := NewBlockCyclic(src, 4, NewGrid(4))
	// Owner of (0,1) owns block columns 1 only (PC=2 -> next would be 3 >= nb).
	if w := l.GroupWidth(0, 1, 3); w != 1 {
		t.Fatalf("edge group width = %d want 1", w)
	}
}

func TestTwoLevelCannotGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	l := NewTwoLevel(mat.Random(8, 16, rng), 4, NewGrid(2))
	if w := l.GroupWidth(0, 0, 3); w != 1 {
		t.Fatalf("2l-BL group width = %d want 1", w)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 2l-BL grouped width > 1")
		}
	}()
	l.GroupedBlock(0, 0, 2)
}

func TestTwoLevelTilesContiguous(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := NewTwoLevel(mat.Random(8, 8, rng), 4, NewGrid(2))
	v := l.Block(1, 1)
	if v.Stride != v.Rows {
		t.Fatalf("tile stride %d != rows %d: not contiguous", v.Stride, v.Rows)
	}
	if len(v.Data) < v.Rows*v.Cols {
		t.Fatal("tile slice too short")
	}
}

func TestCMGrouping(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	src := mat.Random(8, 16, rng)
	l := NewColMajor(src, 4, NewGrid(2))
	if w := l.GroupWidth(0, 1, 3); w != 3 {
		t.Fatalf("CM group width = %d want 3", w)
	}
	v := l.GroupedBlock(1, 1, 3)
	if v.Rows != 4 || v.Cols != 12 {
		t.Fatalf("CM grouped view %dx%d", v.Rows, v.Cols)
	}
	if v.At(0, 0) != src.At(4, 4) {
		t.Fatal("CM grouped view offset wrong")
	}
}

func TestKindString(t *testing.T) {
	if CM.String() != "CM" || BCL.String() != "BCL" || TwoLevel.String() != "2l-BL" {
		t.Fatal("kind names must match the paper")
	}
}

// Property: for any layout kind, shape and grid, writing through block
// views and reading back through ToDense preserves every element.
func TestBlockWriteReadProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 4 + int(rng.Int31n(20))
		n := 4 + int(rng.Int31n(20))
		b := 2 + int(rng.Int31n(5))
		p := 1 + int(rng.Int31n(6))
		kind := allKinds[rng.Intn(len(allKinds))]
		src := mat.Random(m, n, rng)
		l := New(kind, src, b, NewGrid(p))
		mb, nb := l.Blocks()
		// Overwrite every element via block views with i*1000+j.
		for bi := 0; bi < mb; bi++ {
			for bj := 0; bj < nb; bj++ {
				v := l.Block(bi, bj)
				for jj := 0; jj < v.Cols; jj++ {
					for ii := 0; ii < v.Rows; ii++ {
						v.Set(ii, jj, float64((bi*b+ii)*1000+bj*b+jj))
					}
				}
			}
		}
		d := l.ToDense()
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				if d.At(i, j) != float64(i*1000+j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: SwapRows on a block column is an involution.
func TestSwapInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 6 + int(rng.Int31n(20))
		n := 6 + int(rng.Int31n(20))
		b := 2 + int(rng.Int31n(4))
		kind := allKinds[rng.Intn(len(allKinds))]
		src := mat.Random(m, n, rng)
		l := New(kind, src, b, NewGrid(1+int(rng.Int31n(5))))
		_, nb := l.Blocks()
		jb := int(rng.Int31n(int32(nb)))
		r1 := int(rng.Int31n(int32(m)))
		r2 := int(rng.Int31n(int32(m)))
		l.SwapRows(jb, r1, r2)
		l.SwapRows(jb, r1, r2)
		return mat.MaxAbsDiff(src, l.ToDense()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBCLRowGrouping(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	src := mat.Random(24, 16, rng)
	g := NewGrid(4) // 2x2: PR=2
	l := NewBlockCyclic(src, 4, g)
	// Worker of block (0,0) owns block rows 0,2,4 (PR=2).
	if w := l.RowGroupWidth(0, 0, 3); w != 3 {
		t.Fatalf("row group width = %d want 3", w)
	}
	v := l.GroupedRows(0, 0, 3)
	if v.Rows != 12 || v.Cols != 4 {
		t.Fatalf("grouped rows view %dx%d want 12x4", v.Rows, v.Cols)
	}
	// Rows of the view must be block rows 0, 2, 4 in order.
	for w := 0; w < 3; w++ {
		for ii := 0; ii < 4; ii++ {
			for jj := 0; jj < 4; jj++ {
				want := src.At((2*w)*4+ii, jj)
				if got := v.At(w*4+ii, jj); got != want {
					t.Fatalf("grouped rows wrong at group %d (%d,%d): got %g want %g", w, ii, jj, got, want)
				}
			}
		}
	}
}

func TestCMRowGroupingFullColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	src := mat.Random(20, 8, rng)
	l := NewColMajor(src, 4, NewGrid(2))
	// CM can fuse the whole column: 5 block rows.
	if w := l.RowGroupWidth(0, 1, 100); w != 5 {
		t.Fatalf("CM row group width = %d want 5", w)
	}
	v := l.GroupedRows(1, 1, 4)
	if v.Rows != 16 || v.Cols != 4 {
		t.Fatalf("CM grouped rows %dx%d want 16x4", v.Rows, v.Cols)
	}
	if v.At(0, 0) != src.At(4, 4) {
		t.Fatal("CM grouped rows offset wrong")
	}
}

func TestTwoLevelCannotGroupRows(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	l := NewTwoLevel(mat.Random(16, 8, rng), 4, NewGrid(2))
	if w := l.RowGroupWidth(0, 0, 3); w != 1 {
		t.Fatalf("2l-BL row group width = %d want 1", w)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 2l-BL row group width > 1")
		}
	}()
	l.GroupedRows(0, 0, 2)
}

func TestBCLGroupedRowsRagged(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	src := mat.Random(18, 8, rng) // last block row has 2 rows (b=4)
	l := NewBlockCyclic(src, 4, NewGrid(1))
	// Single worker owns everything; rows 3 and 4 are consecutive owned.
	v := l.GroupedRows(3, 0, 2)
	if v.Rows != 6 { // 4 + 2 ragged
		t.Fatalf("ragged grouped rows = %d want 6", v.Rows)
	}
	if v.At(5, 0) != src.At(17, 0) {
		t.Fatal("ragged grouped rows content wrong")
	}
}

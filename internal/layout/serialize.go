package layout

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/mat"
)

// Serialization: a layout travels as a fixed header followed by its
// blocks in block-iteration order — block row by block row, each block
// written column by column as raw float64 bits. Iterating blocks (not
// the dense matrix) is what makes the format layout-faithful: the
// decoder rebuilds the same physical placement (the same per-worker
// submatrices for BCL, the same contiguous tiles for 2l-BL) instead of
// a dense copy, and the cluster tier's factorization wire format rides
// it directly. Float values round-trip bit-identically via
// math.Float64bits, which is what lets a replicated solve reproduce
// the owner's solve exactly.
//
// Header (little-endian):
//
//	magic "HSDL" | version u8 | kind u8 | m u32 | n u32 | b u32 | PR u32 | PC u32
//
// followed by 8*m*n payload bytes.

const (
	serializeMagic   = "HSDL"
	serializeVersion = 1
	serializeHdrLen  = 4 + 1 + 1 + 5*4

	// maxSerializedGrid bounds PR*PC on decode: a crafted header must
	// not make NewBlockCyclic allocate per-worker submatrices for
	// millions of phantom workers.
	maxSerializedGrid = 1 << 16
)

// EncodedLen returns the exact byte length Encode produces for l.
func EncodedLen(l Layout) int {
	m, n, _ := l.Dims()
	return serializeHdrLen + 8*m*n
}

// Encode serializes l — kind, dims, grid and every block's values —
// into a self-delimiting byte string. Decode inverts it exactly.
func Encode(l Layout) []byte {
	m, n, b := l.Dims()
	g := l.Grid()
	out := make([]byte, serializeHdrLen, EncodedLen(l))
	copy(out, serializeMagic)
	out[4] = serializeVersion
	out[5] = byte(l.Kind())
	le := binary.LittleEndian
	le.PutUint32(out[6:], uint32(m))
	le.PutUint32(out[10:], uint32(n))
	le.PutUint32(out[14:], uint32(b))
	le.PutUint32(out[18:], uint32(g.PR))
	le.PutUint32(out[22:], uint32(g.PC))
	mb, nb := l.Blocks()
	var buf [8]byte
	for i := 0; i < mb; i++ {
		for j := 0; j < nb; j++ {
			v := l.Block(i, j)
			for jj := 0; jj < v.Cols; jj++ {
				col := v.Data[jj*v.Stride : jj*v.Stride+v.Rows]
				for _, x := range col {
					le.PutUint64(buf[:], math.Float64bits(x))
					out = append(out, buf[:]...)
				}
			}
		}
	}
	return out
}

// Decode reconstructs a layout from data produced by Encode and
// reports how many bytes it consumed, so encoded layouts can be
// concatenated (the factorization wire format stacks two). The
// returned layout owns fresh storage.
func Decode(data []byte) (Layout, int, error) {
	if len(data) < serializeHdrLen {
		return nil, 0, fmt.Errorf("layout: encoded data too short (%d bytes)", len(data))
	}
	if string(data[:4]) != serializeMagic {
		return nil, 0, fmt.Errorf("layout: bad magic %q", data[:4])
	}
	if data[4] != serializeVersion {
		return nil, 0, fmt.Errorf("layout: unsupported format version %d", data[4])
	}
	kind := Kind(data[5])
	switch kind {
	case CM, BCL, TwoLevel:
	default:
		return nil, 0, fmt.Errorf("layout: unknown layout kind %d", data[5])
	}
	le := binary.LittleEndian
	m := int(le.Uint32(data[6:]))
	n := int(le.Uint32(data[10:]))
	b := int(le.Uint32(data[14:]))
	pr := int(le.Uint32(data[18:]))
	pc := int(le.Uint32(data[22:]))
	if b < 1 {
		return nil, 0, fmt.Errorf("layout: non-positive block size %d", b)
	}
	if pr < 1 || pc < 1 || pr*pc > maxSerializedGrid {
		return nil, 0, fmt.Errorf("layout: implausible %dx%d worker grid", pr, pc)
	}
	need := int64(serializeHdrLen) + 8*int64(m)*int64(n)
	if int64(len(data)) < need {
		return nil, 0, fmt.Errorf("layout: truncated payload: have %d bytes, need %d for %dx%d", len(data), need, m, n)
	}
	l := New(kind, mat.New(m, n), b, Grid{PR: pr, PC: pc})
	mb, nb := l.Blocks()
	p := serializeHdrLen
	for i := 0; i < mb; i++ {
		for j := 0; j < nb; j++ {
			v := l.Block(i, j)
			for jj := 0; jj < v.Cols; jj++ {
				col := v.Data[jj*v.Stride : jj*v.Stride+v.Rows]
				for ii := range col {
					col[ii] = math.Float64frombits(le.Uint64(data[p:]))
					p += 8
				}
			}
		}
	}
	return l, int(need), nil
}

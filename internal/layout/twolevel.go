package layout

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/mat"
)

// TwoLevelBlock is the paper's 2l-BL layout: the first level is the
// same block-cyclic partitioning as BCL, the second level stores each
// b x b block (tile) contiguously in memory, so that with an
// appropriate b a tile fits in some level of cache and any operation on
// it incurs no extra memory transfer (section 4.2). The flip side,
// also from the paper, is that adjacent owned block columns are *not*
// contiguous, so trailing updates cannot be grouped into larger gemms
// without copying — which the paper (and this implementation) does not
// do.
type TwoLevelBlock struct {
	m, n, b int
	grid    Grid
	mb, nb  int
	// data holds all tiles back to back; off[i+j*mb] is the start of
	// tile (i,j), whose stride equals its row count.
	data []float64
	off  []int
}

// NewTwoLevel copies src into a two-level block layout with tile size b.
func NewTwoLevel(src *mat.Dense, b int, g Grid) *TwoLevelBlock {
	if b <= 0 {
		panic("layout: block size must be positive")
	}
	l := &TwoLevelBlock{m: src.Rows, n: src.Cols, b: b, grid: g}
	l.mb, l.nb = numBlocks(l.m, b), numBlocks(l.n, b)
	l.off = make([]int, l.mb*l.nb+1)
	total := 0
	for j := 0; j < l.nb; j++ {
		for i := 0; i < l.mb; i++ {
			l.off[i+j*l.mb] = total
			total += blockSpan(i, b, l.m) * blockSpan(j, b, l.n)
		}
	}
	l.off[l.mb*l.nb] = total
	l.data = make([]float64, total)
	for i := 0; i < l.mb; i++ {
		for j := 0; j < l.nb; j++ {
			dst := l.Block(i, j)
			for jj := 0; jj < dst.Cols; jj++ {
				for ii := 0; ii < dst.Rows; ii++ {
					dst.Data[jj*dst.Stride+ii] = src.At(i*b+ii, j*b+jj)
				}
			}
		}
	}
	return l
}

// Kind reports TwoLevel.
func (l *TwoLevelBlock) Kind() Kind { return TwoLevel }

// Dims returns rows, cols and block size.
func (l *TwoLevelBlock) Dims() (int, int, int) { return l.m, l.n, l.b }

// Blocks returns the block grid extents.
func (l *TwoLevelBlock) Blocks() (int, int) { return l.mb, l.nb }

// Grid returns the worker grid.
func (l *TwoLevelBlock) Grid() Grid { return l.grid }

// Owner returns the block-cyclic owner of block (i,j).
func (l *TwoLevelBlock) Owner(i, j int) int { return l.grid.Owner(i, j) }

// Block returns the contiguous tile (i,j); its stride is its row count.
func (l *TwoLevelBlock) Block(i, j int) kernel.View {
	r := blockSpan(i, l.b, l.m)
	c := blockSpan(j, l.b, l.n)
	start := l.off[i+j*l.mb]
	return kernel.View{Rows: r, Cols: c, Stride: r, Data: l.data[start : start+r*c]}
}

// SwapRows exchanges global rows r1, r2 within block column jb.
func (l *TwoLevelBlock) SwapRows(jb, r1, r2 int) { swapViaBlocks(l, jb, r1, r2) }

// GroupWidth always reports 1: tiles are not adjacent in memory, so
// grouped BLAS-3 calls are impossible without copying (section 4.2).
func (l *TwoLevelBlock) GroupWidth(i, j, maxGroup int) int { return 1 }

// GroupedBlock with width 1 degenerates to Block; larger widths are a
// programming error for this layout.
func (l *TwoLevelBlock) GroupedBlock(i, j, width int) kernel.View {
	if width != 1 {
		panic(fmt.Sprintf("layout: 2l-BL cannot group %d block columns", width))
	}
	return l.Block(i, j)
}

// ToDense materializes the matrix as column major.
func (l *TwoLevelBlock) ToDense() *mat.Dense { return toDenseViaBlocks(l) }

// RowGroupWidth always reports 1: tiles are not vertically adjacent in
// memory either.
func (l *TwoLevelBlock) RowGroupWidth(i, j, maxGroup int) int { return 1 }

// GroupedRows with width 1 degenerates to Block; larger widths are a
// programming error for this layout.
func (l *TwoLevelBlock) GroupedRows(i, j, width int) kernel.View {
	if width != 1 {
		panic(fmt.Sprintf("layout: 2l-BL cannot group %d block rows", width))
	}
	return l.Block(i, j)
}

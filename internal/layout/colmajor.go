package layout

import (
	"repro/internal/kernel"
	"repro/internal/mat"
)

// ColMajor stores the whole matrix in a single column-major array, the
// classic LAPACK/ScaLAPACK layout. The paper evaluates it only under
// fully dynamic scheduling (Table 1, "dynamic rectangular") because it
// provides no per-worker contiguity for the static section.
type ColMajor struct {
	m, n, b int
	grid    Grid
	a       *mat.Dense
}

// NewColMajor copies src into a column-major layout with block size b.
func NewColMajor(src *mat.Dense, b int, g Grid) *ColMajor {
	if b <= 0 {
		panic("layout: block size must be positive")
	}
	return &ColMajor{m: src.Rows, n: src.Cols, b: b, grid: g, a: src.Clone()}
}

// Kind reports CM.
func (l *ColMajor) Kind() Kind { return CM }

// Dims returns rows, cols and block size.
func (l *ColMajor) Dims() (int, int, int) { return l.m, l.n, l.b }

// Blocks returns the block grid extents.
func (l *ColMajor) Blocks() (int, int) { return numBlocks(l.m, l.b), numBlocks(l.n, l.b) }

// Grid returns the worker grid.
func (l *ColMajor) Grid() Grid { return l.grid }

// Owner returns the block-cyclic owner of block (i,j); ownership is
// logical only for CM, used by the schedulers' locality accounting.
func (l *ColMajor) Owner(i, j int) int { return l.grid.Owner(i, j) }

// Block returns the view of block (i,j) with the full-matrix stride.
func (l *ColMajor) Block(i, j int) kernel.View {
	r := blockSpan(i, l.b, l.m)
	c := blockSpan(j, l.b, l.n)
	return kernel.View{
		Rows:   r,
		Cols:   c,
		Stride: l.a.Stride,
		Data:   l.a.Data[j*l.b*l.a.Stride+i*l.b:],
	}
}

// SwapRows exchanges global rows r1, r2 within block column jb.
func (l *ColMajor) SwapRows(jb, r1, r2 int) {
	j0 := jb * l.b
	j1 := j0 + blockSpan(jb, l.b, l.n)
	l.a.SwapRows(r1, r2, j0, j1)
}

// GroupWidth reports how many block columns starting at j are
// physically contiguous; for column major every adjacent block column
// is contiguous, so the only limits are the matrix edge and maxGroup.
// (The paper only exploits grouping for BCL, but the capability is a
// property of the storage, so CM reports it truthfully.)
func (l *ColMajor) GroupWidth(i, j, maxGroup int) int {
	_, nb := l.Blocks()
	w := 1
	for w < maxGroup && j+w < nb {
		w++
	}
	return w
}

// GroupedBlock returns one view covering block (i,j..j+width-1).
func (l *ColMajor) GroupedBlock(i, j, width int) kernel.View {
	r := blockSpan(i, l.b, l.m)
	cols := 0
	for w := 0; w < width; w++ {
		cols += blockSpan(j+w, l.b, l.n)
	}
	return kernel.View{
		Rows:   r,
		Cols:   cols,
		Stride: l.a.Stride,
		Data:   l.a.Data[j*l.b*l.a.Stride+i*l.b:],
	}
}

// ToDense returns a copy of the matrix contents.
func (l *ColMajor) ToDense() *mat.Dense { return l.a.Clone() }

// RowGroupWidth reports how many block rows starting at i are
// physically contiguous in column major storage: all of them, up to the
// matrix edge and maxGroup.
func (l *ColMajor) RowGroupWidth(i, j, maxGroup int) int {
	mb, _ := l.Blocks()
	w := 1
	for w < maxGroup && i+w < mb {
		w++
	}
	return w
}

// GroupedRows returns one view covering blocks (i..i+width-1, j).
func (l *ColMajor) GroupedRows(i, j, width int) kernel.View {
	rows := 0
	for w := 0; w < width; w++ {
		rows += blockSpan(i+w, l.b, l.m)
	}
	return kernel.View{
		Rows:   rows,
		Cols:   blockSpan(j, l.b, l.n),
		Stride: l.a.Stride,
		Data:   l.a.Data[j*l.b*l.a.Stride+i*l.b:],
	}
}

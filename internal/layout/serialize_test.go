package layout

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// roundTrip encodes l, decodes it, and fails unless every property —
// kind, dims, grid, block shapes and every value, bit for bit — comes
// back identical.
func roundTrip(t *testing.T, l Layout) Layout {
	t.Helper()
	enc := Encode(l)
	if len(enc) != EncodedLen(l) {
		t.Fatalf("Encode produced %d bytes, EncodedLen says %d", len(enc), EncodedLen(l))
	}
	got, n, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if n != len(enc) {
		t.Fatalf("Decode consumed %d of %d bytes", n, len(enc))
	}
	if got.Kind() != l.Kind() {
		t.Fatalf("kind %v round-tripped to %v", l.Kind(), got.Kind())
	}
	m0, n0, b0 := l.Dims()
	m1, n1, b1 := got.Dims()
	if m0 != m1 || n0 != n1 || b0 != b1 {
		t.Fatalf("dims (%d,%d,%d) round-tripped to (%d,%d,%d)", m0, n0, b0, m1, n1, b1)
	}
	if got.Grid() != l.Grid() {
		t.Fatalf("grid %+v round-tripped to %+v", l.Grid(), got.Grid())
	}
	want := l.ToDense()
	have := got.ToDense()
	for j := 0; j < want.Cols; j++ {
		for i := 0; i < want.Rows; i++ {
			w, h := want.At(i, j), have.At(i, j)
			if math.Float64bits(w) != math.Float64bits(h) {
				t.Fatalf("value (%d,%d): %v round-tripped to %v", i, j, w, h)
			}
		}
	}
	return got
}

// TestSerializeRoundTrip covers all three kinds over ragged m/n/b
// property cases: edge blocks, block sizes larger than the matrix,
// tall, wide and empty-dimension shapes, and several worker grids.
func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	shapes := []struct{ m, n, b, p int }{
		{1, 1, 1, 1},
		{7, 7, 3, 1},
		{16, 16, 4, 4},
		{17, 13, 5, 4},  // ragged in both dimensions
		{13, 29, 8, 6},  // wide, non-square grid
		{40, 9, 7, 3},   // tall
		{5, 5, 32, 2},   // block bigger than the matrix
		{33, 33, 32, 8}, // one ragged trailing block row/column
	}
	for _, kind := range []Kind{CM, BCL, TwoLevel} {
		for _, s := range shapes {
			src := mat.Random(s.m, s.n, rng)
			l := New(kind, src, s.b, NewGrid(s.p))
			got := roundTrip(t, l)
			// The restored layout must also agree with the source matrix,
			// not just with itself.
			d := got.ToDense()
			for j := 0; j < s.n; j++ {
				for i := 0; i < s.m; i++ {
					if d.At(i, j) != src.At(i, j) {
						t.Fatalf("%v %dx%d b=%d p=%d: (%d,%d) = %v, want %v",
							kind, s.m, s.n, s.b, s.p, i, j, d.At(i, j), src.At(i, j))
					}
				}
			}
		}
	}
}

// TestSerializeSpecialValues pins bit-exactness through the format for
// values a text encoding would mangle: negative zero, denormals, NaN
// payloads and infinities.
func TestSerializeSpecialValues(t *testing.T) {
	src := mat.New(2, 3)
	src.Set(0, 0, math.Copysign(0, -1))
	src.Set(1, 0, math.SmallestNonzeroFloat64)
	src.Set(0, 1, math.NaN())
	src.Set(1, 1, math.Inf(1))
	src.Set(0, 2, math.Inf(-1))
	src.Set(1, 2, 1.0/3.0)
	l := New(BCL, src, 2, NewGrid(2))
	got, _, err := Decode(Encode(l))
	if err != nil {
		t.Fatal(err)
	}
	want, have := l.ToDense(), got.ToDense()
	for i := range want.Data {
		if math.Float64bits(want.Data[i]) != math.Float64bits(have.Data[i]) {
			t.Fatalf("entry %d: %x round-tripped to %x", i,
				math.Float64bits(want.Data[i]), math.Float64bits(have.Data[i]))
		}
	}
}

// TestSerializeConcatenated: Decode consumes exactly one encoded
// layout and reports the cut, so two layouts stack back to back — the
// factorization wire format's L-then-U framing.
func TestSerializeConcatenated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := New(TwoLevel, mat.Random(9, 5, rng), 4, NewGrid(2))
	b := New(BCL, mat.Random(3, 7, rng), 2, NewGrid(3))
	buf := append(Encode(a), Encode(b)...)
	gotA, n, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	gotB, m, err := Decode(buf[n:])
	if err != nil {
		t.Fatal(err)
	}
	if n+m != len(buf) {
		t.Fatalf("consumed %d+%d of %d bytes", n, m, len(buf))
	}
	if gotA.Kind() != TwoLevel || gotB.Kind() != BCL {
		t.Fatalf("kinds %v/%v, want 2l-BL/BCL", gotA.Kind(), gotB.Kind())
	}
	if d := gotB.ToDense(); d.Rows != 3 || d.Cols != 7 {
		t.Fatalf("second layout decoded as %dx%d", d.Rows, d.Cols)
	}
}

// TestSerializeRejectsGarbage: corrupt headers and truncated payloads
// are errors, never panics or silently wrong layouts.
func TestSerializeRejectsGarbage(t *testing.T) {
	l := New(BCL, mat.Random(8, 8, rand.New(rand.NewSource(1))), 4, NewGrid(2))
	good := Encode(l)

	cases := map[string][]byte{
		"empty":     nil,
		"short":     good[:10],
		"truncated": good[:len(good)-8],
	}
	badMagic := append([]byte{}, good...)
	badMagic[0] = 'X'
	cases["bad magic"] = badMagic
	badVer := append([]byte{}, good...)
	badVer[4] = 99
	cases["bad version"] = badVer
	badKind := append([]byte{}, good...)
	badKind[5] = 7
	cases["bad kind"] = badKind
	zeroBlock := append([]byte{}, good...)
	zeroBlock[14], zeroBlock[15], zeroBlock[16], zeroBlock[17] = 0, 0, 0, 0
	cases["zero block size"] = zeroBlock
	hugeGrid := append([]byte{}, good...)
	hugeGrid[18], hugeGrid[19] = 0xff, 0xff // PR = 65535, PC = 2
	cases["huge grid"] = hugeGrid

	for name, data := range cases {
		if _, _, err := Decode(data); err == nil {
			t.Errorf("%s: Decode accepted corrupt input", name)
		}
	}
}

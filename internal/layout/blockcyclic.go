package layout

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/mat"
)

// BlockCyclic is the paper's BCL layout: the matrix is partitioned into
// b x b blocks distributed block-cyclically over the worker grid, and
// each worker's blocks are stored contiguously in its own column-major
// submatrix. Within one worker, owned block columns sit next to each
// other, so updates that touch several owned block columns in the same
// block row can issue a single larger gemm (the k=3 grouping of
// section 3) — the property that makes BCL win on large matrices
// (section 5.1.3).
type BlockCyclic struct {
	m, n, b int
	grid    Grid
	// sub[w] is worker w's contiguous column-major submatrix.
	sub []*mat.Dense
}

// NewBlockCyclic copies src into a block cyclic layout with block size
// b over grid g.
func NewBlockCyclic(src *mat.Dense, b int, g Grid) *BlockCyclic {
	if b <= 0 {
		panic("layout: block size must be positive")
	}
	l := &BlockCyclic{m: src.Rows, n: src.Cols, b: b, grid: g}
	mb, nb := l.Blocks()
	l.sub = make([]*mat.Dense, g.Workers())
	for w := range l.sub {
		wr, wc := w%g.PR, w/g.PR
		rows, cols := 0, 0
		for i := wr; i < mb; i += g.PR {
			rows += blockSpan(i, b, l.m)
		}
		for j := wc; j < nb; j += g.PC {
			cols += blockSpan(j, b, l.n)
		}
		l.sub[w] = mat.New(rows, cols)
	}
	for i := 0; i < mb; i++ {
		for j := 0; j < nb; j++ {
			dst := l.Block(i, j)
			for jj := 0; jj < dst.Cols; jj++ {
				for ii := 0; ii < dst.Rows; ii++ {
					dst.Data[jj*dst.Stride+ii] = src.At(i*b+ii, j*b+jj)
				}
			}
		}
	}
	return l
}

// Kind reports BCL.
func (l *BlockCyclic) Kind() Kind { return BCL }

// Dims returns rows, cols and block size.
func (l *BlockCyclic) Dims() (int, int, int) { return l.m, l.n, l.b }

// Blocks returns the block grid extents.
func (l *BlockCyclic) Blocks() (int, int) { return numBlocks(l.m, l.b), numBlocks(l.n, l.b) }

// Grid returns the worker grid.
func (l *BlockCyclic) Grid() Grid { return l.grid }

// Owner returns the block-cyclic owner of block (i,j).
func (l *BlockCyclic) Owner(i, j int) int { return l.grid.Owner(i, j) }

// Block returns the strided view of block (i,j) inside its owner's
// contiguous submatrix. The local offset arithmetic relies on only the
// globally last block row/column being ragged, so every earlier owned
// block contributes a full b rows/columns.
func (l *BlockCyclic) Block(i, j int) kernel.View {
	w := l.grid.Owner(i, j)
	s := l.sub[w]
	li, lj := i/l.grid.PR, j/l.grid.PC
	return kernel.View{
		Rows:   blockSpan(i, l.b, l.m),
		Cols:   blockSpan(j, l.b, l.n),
		Stride: s.Stride,
		Data:   s.Data[lj*l.b*s.Stride+li*l.b:],
	}
}

// SwapRows exchanges global rows r1, r2 within block column jb.
func (l *BlockCyclic) SwapRows(jb, r1, r2 int) { swapViaBlocks(l, jb, r1, r2) }

// GroupWidth reports how many owned block columns starting at j
// (stepping by the grid's column period PC) can be fused into one
// contiguous view, capped at maxGroup.
func (l *BlockCyclic) GroupWidth(i, j, maxGroup int) int {
	_, nb := l.Blocks()
	w := 1
	for w < maxGroup && j+w*l.grid.PC < nb {
		w++
	}
	return w
}

// GroupedBlock returns one view covering blocks (i, j), (i, j+PC), ...
// (i, j+(width-1)*PC), which are contiguous in the owner's storage.
func (l *BlockCyclic) GroupedBlock(i, j, width int) kernel.View {
	if width < 1 || width > l.GroupWidth(i, j, width) {
		panic(fmt.Sprintf("layout: invalid group width %d at block (%d,%d)", width, i, j))
	}
	w := l.grid.Owner(i, j)
	s := l.sub[w]
	li, lj := i/l.grid.PR, j/l.grid.PC
	cols := 0
	for k := 0; k < width; k++ {
		cols += blockSpan(j+k*l.grid.PC, l.b, l.n)
	}
	return kernel.View{
		Rows:   blockSpan(i, l.b, l.m),
		Cols:   cols,
		Stride: s.Stride,
		Data:   s.Data[lj*l.b*s.Stride+li*l.b:],
	}
}

// ToDense materializes the matrix as column major.
func (l *BlockCyclic) ToDense() *mat.Dense { return toDenseViaBlocks(l) }

// RowGroupWidth reports how many owned block rows starting at i
// (stepping by the grid's row period PR) can be fused into one
// contiguous tall view, capped at maxGroup.
func (l *BlockCyclic) RowGroupWidth(i, j, maxGroup int) int {
	mb, _ := l.Blocks()
	w := 1
	for w < maxGroup && i+w*l.grid.PR < mb {
		w++
	}
	return w
}

// GroupedRows returns one view stacking blocks (i, j), (i+PR, j), ...
// (i+(width-1)*PR, j), which are vertically contiguous in the owner's
// storage.
func (l *BlockCyclic) GroupedRows(i, j, width int) kernel.View {
	if width < 1 || width > l.RowGroupWidth(i, j, width) {
		panic(fmt.Sprintf("layout: invalid row group width %d at block (%d,%d)", width, i, j))
	}
	w := l.grid.Owner(i, j)
	s := l.sub[w]
	li, lj := i/l.grid.PR, j/l.grid.PC
	rows := 0
	for k := 0; k < width; k++ {
		rows += blockSpan(i+k*l.grid.PR, l.b, l.m)
	}
	return kernel.View{
		Rows:   rows,
		Cols:   blockSpan(j, l.b, l.n),
		Stride: s.Stride,
		Data:   s.Data[lj*l.b*s.Stride+li*l.b:],
	}
}

// Package layout implements the three matrix storage schemes studied in
// the paper (section 4):
//
//   - CM: the classic LAPACK column-major layout.
//   - BCL: the block cyclic layout — the matrix is partitioned into b x b
//     blocks, distributed over a 2D grid of P workers block-cyclically,
//     and each worker's blocks are stored contiguously as one
//     column-major submatrix. Adjacent owned block columns are
//     contiguous, which is what lets the update grow its BLAS-3 calls
//     (the paper's k=3 grouping).
//   - TwoLevel (2l-BL): a two-level block layout — the first level is the
//     same block-cyclic partitioning, the second level stores each b x b
//     block (tile) contiguously, so a tile fits in cache and any
//     operation on it incurs no extra memory transfer.
//
// Every layout exposes its blocks as kernel.View strided views, so the
// factorization kernels are layout-agnostic; what changes between
// layouts is physical adjacency — which internal/sim turns into cost.
package layout

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/mat"
)

// Kind identifies a storage scheme.
type Kind int

const (
	// CM is the classic column-major layout (paper: "CM").
	CM Kind = iota
	// BCL is the block cyclic layout (paper: "BCL").
	BCL
	// TwoLevel is the two-level block layout (paper: "2l-BL").
	TwoLevel
)

// String returns the paper's abbreviation for the layout kind.
func (k Kind) String() string {
	switch k {
	case CM:
		return "CM"
	case BCL:
		return "BCL"
	case TwoLevel:
		return "2l-BL"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Grid is a 2D process/thread grid. Workers are numbered 0..PR*PC-1 and
// block (I,J) is owned by worker (I mod PR) + PR*(J mod PC), the
// classic 2D block-cyclic ownership the paper's static section uses.
type Grid struct {
	PR int // rows of the grid
	PC int // columns of the grid
}

// NewGrid returns the most-square grid for p workers: PR is the largest
// divisor of p not exceeding sqrt(p).
func NewGrid(p int) Grid {
	if p <= 0 {
		panic(fmt.Sprintf("layout: non-positive worker count %d", p))
	}
	pr := 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			pr = d
		}
	}
	return Grid{PR: pr, PC: p / pr}
}

// Workers returns the total worker count of the grid.
func (g Grid) Workers() int { return g.PR * g.PC }

// Owner returns the worker owning block (I,J).
func (g Grid) Owner(i, j int) int { return (i % g.PR) + g.PR*(j%g.PC) }

// Layout is the uniform interface over the three storage schemes.
type Layout interface {
	// Kind reports which scheme this is.
	Kind() Kind
	// Dims returns matrix rows, cols and the block size b.
	Dims() (m, n, b int)
	// Blocks returns the block-row and block-column counts (ceil division).
	Blocks() (mb, nb int)
	// Block returns a strided view of block (I,J); edge blocks are smaller.
	Block(i, j int) kernel.View
	// Owner returns the worker that owns block (I,J) under the grid.
	Owner(i, j int) int
	// Grid returns the worker grid used for ownership.
	Grid() Grid
	// SwapRows exchanges global rows r1 and r2 within block column jb only.
	// CALU applies panel pivoting lazily, one block column at a time.
	SwapRows(jb, r1, r2 int)
	// GroupWidth returns how many consecutive owned block columns starting
	// at block column j can be fused into one contiguous view for worker
	// Owner(i,j), at most maxGroup. Layouts that cannot group return 1.
	GroupWidth(i, j, maxGroup int) int
	// GroupedBlock returns a single view spanning `width` owned block
	// columns starting at (i,j) (stepping by the grid column period for
	// BCL). Only valid for width <= GroupWidth(i,j,width).
	GroupedBlock(i, j, width int) kernel.View
	// RowGroupWidth returns how many consecutive owned block rows
	// starting at block row i can be fused into one contiguous tall view
	// within block column j, at most maxGroup. This is the grouping the
	// paper uses for the trailing update ("blocks that share the same
	// columns", section 3): it enlarges the BLAS-3 calls without delaying
	// any other column's progress.
	RowGroupWidth(i, j, maxGroup int) int
	// GroupedRows returns one view stacking `width` owned block rows
	// starting at (i,j) (stepping by the grid row period for cyclic
	// layouts). Only valid for width <= RowGroupWidth(i,j,width).
	GroupedRows(i, j, width int) kernel.View
	// ToDense materializes the matrix as a plain column-major Dense.
	ToDense() *mat.Dense
}

// blockIndex gives the block coordinate and intra-block offset of a
// global row or column index.
func blockIndex(x, b int) (blk, off int) { return x / b, x % b }

// blockSpan returns the extent of block index i along a dimension of
// length ext with block size b.
func blockSpan(i, b, ext int) int {
	s := ext - i*b
	if s > b {
		s = b
	}
	return s
}

// numBlocks returns ceil(ext/b).
func numBlocks(ext, b int) int { return (ext + b - 1) / b }

// New creates a layout of the given kind holding a copy of src.
func New(kind Kind, src *mat.Dense, b int, g Grid) Layout {
	switch kind {
	case CM:
		return NewColMajor(src, b, g)
	case BCL:
		return NewBlockCyclic(src, b, g)
	case TwoLevel:
		return NewTwoLevel(src, b, g)
	}
	panic(fmt.Sprintf("layout: unknown kind %d", int(kind)))
}

// swapViaBlocks implements SwapRows generically on top of Block.
func swapViaBlocks(l Layout, jb, r1, r2 int) {
	if r1 == r2 {
		return
	}
	_, _, b := l.Dims()
	i1, o1 := blockIndex(r1, b)
	i2, o2 := blockIndex(r2, b)
	v1 := l.Block(i1, jb)
	v2 := l.Block(i2, jb)
	for j := 0; j < v1.Cols; j++ {
		p1 := j*v1.Stride + o1
		p2 := j*v2.Stride + o2
		v1.Data[p1], v2.Data[p2] = v2.Data[p2], v1.Data[p1]
	}
}

// toDenseViaBlocks implements ToDense generically on top of Block.
func toDenseViaBlocks(l Layout) *mat.Dense {
	m, n, b := l.Dims()
	mb, nb := l.Blocks()
	out := mat.New(m, n)
	for i := 0; i < mb; i++ {
		for j := 0; j < nb; j++ {
			v := l.Block(i, j)
			for jj := 0; jj < v.Cols; jj++ {
				for ii := 0; ii < v.Rows; ii++ {
					out.Set(i*b+ii, j*b+jj, v.Data[jj*v.Stride+ii])
				}
			}
		}
	}
	return out
}

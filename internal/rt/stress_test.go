package rt

import (
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/dag"
	"repro/internal/sched"
)

// layeredGraph builds depth layers of width tasks; each task depends on
// the same-index task of the previous layer and (when fan is true) on
// its left neighbour too, producing cross-worker dependency edges.
// Every task checks that all its dependencies completed first.
func layeredGraph(width, depth int, fan bool, bad *atomic.Bool) (*dag.Graph, []*atomic.Bool) {
	g := &dag.Graph{Name: "layered"}
	done := make([]*atomic.Bool, width*depth)
	id := func(d, w int) int32 { return int32(d*width + w) }
	for d := 0; d < depth; d++ {
		for w := 0; w < width; w++ {
			i := id(d, w)
			done[i] = &atomic.Bool{}
			t := &dag.Task{ID: i, Kind: dag.S, Owner: w, Static: w%2 == 0, Prio: int64(i)}
			var deps []int32
			if d > 0 {
				deps = append(deps, id(d-1, w))
				if fan && w > 0 {
					deps = append(deps, id(d-1, w-1))
				}
			}
			myDone := done[i]
			depsC := deps
			t.Run = func() {
				for _, dep := range depsC {
					if !done[dep].Load() {
						bad.Store(true)
					}
				}
				myDone.Store(true)
			}
			g.Tasks = append(g.Tasks, t)
		}
	}
	// Wire edges (NumDeps/Outs) to match the closures.
	for d := 1; d < depth; d++ {
		for w := 0; w < width; w++ {
			t := g.Tasks[id(d, w)]
			up := g.Tasks[id(d-1, w)]
			up.Outs = append(up.Outs, t.ID)
			t.NumDeps++
			if fan && w > 0 {
				left := g.Tasks[id(d-1, w-1)]
				left.Outs = append(left.Outs, t.ID)
				t.NumDeps++
			}
		}
	}
	return g, done
}

// TestRunManyTinyTasksAllPolicies is the concurrent-runtime stress
// test: thousands of no-op-weight tasks per policy across worker
// counts, asserting every task ran exactly once and never before its
// dependencies. Run it under -race to exercise the lock-free dispatch
// paths.
func TestRunManyTinyTasksAllPolicies(t *testing.T) {
	width, depth := 64, 30
	if testing.Short() {
		depth = 8
	}
	policies := []func() sched.Policy{
		func() sched.Policy { return sched.NewStatic() },
		func() sched.Policy { return sched.NewDynamic() },
		func() sched.Policy { return sched.NewHybrid() },
		func() sched.Policy { return sched.NewWorkStealing(11) },
	}
	for _, mk := range policies {
		for _, workers := range []int{1, 2, 4, 8} {
			var bad atomic.Bool
			g, done := layeredGraph(width, depth, true, &bad)
			pol := mk()
			if _, err := Run(g, pol, Options{Workers: workers}); err != nil {
				t.Fatalf("%s workers=%d: %v", pol.Name(), workers, err)
			}
			if bad.Load() {
				t.Fatalf("%s workers=%d: dependency order violated", pol.Name(), workers)
			}
			for i, f := range done {
				if !f.Load() {
					t.Fatalf("%s workers=%d: task %d never ran", pol.Name(), workers, i)
				}
			}
		}
	}
}

// TestRunChainAcrossOwnersPinned is the targeted-wake regression test:
// a pure chain whose consecutive tasks belong to different owners under
// a pinned-queue policy. At any instant exactly one task is ready and
// only one specific worker may pop it, so all other workers park; every
// completion must therefore wake precisely the successor's owner — a
// wake delivered to any other parked worker (the classic
// wrong-worker-signal bug) deadlocks the run here almost immediately.
func TestRunChainAcrossOwnersPinned(t *testing.T) {
	const workers, length = 8, 800
	for _, mk := range []func() sched.Policy{
		func() sched.Policy { return sched.NewStatic() },
		func() sched.Policy { return sched.NewHybrid() },
	} {
		g := &dag.Graph{Name: "owner-chain"}
		var ran atomic.Int32
		for i := 0; i < length; i++ {
			tk := &dag.Task{
				ID: int32(i), Kind: dag.S, Owner: i % workers, Static: true, Prio: int64(i),
				Run: func() { ran.Add(1) },
			}
			if i > 0 {
				g.Tasks[i-1].Outs = append(g.Tasks[i-1].Outs, tk.ID)
				tk.NumDeps = 1
			}
			g.Tasks = append(g.Tasks, tk)
		}
		pol := mk()
		if _, err := Run(g, pol, Options{Workers: workers}); err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if n := ran.Load(); n != length {
			t.Fatalf("%s: ran %d/%d chain tasks", pol.Name(), n, length)
		}
		ran.Store(0)
	}
}

// TestRunGlobalLockBaseline keeps the A/B dispatcher honest: the
// serialized adapter must still execute graphs correctly.
func TestRunGlobalLockBaseline(t *testing.T) {
	var bad atomic.Bool
	g, done := layeredGraph(16, 8, true, &bad)
	if _, err := Run(g, sched.NewHybrid(), Options{Workers: 4, GlobalLock: true}); err != nil {
		t.Fatal(err)
	}
	if bad.Load() {
		t.Fatal("dependency order violated under the global-lock adapter")
	}
	for i, f := range done {
		if !f.Load() {
			t.Fatalf("task %d never ran", i)
		}
	}
}

// TestRunDetectsStuckGraphMidRun: a graph that makes progress and THEN
// wedges (a successor claims a dependency nobody provides) must be
// diagnosed by the atomic outstanding-counter check, not hang.
func TestRunDetectsStuckGraphMidRun(t *testing.T) {
	for _, workers := range []int{1, 4} {
		g := &dag.Graph{Name: "midstuck"}
		t0 := &dag.Task{ID: 0, Kind: dag.S, Run: func() {}}
		t1 := &dag.Task{ID: 1, Kind: dag.S, NumDeps: 2, Run: func() {}} // one dep never satisfied
		t0.Outs = append(t0.Outs, t1.ID)
		g.Tasks = append(g.Tasks, t0, t1)
		_, err := Run(g, sched.NewDynamic(), Options{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: expected stuck-graph error", workers)
		}
		if !strings.Contains(err.Error(), "stuck with 1/2") {
			t.Fatalf("workers=%d: wrong diagnosis: %v", workers, err)
		}
	}
}

// TestRunExecutesEachTaskOnce counts executions directly on a wide
// fan-out/fan-in graph across all policies.
func TestRunExecutesEachTaskOnce(t *testing.T) {
	policies := []sched.Policy{
		sched.NewStatic(), sched.NewDynamic(), sched.NewHybrid(), sched.NewWorkStealing(23),
	}
	for _, pol := range policies {
		const width = 500
		g := &dag.Graph{Name: "faninout"}
		counts := make([]atomic.Int32, width+2)
		src := &dag.Task{ID: 0, Kind: dag.Final, Run: func() { counts[0].Add(1) }}
		g.Tasks = append(g.Tasks, src)
		sink := &dag.Task{ID: width + 1, Kind: dag.Final, Run: func() { counts[width+1].Add(1) }}
		for i := 1; i <= width; i++ {
			ic := i
			tk := &dag.Task{ID: int32(i), Kind: dag.S, Owner: i % 8, NumDeps: 1, Prio: int64(i),
				Run: func() { counts[ic].Add(1) }}
			src.Outs = append(src.Outs, tk.ID)
			tk.Outs = append(tk.Outs, sink.ID)
			sink.NumDeps++
			g.Tasks = append(g.Tasks, tk)
		}
		g.Tasks = append(g.Tasks, sink)
		if _, err := Run(g, pol, Options{Workers: 8}); err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		for i := range counts {
			if n := counts[i].Load(); n != 1 {
				t.Fatalf("%s: task %d ran %d times", pol.Name(), i, n)
			}
		}
	}
}

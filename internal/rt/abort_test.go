package rt

import (
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/kernel"
	"repro/internal/sched"
)

// TestAbortReleasesSharedPanels pins the release-on-abort contract the
// pairing analyzer assumes: when a task panics mid-run, shared packed-B
// panels whose later consumers never execute must still return their
// bytes to the cache budget. The executor's Wait calls
// Graph.ReleasePanels after the workers drain, so a panicking job may
// strand a panel's refcount above zero but never its buffer.
//
// The graph is a three-task chain: t0 packs the shared panel via its
// first Gemm consumer, t1 panics, and t2 — the panel's second and last
// consumer, whose release would normally free the buffer — never runs.
func TestAbortReleasesSharedPanels(t *testing.T) {
	const n = 96 // comfortably past the packed-path threshold
	mk := func() kernel.View {
		v := kernel.View{Rows: n, Cols: n, Stride: n, Data: make([]float64, n*n)}
		for i := range v.Data {
			v.Data[i] = float64(i%7) - 3
		}
		return v
	}
	c, a, b := mk(), mk(), mk()

	base := kernel.ReadPanelCacheStats()

	p := kernel.NewSharedBPanel(kernel.PanelKey{Epoch: kernel.NewEpoch(), Col: 0}, 2)
	if p == nil {
		t.Fatal("NewSharedBPanel returned nil for uses=2")
	}
	g := &dag.Graph{Name: "abort-panel", Workers: 1, Panels: []*kernel.SharedBPanel{p}}
	t0 := &dag.Task{ID: 0, Kind: dag.S, Run: func() { p.Gemm(c, a, b) }}
	t1 := &dag.Task{ID: 1, Kind: dag.S, NumDeps: 1, Run: func() { panic("injected numerical failure") }}
	t2 := &dag.Task{ID: 2, Kind: dag.S, NumDeps: 1, Run: func() { p.Gemm(c, a, b) }}
	t0.Outs = []int32{t1.ID}
	t1.Outs = []int32{t2.ID}
	g.Tasks = []*dag.Task{t0, t1, t2}

	_, err := Run(g, sched.NewDynamic(), Options{Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "injected numerical failure") {
		t.Fatalf("Run error = %v, want the injected task panic", err)
	}

	after := kernel.ReadPanelCacheStats()
	if after.Packs != base.Packs+1 {
		t.Fatalf("Packs = %d, want %d: t0 did not take the shared packed path", after.Packs, base.Packs+1)
	}
	if after.UsedBytes != base.UsedBytes {
		t.Fatalf("UsedBytes = %d after aborted run, want baseline %d: panel buffer leaked", after.UsedBytes, base.UsedBytes)
	}
	if after.BudgetBytes != base.BudgetBytes {
		t.Fatalf("BudgetBytes = %d after aborted run, want baseline %d: workspace reservation leaked", after.BudgetBytes, base.BudgetBytes)
	}
}

package rt

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dag"
	"repro/internal/sched"
)

// wideGraph builds a root fanning out to `width` shared (non-static)
// tasks; every task bumps the counter.
func wideGraph(width int, counter *atomic.Int64) *dag.Graph {
	g := &dag.Graph{Name: "wide", Workers: 1}
	root := &dag.Task{ID: 0, Kind: dag.Final, Run: func() { counter.Add(1) }}
	g.Tasks = append(g.Tasks, root)
	for i := 1; i <= width; i++ {
		t := &dag.Task{ID: int32(i), Kind: dag.S, NumDeps: 1, Prio: int64(i)}
		t.Run = func() { counter.Add(1) }
		root.Outs = append(root.Outs, t.ID)
		g.Tasks = append(g.Tasks, t)
	}
	return g
}

// TestExecutorAssistExecutesSharedWork drives a dynamic-policy graph
// with one reserved worker while a second goroutine lends itself
// through a helper slot: every task must run exactly once and the
// helper must be able to contribute.
func TestExecutorAssistExecutesSharedWork(t *testing.T) {
	var counter atomic.Int64
	g := wideGraph(200, &counter)
	e, err := NewExecutor(g, sched.NewDynamic(), Options{Workers: 1, Helpers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		e.Drive(0)
	}()
	// Keep lending slot 1 until the run completes; each Assist detaches
	// when it sees no shared work, re-borrowing is the engine's loop.
	for !e.Done() {
		e.Assist(1)
	}
	wg.Wait()
	if _, err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if counter.Load() != 201 {
		t.Fatalf("ran %d/201 tasks", counter.Load())
	}
}

// TestExecutorAssistFindsNothingStatic: under the fully static policy
// every task is owner-pinned, so a lending slot must see no work and
// report it did nothing — the reason static jobs cannot be helped and
// every job keeps at least one reserved driver.
func TestExecutorAssistFindsNothingStatic(t *testing.T) {
	var counter atomic.Int64
	g := wideGraph(50, &counter)
	e, err := NewExecutor(g, sched.NewStatic(), Options{Workers: 1, Helpers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if did := e.Assist(1); did {
		t.Fatal("helper popped an owner-pinned task from a static policy")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		e.Drive(0)
	}()
	wg.Wait()
	if _, err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if counter.Load() != 51 {
		t.Fatalf("ran %d/51 tasks", counter.Load())
	}
}

// TestExecutorLendHookFires: publishing shared work while every
// reserved worker is busy must invoke the Lend callback, the signal
// the engine turns into a floater wake-up.
func TestExecutorLendHookFires(t *testing.T) {
	var counter atomic.Int64
	var lends atomic.Int64
	g := wideGraph(100, &counter)
	e, err := NewExecutor(g, sched.NewDynamic(), Options{
		Workers: 1, Helpers: 1,
		Lend: func() { lends.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Single reserved driver: when the root fans out 100 shared tasks,
	// the driver itself is the publisher and nobody is parked, so the
	// hook must fire.
	e.Drive(0)
	if _, err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if lends.Load() == 0 {
		t.Fatal("Lend hook never fired despite shared publishes with all workers busy")
	}
}

// TestExecutorWorkStealingHelpers: helpers on a work-stealing policy
// push newly readied tasks onto their own deques; those deques are
// stealable, so work a departing helper leaves behind must still
// complete. Exercised by a deep fan-out/fan-in chain driven with
// aggressive helper churn (run under -race).
func TestExecutorWorkStealingHelpers(t *testing.T) {
	var counter atomic.Int64
	const layers, width = 20, 16
	g := &dag.Graph{Name: "mesh", Workers: 2}
	var prev []*dag.Task
	id := int32(0)
	for l := 0; l < layers; l++ {
		var cur []*dag.Task
		for w := 0; w < width; w++ {
			t2 := &dag.Task{ID: id, Kind: dag.S, Owner: w % 2, Prio: int64(id)}
			t2.Run = func() { counter.Add(1) }
			for _, p := range prev {
				p.Outs = append(p.Outs, id)
				t2.NumDeps++
			}
			g.Tasks = append(g.Tasks, t2)
			cur = append(cur, t2)
			id++
		}
		prev = cur[:1] // next layer depends only on the first task
	}
	e, err := NewExecutor(g, sched.NewWorkStealing(3), Options{Workers: 2, Helpers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e.Drive(w)
		}(w)
	}
	for h := 0; h < 2; h++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for !e.Done() {
				e.Assist(slot)
			}
		}(2 + h)
	}
	wg.Wait()
	if _, err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if counter.Load() != int64(layers*width) {
		t.Fatalf("ran %d/%d tasks", counter.Load(), layers*width)
	}
}

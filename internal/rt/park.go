package rt

import "sync/atomic"

// waker is the per-worker park/unpark primitive that replaces the seed
// runtime's global cond.Broadcast thundering herd. Each worker parks on
// its own one-permit semaphore channel; a wake deposits a permit, and
// because the permit persists until consumed, a wake that races ahead
// of the park is never lost — no ticket or sequence protocol needed.
//
// Wakes are targeted: a task pinned to worker w's queue wakes exactly
// w (waking anyone else would let the signal be absorbed by a worker
// that cannot pop the task, and the run would deadlock once everyone
// parks); a task poppable by anyone wakes one currently parked worker,
// found by scanning the parked flags. The flag/queue ordering makes
// the scan safe: a parker publishes parked[w]=true before its final
// queue re-check, and a waker publishes the task before scanning the
// flags, so (with sequentially consistent atomics) either the waker
// sees the parked flag or the parker's re-check sees the task.
type waker struct {
	sem    []chan struct{}
	parked []atomic.Bool
	// rotor spreads successive wake-anyone scans across workers so one
	// completion fanning out several shared tasks wakes several
	// distinct sleepers.
	rotor atomic.Uint32
}

func (k *waker) init(workers int) {
	k.sem = make([]chan struct{}, workers)
	k.parked = make([]atomic.Bool, workers)
	for w := range k.sem {
		k.sem[w] = make(chan struct{}, 1)
	}
}

// prepare publishes that w is about to park. The caller must re-check
// its queues (and the run's termination state) after this call and
// before calling park.
func (k *waker) prepare(w int) { k.parked[w].Store(true) }

// cancel withdraws a prepare without parking (work or termination was
// found on the re-check).
func (k *waker) cancel(w int) { k.parked[w].Store(false) }

// park blocks until a permit arrives (or consumes one already
// deposited). Stale permits from earlier races cause a harmless
// spurious wakeup: the worker just re-checks its queues and may park
// again.
func (k *waker) park(w int) {
	<-k.sem[w]
	k.parked[w].Store(false)
}

// permit deposits w's wake permit (idempotent while one is pending).
func (k *waker) permit(w int) {
	select {
	case k.sem[w] <- struct{}{}:
	default:
	}
}

// wakeOwner wakes the specific worker a pinned task belongs to. Waking
// the depositor itself is skipped: it is awake by definition and will
// pop its own queue on its next dispatch iteration.
func (k *waker) wakeOwner(owner, self int) {
	if owner != self {
		k.permit(owner)
	}
}

// wakeAny wakes one parked worker (preferring one without a pending
// permit, so consecutive calls fan out), or nobody if none is parked —
// in which case every awake worker will find the shared task through
// its normal dispatch loop. It reports whether a permit was deposited;
// the runtime uses a false return (everyone busy) as the trigger for
// asking the executor's owner to lend an outside worker.
func (k *waker) wakeAny(self int) bool {
	n := len(k.sem)
	start := int(k.rotor.Add(1) % uint32(n))
	for i := 0; i < n; i++ {
		w := (start + i) % n
		if w == self || !k.parked[w].Load() {
			continue
		}
		if len(k.sem[w]) == 0 {
			k.permit(w)
			return true
		}
	}
	return false
}

// wakeAll deposits a permit for every worker (termination, failure, or
// an opaque policy behind the global-lock adapter).
func (k *waker) wakeAll() {
	for w := range k.sem {
		k.permit(w)
	}
}

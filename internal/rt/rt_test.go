package rt

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dag"
	"repro/internal/kernel"
	"repro/internal/sched"
	"repro/internal/trace"
)

// chainGraph builds a linear chain of n tasks that each bump a counter;
// order violations are detected by checking the counter value seen.
func chainGraph(n int, counter *int64, sawOrder *atomic.Bool) *dag.Graph {
	g := &dag.Graph{Name: "chain", Workers: 1}
	var prev *dag.Task
	for i := 0; i < n; i++ {
		ic := int64(i)
		t := &dag.Task{ID: int32(i), Kind: dag.S, Prio: int64(i)}
		t.Run = func() {
			if atomic.AddInt64(counter, 1)-1 != ic {
				sawOrder.Store(true)
			}
		}
		if prev != nil {
			prev.Outs = append(prev.Outs, t.ID)
			t.NumDeps = 1
		}
		g.Tasks = append(g.Tasks, t)
		prev = t
	}
	return g
}

// diamondGraph: one source fans out to `width` tasks which join into a sink.
func diamondGraph(width int, counter *int64) *dag.Graph {
	g := &dag.Graph{Name: "diamond", Workers: 1}
	src := &dag.Task{ID: 0, Kind: dag.Final, Run: func() { atomic.AddInt64(counter, 1) }}
	g.Tasks = append(g.Tasks, src)
	sink := &dag.Task{ID: int32(width + 1), Kind: dag.Final, Run: func() { atomic.AddInt64(counter, 1) }}
	for i := 1; i <= width; i++ {
		t := &dag.Task{ID: int32(i), Kind: dag.S, Owner: i % 4, NumDeps: 1, Prio: int64(i)}
		t.Run = func() { atomic.AddInt64(counter, 1) }
		src.Outs = append(src.Outs, t.ID)
		t.Outs = append(t.Outs, sink.ID)
		sink.NumDeps++
		g.Tasks = append(g.Tasks, t)
	}
	g.Tasks = append(g.Tasks, sink)
	return g
}

func TestRunChainRespectsOrder(t *testing.T) {
	var counter int64
	var bad atomic.Bool
	g := chainGraph(50, &counter, &bad)
	for _, workers := range []int{1, 2, 4} {
		counter = 0
		bad.Store(false)
		if _, err := Run(g, sched.NewDynamic(), Options{Workers: workers}); err != nil {
			t.Fatal(err)
		}
		if counter != 50 {
			t.Fatalf("workers=%d: ran %d/50 tasks", workers, counter)
		}
		if bad.Load() {
			t.Fatalf("workers=%d: dependency order violated", workers)
		}
	}
}

func TestRunDiamondAllPolicies(t *testing.T) {
	policies := []sched.Policy{sched.NewStatic(), sched.NewDynamic(), sched.NewHybrid(), sched.NewWorkStealing(5)}
	for _, p := range policies {
		var counter int64
		g := diamondGraph(40, &counter)
		if _, err := Run(g, p, Options{Workers: 4}); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if counter != 42 {
			t.Fatalf("%s: ran %d/42", p.Name(), counter)
		}
	}
}

func TestRunEmptyGraph(t *testing.T) {
	res, err := Run(&dag.Graph{Name: "empty"}, sched.NewDynamic(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 0 {
		t.Fatal("empty graph should be instantaneous")
	}
}

func TestRunRejectsZeroWorkers(t *testing.T) {
	var c int64
	g := diamondGraph(2, &c)
	if _, err := Run(g, sched.NewDynamic(), Options{Workers: 0}); err == nil {
		t.Fatal("expected error for zero workers")
	}
}

func TestRunDetectsStuckGraph(t *testing.T) {
	// A task whose dependency count can never reach zero (self-edge is
	// caught by Validate; here we just claim an extra dep).
	g := &dag.Graph{Name: "stuck"}
	t1 := &dag.Task{ID: 0, Kind: dag.S, NumDeps: 1, Run: func() {}}
	g.Tasks = append(g.Tasks, t1)
	if _, err := Run(g, sched.NewDynamic(), Options{Workers: 2}); err == nil {
		t.Fatal("expected stuck-graph error")
	}
}

func TestRunTraceRecordsEverySpan(t *testing.T) {
	var counter int64
	g := diamondGraph(20, &counter)
	tr := trace.New(3)
	if _, err := Run(g, sched.NewDynamic(), Options{Workers: 3, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	total := 0
	for w := 0; w < 3; w++ {
		total += len(tr.Spans[w])
	}
	if total != 22 {
		t.Fatalf("trace has %d spans want 22", total)
	}
}

func TestRunNoiseInjection(t *testing.T) {
	var counter int64
	g := diamondGraph(4, &counter)
	var calls atomic.Int64
	start := time.Now()
	_, err := Run(g, sched.NewDynamic(), Options{
		Workers: 2,
		Noise: func(w int) time.Duration {
			calls.Add(1)
			return 2 * time.Millisecond
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 6 {
		t.Fatalf("noise called %d times want 6", calls.Load())
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("noise did not actually delay execution")
	}
}

func TestRunStaticHonorsOwnership(t *testing.T) {
	// With the static policy, every task must run on its owner.
	g := &dag.Graph{Name: "owned"}
	var wrong atomic.Bool
	ran := make([]atomic.Int64, 4)
	for i := 0; i < 40; i++ {
		owner := i % 4
		oc := owner
		t2 := &dag.Task{ID: int32(i), Kind: dag.S, Owner: owner, Static: true, Prio: int64(i)}
		t2.Run = func() { ran[oc].Add(1) }
		g.Tasks = append(g.Tasks, t2)
	}
	// Wrap the policy: record executing worker via closure per Next is
	// not possible from outside, so instead rely on owner queues: with
	// Static, worker w only pops owner-w tasks; if the counts come out
	// right for all four workers, ownership was honored.
	if _, err := Run(g, sched.NewStatic(), Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 4; w++ {
		if ran[w].Load() != 10 {
			t.Fatalf("owner %d ran %d tasks want 10", w, ran[w].Load())
		}
	}
	if wrong.Load() {
		t.Fatal("ownership violated")
	}
}

func TestMakespanPositive(t *testing.T) {
	var counter int64
	g := diamondGraph(8, &counter)
	res, err := Run(g, sched.NewHybrid(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("makespan must be positive")
	}
}

func TestRunRecoversTaskPanic(t *testing.T) {
	g := &dag.Graph{Name: "panicky"}
	g.Tasks = append(g.Tasks, &dag.Task{ID: 0, Kind: dag.Final, Run: func() { panic("numerical failure") }})
	if _, err := Run(g, sched.NewDynamic(), Options{Workers: 2}); err == nil {
		t.Fatal("expected a panic-derived error")
	}
}

// TestRunTasksUseKernelWorkspaces executes a graph whose tasks run real
// packed GEMMs concurrently — the path rt pre-reserves kernel
// workspaces for — and verifies every task computed the right update.
func TestRunTasksUseKernelWorkspaces(t *testing.T) {
	const nTasks, sz = 8, 96
	mk := func(seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		d := make([]float64, sz*sz)
		for i := range d {
			d[i] = rng.NormFloat64()
		}
		return d
	}
	g := &dag.Graph{Name: "gemm-tasks", Workers: 4}
	type job struct{ a, b, c, want []float64 }
	jobs := make([]job, nTasks)
	for i := range jobs {
		jobs[i] = job{a: mk(int64(3 * i)), b: mk(int64(3*i + 1)), c: mk(int64(3*i + 2))}
		jobs[i].want = append([]float64(nil), jobs[i].c...)
		v := func(d []float64) kernel.View {
			return kernel.View{Rows: sz, Cols: sz, Stride: sz, Data: d}
		}
		kernel.GemmNaive(v(jobs[i].want), v(jobs[i].a), v(jobs[i].b))
		jc := i
		g.Tasks = append(g.Tasks, &dag.Task{ID: int32(i), Kind: dag.S, Run: func() {
			kernel.Gemm(v(jobs[jc].c), v(jobs[jc].a), v(jobs[jc].b))
		}})
	}
	if _, err := Run(g, sched.NewDynamic(), Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		for e := range j.c {
			if d := math.Abs(j.c[e] - j.want[e]); d > 1e-11 {
				t.Fatalf("task %d element %d off by %g", i, e, d)
			}
		}
	}
}

// Package rt executes a task dependency graph with real goroutine
// workers, performing the actual factorization arithmetic on the
// layout's storage. Dispatch is contention-free: workers pull from a
// sched.ConcurrentPolicy (per-worker queues, lock-free deques),
// dependency resolution is atomic on the graph itself (dag.
// ResolveSuccessors), progress tracking is two atomic counters, idle
// workers spin briefly and then park on an eventcount instead of a
// broadcast condvar, and trace spans are buffered per worker and merged
// once at the end. The discrete-event simulator in internal/sim drives
// the same policies through their serial adapters, so the scheduling
// decisions under study stay deterministic there while rt runs them at
// full hardware concurrency; rt is the correctness-bearing mode
// (numerics verified end to end) and the mode the examples and the
// tuning CLI run in.
package rt

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dag"
	"repro/internal/kernel"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Options configures a real execution.
type Options struct {
	// Workers is the goroutine count; must be >= 1.
	Workers int
	// Trace, when non-nil, receives one span per executed task.
	Trace *trace.Trace
	// Noise, when non-nil, is invoked after each task completion with
	// the worker id and returns an artificial delay to inject — the
	// failure-injection hook used to emulate transient OS interference
	// (the paper's delta_i) in real mode.
	Noise func(worker int) time.Duration
	// GlobalLock forces the policy to run under one mutex — the seed
	// runtime's serialized dispatcher, kept as an A/B baseline so
	// BenchmarkDispatch can measure what the global lock used to cost.
	// Never set it in production paths.
	GlobalLock bool
}

// Result reports a real execution.
type Result struct {
	Makespan time.Duration
	Counters sched.Counters
}

// spinCount is how many failed dequeue attempts a worker tolerates
// (yielding between attempts) before it parks. Spinning bridges the
// common short gaps between task completions without paying the
// park/unpark futex round trip; parking keeps long waits off the CPU.
const spinCount = 64

// run is the shared state of one execution.
type run struct {
	g  *dag.Graph
	cp sched.ConcurrentPolicy
	n  int64

	// outstanding counts tasks that are ready or running. A completing
	// worker increments it for each newly ready successor before
	// decrementing it for itself, so it can only reach zero when no
	// task is queued or in flight anywhere — at which point it can
	// never rise again. outstanding==0 with completed<n is therefore a
	// sound and stable stuck-graph verdict, with no lock and no
	// multi-counter read races.
	outstanding atomic.Int64
	completed   atomic.Int64
	failure     atomic.Pointer[error]

	wk waker
}

func (r *run) done() bool {
	return r.failure.Load() != nil || r.completed.Load() == r.n
}

// fail records the first error and releases every parked worker.
func (r *run) fail(err error) {
	r.failure.CompareAndSwap(nil, &err)
	r.wk.wakeAll()
}

// Run executes g to completion under the given policy and returns the
// wall-clock makespan. A structurally stuck graph (a bug in the DAG
// builder) is reported as an error, as is a panicking task.
func Run(g *dag.Graph, pol sched.Policy, opt Options) (Result, error) {
	if opt.Workers < 1 {
		return Result{}, fmt.Errorf("rt: need at least one worker, got %d", opt.Workers)
	}
	n := len(g.Tasks)
	if n == 0 {
		return Result{}, nil
	}
	// Reserve one packed-GEMM workspace per worker so no task pays the
	// pack-buffer allocation mid-factorization (workers call kernels
	// concurrently). The buffers live on a process-wide free list, so
	// this is a one-time, bounded warm-up — graphs without kernel
	// tasks share the same buffers on their next factorization run.
	kernel.Reserve(opt.Workers)

	var cp sched.ConcurrentPolicy
	if opt.GlobalLock {
		cp = sched.NewLocked(pol)
	} else {
		cp = sched.Concurrent(pol)
	}
	cp.Reset(g, opt.Workers)

	roots := g.ResetDeps()
	if len(roots) == 0 {
		return Result{}, fmt.Errorf("rt: graph %q stuck with 0/%d tasks done", g.Name, n)
	}
	r := &run{g: g, cp: cp, n: int64(n)}
	r.wk.init(opt.Workers)
	r.outstanding.Store(int64(len(roots)))
	for _, t := range roots {
		cp.Ready(sched.SeedWorker, t)
	}

	// Per-worker span buffers: workers never touch the shared Trace
	// during the run, so the hot path has no shared-slice growth and no
	// false sharing on neighbouring timelines.
	var spans [][]trace.Span
	if opt.Trace != nil {
		spans = make([][]trace.Span, opt.Workers)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			local := r.worker(worker, start, opt)
			if spans != nil {
				spans[worker] = local
			}
		}(w)
	}
	wg.Wait()
	if opt.Trace != nil {
		for w, s := range spans {
			opt.Trace.Merge(w, s)
		}
	}
	if errp := r.failure.Load(); errp != nil {
		return Result{}, *errp
	}
	return Result{Makespan: time.Since(start), Counters: cp.Counters()}, nil
}

// worker is one dispatch loop. It returns its locally buffered trace
// spans (nil when tracing is off).
func (r *run) worker(w int, start time.Time, opt Options) []trace.Span {
	var local []trace.Span
	scratch := make([]*dag.Task, 0, 8)
	for {
		t := r.next(w)
		if t == nil {
			return local
		}
		// The hot loop only reads the clock when someone consumes the
		// timestamps; on a no-op task graph two time.Since calls would
		// otherwise dominate the dispatch cost BenchmarkDispatch exists
		// to measure.
		var t0 float64
		if opt.Trace != nil {
			t0 = time.Since(start).Seconds()
		}
		if t.Run != nil {
			if err := runTask(t); err != nil {
				r.fail(err)
				return local
			}
		}
		var t1 float64
		if opt.Trace != nil {
			t1 = time.Since(start).Seconds()
			local = append(local, trace.Span{
				TaskID: t.ID, Label: trace.KindLabel(t.Kind.String()), Start: t0, End: t1,
			})
		}
		if opt.Noise != nil {
			if d := opt.Noise(w); d > 0 {
				spinFor(d)
				if opt.Trace != nil {
					local = append(local, trace.Span{
						TaskID: -1, Label: 'N', Start: t1, End: time.Since(start).Seconds(),
					})
				}
			}
		}

		// Completion: resolve successors atomically and publish the
		// newly ready ones before giving up this task's own claim on
		// `outstanding` (see the field comment for why this order makes
		// the stuck check sound).
		scratch = r.g.ResolveSuccessors(t, scratch[:0])
		if len(scratch) > 0 {
			r.outstanding.Add(int64(len(scratch)))
			for _, s := range scratch {
				switch hint := r.cp.Ready(w, s); hint {
				case sched.AnyWorker:
					r.wk.wakeAny(w)
				case sched.AllWorkers:
					r.wk.wakeAll()
				default:
					r.wk.wakeOwner(hint, w)
				}
			}
		}
		done := r.completed.Add(1)
		left := r.outstanding.Add(-1)
		if done == r.n {
			r.wk.wakeAll()
			return local
		}
		if left == 0 {
			// outstanding hit zero: nothing is queued or in flight
			// anywhere, so `completed` is final — but our own `done`
			// snapshot may predate other workers' final increments, so
			// re-read it before declaring the graph stuck.
			if final := r.completed.Load(); final != r.n {
				r.fail(fmt.Errorf("rt: graph %q stuck with %d/%d tasks done", r.g.Name, final, r.n))
			}
			return local
		}
	}
}

// next returns the worker's next task, spinning briefly and then
// parking while the queues are empty. It returns nil when the run is
// over (all tasks completed, or a failure was recorded).
func (r *run) next(w int) *dag.Task {
	spins := 0
	for {
		if r.done() {
			return nil
		}
		if t := r.cp.Next(w); t != nil {
			return t
		}
		if spins < spinCount {
			spins++
			runtime.Gosched()
			continue
		}
		// Publish the parked flag, then re-check: a waker publishes its
		// task before scanning the flags, so either it sees us parked
		// and deposits a permit, or this re-check sees its task — a
		// wake between our failed Next and the park cannot be lost.
		r.wk.prepare(w)
		if r.done() {
			r.wk.cancel(w)
			return nil
		}
		if t := r.cp.Next(w); t != nil {
			r.wk.cancel(w)
			return t
		}
		r.wk.park(w)
		spins = 0
	}
}

// runTask executes a task's closure, converting panics (numerical
// failures such as a singular pivot block or a non-SPD input) into
// errors so a worker goroutine never takes the whole process down.
func runTask(t *dag.Task) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("rt: task %d (%v) failed: %v", t.ID, t.Kind, r)
		}
	}()
	t.Run()
	return nil
}

// spinFor burns CPU for roughly d, emulating a compute-stealing daemon
// rather than a blocking wait (sleeping would free the core, which is
// not what OS noise does). The deadline is checked once per ~16k
// additions (pre-checked, so a non-positive d burns nothing): time.Now
// itself costs tens of nanoseconds, and calling it every 1024 additions
// (as the seed runtime did) made the spin mostly clock calls rather
// than arithmetic, so the burned compute per injected delta depended on
// the clock source. The coarser check bounds the overshoot of one
// block (~16k adds) while keeping clock overhead under 1%.
func spinFor(d time.Duration) {
	deadline := time.Now().Add(d)
	x := 0.0
	for time.Now().Before(deadline) {
		for i := 0; i < 16384; i++ {
			x += float64(i)
		}
	}
	_ = x
}

// Package rt executes a task dependency graph with real goroutine
// workers, performing the actual factorization arithmetic on the
// layout's storage. It drives a sched.Policy under one lock, mirroring
// the discrete-event simulator in internal/sim so that the scheduling
// decisions under study are identical in both modes; rt is the
// correctness-bearing mode (numerics verified end to end) and the mode
// the examples and the tuning CLI run in.
package rt

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/dag"
	"repro/internal/kernel"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Options configures a real execution.
type Options struct {
	// Workers is the goroutine count; must be >= 1.
	Workers int
	// Trace, when non-nil, receives one span per executed task.
	Trace *trace.Trace
	// Noise, when non-nil, is invoked after each task completion with
	// the worker id and returns an artificial delay to inject — the
	// failure-injection hook used to emulate transient OS interference
	// (the paper's delta_i) in real mode.
	Noise func(worker int) time.Duration
}

// Result reports a real execution.
type Result struct {
	Makespan time.Duration
	Counters sched.Counters
}

// Run executes g to completion under the given policy and returns the
// wall-clock makespan. It panics on a structurally stuck graph (a bug
// in the DAG builder), because no caller can make progress from that.
func Run(g *dag.Graph, pol sched.Policy, opt Options) (Result, error) {
	if opt.Workers < 1 {
		return Result{}, fmt.Errorf("rt: need at least one worker, got %d", opt.Workers)
	}
	n := len(g.Tasks)
	if n == 0 {
		return Result{}, nil
	}
	// Reserve one packed-GEMM workspace per worker so no task pays the
	// pack-buffer allocation mid-factorization (workers call kernels
	// concurrently). The buffers live on a process-wide free list, so
	// this is a one-time, bounded warm-up — graphs without kernel
	// tasks share the same buffers on their next factorization run.
	kernel.Reserve(opt.Workers)
	pol.Reset(g, opt.Workers)

	remaining := make([]int32, n)
	for i, t := range g.Tasks {
		remaining[i] = t.NumDeps
	}

	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	completed := 0
	executing := 0
	var stuck error

	for _, t := range g.Tasks {
		if t.NumDeps == 0 {
			pol.Ready(t)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				mu.Lock()
				var t *dag.Task
				for {
					if completed == n || stuck != nil {
						mu.Unlock()
						return
					}
					t = pol.Next(worker)
					if t != nil {
						break
					}
					if executing == 0 && pol.ReadyCount() == 0 {
						// Nothing running, nothing ready, graph unfinished:
						// the dependency structure is broken.
						stuck = fmt.Errorf("rt: graph %q stuck with %d/%d tasks done", g.Name, completed, n)
						cond.Broadcast()
						mu.Unlock()
						return
					}
					cond.Wait()
				}
				executing++
				mu.Unlock()

				t0 := time.Since(start).Seconds()
				if t.Run != nil {
					if err := runTask(t); err != nil {
						mu.Lock()
						if stuck == nil {
							stuck = err
						}
						executing--
						cond.Broadcast()
						mu.Unlock()
						return
					}
				}
				t1 := time.Since(start).Seconds()
				if opt.Trace != nil {
					opt.Trace.Add(worker, t.ID, trace.KindLabel(t.Kind.String()), t0, t1)
				}
				if opt.Noise != nil {
					if d := opt.Noise(worker); d > 0 {
						spinFor(d)
						if opt.Trace != nil {
							opt.Trace.Add(worker, -1, 'N', t1, time.Since(start).Seconds())
						}
					}
				}

				mu.Lock()
				executing--
				completed++
				for _, o := range t.Outs {
					remaining[o]--
					if remaining[o] == 0 {
						pol.Ready(g.Tasks[o])
					}
				}
				cond.Broadcast()
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if stuck != nil {
		return Result{}, stuck
	}
	return Result{Makespan: time.Since(start), Counters: pol.Counters()}, nil
}

// runTask executes a task's closure, converting panics (numerical
// failures such as a singular pivot block or a non-SPD input) into
// errors so a worker goroutine never takes the whole process down.
func runTask(t *dag.Task) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("rt: task %d (%v) failed: %v", t.ID, t.Kind, r)
		}
	}()
	t.Run()
	return nil
}

// spinFor burns CPU for roughly d, emulating a compute-stealing daemon
// rather than a blocking wait (sleeping would free the core, which is
// not what OS noise does).
func spinFor(d time.Duration) {
	deadline := time.Now().Add(d)
	x := 0.0
	for time.Now().Before(deadline) {
		for i := 0; i < 1024; i++ {
			x += float64(i)
		}
	}
	_ = x
}

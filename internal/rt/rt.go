// Package rt executes a task dependency graph with real goroutine
// workers, performing the actual factorization arithmetic on the
// layout's storage. Dispatch is contention-free: workers pull from a
// sched.ConcurrentPolicy (per-worker queues, lock-free deques),
// dependency resolution is atomic on the graph itself (dag.
// ResolveSuccessors), progress tracking is two atomic counters, idle
// workers spin briefly and then park on an eventcount instead of a
// broadcast condvar, and trace spans are buffered per worker and merged
// once at the end. The discrete-event simulator in internal/sim drives
// the same policies through their serial adapters, so the scheduling
// decisions under study stay deterministic there while rt runs them at
// full hardware concurrency; rt is the correctness-bearing mode
// (numerics verified end to end) and the mode the examples and the
// tuning CLI run in.
//
// An execution is an Executor: a drivable object that resident workers
// attach to (Drive for a run's own reserved workers, Assist for
// lending slots borrowed by another job's idle workers) and detach
// from, rather than a function that owns its goroutines. Run is the
// one-shot convenience that spawns a goroutine per worker and waits —
// the spawn-per-call mode the resident engine (internal/engine)
// amortizes away.
package rt

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dag"
	"repro/internal/kernel"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Options configures a real execution.
type Options struct {
	// Workers is the reserved worker count; must be >= 1. Reserved
	// workers drive the run to completion (they park when idle and are
	// woken by readiness events).
	Workers int
	// Helpers is the number of extra lending slots beyond Workers. A
	// helper slot is a worker identity a foreign worker may borrow to
	// Assist the run: it pops only work the policy exposes to every
	// worker (the shared dynamic heap, stealable deques) and detaches
	// instead of parking when it finds none. The static distribution is
	// built for Workers owners, so owner-pinned tasks never land on a
	// helper slot and a departing helper strands no work.
	Helpers int
	// Lend, when non-nil, is called (from a worker, outside all locks)
	// when a globally poppable task was published and every reserved
	// worker was busy — the signal that the run could productively use
	// an Assist. The engine uses it to wake pool floaters.
	Lend func()
	// ExternalWorkspace, when true, skips the per-run kernel workspace
	// reservation: the caller (the resident engine) holds one
	// pool-wide refcounted reservation for all its runs instead.
	ExternalWorkspace bool
	// Trace, when non-nil, receives one span per executed task.
	Trace *trace.Trace
	// Noise, when non-nil, is invoked after each task completion with
	// the worker id and returns an artificial delay to inject — the
	// failure-injection hook used to emulate transient OS interference
	// (the paper's delta_i) in real mode.
	Noise func(worker int) time.Duration
	// GlobalLock forces the policy to run under one mutex — the seed
	// runtime's serialized dispatcher, kept as an A/B baseline so
	// BenchmarkDispatch can measure what the global lock used to cost.
	// Never set it in production paths.
	GlobalLock bool
}

// Result reports a real execution.
type Result struct {
	Makespan time.Duration
	Counters sched.Counters
}

// spinCount is how many failed dequeue attempts a worker tolerates
// (yielding between attempts) before it parks (reserved workers) or
// detaches (helpers). Spinning bridges the common short gaps between
// task completions without paying the park/unpark futex round trip;
// parking keeps long waits off the CPU.
const spinCount = 64

// Executor is the shared state of one execution: a run workers attach
// to and detach from. Local worker ids [0,Workers) are the reserved
// slots (each must be driven by exactly one goroutine at a time, and
// reserved drivers stay until the run completes); ids
// [Workers,Workers+Helpers) are lending slots foreign workers borrow
// transiently through Assist. The caller serializes ownership of each
// slot; the Executor itself is safe for concurrent Drive/Assist calls
// on distinct slots.
type Executor struct {
	g     *dag.Graph
	cp    sched.ConcurrentPolicy
	n     int64
	slots int
	opt   Options
	start time.Time

	// outstanding counts tasks that are ready or running. A completing
	// worker increments it for each newly ready successor before
	// decrementing it for itself, so it can only reach zero when no
	// task is queued or in flight anywhere — at which point it can
	// never rise again. outstanding==0 with completed<n is therefore a
	// sound and stable stuck-graph verdict, with no lock and no
	// multi-counter read races.
	outstanding atomic.Int64
	completed   atomic.Int64
	failure     atomic.Pointer[error]

	// attached counts workers currently inside Drive/Assist; Wait
	// drains it to zero before touching policy counters or spans.
	// Guarded by attachMu (attach/detach are per-worker-per-run, not
	// per-task, so the lock is off the hot path); attachCond signals
	// the drain.
	attachMu   sync.Mutex
	attachCond *sync.Cond
	attached   int

	wk waker

	// Per-slot span buffers: workers never touch the shared Trace
	// during the run, so the hot path has no shared-slice growth and no
	// false sharing on neighbouring timelines.
	spans [][]trace.Span

	ws       *kernel.Reservation
	doneOnce sync.Once
	doneCh   chan struct{}
	makespan time.Duration

	waitOnce sync.Once
	result   Result
	waitErr  error
}

// NewExecutor prepares an execution of g under the given policy. The
// graph's dependency counters are armed and the roots are seeded; the
// run starts making progress as soon as the first worker attaches. A
// structurally stuck graph (a bug in the DAG builder) is reported
// here.
func NewExecutor(g *dag.Graph, pol sched.Policy, opt Options) (*Executor, error) {
	if opt.Workers < 1 {
		return nil, fmt.Errorf("rt: need at least one worker, got %d", opt.Workers)
	}
	if opt.Helpers < 0 {
		opt.Helpers = 0
	}
	e := &Executor{
		g:      g,
		n:      int64(len(g.Tasks)),
		slots:  opt.Workers + opt.Helpers,
		opt:    opt,
		doneCh: make(chan struct{}),
	}
	e.attachCond = sync.NewCond(&e.attachMu)
	if e.n == 0 {
		close(e.doneCh)
		return e, nil
	}
	// Reserve one packed-GEMM workspace per slot so no task pays the
	// pack-buffer allocation mid-factorization (workers call kernels
	// concurrently). Reservations are refcounted across overlapping
	// runs; the engine instead holds one pool-wide reservation and sets
	// ExternalWorkspace.
	if !opt.ExternalWorkspace {
		e.ws = kernel.Reserve(e.slots)
	}
	if opt.GlobalLock {
		e.cp = sched.NewLocked(pol)
	} else {
		e.cp = sched.Concurrent(pol)
	}
	e.cp.Reset(g, e.slots)

	roots := g.ResetDeps()
	if len(roots) == 0 {
		e.ws.Release()
		return nil, fmt.Errorf("rt: graph %q stuck with 0/%d tasks done", g.Name, e.n)
	}
	e.wk.init(e.slots)
	e.outstanding.Store(int64(len(roots)))
	for _, t := range roots {
		e.cp.Ready(sched.SeedWorker, t)
	}
	if opt.Trace != nil {
		e.spans = make([][]trace.Span, e.slots)
	}
	e.start = time.Now()
	return e, nil
}

func (e *Executor) done() bool {
	return e.failure.Load() != nil || e.completed.Load() == e.n
}

// SharedBacklog estimates how many of the run's queued tasks are
// globally poppable — work a borrowed lending slot could execute right
// now. The engine's lend arbitration uses it to weigh which running
// job a floater should help: all else (laxity) equal, the job with the
// deepest shared backlog keeps a helper busy longest. Zero once the
// run is over.
func (e *Executor) SharedBacklog() int {
	if e.cp == nil || e.Done() {
		return 0
	}
	return e.cp.SharedBacklog()
}

// Done reports whether the run has completed (successfully or not).
func (e *Executor) Done() bool {
	select {
	case <-e.doneCh:
		return true
	default:
		return false
	}
}

// finish records the end of the run exactly once and releases every
// parked worker.
func (e *Executor) finish() {
	e.doneOnce.Do(func() {
		e.makespan = time.Since(e.start)
		close(e.doneCh)
	})
	e.wk.wakeAll()
}

// fail records the first error and ends the run.
func (e *Executor) fail(err error) {
	e.failure.CompareAndSwap(nil, &err)
	e.finish()
}

// Drive attaches the calling goroutine as reserved worker w and runs
// the dispatch loop until the run completes. Exactly one goroutine may
// drive each reserved slot.
func (e *Executor) Drive(w int) {
	if e.n == 0 || !e.attach() {
		return
	}
	local, _ := e.loop(w, true, e.takeSpans(w))
	e.putSpans(w, local)
	e.detach()
}

// Assist attaches the calling goroutine on lending slot `slot`
// (in [Workers, Workers+Helpers)) and executes globally poppable work
// until none is visible, then detaches. It reports whether it executed
// at least one task. Slot ownership must be serialized by the caller;
// a slot may be re-borrowed after Assist returns.
func (e *Executor) Assist(slot int) bool {
	if e.n == 0 || !e.attach() {
		return false
	}
	local, did := e.loop(slot, false, e.takeSpans(slot))
	e.putSpans(slot, local)
	e.detach()
	return did
}

// attach registers the caller in `attached`, or reports false if the
// run is already over. The done check happens under attachMu, the same
// lock Wait's drain holds: a late attacher either sees done here (and
// backs out without touching the span buffers Wait is about to read)
// or is counted before the drain reads zero and holds it open until
// detach — span buffers are never touched concurrently with Wait.
func (e *Executor) attach() bool {
	e.attachMu.Lock()
	defer e.attachMu.Unlock()
	if e.Done() {
		return false
	}
	e.attached++
	return true
}

func (e *Executor) detach() {
	e.attachMu.Lock()
	e.attached--
	if e.attached == 0 {
		e.attachCond.Broadcast()
	}
	e.attachMu.Unlock()
}

func (e *Executor) takeSpans(w int) []trace.Span {
	if e.spans == nil {
		return nil
	}
	return e.spans[w]
}

func (e *Executor) putSpans(w int, s []trace.Span) {
	if e.spans != nil {
		e.spans[w] = s
	}
}

// Wait blocks until the run completes, drains all attached workers,
// and returns the merged result. The one-shot Run calls it after
// spawning its drivers; the engine calls it from the worker that
// observes completion first.
func (e *Executor) Wait() (Result, error) {
	<-e.doneCh
	// Counters and spans must not be read while a worker is still
	// inside Next/Ready; block until the attached count drains (parked
	// workers were woken by finish, helpers detach on their next done
	// check, workers mid-task finish that task first).
	e.attachMu.Lock()
	for e.attached != 0 {
		e.attachCond.Wait()
	}
	e.attachMu.Unlock()
	e.waitOnce.Do(func() {
		e.ws.Release()
		// Workers have drained, so any shared panel handle still packed
		// belongs to a task that never ran (aborted run) — reclaim its
		// cache budget. A no-op on the success path.
		e.g.ReleasePanels()
		if e.n == 0 {
			return
		}
		if e.opt.Trace != nil {
			for w, s := range e.spans {
				if len(s) == 0 {
					continue
				}
				// Lending slots lie beyond the worker count the caller
				// sized the trace for; grow it so their spans land on
				// their own timelines.
				e.opt.Trace.EnsureWorkers(w + 1)
				e.opt.Trace.Merge(w, s)
			}
		}
		if errp := e.failure.Load(); errp != nil {
			e.waitErr = *errp
			return
		}
		e.result = Result{Makespan: e.makespan, Counters: e.cp.Counters()}
	})
	return e.result, e.waitErr
}

// Run executes g to completion under the given policy and returns the
// wall-clock makespan: the one-shot mode that spawns a goroutine per
// worker and tears everything down afterwards. A structurally stuck
// graph is reported as an error, as is a panicking task.
func Run(g *dag.Graph, pol sched.Policy, opt Options) (Result, error) {
	opt.Helpers = 0
	e, err := NewExecutor(g, pol, opt)
	if err != nil {
		return Result{}, err
	}
	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			e.Drive(worker)
		}(w)
	}
	wg.Wait()
	return e.Wait()
}

// loop is one dispatch loop on slot w. park selects the idle behaviour:
// reserved workers park and stay until the run is over, helpers return
// as soon as no work is visible to them. It returns the slot's locally
// buffered trace spans and whether it executed at least one task.
func (e *Executor) loop(w int, park bool, local []trace.Span) ([]trace.Span, bool) {
	did := false
	scratch := make([]*dag.Task, 0, 8)
	for {
		t := e.next(w, park)
		if t == nil {
			return local, did
		}
		did = true
		// The hot loop only reads the clock when someone consumes the
		// timestamps; on a no-op task graph two time.Since calls would
		// otherwise dominate the dispatch cost BenchmarkDispatch exists
		// to measure.
		var t0 float64
		if e.opt.Trace != nil {
			t0 = time.Since(e.start).Seconds()
		}
		if t.Run != nil {
			if err := runTask(t); err != nil {
				e.fail(err)
				return local, did
			}
		}
		var t1 float64
		if e.opt.Trace != nil {
			t1 = time.Since(e.start).Seconds()
			local = append(local, trace.Span{
				TaskID: t.ID, Label: trace.KindLabel(t.Kind.String()), Start: t0, End: t1,
			})
		}
		if e.opt.Noise != nil {
			if d := e.opt.Noise(w); d > 0 {
				spinFor(d)
				if e.opt.Trace != nil {
					local = append(local, trace.Span{
						TaskID: -1, Label: 'N', Start: t1, End: time.Since(e.start).Seconds(),
					})
				}
			}
		}

		// Completion: resolve successors atomically and publish the
		// newly ready ones before giving up this task's own claim on
		// `outstanding` (see the field comment for why this order makes
		// the stuck check sound).
		scratch = e.g.ResolveSuccessors(t, scratch[:0])
		if len(scratch) > 0 {
			e.outstanding.Add(int64(len(scratch)))
			for _, s := range scratch {
				switch hint := e.cp.Ready(w, s); hint {
				case sched.AnyWorker:
					if !e.wk.wakeAny(w) && e.opt.Lend != nil {
						// Every reserved worker is busy and a globally
						// poppable task just appeared: ask the owner of
						// this executor for a lending worker.
						e.opt.Lend()
					}
				case sched.AllWorkers:
					e.wk.wakeAll()
				default:
					e.wk.wakeOwner(hint, w)
				}
			}
		}
		done := e.completed.Add(1)
		left := e.outstanding.Add(-1)
		if done == e.n {
			e.finish()
			return local, did
		}
		if left == 0 {
			// outstanding hit zero: nothing is queued or in flight
			// anywhere, so `completed` is final — but our own `done`
			// snapshot may predate other workers' final increments, so
			// re-read it before declaring the graph stuck.
			if final := e.completed.Load(); final != e.n {
				e.fail(fmt.Errorf("rt: graph %q stuck with %d/%d tasks done", e.g.Name, final, e.n))
			}
			return local, did
		}
	}
}

// next returns the slot's next task, spinning briefly and then parking
// (reserved workers) or giving up (helpers) while the queues are
// empty. It returns nil when the run is over or, for helpers, when no
// work is visible to this slot.
func (e *Executor) next(w int, park bool) *dag.Task {
	spins := 0
	for {
		if e.done() {
			return nil
		}
		if t := e.cp.Next(w); t != nil {
			return t
		}
		if spins < spinCount {
			spins++
			runtime.Gosched()
			continue
		}
		if !park {
			return nil
		}
		// Publish the parked flag, then re-check: a waker publishes its
		// task before scanning the flags, so either it sees us parked
		// and deposits a permit, or this re-check sees its task — a
		// wake between our failed Next and the park cannot be lost.
		e.wk.prepare(w)
		if e.done() {
			e.wk.cancel(w)
			return nil
		}
		if t := e.cp.Next(w); t != nil {
			e.wk.cancel(w)
			return t
		}
		e.wk.park(w)
		spins = 0
	}
}

// runTask executes a task's closure, converting panics (numerical
// failures such as a singular pivot block or a non-SPD input) into
// errors so a worker goroutine never takes the whole process down.
func runTask(t *dag.Task) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("rt: task %d (%v) failed: %v", t.ID, t.Kind, r)
		}
	}()
	t.Run()
	return nil
}

// spinFor burns CPU for roughly d, emulating a compute-stealing daemon
// rather than a blocking wait (sleeping would free the core, which is
// not what OS noise does). The deadline is checked once per ~16k
// additions (pre-checked, so a non-positive d burns nothing): time.Now
// itself costs tens of nanoseconds, and calling it every 1024 additions
// (as the seed runtime did) made the spin mostly clock calls rather
// than arithmetic, so the burned compute per injected delta depended on
// the clock source. The coarser check bounds the overshoot of one
// block (~16k adds) while keeping clock overhead under 1%.
func spinFor(d time.Duration) {
	deadline := time.Now().Add(d)
	x := 0.0
	for time.Now().Before(deadline) {
		for i := 0; i < 16384; i++ {
			x += float64(i)
		}
	}
	_ = x
}

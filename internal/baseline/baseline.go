// Package baseline implements the two library comparison points of the
// paper's section 5.3:
//
//   - FactorGEPP: blocked LU with partial pivoting and a *sequential*
//     panel factorization — structurally the multithreaded
//     LAPACK/MKL-10.3-era dgetrf whose panel sits on the critical path
//     (the reason CALU beats MKL by up to 110% on 48 cores).
//   - SolveIncPiv: tiled LU with incremental pivoting — structurally
//     PLASMA 2.3's dgetrf_incpiv, which removes the panel from the
//     critical path but pays extra update flops and a weaker pivoting
//     scheme (the stability caveat the paper cites).
//
// Both baselines execute for real on actual data (used by tests and
// examples) and both expose simulation-only graph builders used by the
// Figure 16/17 experiments.
package baseline

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/layout"
	"repro/internal/mat"
	"repro/internal/rt"
	"repro/internal/sched"
)

// GEPPOptions configures the MKL-style baseline.
type GEPPOptions struct {
	// Block is the panel width (default 32).
	Block int
	// Workers is the goroutine count (default 1).
	Workers int
	// Lookahead enables panel look-ahead (off for the MKL comparison
	// point; on for ablations).
	Lookahead bool
}

// FactorGEPP computes PA = LU with classic blocked Gaussian elimination
// with partial pivoting on a column-major copy of a.
func FactorGEPP(a *mat.Dense, opt GEPPOptions) (*core.Factorization, error) {
	if opt.Block <= 0 {
		opt.Block = 32
	}
	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	grid := layout.NewGrid(opt.Workers)
	l := layout.NewColMajor(a, opt.Block, grid)
	gg := dag.BuildGEPP(l, dag.GEPPOptions{Lookahead: opt.Lookahead})
	if err := gg.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: invalid GEPP graph: %w", err)
	}
	res, err := rt.Run(gg.Graph, sched.NewDynamic(), rt.Options{Workers: opt.Workers})
	if err != nil {
		return nil, err
	}
	perm := gg.FinishPermutation()
	lf, uf := core.ExtractLU(l)
	return &core.Factorization{
		Perm:     perm,
		L:        lf,
		U:        uf,
		Makespan: res.Makespan,
		Counters: res.Counters,
		Stats:    gg.ComputeStats(),
	}, nil
}

// IncPivOptions configures the PLASMA-style baseline.
type IncPivOptions struct {
	// Block is the tile size (default 32).
	Block int
	// Workers is the goroutine count (default 1).
	Workers int
}

// IncPivSolver holds a factored system under incremental pivoting. The
// transformations of incremental pivoting interleave across tiles, so
// unlike GEPP the factorization is not exposed as an explicit (P, L, U)
// triple; it is applied to right-hand sides carried through the same
// task pipeline.
type IncPivSolver struct {
	n    int
	u    *mat.Dense // the upper triangular factor
	x    []float64  // transformed rhs (L^{-1}-applied)
	Time time.Duration
	// Stats summarizes the executed task graph.
	Stats dag.Stats
}

// SolveIncPiv factors [A | b] with tiled incremental-pivoting LU and
// returns the solution of A x = b. The right-hand side is appended as
// an extra tile column so every GESSM/SSSSM transformation applies to
// it exactly as PLASMA's dgetrs_incpiv would.
func SolveIncPiv(a *mat.Dense, b []float64, opt IncPivOptions) ([]float64, *IncPivSolver, error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("baseline: incpiv solve requires square A, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return nil, nil, fmt.Errorf("baseline: rhs length %d != %d", len(b), a.Rows)
	}
	if opt.Block <= 0 {
		opt.Block = 32
	}
	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	n := a.Rows
	aug := mat.New(n, n+1)
	aug.Slice(0, n, 0, n).CopyFrom(a)
	for i, v := range b {
		aug.Set(i, n, v)
	}
	grid := layout.NewGrid(opt.Workers)
	l := layout.NewTwoLevel(aug, opt.Block, grid)
	ig := dag.BuildIncPiv(l)
	if err := ig.Validate(); err != nil {
		return nil, nil, fmt.Errorf("baseline: invalid incpiv graph: %w", err)
	}
	res, err := rt.Run(ig.Graph, sched.NewDynamic(), rt.Options{Workers: opt.Workers})
	if err != nil {
		return nil, nil, err
	}
	d := l.ToDense()
	solver := &IncPivSolver{n: n, u: d, Time: res.Makespan, Stats: ig.ComputeStats()}
	solver.x = make([]float64, n)
	for i := 0; i < n; i++ {
		solver.x[i] = d.At(i, n)
	}
	x := make([]float64, n)
	copy(x, solver.x)
	// Back substitution with the upper triangular factor.
	for j := n - 1; j >= 0; j-- {
		ujj := d.At(j, j)
		if ujj == 0 {
			return nil, nil, fmt.Errorf("baseline: incpiv singular U at %d", j)
		}
		x[j] /= ujj
		for i := 0; i < j; i++ {
			x[i] -= d.At(i, j) * x[j]
		}
	}
	return x, solver, nil
}

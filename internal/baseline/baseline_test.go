package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/mat"
)

func TestFactorGEPPMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := mat.Random(96, 96, rng)
	f, err := FactorGEPP(a, GEPPOptions{Block: 16, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r := core.Residual(a, f); r > 1e-10 {
		t.Fatalf("GEPP residual %g", r)
	}
}

func TestFactorGEPPWithLookahead(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := mat.Random(80, 80, rng)
	f, err := FactorGEPP(a, GEPPOptions{Block: 16, Workers: 4, Lookahead: true})
	if err != nil {
		t.Fatal(err)
	}
	if r := core.Residual(a, f); r > 1e-10 {
		t.Fatalf("lookahead GEPP residual %g", r)
	}
}

func TestFactorGEPPRectangular(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, s := range [][2]int{{100, 40}, {40, 100}, {50, 50}, {33, 57}} {
		a := mat.Random(s[0], s[1], rng)
		f, err := FactorGEPP(a, GEPPOptions{Block: 16, Workers: 2})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if r := core.Residual(a, f); r > 1e-10 {
			t.Errorf("%v: residual %g", s, r)
		}
	}
}

func TestFactorGEPPExactlyMatchesSequentialPivoting(t *testing.T) {
	// GEPP is deterministic: the parallel DAG execution must produce
	// exactly the same pivots as the sequential reference.
	rng := rand.New(rand.NewSource(4))
	a := mat.Random(64, 64, rng)
	ref, err := core.ReferenceLU(a)
	if err != nil {
		t.Fatal(err)
	}
	f, err := FactorGEPP(a, GEPPOptions{Block: 16, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Perm {
		if ref.Perm[i] != f.Perm[i] {
			t.Fatalf("pivoting differs from reference at row %d", i)
		}
	}
	if mat.MaxAbsDiff(ref.U, f.U) > 1e-9 {
		t.Fatal("U factors differ from the sequential reference")
	}
}

func TestSolveIncPiv(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 96
	a := mat.Random(n, n, rng)
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	for j := 0; j < n; j++ {
		col := a.Col(j)
		for i := 0; i < n; i++ {
			b[i] += col[i] * xTrue[j]
		}
	}
	x, solver, err := SolveIncPiv(a, b, IncPivOptions{Block: 16, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r := core.SolveResidual(a, x, b); r > 1e-8 {
		t.Fatalf("incpiv solve residual %g", r)
	}
	maxErr := 0.0
	for i := range x {
		maxErr = math.Max(maxErr, math.Abs(x[i]-xTrue[i]))
	}
	if maxErr > 1e-5 {
		t.Fatalf("incpiv solution error %g", maxErr)
	}
	if solver.Stats.Total == 0 {
		t.Fatal("no task stats recorded")
	}
}

func TestSolveIncPivRaggedTiles(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 50 // not a multiple of the tile size
	a := mat.RandomDiagDominant(n, rng)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, _, err := SolveIncPiv(a, b, IncPivOptions{Block: 16, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r := core.SolveResidual(a, x, b); r > 1e-8 {
		t.Fatalf("ragged incpiv residual %g", r)
	}
}

func TestSolveIncPivRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if _, _, err := SolveIncPiv(mat.Random(10, 8, rng), make([]float64, 10), IncPivOptions{}); err == nil {
		t.Fatal("non-square A accepted")
	}
	if _, _, err := SolveIncPiv(mat.Random(8, 8, rng), make([]float64, 5), IncPivOptions{}); err == nil {
		t.Fatal("short rhs accepted")
	}
}

func TestGEPPDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := mat.Random(40, 40, rng)
	f, err := FactorGEPP(a, GEPPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r := core.Residual(a, f); r > 1e-10 {
		t.Fatalf("default options residual %g", r)
	}
}

// Property: both baselines solve random diagonally dominant systems to
// tight accuracy at random sizes, blocks and worker counts.
func TestBaselinesSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + int(rng.Int31n(80))
		a := mat.RandomDiagDominant(n, rng)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		blk := 8 + int(rng.Int31n(16))
		w := 1 + int(rng.Int31n(4))
		fac, err := FactorGEPP(a, GEPPOptions{Block: blk, Workers: w, Lookahead: seed%2 == 0})
		if err != nil {
			return false
		}
		xg, err := fac.Solve(b)
		if err != nil || core.SolveResidual(a, xg, b) > 1e-9 {
			return false
		}
		xi, _, err := SolveIncPiv(a, b, IncPivOptions{Block: blk, Workers: w})
		if err != nil || core.SolveResidual(a, xi, b) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

package experiments

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/sim"
)

func init() {
	register("fig16", "CALU vs MKL-style dgetrf vs PLASMA-style dgetrf_incpiv, Intel 16-core",
		func(scale float64, seed int64) (*Table, error) {
			return libraryComparison(sim.IntelXeon16(), 16, scale, seed,
				"Paper: CALU static(10% dynamic) is ~60% faster than MKL at n=10000 and up to "+
					"+82% at n=4000 (2l-BL); 20-30% over PLASMA's incremental pivoting for larger "+
					"matrices.")
		})
	register("fig17", "CALU vs MKL-style dgetrf vs PLASMA-style dgetrf_incpiv, AMD 48-core",
		func(scale float64, seed int64) (*Table, error) {
			return libraryComparison(sim.AMDOpteron48(), 48, scale, seed,
				"Paper: CALU static(10% dynamic) is ~100% (up to 110%) faster than MKL at "+
					"n=10000 even after interleaved NUMA placement, and 20-30% over PLASMA.")
		})
}

// libraryComparison generates Figures 16 and 17: CALU hybrid(10%) under
// both block layouts against the two library baselines.
func libraryComparison(m sim.Machine, workers int, scale float64, seed int64, note string) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("%s, %d workers (Gflop/s)", m.Name, workers),
		Columns: []string{"n", "CALU h10 (BCL)", "CALU h10 (2l-BL)",
			"MKL-like dgetrf", "PLASMA-like incpiv", "best vs MKL", "best vs PLASMA"},
	}
	for _, n0 := range []int{2500, 4000, 5000, 10000} {
		b := blockFor(n0)
		n := scaleN(n0, scale, b)
		bcl, err := simCALU(m, workers, n, b, layout.BCL, "hybrid", 0.10, seed)
		if err != nil {
			return nil, err
		}
		tl, err := simCALU(m, workers, n, b, layout.TwoLevel, "hybrid", 0.10, seed)
		if err != nil {
			return nil, err
		}
		mkl, err := simGEPP(m, workers, n, b, seed)
		if err != nil {
			return nil, err
		}
		plasma, err := simIncPiv(m, workers, n, b, seed)
		if err != nil {
			return nil, err
		}
		gb, gt := effGflops(n, bcl.Makespan), effGflops(n, tl.Makespan)
		gm, gp := effGflops(n, mkl.Makespan), effGflops(n, plasma.Makespan)
		best := gb
		if gt > best {
			best = gt
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			gf(gb), gf(gt), gf(gm), gf(gp),
			pct(best/gm - 1), pct(best/gp - 1),
		})
	}
	t.Notes = note
	return t, nil
}

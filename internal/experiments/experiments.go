// Package experiments regenerates every table and figure of the
// paper's evaluation (section 5) plus the section 6 theorem validation
// and the section 7 exascale projection. Each experiment returns a
// Table whose rows mirror the series the paper plots; EXPERIMENTS.md
// records the measured values next to the paper's.
//
// Hardware experiments run on the discrete-event machine models of
// internal/sim (this container has 2 cores; the paper's machines had 16
// and 48 — see DESIGN.md's substitution table), while Table 1 and the
// correctness columns run the real goroutine runtime on actual data.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/dag"
	"repro/internal/layout"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries free-form commentary and ASCII timelines.
	Notes string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		b.WriteString(t.Notes)
		if !strings.HasSuffix(t.Notes, "\n") {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// experiment is one registered generator.
type experiment struct {
	id    string
	title string
	run   func(scale float64, seed int64) (*Table, error)
}

var registry []experiment

func register(id, title string, run func(scale float64, seed int64) (*Table, error)) {
	registry = append(registry, experiment{id: id, title: title, run: run})
}

// IDs returns the experiment ids in paper order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// Titles maps id to a human description.
func Titles() map[string]string {
	out := make(map[string]string, len(registry))
	for _, e := range registry {
		out[e.id] = e.title
	}
	return out
}

// Run regenerates one experiment. scale multiplies the paper's matrix
// sizes (1.0 = paper-sized; benches use smaller scales); seed drives
// the noise generators.
func Run(id string, scale float64, seed int64) (*Table, error) {
	if scale <= 0 {
		scale = 1
	}
	for _, e := range registry {
		if e.id == id {
			return e.run(scale, seed)
		}
	}
	known := IDs()
	sort.Strings(known)
	return nil, fmt.Errorf("experiments: unknown id %q (known: %s)", id, strings.Join(known, ", "))
}

// scaleN scales a paper matrix size and rounds it to a whole number of
// blocks (at least four, so every scheduling regime is exercised).
func scaleN(n int, scale float64, b int) int {
	s := int(math.Round(float64(n) * scale / float64(b)))
	if s < 4 {
		s = 4
	}
	return s * b
}

// blockFor picks the paper's block size for a matrix size: b=100 up to
// n=10000 and b=150 at n=15000 (which keeps the task counts tractable
// at the largest size, as the paper's own tuning would).
func blockFor(n int) int {
	if n >= 15000 {
		return 150
	}
	return 100
}

// policyFor instantiates a fresh policy by name.
func policyFor(name string, seed int64) sched.Policy {
	switch name {
	case "static":
		return sched.NewStatic()
	case "dynamic":
		return sched.NewDynamic()
	case "worksteal":
		return sched.NewWorkStealing(seed)
	default:
		return sched.NewHybrid()
	}
}

// nstaticFor converts a dynamic ratio into the static column count.
func nstaticFor(nb int, dratio float64) int {
	ns := int(math.Round(float64(nb) * (1 - dratio)))
	if ns < 0 {
		ns = 0
	}
	if ns > nb {
		ns = nb
	}
	return ns
}

// groupFor returns the paper's grouping parameter per layout: k=3 for
// BCL; for CM the dynamic task granularity of Algorithm 2 is one whole
// column ("do task S ... for all I"), which CM's contiguity expresses
// as an unbounded row group; 2l-BL cannot group at all.
func groupFor(kind layout.Kind) int {
	switch kind {
	case layout.BCL:
		return 3
	case layout.CM:
		return 1 << 16
	default:
		return 1
	}
}

// simCALU runs one simulated CALU factorization.
func simCALU(m sim.Machine, workers, n, b int, kind layout.Kind, policy string, dratio float64, seed int64) (sim.Result, error) {
	nb := (n + b - 1) / b
	var ns int
	switch policy {
	case "static", "worksteal":
		ns = nb
	case "dynamic":
		ns = 0
	default:
		ns = nstaticFor(nb, dratio)
	}
	return sim.FactorSim(n, n, b, ns, groupFor(kind), sim.Config{
		Machine: m, Workers: workers, Layout: kind,
		Policy: policyFor(policy, seed), Seed: seed,
	})
}

// simGEPP runs the MKL-style baseline on the simulator. MKL packs its
// BLAS operands internally, so its kernel efficiency does not suffer
// from the user's column-major storage — we charge it the ungrouped
// block-layout rates. Its structural handicap is what the paper
// identifies: the sequential panel factorization on the critical path
// of a fork-join schedule.
func simGEPP(m sim.Machine, workers, n, b int, seed int64) (sim.Result, error) {
	ph := sim.NewPhantomLayout(layout.BCL, n, n, b, layout.NewGrid(workers))
	g := dag.BuildGEPP(ph, dag.GEPPOptions{Lookahead: false})
	return sim.Run(g.Graph, sim.Config{
		Machine: m, Workers: workers, Layout: layout.BCL,
		Policy: sched.NewDynamic(), Seed: seed,
	})
}

// simIncPiv runs the PLASMA-style baseline on the simulator: tile
// layout under a *static pipeline* schedule, which is PLASMA 2.x's
// default runtime — tiles stay with their owners, so it does not pay
// migration costs; what it pays is the extra flops and lower kernel
// efficiency of the incremental-pivoting updates.
func simIncPiv(m sim.Machine, workers, n, b int, seed int64) (sim.Result, error) {
	ph := sim.NewPhantomLayout(layout.TwoLevel, n, n, b, layout.NewGrid(workers))
	g := dag.BuildIncPiv(ph)
	return sim.Run(g.Graph, sim.Config{
		Machine: m, Workers: workers, Layout: layout.TwoLevel,
		Policy: sched.NewStatic(), Seed: seed,
	})
}

// effGflops converts a makespan into effective Gflop/s using the
// canonical LU flop count 2n^3/3, the normalization the paper's figures
// use (so algorithms that perform extra flops, like incremental
// pivoting, are not credited for them).
func effGflops(n int, makespan float64) float64 {
	if makespan <= 0 {
		return 0
	}
	return (2.0 / 3.0) * float64(n) * float64(n) * float64(n) / makespan / 1e9
}

func gf(x float64) string  { return fmt.Sprintf("%.1f", x) }
func pct(x float64) string { return fmt.Sprintf("%+.1f%%", 100*x) }

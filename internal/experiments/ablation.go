package experiments

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/layout"
	"repro/internal/sched"
	"repro/internal/sim"
)

func init() {
	register("ablation", "Design-choice ablations: grouping, look-ahead, work stealing, chunk count",
		runAblation)
}

// runAblation quantifies the individual design choices the paper
// motivates but does not isolate: the k=3 grouped BLAS-3 updates
// (section 3), the look-ahead in the baseline's panel (section 2), the
// DFS-ordered shared queue versus randomized work stealing (section 8),
// and the tournament fan-out.
func runAblation(scale float64, seed int64) (*Table, error) {
	m := sim.AMDOpteron48()
	workers := 48
	n := scaleN(5000, scale, 100)
	b := 100
	nb := n / b
	t := &Table{
		Title:   fmt.Sprintf("AMD 48-core model, n=%d, b=%d (effective Gflop/s)", n, b),
		Columns: []string{"variant", "Gflop/s", "vs reference"},
	}
	ref, err := simCALU(m, workers, n, b, layout.BCL, "hybrid", 0.10, seed)
	if err != nil {
		return nil, err
	}
	refG := effGflops(n, ref.Makespan)
	add := func(label string, ms float64) {
		g := effGflops(n, ms)
		t.Rows = append(t.Rows, []string{label, gf(g), pct(g/refG - 1)})
	}
	add("CALU hybrid(10%), BCL, k=3 (reference)", ref.Makespan)

	// --- grouping off: k=1.
	ungrouped, err := sim.FactorSim(n, n, b, nstaticFor(nb, 0.10), 1, sim.Config{
		Machine: m, Workers: workers, Layout: layout.BCL,
		Policy: sched.NewHybrid(), Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	add("grouping disabled (k=1)", ungrouped.Makespan)

	// --- work stealing instead of the hybrid policy (section 8).
	ws, err := sim.FactorSim(n, n, b, nb, 3, sim.Config{
		Machine: m, Workers: workers, Layout: layout.BCL,
		Policy: sched.NewWorkStealing(seed), Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	add("randomized work stealing", ws.Makespan)

	// --- wider tournament fan-out: one leaf per block row.
	wide, err := sim.Run(dag.BuildCALU(
		sim.NewPhantomLayout(layout.BCL, n, n, b, layout.NewGrid(workers)),
		dag.CALUOptions{NstaticCols: nstaticFor(nb, 0.10), Group: 3, Chunks: workers, SimOnly: true},
	).Graph, sim.Config{
		Machine: m, Workers: workers, Layout: layout.BCL,
		Policy: sched.NewHybrid(), Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	add(fmt.Sprintf("tournament fan-out %d leaves", workers), wide.Makespan)

	// --- the baseline's missing look-ahead, isolated on the GEPP DAG.
	ph := sim.NewPhantomLayout(layout.CM, n, n, b, layout.NewGrid(workers))
	noLA, err := sim.Run(dag.BuildGEPP(ph, dag.GEPPOptions{}).Graph, sim.Config{
		Machine: m, Workers: workers, Layout: layout.CM, Policy: sched.NewDynamic(), Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	ph2 := sim.NewPhantomLayout(layout.CM, n, n, b, layout.NewGrid(workers))
	la, err := sim.Run(dag.BuildGEPP(ph2, dag.GEPPOptions{Lookahead: true}).Graph, sim.Config{
		Machine: m, Workers: workers, Layout: layout.CM, Policy: sched.NewDynamic(), Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	add("GEPP baseline, fork-join (no look-ahead)", noLA.Makespan)
	add("GEPP baseline with look-ahead", la.Makespan)

	t.Notes = "Grouping and the DFS-ordered hybrid queue are the load-bearing choices; work\n" +
		"stealing loses the critical path (section 8's argument); look-ahead alone does\n" +
		"not rescue the sequential-panel baseline."
	return t, nil
}

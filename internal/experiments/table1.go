package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/mat"
)

func init() {
	register("table1", "Design space: layout x scheduling, validated numerically (real execution)",
		runTable1)
}

// runTable1 exercises every cell of the paper's Table 1 with a real
// factorization on actual data (goroutine runtime, this machine) and
// reports the backward error of each — the coverage proof that all
// seven configurations are implemented and correct, not just modeled.
func runTable1(scale float64, seed int64) (*Table, error) {
	n := scaleN(1200, scale, 100)
	if n > 1200 {
		n = 1200 // keep the real-arithmetic run fast at scale >= 1
	}
	b := 50
	rng := rand.New(rand.NewSource(seed))
	a := mat.Random(n, n, rng)

	type cell struct {
		kind   layout.Kind
		sched  core.Scheduler
		dratio float64
		label  string
	}
	cells := []cell{
		{layout.BCL, core.ScheduleStatic, 0, "BCL / static"},
		{layout.BCL, core.ScheduleDynamic, 1, "BCL / dynamic"},
		{layout.BCL, core.ScheduleHybrid, 0.10, "BCL / static(10% dynamic)"},
		{layout.TwoLevel, core.ScheduleStatic, 0, "2l-BL / static"},
		{layout.TwoLevel, core.ScheduleDynamic, 1, "2l-BL / dynamic"},
		{layout.TwoLevel, core.ScheduleHybrid, 0.10, "2l-BL / static(10% dynamic)"},
		{layout.CM, core.ScheduleDynamic, 1, "CM / dynamic"},
	}
	t := &Table{
		Title:   fmt.Sprintf("all Table 1 cells on a real %dx%d system (b=%d, 4 workers)", n, n, b),
		Columns: []string{"configuration", "tasks", "static", "dynamic", "residual ||PA-LU||", "ok"},
	}
	for _, c := range cells {
		f, err := core.Factor(a, core.Options{
			Layout: c.kind, Block: b, Workers: 4,
			Scheduler: c.sched, DynamicRatio: c.dratio,
		})
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", c.label, err)
		}
		r := core.Residual(a, f)
		ok := "yes"
		if r > 1e-9 {
			ok = "NO"
		}
		t.Rows = append(t.Rows, []string{
			c.label,
			fmt.Sprintf("%d", f.Stats.Total),
			fmt.Sprintf("%d", f.Stats.StaticTask),
			fmt.Sprintf("%d", f.Stats.DynTask),
			fmt.Sprintf("%.2e", r),
			ok,
		})
	}
	t.Notes = "Every cell of the paper's design space factorizes the same matrix and is verified\n" +
		"against PA = LU. The hybrid rows show the Nstatic split of Algorithm 1."
	return t, nil
}

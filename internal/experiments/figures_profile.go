package experiments

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/sim"
	"repro/internal/trace"
)

func init() {
	register("fig1", "Profile of CALU with static scheduling, 16 cores of the AMD machine",
		func(scale float64, seed int64) (*Table, error) {
			return profileExperiment(profileConfig{
				policy: "static", dratio: 0, kind: layout.TwoLevel,
				n: 2500, workers: 16, scale: scale, seed: seed,
				note: "Paper: even the statically optimized code shows pockets of idle time (white " +
					"space) with no regular pattern - transient performance variation that static " +
					"tuning cannot predict.",
			})
		})
	register("fig4", "First steps of a 5000x5000 factorization under static(20% dynamic)",
		func(scale float64, seed int64) (*Table, error) {
			return profileExperiment(profileConfig{
				policy: "hybrid", dratio: 0.20, kind: layout.BCL,
				n: 5000, workers: 16, scale: scale, seed: seed, firstSteps: true,
				note: "Paper: threads that finish the panel factorization early execute tasks from " +
					"the dynamic section instead of idling - almost no idle time remains.",
			})
		})
	register("fig14", "Profile of CALU dynamic with column-major layout, AMD machine",
		func(scale float64, seed int64) (*Table, error) {
			return profileExperiment(profileConfig{
				policy: "dynamic", dratio: 1, kind: layout.CM,
				n: 2500, workers: 16, scale: scale, seed: seed,
				note: "Paper: 90% of threads become idle after only ~60% of the total factorization " +
					"time, versus 80-90% for the other variants.",
			})
		})
	register("fig15", "Profile of CALU static(10% dynamic) with 2l-BL, AMD machine, 16 cores",
		func(scale float64, seed int64) (*Table, error) {
			return profileExperiment(profileConfig{
				policy: "hybrid", dratio: 0.10, kind: layout.TwoLevel,
				n: 2500, workers: 16, scale: scale, seed: seed,
				note: "Paper: a small percentage of dynamic work keeps the cores busy and reduces " +
					"the idle time drastically compared with Figure 1.",
			})
		})
}

type profileConfig struct {
	policy     string
	dratio     float64
	kind       layout.Kind
	n, workers int
	scale      float64
	seed       int64
	firstSteps bool
	note       string
}

// profileExperiment renders a timeline figure (Figures 1, 4, 14, 15) as
// an ASCII Gantt chart plus the idle statistics the paper reads off it.
func profileExperiment(cfg profileConfig) (*Table, error) {
	b := blockFor(cfg.n)
	n := scaleN(cfg.n, cfg.scale, b)
	m := sim.AMDOpteron48()
	tr := trace.New(cfg.workers)
	nb := (n + b - 1) / b
	var ns int
	switch cfg.policy {
	case "static":
		ns = nb
	case "dynamic":
		ns = 0
	default:
		ns = nstaticFor(nb, cfg.dratio)
	}
	res, err := sim.FactorSim(n, n, b, ns, groupFor(cfg.kind), sim.Config{
		Machine: m, Workers: cfg.workers, Layout: cfg.kind,
		Policy: policyFor(cfg.policy, cfg.seed), Trace: tr, Seed: cfg.seed,
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("%s %s on %s, n=%d, %d workers", cfg.policy, cfg.kind, m.Name, n, cfg.workers),
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"makespan (s)", fmt.Sprintf("%.4f", res.Makespan)},
			{"Gflop/s (effective)", gf(effGflops(n, res.Makespan))},
			{"idle fraction", fmt.Sprintf("%.1f%%", 100*tr.IdleFraction())},
			{"90% of workers permanently idle at", fmt.Sprintf("%.0f%% of makespan", 100*tr.PermanentIdlePoint(0.9))},
			{"occupancy stays below 25% after", fmt.Sprintf("%.0f%% of makespan", 100*tr.LowOccupancyPoint(0.25))},
			{"dynamic dequeues", fmt.Sprintf("%d", res.Counters.DequeueDynamic)},
			{"migrated tasks", fmt.Sprintf("%d", res.Counters.Mismatches)},
		},
	}
	width := 150
	if cfg.firstSteps {
		// Figure 4 zooms on the first steps: widen the early region by
		// rendering only the first quarter of the timeline.
		cut := res.Makespan / 4
		sub := trace.New(cfg.workers)
		for w := 0; w < cfg.workers; w++ {
			for _, s := range tr.Spans[w] {
				if s.Start < cut {
					end := s.End
					if end > cut {
						end = cut
					}
					sub.Add(w, s.TaskID, s.Label, s.Start, end)
				}
			}
		}
		tr = sub
	}
	t.Notes = "P=panel preprocessing  F=pivot-block factor  L/U=panel factors  S=update  .=idle\n" +
		tr.Gantt(width) + cfg.note
	return t, nil
}

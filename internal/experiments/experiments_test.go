package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// Small scale keeps the full suite fast; shape assertions use the same
// generators the CLI runs at full scale.
const testScale = 0.3

func runOK(t *testing.T, id string) *Table {
	t.Helper()
	tbl, err := Run(id, testScale, 42)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatalf("%s: empty table", id)
	}
	if tbl.String() == "" {
		t.Fatalf("%s: empty rendering", id)
	}
	return tbl
}

func TestIDsCoverEveryPaperArtifact(t *testing.T) {
	want := []string{"fig1", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"table1", "thm1", "exascale", "ablation"}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if len(Titles()) != len(IDs()) {
		t.Error("titles out of sync with ids")
	}
}

func TestUnknownID(t *testing.T) {
	if _, err := Run("nope", 1, 1); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestFig6ShapeIntelStaticWorst(t *testing.T) {
	tbl := runOK(t, "fig6")
	// At the largest size the static column must trail the hybrid
	// columns (the paper's core Intel finding); the smaller scaled sizes
	// are panel-bound and too close to call.
	for _, row := range tbl.Rows[len(tbl.Rows)-1:] {
		static := atofOr(t, row[1])
		h10 := atofOr(t, row[2])
		if static >= h10 {
			t.Errorf("n=%s: static %g >= hybrid10 %g", row[0], static, h10)
		}
	}
}

func TestFig7ShapeAMDHybridWins(t *testing.T) {
	// Larger scale: the paper's NUMA-locality regime needs enough
	// trailing work per step, which tiny matrices on 48 cores lack.
	tbl, err := Run("fig7", 0.6, 42)
	if err != nil {
		t.Fatal(err)
	}
	// On the NUMA machine hybrid(10%) must beat fully dynamic for the
	// larger sizes (locality wins).
	last := tbl.Rows[len(tbl.Rows)-1]
	h10 := atofOr(t, last[2])
	dyn := atofOr(t, last[6])
	if h10 <= dyn {
		t.Errorf("largest n: hybrid10 %g <= dynamic %g", h10, dyn)
	}
}

func TestFig10ShapeDynamicCollapses(t *testing.T) {
	tbl := runOK(t, "fig10")
	last := tbl.Rows[len(tbl.Rows)-1]
	h10 := atofOr(t, last[2])
	dyn := atofOr(t, last[6])
	if h10 < 1.2*dyn {
		t.Errorf("2l-BL dynamic should collapse on NUMA: h10 %g vs dynamic %g", h10, dyn)
	}
}

func TestFig14ShapeEarlyIdle(t *testing.T) {
	tbl := runOK(t, "fig14")
	found := false
	for _, row := range tbl.Rows {
		if strings.Contains(row[0], "permanently idle") {
			found = true
			if !strings.Contains(row[1], "%") {
				t.Errorf("bad idle point cell %q", row[1])
			}
		}
	}
	if !found {
		t.Fatal("missing permanent-idle metric")
	}
	if !strings.Contains(tbl.Notes, "w00") {
		t.Fatal("missing gantt rendering")
	}
}

func TestFig15LessIdleThanFig1(t *testing.T) {
	f1 := runOK(t, "fig1")
	f15 := runOK(t, "fig15")
	idle := func(tbl *Table) float64 {
		for _, row := range tbl.Rows {
			if row[0] == "idle fraction" {
				return atofOr(t, strings.TrimSuffix(row[1], "%"))
			}
		}
		t.Fatal("no idle fraction row")
		return 0
	}
	if idle(f15) >= idle(f1) {
		t.Errorf("hybrid(10%%) idle %g%% not below static idle %g%%", idle(f15), idle(f1))
	}
}

func TestFig16CALUBeatsLibraries(t *testing.T) {
	tbl := runOK(t, "fig16")
	for _, row := range tbl.Rows {
		if !strings.HasPrefix(row[5], "+") {
			t.Errorf("n=%s: CALU does not beat MKL-like (%s)", row[0], row[5])
		}
	}
	// PLASMA-like must be beaten at the largest size (paper: 20-30%).
	last := tbl.Rows[len(tbl.Rows)-1]
	if !strings.HasPrefix(last[6], "+") {
		t.Errorf("largest n: CALU does not beat PLASMA-like (%s)", last[6])
	}
}

func TestFig17AMDBigMKLGap(t *testing.T) {
	tbl := runOK(t, "fig17")
	last := tbl.Rows[len(tbl.Rows)-1]
	gap := atofOr(t, strings.TrimSuffix(strings.TrimPrefix(last[5], "+"), "%"))
	if gap < 40 {
		t.Errorf("AMD MKL gap %g%% should be large (paper: up to 110%%)", gap)
	}
}

func TestTable1AllCellsPass(t *testing.T) {
	tbl := runOK(t, "table1")
	if len(tbl.Rows) != 7 {
		t.Fatalf("expected 7 design-space cells, got %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[len(row)-1] != "yes" {
			t.Errorf("cell %s failed residual check", row[0])
		}
	}
}

func TestTheorem1BoundHolds(t *testing.T) {
	// Scale 0.8 (n=4000): at tiny sizes the dratio grid is too coarse
	// for the single-seed optimum to be meaningful.
	tbl, err := Run("thm1", 0.8, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[len(row)-1] != "yes" {
			t.Errorf("bound violated for %s", row[0])
		}
	}
}

func TestExascaleMonotone(t *testing.T) {
	tbl := runOK(t, "exascale")
	prev := -1.0
	for _, row := range tbl.Rows {
		v := atofOr(t, strings.TrimSuffix(row[3], "%"))
		if v < prev-1e-9 {
			t.Errorf("min dynamic share not monotone: %v", tbl.Rows)
		}
		prev = v
	}
}

func TestAblationRuns(t *testing.T) {
	// Full scale: grouping pays off once per-step update work dominates.
	tbl, err := Run("ablation", 1.0, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 5 {
		t.Fatalf("ablation too small: %d rows", len(tbl.Rows))
	}
	// Grouping must matter on BCL (reference beats k=1).
	if !strings.HasPrefix(tbl.Rows[1][2], "-") {
		t.Errorf("ungrouped variant should be slower: %v", tbl.Rows[1])
	}
}

func TestProfilesRenderGantt(t *testing.T) {
	for _, id := range []string{"fig1", "fig4"} {
		tbl := runOK(t, id)
		if !strings.Contains(tbl.Notes, "|") {
			t.Errorf("%s: no gantt in notes", id)
		}
	}
}

func TestSweepsHaveAllColumns(t *testing.T) {
	for _, id := range []string{"fig6", "fig7", "fig9", "fig10"} {
		tbl := runOK(t, id)
		if len(tbl.Columns) != 7 {
			t.Errorf("%s: %d columns want 7", id, len(tbl.Columns))
		}
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Columns) {
				t.Errorf("%s: ragged row %v", id, row)
			}
		}
	}
}

func TestImprovementTablesHaveBothCoreCounts(t *testing.T) {
	for _, id := range []string{"fig8", "fig11"} {
		tbl := runOK(t, id)
		cores := map[string]bool{}
		for _, row := range tbl.Rows {
			cores[row[0]] = true
		}
		if !cores["24"] || !cores["48"] {
			t.Errorf("%s: missing core counts %v", id, cores)
		}
	}
}

func atofOr(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

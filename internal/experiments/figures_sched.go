package experiments

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/sim"
)

func init() {
	register("fig6", "CALU static/dynamic sweep, Intel 16-core, block cyclic layout (BCL)",
		func(scale float64, seed int64) (*Table, error) {
			return dratioSweep(sim.IntelXeon16(), 16, []int{2500, 5000, 10000}, layout.BCL, scale, seed,
				"Paper: hybrid beats both pure strategies; static is the worst on this machine "+
					"(static(10% dynamic) ~8.2% over static, ~1.4% over dynamic at n=5000); "+
					"the exact dynamic percentage matters little.")
		})
	register("fig7", "CALU static/dynamic sweep, AMD 48-core, block cyclic layout (BCL)",
		func(scale float64, seed int64) (*Table, error) {
			return dratioSweep(sim.AMDOpteron48(), 48, []int{2500, 5000, 10000}, layout.BCL, scale, seed,
				"Paper: on the NUMA machine locality matters; the best performance comes from "+
					"static plus a small (10-20%) dynamic share.")
		})
	register("fig8", "Improvement of hybrid over static & dynamic, AMD 24/48 cores, BCL",
		func(scale float64, seed int64) (*Table, error) {
			return improvement(layout.BCL, scale, seed,
				"Paper: best improvement at M=N=4000 on 48 cores (+30.3% vs static, +10.2% vs dynamic); "+
					"n=10000: +6.9% vs static, +8.4% vs dynamic; on 24 cores static(20%) is slightly "+
					"faster than static(10%).")
		})
	register("fig9", "CALU static/dynamic sweep, Intel 16-core, two-level block layout (2l-BL)",
		func(scale float64, seed int64) (*Table, error) {
			return dratioSweep(sim.IntelXeon16(), 16, []int{2500, 4000, 5000, 10000}, layout.TwoLevel, scale, seed,
				"Paper: same behaviour as BCL on this machine; static least efficient; best case "+
					"static(10% dynamic) at n=4000 is +10.6% over static, +1.7% over dynamic.")
		})
	register("fig10", "CALU static/dynamic sweep, AMD 48-core, two-level block layout (2l-BL)",
		func(scale float64, seed int64) (*Table, error) {
			return dratioSweep(sim.AMDOpteron48(), 48, []int{2500, 4000, 5000, 10000}, layout.TwoLevel, scale, seed,
				"Paper: fully dynamic is the least efficient by far — tiles are not reused across "+
					"sockets, the dequeue overhead grows with the block count, and no grouping is "+
					"possible; increasing the dynamic share does not help.")
		})
	register("fig11", "Improvement of hybrid over static & dynamic, AMD 24/48 cores, 2l-BL",
		func(scale float64, seed int64) (*Table, error) {
			return improvement(layout.TwoLevel, scale, seed,
				"Paper: best case static(10% dynamic) is +5.9% over static and +64.9% over dynamic "+
					"on 48 cores; on 24 cores up to +10% / +16%.")
		})
	register("fig12", "Impact of data layout and scheduling, Intel 16-core summary",
		func(scale float64, seed int64) (*Table, error) {
			return layoutSummary(sim.IntelXeon16(), 16, scale, seed,
				"Paper: CALU static(10% dynamic) with BCL reaches 67.4 Gflop/s = 79% of peak at "+
					"n=15000; 2l-BL is ahead for small n, BCL wins as n grows (grouped BLAS-3).")
		})
	register("fig13", "Impact of data layout and scheduling, AMD 48-core summary",
		func(scale float64, seed int64) (*Table, error) {
			return layoutSummary(sim.AMDOpteron48(), 48, scale, seed,
				"Paper: CALU static(10% dynamic) with BCL reaches 264.1 Gflop/s = 49% of peak at "+
					"n=15000; fully dynamic scheduling is highly inefficient on this NUMA machine; "+
					"dynamic on column-major storage is the worst configuration.")
		})
}

var sweepRatios = []struct {
	name   string
	policy string
	dratio float64
}{
	{"static", "static", 0},
	{"static(10% dyn)", "hybrid", 0.10},
	{"static(25% dyn)", "hybrid", 0.25},
	{"static(50% dyn)", "hybrid", 0.50},
	{"static(75% dyn)", "hybrid", 0.75},
	{"dynamic", "dynamic", 1},
}

// dratioSweep generates Figures 6, 7, 9 and 10: Gflop/s as the dynamic
// percentage varies from 0 (fully static) to 100 (fully dynamic).
func dratioSweep(m sim.Machine, workers int, sizes []int, kind layout.Kind, scale float64, seed int64, note string) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("%s, %d workers, %s layout (Gflop/s)", m.Name, workers, kind),
		Columns: []string{"n"},
	}
	for _, s := range sweepRatios {
		t.Columns = append(t.Columns, s.name)
	}
	for _, n0 := range sizes {
		b := blockFor(n0)
		n := scaleN(n0, scale, b)
		row := []string{fmt.Sprintf("%d", n)}
		for _, s := range sweepRatios {
			res, err := simCALU(m, workers, n, b, kind, s.policy, s.dratio, seed)
			if err != nil {
				return nil, err
			}
			row = append(row, gf(effGflops(n, res.Makespan)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = note
	return t, nil
}

// improvement generates Figures 8 and 11: the percentage improvement of
// static(10% dynamic) and static(20% dynamic) over fully static and
// fully dynamic scheduling, on 24 and on 48 cores of the AMD machine.
func improvement(kind layout.Kind, scale float64, seed int64, note string) (*Table, error) {
	m := sim.AMDOpteron48()
	t := &Table{
		Title: fmt.Sprintf("hybrid improvement over pure strategies, %s layout", kind),
		Columns: []string{"cores", "n",
			"h10 vs static", "h10 vs dynamic", "h20 vs static", "h20 vs dynamic"},
	}
	for _, workers := range []int{24, 48} {
		for _, n0 := range []int{2500, 4000, 5000, 10000} {
			b := blockFor(n0)
			n := scaleN(n0, scale, b)
			st, err := simCALU(m, workers, n, b, kind, "static", 0, seed)
			if err != nil {
				return nil, err
			}
			dy, err := simCALU(m, workers, n, b, kind, "dynamic", 1, seed)
			if err != nil {
				return nil, err
			}
			h10, err := simCALU(m, workers, n, b, kind, "hybrid", 0.10, seed)
			if err != nil {
				return nil, err
			}
			h20, err := simCALU(m, workers, n, b, kind, "hybrid", 0.20, seed)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", workers), fmt.Sprintf("%d", n),
				pct(st.Makespan/h10.Makespan - 1), pct(dy.Makespan/h10.Makespan - 1),
				pct(st.Makespan/h20.Makespan - 1), pct(dy.Makespan/h20.Makespan - 1),
			})
		}
	}
	t.Notes = note
	return t, nil
}

// layoutSummary generates Figures 12 and 13: every layout x scheduling
// combination of Table 1 across matrix sizes.
func layoutSummary(m sim.Machine, workers int, scale float64, seed int64, note string) (*Table, error) {
	combos := []struct {
		label  string
		kind   layout.Kind
		policy string
		dratio float64
	}{
		{"BCL static", layout.BCL, "static", 0},
		{"BCL h10", layout.BCL, "hybrid", 0.10},
		{"BCL dynamic", layout.BCL, "dynamic", 1},
		{"2l-BL static", layout.TwoLevel, "static", 0},
		{"2l-BL h10", layout.TwoLevel, "hybrid", 0.10},
		{"2l-BL dynamic", layout.TwoLevel, "dynamic", 1},
		{"CM dynamic", layout.CM, "dynamic", 1},
	}
	t := &Table{
		Title:   fmt.Sprintf("%s, %d workers: layout x scheduling (Gflop/s)", m.Name, workers),
		Columns: []string{"n"},
	}
	for _, c := range combos {
		t.Columns = append(t.Columns, c.label)
	}
	peak := m.CoreGflops * float64(workers)
	best := 0.0
	for _, n0 := range []int{2500, 5000, 10000, 15000} {
		b := blockFor(n0)
		n := scaleN(n0, scale, b)
		row := []string{fmt.Sprintf("%d", n)}
		for _, c := range combos {
			res, err := simCALU(m, workers, n, b, c.kind, c.policy, c.dratio, seed)
			if err != nil {
				return nil, err
			}
			g := effGflops(n, res.Makespan)
			row = append(row, gf(g))
			if g > best {
				best = g
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = fmt.Sprintf("best %.1f Gflop/s = %.0f%% of the %.1f Gflop/s peak\n%s",
		best, 100*best/peak, peak, note)
	return t, nil
}

package experiments

import (
	"fmt"
	"math"

	"repro/internal/dag"
	"repro/internal/layout"
	"repro/internal/model"
	"repro/internal/noise"
	"repro/internal/sim"
)

func init() {
	register("thm1", "Theorem 1 validation: measured best static fraction vs the analytic bound",
		runTheorem1)
	register("exascale", "Section 7 projection: minimum dynamic share vs core count under noise amplification",
		runExascale)
}

// runTheorem1 validates the section 6 analysis empirically: for several
// noise intensities it (a) measures the per-core excess work delta_i of
// a static run, (b) evaluates the theorem's bound on the static
// fraction, and (c) sweeps the dynamic ratio to find the empirically
// best configuration — whose static fraction must not exceed the bound.
func runTheorem1(scale float64, seed int64) (*Table, error) {
	n := scaleN(5000, scale, 100)
	b := 100
	nb := n / b
	workers := 48
	t := &Table{
		Title:   fmt.Sprintf("n=%d, b=%d, %d workers, AMD model, BCL", n, b, workers),
		Columns: []string{"noise (rate/s x burst)", "deltaMax(s)", "deltaAvg(s)", "bound (Tp=T1/p)", "bound (+Tcp)", "best measured fs", "bound holds"},
	}
	// T_criticalPath of this graph under the machine's kernel model (the
	// section 6 extension: the panel chain cannot be parallelized away).
	tcp := sim.CriticalPathSeconds(dag.BuildCALU(
		sim.NewPhantomLayout(layout.BCL, n, n, b, layout.NewGrid(workers)),
		dag.CALUOptions{NstaticCols: nb, Group: 3, SimOnly: true},
	).Graph, sim.AMDOpteron48(), layout.BCL)
	intensities := []struct {
		label string
		gen   noise.Generator
	}{
		{"quiet", noise.None{}},
		{"40/s x 120us", noise.NewPoisson(40, 120e-6, seed)},
		{"100/s x 300us", noise.NewPoisson(100, 300e-6, seed)},
		{"200/s x 800us", noise.NewPoisson(200, 800e-6, seed)},
	}
	for _, in := range intensities {
		m := sim.AMDOpteron48().WithNoise(in.gen)
		// (a) static run: measure per-core excess work.
		st, err := sim.FactorSim(n, n, b, nb, 3, sim.Config{
			Machine: m, Workers: workers, Layout: layout.BCL,
			Policy: policyFor("static", seed), Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		// delta_i is the excess work forced on core i: exactly the
		// injected interference, measured per worker.
		dmax, davg := model.FitDeltas(st.PerWorkerNoise)
		simple := model.Params{
			T1:       st.BusyTime,
			P:        workers,
			DeltaMax: dmax,
			DeltaAvg: davg,
		}
		extended := simple
		extended.TCriticalPath = tcp
		bound := extended.MaxStaticFraction()
		// (c) sweep the dynamic ratio for the best hybrid.
		bestFs, bestMs := 1.0, st.Makespan
		for _, dr := range []float64{0.05, 0.10, 0.15, 0.20, 0.30, 0.50, 0.75, 1.0} {
			res, err := sim.FactorSim(n, n, b, nstaticFor(nb, dr), 3, sim.Config{
				Machine: m, Workers: workers, Layout: layout.BCL,
				Policy: policyFor("hybrid", seed), Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			if res.Makespan < bestMs {
				bestMs = res.Makespan
				bestFs = 1 - dr
			}
		}
		holds := "yes"
		// The bound is an upper limit on feasible static fractions; the
		// empirically optimal fraction may be lower (other overheads) but
		// exceeding it by a margin would falsify the model.
		if bestFs > bound+0.06 {
			holds = "NO"
		}
		t.Rows = append(t.Rows, []string{
			in.label,
			fmt.Sprintf("%.4f", dmax), fmt.Sprintf("%.4f", davg),
			fmt.Sprintf("%.3f", simple.MaxStaticFraction()),
			fmt.Sprintf("%.3f", bound), fmt.Sprintf("%.3f", bestFs),
			holds,
		})
	}
	t.Notes = "Theorem 1: fs <= 1 - (deltaMax-deltaAvg)/Tp, with the section 6 extension adding\n" +
		"T_criticalPath to the denominator. As noise grows the bound falls - more work\n" +
		"must be scheduled dynamically - and the measured best static fraction obeys it."
	return t, nil
}

// runExascale reproduces section 7's projection: holding the work per
// core constant while the delta spread is amplified with machine size
// (noise amplification), the minimum dynamic percentage must rise.
func runExascale(scale float64, seed int64) (*Table, error) {
	// Base the projection on a measured 48-core static run.
	n := scaleN(5000, scale, 100)
	b := 100
	st, err := sim.FactorSim(n, n, b, n/b, 3, sim.Config{
		Machine: sim.AMDOpteron48(), Workers: 48, Layout: layout.BCL,
		Policy: policyFor("static", seed), Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	dmax, davg := model.FitDeltas(st.PerWorkerBusy)
	base := model.Params{T1: st.BusyTime, P: 48, DeltaMax: math.Max(dmax, 1e-4), DeltaAvg: davg}
	cores := []int{48, 192, 768, 3072, 12288, 49152}
	proj := model.ProjectExascale(base, cores, func(p int) float64 {
		// Noise amplification grows with the square root of the machine
		// size, the conservative end of the projections in Hoefler et
		// al.'s noise-simulation study the paper cites.
		return math.Sqrt(float64(p) / 48.0)
	})
	t := &Table{
		Title:   "projected minimum dynamic share (weak scaling from the measured 48-core run)",
		Columns: []string{"cores", "noise amplification", "max static fraction", "min dynamic %"},
	}
	for _, p := range proj {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Cores),
			fmt.Sprintf("%.1fx", p.NoiseAmp),
			fmt.Sprintf("%.3f", p.MaxStaticFrac),
			fmt.Sprintf("%.1f%%", p.MinDynamicPct),
		})
	}
	t.Notes = "Paper section 7: 'we project that the lower-bounds for percentage dynamic for\n" +
		"numerical linear algebra routines will have to increase for use on future\n" +
		"high-performance clusters.'"
	return t, nil
}

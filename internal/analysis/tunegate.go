package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// TuneGate enforces the kernel package's autotuning contract: the GEMM
// blocking parameters, micro-kernel selection and dispatch crossovers
// (the variables marked //hsd:profile-state in internal/kernel) are
// mutated exactly once, by the autotuner, behind the ensureTuned
// sync.Once gate. Every exported entry point whose call graph can read
// that state before tuning completes would race the tuner and, worse,
// run half-tuned (stale blocking with a retuned micro-kernel). The
// analyzer therefore requires every exported function that reaches
// profile state to call ensureTuned() unconditionally (a top-level
// statement of its body) before the first reaching read or call.
//
// Calls to functions that gate themselves (their body leads with
// ensureTuned) are safe without a local gate — the callee establishes
// the invariant before its first read, which is why e.g. the blocked
// TRSMs need no gate of their own: they only reach profile state
// through Gemm.
var TuneGate = &Analyzer{
	Name: "tunegate",
	Doc:  "exported kernel entry points must call ensureTuned() before reaching tuning-profile state",
	Run:  runTuneGate,
}

const (
	profileStateDirective = "hsd:profile-state"
	tuneGateFunc          = "ensureTuned"
)

// tgEventKind enumerates what a statement walk can observe.
type tgEventKind int

const (
	tgRead tgEventKind = iota // read or write of a profile-state var
	tgCall                    // call of a package-level function
)

type tgEvent struct {
	kind  tgEventKind
	pos   token.Pos
	obj   types.Object // the var read (tgRead) or function called (tgCall)
	gated bool         // had ensureTuned() already run unconditionally?
}

// tgFunc is the per-function summary the fixpoint iterates over.
type tgFunc struct {
	decl   *ast.FuncDecl
	events []tgEvent
	// exposed: the function can reach a profile-state read before any
	// unconditional ensureTuned() call of its own. why/whyPos explain
	// the first exposure for the report.
	exposed bool
	why     string
	whyPos  token.Pos
}

func runTuneGate(prog *Program, r *Reporter) {
	for _, pkg := range prog.Packages {
		runTuneGatePkg(prog, pkg, r)
	}
}

func runTuneGatePkg(prog *Program, pkg *Package, r *Reporter) {
	state := profileStateVars(pkg)
	if len(state) == 0 {
		return
	}
	gate, _ := pkg.Types.Scope().Lookup(tuneGateFunc).(*types.Func)
	if gate == nil {
		// Marked state without a gate is a configuration error: report
		// it at each marker rather than silently checking nothing.
		for obj, pos := range state {
			r.Reportf(pos, "%s is marked %s but package %s defines no %s gate",
				obj.Name(), profileStateDirective, pkg.Types.Name(), tuneGateFunc)
		}
		return
	}

	// Summarize every function with a body, from the shared index.
	funcs := map[types.Object]*tgFunc{}
	for obj, fd := range pkg.FuncDecls() {
		if obj == gate {
			continue
		}
		funcs[obj] = summarizeTuneGate(pkg, fd, gate, state)
	}

	// Direct exposure: a profile read before the gate.
	for _, fn := range funcs {
		for _, ev := range fn.events {
			if ev.kind == tgRead && !ev.gated {
				fn.exposed = true
				fn.why = fmt.Sprintf("reads %s", ev.obj.Name())
				fn.whyPos = ev.pos
				break
			}
		}
	}
	// Transitive exposure: an ungated call to an exposed function.
	for changed := true; changed; {
		changed = false
		for _, fn := range funcs {
			if fn.exposed {
				continue
			}
			for _, ev := range fn.events {
				if ev.kind != tgCall || ev.gated {
					continue
				}
				callee, ok := funcs[ev.obj]
				if ok && callee.exposed {
					fn.exposed = true
					fn.why = fmt.Sprintf("calls %s, which %s", ev.obj.Name(), callee.why)
					fn.whyPos = ev.pos
					changed = true
					break
				}
			}
		}
	}

	for obj, fn := range funcs {
		if fn.exposed && obj.Exported() {
			r.Reportf(fn.decl.Name.Pos(),
				"exported function %s %s at %s without an unconditional %s() call first",
				obj.Name(), fn.why, prog.Fset.Position(fn.whyPos), tuneGateFunc)
		}
	}
}

// profileStateVars collects the package-level variables marked
// //hsd:profile-state, either on the var declaration's doc comment
// (covering every spec in the block) or on an individual spec's doc or
// trailing comment.
func profileStateVars(pkg *Package) map[types.Object]token.Pos {
	state := map[types.Object]token.Pos{}
	mark := func(spec *ast.ValueSpec) {
		for _, name := range spec.Names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				state[obj] = name.Pos()
			}
		}
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			declMarked := hasDirective(gd.Doc, profileStateDirective)
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				if declMarked || hasDirective(vs.Doc, profileStateDirective) || hasDirective(vs.Comment, profileStateDirective) {
					mark(vs)
				}
			}
		}
	}
	return state
}

// summarizeTuneGate walks fd's body in source order, recording profile
// reads and package-level calls together with whether an unconditional
// ensureTuned() call preceded them. Only a call that is itself a
// top-level statement of the body counts as the gate: a conditional
// gate (inside an if, loop or closure) does not gate every path.
func summarizeTuneGate(pkg *Package, fd *ast.FuncDecl, gate *types.Func, state map[types.Object]token.Pos) *tgFunc {
	fn := &tgFunc{decl: fd}
	gated := false
	for _, stmt := range fd.Body.List {
		if es, ok := stmt.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok && funcObj(pkg.Info, call) == gate {
				gated = true
				continue
			}
		}
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if obj := pkg.Info.Uses[n]; obj != nil {
					if _, ok := state[obj]; ok {
						fn.events = append(fn.events, tgEvent{kind: tgRead, pos: n.Pos(), obj: obj, gated: gated})
					}
				}
			case *ast.CallExpr:
				if callee := funcObj(pkg.Info, n); callee != nil && callee.Pkg() == pkg.Types {
					fn.events = append(fn.events, tgEvent{kind: tgCall, pos: n.Pos(), obj: callee, gated: gated})
				}
			}
			return true
		})
	}
	return fn
}

package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces context threading. Two rules:
//
//  1. A function that takes a context.Context must thread it (or a
//     context derived from it) to every ctx-accepting callee. Passing a
//     context that is not derived from the parameter severs
//     cancellation: the serving tier's deadline stops propagating and a
//     cancelled request keeps burning factorization time.
//  2. context.Background() / context.TODO() may not appear in call
//     position outside package main. Fresh roots belong at the program
//     edge; inner layers that genuinely need one (compat wrappers,
//     fire-and-forget probes) say so with //hsd:allow ctxflow <why>.
//
// Derivation is computed flow-sensitively over the CFG: an object
// becomes derived when it is assigned from an expression mentioning a
// derived object (ctx2, cancel := context.WithTimeout(ctx, d) marks
// ctx2), so a rebind after the call site doesn't count.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "ctx-taking functions must thread their ctx; no fresh Background/TODO outside main",
	Flow: true,
	Run:  runCtxFlow,
}

// derivedSet is the dataflow fact: objects derived from the function's
// context parameter.
type derivedSet map[types.Object]bool

type derivedLattice struct{}

func (derivedLattice) Bottom() derivedSet { return derivedSet{} }
func (derivedLattice) Join(a, b derivedSet) derivedSet {
	out := make(derivedSet, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}
func (derivedLattice) Equal(a, b derivedSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
func (derivedLattice) Clone(a derivedSet) derivedSet {
	out := make(derivedSet, len(a))
	for k := range a {
		out[k] = true
	}
	return out
}

func runCtxFlow(prog *Program, r *Reporter) {
	for _, pkg := range prog.Packages {
		isMain := pkg.Types.Name() == "main"
		pkg.eachFuncDecl(func(fd *ast.FuncDecl) {
			checkCtxFlowFunc(prog, pkg, fd, isMain, r)
		})
	}
}

// ctxParamObj returns the object of fd's first context.Context
// parameter, or nil.
func ctxParamObj(info *types.Info, fd *ast.FuncDecl) types.Object {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

// isFreshCtxCall matches context.Background() / context.TODO(),
// returning the function name.
func isFreshCtxCall(info *types.Info, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	f := funcObj(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "context" {
		return "", false
	}
	if f.Name() == "Background" || f.Name() == "TODO" {
		return f.Name(), true
	}
	return "", false
}

func checkCtxFlowFunc(prog *Program, pkg *Package, fd *ast.FuncDecl, isMain bool, r *Reporter) {
	ctxParam := ctxParamObj(pkg.Info, fd)
	if ctxParam == nil && isMain {
		return
	}

	lat := derivedLattice{}
	tr := func(stmt ast.Stmt, in derivedSet) derivedSet {
		markDerived(pkg.Info, stmt, in)
		return in
	}

	var ins map[*Block]derivedSet
	g := prog.CFGOf(fd)
	if ctxParam != nil {
		entry := derivedSet{ctxParam: true}
		ins = ForwardSolve(g, lat, tr, entry)
	}

	checkCall := func(call *ast.CallExpr, derived derivedSet) {
		sig := calleeSignature(pkg.Info, call)
		for i, arg := range call.Args {
			if name, ok := isFreshCtxCall(pkg.Info, arg); ok {
				if isMain {
					continue
				}
				if ctxParam != nil {
					r.Reportf(arg.Pos(), "context.%s() passed to a callee while %s already has a ctx parameter: thread it", name, fd.Name.Name)
				} else {
					r.Reportf(arg.Pos(), "context.%s() in call position outside package main: accept a ctx from the caller or annotate //hsd:allow ctxflow <why>", name)
				}
				continue
			}
			if ctxParam == nil || derived == nil {
				continue
			}
			// Only police args the callee declares as context.Context.
			if sig == nil || i >= sig.Params().Len() {
				continue
			}
			if !isContextType(sig.Params().At(i).Type()) {
				continue
			}
			if !exprMentions(pkg.Info, arg, derived) {
				r.Reportf(arg.Pos(), "ctx argument is not derived from %s's ctx parameter: cancellation will not propagate", fd.Name.Name)
			}
		}
	}

	for _, b := range g.Blocks {
		if !g.Reachable(b) {
			continue
		}
		var derived derivedSet
		if ins != nil {
			derived = lat.Clone(ins[b])
		}
		for _, stmt := range b.Stmts {
			// Check before transfer: a stmt's calls see facts from before
			// its own assignments.
			s := stmt
			ast.Inspect(s, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					checkCall(call, derived)
				}
				return true
			})
			if derived != nil {
				markDerived(pkg.Info, s, derived)
			}
		}
	}
}

// markDerived applies one statement's assignments to the derived set:
// any LHS assigned from an expression mentioning a derived object
// becomes derived.
func markDerived(info *types.Info, stmt ast.Stmt, set derivedSet) {
	mark := func(lhs []ast.Expr, rhs []ast.Expr) {
		fromDerived := false
		for _, r := range rhs {
			if exprMentions(info, r, set) {
				fromDerived = true
				break
			}
		}
		for i, l := range lhs {
			id, ok := ast.Unparen(l).(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				continue
			}
			src := fromDerived
			if len(rhs) == len(lhs) {
				src = exprMentions(info, rhs[i], set)
			}
			if src {
				set[obj] = true
			} else {
				delete(set, obj) // rebind from a non-derived source
			}
		}
	}
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		mark(s.Lhs, s.Rhs)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, n := range vs.Names {
					lhs[i] = n
				}
				mark(lhs, vs.Values)
			}
		}
	}
}

// exprMentions reports whether e references any object in set.
func exprMentions(info *types.Info, e ast.Expr, set derivedSet) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && set[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

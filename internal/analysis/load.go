package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The loader type-checks the module's packages from source using only
// the standard library: `go list -deps -export -json` enumerates the
// transitive dependency set in dependency order, standard-library
// dependencies are imported from their compiler export data (the Export
// file go list names in the build cache), and every in-module package
// is parsed and checked with go/types so analyzers get full syntax
// plus type information. No third-party loader, per the module's
// zero-dependency rule.

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	Match      []string
}

// Load builds a Program for the packages matching the go patterns
// (e.g. "./..."), resolved relative to dir (the module root or any
// directory inside it).
func Load(dir string, patterns []string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Name,Dir,Export,Standard,GoFiles,Match", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}

	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		exports: map[string]string{},
		checked: map[string]*types.Package{},
	}
	ld.gcImp = importer.ForCompiler(fset, "gc", ld.lookup)

	prog := &Program{Fset: fset}
	for _, p := range pkgs {
		if p.Standard || len(p.GoFiles) == 0 {
			if p.Export != "" {
				ld.exports[p.ImportPath] = p.Export
			}
			continue
		}
		// In-module (or at least non-standard) package: check from
		// source so analyzers see its AST, and so type objects are
		// shared program-wide (go list -deps emits dependencies first,
		// so imports always resolve to already-checked packages).
		pkg, err := ld.checkSource(p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		// -deps lists the whole closure; only pattern-matched packages
		// become analysis targets.
		if len(p.Match) > 0 {
			prog.Packages = append(prog.Packages, pkg)
		}
	}
	return prog, nil
}

// LoadDir loads the .go files of one directory as a single package —
// the loading mode of the analyzer testdata corpus, whose packages live
// under testdata/ where go list patterns do not reach. Corpus packages
// may import the standard library only.
func LoadDir(dir string) (*Program, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %v", err)
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, name)
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}

	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		exports: map[string]string{},
		checked: map[string]*types.Package{},
	}
	ld.gcImp = importer.ForCompiler(fset, "gc", ld.lookup)

	// Parse first so the import set is known, then resolve the export
	// data of those (standard-library) imports in one go list call.
	pkg, parsed, err := ld.parse(dir, files)
	if err != nil {
		return nil, err
	}
	var imports []string
	seen := map[string]bool{}
	for _, f := range parsed {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if !seen[path] {
				seen[path] = true
				imports = append(imports, path)
			}
		}
	}
	if len(imports) > 0 {
		if err := ld.resolveExports(dir, imports); err != nil {
			return nil, err
		}
	}
	name := filepath.Base(dir)
	if err := ld.check(pkg, "testdata/"+name, parsed); err != nil {
		return nil, err
	}
	return &Program{Fset: fset, Packages: []*Package{pkg}}, nil
}

// loader carries the shared type-checking state of one Load call.
type loader struct {
	fset    *token.FileSet
	exports map[string]string         // import path -> export data file
	checked map[string]*types.Package // import path -> source-checked package
	gcImp   types.Importer
}

// Import implements types.Importer: source-checked packages win (object
// identity must be shared between the importer and the analyzers),
// everything else comes from compiler export data.
func (ld *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := ld.checked[path]; ok {
		return pkg, nil
	}
	return ld.gcImp.Import(path)
}

// lookup feeds the gc importer the export data file go list reported.
func (ld *loader) lookup(path string) (io.ReadCloser, error) {
	f, ok := ld.exports[path]
	if !ok {
		return nil, fmt.Errorf("analysis: no export data for %q (corpus packages may import only the standard library)", path)
	}
	return os.Open(f)
}

// resolveExports fills ld.exports for the given import paths and their
// dependencies.
func (ld *loader) resolveExports(dir string, paths []string) error {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export", "--"}, paths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(paths, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Export != "" {
			ld.exports[p.ImportPath] = p.Export
		}
	}
	return nil
}

// parse reads and parses the named files of one package directory.
func (ld *loader) parse(dir string, files []string) (*Package, []*ast.File, error) {
	pkg := &Package{Sources: map[string][]byte{}}
	var parsed []*ast.File
	for _, name := range files {
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, nil, fmt.Errorf("analysis: %v", err)
		}
		f, err := parser.ParseFile(ld.fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, fmt.Errorf("analysis: %v", err)
		}
		pkg.Sources[full] = src
		parsed = append(parsed, f)
	}
	return pkg, parsed, nil
}

// checkSource parses and type-checks one in-module package and records
// it for import resolution by its dependents.
func (ld *loader) checkSource(pkgPath, dir string, files []string) (*Package, error) {
	pkg, parsed, err := ld.parse(dir, files)
	if err != nil {
		return nil, err
	}
	if err := ld.check(pkg, pkgPath, parsed); err != nil {
		return nil, err
	}
	ld.checked[pkgPath] = pkg.Types
	return pkg, nil
}

// check runs go/types over the parsed files.
func (ld *loader) check(pkg *Package, pkgPath string, parsed []*ast.File) error {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(pkgPath, ld.fset, parsed, info)
	if err != nil {
		return fmt.Errorf("analysis: type-checking %s: %v", pkgPath, err)
	}
	pkg.PkgPath = pkgPath
	pkg.Files = parsed
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRe matches the corpus expectation syntax:
//
//	code // want `message regexp`
//
// The pattern is matched (unanchored) against "[analyzer] message" of a
// finding reported on that line of that file.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

// TestGolden runs the full suite over each corpus package under
// testdata/src and diffs the findings against the want comments: every
// finding must be expected and every expectation must fire. The corpus
// includes pragma-suppression and false-positive guard cases, which
// simply have no want comment — an unexpected finding there fails the
// test.
func TestGolden(t *testing.T) {
	dirs, err := filepath.Glob(filepath.Join("testdata", "src", "*"))
	if err != nil || len(dirs) == 0 {
		t.Fatalf("no corpus packages found: %v", err)
	}
	for _, dir := range dirs {
		t.Run(filepath.Base(dir), func(t *testing.T) {
			prog, err := LoadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			findings := Run(prog, All())
			if len(findings) == 0 {
				t.Fatalf("corpus %s produced no findings at all", dir)
			}

			type want struct {
				re   *regexp.Regexp
				used bool
			}
			wants := map[string][]*want{} // "file:line" -> expectations
			for _, file := range globGo(t, dir) {
				for line, text := range fileLines(t, file) {
					for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", file, line, m[1], err)
						}
						key := fmt.Sprintf("%s:%d", file, line)
						wants[key] = append(wants[key], &want{re: re})
					}
				}
			}
			if len(wants) == 0 {
				t.Fatalf("corpus %s has no want comments", dir)
			}

			for _, f := range findings {
				key := fmt.Sprintf("%s:%d", filepath.ToSlash(f.File), f.Line)
				text := fmt.Sprintf("[%s] %s", f.Analyzer, f.Message)
				matched := false
				for _, w := range wants[key] {
					if !w.used && w.re.MatchString(text) {
						w.used = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected finding at %s: %s", key, text)
				}
			}
			var missed []string
			for key, ws := range wants {
				for _, w := range ws {
					if !w.used {
						missed = append(missed, fmt.Sprintf("%s: no finding matched `%s`", key, w.re))
					}
				}
			}
			sort.Strings(missed)
			for _, m := range missed {
				t.Error(m)
			}
		})
	}
}

// TestModuleLoadClean loads the real module through the go list loader
// and asserts the tree lints clean — the in-repo twin of CI's
// `hsdlint ./...` gate, and a regression test for the loader itself.
func TestModuleLoadClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	prog, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Packages) < 5 {
		t.Fatalf("expected to load the module's packages, got %d", len(prog.Packages))
	}
	for _, f := range Run(prog, All()) {
		t.Errorf("finding on clean tree: %s", f)
	}
}

// TestFindingString pins the driver's output contract.
func TestFindingString(t *testing.T) {
	f := Finding{File: "a/b.go", Line: 7, Col: 3, Analyzer: "tunegate", Message: "boom"}
	if got, wantStr := f.String(), "a/b.go:7: [tunegate] boom"; got != wantStr {
		t.Fatalf("String() = %q, want %q", got, wantStr)
	}
}

// TestAllowDirectiveParsing pins the pragma grammar: the directive must
// hug the comment marker and name the analyzer first.
func TestAllowDirectiveParsing(t *testing.T) {
	cases := []struct {
		text string
		name string
		ok   bool
	}{
		{"//hsd:allow bitident exact-zero test", "bitident", true},
		{"//hsd:allow all grandfathered", "all", true},
		{"// hsd:allow bitident spaced out", "", false},
		{"//hsd:allowbitident mashed", "", false},
		{"//hsd:allow", "", false},
		{"// regular comment", "", false},
	}
	for _, c := range cases {
		name, ok := parseAllow(c.text)
		if ok != c.ok || name != c.name {
			t.Errorf("parseAllow(%q) = %q, %v; want %q, %v", c.text, name, ok, c.name, c.ok)
		}
	}
}

func globGo(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no .go files in %s: %v", dir, err)
	}
	sort.Strings(files)
	return files
}

// fileLines returns the file's lines keyed by 1-based line number,
// normalized to slash paths for matching against finding positions.
func fileLines(t *testing.T, file string) map[int]string {
	t.Helper()
	fh, err := os.Open(file)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	lines := map[int]string{}
	sc := bufio.NewScanner(fh)
	for n := 1; sc.Scan(); n++ {
		if strings.Contains(sc.Text(), "// want") {
			lines[n] = sc.Text()
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

package analysis

import (
	"go/ast"
	"go/types"
)

// Shared pass plumbing: the per-package function index and the
// per-program CFG cache every analyzer draws from, so five analyzers
// walking the same package don't re-discover its declarations five
// times and two flow-sensitive analyzers don't build the same CFG
// twice.

// FuncDecls returns the package's function and method declarations
// (with bodies) keyed by their defining object, built once per package.
func (pkg *Package) FuncDecls() map[types.Object]*ast.FuncDecl {
	if pkg.funcs != nil {
		return pkg.funcs
	}
	pkg.funcs = map[types.Object]*ast.FuncDecl{}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pkg.Info.Defs[fd.Name]; obj != nil {
				pkg.funcs[obj] = fd
			}
		}
	}
	return pkg.funcs
}

// CFGOf returns the (cached) CFG of a function declaration.
func (prog *Program) CFGOf(fd *ast.FuncDecl) *CFG {
	if prog.cfgs == nil {
		prog.cfgs = map[*ast.FuncDecl]*CFG{}
	}
	if g, ok := prog.cfgs[fd]; ok {
		return g
	}
	g := BuildCFG(fd.Body)
	prog.cfgs[fd] = g
	return g
}

// eachFuncDecl visits every function declaration with a body, in file
// order — the iteration shape shared by the statement-level analyzers.
func (pkg *Package) eachFuncDecl(visit func(fd *ast.FuncDecl)) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				visit(fd)
			}
		}
	}
}

// calleeSignature resolves a call expression's static callee signature,
// covering named functions, methods, and function-typed values.
func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	if tv, ok := info.Types[call.Fun]; ok {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// isNamedType reports whether t (after unwrapping one pointer) is the
// named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// recvOf returns the receiver expression of a method-style call
// (x.Sel(...)), or nil.
func recvOf(call *ast.CallExpr) (ast.Expr, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	return sel.X, sel.Sel.Name
}

// terminalObj resolves the object an expression chain ends in: the
// field var of a selector (via Selections) or the var of an identifier.
// It answers "which declared thing is this?" for lock receivers and
// channel operands.
func terminalObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok {
			return s.Obj()
		}
		// Package-qualified selector (pkg.Var).
		if obj := info.Uses[e.Sel]; obj != nil {
			return obj
		}
	case *ast.UnaryExpr:
		return terminalObj(info, e.X)
	}
	return nil
}

package analysis

import "go/ast"

// This file is the dataflow half of the engine: a forward worklist
// solver over the CFG, parameterized by a per-analyzer lattice. Facts
// flow block-to-block; within a block the transfer function folds one
// statement at a time, so analyzers observe every evaluation point.
//
// The solver is deliberately small: the analyzers' lattices (may-hold
// lock sets, ctx-derivation sets) are finite powersets over objects
// that appear in one function, so termination follows from
// monotonicity. A generous iteration cap turns a non-monotone transfer
// function (an analyzer bug) into a loud panic instead of a hang.

// Lattice defines the join semilattice a dataflow fact lives in.
// Implementations must be monotone: Join(a, b) must be an upper bound
// of both, and Transfer must not shrink under Join.
type Lattice[F any] interface {
	// Bottom is the initial fact of every block but the entry.
	Bottom() F
	// Join merges the facts of two predecessors.
	Join(a, b F) F
	// Equal reports fact equality (fixpoint detection).
	Equal(a, b F) bool
	// Clone returns an independent copy callers may mutate.
	Clone(a F) F
}

// Transfer folds one statement into a fact, returning the fact after
// the statement. It may mutate and return in (the solver clones at
// block boundaries).
type Transfer[F any] func(stmt ast.Stmt, in F) F

// maxPasses bounds worklist iterations per CFG: facts are powersets
// over a function's locks/vars, so height is small; 4 passes per block
// per lattice element would already be extreme. Exceeding the cap means
// a broken lattice, and panicking beats silently looping.
const maxPasses = 1 << 14

// ForwardSolve runs the worklist to fixpoint and returns each block's
// IN fact. entry seeds the entry block; every other block starts at
// Bottom.
func ForwardSolve[F any](g *CFG, lat Lattice[F], tr Transfer[F], entry F) map[*Block]F {
	in := make(map[*Block]F, len(g.Blocks))
	out := make(map[*Block]F, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b] = lat.Bottom()
		out[b] = lat.Bottom()
	}
	in[g.Entry] = entry

	// Worklist seeded in block-creation order (roughly source order, so
	// the common acyclic case converges in one sweep).
	queued := make([]bool, len(g.Blocks))
	var work []*Block
	push := func(b *Block) {
		if !queued[b.Index] {
			queued[b.Index] = true
			work = append(work, b)
		}
	}
	for _, b := range g.Blocks {
		push(b)
	}

	passes := 0
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false
		if passes++; passes > maxPasses {
			panic("analysis: dataflow did not converge (non-monotone transfer function?)")
		}

		f := lat.Clone(in[b])
		for _, s := range b.Stmts {
			f = tr(s, f)
		}
		if lat.Equal(f, out[b]) {
			continue
		}
		out[b] = f
		for _, s := range b.Succs {
			j := lat.Join(in[s], f)
			if !lat.Equal(j, in[s]) {
				in[s] = j
				push(s)
			}
		}
	}
	return in
}

// FoldBlock replays the transfer function over a block's statements
// from a given IN fact — how analyzers do their reporting pass once the
// solver has stabilized, observing the exact fact at each statement.
func FoldBlock[F any](b *Block, lat Lattice[F], tr Transfer[F], in F) F {
	f := lat.Clone(in)
	for _, s := range b.Stmts {
		f = tr(s, f)
	}
	return f
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BitIdent polices the factorization's bit-identity region: the
// functions marked //hsd:bitident (the Getf2/panel GETRF family and the
// unit-lower TRSM it feeds) must produce bit-for-bit the results of the
// scalar reference loop under every schedule and every micro-kernel.
// That contract is what makes the paper's static/dynamic comparison
// meaningful, and it survives only if every floating-point operation
// rounds exactly where the reference rounds:
//
//   - math.FMA (rule fma) computes a*b+c with a single rounding; the
//     reference rounds the product and the sum separately.
//   - float == / != (rule floatcmp) is almost always a latent
//     reassociation hazard; the two intentional uses (the exact-zero
//     singularity test and the first-maximum idamax rescan) carry
//     //hsd:allow pragmas.
//   - a multi-product accumulation expression such as a*b + c*d (rule
//     fused) invites the compiler — and future vectorizers — to fuse or
//     reassociate; the blessed form is one product per statement with a
//     compound-assignment subtract (c[i] -= l[i] * u), which Go
//     guarantees rounds the product and the subtraction separately.
var BitIdent = &Analyzer{
	Name: "bitident",
	Doc:  "no FMA, float equality or fused-multiply idioms inside //hsd:bitident functions",
	Run:  runBitIdent,
}

const bitIdentDirective = "hsd:bitident"

func runBitIdent(prog *Program, r *Reporter) {
	for _, pkg := range prog.Packages {
		pkg.eachFuncDecl(func(fd *ast.FuncDecl) {
			if hasDirective(fd.Doc, bitIdentDirective) {
				checkBitIdent(pkg, fd, r)
			}
		})
	}
}

func checkBitIdent(pkg *Package, fd *ast.FuncDecl, r *Reporter) {
	// Roots of maximal float-arithmetic trees already reported by the
	// fused-idiom rule, so subtrees are not reported again.
	inTree := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if f := funcObj(pkg.Info, n); f != nil && f.Pkg() != nil &&
				f.Pkg().Path() == "math" && f.Name() == "FMA" {
				r.Reportf(n.Pos(), "math.FMA in bit-identity function %s: single-rounded a*b+c diverges from the reference's separate product and sum roundings", fd.Name.Name)
			}
		case *ast.BinaryExpr:
			switch n.Op {
			case token.EQL, token.NEQ:
				if exprIsFloat(pkg.Info, n.X) || exprIsFloat(pkg.Info, n.Y) {
					r.Reportf(n.Pos(), "float %s comparison in bit-identity function %s", n.Op, fd.Name.Name)
				}
			case token.ADD, token.SUB, token.MUL:
				if inTree[n] || !floatArith(pkg.Info, n) {
					break
				}
				muls, addsubs := countArith(pkg.Info, n, inTree)
				if muls >= 2 && addsubs >= 1 {
					r.Reportf(n.Pos(), "fused multiply-accumulate idiom in bit-identity function %s: %d products combined in one expression can be fused or reassociated; keep one product per statement", fd.Name.Name, muls)
				}
			}
		}
		return true
	})
}

// exprIsFloat reports whether e has floating-point type.
func exprIsFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && isFloat(tv.Type)
}

// floatArith reports whether b is a floating-point +, - or *.
func floatArith(info *types.Info, b *ast.BinaryExpr) bool {
	switch b.Op {
	case token.ADD, token.SUB, token.MUL:
		return exprIsFloat(info, b.X) || exprIsFloat(info, b.Y)
	}
	return false
}

// countArith counts the multiplications and additions/subtractions of
// the maximal float-arithmetic expression tree rooted at e, marking
// every binary node it visits so the caller reports each tree once.
// Calls, indexing and identifiers are leaves: their internals round (or
// load) independently.
func countArith(info *types.Info, e ast.Expr, inTree map[ast.Node]bool) (muls, addsubs int) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return countArith(info, e.X, inTree)
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			return countArith(info, e.X, inTree)
		}
	case *ast.BinaryExpr:
		if !floatArith(info, e) {
			return 0, 0
		}
		inTree[e] = true
		switch e.Op {
		case token.MUL:
			muls = 1
		case token.ADD, token.SUB:
			addsubs = 1
		}
		m1, a1 := countArith(info, e.X, inTree)
		m2, a2 := countArith(info, e.Y, inTree)
		return muls + m1 + m2, addsubs + a1 + a2
	}
	return 0, 0
}

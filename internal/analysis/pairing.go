package analysis

import (
	"go/ast"
	"go/types"
)

// Pairing enforces the two acquire/release contracts the runtime's
// memory accounting rests on:
//
// Rule A — a value acquired from a package-level Reserve function
// (one whose single result has a Release method, i.e.
// kernel.Reserve's *Reservation) must not leak: the result must not be
// discarded, and a function that keeps it in a local must have Release
// reachable on every exit path — a deferred Release, a call on every
// branch before return, or handing the value off (returning it,
// storing it in a struct, passing it on), which transfers ownership to
// the recipient.
//
// Rule B — arming a graph that carries shared panels: a call to
// ResetDeps on a value whose type also has ReleasePanels must have
// ReleasePanels reachable in the same function, unless the value was
// received from elsewhere (a parameter or a struct field), in which
// case the owner is responsible — the rt executor releases panels in
// Wait, covering both completion and abort.
//
// The analysis is per-function and intentionally conservative inside
// loops and switches: a Release inside a loop body does not count as
// covering code after the loop (the loop may run zero times).
var Pairing = &Analyzer{
	Name: "pairing",
	Doc:  "Reserve acquisitions need Release, and ResetDeps on panel-carrying graphs needs ReleasePanels, on every exit path",
	Run:  runPairing,
}

func runPairing(prog *Program, r *Reporter) {
	for _, pkg := range prog.Packages {
		pkg.eachFuncDecl(func(fd *ast.FuncDecl) {
			checkReservePairing(pkg, fd, r)
			checkPanelPairing(pkg, fd, r)
		})
	}
}

// ---------------------------------------------------------------------
// Rule A: Reserve / Release.

// isReserveCall reports whether call acquires a releasable resource: a
// package-level function named Reserve whose single result type has a
// Release method.
func isReserveCall(info *types.Info, call *ast.CallExpr) bool {
	f := funcObj(info, call)
	if f == nil || f.Name() != "Reserve" || f.Type().(*types.Signature).Recv() != nil {
		return false
	}
	res := f.Type().(*types.Signature).Results()
	return res.Len() == 1 && hasMethod(namedOrPointee(res.At(0).Type()), "Release")
}

func checkReservePairing(pkg *Package, fd *ast.FuncDecl, r *Reporter) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		stmt, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		switch stmt := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := stmt.X.(*ast.CallExpr); ok && isReserveCall(pkg.Info, call) {
				r.Reportf(call.Pos(), "result of %s discarded: the reservation can never be released", reserveName(pkg.Info, call))
			}
		case *ast.AssignStmt:
			if len(stmt.Rhs) != 1 || len(stmt.Lhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
			if !ok || !isReserveCall(pkg.Info, call) {
				return true
			}
			lhs, ok := stmt.Lhs[0].(*ast.Ident)
			if !ok {
				// Assigned into a field, map or slice element: ownership
				// moves to that structure's lifecycle (rt/engine store the
				// reservation and release it in Wait/Close).
				return true
			}
			if lhs.Name == "_" {
				r.Reportf(call.Pos(), "result of %s discarded: the reservation can never be released", reserveName(pkg.Info, call))
				return true
			}
			v, _ := pkg.Info.Defs[lhs].(*types.Var)
			if v == nil {
				v, _ = pkg.Info.Uses[lhs].(*types.Var)
			}
			if v == nil {
				return true
			}
			checkLocalReserve(pkg, fd, stmt, v, call, r)
		}
		return true
	})
}

func reserveName(info *types.Info, call *ast.CallExpr) string {
	if f := funcObj(info, call); f != nil {
		if f.Pkg() != nil {
			return f.Pkg().Name() + "." + f.Name()
		}
		return f.Name()
	}
	return "Reserve"
}

// checkLocalReserve verifies that local v, holding a fresh reservation
// acquired at acq, is released on every exit path of fd.
func checkLocalReserve(pkg *Package, fd *ast.FuncDecl, acq *ast.AssignStmt, v *types.Var, call *ast.CallExpr, r *Reporter) {
	// A deferred Release anywhere covers every exit, including panics.
	// Escaping the local (returning it, passing it to a call, storing
	// it) transfers ownership.
	deferred := false
	escapes := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if isReleaseCallOn(pkg.Info, n.Call, v) {
				deferred = true
			}
		case *ast.Ident:
			if pkg.Info.Uses[n] == v && escapingUse(pkg, fd, n, v) {
				escapes = true
			}
		}
		return true
	})
	if deferred || escapes {
		return
	}

	// Path-sensitive sweep of the statements after the acquisition in
	// its enclosing block (and, when that block is nested, the blocks
	// around it up to the function body).
	blocks := enclosingStmtLists(fd.Body, acq)
	if blocks == nil {
		return
	}
	// Sweep from the statement after the acquisition to the end of its
	// block, then onward through each enclosing block out to the
	// function body. Every sweep starts after the statement that
	// contains the acquisition at that nesting level.
	st := &releaseState{pkg: pkg, v: v, r: r}
	released := false
	for i := len(blocks) - 1; i >= 0; i-- {
		var terminates bool
		released, terminates = st.sweep(blocks[i].list[blocks[i].index+1:], released)
		if released || terminates {
			return
		}
	}
	r.Reportf(call.Pos(), "%s acquired into %s is not released on the fall-through path out of %s", reserveName(pkg.Info, call), v.Name(), fd.Name.Name)
}

// stmtListPos locates stmt inside nested statement lists of body.
type stmtListPos struct {
	list  []ast.Stmt
	index int
}

// enclosingStmtLists returns the chain of statement lists from the
// function body down to the one directly containing target, each with
// the index of the statement (or the statement containing target) in
// that list. Returns nil if target sits inside a loop, switch or
// function literal, where the linear sweep below would be unsound.
func enclosingStmtLists(body *ast.BlockStmt, target ast.Stmt) []stmtListPos {
	var path []stmtListPos
	var find func(list []ast.Stmt) bool
	find = func(list []ast.Stmt) bool {
		for i, s := range list {
			if s == target {
				path = append(path, stmtListPos{list, i})
				return true
			}
			if !containsNode(s, target) {
				continue
			}
			// Only descend through plain blocks and if/else arms; any
			// other container (loop, switch, select, closure) makes the
			// remainder non-linear.
			switch s := s.(type) {
			case *ast.BlockStmt:
				path = append(path, stmtListPos{list, i})
				return find(s.List)
			case *ast.IfStmt:
				path = append(path, stmtListPos{list, i})
				if containsNode(s.Body, target) {
					return find(s.Body.List)
				}
				if s.Else != nil {
					if blk, ok := s.Else.(*ast.BlockStmt); ok && containsNode(blk, target) {
						return find(blk.List)
					}
				}
				return false
			default:
				return false
			}
		}
		return false
	}
	if !find(body.List) {
		return nil
	}
	return path
}

func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// releaseState carries the context of one linear release sweep.
type releaseState struct {
	pkg *Package
	v   *types.Var
	r   *Reporter
}

// sweep walks a statement list tracking whether v has been released,
// reporting any return reached while it has not. It returns whether v
// is released at the end of the list and whether the list terminates
// (every path returns or panics).
func (st *releaseState) sweep(list []ast.Stmt, released bool) (bool, bool) {
	for _, s := range list {
		if released {
			// Once released (or covered by a defer), the rest of the
			// function is fine.
			return true, false
		}
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && isReleaseCallOn(st.pkg.Info, call, st.v) {
				released = true
			}
		case *ast.DeferStmt:
			if isReleaseCallOn(st.pkg.Info, s.Call, st.v) {
				released = true
			}
		case *ast.ReturnStmt:
			st.r.Reportf(s.Pos(), "return without releasing %s (acquired from Reserve)", st.v.Name())
			return released, true
		case *ast.BlockStmt:
			var term bool
			released, term = st.sweep(s.List, released)
			if term {
				return released, true
			}
		case *ast.IfStmt:
			bodyRel, bodyTerm := st.sweep(s.Body.List, released)
			elseRel, elseTerm := released, false
			if s.Else != nil {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					elseRel, elseTerm = st.sweep(e.List, released)
				case *ast.IfStmt:
					elseRel, elseTerm = st.sweep([]ast.Stmt{e}, released)
				}
			}
			if bodyTerm && elseTerm {
				return released, true
			}
			// Fall-through state: released only if every non-terminating
			// arm released.
			released = (bodyTerm || bodyRel) && (elseTerm || elseRel)
		}
		// Loops, switches and selects are opaque: releases inside them
		// may run zero times, and returns inside them are rare enough in
		// this codebase to leave to the deferred-release idiom.
	}
	return released, endsTerminating(list)
}

// endsTerminating reports whether the list's last statement certainly
// diverts control (return or panic).
func endsTerminating(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch s := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// isReleaseCallOn reports whether call is v.Release().
func isReleaseCallOn(info *types.Info, call *ast.CallExpr, v *types.Var) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && info.Uses[id] == v
}

// escapingUse reports whether this use of v hands the reservation to
// someone else: returning it, passing it as a call argument, storing
// it into a composite literal, field, element or another variable, or
// taking its address. A method call on v itself is plain use, not an
// escape.
func escapingUse(pkg *Package, fd *ast.FuncDecl, id *ast.Ident, v *types.Var) bool {
	path := nodePath(fd.Body, id)
	if len(path) < 2 {
		return false
	}
	parent := path[len(path)-2]
	switch p := parent.(type) {
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr:
		return true
	case *ast.UnaryExpr:
		return true // &v
	case *ast.CallExpr:
		for _, arg := range p.Args {
			if arg == ast.Expr(id) {
				return true
			}
		}
		return false
	case *ast.SelectorExpr:
		return false // v.Method(...) or v.Field
	case *ast.AssignStmt:
		for _, rhs := range p.Rhs {
			if rhs == ast.Expr(id) {
				// v on the right-hand side of any assignment other than
				// its own acquisition aliases or stores it.
				return true
			}
		}
		return false
	}
	return false
}

// nodePath returns the chain of nodes from root down to target
// (inclusive), or nil.
func nodePath(root ast.Node, target ast.Node) []ast.Node {
	var stack, path []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if path != nil {
			return false
		}
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if n == target {
			path = append(path, stack...)
			return false
		}
		return true
	})
	return path
}

// ---------------------------------------------------------------------
// Rule B: ResetDeps / ReleasePanels.

func checkPanelPairing(pkg *Package, fd *ast.FuncDecl, r *Reporter) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "ResetDeps" {
			return true
		}
		recvType := pkg.Info.Types[sel.X].Type
		if recvType == nil || !hasMethod(namedOrPointee(recvType), "ReleasePanels") {
			return true
		}
		switch x := ast.Unparen(sel.X).(type) {
		case *ast.SelectorExpr:
			// A field (e.g. the executor's e.g): its owner releases in
			// its own lifecycle (rt.Wait pairs ReleasePanels with every
			// outcome).
			return true
		case *ast.Ident:
			v, _ := pkg.Info.Uses[x].(*types.Var)
			if v == nil {
				return true
			}
			if isParamOf(pkg, fd, v) {
				// Caller-owned graph: the caller armed us with it and
				// keeps responsibility for panel reclamation.
				return true
			}
			if !callsMethodOn(pkg, fd, v, "ReleasePanels") {
				r.Reportf(call.Pos(), "%s.ResetDeps() arms shared panels but %s.ReleasePanels() is not called in %s: panel budget leaks if a job aborts", v.Name(), v.Name(), fd.Name.Name)
			}
		}
		return true
	})
}

// isParamOf reports whether v is a parameter (or receiver) of fd.
func isParamOf(pkg *Package, fd *ast.FuncDecl, v *types.Var) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if pkg.Info.Defs[name] == v {
					return true
				}
			}
		}
		return false
	}
	return check(fd.Recv) || check(fd.Type.Params)
}

// callsMethodOn reports whether fd contains a call (or deferred call)
// of v.<name>().
func callsMethodOn(pkg *Package, fd *ast.FuncDecl, v *types.Var, name string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != name {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pkg.Info.Uses[id] == v {
			found = true
		}
		return true
	})
	return found
}

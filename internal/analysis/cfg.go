package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the control-flow half of the analysis engine: a
// function-level CFG built from syntax alone (no SSA, no third-party
// packages), precise enough for the flow-sensitive analyzers —
// lockorder's may-hold sets, ctxflow's derivation tracking — and cheap
// enough to build for every function in the module on every lint run.
//
// Shape: basic blocks of straight-line statements connected by
// successor/predecessor edges. Control statements contribute their
// evaluated parts (an if's init and cond, a switch's tag, a select's
// comm statements) as ordinary statements of the branching block, so a
// dataflow transfer function sees every expression evaluation exactly
// once per path. Defers are not edges: they are collected per function
// (run at every exit, in reverse order), and analyzers that care apply
// them against the exit block's facts.

// Block is one basic block: straight-line statements, then a branch.
type Block struct {
	Index int
	// Kind labels the block's structural role ("entry", "if.then",
	// "for.head", "select.comm", "exit", ...) — diagnostics and tests
	// key off it; analyzers should not.
	Kind  string
	Stmts []ast.Stmt
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	// Exit is the single synthetic exit block: every return, every
	// fall-off-the-end path, and every terminal panic flows here.
	Exit *Block
	// Defers are the function's defer statements in source order; they
	// execute at every exit in reverse order.
	Defers []*ast.DeferStmt
}

// Reachable reports whether b has a path from the entry block.
func (g *CFG) Reachable(b *Block) bool {
	seen := make([]bool, len(g.Blocks))
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[x.Index] {
			continue
		}
		seen[x.Index] = true
		if x == b {
			return true
		}
		stack = append(stack, x.Succs...)
	}
	return false
}

// BuildCFG constructs the CFG of a function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		g:      &CFG{},
		labels: map[string]*cfgLabel{},
	}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = b.g.Entry
	b.stmtList(body.List)
	// Falling off the end of the body returns.
	b.edge(b.cur, b.g.Exit)
	b.resolveGotos()
	return b.g
}

// cfgLabel tracks one label's target block plus the loop/switch blocks
// a labeled break or continue jumps to.
type cfgLabel struct {
	target   *Block // the labeled statement's block (goto destination)
	breakTo  *Block
	contTo   *Block
	resolved bool
}

type cfgBuilder struct {
	g   *CFG
	cur *Block // nil after a terminal statement (return, goto, panic)

	// break/continue targets of the innermost enclosing loop, switch or
	// select; stacks because they nest.
	breakStack []*Block
	contStack  []*Block

	labels       map[string]*cfgLabel
	pendingLabel string // label naming the next loop/switch (for labeled break/continue)
	gotos        []pendingGoto
}

type pendingGoto struct {
	from  *Block
	label string
	pos   token.Pos
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// current returns the block statements are flowing into, starting a
// fresh unreachable block after a terminal statement so that dead code
// still gets blocks (the CFG tests assert unreachability explicitly).
func (b *cfgBuilder) current() *Block {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	return b.cur
}

func (b *cfgBuilder) emit(s ast.Stmt) {
	blk := b.current()
	blk.Stmts = append(blk.Stmts, s)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s)

	case *ast.RangeStmt:
		b.rangeStmt(s)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		if s.Tag != nil {
			b.emit(&ast.ExprStmt{X: s.Tag})
		}
		b.switchBody(s.Body, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		b.emit(s.Assign)
		b.switchBody(s.Body, nil)

	case *ast.SelectStmt:
		b.selectStmt(s)

	case *ast.LabeledStmt:
		b.labeledStmt(s)

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.ReturnStmt:
		b.emit(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = nil

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.emit(s)

	case *ast.ExprStmt:
		b.emit(s)
		if isPanicCall(s.X) {
			b.edge(b.cur, b.g.Exit)
			b.cur = nil
		}

	default:
		// Assignments, declarations, sends, go statements, inc/dec,
		// empty statements: straight-line.
		b.emit(s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.emit(s.Init)
	}
	b.emit(&ast.ExprStmt{X: s.Cond})
	cond := b.current()

	then := b.newBlock("if.then")
	b.edge(cond, then)
	b.cur = then
	b.stmtList(s.Body.List)
	thenEnd := b.cur

	var elseEnd *Block
	hasElse := s.Else != nil
	if hasElse {
		els := b.newBlock("if.else")
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		elseEnd = b.cur
	}

	after := b.newBlock("if.after")
	if !hasElse {
		b.edge(cond, after)
	}
	b.edge(thenEnd, after)
	b.edge(elseEnd, after)
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.emit(s.Init)
	}
	head := b.newBlock("for.head")
	b.edge(b.current(), head)
	b.cur = head
	if s.Cond != nil {
		b.emit(&ast.ExprStmt{X: s.Cond})
	}

	after := b.newBlock("for.after")
	post := head
	if s.Post != nil {
		post = b.newBlock("for.post")
	}
	b.openLoop(after, post)

	body := b.newBlock("for.body")
	b.edge(head, body)
	if s.Cond != nil {
		// A for {} without cond never exits by itself: after is only
		// reachable through break.
		b.edge(head, after)
	}
	b.cur = body
	b.stmtList(s.Body.List)
	if s.Post != nil {
		b.edge(b.cur, post)
		b.cur = post
		b.emit(s.Post)
		b.edge(post, head)
	} else {
		b.edge(b.cur, head)
	}
	b.closeLoop()
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	head := b.newBlock("range.head")
	b.edge(b.current(), head)
	b.cur = head
	// The range expression (and per-iteration key/value assignment)
	// evaluates at the head.
	b.emit(&ast.ExprStmt{X: s.X})
	after := b.newBlock("range.after")
	b.edge(head, after)
	b.openLoop(after, head)

	body := b.newBlock("range.body")
	b.edge(head, body)
	b.cur = body
	b.stmtList(s.Body.List)
	b.edge(b.cur, head)
	b.closeLoop()
	b.cur = after
}

// switchBody lowers the case clauses of a switch or type switch. The
// branching block (current) gets an edge to every case; a missing
// default adds a fall-through edge to after.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, _ *Block) {
	tag := b.current()
	after := b.newBlock("switch.after")
	b.openSwitch(after)

	hasDefault := false
	var clauses []*ast.CaseClause
	for _, raw := range body.List {
		cc := raw.(*ast.CaseClause)
		clauses = append(clauses, cc)
		if cc.List == nil {
			hasDefault = true
		}
	}
	// Pre-create case blocks so fallthrough can target the next body.
	blocks := make([]*Block, len(clauses))
	for i, cc := range clauses {
		kind := "switch.case"
		if cc.List == nil {
			kind = "switch.default"
		}
		blocks[i] = b.newBlock(kind)
		b.edge(tag, blocks[i])
	}
	for i, cc := range clauses {
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.emit(&ast.ExprStmt{X: e})
		}
		ft := false
		for _, cs := range cc.Body {
			if br, ok := cs.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				ft = true
				break
			}
			b.stmt(cs)
		}
		if ft && i+1 < len(blocks) {
			b.edge(b.cur, blocks[i+1])
			b.cur = nil
			continue
		}
		b.edge(b.cur, after)
	}
	if !hasDefault {
		b.edge(tag, after)
	}
	b.closeSwitch()
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	head := b.current()
	after := b.newBlock("select.after")
	b.openSwitch(after)
	for _, raw := range s.Body.List {
		cc := raw.(*ast.CommClause)
		kind := "select.comm"
		if cc.Comm == nil {
			kind = "select.default"
		}
		blk := b.newBlock(kind)
		b.edge(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	// select {} with no cases blocks forever: after is unreachable.
	b.closeSwitch()
	b.cur = after
}

func (b *cfgBuilder) labeledStmt(s *ast.LabeledStmt) {
	name := s.Label.Name
	lb := b.labels[name]
	if lb == nil {
		lb = &cfgLabel{}
		b.labels[name] = lb
	}
	target := b.newBlock("label." + name)
	b.edge(b.cur, target)
	b.cur = target
	lb.target = target
	lb.resolved = true
	// If the labeled statement is a loop or switch, its break/continue
	// targets register under the label as the statement is lowered.
	b.pendingLabel = name
	b.stmt(s.Stmt)
	b.pendingLabel = ""
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		var to *Block
		if s.Label != nil {
			if lb := b.labels[s.Label.Name]; lb != nil {
				to = lb.breakTo
			}
		} else if n := len(b.breakStack); n > 0 {
			to = b.breakStack[n-1]
		}
		b.emit(s)
		b.edge(b.cur, to)
		b.cur = nil
	case token.CONTINUE:
		var to *Block
		if s.Label != nil {
			if lb := b.labels[s.Label.Name]; lb != nil {
				to = lb.contTo
			}
		} else if n := len(b.contStack); n > 0 {
			to = b.contStack[n-1]
		}
		b.emit(s)
		b.edge(b.cur, to)
		b.cur = nil
	case token.GOTO:
		b.emit(s)
		b.gotos = append(b.gotos, pendingGoto{from: b.current(), label: s.Label.Name, pos: s.Pos()})
		b.cur = nil
	case token.FALLTHROUGH:
		// Handled by switchBody; a stray fallthrough is a parse error
		// upstream, emit and move on.
		b.emit(s)
	}
}

func (b *cfgBuilder) openLoop(breakTo, contTo *Block) {
	b.breakStack = append(b.breakStack, breakTo)
	b.contStack = append(b.contStack, contTo)
	if b.pendingLabel != "" {
		lb := b.labels[b.pendingLabel]
		lb.breakTo = breakTo
		lb.contTo = contTo
		b.pendingLabel = ""
	}
}

func (b *cfgBuilder) closeLoop() {
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.contStack = b.contStack[:len(b.contStack)-1]
}

func (b *cfgBuilder) openSwitch(breakTo *Block) {
	b.breakStack = append(b.breakStack, breakTo)
	if b.pendingLabel != "" {
		b.labels[b.pendingLabel].breakTo = breakTo
		b.pendingLabel = ""
	}
}

func (b *cfgBuilder) closeSwitch() {
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
}

// resolveGotos patches forward gotos: the label's block may not exist
// when the goto is lowered.
func (b *cfgBuilder) resolveGotos() {
	for _, g := range b.gotos {
		if lb := b.labels[g.label]; lb != nil && lb.target != nil {
			b.edge(g.from, lb.target)
		}
	}
}

// isPanicCall reports whether e is a direct call of the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

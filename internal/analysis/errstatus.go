package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// ErrStatus polices how typed errors are tested and where they are
// turned into HTTP statuses. Two rules:
//
//  1. Errors are tested with errors.Is / errors.As, never with ==/!=
//     against a sentinel or a direct type assertion. Wrapped errors
//     (%w) silently break both of the latter; this codebase wraps.
//     (err == nil stays idiomatic and is not touched.)
//  2. In packages that declare a status-mapping table — a function
//     annotated //hsd:statusmap — every branch that inspects an error
//     with errors.Is/As and then writes a 4xx/5xx must live inside such
//     a function. Scattered inline mappings are how the serve and
//     cluster tiers drift apart on which error means 429 vs 503.
var ErrStatus = &Analyzer{
	Name: "errstatus",
	Doc:  "test errors with errors.Is/As, and map errors to HTTP statuses only in //hsd:statusmap functions",
	Run:  runErrStatus,
}

const statusMapDirective = "hsd:statusmap"

func runErrStatus(prog *Program, r *Reporter) {
	for _, pkg := range prog.Packages {
		// Does this package declare a status-mapping table?
		hasTable := false
		pkg.eachFuncDecl(func(fd *ast.FuncDecl) {
			if hasDirective(fd.Doc, statusMapDirective) {
				hasTable = true
			}
		})
		pkg.eachFuncDecl(func(fd *ast.FuncDecl) {
			checkErrComparisons(pkg, fd, r)
			if hasTable && !hasDirective(fd.Doc, statusMapDirective) {
				checkInlineStatusMapping(pkg, fd, r)
			}
		})
	}
}

// checkErrComparisons flags ==/!= against non-nil errors and type
// assertions on error values.
func checkErrComparisons(pkg *Package, fd *ast.FuncDecl, r *Reporter) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			if isNilExpr(pkg.Info, n.X) || isNilExpr(pkg.Info, n.Y) {
				return true
			}
			if isErrorExpr(pkg.Info, n.X) && isErrorExpr(pkg.Info, n.Y) {
				r.Reportf(n.OpPos, "comparing errors with %s misses wrapped errors: use errors.Is", n.Op)
			}
		case *ast.TypeAssertExpr:
			if n.Type == nil {
				return true // type switch: handled as idiomatic
			}
			if !isErrorIface(pkg.Info.TypeOf(n.X)) {
				return true
			}
			if t := pkg.Info.TypeOf(n.Type); t != nil && typeImplementsError(t) {
				r.Reportf(n.Pos(), "type-asserting an error misses wrapped errors: use errors.As")
			}
		}
		return true
	})
}

// checkInlineStatusMapping flags errors.Is/As-guarded branches that
// write a 4xx/5xx outside the package's statusmap function(s).
func checkInlineStatusMapping(pkg *Package, fd *ast.FuncDecl, r *Reporter) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if !condTestsError(pkg.Info, ifs.Cond) {
			return true
		}
		if pos, code, found := findsStatusWrite(pkg.Info, ifs.Body); found {
			r.Reportf(pos, "inline error-to-status mapping (%d) outside the //%s table: route it through the package's status-mapping function", code, statusMapDirective)
		}
		return true
	})
}

// condTestsError reports whether cond contains an errors.Is / errors.As
// call.
func condTestsError(info *types.Info, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f := funcObj(info, call); f != nil && f.Pkg() != nil && f.Pkg().Path() == "errors" &&
			(f.Name() == "Is" || f.Name() == "As") {
			found = true
		}
		return !found
	})
	return found
}

// findsStatusWrite looks inside a guarded block for an HTTP error
// status being written: w.WriteHeader(4xx/5xx), http.Error(w, _, 4xx),
// or any call passing both a ResponseWriter and a constant in 400..599.
func findsStatusWrite(info *types.Info, body *ast.BlockStmt) (token.Pos, int, bool) {
	var pos token.Pos
	var code int
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		c, okc := statusConstArg(info, call)
		if !okc {
			return true
		}
		recv, name := recvOf(call)
		isWriteHeader := recv != nil && name == "WriteHeader" && isResponseWriter(info.TypeOf(recv))
		hasRW := false
		for _, arg := range call.Args {
			if isResponseWriter(info.TypeOf(arg)) {
				hasRW = true
			}
		}
		if isWriteHeader || hasRW {
			pos, code, found = call.Pos(), c, true
			return false
		}
		return true
	})
	return pos, code, found
}

// statusConstArg returns the first constant integer argument in
// [400, 600), if any.
func statusConstArg(info *types.Info, call *ast.CallExpr) (int, bool) {
	for _, arg := range call.Args {
		tv, ok := info.Types[arg]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
			continue
		}
		v, exact := constant.Int64Val(tv.Value)
		if exact && v >= 400 && v < 600 {
			return int(v), true
		}
	}
	return 0, false
}

// isResponseWriter matches net/http.ResponseWriter.
func isResponseWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "ResponseWriter" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// isErrorIface reports whether t is exactly the predeclared error
// interface.
func isErrorIface(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// isErrorExpr reports whether e's static type implements error.
func isErrorExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	return t != nil && typeImplementsError(t)
}

// typeImplementsError reports whether t implements the error interface.
func typeImplementsError(t types.Type) bool {
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errIface) || types.Implements(types.NewPointer(t), errIface)
}

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

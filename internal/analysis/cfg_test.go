package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildTestCFG parses a function body and builds its CFG.
func buildTestCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fd.Body)
}

func blocksOfKind(g *CFG, kind string) []*Block {
	var out []*Block
	for _, b := range g.Blocks {
		if b.Kind == kind {
			out = append(out, b)
		}
	}
	return out
}

func oneBlock(t *testing.T, g *CFG, kind string) *Block {
	t.Helper()
	bs := blocksOfKind(g, kind)
	if len(bs) != 1 {
		t.Fatalf("want exactly one %q block, got %d", kind, len(bs))
	}
	return bs[0]
}

func hasEdge(from, to *Block) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

func TestCFGIfElse(t *testing.T) {
	g := buildTestCFG(t, `
	x := 1
	if x > 0 {
		x = 2
	} else {
		x = 3
	}
	_ = x
`)
	then := oneBlock(t, g, "if.then")
	els := oneBlock(t, g, "if.else")
	after := oneBlock(t, g, "if.after")
	if !hasEdge(g.Entry, then) || !hasEdge(g.Entry, els) {
		t.Errorf("cond block should branch to both then and else")
	}
	if hasEdge(g.Entry, after) {
		t.Errorf("if with else must not short-circuit cond -> after")
	}
	if !hasEdge(then, after) || !hasEdge(els, after) {
		t.Errorf("both arms should rejoin at if.after")
	}
	if len(after.Preds) != 2 {
		t.Errorf("if.after preds = %d, want 2", len(after.Preds))
	}
}

func TestCFGIfNoElse(t *testing.T) {
	g := buildTestCFG(t, `
	x := 1
	if x > 0 {
		x = 2
	}
	_ = x
`)
	after := oneBlock(t, g, "if.after")
	if !hasEdge(g.Entry, after) {
		t.Errorf("if without else needs the cond -> after fallthrough edge")
	}
}

func TestCFGForLoop(t *testing.T) {
	g := buildTestCFG(t, `
	s := 0
	for i := 0; i < 10; i++ {
		s += i
	}
	_ = s
`)
	head := oneBlock(t, g, "for.head")
	body := oneBlock(t, g, "for.body")
	post := oneBlock(t, g, "for.post")
	after := oneBlock(t, g, "for.after")
	if !hasEdge(head, body) || !hasEdge(head, after) {
		t.Errorf("conditioned loop head must branch to body and after")
	}
	if !hasEdge(body, post) || !hasEdge(post, head) {
		t.Errorf("want body -> post -> head back edge")
	}
}

func TestCFGForeverLoop(t *testing.T) {
	g := buildTestCFG(t, `
	for {
	}
`)
	head := oneBlock(t, g, "for.head")
	after := oneBlock(t, g, "for.after")
	if hasEdge(head, after) {
		t.Errorf("for {} must not have a head -> after edge")
	}
	if g.Reachable(after) {
		t.Errorf("for.after of an unbroken for {} must be unreachable")
	}
	if g.Reachable(g.Exit) {
		t.Errorf("exit must be unreachable past for {}")
	}
}

func TestCFGForeverLoopWithBreak(t *testing.T) {
	g := buildTestCFG(t, `
	for {
		break
	}
`)
	after := oneBlock(t, g, "for.after")
	if !g.Reachable(after) {
		t.Errorf("break must make for.after reachable")
	}
}

func TestCFGRange(t *testing.T) {
	g := buildTestCFG(t, `
	s := 0
	for _, v := range []int{1, 2} {
		s += v
	}
	_ = s
`)
	head := oneBlock(t, g, "range.head")
	body := oneBlock(t, g, "range.body")
	after := oneBlock(t, g, "range.after")
	if !hasEdge(head, body) || !hasEdge(head, after) || !hasEdge(body, head) {
		t.Errorf("range loop wants head -> {body, after} and body -> head")
	}
}

func TestCFGSwitch(t *testing.T) {
	g := buildTestCFG(t, `
	x := 1
	switch x {
	case 1:
		x = 10
	case 2:
		x = 20
	}
	_ = x
`)
	cases := blocksOfKind(g, "switch.case")
	after := oneBlock(t, g, "switch.after")
	if len(cases) != 2 {
		t.Fatalf("want 2 case blocks, got %d", len(cases))
	}
	if !hasEdge(g.Entry, after) {
		t.Errorf("switch without default needs tag -> after edge")
	}
	for i, c := range cases {
		if !hasEdge(g.Entry, c) {
			t.Errorf("tag should branch to case %d", i)
		}
		if !hasEdge(c, after) {
			t.Errorf("case %d should flow to after", i)
		}
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g := buildTestCFG(t, `
	x := 1
	switch x {
	case 1:
		fallthrough
	case 2:
		x = 20
	default:
		x = 0
	}
	_ = x
`)
	cases := blocksOfKind(g, "switch.case")
	def := oneBlock(t, g, "switch.default")
	after := oneBlock(t, g, "switch.after")
	if len(cases) != 2 {
		t.Fatalf("want 2 case blocks, got %d", len(cases))
	}
	if !hasEdge(cases[0], cases[1]) {
		t.Errorf("fallthrough must edge case 1 into case 2's body")
	}
	if hasEdge(cases[0], after) {
		t.Errorf("a case ending in fallthrough must not also flow to after")
	}
	if hasEdge(g.Entry, after) {
		t.Errorf("switch with default must not have tag -> after edge")
	}
	if !hasEdge(def, after) {
		t.Errorf("default should flow to after")
	}
}

func TestCFGSelect(t *testing.T) {
	g := buildTestCFG(t, `
	a := make(chan int)
	b := make(chan int)
	select {
	case <-a:
	case v := <-b:
		_ = v
	default:
	}
`)
	comms := blocksOfKind(g, "select.comm")
	def := oneBlock(t, g, "select.default")
	after := oneBlock(t, g, "select.after")
	if len(comms) != 2 {
		t.Fatalf("want 2 comm blocks, got %d", len(comms))
	}
	for _, c := range comms {
		if !hasEdge(c, after) {
			t.Errorf("comm clause should flow to select.after")
		}
		if len(c.Stmts) == 0 {
			t.Errorf("comm statement should be lowered into its clause block")
		}
	}
	if !hasEdge(def, after) {
		t.Errorf("default clause should flow to select.after")
	}
}

func TestCFGEmptySelectBlocksForever(t *testing.T) {
	g := buildTestCFG(t, `
	select {}
`)
	after := oneBlock(t, g, "select.after")
	if g.Reachable(after) {
		t.Errorf("select {} blocks forever: its after block must be unreachable")
	}
}

func TestCFGGoto(t *testing.T) {
	g := buildTestCFG(t, `
	i := 0
loop:
	i++
	if i < 3 {
		goto loop
	}
	_ = i
`)
	label := oneBlock(t, g, "label.loop")
	// The goto lives in the if.then block and must edge back to the label.
	then := oneBlock(t, g, "if.then")
	if !hasEdge(then, label) {
		t.Errorf("goto loop must edge back to the label block")
	}
	if !g.Reachable(label) {
		t.Errorf("label block should be reachable")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	g := buildTestCFG(t, `
outer:
	for {
		for {
			break outer
		}
	}
`)
	afters := blocksOfKind(g, "for.after")
	if len(afters) != 2 {
		t.Fatalf("want 2 for.after blocks, got %d", len(afters))
	}
	// The outer loop's after must be reachable (via the labeled break);
	// both loops are for {} so nothing else exits.
	reachable := 0
	for _, a := range afters {
		if g.Reachable(a) {
			reachable++
		}
	}
	if reachable != 1 {
		t.Errorf("exactly the outer for.after should be reachable via break outer, got %d reachable", reachable)
	}
	if !g.Reachable(g.Exit) {
		t.Errorf("function exit should be reachable through the labeled break")
	}
}

func TestCFGUnreachableAfterReturn(t *testing.T) {
	g := buildTestCFG(t, `
	x := 1
	if x > 0 {
		return
	}
	return
	_ = x
`)
	dead := blocksOfKind(g, "unreachable")
	if len(dead) == 0 {
		t.Fatalf("statements after return should land in an unreachable block")
	}
	for _, d := range dead {
		if g.Reachable(d) {
			t.Errorf("unreachable block %d is reachable", d.Index)
		}
	}
}

func TestCFGPanicIsTerminal(t *testing.T) {
	g := buildTestCFG(t, `
	panic("no")
	_ = 1
`)
	dead := blocksOfKind(g, "unreachable")
	if len(dead) != 1 {
		t.Fatalf("code after panic should be unreachable, got %d unreachable blocks", len(dead))
	}
	if !hasEdge(g.Entry, g.Exit) {
		t.Errorf("panic should edge to the synthetic exit")
	}
}

func TestCFGDefersCollectedNotEdged(t *testing.T) {
	g := buildTestCFG(t, `
	mu := 0
	defer func() { _ = mu }()
	if mu > 0 {
		return
	}
	defer func() {}()
`)
	if len(g.Defers) != 2 {
		t.Fatalf("want 2 collected defers, got %d", len(g.Defers))
	}
	// Defers are statements in their blocks, not control-flow edges: the
	// block count must be the same as without them (no defer.* kinds).
	for _, b := range g.Blocks {
		if b.Kind == "defer" {
			t.Errorf("defers must not create blocks")
		}
	}
}

func TestCFGExitSingle(t *testing.T) {
	g := buildTestCFG(t, `
	x := 0
	if x > 0 {
		return
	}
	for i := 0; i < 3; i++ {
		x += i
	}
`)
	if g.Exit == nil || g.Exit.Kind != "exit" {
		t.Fatalf("CFG must have the synthetic exit block")
	}
	if len(g.Exit.Preds) < 2 {
		t.Errorf("both the return and the fall-off path should reach exit; preds = %d", len(g.Exit.Preds))
	}
	if len(g.Exit.Succs) != 0 {
		t.Errorf("exit block must have no successors")
	}
}

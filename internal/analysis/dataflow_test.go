package analysis

import (
	"go/ast"
	"testing"
)

// nameSet is the synthetic test lattice: the set of variable names
// assigned so far (a may-analysis, join = union).
type nameSet map[string]bool

type nameLattice struct{}

func (nameLattice) Bottom() nameSet { return nameSet{} }
func (nameLattice) Join(a, b nameSet) nameSet {
	out := make(nameSet, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}
func (nameLattice) Equal(a, b nameSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
func (nameLattice) Clone(a nameSet) nameSet {
	out := make(nameSet, len(a))
	for k := range a {
		out[k] = true
	}
	return out
}

// assignedNames is the test transfer function: record LHS identifiers
// of assignments.
func assignedNames(stmt ast.Stmt, in nameSet) nameSet {
	if as, ok := stmt.(*ast.AssignStmt); ok {
		for _, l := range as.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				in[id.Name] = true
			}
		}
	}
	return in
}

func TestForwardSolveBranchJoin(t *testing.T) {
	g := buildTestCFG(t, `
	a := 1
	if a > 0 {
		b := 2
		_ = b
	} else {
		c := 3
		_ = c
	}
	_ = a
`)
	ins := ForwardSolve[nameSet](g, nameLattice{}, assignedNames, nameSet{})
	after := oneBlock(t, g, "if.after")
	got := ins[after]
	for _, want := range []string{"a", "b", "c"} {
		if !got[want] {
			t.Errorf("if.after IN fact missing %q (may-analysis joins both arms); got %v", want, got)
		}
	}
}

func TestForwardSolveLoopFixpoint(t *testing.T) {
	// The loop body assigns b; the back edge must propagate it into the
	// head's IN fact — that requires a second pass over the head, i.e. a
	// genuine fixpoint, not a single sweep.
	g := buildTestCFG(t, `
	a := 1
	for a < 10 {
		b := a
		a = b + 1
	}
	_ = a
`)
	ins := ForwardSolve[nameSet](g, nameLattice{}, assignedNames, nameSet{})
	head := oneBlock(t, g, "for.head")
	if !ins[head]["b"] {
		t.Errorf("loop head IN fact should include %q via the back edge; got %v", "b", ins[head])
	}
	after := oneBlock(t, g, "for.after")
	for _, want := range []string{"a", "b"} {
		if !ins[after][want] {
			t.Errorf("for.after IN fact missing %q; got %v", want, ins[after])
		}
	}
}

func TestForwardSolveEntrySeed(t *testing.T) {
	g := buildTestCFG(t, `
	x := 1
	_ = x
`)
	ins := ForwardSolve[nameSet](g, nameLattice{}, assignedNames, nameSet{"seed": true})
	if !ins[g.Entry]["seed"] {
		t.Errorf("entry fact should carry the seed")
	}
	if !ins[g.Exit]["seed"] || !ins[g.Exit]["x"] {
		t.Errorf("exit IN fact should carry seed and x; got %v", ins[g.Exit])
	}
}

// intLattice is deliberately unbounded: transfer keeps incrementing, so
// on a cyclic CFG the solver can never stabilize. The maxPasses guard
// must turn that into a panic rather than a hang.
type intLattice struct{}

func (intLattice) Bottom() int { return 0 }
func (intLattice) Join(a, b int) int {
	if a > b {
		return a
	}
	return b
}
func (intLattice) Equal(a, b int) bool { return a == b }
func (intLattice) Clone(a int) int     { return a }

func TestForwardSolveDivergencePanics(t *testing.T) {
	g := buildTestCFG(t, `
	for {
		_ = 1
	}
`)
	defer func() {
		if recover() == nil {
			t.Fatalf("an unbounded lattice on a cyclic CFG must panic, not loop")
		}
	}()
	ForwardSolve[int](g, intLattice{}, func(stmt ast.Stmt, in int) int {
		return in + 1
	}, 0)
}

func TestFoldBlockReplaysStatements(t *testing.T) {
	g := buildTestCFG(t, `
	a := 1
	b := 2
	_ = a
	_ = b
`)
	out := FoldBlock[nameSet](g.Entry, nameLattice{}, assignedNames, nameSet{})
	if !out["a"] || !out["b"] {
		t.Errorf("FoldBlock should apply every statement; got %v", out)
	}
}

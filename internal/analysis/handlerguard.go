package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HandlerGuard enforces the serving tier's request-hygiene contract:
// an HTTP handler must check the request method and the Content-Type
// header before it consumes the request body. Decoding first and
// checking later means a mistyped or cross-origin-form request still
// drains the body and exercises the JSON decoder — the hardened
// decodePost helper exists precisely so handlers never do that, and
// this analyzer keeps future handlers honest.
//
// The check is flow-ordered and interprocedural within a package: a
// handler may delegate both checks and the decode to a helper (the
// decodePost pattern), or perform a check itself and delegate the
// rest; what must never happen is a body read — r.Body, r.ParseForm,
// r.FormValue — on a path where either check has not yet happened.
// Handlers that read no body (GET endpoints like the stats handler)
// only need their method check at the point they branch on it, which
// this analyzer does not second-guess.
var HandlerGuard = &Analyzer{
	Name: "handlerguard",
	Doc:  "HTTP handlers must check method and Content-Type before consuming the request body",
	Run:  runHandlerGuard,
}

// hgEvent is one ordered observation in a handler-shaped function:
// a body access or a call passing the request on, annotated with which
// checks had already happened within this function.
type hgEvent struct {
	node          ast.Node
	callee        types.Object // the forwarded-to function; nil for body accesses
	what          string
	methodChecked bool
	ctChecked     bool
}

// hgFunc summarizes one handler-shaped function or literal.
type hgFunc struct {
	name   string
	node   ast.Node // *ast.FuncDecl or *ast.FuncLit
	root   bool     // signature is exactly func(http.ResponseWriter, *http.Request)
	events []hgEvent
}

func runHandlerGuard(prog *Program, r *Reporter) {
	for _, pkg := range prog.Packages {
		runHandlerGuardPkg(prog, pkg, r)
	}
}

func runHandlerGuardPkg(prog *Program, pkg *Package, r *Reporter) {
	// Collect every handler-shaped function: anything with both an
	// http.ResponseWriter and a *http.Request parameter. Functions and
	// methods are keyed by object so call events can resolve to them.
	byObj := map[types.Object]*hgFunc{}
	var roots []*hgFunc
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return true
				}
				req := requestParam(pkg, n.Type.Params)
				if req == nil {
					// Not handler-shaped itself, but its body may register
					// handler literals (the mux setup) — keep descending.
					return true
				}
				fn := summarizeHandler(pkg, n.Name.Name, n, n.Body, req)
				fn.root = isHandlerSig(pkg, n.Type.Params)
				if obj := pkg.Info.Defs[n.Name]; obj != nil {
					byObj[obj] = fn
				}
				if fn.root {
					roots = append(roots, fn)
				}
			case *ast.FuncLit:
				req := requestParam(pkg, n.Type.Params)
				if req == nil || !isHandlerSig(pkg, n.Type.Params) {
					return true
				}
				roots = append(roots, summarizeHandler(pkg, "handler literal", n, n.Body, req))
				return false
			}
			return true
		})
	}

	type memoKey struct {
		fn    *hgFunc
		m, ct bool
	}
	// hgFailure pins an unguarded path: the event to report at (always
	// one of the queried function's own events) and which checks the
	// failing body access was actually missing — computed at the leaf,
	// so a caller that delegates half the checks is told about the
	// other half only.
	type hgFailure struct {
		ev            *hgEvent
		missM, missCt bool
	}
	memo := map[memoKey]*hgFailure{}
	inProgress := map[memoKey]bool{}
	// firstUnguarded returns the first unguarded body access reachable
	// from fn given the checks already performed by its callers, or nil
	// if every body access is guarded.
	var firstUnguarded func(fn *hgFunc, m, ct bool) *hgFailure
	firstUnguarded = func(fn *hgFunc, m, ct bool) *hgFailure {
		key := memoKey{fn, m, ct}
		if f, ok := memo[key]; ok {
			return f
		}
		if inProgress[key] {
			return nil // recursion: assume guarded rather than loop
		}
		inProgress[key] = true
		defer func() { inProgress[key] = false }()
		for i := range fn.events {
			ev := &fn.events[i]
			em, ect := m || ev.methodChecked, ct || ev.ctChecked
			if ev.callee == nil {
				if !em || !ect {
					f := &hgFailure{ev: ev, missM: !em, missCt: !ect}
					memo[key] = f
					return f
				}
				continue
			}
			callee, ok := byObj[ev.callee]
			if !ok {
				continue
			}
			if sub := firstUnguarded(callee, em, ect); sub != nil {
				f := &hgFailure{ev: ev, missM: sub.missM, missCt: sub.missCt}
				memo[key] = f
				return f
			}
		}
		memo[key] = nil
		return nil
	}

	for _, fn := range roots {
		fail := firstUnguarded(fn, false, false)
		if fail == nil {
			continue
		}
		var missing []string
		if fail.missM {
			missing = append(missing, "method")
		}
		if fail.missCt {
			missing = append(missing, "Content-Type")
		}
		r.Reportf(fail.ev.node.Pos(), "%s %s before checking %s", fn.name, fail.ev.what, strings.Join(missing, " and "))
	}
}

// requestParam returns the *http.Request parameter's object if params
// also include an http.ResponseWriter, else nil.
func requestParam(pkg *Package, params *ast.FieldList) *types.Var {
	if params == nil {
		return nil
	}
	var req *types.Var
	hasWriter := false
	for _, f := range params.List {
		for _, name := range f.Names {
			v, ok := pkg.Info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if isNamedType(v.Type(), "net/http", "ResponseWriter") {
				hasWriter = true
			}
			if p, ok := v.Type().(*types.Pointer); ok && isNamedType(p.Elem(), "net/http", "Request") {
				req = v
			}
		}
	}
	if !hasWriter {
		return nil
	}
	return req
}

// isHandlerSig reports whether params is exactly
// (http.ResponseWriter, *http.Request) — the http.HandlerFunc shape.
func isHandlerSig(pkg *Package, params *ast.FieldList) bool {
	if params == nil || params.NumFields() != 2 {
		return false
	}
	return requestParam(pkg, params) != nil
}

// summarizeHandler walks body in source order tracking the checks
// performed on req and recording body accesses and same-package calls
// that forward req. Nested function literals are skipped: code in them
// runs outside the handler's request path (and handler-shaped literals
// are analyzed as roots of their own).
func summarizeHandler(pkg *Package, name string, node ast.Node, body *ast.BlockStmt, req *types.Var) *hgFunc {
	fn := &hgFunc{name: name, node: node}
	methodChecked, ctChecked := false, false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return n == node
		case *ast.SelectorExpr:
			id, ok := ast.Unparen(n.X).(*ast.Ident)
			if !ok || pkg.Info.Uses[id] != req {
				return true
			}
			switch n.Sel.Name {
			case "Method":
				methodChecked = true
			case "Body":
				fn.events = append(fn.events, hgEvent{node: n, what: "reads the request body", methodChecked: methodChecked, ctChecked: ctChecked})
			case "ParseForm", "ParseMultipartForm", "FormValue", "PostFormValue", "FormFile", "MultipartReader":
				fn.events = append(fn.events, hgEvent{node: n, what: "parses the request form", methodChecked: methodChecked, ctChecked: ctChecked})
			}
		case *ast.CallExpr:
			if isContentTypeRead(pkg, n, req) {
				ctChecked = true
				return true
			}
			callee := funcObj(pkg.Info, n)
			if callee == nil || callee.Pkg() != pkg.Types {
				return true
			}
			for _, arg := range n.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pkg.Info.Uses[id] == req {
					fn.events = append(fn.events, hgEvent{node: n, callee: callee, what: "forwards the request to " + callee.Name(), methodChecked: methodChecked, ctChecked: ctChecked})
					break
				}
			}
		}
		return true
	})
	return fn
}

// isContentTypeRead reports whether call reads the Content-Type header
// of req: req.Header.Get("Content-Type") or any call on req.Header
// with a "Content-Type" literal argument.
func isContentTypeRead(pkg *Package, call *ast.CallExpr, req *types.Var) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	hdr, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || hdr.Sel.Name != "Header" {
		return false
	}
	id, ok := ast.Unparen(hdr.X).(*ast.Ident)
	if !ok || pkg.Info.Uses[id] != req {
		return false
	}
	for _, arg := range call.Args {
		if lit, ok := ast.Unparen(arg).(*ast.BasicLit); ok && strings.Trim(lit.Value, `"`) == "Content-Type" {
			return true
		}
	}
	return false
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// LockOrder enforces a declared lock hierarchy with a may-hold-set
// dataflow over each function's CFG. The hierarchy is declared in
// source, on the mutex declarations themselves:
//
//	adminMu sync.Mutex //hsd:lockrank adminMu 10
//
// Lower rank = acquired earlier (outermost). Acquiring a ranked lock
// while any ranked lock of a *higher* rank may be held inverts the
// hierarchy and is reported, with the full acquisition chain when the
// inner acquisition happens in a callee (summaries are interprocedural
// within a package, walked to fixpoint like tunegate's exposure).
// Re-acquiring a lock that may already be held is reported too (plain
// Mutex self-deadlock); a repeated RLock is tolerated.
//
// Only annotated locks participate: the analyzer is a hierarchy
// checker, not a general deadlock prover. Unlock/RUnlock remove from
// the may-hold set; a deferred Unlock holds to function exit, which is
// exactly the conservative answer a may-analysis wants.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "ranked locks (//hsd:lockrank) must be acquired in declared order",
	Flow: true,
	Run:  runLockOrder,
}

const lockRankDirective = "hsd:lockrank"

// rankedLock is one annotated mutex (package var or struct field).
type rankedLock struct {
	name string
	rank int
}

// lockRanks collects every //hsd:lockrank-annotated declaration in the
// program: package-level vars and struct fields.
func lockRanks(prog *Program, r *Reporter) map[types.Object]rankedLock {
	ranks := map[types.Object]rankedLock{}
	record := func(cg *ast.CommentGroup, objs ...types.Object) {
		if cg == nil {
			return
		}
		for _, c := range cg.List {
			body, ok := directiveBody(c.Text, lockRankDirective)
			if !ok {
				continue
			}
			fields := strings.Fields(body)
			if len(fields) != 2 {
				r.Reportf(c.Pos(), "malformed %s directive: want `//%s <name> <rank>`", lockRankDirective, lockRankDirective)
				continue
			}
			rank, err := strconv.Atoi(fields[1])
			if err != nil {
				r.Reportf(c.Pos(), "malformed %s rank %q: %v", lockRankDirective, fields[1], err)
				continue
			}
			for _, obj := range objs {
				if obj != nil {
					ranks[obj] = rankedLock{name: fields[0], rank: rank}
				}
			}
		}
	}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ValueSpec:
					var objs []types.Object
					for _, name := range n.Names {
						objs = append(objs, pkg.Info.Defs[name])
					}
					record(n.Doc, objs...)
					record(n.Comment, objs...)
				case *ast.Field:
					var objs []types.Object
					for _, name := range n.Names {
						objs = append(objs, pkg.Info.Defs[name])
					}
					record(n.Doc, objs...)
					record(n.Comment, objs...)
				}
				return true
			})
		}
	}
	return ranks
}

// lockOpKind classifies a mutex method call.
type lockOpKind int

const (
	lockAcquire lockOpKind = iota
	lockAcquireRead
	lockRelease
	lockReleaseRead
)

// lockOp resolves call to (ranked lock object, operation) if it is a
// Lock/RLock/TryLock/Unlock/RUnlock on an annotated mutex.
func lockOp(info *types.Info, ranks map[types.Object]rankedLock, call *ast.CallExpr) (types.Object, lockOpKind, bool) {
	recv, name := recvOf(call)
	if recv == nil {
		return nil, 0, false
	}
	var op lockOpKind
	switch name {
	case "Lock", "TryLock":
		op = lockAcquire
	case "RLock", "TryRLock":
		op = lockAcquireRead
	case "Unlock":
		op = lockRelease
	case "RUnlock":
		op = lockReleaseRead
	default:
		return nil, 0, false
	}
	obj := terminalObj(info, recv)
	if obj == nil {
		return nil, 0, false
	}
	if _, ok := ranks[obj]; !ok {
		return nil, 0, false
	}
	return obj, op, true
}

// holdSet is the dataflow fact: may-held ranked locks → mode bits.
type holdSet map[types.Object]uint8

const (
	holdRead  uint8 = 1
	holdWrite uint8 = 2
)

type holdLattice struct{}

func (holdLattice) Bottom() holdSet { return holdSet{} }
func (holdLattice) Join(a, b holdSet) holdSet {
	out := make(holdSet, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] |= v
	}
	return out
}
func (holdLattice) Equal(a, b holdSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
func (holdLattice) Clone(a holdSet) holdSet {
	out := make(holdSet, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// loSummary is one function's interprocedural summary: the ranked locks
// it may acquire (directly or transitively) and, per lock, the call
// chain that first reaches the acquisition.
type loSummary map[types.Object][]string

func runLockOrder(prog *Program, r *Reporter) {
	ranks := lockRanks(prog, r)
	if len(ranks) == 0 {
		return
	}
	for _, pkg := range prog.Packages {
		runLockOrderPkg(prog, pkg, ranks, r)
	}
}

func runLockOrderPkg(prog *Program, pkg *Package, ranks map[types.Object]rankedLock, r *Reporter) {
	funcs := pkg.FuncDecls()

	// Direct acquisitions per function (ignoring nested function
	// literals: a closure runs on its own schedule).
	direct := map[types.Object]loSummary{}
	calls := map[types.Object][]types.Object{}
	for obj, fd := range funcs {
		s := loSummary{}
		walkBodyCalls(fd.Body, func(call *ast.CallExpr) {
			if lock, op, ok := lockOp(pkg.Info, ranks, call); ok {
				if op == lockAcquire || op == lockAcquireRead {
					if _, seen := s[lock]; !seen {
						s[lock] = []string{fd.Name.Name}
					}
				}
				return
			}
			if callee := funcObj(pkg.Info, call); callee != nil && callee.Pkg() == pkg.Types {
				calls[obj] = append(calls[obj], callee)
			}
		})
		direct[obj] = s
	}

	// Fixpoint: fold callee summaries (and their chains) into callers.
	sums := map[types.Object]loSummary{}
	for obj, s := range direct {
		c := loSummary{}
		for l, chain := range s {
			c[l] = chain
		}
		sums[obj] = c
	}
	for changed := true; changed; {
		changed = false
		for obj := range funcs {
			for _, callee := range calls[obj] {
				cs, ok := sums[callee]
				if !ok {
					continue
				}
				for l, chain := range cs {
					if _, seen := sums[obj][l]; !seen {
						sums[obj][l] = append([]string{funcs[obj].Name.Name}, chain...)
						changed = true
					}
				}
			}
		}
	}

	lat := holdLattice{}
	for _, fd := range funcs {
		g := prog.CFGOf(fd)
		tr := func(stmt ast.Stmt, in holdSet) holdSet {
			walkStmtCalls(stmt, func(call *ast.CallExpr) {
				lock, op, ok := lockOp(pkg.Info, ranks, call)
				if !ok {
					return
				}
				switch op {
				case lockAcquire:
					in[lock] |= holdWrite
				case lockAcquireRead:
					in[lock] |= holdRead
				case lockRelease, lockReleaseRead:
					delete(in, lock)
				}
			})
			return in
		}
		ins := ForwardSolve(g, lat, tr, holdSet{})

		// Reporting pass: replay each block from its stable IN fact,
		// checking every acquisition and every same-package call against
		// the may-hold set at that point.
		reported := map[string]bool{}
		report := func(pos token.Pos, format string, args ...any) {
			msg := fmt.Sprintf(format, args...)
			key := fmt.Sprintf("%d:%s", pos, msg)
			if !reported[key] {
				reported[key] = true
				r.Reportf(pos, "%s", msg)
			}
		}
		for _, b := range g.Blocks {
			if !g.Reachable(b) {
				continue
			}
			held := lat.Clone(ins[b])
			for _, stmt := range b.Stmts {
				walkStmtCalls(stmt, func(call *ast.CallExpr) {
					if lock, op, ok := lockOp(pkg.Info, ranks, call); ok {
						switch op {
						case lockAcquire, lockAcquireRead:
							rl := ranks[lock]
							for h, mode := range held {
								hr := ranks[h]
								if h == lock {
									if op == lockAcquireRead && mode == holdRead {
										continue // repeated RLock: legal
									}
									report(call.Pos(), "reacquiring %s (rank %d) while it may already be held: self-deadlock", rl.name, rl.rank)
									continue
								}
								if hr.rank > rl.rank {
									report(call.Pos(), "acquiring %s (rank %d) while holding %s (rank %d): the declared hierarchy wants %s before %s",
										rl.name, rl.rank, hr.name, hr.rank, rl.name, hr.name)
								} else if hr.rank == rl.rank {
									report(call.Pos(), "acquiring %s while holding %s: equal rank %d gives no safe order between them",
										rl.name, hr.name, rl.rank)
								}
							}
							switch op {
							case lockAcquire:
								held[lock] |= holdWrite
							case lockAcquireRead:
								held[lock] |= holdRead
							}
						case lockRelease, lockReleaseRead:
							delete(held, lock)
						}
						return
					}
					callee := funcObj(pkg.Info, call)
					if callee == nil || callee.Pkg() != pkg.Types {
						return
					}
					cs, ok := sums[callee]
					if !ok || len(cs) == 0 || len(held) == 0 {
						return
					}
					for l, chain := range cs {
						rl := ranks[l]
						for h := range held {
							if h == l {
								// The callee re-acquiring a held lock is a
								// real deadlock too, but without callee-side
								// context the direct re-acquire check above
								// is the authoritative report; stay silent
								// unless ranks also invert.
								continue
							}
							hr := ranks[h]
							if hr.rank > rl.rank {
								report(call.Pos(), "call acquires %s (rank %d) while holding %s (rank %d); acquisition chain: %s",
									rl.name, rl.rank, hr.name, hr.rank, strings.Join(append(chain, rl.name), " -> "))
							}
						}
					}
				})
			}
		}
	}
}

// walkBodyCalls visits every call expression in a function body in
// source order, skipping nested function literals (their bodies run on
// their own goroutine/schedule, not inline).
func walkBodyCalls(body *ast.BlockStmt, visit func(*ast.CallExpr)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			visit(n)
		}
		return true
	})
}

// walkStmtCalls is walkBodyCalls for one statement, additionally
// skipping defer statements: a deferred Unlock runs at exit, so it must
// not clear the may-hold set mid-body, and a deferred acquisition is
// not an acquisition at this program point.
func walkStmtCalls(stmt ast.Stmt, visit func(*ast.CallExpr)) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			visit(n)
		}
		return true
	})
}


// Package tunegate is the tunegate analyzer corpus: a miniature of the
// kernel package's gate/profile-state shape. Lines with trailing
// "want" comments expect a finding whose message matches the pattern.
package tunegate

//hsd:profile-state
var (
	kc = 256
	mc = 128
)

//hsd:profile-state
var minFlops = 32 * 32 * 32

// untracked is not profile state: reading it needs no gate.
var untracked = 7

var tuned bool

func ensureTuned() { tuned = true }

// Gated reads profile state behind the gate: clean.
func Gated() int {
	ensureTuned()
	return kc * mc
}

// Ungated reads profile state with no gate at all.
func Ungated() int { // want `exported function Ungated reads kc`
	return kc
}

// LateGate reads minFlops before its gate runs.
func LateGate() int { // want `exported function LateGate reads minFlops`
	v := minFlops
	ensureTuned()
	return v
}

// CondGate only gates on one path; a conditional gate is no gate.
func CondGate(deep bool) int { // want `exported function CondGate reads kc`
	if deep {
		ensureTuned()
	}
	return kc
}

// reader is unexported; its exposure matters only to its callers.
func reader() int { return mc }

// Transitive reaches profile state through an ungated helper.
func Transitive() int { // want `exported function Transitive calls reader`
	return reader()
}

// GatedTransitive gates before the helper call: clean.
func GatedTransitive() int {
	ensureTuned()
	return reader()
}

// ViaGated calls a function that gates itself, so no local gate is
// needed: clean (the false-positive guard for the Trsm-over-Gemm
// shape).
func ViaGated() int {
	return Gated()
}

// GateAfterValidation runs profile-free validation before the gate,
// like SharedBPanel.Gemm's nil fast path: clean.
func GateAfterValidation(n int) int {
	if n < 0 {
		panic("bad n")
	}
	ensureTuned()
	return kc * n
}

// ReadsUntracked touches only unmarked package state: clean.
func ReadsUntracked() int {
	return untracked
}

// Allowed is an intentional ungated read, suppressed by pragma.
//
//hsd:allow tunegate boot-time introspection that runs before any kernel dispatch
func Allowed() int {
	return mc
}

// Package atomicfield is the atomicfield analyzer corpus: memory
// touched through sync/atomic anywhere must never be accessed plainly
// elsewhere.
package atomicfield

import "sync/atomic"

type counter struct {
	n    int32
	cold int32
}

func bump(c *counter) {
	atomic.AddInt32(&c.n, 1)
}

func read(c *counter) int32 {
	return atomic.LoadInt32(&c.n)
}

func plainRead(c *counter) int32 {
	return c.n // want `plain access to n, which is accessed via sync/atomic`
}

func plainWrite(c *counter) {
	c.n = 0 // want `plain access to n`
}

// cold is never touched atomically: plain access is fine.
func coldAccess(c *counter) int32 {
	return c.cold
}

var hits int64

func observe() {
	atomic.AddInt64(&hits, 1)
}

func reset() {
	hits = 0 // want `plain access to hits`
}

// allowedInit is the sanctioned init-before-publication pattern.
func allowedInit(c *counter) {
	//hsd:allow atomicfield c is freshly allocated and still goroutine-local here
	c.n = 0
}

// typedCounter uses the typed wrapper, whose methods make plain access
// impossible — nothing for the analyzer to track.
type typedCounter struct{ n atomic.Int32 }

func bumpTyped(c *typedCounter) int32 {
	return c.n.Add(1)
}

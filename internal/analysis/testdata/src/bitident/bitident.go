// Package bitident is the bitident analyzer corpus: functions marked
// //hsd:bitident must avoid FMA, float equality and fused-multiply
// accumulation; unmarked functions may do anything.
package bitident

import "math"

//hsd:bitident
func usesFMA(a, b, c []float64) {
	for i := range a {
		a[i] = math.FMA(b[i], c[i], a[i]) // want `math.FMA in bit-identity function usesFMA`
	}
}

//hsd:bitident
func cmpEq(x, y float64) bool {
	return x == y // want `float == comparison in bit-identity function cmpEq`
}

//hsd:bitident
func cmpNeq(x, y float64) bool {
	return x != y // want `float != comparison in bit-identity function cmpNeq`
}

// allowedCmp carries the sanctioned exact-zero idiom.
//
//hsd:bitident
func allowedCmp(x float64) bool {
	//hsd:allow bitident exact-zero test mirrors the kernel's singularity check
	return x == 0
}

//hsd:bitident
func fusedAccum(c, a, b []float64, u, v float64) {
	for i := range c {
		c[i] -= a[i]*u + b[i]*v // want `fused multiply-accumulate idiom in bit-identity function fusedAccum`
	}
}

// blessed is the contract's canonical form — one product per
// statement, compound-assignment subtract: clean.
//
//hsd:bitident
func blessed(c, l []float64, u float64) {
	for i := range c {
		c[i] -= l[i] * u
	}
}

// intIndexMath multiplies integers inside an index expression; integer
// arithmetic is not a rounding hazard: clean.
//
//hsd:bitident
func intIndexMath(c []float64, jr, w, pnr int) float64 {
	return c[(jr/pnr)*w*pnr+1]
}

// singleProductSum has one product and one add — the multiply rounds,
// then the add rounds, exactly like the reference: clean.
//
//hsd:bitident
func singleProductSum(x, y, z float64) float64 {
	return z + x*y
}

// unmarked is outside the region: FMA and float == are fine here.
func unmarked(x, y float64) bool {
	return math.FMA(x, y, 1) == 0
}

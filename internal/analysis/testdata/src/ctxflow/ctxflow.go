// Package ctxflow is the ctxflow analyzer corpus: context threading
// and fresh-root discipline. Lines with trailing "want" comments expect
// a finding whose message matches the pattern.
package ctxflow

import (
	"context"
	"time"
)

func callee(ctx context.Context) {}

func calleeTwo(ctx context.Context, n int) int { return n }

// Threads passes the parameter straight through: clean.
func Threads(ctx context.Context) {
	callee(ctx)
}

// Derives passes contexts built from the parameter: clean.
func Derives(ctx context.Context) {
	ctx2, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	callee(ctx2)
	calleeTwo(context.WithValue(ctx, struct{}{}, 1), 7)
}

// FreshInsteadOfParam drops the caller's context on the floor.
func FreshInsteadOfParam(ctx context.Context) {
	callee(context.Background()) // want `context.Background\(\) passed to a callee while FreshInsteadOfParam already has a ctx parameter`
}

// FreshWithoutParam has no ctx to thread, which is exactly the problem:
// it should accept one.
func FreshWithoutParam() {
	callee(context.TODO()) // want `context.TODO\(\) in call position outside package main`
}

// Rebind demonstrates the flow sensitivity: c is underived until it is
// reassigned from the parameter. (The TODO in an assignment is not call
// position; the damage shows up where c is passed on.)
func Rebind(ctx context.Context) {
	c := context.TODO()
	callee(c) // want `ctx argument is not derived from Rebind's ctx parameter`
	c = ctx
	callee(c)
}

// Suppressed is the pragma-silenced twin of FreshInsteadOfParam: a
// deliberate fresh root.
func Suppressed(ctx context.Context) {
	callee(context.Background()) //hsd:allow ctxflow corpus twin: detached audit write
}

// NonCtxArgsIgnored: only context-typed parameter positions are
// policed.
func NonCtxArgsIgnored(ctx context.Context) int {
	return calleeTwo(ctx, 42)
}

// Package goloop is the goloop analyzer corpus: goroutine launches
// with and without visible termination evidence. Lines with trailing
// "want" comments expect a finding whose message matches the pattern.
package goloop

import (
	"context"
	"sync"
)

type pump struct {
	stop chan struct{}
	wg   sync.WaitGroup
}

// loopOnStop selects on the stop channel: termination evidence.
func (p *pump) loopOnStop() {
	for {
		select {
		case <-p.stop:
			return
		default:
		}
	}
}

// spin has no shutdown path at all.
func spin() {
	for {
	}
}

// LaunchMethod launches a same-package method whose body selects on
// stop: clean.
func LaunchMethod(p *pump) {
	go p.loopOnStop()
}

// LaunchSpin launches a loop nothing can stop.
func LaunchSpin() {
	go spin() // want `goroutine has no visible termination`
}

// LaunchLiteralSpin: the same leak, inline.
func LaunchLiteralSpin() {
	go func() { // want `goroutine has no visible termination`
		for {
		}
	}()
}

// CtxDone: receiving from ctx.Done() is termination evidence.
func CtxDone(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// WaitGroupJoin: a deferred wg.Done means a joiner exists.
func WaitGroupJoin(p *pump) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for i := 0; i < 10; i++ {
		}
	}()
	p.wg.Wait()
}

// ChannelJoin: the goroutine sends on a channel the launcher receives
// from — the classic errc handoff.
func ChannelJoin() error {
	errc := make(chan error, 1)
	go func() {
		errc <- nil
	}()
	return <-errc
}

// RangeOverChannel: the loop ends when the channel closes, so the
// goroutine's lifetime is the channel's.
func RangeOverChannel(jobs chan int) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

// OpaqueValue launches through a function value with no shutdown signal
// in sight: the analyzer cannot see a body and the call passes nothing
// that could stop it.
func OpaqueValue(fn func()) {
	go fn() // want `goroutine has no visible termination`
}

// OpaqueWithCtx passes a ctx to the opaque launch: benefit of the
// doubt.
func OpaqueWithCtx(ctx context.Context, fn func(context.Context)) {
	go fn(ctx)
}

// OpaqueWithStopChan passes a stop-named channel: same.
func OpaqueWithStopChan(fn func(chan struct{}), stop chan struct{}) {
	go fn(stop)
}

// Suppressed is the pragma-silenced twin of LaunchSpin: a deliberate
// run-forever goroutine.
func Suppressed() {
	go spin() //hsd:allow goloop corpus twin: process-lifetime goroutine
}

// OneHop: the launched function's termination evidence lives one
// same-package call deep.
func OneHop(p *pump) {
	go runPump(p)
}

func runPump(p *pump) {
	p.loopOnStop()
}

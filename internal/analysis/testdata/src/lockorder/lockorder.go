// Package lockorder is the lockorder analyzer corpus: a miniature of
// the cluster router's ranked-mutex hierarchy. Lines with trailing
// "want" comments expect a finding whose message matches the pattern.
package lockorder

import "sync"

var (
	outerMu sync.Mutex //hsd:lockrank outer 10
	innerMu sync.Mutex //hsd:lockrank inner 20
)

// twinA and twinB share a rank: there is no safe order between them.
var (
	twinA sync.Mutex //hsd:lockrank twinA 40
	twinB sync.Mutex //hsd:lockrank twinB 40
)

type box struct {
	mu sync.RWMutex //hsd:lockrank box.mu 30
	n  int
}

// unranked mutexes are invisible to the analyzer.
var plainMu sync.Mutex

// InOrder acquires outer before inner: the declared order.
func InOrder() {
	outerMu.Lock()
	innerMu.Lock()
	innerMu.Unlock()
	outerMu.Unlock()
}

// Inverted acquires inner first, then outer: hierarchy inversion.
func Inverted() {
	innerMu.Lock()
	outerMu.Lock() // want `acquiring outer \(rank 10\) while holding inner \(rank 20\)`
	outerMu.Unlock()
	innerMu.Unlock()
}

// ReleasedFirst drops inner before taking outer: clean, the flow
// analysis must see the Unlock.
func ReleasedFirst() {
	innerMu.Lock()
	innerMu.Unlock()
	outerMu.Lock()
	outerMu.Unlock()
}

// MayHold locks inner on only one branch; the join keeps it in the
// may-hold set, so the later outer acquisition is still an inversion.
func MayHold(cond bool) {
	if cond {
		innerMu.Lock()
	}
	outerMu.Lock() // want `acquiring outer \(rank 10\) while holding inner \(rank 20\)`
	outerMu.Unlock()
	if cond {
		innerMu.Unlock()
	}
}

// DeferHolds: a deferred Unlock holds the lock to function exit, so the
// inversion below it is real.
func DeferHolds() {
	innerMu.Lock()
	defer innerMu.Unlock()
	outerMu.Lock() // want `acquiring outer \(rank 10\) while holding inner \(rank 20\)`
	outerMu.Unlock()
}

// Reacquire deadlocks a plain Mutex on itself.
func Reacquire() {
	outerMu.Lock()
	outerMu.Lock() // want `reacquiring outer \(rank 10\)`
	outerMu.Unlock()
	outerMu.Unlock()
}

// SharedRead: repeated RLock on an RWMutex is legal.
func SharedRead(b *box) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return sharedReadAgain(b)
}

func sharedReadAgain(b *box) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.n
}

// WriteWhileRead upgrades an RLock in place: self-deadlock.
func WriteWhileRead(b *box) {
	b.mu.RLock()
	b.mu.Lock() // want `reacquiring box.mu \(rank 30\)`
	b.mu.Unlock()
	b.mu.RUnlock()
}

// EqualRank: no safe order exists between same-rank locks.
func EqualRank() {
	twinA.Lock()
	twinB.Lock() // want `acquiring twinB while holding twinA: equal rank 40`
	twinB.Unlock()
	twinA.Unlock()
}

// lockOuter is the callee of the interprocedural case.
func lockOuter() {
	outerMu.Lock()
	outerMu.Unlock()
}

// ViaCallee inverts the hierarchy one call deep: the summary carries
// the acquisition chain.
func ViaCallee() {
	innerMu.Lock()
	lockOuter() // want `call acquires outer \(rank 10\) while holding inner \(rank 20\); acquisition chain: lockOuter -> outer`
	innerMu.Unlock()
}

// ViaCalleeClean holds only the lower rank at the call: fine.
func ViaCalleeClean() {
	outerMu.Lock()
	lockInner()
	outerMu.Unlock()
}

func lockInner() {
	innerMu.Lock()
	innerMu.Unlock()
}

// Unranked locks never participate.
func UnrankedIgnored() {
	innerMu.Lock()
	plainMu.Lock()
	plainMu.Unlock()
	innerMu.Unlock()
}

// Suppressed is the pragma-silenced twin of Inverted.
func Suppressed() {
	innerMu.Lock()
	outerMu.Lock() //hsd:allow lockorder corpus twin: deliberate inversion
	outerMu.Unlock()
	innerMu.Unlock()
}

// ClosureIsNotInline: a locked closure body does not leak into the
// enclosing function's may-hold set.
func ClosureIsNotInline() func() {
	fn := func() {
		innerMu.Lock()
		innerMu.Unlock()
	}
	outerMu.Lock()
	outerMu.Unlock()
	return fn
}

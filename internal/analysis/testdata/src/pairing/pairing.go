// Package pairing is the pairing analyzer corpus: Reserve results need
// Release on every exit path, and ResetDeps on a panel-carrying graph
// needs ReleasePanels in the same function unless the graph is owned
// elsewhere.
package pairing

// Reservation mimics kernel.Reservation.
type Reservation struct{ slots int }

func (r *Reservation) Release() {}

func (r *Reservation) Slice(i int) []float64 { return nil }

// Reserve mimics kernel.Reserve.
func Reserve(n int) *Reservation { return &Reservation{slots: n} }

func discarded() {
	Reserve(3) // want `result of pairing.Reserve discarded`
}

func blanked() {
	_ = Reserve(3) // want `result of pairing.Reserve discarded`
}

// deferred is the canonical safe form, covering panics too: clean.
func deferred() {
	ws := Reserve(2)
	defer ws.Release()
	_ = ws.Slice(0)
}

// chained acquires and defers the release in one statement: clean.
func chained() {
	defer Reserve(1).Release()
}

// linear releases on the only path: clean.
func linear() {
	ws := Reserve(2)
	_ = ws.Slice(0)
	ws.Release()
}

func earlyReturn(fail bool) {
	ws := Reserve(2)
	if fail {
		return // want `return without releasing ws`
	}
	ws.Release()
}

// branchesCovered releases on both the early-out and the main path:
// clean.
func branchesCovered(fail bool) {
	ws := Reserve(2)
	if fail {
		ws.Release()
		return
	}
	_ = ws.Slice(0)
	ws.Release()
}

func fallThrough() {
	ws := Reserve(2) // want `pairing.Reserve acquired into ws is not released on the fall-through path`
	_ = ws.Slice(0)
}

type holder struct{ ws *Reservation }

// escapeField hands ownership to the holder, whose lifecycle releases
// (the rt/engine pattern): clean.
func escapeField(h *holder) {
	h.ws = Reserve(2)
}

// escapeReturn hands the reservation to the caller: clean.
func escapeReturn() *Reservation {
	return Reserve(2)
}

// escapeVar hands the reservation to the caller via a local: clean.
func escapeVar() *Reservation {
	ws := Reserve(2)
	return ws
}

// escapeArg passes the reservation on; the recipient owns it: clean.
func escapeArg() {
	ws := Reserve(2)
	adopt(ws)
}

func adopt(ws *Reservation) {}

// allowedLeak is an intentional process-lifetime reservation.
func allowedLeak() {
	//hsd:allow pairing process-lifetime reservation, reclaimed by the OS at exit
	ws := Reserve(1)
	_ = ws.Slice(0)
}

// ---------------------------------------------------------------------
// ResetDeps / ReleasePanels.

// Graph mimics dag.Graph's panel-carrying surface.
type Graph struct{ armed bool }

func (g *Graph) ResetDeps()     { g.armed = true }
func (g *Graph) ReleasePanels() {}

// PlainGraph carries no panels; ResetDeps alone is fine.
type PlainGraph struct{ armed bool }

func (g *PlainGraph) ResetDeps() { g.armed = true }

func localLeak() {
	g := &Graph{}
	g.ResetDeps() // want `g.ResetDeps\(\) arms shared panels but g.ReleasePanels\(\) is not called`
}

// localPaired defers the panel release: clean.
func localPaired() {
	g := &Graph{}
	g.ResetDeps()
	defer g.ReleasePanels()
}

// paramOwned was handed the graph; the caller owns reclamation (the
// rt.Run shape): clean.
func paramOwned(g *Graph) {
	g.ResetDeps()
}

type engine struct{ g *Graph }

// fieldOwned arms a graph held in a struct field; the owner's
// lifecycle releases (the executor's Wait): clean.
func (e *engine) fieldOwned() {
	e.g.ResetDeps()
}

// plainOK arms a graph with no panels to release: clean.
func plainOK() {
	g := &PlainGraph{}
	g.ResetDeps()
}

// Package errstatus is the errstatus analyzer corpus: error testing
// discipline and the status-mapping table. Lines with trailing "want"
// comments expect a finding whose message matches the pattern.
package errstatus

import (
	"errors"
	"net/http"
)

// ErrGone is a sentinel; code paths wrap it, so == misses it.
var ErrGone = errors.New("gone")

// codeError is a typed error carried through wrapping.
type codeError struct{ code int }

func (e *codeError) Error() string { return "code error" }

// SentinelCompare tests a sentinel with ==.
func SentinelCompare(err error) bool {
	if err == ErrGone { // want `comparing errors with == misses wrapped errors: use errors.Is`
		return true
	}
	return false
}

// SentinelNotEqual is the != spelling of the same mistake.
func SentinelNotEqual(err error) bool {
	return err != ErrGone // want `comparing errors with != misses wrapped errors: use errors.Is`
}

// NilCompare is idiomatic and stays silent.
func NilCompare(err error) bool {
	return err == nil
}

// UsesIs is the correct form.
func UsesIs(err error) bool {
	return errors.Is(err, ErrGone)
}

// DirectAssert type-asserts an error.
func DirectAssert(err error) int {
	if ce, ok := err.(*codeError); ok { // want `type-asserting an error misses wrapped errors: use errors.As`
		return ce.code
	}
	return 0
}

// UsesAs is the correct form.
func UsesAs(err error) int {
	var ce *codeError
	if errors.As(err, &ce) {
		return ce.code
	}
	return 0
}

// TypeSwitchIsIdiomatic: a type switch over an error is left alone
// (it reads as dispatch, not sentinel matching).
func TypeSwitchIsIdiomatic(err error) int {
	switch e := err.(type) {
	case *codeError:
		return e.code
	default:
		return 0
	}
}

// Suppressed is the pragma-silenced twin of SentinelCompare: identity
// comparison on purpose.
func Suppressed(err error) bool {
	return err == ErrGone //hsd:allow errstatus corpus twin: identity check is intended
}

// statusOf is this package's error-to-status table: the one place
// errors become HTTP statuses.
//
//hsd:statusmap
func statusOf(w http.ResponseWriter, err error) {
	var ce *codeError
	if errors.As(err, &ce) {
		w.WriteHeader(http.StatusUnprocessableEntity)
		return
	}
	if errors.Is(err, ErrGone) {
		w.WriteHeader(http.StatusGone)
		return
	}
	w.WriteHeader(http.StatusInternalServerError)
}

// InlineMapping maps an error to a status outside the table.
func InlineMapping(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrGone) {
		w.WriteHeader(http.StatusGone) // want `inline error-to-status mapping \(410\) outside the //hsd:statusmap table`
		return
	}
	statusOf(w, err)
}

// InlineHelperMapping routes the status through a helper that takes the
// ResponseWriter: still an inline mapping.
func InlineHelperMapping(w http.ResponseWriter, err error) {
	var ce *codeError
	if errors.As(err, &ce) {
		reply(w, http.StatusBadRequest, "bad") // want `inline error-to-status mapping \(400\) outside the //hsd:statusmap table`
		return
	}
	statusOf(w, err)
}

func reply(w http.ResponseWriter, status int, msg string) {
	w.WriteHeader(status)
	w.Write([]byte(msg))
}

// SuccessPathsUntouched: writing 2xx in an error-free branch is fine,
// and error branches that don't write a status are fine too.
func SuccessPathsUntouched(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrGone) {
		return
	}
	w.WriteHeader(http.StatusOK)
}

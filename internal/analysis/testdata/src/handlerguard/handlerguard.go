// Package handlerguard is the handlerguard analyzer corpus: handlers
// must check the request method and Content-Type before consuming the
// body, possibly by delegating to a helper that does.
package handlerguard

import (
	"encoding/json"
	"io"
	"net/http"
)

func naked(w http.ResponseWriter, r *http.Request) {
	var v any
	json.NewDecoder(r.Body).Decode(&v) // want `naked reads the request body before checking method and Content-Type`
	w.WriteHeader(http.StatusOK)
}

func methodOnly(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	io.Copy(io.Discard, r.Body) // want `methodOnly reads the request body before checking Content-Type`
}

func formWithoutChecks(w http.ResponseWriter, r *http.Request) {
	_ = r.FormValue("q") // want `formWithoutChecks parses the request form before checking method and Content-Type`
}

// guarded performs both checks inline before decoding: clean.
func guarded(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	if r.Header.Get("Content-Type") != "application/json" {
		w.WriteHeader(http.StatusUnsupportedMediaType)
		return
	}
	var v any
	json.NewDecoder(r.Body).Decode(&v)
}

// decode is the decodePost pattern: a non-handler helper that enforces
// method and Content-Type itself before touching the body.
func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return false
	}
	if r.Header.Get("Content-Type") != "application/json" {
		w.WriteHeader(http.StatusUnsupportedMediaType)
		return false
	}
	return json.NewDecoder(r.Body).Decode(dst) == nil
}

// delegating leaves everything to the guarded helper: clean.
func delegating(w http.ResponseWriter, r *http.Request) {
	var v any
	if !decode(w, r, &v) {
		return
	}
	w.WriteHeader(http.StatusOK)
}

// decodeCT checks only Content-Type; its callers must have checked the
// method.
func decodeCT(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Header.Get("Content-Type") != "application/json" {
		w.WriteHeader(http.StatusUnsupportedMediaType)
		return false
	}
	return json.NewDecoder(r.Body).Decode(dst) == nil
}

// splitChecks checks the method itself and delegates the Content-Type
// check: the union covers both, clean.
func splitChecks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	var v any
	if !decodeCT(w, r, &v) {
		return
	}
	w.WriteHeader(http.StatusOK)
}

func delegatingHalfChecked(w http.ResponseWriter, r *http.Request) {
	var v any
	if !decodeCT(w, r, &v) { // want `delegatingHalfChecked forwards the request to decodeCT before checking method`
		return
	}
	w.WriteHeader(http.StatusOK)
}

// statsStyle reads no body; a GET endpoint needs no Content-Type:
// clean.
func statsStyle(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	w.Write([]byte("ok"))
}

type site struct{}

// serve mimics the three-parameter handleFactor shape: not a root, but
// unguarded, so every root that forwards to it is flagged.
func (s *site) serve(w http.ResponseWriter, r *http.Request, verbose bool) {
	var v any
	json.NewDecoder(r.Body).Decode(&v)
	w.WriteHeader(http.StatusOK)
}

// register's closure is the mux-registration shape.
func register(mux *http.ServeMux, s *site) {
	mux.HandleFunc("/x", func(w http.ResponseWriter, r *http.Request) {
		s.serve(w, r, false) // want `handler literal forwards the request to serve before checking method and Content-Type`
	})
}

// allowedRaw intentionally accepts any request shape.
func allowedRaw(w http.ResponseWriter, r *http.Request) {
	//hsd:allow handlerguard health probe drains anything it is sent by design
	io.Copy(io.Discard, r.Body)
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicField catches mixed atomic/plain access to the same memory
// word: once any code touches a struct field or package variable
// through sync/atomic, every other access must be atomic too, or the
// program has a data race that -race only reports when a schedule
// happens to collide (exactly the class the DAG's dependency counters
// invite: a plain `t.remaining--` next to the scheduler's atomic
// decrement corrupts fan-in counts silently). The dag package sidesteps
// this today by using the typed atomic.Int32 wrappers, which cannot be
// read plainly; this analyzer guards the old-style sync/atomic calls
// that remain legal Go.
//
// An initialization-before-publication pattern (plain store while the
// struct is still goroutine-local) is a legitimate exception; such
// sites take //hsd:allow atomicfield with a justification.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "memory accessed via sync/atomic anywhere must never be accessed plainly elsewhere",
	Run:  runAtomicField,
}

func runAtomicField(prog *Program, r *Reporter) {
	// Phase 1 (whole program): variables passed by address to
	// sync/atomic operations, and the identifiers that did so (those
	// uses are the sanctioned, atomic ones).
	atomicObjs := map[types.Object]token.Pos{}
	sanctioned := map[*ast.Ident]bool{}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				f := funcObj(pkg.Info, call)
				if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" || !isAtomicOp(f.Name()) || len(call.Args) == 0 {
					return true
				}
				obj, id := addrOperandVar(pkg.Info, call.Args[0])
				if obj != nil {
					if _, seen := atomicObjs[obj]; !seen {
						atomicObjs[obj] = call.Pos()
					}
					sanctioned[id] = true
				}
				return true
			})
		}
	}
	if len(atomicObjs) == 0 {
		return
	}

	// Phase 2 (whole program): any other use of those variables is a
	// plain access. Field selections and qualified package variables
	// both resolve through Uses of the final identifier, so walking
	// identifiers covers every access form.
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || sanctioned[id] {
					return true
				}
				obj := pkg.Info.Uses[id]
				if obj == nil {
					return true
				}
				if atomicAt, hot := atomicObjs[obj]; hot {
					r.Reportf(id.Pos(), "plain access to %s, which is accessed via sync/atomic at %s",
						obj.Name(), prog.Fset.Position(atomicAt))
				}
				return true
			})
		}
	}
}

// isAtomicOp reports whether name is one of sync/atomic's operation
// families taking an address (as opposed to the typed wrapper types,
// whose methods make plain access impossible).
func isAtomicOp(name string) bool {
	for _, prefix := range []string{"Add", "And", "Or", "Load", "Store", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// addrOperandVar resolves an &x atomic operand to the variable it
// names — a struct field or a package-level variable — plus the
// identifier that named it. Function-local variables are skipped: an
// address-taken local handed to sync/atomic is a self-contained idiom
// the race detector already sees.
func addrOperandVar(info *types.Info, e ast.Expr) (types.Object, *ast.Ident) {
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil, nil
	}
	var id *ast.Ident
	switch x := ast.Unparen(u.X).(type) {
	case *ast.SelectorExpr:
		id = x.Sel
	case *ast.Ident:
		id = x
	default:
		return nil, nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || !(v.IsField() || isPkgLevel(v)) {
		return nil, nil
	}
	return v, id
}

// isPkgLevel reports whether v is declared at package scope.
func isPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

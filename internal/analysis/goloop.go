package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// GoLoop demands evidence of termination for every goroutine launched
// with a `go` statement. A goroutine with no shutdown path is how this
// codebase leaks: the engine's workers, the router's prober and the
// serving tier's waiters all run forever unless something tells them to
// stop, and "something" must be visible in the source. Accepted
// evidence, checked against the launched function's body (a literal, or
// a same-package declaration):
//
//   - it selects on / receives from / ranges over a ctx.Done() channel
//     or a channel whose name says stop/done/quit/exit/cancel/closing;
//   - it calls Done on a sync.WaitGroup (directly or deferred), i.e. a
//     joiner exists;
//   - it sends on a channel the launching function later receives from
//     (the errc := make(...); go func(){ errc <- ... }(); <-errc shape);
//   - an //hsd:allow goloop <why> pragma for the deliberate cases.
//
// Anything else is reported at the go statement.
var GoLoop = &Analyzer{
	Name: "goloop",
	Doc:  "every go statement needs provable termination (ctx/done select, WaitGroup join, or joined channel send)",
	Flow: true,
	Run:  runGoLoop,
}

// stopNameRE matches channel identifiers that conventionally signal
// shutdown.
var stopNameRE = regexp.MustCompile(`(?i)^(stop|done|quit|exit|cancel|clos)`)

func runGoLoop(prog *Program, r *Reporter) {
	for _, pkg := range prog.Packages {
		funcs := pkg.FuncDecls()
		pkg.eachFuncDecl(func(fd *ast.FuncDecl) {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if goTerminates(pkg, funcs, fd, gs) {
					return true
				}
				r.Reportf(gs.Pos(), "goroutine has no visible termination: select on a done/stop channel, join it with a WaitGroup, or annotate //hsd:allow goloop <why>")
				return true
			})
		})
	}
}

// goTerminates looks for termination evidence for one go statement.
func goTerminates(pkg *Package, funcs map[types.Object]*ast.FuncDecl, enclosing *ast.FuncDecl, gs *ast.GoStmt) bool {
	body := launchedBody(pkg, funcs, gs.Call)
	if body == nil {
		// Launching through a function value or another package's
		// function: the body is out of reach, so give the launch the
		// benefit of the doubt only if the call site itself passes a
		// shutdown signal (a ctx or a stop-named channel argument).
		for _, arg := range gs.Call.Args {
			if isCtxExpr(pkg.Info, arg) || isStopChan(pkg.Info, arg) {
				return true
			}
		}
		return false
	}
	if bodyHasTerminationSignal(pkg, funcs, body, 0) {
		return true
	}
	// Channel-join shape: the goroutine sends on a channel that the
	// enclosing function receives from after the launch.
	return sendsOnJoinedChan(pkg.Info, enclosing, gs, body)
}

// launchedBody resolves the body of the launched function: a literal,
// or a same-package FuncDecl (function or method).
func launchedBody(pkg *Package, funcs map[types.Object]*ast.FuncDecl, call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if obj := funcObj(pkg.Info, call); obj != nil && obj.Pkg() == pkg.Types {
		if fd, ok := funcs[types.Object(obj)]; ok {
			return fd.Body
		}
	}
	return nil
}

// bodyHasTerminationSignal walks a launched body for direct evidence:
// a shutdown-channel receive/select/range or a WaitGroup.Done. It
// follows same-package calls one level deep (the `go e.worker()` shape
// where worker itself selects on stop).
func bodyHasTerminationSignal(pkg *Package, funcs map[types.Object]*ast.FuncDecl, body *ast.BlockStmt, depth int) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && isShutdownRecv(pkg.Info, n.X) {
				found = true
			}
		case *ast.RangeStmt:
			if isShutdownRecv(pkg.Info, n.X) {
				found = true
			}
			// Ranging over any channel is itself a termination path: the
			// loop ends when the channel closes, so the goroutine's
			// lifetime is the channel's.
			if t, ok := pkg.Info.Types[n.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.SelectStmt:
			for _, cl := range n.Body.List {
				cc := cl.(*ast.CommClause)
				if cc.Comm == nil {
					continue
				}
				var recv ast.Expr
				switch c := cc.Comm.(type) {
				case *ast.ExprStmt:
					if u, ok := c.X.(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
						recv = u.X
					}
				case *ast.AssignStmt:
					if len(c.Rhs) == 1 {
						if u, ok := c.Rhs[0].(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
							recv = u.X
						}
					}
				}
				if recv != nil && isShutdownRecv(pkg.Info, recv) {
					found = true
				}
			}
		case *ast.CallExpr:
			if isWaitGroupDone(pkg.Info, n) {
				found = true
				return false
			}
			if depth < 1 {
				if obj := funcObj(pkg.Info, n); obj != nil && obj.Pkg() == pkg.Types {
					if fd, ok := funcs[types.Object(obj)]; ok {
						if bodyHasTerminationSignal(pkg, funcs, fd.Body, depth+1) {
							found = true
							return false
						}
					}
				}
			}
		}
		return !found
	})
	return found
}

// isShutdownRecv reports whether receiving from e is shutdown evidence:
// ctx.Done() or a channel whose terminal name matches stopNameRE.
func isShutdownRecv(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if recv, name := recvOf(call); recv != nil && name == "Done" && isCtxExpr(info, recv) {
			return true
		}
	}
	return isStopChan(info, e)
}

// isStopChan reports whether e is a channel-typed expression whose
// terminal identifier carries a shutdown name.
func isStopChan(info *types.Info, e ast.Expr) bool {
	t, ok := info.Types[ast.Unparen(e)]
	if !ok || t.Type == nil {
		return false
	}
	if _, isChan := t.Type.Underlying().(*types.Chan); !isChan {
		return false
	}
	obj := terminalObj(info, e)
	return obj != nil && stopNameRE.MatchString(obj.Name())
}

// isCtxExpr reports whether e has static type context.Context.
func isCtxExpr(info *types.Info, e ast.Expr) bool {
	t, ok := info.Types[ast.Unparen(e)]
	if !ok || t.Type == nil {
		return false
	}
	return isContextType(t.Type)
}

// isContextType matches context.Context (the interface itself).
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isWaitGroupDone matches wg.Done() / x.wg.Done() on sync.WaitGroup.
func isWaitGroupDone(info *types.Info, call *ast.CallExpr) bool {
	recv, name := recvOf(call)
	if recv == nil || name != "Done" {
		return false
	}
	t, ok := info.Types[recv]
	if !ok || t.Type == nil {
		return false
	}
	return isNamedType(t.Type, "sync", "WaitGroup")
}

// sendsOnJoinedChan reports whether the goroutine's body sends on a
// channel object that the enclosing function receives from outside the
// go statement (the launch-then-join shape).
func sendsOnJoinedChan(info *types.Info, enclosing *ast.FuncDecl, gs *ast.GoStmt, body *ast.BlockStmt) bool {
	sent := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if s, ok := n.(*ast.SendStmt); ok {
			if obj := terminalObj(info, s.Chan); obj != nil {
				sent[obj] = true
			}
		}
		return true
	})
	if len(sent) == 0 {
		return false
	}
	joined := false
	ast.Inspect(enclosing.Body, func(n ast.Node) bool {
		if joined {
			return false
		}
		if n == gs {
			return false // don't credit the goroutine's own receives
		}
		recvTarget := func(e ast.Expr) {
			if obj := terminalObj(info, e); obj != nil && sent[obj] {
				joined = true
			}
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				recvTarget(n.X)
			}
		case *ast.RangeStmt:
			recvTarget(n.X)
		}
		return !joined
	})
	return joined
}

// Package analysis is hsdlint's engine: a suite of project-specific
// static analyzers that machine-check the invariants this codebase's
// correctness story rests on — invariants that are documented in
// comments and enforced by convention, which PR history shows is not
// enough (the shared-panel work had to re-add a missed ensureTuned
// gate by hand). Each analyzer encodes one contract:
//
//   - tunegate: exported kernel entry points must pass the ensureTuned
//     gate before touching tuning-profile state (//hsd:profile-state).
//   - bitident: the Getf2/panel bit-identity region (//hsd:bitident)
//     must stay free of math.FMA, float ==/!= and dot-product-style
//     fused accumulation.
//   - atomicfield: a field or package variable accessed through
//     sync/atomic anywhere must never be read or written plainly.
//   - pairing: kernel.Reserve acquisitions need Release reachable on
//     every exit path, and arming a panel-carrying graph (ResetDeps)
//     needs ReleasePanels.
//   - handlerguard: HTTP handlers must enforce method + Content-Type
//     before decoding a request body.
//
// On top of those syntax-driven checks sits a function-level CFG
// (cfg.go) and a forward-dataflow worklist solver (dataflow.go), and
// four flow-sensitive analyzers for the concurrency and serving tier:
//
//   - lockorder: mutexes ranked with //hsd:lockrank must be acquired
//     in declared order on every path, including one call deep
//     (per-package acquisition summaries carry the chain).
//   - goloop: every go statement needs visible termination evidence —
//     a ctx.Done()/stop-channel select, a WaitGroup join, a joined
//     channel send, or ranging over a channel.
//   - ctxflow: a function with a ctx parameter must thread it (or a
//     context derived from it); fresh context.Background()/TODO() in
//     call position is confined to package main.
//   - errstatus: errors are tested with errors.Is/As (never == or a
//     type assertion), and in packages with an //hsd:statusmap table
//     function, error-to-HTTP-status mappings live only there.
//
// The suite runs on stdlib tooling only (go/ast, go/parser, go/types;
// package loading drives `go list`), keeping the module at zero
// dependencies. Intentional violations are suppressed in source with
//
//	//hsd:allow <analyzer> <one-line justification>
//
// either trailing the offending line or on the line directly above it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer hit.
type Finding struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

// String renders the finding in the canonical `file:line: [analyzer]
// message` form the driver prints and CI greps.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Analyzer, f.Message)
}

// Package is one loaded, type-checked package under analysis.
type Package struct {
	// PkgPath is the import path ("repro/internal/kernel"), or a
	// synthetic "testdata/<name>" path for corpus packages loaded by
	// directory.
	PkgPath string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// Sources maps file names to their raw content, so pragma handling
	// can distinguish trailing comments from whole-line comments.
	Sources map[string][]byte

	// funcs is the lazily built function index (see FuncDecls).
	funcs map[types.Object]*ast.FuncDecl
}

// Program is a set of packages loaded together: analyzers see the whole
// program, so cross-package contracts (an exported field written
// atomically in one package and plainly in another) are visible.
type Program struct {
	Fset *token.FileSet
	// Packages are the analysis targets, in dependency order.
	Packages []*Package

	// cfgs is the shared CFG cache (see CFGOf).
	cfgs map[*ast.FuncDecl]*CFG
}

// Reporter collects findings for one analyzer run.
type Reporter struct {
	prog     *Program
	analyzer string
	findings []Finding
}

// Reportf records a finding at pos unless an //hsd:allow pragma
// suppresses it.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	p := r.prog.Fset.Position(pos)
	if r.prog.allowed(r.analyzer, p) {
		return
	}
	r.findings = append(r.findings, Finding{
		Pos:      p,
		File:     p.Filename,
		Line:     p.Line,
		Col:      p.Column,
		Analyzer: r.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one invariant checker over a whole Program.
type Analyzer struct {
	Name string
	Doc  string
	// Flow marks analyzers built on the CFG/dataflow engine: their
	// findings depend on statement order and branch structure, not just
	// on syntax shapes.
	Flow bool
	Run  func(prog *Program, r *Reporter)
}

// All returns the full suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		TuneGate,
		BitIdent,
		AtomicField,
		Pairing,
		HandlerGuard,
		LockOrder,
		GoLoop,
		CtxFlow,
		ErrStatus,
	}
}

// Run executes the given analyzers over the program and returns the
// surviving findings sorted by position.
func Run(prog *Program, analyzers []*Analyzer) []Finding {
	var all []Finding
	for _, a := range analyzers {
		r := &Reporter{prog: prog, analyzer: a.Name}
		a.Run(prog, r)
		all = append(all, r.findings...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].File != all[j].File {
			return all[i].File < all[j].File
		}
		if all[i].Line != all[j].Line {
			return all[i].Line < all[j].Line
		}
		if all[i].Col != all[j].Col {
			return all[i].Col < all[j].Col
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all
}

// ---------------------------------------------------------------------
// Pragmas.

// allowDirective is the suppression pragma prefix. The full form is
// `//hsd:allow <analyzer> <justification>`; the justification is
// mandatory by convention but not enforced beyond being non-empty.
const allowDirective = "hsd:allow"

// allowed reports whether a finding by analyzer at position p is
// suppressed: an //hsd:allow naming the analyzer (or "all") trailing
// the same line, or alone on the line directly above.
func (prog *Program) allowed(analyzer string, p token.Position) bool {
	for _, pkg := range prog.Packages {
		src, ok := pkg.Sources[p.Filename]
		if !ok {
			continue
		}
		for _, f := range pkg.Files {
			tf := prog.Fset.File(f.Pos())
			if tf == nil || tf.Name() != p.Filename {
				continue
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					name, ok := parseAllow(c.Text)
					if !ok || (name != analyzer && name != "all") {
						continue
					}
					cp := prog.Fset.Position(c.Pos())
					if cp.Line == p.Line {
						return true
					}
					if cp.Line == p.Line-1 && commentAlone(src, cp) {
						return true
					}
				}
			}
		}
	}
	return false
}

// parseAllow extracts the analyzer name from an //hsd:allow comment.
func parseAllow(text string) (string, bool) {
	body, ok := directiveBody(text, allowDirective)
	if !ok {
		return "", false
	}
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return "", false
	}
	return fields[0], true
}

// directiveBody returns the text after `//<name>` if the comment is
// that directive (no space between // and the name, per Go directive
// convention).
func directiveBody(text, name string) (string, bool) {
	if !strings.HasPrefix(text, "//"+name) {
		return "", false
	}
	rest := text[2+len(name):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false
	}
	return rest, true
}

// hasDirective reports whether the comment group contains the given
// //hsd:* directive (marker pragmas such as hsd:bitident and
// hsd:profile-state).
func hasDirective(cg *ast.CommentGroup, name string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if _, ok := directiveBody(c.Text, name); ok {
			return true
		}
	}
	return false
}

// commentAlone reports whether the comment starting at cp is the only
// thing on its source line (so it applies to the line below, not to
// code sharing its line).
func commentAlone(src []byte, cp token.Position) bool {
	line := sourceLine(src, cp.Line)
	head := line[:min(cp.Column-1, len(line))]
	return strings.TrimSpace(head) == ""
}

// sourceLine returns 1-based line n of src (without the newline).
func sourceLine(src []byte, n int) string {
	start := 0
	for l := 1; l < n; l++ {
		i := indexByte(src[start:], '\n')
		if i < 0 {
			return ""
		}
		start += i + 1
	}
	end := indexByte(src[start:], '\n')
	if end < 0 {
		end = len(src) - start
	}
	return string(src[start : start+end])
}

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}

// ---------------------------------------------------------------------
// Shared type/AST helpers.

// funcObj resolves a call expression's callee to its function object
// (package-level function or method), or nil for calls through
// function-typed variables, interfaces and built-ins.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isFloat reports whether t is a floating-point type (incl. untyped
// float constants).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// namedOrPointee unwraps one level of pointer and returns the named
// type, or nil.
func namedOrPointee(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// hasMethod reports whether named (or its pointer type) has a method
// with the given name, including promoted methods.
func hasMethod(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	ms := types.NewMethodSet(types.NewPointer(t))
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}

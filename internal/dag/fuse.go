package dag

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// FusePart is one member of a fused composite graph: a complete job DAG
// plus the bookkeeping the owner of the composite needs to treat the
// member as a first-class job of its own.
type FusePart struct {
	// G is the member's task graph. Fuse clones its tasks, so the
	// original Graph value is left untouched (its dependency counters
	// are never armed) — but the Run closures are shared, and they
	// mutate the member job's layout in place, so a fused composite is
	// as single-use as the graphs it was built from.
	G *Graph
	// Label names the member in traces and error messages ("f-17",
	// "solve n=64x4", ...).
	Label string
	// OnDone, if non-nil, is called exactly once, from the worker
	// goroutine that executes the member's last task, when every task
	// of this member has completed. Fused members complete at different
	// times; the callback is what lets each root of the forest report
	// completion without waiting for its batch mates.
	OnDone func()
}

// PartSpan locates one member inside a fused graph: its tasks occupy
// the contiguous ID range [First, First+Tasks).
type PartSpan struct {
	Label string
	// First is the composite ID of the member's first task; Tasks its
	// task count.
	First, Tasks int32
}

// FusedGraph is the result of Fuse: one schedulable forest whose roots
// are the member graphs. It satisfies every Graph consumer (the
// runtime, the serial simulator, Validate, ComputeStats), and keeps the
// member boundaries so traces and stats can be attributed per subgraph.
type FusedGraph struct {
	*Graph
	// Parts records each member's label and task-ID span, in fusion
	// order.
	Parts []PartSpan
}

// PartOf returns the index into Parts of the member owning composite
// task ID id, or -1 if id is out of range.
func (f *FusedGraph) PartOf(id int32) int {
	for i := range f.Parts {
		p := &f.Parts[i]
		if id >= p.First && id < p.First+p.Tasks {
			return i
		}
	}
	return -1
}

// Fuse merges several independent job DAGs into one forest that a
// single executor reservation can drive: the express-lane batching of
// the engine's two-lane admission, where a burst of small factor/solve
// jobs shares one static reservation instead of each paying its own.
//
// Tasks are cloned with re-based IDs and edges, so the member graphs
// themselves are never armed or mutated; no edges are added between
// members (their dataflow stays exactly what their builders emitted),
// which is why the fused result is bit-identical to running each member
// alone — under every scheduling policy, worker count and dispatcher,
// the same property every single graph already has. Member owners are
// offset by the preceding members' worker widths so the forest's
// owner-computes distribution interleaves members across a shared pool
// instead of stacking every member's block row 0 on worker 0.
//
// Each member's OnDone callback fires when its own last task completes,
// so early members report completion while the rest of the forest is
// still executing.
func Fuse(parts ...FusePart) *FusedGraph {
	if len(parts) == 0 {
		panic("dag: Fuse needs at least one part")
	}
	total := 0
	workers := 0
	names := make([]string, 0, len(parts))
	for _, p := range parts {
		total += len(p.G.Tasks)
		// The composite is "built for" the widest member: the worker
		// count recorded here is only metadata (policies mod by the
		// executor's actual slot count), but keeping the max makes the
		// owner interleaving below meaningful.
		if p.G.Workers > workers {
			workers = p.G.Workers
		}
		names = append(names, p.Label)
	}
	fg := &FusedGraph{
		Graph: &Graph{
			Tasks:   make([]*Task, 0, total),
			Workers: workers,
			Name:    fmt.Sprintf("Fused[%s]", strings.Join(names, "+")),
		},
		Parts: make([]PartSpan, 0, len(parts)),
	}
	base := int32(0)
	ownerOff := 0
	for _, p := range parts {
		// The clone's Run closures still consume the member's shared
		// panel handles, so the fused graph adopts them for reset and
		// abort-time reclamation.
		fg.Panels = append(fg.Panels, p.G.Panels...)
		n := int32(len(p.G.Tasks))
		fg.Parts = append(fg.Parts, PartSpan{Label: p.Label, First: base, Tasks: n})
		// left counts the member's unfinished tasks; the task that
		// drives it to zero fires OnDone.
		left := new(atomic.Int32)
		left.Store(n)
		done := p.OnDone
		for _, t := range p.G.Tasks {
			ct := &Task{
				ID:      base + t.ID,
				Kind:    t.Kind,
				K:       t.K,
				I:       t.I,
				J:       t.J,
				Group:   t.Group,
				Owner:   t.Owner + ownerOff,
				Static:  t.Static,
				Flops:   t.Flops,
				Bytes:   t.Bytes,
				Prio:    t.Prio,
				NumDeps: t.NumDeps,
			}
			if len(t.Outs) > 0 {
				ct.Outs = make([]int32, len(t.Outs))
				for i, o := range t.Outs {
					ct.Outs[i] = base + o
				}
			}
			run := t.Run
			ct.Run = func() {
				if run != nil {
					run()
				}
				if left.Add(-1) == 0 && done != nil {
					done()
				}
			}
			fg.Tasks = append(fg.Tasks, ct)
		}
		base += n
		ownerOff += p.G.Workers
	}
	return fg
}

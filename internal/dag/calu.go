package dag

import (
	"fmt"
	"sync"

	"repro/internal/kernel"
	"repro/internal/layout"
	"repro/internal/mat"
	"repro/internal/piv"
)

// CALUOptions selects the scheduling split and block grouping used when
// building a CALU graph.
type CALUOptions struct {
	// NstaticCols is the number of leading block columns whose tasks are
	// scheduled statically (the paper's Nstatic = N*(1-dratio)). Zero
	// means fully dynamic; >= N means fully static.
	NstaticCols int
	// Group is the maximum number of owned block columns fused into one
	// S task (the paper's k, with k=3 in the experiments); values <= 1
	// disable grouping. Grouping is only applied where the layout
	// reports physical contiguity, so it is inert for 2l-BL.
	Group int
	// Chunks caps the number of tournament-tree leaves per panel; the
	// default (0) uses the grid's row count, mirroring the static
	// distribution where the owners of panel blocks run the P tasks.
	Chunks int
	// SimOnly skips the Run closures and pivot-state buffers, producing
	// a structure-and-cost-only graph for the simulator; such graphs can
	// model paper-scale matrices without allocating their data.
	SimOnly bool
}

// CALUGraph couples the task graph with the pivoting state the tasks
// fill in as they execute. Run closures mutate the layout in place, so
// a CALUGraph must be executed at most once in real mode; simulation
// does not touch the state and can replay the graph freely.
type CALUGraph struct {
	*Graph
	// Layout is the matrix storage being factored.
	Layout layout.Layout
	// StepSwaps[k] is the row-interchange sequence of panel step k,
	// recorded by the Final task; needed to assemble the global
	// permutation and to apply the deferred left swaps (Algorithm 1,
	// line 43).
	StepSwaps [][][2]int
	// PivCount[k] is the factored rank of panel k (= b except possibly
	// at the ragged last step).
	PivCount []int

	mu    sync.Mutex // guards cands across the tournament tasks
	cands [][]piv.Candidate
}

// BuildCALU constructs the CALU task dependency graph over the given
// layout. The graph realizes Algorithm 1 (hybrid static/dynamic CALU)
// as data: the runtime's scheduling policy decides the execution order
// within the dependency and static-ownership constraints.
func BuildCALU(l layout.Layout, opt CALUOptions) *CALUGraph {
	m, n, bsz := l.Dims()
	mb, nb := l.Blocks()
	grid := l.Grid()
	workers := grid.Workers()
	steps := min(mb, nb)
	chunksMax := opt.Chunks
	if chunksMax <= 0 {
		chunksMax = grid.PR
	}
	group := opt.Group
	if group < 1 {
		group = 1
	}

	b := newBuilder(fmt.Sprintf("CALU(%s,Nstatic=%d,k=%d)", l.Kind(), opt.NstaticCols, group), workers)
	cg := &CALUGraph{
		Graph:     b.g,
		Layout:    l,
		StepSwaps: make([][][2]int, steps),
		PivCount:  make([]int, steps),
		cands:     make([][]piv.Candidate, steps),
	}

	isStatic := func(col int) bool { return col < opt.NstaticCols }
	span := func(i, ext int) int { return blockSpanOf(i, bsz, ext) }

	// Epoch namespace for this build's shared packed-B panels: every S
	// task of one (step, block column) pair multiplies by the same U
	// block, so they share one packed copy of it through a refcounted
	// handle instead of each packing privately.
	var ep uint64
	if !opt.SimOnly {
		ep = kernel.NewEpoch()
	}

	// updPrev maps (blockRow, blockCol) -> the step-(K-1) S task that
	// last wrote the block; nil map at step 0.
	var updPrev map[[2]int]*Task

	for k := 0; k < steps; k++ {
		bw := span(k, n)      // panel width
		base := k * bsz       // first global row of the panel
		rowsBelow := m - base // panel height
		pivCount := min(bw, rowsBelow)
		cg.PivCount[k] = pivCount
		kk := k // capture

		// ---- Tournament tree: leaves over contiguous runs of block rows.
		nchunks := min(chunksMax, mb-k)
		chunkBlocks := splitBlocks(k, mb, nchunks)
		leafTasks := make([]*Task, len(chunkBlocks))
		if !opt.SimOnly {
			cg.cands[k] = make([]piv.Candidate, 0, 2*len(chunkBlocks))
		}
		nextSlot := 0
		newSlot := func() int {
			s := nextSlot
			nextSlot++
			if !opt.SimOnly {
				cg.cands[kk] = append(cg.cands[kk], piv.Candidate{})
			}
			return s
		}
		leafSlots := make([]int, len(chunkBlocks))
		for c, blkRange := range chunkBlocks {
			i0, i1 := blkRange[0], blkRange[1]
			r0, r1 := i0*bsz, min(i1*bsz, m)
			s := newSlot()
			leafSlots[c] = s
			// GEPP on an r x b chunk costs ~ r*b^2 - b^3/3 flops.
			t := b.add(&Task{
				Kind: PLeaf, K: k, I: c,
				Owner:  l.Owner(i0, k),
				Static: isStatic(k),
				Flops:  float64(r1-r0)*float64(bw)*float64(bw) - float64(bw)*float64(bw)*float64(bw)/3,
				Bytes:  16 * float64(r1-r0) * float64(bw),
				Prio:   priority(k, k, PLeaf),
			})
			if !opt.SimOnly {
				i0c, i1c, r0c, r1c, sc := i0, i1, r0, r1, s
				t.Run = func() {
					vals := mat.New(r1c-r0c, bw)
					ids := make([]int, r1c-r0c)
					off := 0
					for i := i0c; i < i1c; i++ {
						blk := l.Block(i, kk)
						dst := kernel.View{Rows: blk.Rows, Cols: bw, Stride: vals.Stride, Data: vals.Data[off:]}
						kernel.Copy(dst, kernel.View{Rows: blk.Rows, Cols: bw, Stride: blk.Stride, Data: blk.Data})
						for r := 0; r < blk.Rows; r++ {
							ids[off+r] = i*bsz + r
						}
						off += blk.Rows
					}
					// Select degrades gracefully on an exactly singular chunk
					// (prefix fallback), so an error here is a real defect,
					// not a property of the input; the runtime converts the
					// panic into a Factor error.
					cand, err := piv.Select(vals, ids, bw)
					if err != nil {
						panic(fmt.Sprintf("dag: TSLU leaf (step %d rows %d..%d): %v", kk, r0c, r1c, err))
					}
					cg.mu.Lock()
					cg.cands[kk][sc] = cand
					cg.mu.Unlock()
				}
			}
			leafTasks[c] = t
			// A leaf reads the panel blocks of its chunk, which were last
			// written by step k-1's S tasks.
			if updPrev != nil {
				for i := i0; i < i1; i++ {
					b.edge(updPrev[[2]int{i, k}], t)
				}
			}
		}

		// ---- Binary combine tree.
		curTasks, curSlots := leafTasks, leafSlots
		lvl := 0
		for len(curTasks) > 1 {
			lvl++
			nextTasks := make([]*Task, 0, (len(curTasks)+1)/2)
			nextSlots := make([]int, 0, (len(curTasks)+1)/2)
			for i := 0; i < len(curTasks); i += 2 {
				if i+1 == len(curTasks) {
					nextTasks = append(nextTasks, curTasks[i])
					nextSlots = append(nextSlots, curSlots[i])
					continue
				}
				s := newSlot()
				// GEPP on the stacked 2b x b candidates: ~ (5/3) b^3 flops.
				t := b.add(&Task{
					Kind: PCombine, K: k, I: lvl*1024 + i/2,
					Owner:  curTasks[i].Owner,
					Static: isStatic(k),
					Flops:  (5.0 / 3.0) * float64(bw) * float64(bw) * float64(bw),
					Bytes:  32 * float64(bw) * float64(bw),
					Prio:   priority(k, k, PCombine),
				})
				if !opt.SimOnly {
					sa, sb, sc := curSlots[i], curSlots[i+1], s
					t.Run = func() {
						cg.mu.Lock()
						ca, cb := cg.cands[kk][sa], cg.cands[kk][sb]
						cg.mu.Unlock()
						out, err := piv.Combine(ca, cb, bw)
						if err != nil {
							panic(fmt.Sprintf("dag: TSLU combine step %d: %v", kk, err))
						}
						cg.mu.Lock()
						cg.cands[kk][sc] = out
						cg.mu.Unlock()
					}
				}
				b.edge(curTasks[i], t)
				b.edge(curTasks[i+1], t)
				nextTasks = append(nextTasks, t)
				nextSlots = append(nextSlots, s)
			}
			curTasks, curSlots = nextTasks, nextSlots
		}
		rootTask, rootSlot := curTasks[0], curSlots[0]

		// ---- Final: apply winning swaps to the panel column and factor
		// the pivot block (plus any ragged rows inside the diagonal block).
		fin := b.add(&Task{
			Kind: Final, K: k,
			Owner:  l.Owner(k, k),
			Static: isStatic(k),
			Flops:  (2.0 / 3.0) * float64(bw) * float64(bw) * float64(bw),
			Bytes:  8 * float64(span(k, m)) * float64(bw),
			Prio:   priority(k, k, Final),
		})
		if !opt.SimOnly {
			rs := rootSlot
			fin.Run = func() {
				cg.mu.Lock()
				winners := cg.cands[kk][rs].IDs
				cg.mu.Unlock()
				swaps := piv.Swaps(winners, base)
				cg.StepSwaps[kk] = swaps
				for _, sw := range swaps {
					l.SwapRows(kk, sw[0], sw[1])
				}
				// A zero diagonal here means the whole panel was rank
				// deficient — no pivot candidate anywhere could fill the
				// column — which is exactly when reference GEPP fails too.
				// The panic becomes a Factor error, matching ReferenceLU's
				// graceful error return.
				diag := l.Block(kk, kk)
				if err := kernel.GetrfNoPiv(kernel.View{Rows: diag.Rows, Cols: bw, Stride: diag.Stride, Data: diag.Data}); err != nil {
					panic(fmt.Sprintf("dag: pivot block factorization step %d: %v", kk, err))
				}
			}
		}
		b.edge(rootTask, fin)

		// ---- L tasks, one per block row below the diagonal.
		lTasks := make(map[int]*Task, mb-k-1)
		for i := k + 1; i < mb; i++ {
			ri := span(i, m)
			t := b.add(&Task{
				Kind: L, K: k, I: i,
				Owner:  l.Owner(i, k),
				Static: isStatic(k),
				Flops:  float64(ri) * float64(bw) * float64(bw),
				Bytes:  8 * (float64(ri)*float64(bw) + float64(bw)*float64(bw)),
				Prio:   priority(k, k, L),
			})
			if !opt.SimOnly {
				ic := i
				t.Run = func() {
					diag := l.Block(kk, kk)
					ukk := kernel.View{Rows: bw, Cols: bw, Stride: diag.Stride, Data: diag.Data}
					blk := l.Block(ic, kk)
					kernel.TrsmUpperRight(ukk, kernel.View{Rows: blk.Rows, Cols: bw, Stride: blk.Stride, Data: blk.Data})
				}
			}
			b.edge(fin, t)
			lTasks[i] = t
		}

		// ---- U tasks, one per trailing block column: lazy right swap,
		// triangular solve, and (ragged case) update of the extra rows
		// living inside the diagonal block row.
		uTasks := make(map[int]*Task, nb-k-1)
		for j := k + 1; j < nb; j++ {
			cj := span(j, n)
			t := b.add(&Task{
				Kind: U, K: k, J: j,
				Owner:  l.Owner(k, j),
				Static: isStatic(j),
				Flops:  float64(pivCount) * float64(pivCount) * float64(cj),
				Bytes:  8 * (float64(span(k, m))*float64(cj) + float64(pivCount)*float64(pivCount)),
				Prio:   priority(j, k, U),
			})
			if !opt.SimOnly {
				jc := j
				t.Run = func() {
					for _, sw := range cg.StepSwaps[kk] {
						l.SwapRows(jc, sw[0], sw[1])
					}
					diag := l.Block(kk, kk)
					lkk := kernel.View{Rows: pivCount, Cols: pivCount, Stride: diag.Stride, Data: diag.Data}
					blk := l.Block(kk, jc)
					top := kernel.View{Rows: pivCount, Cols: blk.Cols, Stride: blk.Stride, Data: blk.Data}
					kernel.TrsmLowerLeftUnit(lkk, top)
					if blk.Rows > pivCount {
						// Ragged diagonal block row: its extra rows hold L
						// entries and must be updated like a trailing block.
						low := kernel.View{Rows: blk.Rows - pivCount, Cols: blk.Cols, Stride: blk.Stride, Data: blk.Data[pivCount:]}
						llow := kernel.View{Rows: blk.Rows - pivCount, Cols: pivCount, Stride: diag.Stride, Data: diag.Data[pivCount:]}
						kernel.Gemm(low, llow, top)
					}
				}
			}
			b.edge(fin, t)
			if updPrev != nil {
				for i := k; i < mb; i++ {
					b.edge(updPrev[[2]int{i, j}], t)
				}
			}
			uTasks[j] = t
		}

		// ---- S tasks: trailing update. Blocks that share the same column
		// and belong to the same owner are fused vertically into one
		// taller gemm where the layout is contiguous (the paper's k=3
		// grouping, section 3 — fusing along columns keeps every column's
		// progress independent, so the critical path is unaffected).
		updCur := make(map[[2]int]*Task)
		rowRuns := groupRows(l, k, mb, group)
		for j := k + 1; j < nb; j++ {
			cj := span(j, n)
			// One shared packed copy of U_KJ for every S task in this
			// (step, column) pair; nil (plain Gemm per task) when there is
			// only one consumer or caching is off/over budget.
			var ph *kernel.SharedBPanel
			if !opt.SimOnly {
				ph = b.panel(kernel.PanelKey{Epoch: ep, Col: j, Step: k}, len(rowRuns))
			}
			for _, run := range rowRuns {
				i0 := run[0]
				rows := runRows(l, i0, run[1])
				totalRows := 0
				for _, i := range rows {
					totalRows += span(i, m)
				}
				t := b.add(&Task{
					Kind: S, K: k, I: i0, J: j,
					Group:  rows,
					Owner:  l.Owner(i0, j),
					Static: isStatic(j),
					Flops:  2 * float64(totalRows) * float64(pivCount) * float64(cj),
					Bytes:  8 * (float64(totalRows)*float64(pivCount) + float64(pivCount)*float64(cj) + float64(totalRows)*float64(cj)),
					Prio:   priority(j, k, S),
				})
				if !opt.SimOnly {
					i0c, jc, wc := i0, j, run[1]
					t.Run = func() {
						lv := l.GroupedRows(i0c, kk, wc)
						a := kernel.View{Rows: lv.Rows, Cols: pivCount, Stride: lv.Stride, Data: lv.Data}
						ublk := l.Block(kk, jc)
						bt := kernel.View{Rows: pivCount, Cols: ublk.Cols, Stride: ublk.Stride, Data: ublk.Data}
						cv := l.GroupedRows(i0c, jc, wc)
						ph.Gemm(cv, a, bt)
					}
				}
				b.edge(uTasks[j], t)
				for _, i := range rows {
					b.edge(lTasks[i], t)
					updCur[[2]int{i, j}] = t
				}
			}
		}
		updPrev = updCur
	}
	return cg
}

// FinishPermutation assembles the global row permutation from the
// per-step swap sequences (perm[i] = original row now living at row i)
// and applies the deferred swaps to the left part of L stored in the
// layout (Algorithm 1, line 43: L <- Pi_N ... Pi_1 L). Must be called
// after the graph has executed in real mode.
func (cg *CALUGraph) FinishPermutation() []int {
	m, _, _ := cg.Layout.Dims()
	perm := make([]int, m)
	for i := range perm {
		perm[i] = i
	}
	for k, swaps := range cg.StepSwaps {
		piv.ApplySwapsToPerm(perm, swaps)
		// Deferred left application: step k's swaps touch block columns
		// 0..k-1, which hold finished columns of L.
		for j := 0; j < k; j++ {
			for _, sw := range swaps {
				cg.Layout.SwapRows(j, sw[0], sw[1])
			}
		}
	}
	return perm
}

// blockSpanOf mirrors layout's internal block span helper.
func blockSpanOf(i, b, ext int) int {
	s := ext - i*b
	if s > b {
		s = b
	}
	return s
}

// splitBlocks partitions block rows [k, mb) into nchunks contiguous,
// non-empty runs, returned as half-open block-row ranges.
func splitBlocks(k, mb, nchunks int) [][2]int {
	total := mb - k
	if nchunks > total {
		nchunks = total
	}
	per, rem := total/nchunks, total%nchunks
	out := make([][2]int, 0, nchunks)
	start := k
	for c := 0; c < nchunks; c++ {
		sz := per
		if c < rem {
			sz++
		}
		out = append(out, [2]int{start, start + sz})
		start += sz
	}
	return out
}

// groupRows plans the S-task row grouping for step k: each run is
// (startRow, width) where width > 1 only if the layout is vertically
// contiguous across the run (owned block rows are adjacent in BCL and
// CM storage, never in 2l-BL). Grouping is a property of the storage,
// so the same runs apply under every scheduling strategy (section
// 5.1.1); the union of runs covers every trailing block row exactly
// once.
func groupRows(l layout.Layout, k, mb, group int) [][2]int {
	covered := make([]bool, mb)
	var runs [][2]int
	step := rowGroupStep(l)
	for i := k + 1; i < mb; i++ {
		if covered[i] {
			continue
		}
		w := 1
		if group > 1 {
			maxW := l.RowGroupWidth(i, k, group)
			for w < maxW {
				next := i + w*step
				if next >= mb || covered[next] {
					break
				}
				w++
			}
		}
		for x := 0; x < w; x++ {
			covered[i+x*step] = true
		}
		runs = append(runs, [2]int{i, w})
	}
	return runs
}

// rowGroupStep is the block-row stride between a worker's consecutive
// owned rows: the grid's PR for cyclic layouts, 1 for column major.
func rowGroupStep(l layout.Layout) int {
	if l.Kind() == layout.CM {
		return 1
	}
	return l.Grid().PR
}

// runRows expands a (start,width) run into the covered block rows.
func runRows(l layout.Layout, i0, w int) []int {
	if w == 1 {
		return []int{i0}
	}
	step := rowGroupStep(l)
	rows := make([]int, w)
	for i := range rows {
		rows[i] = i0 + i*step
	}
	return rows
}

package dag

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/mat"
)

// SolveOptions configures BuildSolve.
type SolveOptions struct {
	// Block is the block-row height b of the RHS partition.
	Block int
	// Workers is the owner-computes distribution width: block row I of
	// the RHS is owned by worker I mod Workers, so a block row's sweep
	// work stays on one worker under static scheduling.
	Workers int
	// NstaticCols is the per-sweep static prefix: tasks whose output
	// block row sits in the first NstaticCols sweep positions are
	// owner-pinned, the rest feed the shared dynamic queue — the same
	// Nstatic = N*(1-dratio) split as CALU, applied to each sweep.
	NstaticCols int
	// UnitLower marks the lower factor unit-triangular (LU's L); a
	// Cholesky L carries a real diagonal.
	UnitLower bool
}

// SolveGraph is the task graph of a blocked two-sweep triangular solve
// T_U^{-1} T_L^{-1} X over an n x nrhs right-hand-side block, the solve
// counterpart of the factorization graphs: diagonal TRSM tasks on the
// critical chain, packed-GEMM updates carrying the off-diagonal flops,
// executed under the same hybrid static/dynamic machinery as CALU.
// Run closures solve X in place, so a SolveGraph executes at most once.
type SolveGraph struct {
	*Graph
	// X is the right-hand-side block being solved in place.
	X *mat.Dense
}

// BuildSolve constructs the blocked triangular-solve graph: a forward
// sweep X <- lower^{-1} X over the block rows of X, then the mirrored
// backward sweep X <- upper^{-1} X.
//
//	DSolve(k): X_k <- T_kk^{-1} X_k          (diagonal TRSM)
//	RUpd(i,k): X_i <- X_i - T_ik * X_k       (packed GEMM)
//
// Priorities realize look-ahead along the diagonal chain: every task
// carries the sweep position of its *output* block row as its leading
// priority key, so DSolve(k+1) outranks the bulk updates RUpd(i,k) of
// rows i > k+1 and the critical chain races ahead exactly like the
// panel tasks of the factorization graphs. The dataflow edges fix the
// arithmetic completely, so results are bit-identical under every
// scheduling policy and worker count.
//
// lower and upper are read-only n x n triangles (column-major); only
// the relevant triangle of each is referenced. x is n x nrhs and is
// solved in place.
func BuildSolve(lower, upper, x *mat.Dense, opt SolveOptions) *SolveGraph {
	n, nrhs := x.Rows, x.Cols
	if lower.Rows != n || lower.Cols != n || upper.Rows != n || upper.Cols != n {
		panic(fmt.Sprintf("dag: solve triangles must be %dx%d, got L %dx%d U %dx%d",
			n, n, lower.Rows, lower.Cols, upper.Rows, upper.Cols))
	}
	bsz := opt.Block
	if bsz <= 0 {
		bsz = 32
	}
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	nb := (n + bsz - 1) / bsz
	b := newBuilder(fmt.Sprintf("Solve(n=%d,nrhs=%d,b=%d,Nstatic=%d)", n, nrhs, bsz, opt.NstaticCols), workers)
	sg := &SolveGraph{Graph: b.g, X: x}

	span := func(i int) int { return blockSpanOf(i, bsz, n) }
	xblk := func(i int) kernel.View {
		return kernel.View{Rows: span(i), Cols: nrhs, Stride: x.Stride, Data: x.Data[i*bsz:]}
	}
	// tri is block (i,j) of a factor triangle.
	tri := func(t *mat.Dense, i, j int) kernel.View {
		return kernel.View{Rows: span(i), Cols: span(j), Stride: t.Stride, Data: t.Data[j*bsz*t.Stride+i*bsz:]}
	}

	// prevW[i] is the last writer of X block row i. Reads of X_k only
	// ever happen after its final write of the current sweep (the chain
	// through the diagonal tasks orders them), so writer chains plus
	// reader edges off the diagonal tasks are the complete hazard set.
	prevW := make([]*Task, nb)

	// Every RUpd of one sweep step multiplies by the same solved block
	// X_k (final for the sweep once DSolve(k) ran), so the step's update
	// tasks share one packed copy of it. Step 0/1 distinguishes the
	// forward and backward sweeps of the same block row.
	ep := kernel.NewEpoch()

	// Forward sweep: X <- lower^{-1} X, block rows top to bottom.
	for k := 0; k < nb; k++ {
		kk := k
		bk := span(k)
		diag := b.add(&Task{
			Kind: DSolve, K: k, I: k,
			Owner:  k % workers,
			Static: k < opt.NstaticCols,
			Flops:  float64(bk) * float64(bk) * float64(nrhs),
			Bytes:  8 * (float64(bk)*float64(bk)/2 + float64(bk)*float64(nrhs)),
			Prio:   priority(k, k, DSolve),
		})
		diag.Run = func() {
			if opt.UnitLower {
				kernel.TrsmLowerLeftUnit(tri(lower, kk, kk), xblk(kk))
			} else {
				kernel.TrsmLowerLeft(tri(lower, kk, kk), xblk(kk))
			}
		}
		b.edge(prevW[k], diag)
		prevW[k] = diag
		ph := b.panel(kernel.PanelKey{Epoch: ep, Col: k, Step: 0}, nb-k-1)
		for i := k + 1; i < nb; i++ {
			ic := i
			ri := span(i)
			upd := b.add(&Task{
				Kind: RUpd, K: k, I: i, J: k,
				Owner:  i % workers,
				Static: i < opt.NstaticCols,
				Flops:  2 * float64(ri) * float64(bk) * float64(nrhs),
				Bytes:  8 * (float64(ri)*float64(bk) + (float64(ri)+float64(bk))*float64(nrhs)),
				Prio:   priority(i, k, RUpd),
			})
			upd.Run = func() {
				ph.Gemm(xblk(ic), tri(lower, ic, kk), xblk(kk))
			}
			b.edge(diag, upd)
			b.edge(prevW[i], upd)
			prevW[i] = upd
		}
	}

	// Backward sweep: X <- upper^{-1} X, block rows bottom to top. The
	// priority column continues past the forward sweep (nb + distance
	// from the bottom), so backward work sorts after forward work and
	// the backward diagonal chain keeps its look-ahead.
	for k := nb - 1; k >= 0; k-- {
		kk := k
		bk := span(k)
		pos := nb - 1 - k // sweep position of this step
		diag := b.add(&Task{
			Kind: DSolve, K: k, I: k,
			Owner:  k % workers,
			Static: pos < opt.NstaticCols,
			Flops:  float64(bk) * float64(bk) * float64(nrhs),
			Bytes:  8 * (float64(bk)*float64(bk)/2 + float64(bk)*float64(nrhs)),
			Prio:   priority(nb+pos, pos, DSolve),
		})
		diag.Run = func() {
			kernel.TrsmUpperLeft(tri(upper, kk, kk), xblk(kk))
		}
		b.edge(prevW[k], diag)
		prevW[k] = diag
		ph := b.panel(kernel.PanelKey{Epoch: ep, Col: k, Step: 1}, k)
		for i := k - 1; i >= 0; i-- {
			ic := i
			ri := span(i)
			upd := b.add(&Task{
				Kind: RUpd, K: k, I: i, J: k,
				Owner:  i % workers,
				Static: nb-1-i < opt.NstaticCols,
				Flops:  2 * float64(ri) * float64(bk) * float64(nrhs),
				Bytes:  8 * (float64(ri)*float64(bk) + (float64(ri)+float64(bk))*float64(nrhs)),
				Prio:   priority(nb+(nb-1-i), pos, RUpd),
			})
			upd.Run = func() {
				ph.Gemm(xblk(ic), tri(upper, ic, kk), xblk(kk))
			}
			b.edge(diag, upd)
			b.edge(prevW[i], upd)
			prevW[i] = upd
		}
	}
	return sg
}

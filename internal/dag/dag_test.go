package dag

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/layout"
	"repro/internal/mat"
)

func buildTestCALU(t *testing.T, kind layout.Kind, m, n, b, p, nstatic, group int) *CALUGraph {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	src := mat.Random(m, n, rng)
	l := layout.New(kind, src, b, layout.NewGrid(p))
	cg := BuildCALU(l, CALUOptions{NstaticCols: nstatic, Group: group})
	if err := cg.Validate(); err != nil {
		t.Fatalf("invalid graph: %v", err)
	}
	return cg
}

func TestCALUGraphValidAllLayouts(t *testing.T) {
	for _, kind := range []layout.Kind{layout.CM, layout.BCL, layout.TwoLevel} {
		buildTestCALU(t, kind, 64, 64, 8, 4, 4, 3)
	}
}

func TestCALUGraphTaskKinds(t *testing.T) {
	cg := buildTestCALU(t, layout.BCL, 64, 64, 8, 4, 8, 1)
	s := cg.ComputeStats()
	// 8x8 blocks: S tasks = sum_{k=0}^{7} (8-k-1)^2 = 49+36+...+0 = 140.
	if s.ByKind[S] != 140 {
		t.Errorf("S tasks = %d want 140", s.ByKind[S])
	}
	// U tasks = sum (8-k-1) = 28, same for L.
	if s.ByKind[U] != 28 || s.ByKind[L] != 28 {
		t.Errorf("U=%d L=%d want 28 each", s.ByKind[U], s.ByKind[L])
	}
	if s.ByKind[Final] != 8 {
		t.Errorf("F tasks = %d want 8", s.ByKind[Final])
	}
	if s.ByKind[PLeaf] == 0 {
		t.Error("no P leaves")
	}
}

func TestCALUStaticSplit(t *testing.T) {
	cg := buildTestCALU(t, layout.BCL, 64, 64, 8, 4, 4, 1)
	for _, task := range cg.Tasks {
		col := task.K
		if task.Kind == U || task.Kind == S {
			col = task.J
		}
		if (col < 4) != task.Static {
			t.Fatalf("task %v K=%d J=%d: static flag %v inconsistent with Nstatic=4",
				task.Kind, task.K, task.J, task.Static)
		}
	}
}

func TestCALUFullyDynamicHasNoStaticTasks(t *testing.T) {
	cg := buildTestCALU(t, layout.BCL, 48, 48, 8, 4, 0, 1)
	s := cg.ComputeStats()
	if s.StaticTask != 0 {
		t.Fatalf("%d static tasks in a fully dynamic graph", s.StaticTask)
	}
}

func TestCALUGroupingReducesSTasks(t *testing.T) {
	ungrouped := buildTestCALU(t, layout.BCL, 96, 96, 8, 4, 12, 1).ComputeStats()
	grouped := buildTestCALU(t, layout.BCL, 96, 96, 8, 4, 12, 3).ComputeStats()
	if grouped.ByKind[S] >= ungrouped.ByKind[S] {
		t.Fatalf("grouping did not reduce S tasks: %d vs %d", grouped.ByKind[S], ungrouped.ByKind[S])
	}
	// Grouping must preserve total update flops.
	if diff := grouped.TotalFlops - ungrouped.TotalFlops; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("grouping changed total flops by %g", diff)
	}
}

func TestTwoLevelNeverGroups(t *testing.T) {
	g1 := buildTestCALU(t, layout.TwoLevel, 96, 96, 8, 4, 12, 3).ComputeStats()
	g2 := buildTestCALU(t, layout.TwoLevel, 96, 96, 8, 4, 12, 1).ComputeStats()
	if g1.ByKind[S] != g2.ByKind[S] {
		t.Fatalf("2l-BL grouped: %d vs %d S tasks", g1.ByKind[S], g2.ByKind[S])
	}
}

func TestCALUCriticalPathPositive(t *testing.T) {
	cg := buildTestCALU(t, layout.BCL, 64, 64, 8, 4, 8, 1)
	cp := cg.CriticalPathFlops()
	total := cg.ComputeStats().TotalFlops
	if cp <= 0 || cp >= total {
		t.Fatalf("critical path %g outside (0, total=%g)", cp, total)
	}
}

func TestCALUWideAndTallShapes(t *testing.T) {
	// Non-square and ragged shapes must still produce valid graphs.
	shapes := [][2]int{{64, 32}, {32, 64}, {60, 60}, {41, 23}, {23, 41}}
	for _, s := range shapes {
		buildTestCALU(t, layout.BCL, s[0], s[1], 8, 4, 2, 3)
		buildTestCALU(t, layout.TwoLevel, s[0], s[1], 8, 2, 100, 1)
	}
}

func TestGEPPGraphValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := mat.Random(64, 64, rng)
	l := layout.NewColMajor(src, 8, layout.NewGrid(4))
	for _, la := range []bool{false, true} {
		gg := BuildGEPP(l, GEPPOptions{Lookahead: la})
		if err := gg.Validate(); err != nil {
			t.Fatalf("lookahead=%v: %v", la, err)
		}
	}
}

func TestGEPPNoLookaheadSerializesSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := mat.Random(32, 32, rng)
	l := layout.NewColMajor(src, 8, layout.NewGrid(2))
	gg := BuildGEPP(l, GEPPOptions{Lookahead: false})
	// The panel of step 1 must have in-degree = number of step-0 S tasks.
	var panel1 *Task
	for _, task := range gg.Tasks {
		if task.Kind == Final && task.K == 1 {
			panel1 = task
		}
	}
	if panel1 == nil {
		t.Fatal("no step-1 panel")
	}
	if panel1.NumDeps != 9 { // 3x3 trailing blocks at step 0
		t.Fatalf("panel 1 deps = %d want 9 (fork-join barrier)", panel1.NumDeps)
	}
}

func TestIncPivGraphValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := mat.Random(64, 64, rng)
	l := layout.NewTwoLevel(src, 8, layout.NewGrid(4))
	ig := BuildIncPiv(l)
	if err := ig.Validate(); err != nil {
		t.Fatal(err)
	}
	s := ig.ComputeStats()
	if s.ByKind[L] != 28 { // TSTRF per (k, i>k)
		t.Fatalf("TSTRF count %d want 28", s.ByKind[L])
	}
}

func TestIncPivShorterCriticalPathThanGEPP(t *testing.T) {
	// The whole point of incremental pivoting: the panel is off the
	// critical path, so its flop-weighted critical path is shorter than
	// no-lookahead GEPP on the same matrix.
	rng := rand.New(rand.NewSource(4))
	src := mat.Random(128, 128, rng)
	cm := layout.NewColMajor(src, 16, layout.NewGrid(4))
	tl := layout.NewTwoLevel(src, 16, layout.NewGrid(4))
	gepp := BuildGEPP(cm, GEPPOptions{}).CriticalPathFlops()
	incpiv := BuildIncPiv(tl).CriticalPathFlops()
	if incpiv >= gepp {
		t.Fatalf("incpiv critical path %g not shorter than GEPP %g", incpiv, gepp)
	}
}

func TestPriorityOrdering(t *testing.T) {
	// Priorities must order strictly by column, then step, then kind.
	if priority(1, 0, S) <= priority(0, 5, S) {
		t.Fatal("column must dominate")
	}
	if priority(2, 1, S) <= priority(2, 0, S) {
		t.Fatal("step must order within column")
	}
	if priority(2, 2, S) <= priority(2, 2, U) {
		t.Fatal("U must precede S within a step")
	}
}

func TestValidateDetectsCycle(t *testing.T) {
	b := newBuilder("cycle", 1)
	t1 := b.add(&Task{Kind: S})
	t2 := b.add(&Task{Kind: S})
	b.edge(t1, t2)
	b.edge(t2, t1)
	if err := b.g.Validate(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestSplitBlocks(t *testing.T) {
	chunks := splitBlocks(2, 10, 3)
	if len(chunks) != 3 {
		t.Fatalf("want 3 chunks got %v", chunks)
	}
	if chunks[0][0] != 2 || chunks[2][1] != 10 {
		t.Fatalf("coverage wrong: %v", chunks)
	}
	// More chunks than blocks collapses to one per block.
	chunks = splitBlocks(8, 10, 5)
	if len(chunks) != 2 {
		t.Fatalf("want 2 chunks got %v", chunks)
	}
}

// Property: for random shapes and splits, the CALU graph is always
// acyclic, fully connected to sources, and its S-task flop total equals
// the exact trailing-update flop count.
func TestCALUGraphStructureProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := 4 + int(rng.Int31n(5))
		mbs := 2 + int(rng.Int31n(5))
		nbs := 2 + int(rng.Int31n(5))
		m := b*mbs - int(rng.Int31n(int32(b)))
		n := b*nbs - int(rng.Int31n(int32(b)))
		p := 1 + int(rng.Int31n(6))
		nstatic := int(rng.Int31n(int32(nbs + 1)))
		group := 1 + int(rng.Int31n(3))
		kind := []layout.Kind{layout.CM, layout.BCL, layout.TwoLevel}[rng.Intn(3)]
		src := mat.Random(m, n, rng)
		l := layout.New(kind, src, b, layout.NewGrid(p))
		cg := BuildCALU(l, CALUOptions{NstaticCols: nstatic, Group: group})
		return cg.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

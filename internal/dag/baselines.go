package dag

import (
	"fmt"
	"sync"

	"repro/internal/kernel"
	"repro/internal/layout"
)

// GEPPOptions configures the MKL-style baseline builder.
type GEPPOptions struct {
	// Lookahead permits panel K+1 to start as soon as its own column is
	// updated. MKL 10.3-era dgetrf behaves like a fork-join code, so the
	// paper's comparison point is Lookahead=false: panel K+1 waits for
	// the whole step-K update (the structural bottleneck the paper
	// beats). Lookahead=true is provided for ablation studies.
	Lookahead bool
}

// GEPPGraph is the task graph of the classic blocked LU with partial
// pivoting ("MKL dgetrf" stand-in): a *sequential* panel factorization
// per step — the panel is on the critical path and is not parallelized,
// which is exactly why multithreaded LAPACK/MKL underperforms on many
// cores (section 2) — followed by a parallel trailing update.
type GEPPGraph struct {
	*Graph
	Layout layout.Layout
	// StepSwaps mirrors CALUGraph: global row interchanges per step.
	StepSwaps [][][2]int
	PivCount  []int
}

// BuildGEPP constructs the baseline graph. Real-mode execution requires
// a column-major layout (MKL operates on CM); other layouts may still
// be used for simulation-only graphs.
func BuildGEPP(l layout.Layout, opt GEPPOptions) *GEPPGraph {
	m, n, bsz := l.Dims()
	mb, nb := l.Blocks()
	workers := l.Grid().Workers()
	steps := min(mb, nb)
	b := newBuilder(fmt.Sprintf("GEPP(%s)", l.Kind()), workers)
	gg := &GEPPGraph{
		Graph:     b.g,
		Layout:    l,
		StepSwaps: make([][][2]int, steps),
		PivCount:  make([]int, steps),
	}
	cm, isCM := l.(*layout.ColMajor)
	span := func(i, ext int) int { return blockSpanOf(i, bsz, ext) }

	var updPrev map[[2]int]*Task
	var allPrev []*Task
	for k := 0; k < steps; k++ {
		kk := k
		bw := span(k, n)
		base := k * bsz
		rows := m - base
		pivCount := min(bw, rows)
		gg.PivCount[k] = pivCount

		panel := b.add(&Task{
			Kind: Final, K: k,
			Owner: l.Owner(k, k),
			Flops: 2 * float64(rows) * float64(bw) * float64(bw),
			Bytes: 8 * float64(rows) * float64(bw),
			Prio:  priority(k, k, Final),
		})
		if isCM {
			panel.Run = func() {
				full := cm.Block(0, 0) // whole matrix view (stride = m)
				pv := kernel.View{Rows: rows, Cols: bw, Stride: full.Stride, Data: full.Data[base*full.Stride+base:]}
				pivots := make([]int, pivCount)
				if err := kernel.RecursiveLU(pv, pivots); err != nil {
					panic(fmt.Sprintf("dag: GEPP panel %d: %v", kk, err))
				}
				swaps := make([][2]int, 0, pivCount)
				for t, p := range pivots {
					if p != t {
						swaps = append(swaps, [2]int{base + t, base + p})
					}
				}
				gg.StepSwaps[kk] = swaps
			}
		}
		if updPrev != nil {
			if opt.Lookahead {
				for i := k; i < mb; i++ {
					b.edge(updPrev[[2]int{i, k}], panel)
				}
			} else {
				for _, t := range allPrev {
					b.edge(t, panel)
				}
			}
		}

		uTasks := make(map[int]*Task, nb-k-1)
		for j := k + 1; j < nb; j++ {
			jc := j
			cj := span(j, n)
			t := b.add(&Task{
				Kind: U, K: k, J: j,
				Owner: l.Owner(k, j),
				Flops: float64(pivCount) * float64(pivCount) * float64(cj),
				Bytes: 8 * (float64(rows)*float64(cj) + float64(pivCount)*float64(pivCount)),
				Prio:  priority(j, k, U),
			})
			if isCM {
				t.Run = func() {
					for _, sw := range gg.StepSwaps[kk] {
						cm.SwapRows(jc, sw[0], sw[1])
					}
					full := cm.Block(0, 0)
					lv := kernel.View{Rows: pivCount, Cols: pivCount, Stride: full.Stride, Data: full.Data[base*full.Stride+base:]}
					blk := cm.Block(kk, jc)
					top := kernel.View{Rows: pivCount, Cols: blk.Cols, Stride: blk.Stride, Data: blk.Data}
					kernel.TrsmLowerLeftUnit(lv, top)
					if blk.Rows > pivCount {
						low := kernel.View{Rows: blk.Rows - pivCount, Cols: blk.Cols, Stride: blk.Stride, Data: blk.Data[pivCount:]}
						llow := kernel.View{Rows: blk.Rows - pivCount, Cols: pivCount, Stride: full.Stride, Data: full.Data[base*full.Stride+base+pivCount:]}
						kernel.Gemm(low, llow, top)
					}
				}
			}
			b.edge(panel, t)
			if updPrev != nil && opt.Lookahead {
				for i := k; i < mb; i++ {
					b.edge(updPrev[[2]int{i, jc}], t)
				}
			}
			uTasks[j] = t
		}

		updCur := make(map[[2]int]*Task)
		var all []*Task
		for i := k + 1; i < mb; i++ {
			ic := i
			ri := span(i, m)
			for j := k + 1; j < nb; j++ {
				jc := j
				cj := span(j, n)
				t := b.add(&Task{
					Kind: S, K: k, I: i, J: j,
					Owner: l.Owner(i, j),
					Flops: 2 * float64(ri) * float64(pivCount) * float64(cj),
					Bytes: 8 * (float64(ri)*float64(pivCount) + float64(pivCount)*float64(cj) + float64(ri)*float64(cj)),
					Prio:  priority(j, k, S),
				})
				if isCM {
					t.Run = func() {
						full := cm.Block(0, 0)
						lblk := cm.Block(ic, kk)
						a := kernel.View{Rows: lblk.Rows, Cols: pivCount, Stride: lblk.Stride, Data: lblk.Data}
						ublk := cm.Block(kk, jc)
						bt := kernel.View{Rows: pivCount, Cols: ublk.Cols, Stride: ublk.Stride, Data: ublk.Data}
						cv := cm.Block(ic, jc)
						kernel.Gemm(cv, a, bt)
						_ = full
					}
				}
				b.edge(uTasks[j], t)
				// The panel computed L in place, so S depends on the panel
				// transitively through U; the direct edge below keeps the
				// write to block (i,j) ordered after step k-1's write.
				if updPrev != nil && opt.Lookahead {
					b.edge(updPrev[[2]int{ic, jc}], t)
				}
				updCur[[2]int{i, j}] = t
				all = append(all, t)
			}
		}
		updPrev = updCur
		allPrev = all
	}
	return gg
}

// FinishPermutation mirrors CALUGraph.FinishPermutation for the GEPP
// baseline: assembles the global permutation and applies the deferred
// left swaps.
func (gg *GEPPGraph) FinishPermutation() []int {
	m, _, _ := gg.Layout.Dims()
	perm := make([]int, m)
	for i := range perm {
		perm[i] = i
	}
	for k, swaps := range gg.StepSwaps {
		for _, sw := range swaps {
			perm[sw[0]], perm[sw[1]] = perm[sw[1]], perm[sw[0]]
		}
		for j := 0; j < k; j++ {
			for _, sw := range swaps {
				gg.Layout.SwapRows(j, sw[0], sw[1])
			}
		}
	}
	return perm
}

// IncPivGraph is the task graph of tiled LU with incremental pivoting,
// the algorithm behind PLASMA's dgetrf_incpiv (section 5.3): pivoting
// is confined to tile pairs, which removes the panel factorization from
// the critical path at the cost of extra flops in the SSSSM updates and
// a weaker pivoting strategy (the stability concern the paper cites).
type IncPivGraph struct {
	*Graph
	Layout layout.Layout

	mu sync.Mutex
	// ts[k*mb+i] stores the TSTRF elimination of step k against block
	// row i: the 2b x b unit-lower factors and the local pivot sequence,
	// replayed by the SSSSM tasks.
	ts map[int]*tstrfState
	// diagPiv[k] is the pivot sequence of the diagonal GETRF.
	diagPiv map[int][]int
}

type tstrfState struct {
	lfac []float64 // (b1+b2) x b1 column-major L factors
	rows int
	cols int
	piv  []int
}

// IncPivFlopOverhead is the extra-flop factor incremental pivoting pays
// in its stacked-tile updates relative to a plain gemm update; PLASMA's
// inner blocking keeps it well under the naive 2x, and the simulator
// charges this calibrated value.
const IncPivFlopOverhead = 1.18

// BuildIncPiv constructs the incremental-pivoting graph. Real-mode
// execution requires the TwoLevel layout (PLASMA stores tiles).
func BuildIncPiv(l layout.Layout) *IncPivGraph {
	m, n, bsz := l.Dims()
	mb, nb := l.Blocks()
	workers := l.Grid().Workers()
	steps := min(mb, nb)
	b := newBuilder(fmt.Sprintf("IncPiv(%s)", l.Kind()), workers)
	ig := &IncPivGraph{
		Graph:   b.g,
		Layout:  l,
		ts:      map[int]*tstrfState{},
		diagPiv: map[int][]int{},
	}
	_, isTL := l.(*layout.TwoLevelBlock)
	span := func(i, ext int) int { return blockSpanOf(i, bsz, ext) }

	// prev[(i,j)] is the last task that wrote tile (i,j).
	prev := map[[2]int]*Task{}
	for k := 0; k < steps; k++ {
		kk := k
		bw := span(k, n)
		rk := span(k, m)
		pivCount := min(bw, rk)

		getrf := b.add(&Task{
			Kind: Final, K: k,
			Owner: l.Owner(k, k),
			Flops: (2.0 / 3.0) * float64(bw) * float64(bw) * float64(bw),
			Bytes: 8 * float64(rk) * float64(bw),
			Prio:  priority(k, k, Final),
		})
		if isTL {
			getrf.Run = func() {
				tile := l.Block(kk, kk)
				pv := make([]int, min(tile.Rows, tile.Cols))
				if err := kernel.Getf2(tile, pv); err != nil {
					panic(fmt.Sprintf("dag: incpiv GETRF %d: %v", kk, err))
				}
				ig.mu.Lock()
				ig.diagPiv[kk] = pv
				ig.mu.Unlock()
			}
		}
		b.edge(prev[[2]int{k, k}], getrf)

		gessm := make(map[int]*Task, nb-k-1)
		for j := k + 1; j < nb; j++ {
			jc := j
			cj := span(j, n)
			t := b.add(&Task{
				Kind: U, K: k, J: j,
				Owner: l.Owner(k, j),
				Flops: float64(pivCount) * float64(pivCount) * float64(cj),
				Bytes: 8 * (float64(rk)*float64(cj) + float64(pivCount)*float64(pivCount)),
				Prio:  priority(j, k, U),
			})
			if isTL {
				t.Run = func() {
					diag := l.Block(kk, kk)
					tile := l.Block(kk, jc)
					ig.mu.Lock()
					pv := ig.diagPiv[kk]
					ig.mu.Unlock()
					kernel.Laswp(tile, pv, 0, len(pv))
					lv := kernel.View{Rows: pivCount, Cols: pivCount, Stride: diag.Stride, Data: diag.Data}
					top := kernel.View{Rows: pivCount, Cols: tile.Cols, Stride: tile.Stride, Data: tile.Data}
					kernel.TrsmLowerLeftUnit(lv, top)
					if tile.Rows > pivCount {
						low := kernel.View{Rows: tile.Rows - pivCount, Cols: tile.Cols, Stride: tile.Stride, Data: tile.Data[pivCount:]}
						llow := kernel.View{Rows: tile.Rows - pivCount, Cols: pivCount, Stride: diag.Stride, Data: diag.Data[pivCount:]}
						kernel.Gemm(low, llow, top)
					}
				}
			}
			b.edge(getrf, t)
			b.edge(prev[[2]int{k, j}], t)
			gessm[j] = t
		}

		// TSTRF chain down the panel; each SSSSM row chain follows it.
		prevDiagWriter := getrf
		rowU := make(map[int]*Task, nb-k-1) // last writer of tile (k,j) in this step's chain
		for j := k + 1; j < nb; j++ {
			rowU[j] = gessm[j]
		}
		for i := k + 1; i < mb; i++ {
			ic := i
			ri := span(i, m)
			tstrf := b.add(&Task{
				Kind: L, K: k, I: i,
				Owner: l.Owner(i, k),
				Flops: float64(ri) * float64(bw) * float64(bw) * IncPivFlopOverhead,
				Bytes: 8 * (float64(ri) + float64(bw)) * float64(bw),
				Prio:  priority(k, k, L),
			})
			if isTL {
				tstrf.Run = func() { ig.runTSTRF(kk, ic, bw) }
			}
			b.edge(prevDiagWriter, tstrf)
			b.edge(prev[[2]int{i, k}], tstrf)
			prevDiagWriter = tstrf

			for j := k + 1; j < nb; j++ {
				jc := j
				cj := span(j, n)
				ssssm := b.add(&Task{
					Kind: S, K: k, I: i, J: j,
					Owner: l.Owner(i, j),
					Flops: 2 * float64(ri) * float64(pivCount) * float64(cj) * IncPivFlopOverhead,
					Bytes: 8 * (float64(ri)*float64(pivCount) + float64(pivCount)*float64(cj) + 2*float64(ri)*float64(cj)),
					Prio:  priority(j, k, S),
				})
				if isTL {
					ssssm.Run = func() { ig.runSSSSM(kk, ic, jc) }
				}
				b.edge(tstrf, ssssm)
				b.edge(rowU[j], ssssm)
				b.edge(prev[[2]int{i, j}], ssssm)
				rowU[j] = ssssm
				prev[[2]int{i, j}] = ssssm
			}
			prev[[2]int{i, k}] = tstrf
		}
		prev[[2]int{k, k}] = prevDiagWriter
		for j := k + 1; j < nb; j++ {
			prev[[2]int{k, j}] = rowU[j]
		}
	}
	return ig
}

// runTSTRF factors the stacked pair [U_kk ; A_ik] with partial pivoting
// across the 2b rows, storing the elimination so SSSSM can replay it.
func (ig *IncPivGraph) runTSTRF(k, i, bw int) {
	l := ig.Layout
	diag := l.Block(k, k)
	tile := l.Block(i, k)
	r1 := min(diag.Rows, bw) // U rows in the diagonal tile
	r2 := tile.Rows
	// Stack the upper triangle of the diagonal tile over the full tile.
	w := make([]float64, (r1+r2)*bw)
	wv := kernel.View{Rows: r1 + r2, Cols: bw, Stride: r1 + r2, Data: w}
	for j := 0; j < bw; j++ {
		for ii := 0; ii < r1; ii++ {
			if ii <= j {
				wv.Set(ii, j, diag.At(ii, j))
			}
		}
		for ii := 0; ii < r2; ii++ {
			wv.Set(r1+ii, j, tile.At(ii, j))
		}
	}
	pv := make([]int, min(r1+r2, bw))
	if err := kernel.Getf2(wv, pv); err != nil {
		panic(fmt.Sprintf("dag: incpiv TSTRF (%d,%d): %v", k, i, err))
	}
	// Write back: new U into the diagonal tile's upper triangle, L rows
	// of the bottom part into tile (i,k); keep the full L + pivots for
	// the SSSSM replays.
	st := &tstrfState{rows: r1 + r2, cols: bw, piv: pv, lfac: make([]float64, (r1+r2)*bw)}
	for j := 0; j < bw; j++ {
		for ii := 0; ii < r1+r2; ii++ {
			v := wv.At(ii, j)
			if ii <= j {
				if ii < r1 {
					diag.Set(ii, j, v) // updated U
				}
			} else {
				st.lfac[j*(r1+r2)+ii] = v
				if ii >= r1 {
					tile.Set(ii-r1, j, v)
				}
			}
		}
	}
	ig.mu.Lock()
	ig.ts[tsKey(k, i)] = st
	ig.mu.Unlock()
}

// runSSSSM replays the TSTRF elimination of (k,i) on the stacked pair
// [A_kj ; A_ij].
func (ig *IncPivGraph) runSSSSM(k, i, j int) {
	l := ig.Layout
	ig.mu.Lock()
	st := ig.ts[tsKey(k, i)]
	ig.mu.Unlock()
	if st == nil {
		panic(fmt.Sprintf("dag: SSSSM before TSTRF (%d,%d)", k, i))
	}
	top := l.Block(k, j)
	bot := l.Block(i, j)
	r1 := st.rows - bot.Rows
	cols := top.Cols
	z := make([]float64, st.rows*cols)
	zv := kernel.View{Rows: st.rows, Cols: cols, Stride: st.rows, Data: z}
	for c := 0; c < cols; c++ {
		for r := 0; r < r1; r++ {
			zv.Set(r, c, top.At(r, c))
		}
		for r := 0; r < bot.Rows; r++ {
			zv.Set(r1+r, c, bot.At(r, c))
		}
	}
	kernel.Laswp(zv, st.piv, 0, len(st.piv))
	lv := kernel.View{Rows: st.rows, Cols: st.cols, Stride: st.rows, Data: st.lfac}
	// Apply the unit-lower trapezoid eliminations column by column.
	for c := 0; c < st.cols; c++ {
		for r := c + 1; r < st.rows; r++ {
			lrc := lv.At(r, c)
			if lrc == 0 {
				continue
			}
			for cc := 0; cc < cols; cc++ {
				zv.Set(r, cc, zv.At(r, cc)-lrc*zv.At(c, cc))
			}
		}
	}
	for c := 0; c < cols; c++ {
		for r := 0; r < r1; r++ {
			top.Set(r, c, zv.At(r, c))
		}
		for r := 0; r < bot.Rows; r++ {
			bot.Set(r, c, zv.At(r1+r, c))
		}
	}
}

func tsKey(k, i int) int { return k<<20 | i }

// Package dag builds the task dependency graphs of the factorization
// algorithms: CALU (the paper's algorithm, section 2/3), the MKL-style
// GEPP baseline and the PLASMA-style incremental-pivoting baseline.
//
// A Graph is executed either by the real goroutine runtime
// (internal/rt), which calls each task's Run closure to do actual
// arithmetic on the layout's storage, or by the discrete-event
// simulator (internal/sim), which ignores Run and charges the task's
// Flops/Bytes to a machine model. Both consume the same dependency
// structure and the same static/dynamic split, so the scheduling
// behaviour under study is identical in the two modes.
package dag

import (
	"fmt"
	"sync/atomic"

	"repro/internal/kernel"
)

// Kind labels a task with the paper's taxonomy (section 2): P tasks
// participate in TSLU preprocessing, L/U compute the panel factors, S
// updates the trailing matrix. The P work is split into tree leaves,
// tree combines and the finalization that applies the winning pivots.
type Kind uint8

const (
	// PLeaf runs GEPP on one chunk of panel rows to nominate candidates.
	PLeaf Kind = iota
	// PCombine merges two candidate sets in the tournament tree.
	PCombine
	// Final applies the winning swaps to the panel and factors the
	// b x b pivot block (the end of task P in the paper's notation).
	Final
	// L computes L_IK = A_IK * U_KK^{-1} for one block row.
	L
	// U applies the step's row swaps to one block column and computes
	// U_KJ = L_KK^{-1} A_KJ (the paper's "right swap" + task U).
	U
	// S updates trailing blocks: A_IJ -= L_IK * U_KJ, possibly grouped
	// over several owned block columns (the k=3 grouping of section 3).
	S
	// DSolve is a diagonal triangular-solve task of the blocked
	// triangular-solve graph (solve.go): X_K <- T_KK^{-1} X_K.
	DSolve
	// RUpd is a right-hand-side GEMM update task of the solve graph:
	// X_I -= T_IK * X_K.
	RUpd
)

// String returns a short human-readable kind name.
func (k Kind) String() string {
	switch k {
	case PLeaf:
		return "P-leaf"
	case PCombine:
		return "P-comb"
	case Final:
		return "F"
	case L:
		return "L"
	case U:
		return "U"
	case S:
		return "S"
	case DSolve:
		return "D"
	case RUpd:
		return "R"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// kindOrder breaks priority ties so panel-critical work runs first.
func kindOrder(k Kind) int {
	switch k {
	case PLeaf:
		return 0
	case PCombine:
		return 1
	case Final:
		return 2
	case L, DSolve:
		return 3
	case U:
		return 4
	default:
		return 5
	}
}

// Task is one node of the dependency graph.
type Task struct {
	ID   int32
	Kind Kind
	// K is the panel step; I is the block row (L/S), chunk or tree index
	// (P tasks); J is the leading block column (U/S).
	K, I, J int
	// Group lists every block row a grouped S task covers (the paper's
	// k-way fusion of update blocks that share the same columns); nil
	// means the task covers only block row I.
	Group []int
	// Owner is the worker that owns the task's output block under the
	// 2D block-cyclic distribution; it is the task's data home for the
	// locality model, and the queue it is pinned to when Static.
	Owner int
	// Static marks tasks in the first Nstatic panels (Algorithm 1).
	Static bool
	// Flops and Bytes drive the simulator's cost model.
	Flops float64
	Bytes float64
	// Prio orders ready queues: ascending = left-to-right, panel first,
	// which realizes both the look-ahead of the static section and the
	// DFS traversal of Algorithm 2 in the dynamic section.
	Prio int64
	// Run performs the actual arithmetic (nil in baseline graphs built
	// only for simulation).
	Run func()

	// NumDeps is the static in-degree. It is immutable once the graph
	// is built; the mutable remaining-dependency counter lives in the
	// unexported `remaining` field below and is re-armed by ResetDeps,
	// so a Graph can be executed many times.
	NumDeps int32
	// Outs lists dependent task IDs.
	Outs []int32

	// remaining counts unsatisfied dependencies during one execution.
	// It is decremented atomically by ResolveSuccessors so that task
	// completion can resolve and enqueue ready successors from many
	// workers at once without a global lock. One Graph supports one
	// execution at a time (serial simulator or concurrent runtime);
	// concurrent executions of the same Graph value would share this
	// counter and must clone the graph instead.
	remaining atomic.Int32
}

// Graph is an immutable task DAG plus bookkeeping shared by runtimes.
type Graph struct {
	Tasks []*Task
	// Workers is the worker count the static distribution was built for.
	Workers int
	// Name describes the algorithm for traces and error messages.
	Name string
	// Panels lists the shared packed-B panel handles the graph's Run
	// closures consume (kernel.SharedBPanel). Each handle frees its
	// buffer when its last consumer finishes; ReleasePanels reclaims the
	// ones stranded by an aborted execution, and ResetDeps re-arms them
	// alongside the dependency counters.
	Panels []*kernel.SharedBPanel
}

// ReleasePanels force-frees every shared panel buffer still held by the
// graph. Runtimes call it after workers have drained — on the success
// path all handles are already freed by their last consumer and this is
// a no-op; after an abort it reclaims the cache budget of panels whose
// consumers never ran.
func (g *Graph) ReleasePanels() {
	for _, p := range g.Panels {
		p.ForceFree()
	}
}

// ResetDeps arms the graph for one execution: every task's remaining-
// dependency counter is reset to its static in-degree. It returns the
// initially ready (zero-dependency) tasks in ID order, which keeps the
// serial simulator's seeding deterministic. Must not run concurrently
// with an execution of the same graph.
func (g *Graph) ResetDeps() []*Task {
	for _, p := range g.Panels {
		p.Reset()
	}
	var ready []*Task
	for _, t := range g.Tasks {
		t.remaining.Store(t.NumDeps)
		if t.NumDeps == 0 {
			ready = append(ready, t)
		}
	}
	return ready
}

// ResolveSuccessors records the completion of t: each successor's
// remaining-dependency counter is decremented atomically, and the ones
// that reach zero — now ready to run — are appended to ready, which is
// returned (pass a scratch slice to avoid allocation). It is safe to
// call from many goroutines for different completed tasks; each
// successor reaches zero exactly once, so exactly one caller enqueues
// it.
func (g *Graph) ResolveSuccessors(t *Task, ready []*Task) []*Task {
	for _, o := range t.Outs {
		s := g.Tasks[o]
		if s.remaining.Add(-1) == 0 {
			ready = append(ready, s)
		}
	}
	return ready
}

// priority computes the global ordering key: column-major (left to
// right), then by step, then by kind. col is the task's leading block
// column (K for P/F/L tasks, J for U/S).
func priority(col, k int, kind Kind) int64 {
	return int64(col)<<32 | int64(k)<<8 | int64(kindOrder(kind))
}

// builder accumulates tasks and edges.
type builder struct {
	g *Graph
}

func newBuilder(name string, workers int) *builder {
	return &builder{g: &Graph{Name: name, Workers: workers}}
}

func (b *builder) add(t *Task) *Task {
	t.ID = int32(len(b.g.Tasks))
	b.g.Tasks = append(b.g.Tasks, t)
	return t
}

// panel registers a shared packed-B panel handle with the graph so the
// runtime can reclaim it after an aborted run. Nil handles (uses < 2,
// or caching disabled) are skipped; the closures treat them as plain
// Gemm calls.
func (b *builder) panel(key kernel.PanelKey, uses int) *kernel.SharedBPanel {
	p := kernel.NewSharedBPanel(key, uses)
	if p != nil {
		b.g.Panels = append(b.g.Panels, p)
	}
	return p
}

// edge makes `to` depend on `from`.
func (b *builder) edge(from, to *Task) {
	if from == nil || to == nil {
		return
	}
	from.Outs = append(from.Outs, to.ID)
	to.NumDeps++
}

// Validate checks structural invariants: every edge target exists, the
// graph is acyclic, and every task is reachable from the sources. It
// returns an error describing the first violation.
func (g *Graph) Validate() error {
	n := len(g.Tasks)
	indeg := make([]int32, n)
	for id, t := range g.Tasks {
		if int32(id) != t.ID {
			return fmt.Errorf("dag: task %d stored at index %d", t.ID, id)
		}
		for _, o := range t.Outs {
			if o < 0 || int(o) >= n {
				return fmt.Errorf("dag: task %d has edge to missing task %d", t.ID, o)
			}
			indeg[o]++
		}
	}
	for id, t := range g.Tasks {
		if indeg[id] != t.NumDeps {
			return fmt.Errorf("dag: task %d in-degree %d != NumDeps %d", id, indeg[id], t.NumDeps)
		}
	}
	// Kahn's algorithm: if we cannot consume every task, there is a cycle.
	queue := make([]int32, 0, n)
	for id, t := range g.Tasks {
		if t.NumDeps == 0 {
			queue = append(queue, int32(id))
		}
	}
	seen := 0
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, o := range g.Tasks[id].Outs {
			indeg[o]--
			if indeg[o] == 0 {
				queue = append(queue, o)
			}
		}
	}
	if seen != n {
		return fmt.Errorf("dag: cycle detected, only %d of %d tasks schedulable", seen, n)
	}
	return nil
}

// Stats summarizes a graph for tests and reports.
type Stats struct {
	Total      int
	ByKind     map[Kind]int
	StaticTask int
	DynTask    int
	Edges      int
	TotalFlops float64
}

// ComputeStats tallies task counts, the static/dynamic split and flops.
func (g *Graph) ComputeStats() Stats {
	s := Stats{ByKind: map[Kind]int{}}
	for _, t := range g.Tasks {
		s.Total++
		s.ByKind[t.Kind]++
		if t.Static {
			s.StaticTask++
		} else {
			s.DynTask++
		}
		s.Edges += len(t.Outs)
		s.TotalFlops += t.Flops
	}
	return s
}

// CriticalPathFlops returns the longest flop-weighted path through the
// graph, the quantity T_criticalPath in the paper's section 6 model.
func (g *Graph) CriticalPathFlops() float64 {
	n := len(g.Tasks)
	longest := make([]float64, n)
	indeg := make([]int32, n)
	for _, t := range g.Tasks {
		indeg[t.ID] = t.NumDeps
	}
	queue := make([]int32, 0, n)
	for _, t := range g.Tasks {
		if t.NumDeps == 0 {
			queue = append(queue, t.ID)
			longest[t.ID] = t.Flops
		}
	}
	best := 0.0
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if longest[id] > best {
			best = longest[id]
		}
		for _, o := range g.Tasks[id].Outs {
			if cand := longest[id] + g.Tasks[o].Flops; cand > longest[o] {
				longest[o] = cand
			}
			indeg[o]--
			if indeg[o] == 0 {
				queue = append(queue, o)
			}
		}
	}
	return best
}

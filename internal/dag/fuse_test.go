package dag

import (
	"sync/atomic"
	"testing"
)

// chainGraph builds a synthetic linear chain of n tasks whose Run
// closures append their (graph tag, index) to got — enough structure to
// exercise fusion without real arithmetic.
func chainGraph(tag string, n, workers int, got *[]string, labels []string) *Graph {
	b := newBuilder(tag, workers)
	var prev *Task
	for i := 0; i < n; i++ {
		idx := i
		t := b.add(&Task{Kind: S, K: i, I: i, Owner: i % workers, Prio: int64(i)})
		t.Run = func() { *got = append(*got, labels[idx]) }
		b.edge(prev, t)
		prev = t
	}
	return b.g
}

// TestFuseStructure checks the composite forest: IDs re-based, edges
// intact, owners offset per part, Validate clean, and part spans
// recoverable through PartOf.
func TestFuseStructure(t *testing.T) {
	var sink []string
	la := []string{"a0", "a1", "a2"}
	lb := []string{"b0", "b1"}
	ga := chainGraph("A", 3, 2, &sink, la)
	gb := chainGraph("B", 2, 1, &sink, lb)
	fg := Fuse(
		FusePart{G: ga, Label: "A"},
		FusePart{G: gb, Label: "B"},
	)
	if err := fg.Validate(); err != nil {
		t.Fatalf("fused graph invalid: %v", err)
	}
	if len(fg.Tasks) != 5 {
		t.Fatalf("fused task count %d, want 5", len(fg.Tasks))
	}
	// Part B's owners must be offset by part A's worker width (2).
	if got := fg.Tasks[3].Owner; got != 2 {
		t.Fatalf("part B owner offset: got %d, want 2", got)
	}
	// Two roots: task 0 of each part.
	roots := fg.ResetDeps()
	if len(roots) != 2 || roots[0].ID != 0 || roots[1].ID != 3 {
		t.Fatalf("fused roots %v, want IDs [0 3]", roots)
	}
	for id, want := range map[int32]int{0: 0, 2: 0, 3: 1, 4: 1} {
		if got := fg.PartOf(id); got != want {
			t.Fatalf("PartOf(%d) = %d, want %d", id, got, want)
		}
	}
	if fg.PartOf(99) != -1 {
		t.Fatal("PartOf(out of range) should be -1")
	}
	// The member graphs were cloned, not mutated.
	if ga.Tasks[0].ID != 0 || gb.Tasks[0].ID != 0 {
		t.Fatal("Fuse mutated the member graphs' task IDs")
	}
	if gb.Tasks[0].Owner != 0 {
		t.Fatal("Fuse mutated the member graphs' owners")
	}
}

// TestFuseOnDonePerRoot executes a fused forest serially (topological
// drain through ResetDeps/ResolveSuccessors, the simulator's discipline)
// and checks each member's OnDone fires exactly once, at the moment its
// own last task — not the whole forest — completes.
func TestFuseOnDonePerRoot(t *testing.T) {
	var ran []string
	la := []string{"a0", "a1", "a2"}
	lb := []string{"b0", "b1"}
	ga := chainGraph("A", 3, 1, &ran, la)
	gb := chainGraph("B", 2, 1, &ran, lb)
	var aDone, bDone atomic.Int32
	var ranAtADone, ranAtBDone int
	fg := Fuse(
		FusePart{G: ga, Label: "A", OnDone: func() { aDone.Add(1); ranAtADone = len(ran) }},
		FusePart{G: gb, Label: "B", OnDone: func() { bDone.Add(1); ranAtBDone = len(ran) }},
	)
	ready := fg.ResetDeps()
	for len(ready) > 0 {
		t0 := ready[0]
		ready = ready[1:]
		t0.Run()
		ready = fg.ResolveSuccessors(t0, ready)
	}
	if len(ran) != 5 {
		t.Fatalf("executed %d tasks, want 5", len(ran))
	}
	if aDone.Load() != 1 || bDone.Load() != 1 {
		t.Fatalf("OnDone counts a=%d b=%d, want 1 and 1", aDone.Load(), bDone.Load())
	}
	// The FIFO drain interleaves the two chains, so each part's OnDone
	// must have fired before the entire forest drained (the per-root,
	// not per-forest, property).
	if ranAtADone == 5 && ranAtBDone == 5 {
		t.Fatal("both OnDone callbacks fired only at forest completion")
	}
	// And each fired with its own part fully executed.
	countPrefix := func(upto int, prefix byte) int {
		c := 0
		for _, s := range ran[:upto] {
			if s[0] == prefix {
				c++
			}
		}
		return c
	}
	if c := countPrefix(ranAtADone, 'a'); c != 3 {
		t.Fatalf("OnDone(A) fired with %d/3 of A's tasks executed", c)
	}
	if c := countPrefix(ranAtBDone, 'b'); c != 2 {
		t.Fatalf("OnDone(B) fired with %d/2 of B's tasks executed", c)
	}
}

package dag

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/layout"
)

// CholeskyGraph is the task graph of tiled Cholesky factorization
// (A = L*L^T, lower) under the same hybrid static/dynamic scheduling
// machinery as CALU. The paper's conclusion (section 9) claims the
// technique transfers to Cholesky; this builder realizes that
// future-work item. Cholesky has no pivoting, so its "panel" is a
// single POTRF tile and the hybrid split applies cleanly: tasks whose
// output column is below NstaticCols are owner-pinned, the rest feed
// the shared DFS queue.
type CholeskyGraph struct {
	*Graph
	Layout layout.Layout
}

// BuildCholesky constructs the tiled Cholesky graph over the lower
// triangle of the layout's matrix:
//
//	POTRF(k):   A_kk = L_kk L_kk^T
//	TRSM(i,k):  A_ik <- A_ik L_kk^{-T}           (i > k)
//	UPD(i,j,k): A_ij <- A_ij - A_ik A_jk^T       (k < j <= i)
//
// Kind mapping for scheduling/cost purposes: POTRF -> Final,
// TRSM -> L, UPD -> S.
func BuildCholesky(l layout.Layout, opt CALUOptions) *CholeskyGraph {
	m, n, bsz := l.Dims()
	if m != n {
		panic(fmt.Sprintf("dag: cholesky needs a square matrix, got %dx%d", m, n))
	}
	mb, _ := l.Blocks()
	workers := l.Grid().Workers()
	b := newBuilder(fmt.Sprintf("Cholesky(%s,Nstatic=%d)", l.Kind(), opt.NstaticCols), workers)
	cg := &CholeskyGraph{Graph: b.g, Layout: l}

	isStatic := func(col int) bool { return col < opt.NstaticCols }
	span := func(i int) int { return blockSpanOf(i, bsz, n) }

	// prev[(i,j)] is the last writer of tile (i,j) (lower triangle only).
	prev := map[[2]int]*Task{}
	for k := 0; k < mb; k++ {
		kk := k
		bk := span(k)

		potrf := b.add(&Task{
			Kind: Final, K: k,
			Owner:  l.Owner(k, k),
			Static: isStatic(k),
			Flops:  float64(bk) * float64(bk) * float64(bk) / 3,
			Bytes:  8 * float64(bk) * float64(bk),
			Prio:   priority(k, k, Final),
		})
		if !opt.SimOnly {
			potrf.Run = func() {
				if err := kernel.Potf2(l.Block(kk, kk)); err != nil {
					panic(fmt.Sprintf("dag: POTRF step %d: %v", kk, err))
				}
			}
		}
		b.edge(prev[[2]int{k, k}], potrf)

		trsm := make(map[int]*Task, mb-k-1)
		for i := k + 1; i < mb; i++ {
			ic := i
			ri := span(i)
			t := b.add(&Task{
				Kind: L, K: k, I: i,
				Owner:  l.Owner(i, k),
				Static: isStatic(k),
				Flops:  float64(ri) * float64(bk) * float64(bk),
				Bytes:  8 * (float64(ri)*float64(bk) + float64(bk)*float64(bk)),
				Prio:   priority(k, k, L),
			})
			if !opt.SimOnly {
				t.Run = func() {
					kernel.TrsmRightLowerTrans(l.Block(kk, kk), l.Block(ic, kk))
				}
			}
			b.edge(potrf, t)
			b.edge(prev[[2]int{i, k}], t)
			trsm[i] = t
			prev[[2]int{i, k}] = t
		}

		for j := k + 1; j < mb; j++ {
			jc := j
			cj := span(j)
			for i := j; i < mb; i++ {
				ic := i
				ri := span(i)
				t := b.add(&Task{
					Kind: S, K: k, I: i, J: j,
					Owner:  l.Owner(i, j),
					Static: isStatic(j),
					Flops:  2 * float64(ri) * float64(bk) * float64(cj),
					Bytes:  8 * (float64(ri)*float64(bk) + float64(cj)*float64(bk) + float64(ri)*float64(cj)),
					Prio:   priority(j, k, S),
				})
				if !opt.SimOnly {
					t.Run = func() {
						kernel.GemmNT(l.Block(ic, jc), l.Block(ic, kk), l.Block(jc, kk))
					}
				}
				b.edge(trsm[i], t)
				if i != j {
					b.edge(trsm[j], t)
				}
				b.edge(prev[[2]int{i, j}], t)
				prev[[2]int{i, j}] = t
			}
		}
		prev[[2]int{k, k}] = potrf
	}
	return cg
}

// Package mat provides the dense matrix substrate used throughout the
// repository: a column-major matrix type with strided views, norms,
// residual helpers and seeded random generators.
//
// The column-major convention (element (i,j) lives at Data[j*Stride+i])
// matches LAPACK and the paper's description of the classic layout, and
// lets every other layout in internal/layout expose its blocks as cheap
// strided views without copying.
package mat

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a column-major matrix view. It may own its backing slice or
// alias a region of a larger allocation; the type does not distinguish.
// The zero value is an empty matrix.
type Dense struct {
	Rows   int
	Cols   int
	Stride int // distance in Data between columns; Stride >= Rows
	Data   []float64
}

// New allocates an r x c zero matrix with a tight stride.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Stride: max(r, 1), Data: make([]float64, r*c)}
}

// FromColMajor wraps an existing column-major slice without copying.
func FromColMajor(r, c, stride int, data []float64) *Dense {
	if stride < r {
		panic(fmt.Sprintf("mat: stride %d < rows %d", stride, r))
	}
	need := 0
	if r > 0 && c > 0 {
		need = (c-1)*stride + r
	}
	if len(data) < need {
		panic(fmt.Sprintf("mat: slice length %d too short for %dx%d stride %d", len(data), r, c, stride))
	}
	return &Dense{Rows: r, Cols: c, Stride: stride, Data: data}
}

// At returns element (i,j).
func (a *Dense) At(i, j int) float64 {
	a.checkIdx(i, j)
	return a.Data[j*a.Stride+i]
}

// Set stores v at element (i,j).
func (a *Dense) Set(i, j int, v float64) {
	a.checkIdx(i, j)
	a.Data[j*a.Stride+i] = v
}

func (a *Dense) checkIdx(i, j int) {
	if i < 0 || i >= a.Rows || j < 0 || j >= a.Cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, a.Rows, a.Cols))
	}
}

// Col returns the j-th column as a slice aliasing the matrix storage.
func (a *Dense) Col(j int) []float64 {
	if j < 0 || j >= a.Cols {
		panic(fmt.Sprintf("mat: column %d out of range %d", j, a.Cols))
	}
	return a.Data[j*a.Stride : j*a.Stride+a.Rows]
}

// Slice returns a view of rows [i0,i1) and columns [j0,j1). The view
// aliases the receiver's storage.
func (a *Dense) Slice(i0, i1, j0, j1 int) *Dense {
	if i0 < 0 || i1 < i0 || i1 > a.Rows || j0 < 0 || j1 < j0 || j1 > a.Cols {
		panic(fmt.Sprintf("mat: bad slice [%d:%d,%d:%d] of %dx%d", i0, i1, j0, j1, a.Rows, a.Cols))
	}
	return &Dense{
		Rows:   i1 - i0,
		Cols:   j1 - j0,
		Stride: a.Stride,
		Data:   a.Data[j0*a.Stride+i0:],
	}
}

// Clone returns a deep copy with a tight stride.
func (a *Dense) Clone() *Dense {
	b := New(a.Rows, a.Cols)
	b.CopyFrom(a)
	return b
}

// CopyFrom copies src into the receiver; dimensions must match.
func (a *Dense) CopyFrom(src *Dense) {
	if a.Rows != src.Rows || a.Cols != src.Cols {
		panic(fmt.Sprintf("mat: copy dimension mismatch %dx%d <- %dx%d", a.Rows, a.Cols, src.Rows, src.Cols))
	}
	for j := 0; j < a.Cols; j++ {
		copy(a.Data[j*a.Stride:j*a.Stride+a.Rows], src.Data[j*src.Stride:j*src.Stride+a.Rows])
	}
}

// Zero sets every element to 0.
func (a *Dense) Zero() {
	for j := 0; j < a.Cols; j++ {
		col := a.Data[j*a.Stride : j*a.Stride+a.Rows]
		for i := range col {
			col[i] = 0
		}
	}
}

// Eye returns the n x n identity.
func Eye(n int) *Dense {
	a := New(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	return a
}

// Random fills an r x c matrix with uniform values in [-1,1) drawn from
// rng. Callers pass a seeded rand.Rand so experiments are reproducible.
func Random(r, c int, rng *rand.Rand) *Dense {
	a := New(r, c)
	for i := range a.Data {
		a.Data[i] = 2*rng.Float64() - 1
	}
	return a
}

// RandomDiagDominant fills an n x n matrix with uniform noise plus a
// dominant diagonal, guaranteeing well-conditioned factorizations for
// tests that want tight residual bounds.
func RandomDiagDominant(n int, rng *rand.Rand) *Dense {
	a := Random(n, n, rng)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

// SwapRows exchanges rows r1 and r2 over columns [j0,j1).
func (a *Dense) SwapRows(r1, r2, j0, j1 int) {
	if r1 == r2 {
		return
	}
	for j := j0; j < j1; j++ {
		off := j * a.Stride
		a.Data[off+r1], a.Data[off+r2] = a.Data[off+r2], a.Data[off+r1]
	}
}

// PermuteRows returns a new matrix whose row i is src row perm[i].
func PermuteRows(src *Dense, perm []int) *Dense {
	if len(perm) != src.Rows {
		panic(fmt.Sprintf("mat: permutation length %d != rows %d", len(perm), src.Rows))
	}
	out := New(src.Rows, src.Cols)
	for j := 0; j < src.Cols; j++ {
		for i := 0; i < src.Rows; i++ {
			out.Set(i, j, src.At(perm[i], j))
		}
	}
	return out
}

// MaxAbsDiff returns max_ij |a_ij - b_ij|.
func MaxAbsDiff(a, b *Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("mat: MaxAbsDiff dimension mismatch")
	}
	m := 0.0
	for j := 0; j < a.Cols; j++ {
		for i := 0; i < a.Rows; i++ {
			d := math.Abs(a.At(i, j) - b.At(i, j))
			if d > m {
				m = d
			}
		}
	}
	return m
}

// NormInf returns the infinity norm (max absolute row sum).
func (a *Dense) NormInf() float64 {
	sums := make([]float64, a.Rows)
	for j := 0; j < a.Cols; j++ {
		for i := 0; i < a.Rows; i++ {
			sums[i] += math.Abs(a.At(i, j))
		}
	}
	m := 0.0
	for _, s := range sums {
		if s > m {
			m = s
		}
	}
	return m
}

// NormMax returns max_ij |a_ij|.
func (a *Dense) NormMax() float64 {
	m := 0.0
	for j := 0; j < a.Cols; j++ {
		for i := 0; i < a.Rows; i++ {
			v := math.Abs(a.At(i, j))
			if v > m {
				m = v
			}
		}
	}
	return m
}

// NormFro returns the Frobenius norm.
func (a *Dense) NormFro() float64 {
	s := 0.0
	for j := 0; j < a.Cols; j++ {
		for i := 0; i < a.Rows; i++ {
			v := a.At(i, j)
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// MulNaive returns a*b using the textbook triple loop. It is the oracle
// against which the blocked kernels are tested.
func MulNaive(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: mul dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := New(a.Rows, b.Cols)
	for j := 0; j < b.Cols; j++ {
		for k := 0; k < a.Cols; k++ {
			bkj := b.At(k, j)
			if bkj == 0 {
				continue
			}
			for i := 0; i < a.Rows; i++ {
				c.Data[j*c.Stride+i] += a.At(i, k) * bkj
			}
		}
	}
	return c
}

// Equal reports whether a and b have identical shape and elements within tol.
func Equal(a, b *Dense, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	return MaxAbsDiff(a, b) <= tol
}

// String renders small matrices for test failure messages.
func (a *Dense) String() string {
	if a.Rows*a.Cols > 400 {
		return fmt.Sprintf("Dense{%dx%d}", a.Rows, a.Cols)
	}
	s := ""
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			s += fmt.Sprintf("%9.4f ", a.At(i, j))
		}
		s += "\n"
	}
	return s
}

package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	a := New(3, 4)
	if a.Rows != 3 || a.Cols != 4 || a.Stride != 3 {
		t.Fatalf("bad shape %+v", a)
	}
	for j := 0; j < 4; j++ {
		for i := 0; i < 3; i++ {
			if a.At(i, j) != 0 {
				t.Fatalf("not zeroed at (%d,%d)", i, j)
			}
		}
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	a := New(5, 7)
	rng := rand.New(rand.NewSource(1))
	want := map[[2]int]float64{}
	for k := 0; k < 35; k++ {
		i, j := k%5, k/5
		v := rng.NormFloat64()
		a.Set(i, j, v)
		want[[2]int{i, j}] = v
	}
	for k, v := range want {
		if a.At(k[0], k[1]) != v {
			t.Fatalf("At(%d,%d)=%v want %v", k[0], k[1], a.At(k[0], k[1]), v)
		}
	}
}

func TestColumnMajorStorageOrder(t *testing.T) {
	a := New(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 0, 2)
	a.Set(0, 1, 3)
	a.Set(1, 1, 4)
	want := []float64{1, 2, 3, 4}
	for i, v := range want {
		if a.Data[i] != v {
			t.Fatalf("data[%d]=%v want %v (column-major violated)", i, a.Data[i], v)
		}
	}
}

func TestSliceAliases(t *testing.T) {
	a := New(4, 4)
	s := a.Slice(1, 3, 2, 4)
	s.Set(0, 0, 9)
	if a.At(1, 2) != 9 {
		t.Fatal("slice does not alias parent")
	}
	if s.Rows != 2 || s.Cols != 2 {
		t.Fatalf("bad slice shape %dx%d", s.Rows, s.Cols)
	}
}

func TestSlicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range slice")
		}
	}()
	New(3, 3).Slice(0, 4, 0, 3)
}

func TestCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Random(6, 5, rng)
	b := a.Clone()
	b.Set(0, 0, 42)
	if a.At(0, 0) == 42 {
		t.Fatal("clone shares storage")
	}
	b.Set(0, 0, a.At(0, 0))
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("clone differs")
	}
}

func TestEyeAndPermute(t *testing.T) {
	e := Eye(4)
	perm := []int{2, 0, 3, 1}
	p := PermuteRows(e, perm)
	for i, pi := range perm {
		for j := 0; j < 4; j++ {
			want := 0.0
			if j == pi {
				want = 1
			}
			if p.At(i, j) != want {
				t.Fatalf("permute wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestSwapRowsPartialColumns(t *testing.T) {
	a := New(3, 3)
	for j := 0; j < 3; j++ {
		for i := 0; i < 3; i++ {
			a.Set(i, j, float64(10*i+j))
		}
	}
	a.SwapRows(0, 2, 1, 3) // only columns 1 and 2
	if a.At(0, 0) != 0 || a.At(2, 0) != 20 {
		t.Fatal("column 0 must be untouched")
	}
	if a.At(0, 1) != 21 || a.At(2, 1) != 1 {
		t.Fatal("column 1 not swapped")
	}
}

func TestMulNaiveIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Random(5, 5, rng)
	got := MulNaive(a, Eye(5))
	if MaxAbsDiff(a, got) > 1e-15 {
		t.Fatal("A*I != A")
	}
	got = MulNaive(Eye(5), a)
	if MaxAbsDiff(a, got) > 1e-15 {
		t.Fatal("I*A != A")
	}
}

func TestNorms(t *testing.T) {
	a := New(2, 2)
	a.Set(0, 0, 3)
	a.Set(0, 1, -4)
	a.Set(1, 0, 1)
	a.Set(1, 1, 1)
	if a.NormInf() != 7 {
		t.Fatalf("inf norm %v want 7", a.NormInf())
	}
	if a.NormMax() != 4 {
		t.Fatalf("max norm %v want 4", a.NormMax())
	}
	if math.Abs(a.NormFro()-math.Sqrt(27)) > 1e-14 {
		t.Fatalf("fro norm %v", a.NormFro())
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(8, 8, rand.New(rand.NewSource(7)))
	b := Random(8, 8, rand.New(rand.NewSource(7)))
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("same seed must give same matrix")
	}
}

func TestRandomDiagDominant(t *testing.T) {
	a := RandomDiagDominant(10, rand.New(rand.NewSource(5)))
	for i := 0; i < 10; i++ {
		off := 0.0
		for j := 0; j < 10; j++ {
			if j != i {
				off += math.Abs(a.At(i, j))
			}
		}
		if math.Abs(a.At(i, i)) <= off {
			t.Fatalf("row %d not dominant", i)
		}
	}
}

// Property: (A*B)*C == A*(B*C) for the naive oracle.
func TestMulNaiveAssociativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Random(4, 3, rng)
		b := Random(3, 5, rng)
		c := Random(5, 2, rng)
		left := MulNaive(MulNaive(a, b), c)
		right := MulNaive(a, MulNaive(b, c))
		return MaxAbsDiff(left, right) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: PermuteRows with the identity permutation is a no-op.
func TestPermuteIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(rng.Int31n(10))
		a := Random(n, n, rng)
		id := make([]int, n)
		for i := range id {
			id[i] = i
		}
		return MaxAbsDiff(a, PermuteRows(a, id)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFromColMajor(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	a := FromColMajor(2, 3, 2, data)
	if a.At(1, 2) != 6 || a.At(0, 1) != 3 {
		t.Fatal("FromColMajor wrong mapping")
	}
	a.Set(0, 0, 9)
	if data[0] != 9 {
		t.Fatal("FromColMajor must alias")
	}
}

func TestFromColMajorBadStride(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for stride < rows")
		}
	}()
	FromColMajor(4, 2, 2, make([]float64, 8))
}

func TestZero(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := Random(4, 4, rng)
	s := a.Slice(1, 3, 1, 3)
	s.Zero()
	if a.At(1, 1) != 0 || a.At(2, 2) != 0 {
		t.Fatal("zero did not clear view")
	}
	if a.At(0, 0) == 0 && a.At(3, 3) == 0 {
		t.Fatal("zero cleared outside view (statistically impossible)")
	}
}

package noise

import (
	"math"
	"testing"
	"time"
)

func TestNoneIsSilent(t *testing.T) {
	var g None
	if g.Delay(0, 0, 1) != 0 {
		t.Fatal("None must be silent")
	}
}

func TestPoissonDeterministic(t *testing.T) {
	a := NewPoisson(100, 1e-3, 7)
	b := NewPoisson(100, 1e-3, 7)
	for i := 0; i < 100; i++ {
		da := a.Delay(i%4, float64(i), 0.01)
		db := b.Delay(i%4, float64(i), 0.01)
		if da != db {
			t.Fatalf("same seed diverged at %d: %g vs %g", i, da, db)
		}
	}
}

func TestPoissonMeanRate(t *testing.T) {
	g := NewPoisson(50, 200e-6, 3)
	total := 0.0
	samples := 4000
	for i := 0; i < samples; i++ {
		total += g.Delay(0, 0, 0.01)
	}
	// Expected extra per 10ms interval: 50*0.01*200e-6 = 100us.
	mean := total / float64(samples)
	if mean < 50e-6 || mean > 200e-6 {
		t.Fatalf("poisson mean delay %g far from 100us", mean)
	}
}

func TestPoissonZeroConfig(t *testing.T) {
	g := NewPoisson(0, 0, 1)
	if g.Delay(0, 0, 1) != 0 {
		t.Fatal("zero-rate poisson must be silent")
	}
}

func TestPoissonPerCoreStreamsIndependent(t *testing.T) {
	g := NewPoisson(1000, 1e-4, 11)
	same := true
	for i := 0; i < 10; i++ {
		if g.Delay(0, 0, 0.01) != g.Delay(1, 0, 0.01) {
			same = false
		}
	}
	if same {
		t.Fatal("cores share a noise stream")
	}
}

func TestDaemonPeriodicity(t *testing.T) {
	g := NewDaemon(0.01, 1e-3, 5)
	// Over one second a core must suffer ~100 bursts of 1ms.
	total := g.Delay(2, 0, 1.0)
	if math.Abs(total-0.1) > 0.011 {
		t.Fatalf("daemon delay over 1s = %g want ~0.1", total)
	}
}

func TestDaemonOutsideWindow(t *testing.T) {
	g := NewDaemon(1000, 1, 5) // fires every 1000s
	if d := g.Delay(0, 0, 0.5); d != 0 {
		// The phase is random in [0,1000); overwhelmingly no firing in
		// the first 0.5s unless phase < 0.5 — check determinism instead.
		if d != g.Delay(0, 0, 0.5)+d-d {
			t.Fatal("daemon nondeterministic")
		}
	}
}

func TestScaled(t *testing.T) {
	base := NewDaemon(0.01, 1e-3, 5)
	s := Scaled{Inner: NewDaemon(0.01, 1e-3, 5), Factor: 3}
	if math.Abs(s.Delay(0, 0, 1)-3*base.Delay(0, 0, 1)) > 1e-12 {
		t.Fatal("scaled generator must multiply delays")
	}
}

func TestResetReproduces(t *testing.T) {
	g := NewPoisson(100, 1e-3, 9)
	first := g.Delay(0, 0, 0.01)
	g.Delay(0, 0.01, 0.01)
	g.Reset(9)
	if g.Delay(0, 0, 0.01) != first {
		t.Fatal("reset did not restore the stream")
	}
}

func TestRealAdapter(t *testing.T) {
	fn := RealAdapter(NewDaemon(0.001, 1e-3, 1), time.Millisecond)
	var total time.Duration
	for i := 0; i < 100; i++ {
		total += fn(0)
	}
	// Period 1ms, burst 1ms, task 1ms: roughly one burst per call.
	if total < 50*time.Millisecond || total > 150*time.Millisecond {
		t.Fatalf("adapter total %v far from ~100ms", total)
	}
}

// Package noise provides deterministic generators of transient "excess
// work" — the paper's delta_i (section 6): OS daemons, interrupts and
// other system events that steal cycles from a core at unpredictable
// times. The generators are seeded so simulated experiments are exactly
// reproducible, and an adapter injects the same distributions into real
// goroutine runs for failure-injection tests.
package noise

import (
	"math"
	"math/rand"
	"time"
)

// Generator yields the extra delay a core suffers while executing a
// task of duration dur starting at time start (virtual seconds). A
// Generator is owned by a single simulation; Reset re-seeds it.
type Generator interface {
	// Delay returns the excess seconds appended to the task execution.
	Delay(core int, start, dur float64) float64
	// Reset re-seeds all per-core streams.
	Reset(seed int64)
}

// None is the silent generator.
type None struct{}

// Delay implements Generator; it always returns zero.
func (None) Delay(core int, start, dur float64) float64 { return 0 }

// Reset implements Generator.
func (None) Reset(seed int64) {}

// Poisson models noise bursts arriving as a Poisson process on each
// core (rate bursts/second) with exponentially distributed burst
// lengths (mean seconds) — the standard model for asynchronous OS
// interference, and the one the paper's delta analysis assumes when it
// speaks of transient load imbalance occurring with some probability.
type Poisson struct {
	Rate float64 // bursts per second per core
	Mean float64 // mean burst length, seconds
	rngs []*rand.Rand
	seed int64
}

// NewPoisson returns a seeded Poisson noise generator.
func NewPoisson(rate, mean float64, seed int64) *Poisson {
	p := &Poisson{Rate: rate, Mean: mean}
	p.Reset(seed)
	return p
}

// Reset implements Generator.
func (p *Poisson) Reset(seed int64) {
	p.seed = seed
	p.rngs = nil
}

func (p *Poisson) rng(core int) *rand.Rand {
	for len(p.rngs) <= core {
		p.rngs = append(p.rngs, rand.New(rand.NewSource(p.seed+int64(len(p.rngs))*7919+1)))
	}
	return p.rngs[core]
}

// Delay implements Generator: the number of bursts in dur is Poisson
// with mean Rate*dur; each burst adds Exp(Mean) seconds.
func (p *Poisson) Delay(core int, start, dur float64) float64 {
	if p.Rate <= 0 || p.Mean <= 0 || dur <= 0 {
		return 0
	}
	r := p.rng(core)
	lambda := p.Rate * dur
	// Sample Poisson via inversion for small lambda (always the case
	// for task-sized intervals), falling back to normal approximation.
	var k int
	if lambda < 30 {
		l := math.Exp(-lambda)
		pp := 1.0
		for {
			pp *= r.Float64()
			if pp <= l {
				break
			}
			k++
		}
	} else {
		k = int(lambda + math.Sqrt(lambda)*r.NormFloat64() + 0.5)
		if k < 0 {
			k = 0
		}
	}
	total := 0.0
	for i := 0; i < k; i++ {
		total += r.ExpFloat64() * p.Mean
	}
	return total
}

// Daemon models a periodic system daemon: every Period seconds the core
// loses Burst seconds, with per-core phase offsets so daemons do not
// fire in lockstep across the machine.
type Daemon struct {
	Period float64
	Burst  float64
	seed   int64
	phase  []float64
}

// NewDaemon returns a seeded periodic-daemon generator.
func NewDaemon(period, burst float64, seed int64) *Daemon {
	d := &Daemon{Period: period, Burst: burst}
	d.Reset(seed)
	return d
}

// Reset implements Generator.
func (d *Daemon) Reset(seed int64) {
	d.seed = seed
	d.phase = nil
}

func (d *Daemon) corePhase(core int) float64 {
	for len(d.phase) <= core {
		r := rand.New(rand.NewSource(d.seed + int64(len(d.phase))*104729 + 3))
		d.phase = append(d.phase, r.Float64()*d.Period)
	}
	return d.phase[core]
}

// Delay implements Generator: counts the daemon firings inside
// [start, start+dur) for this core's phase.
func (d *Daemon) Delay(core int, start, dur float64) float64 {
	if d.Period <= 0 || d.Burst <= 0 || dur <= 0 {
		return 0
	}
	ph := d.corePhase(core)
	// Firings at ph, ph+Period, ph+2*Period, ...
	first := math.Ceil((start - ph) / d.Period)
	if first < 0 {
		first = 0
	}
	count := 0
	for t := ph + first*d.Period; t < start+dur; t += d.Period {
		if t >= start {
			count++
		}
	}
	return float64(count) * d.Burst
}

// Scaled wraps a generator and multiplies its delays, used for the
// exascale noise-amplification projections of section 7.
type Scaled struct {
	Inner  Generator
	Factor float64
}

// Delay implements Generator.
func (s Scaled) Delay(core int, start, dur float64) float64 {
	return s.Factor * s.Inner.Delay(core, start, dur)
}

// Reset implements Generator.
func (s Scaled) Reset(seed int64) { s.Inner.Reset(seed) }

// RealAdapter converts a Generator into the callback signature of the
// real runtime (internal/rt): it samples the generator with the given
// characteristic task duration and returns wall-clock delays. Used for
// failure injection in real-mode tests.
func RealAdapter(g Generator, taskDur time.Duration) func(worker int) time.Duration {
	t := 0.0
	d := taskDur.Seconds()
	return func(worker int) time.Duration {
		extra := g.Delay(worker, t, d)
		t += d
		return time.Duration(extra * float64(time.Second))
	}
}

package kernel

// panelKernel applies w sequential rank-1 updates to one pmr x pnr tile
// of C: for l = 0..w-1 in order, C[i,j] -= ap[l*pmr+i] * bp[l*pnr+j],
// each step rounded separately (multiply, then subtract — never a fused
// accumulate), so the blocked GETRF stays bit-identical to scalar
// Getf2. ap/bp are one packed A row panel and one packed B column panel
// in the GEMM packing formats (pack.go); c is the tile origin inside a
// column-major matrix with leading dimension ldc. Platform inits swap
// in wider implementations together with pmr/pnr
// (panelkernel_amd64.go); the GEMM autotuner never touches this tile.
var panelKernel = panelKernelGeneric

// panelKernelGeneric is the portable pmr x pnr implementation: one
// columnful of the tile is updated per (l, j) step with the same
// unrolled multiply/subtract loop the micro-panel factorization uses.
//
//hsd:bitident
func panelKernelGeneric(w int, ap, bp, c []float64, ldc int) {
	for l := 0; l < w; l++ {
		al := ap[l*pmr : l*pmr+pmr]
		bl := bp[l*pnr : l*pnr+pnr]
		for j := 0; j < pnr; j++ {
			u := bl[j]
			cj := c[j*ldc : j*ldc+pmr]
			for i := range cj {
				cj[i] -= al[i] * u
			}
		}
	}
}

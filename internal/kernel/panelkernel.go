package kernel

// panelKernel applies w sequential rank-1 updates to one mr x nr tile
// of C: for l = 0..w-1 in order, C[i,j] -= ap[l*mr+i] * bp[l*nr+j],
// each step rounded separately (multiply, then subtract — never a fused
// accumulate), so the blocked GETRF stays bit-identical to scalar
// Getf2. ap/bp are one packed A row panel and one packed B column panel
// in the GEMM packing formats (pack.go); c is the tile origin inside a
// column-major matrix with leading dimension ldc. Platform inits swap
// in wider implementations (panelkernel_amd64.go).
var panelKernel = panelKernelGeneric

// panelKernelGeneric is the portable mr x nr implementation: one
// columnful of the tile is updated per (l, j) step with the same
// unrolled multiply/subtract loop the micro-panel factorization uses.
func panelKernelGeneric(w int, ap, bp, c []float64, ldc int) {
	for l := 0; l < w; l++ {
		al := ap[l*mr : l*mr+mr]
		bl := bp[l*nr : l*nr+nr]
		for j := 0; j < nr; j++ {
			u := bl[j]
			cj := c[j*ldc : j*ldc+mr]
			for i := range cj {
				cj[i] -= al[i] * u
			}
		}
	}
}

package kernel

// The AVX2+FMA micro-kernels compute 8-row register tiles:
//
//   - 8x4: eight 256-bit accumulators (two YMM registers per C column),
//     two packed-A vector loads and four B broadcasts per k-step —
//     8 FMAs, i.e. 64 flops, per iteration.
//   - 8x6: twelve accumulators over six C columns — 12 FMAs, 96 flops,
//     per iteration, with a better FMA-to-load ratio (12:8 vs 8:6) that
//     keeps both FMA ports fed on cores where the 8x4 tile stalls on
//     broadcast traffic. It uses all sixteen YMM registers.
//
// Scalar Go code cannot reach either shape (the compiler has no
// auto-vectorizer and at most ~2 flops/cycle).
//
// Selection: if the CPU lacks AVX2, FMA or OS AVX state support, the
// portable 4x4 kernel stays active and the packed formats shrink with
// it. Otherwise init installs 8x4 as the static default (the pre-tuner
// behaviour, and what HSD_TUNE=off pins) and registers both vector
// kernels for the autotuner to bench against each other (tuner.go).

//go:noescape
func microKernel8x4FMA(kk int, ap, bp, acc *float64)

//go:noescape
func microKernel8x6FMA(kk int, ap, bp, acc *float64)

// cpuSupportsAVX2FMA reports AVX2+FMA with OS-enabled YMM state
// (CPUID leaves 1 and 7 plus XGETBV), implemented in assembly to avoid
// depending on x/sys/cpu.
func cpuSupportsAVX2FMA() bool

func init() {
	if cpuSupportsAVX2FMA() {
		mr, nr = 8, 4
		microKernel = microAVX2
		microImpls["avx2-8x4"] = microImpl{name: "avx2-8x4", mr: 8, nr: 4, fn: microAVX2}
		microImpls["avx2-8x6"] = microImpl{name: "avx2-8x6", mr: 8, nr: 6, fn: microAVX2x6}
		defaultKernelName = "avx2-8x4"
	}
}

// microAVX2 adapts the 8x4 assembly kernel to the microKernel
// signature.
func microAVX2(kk int, ap, bp, acc []float64) {
	if kk == 0 {
		for i := range acc[:32] {
			acc[i] = 0
		}
		return
	}
	microKernel8x4FMA(kk, &ap[0], &bp[0], &acc[0])
}

// microAVX2x6 adapts the 8x6 assembly kernel.
func microAVX2x6(kk int, ap, bp, acc []float64) {
	if kk == 0 {
		for i := range acc[:48] {
			acc[i] = 0
		}
		return
	}
	microKernel8x6FMA(kk, &ap[0], &bp[0], &acc[0])
}

package kernel

// The AVX2+FMA micro-kernel computes an 8x4 register tile: eight
// 256-bit accumulators (two YMM registers per C column), two packed-A
// vector loads and four B broadcasts per k-step — 8 FMAs, i.e. 64
// flops, per iteration. That is the shape that saturates the two FMA
// ports of every AVX2 core, which scalar Go code cannot do (the
// compiler has no auto-vectorizer and at most ~2 flops/cycle).
//
// Selection happens at init: if the CPU lacks AVX2, FMA or OS AVX
// state support, the portable 4x4 kernel stays active and the packed
// formats shrink with it (mr is a variable, see tuning.go).

//go:noescape
func microKernel8x4FMA(kk int, ap, bp, acc *float64)

// cpuSupportsAVX2FMA reports AVX2+FMA with OS-enabled YMM state
// (CPUID leaves 1 and 7 plus XGETBV), implemented in assembly to avoid
// depending on x/sys/cpu.
func cpuSupportsAVX2FMA() bool

func init() {
	if cpuSupportsAVX2FMA() {
		mr, nr = 8, 4
		microKernel = microAVX2
	}
}

// microAVX2 adapts the assembly kernel to the microKernel signature.
func microAVX2(kk int, ap, bp, acc []float64) {
	if kk == 0 {
		for i := range acc[:32] {
			acc[i] = 0
		}
		return
	}
	microKernel8x4FMA(kk, &ap[0], &bp[0], &acc[0])
}

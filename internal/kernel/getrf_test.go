package kernel

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

// factorBoth runs Getf2 and Getrf on clones of a and asserts that the
// blocked path reproduces the scalar oracle bit for bit: identical
// pivot sequences AND identical matrix values (MaxAbsDiff exactly 0).
func factorBoth(t *testing.T, a *mat.Dense) {
	t.Helper()
	steps := min(a.Rows, a.Cols)
	w1, w2 := a.Clone(), a.Clone()
	p1 := make([]int, steps)
	p2 := make([]int, steps)
	if err := Getf2(view(w1), p1); err != nil {
		t.Fatalf("getf2 %dx%d: %v", a.Rows, a.Cols, err)
	}
	if err := Getrf(view(w2), p2); err != nil {
		t.Fatalf("getrf %dx%d: %v", a.Rows, a.Cols, err)
	}
	for k := range p1 {
		if p1[k] != p2[k] {
			t.Fatalf("%dx%d pivot %d: scalar %d, blocked %d", a.Rows, a.Cols, k, p1[k], p2[k])
		}
	}
	if d := mat.MaxAbsDiff(w1, w2); d != 0 {
		t.Fatalf("%dx%d values differ by %g: blocked path is not bit-identical", a.Rows, a.Cols, d)
	}
}

func TestGetrfBitIdenticalEdgeShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	shapes := [][2]int{
		{1, 1},   // degenerate
		{3, 1},   // n = 1
		{5, 5},   // m = n < mr
		{7, 9},   // m < mr, wide
		{8, 8},   // exactly one AVX2 register tile
		{33, 9},  // one micro-panel plus ragged trailing columns
		{64, 64}, // m = n through the blocked path
		{57, 8},  // tall, n = mr on AVX2 hosts
		{200, 64},
		{100, 33},
		{96, 130}, // wide: U rows extend past the last pivot column
	}
	for _, s := range shapes {
		factorBoth(t, mat.Random(s[0], s[1], rng))
	}
}

// Property: over random tall panel shapes the blocked GETRF pivots and
// values are bit-identical to scalar Getf2 — the invariant that lets
// tournament pivoting behave identically whichever path a leaf takes.
func TestGetrfBitIdenticalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(rng.Int31n(64))
		m := n + int(rng.Int31n(300))
		a := mat.Random(m, n, rng)
		steps := min(m, n)
		w1, w2 := a.Clone(), a.Clone()
		p1 := make([]int, steps)
		p2 := make([]int, steps)
		if err := Getf2(view(w1), p1); err != nil {
			return false
		}
		if err := Getrf(view(w2), p2); err != nil {
			return false
		}
		for k := range p1 {
			if p1[k] != p2[k] {
				return false
			}
		}
		return mat.MaxAbsDiff(w1, w2) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGetrfNoPivBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{8, 16, 32, 33, 100} {
		a := mat.RandomDiagDominant(n, rng)
		w1, w2 := a.Clone(), a.Clone()
		if err := getrfNoPivUnblocked(view(w1), 0); err != nil {
			t.Fatal(err)
		}
		if err := GetrfNoPiv(view(w2)); err != nil {
			t.Fatal(err)
		}
		if d := mat.MaxAbsDiff(w1, w2); d != 0 {
			t.Fatalf("n=%d no-pivot values differ by %g", n, d)
		}
	}
}

// rankDeficient builds an m x n matrix with `rank` random rows above a
// zero-row region. Zero rows stay exactly zero under elimination (the
// multiplier 0*inv is exact, unlike the cancellation between duplicated
// rows, which can be off by an ulp), so GEPP deterministically meets an
// exactly zero pivot at column `rank`.
func rankDeficient(m, n, rank int, rng *rand.Rand) *mat.Dense {
	a := mat.New(m, n)
	a.Slice(0, rank, 0, n).CopyFrom(mat.Random(rank, n, rng))
	return a
}

func TestGetf2SingularPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := rankDeficient(12, 6, 3, rng)
	piv := make([]int, 6)
	err := Getf2(view(a), piv)
	var se *SingularError
	if !errors.As(err, &se) {
		t.Fatalf("want *SingularError, got %v", err)
	}
	if se.K != 3 {
		t.Fatalf("established prefix %d, want 3 (rank of the input)", se.K)
	}
	for k := 0; k < se.K; k++ {
		if piv[k] < k || piv[k] >= 12 {
			t.Fatalf("prefix pivot %d out of range: %d", k, piv[k])
		}
	}
}

func TestGetrfSingularPrefixMatchesGetf2(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	// Big enough to engage the blocked path; rank 2 < mr so the first
	// micro-panel itself fails.
	a := rankDeficient(96, 12, 2, rng)
	p1 := make([]int, 12)
	p2 := make([]int, 12)
	e1 := Getf2(view(a.Clone()), p1)
	e2 := Getrf(view(a.Clone()), p2)
	var s1, s2 *SingularError
	if !errors.As(e1, &s1) || !errors.As(e2, &s2) {
		t.Fatalf("want singular errors, got %v / %v", e1, e2)
	}
	if s1.K != s2.K {
		t.Fatalf("prefix length differs: scalar %d, blocked %d", s1.K, s2.K)
	}
	for k := 0; k < s1.K; k++ {
		if p1[k] != p2[k] {
			t.Fatalf("prefix pivot %d differs: %d vs %d", k, p1[k], p2[k])
		}
	}
}

func TestGetrfSingularPrefixPastFirstMicroPanel(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	// Zero column at index 13: the failure happens in the second
	// micro-panel on AVX2 hosts, exercising the prefix globalization.
	a := mat.Random(80, 24, rng)
	for i := 0; i < 80; i++ {
		a.Set(i, 13, 0)
	}
	p1 := make([]int, 24)
	p2 := make([]int, 24)
	e1 := Getf2(view(a.Clone()), p1)
	e2 := Getrf(view(a.Clone()), p2)
	var s1, s2 *SingularError
	if !errors.As(e1, &s1) || !errors.As(e2, &s2) {
		t.Fatalf("want singular errors, got %v / %v", e1, e2)
	}
	if s1.K != 13 || s2.K != 13 {
		t.Fatalf("prefix lengths %d / %d, want 13 (the zero column)", s1.K, s2.K)
	}
	for k := 0; k < 13; k++ {
		if p1[k] != p2[k] {
			t.Fatalf("prefix pivot %d differs: %d vs %d", k, p1[k], p2[k])
		}
	}
}

func TestRecursiveLUSingularPrefixRightHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	// Zero column at 70 > steps/2, so the failure surfaces in the right
	// recursion and the prefix must be globalized across the split.
	a := mat.Random(96, 96, rng)
	for i := 0; i < 96; i++ {
		a.Set(i, 70, 0)
	}
	piv := make([]int, 96)
	err := RecursiveLU(view(a), piv)
	var se *SingularError
	if !errors.As(err, &se) {
		t.Fatalf("want *SingularError, got %v", err)
	}
	if se.K != 70 {
		t.Fatalf("established prefix %d, want 70", se.K)
	}
	for k := 0; k < se.K; k++ {
		if piv[k] < k || piv[k] >= 96 {
			t.Fatalf("prefix pivot %d out of range: %d", k, piv[k])
		}
	}
}

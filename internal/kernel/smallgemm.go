package kernel

// Small-product fast path: products below the packed path's
// gemmPackedMinFlops crossover used to fall back to the naive axpy loop
// nest, which keeps C's column resident but reloads A from memory for
// every column of B. gemmSmall instead walks 4x4 register tiles
// directly over the strided views — the packed micro-kernel's dataflow
// without the packing traffic, which a sub-32^3 product can never
// amortize. The CALU trailing update's tiny edge blocks and the
// simulator's small cases all land here.

// gemmSmall computes C -= A*B (or C -= A*Bᵀ when bTrans), with all
// operands read in place. Callers guarantee shape agreement.
func gemmSmall(c, a, b View, bTrans bool) {
	m, n, k := c.Rows, c.Cols, a.Cols
	mq, nq := m&^3, n&^3
	for j := 0; j < nq; j += 4 {
		for i := 0; i < mq; i += 4 {
			smallTile4x4(c, a, b, i, j, k, bTrans)
		}
		for i := mq; i < m; i++ {
			smallRow1x4(c, a, b, i, j, k, bTrans)
		}
	}
	// Leftover columns: per-column axpy sweep over all rows.
	for j := nq; j < n; j++ {
		cj := c.Data[j*c.Stride : j*c.Stride+m]
		for l := 0; l < k; l++ {
			var bv float64
			if bTrans {
				bv = b.Data[l*b.Stride+j]
			} else {
				bv = b.Data[j*b.Stride+l]
			}
			axpy(cj, a.Data[l*a.Stride:l*a.Stride+m], -bv)
		}
	}
}

// smallTile4x4 accumulates one full 4x4 tile of A*B in sixteen scalar
// registers and subtracts it into C — the portable micro-kernel applied
// to unpacked, strided operands.
func smallTile4x4(c, a, b View, i, j, k int, bTrans bool) {
	var c00, c10, c20, c30 float64
	var c01, c11, c21, c31 float64
	var c02, c12, c22, c32 float64
	var c03, c13, c23, c33 float64
	for l := 0; l < k; l++ {
		ai := a.Data[l*a.Stride+i : l*a.Stride+i+4 : l*a.Stride+i+4]
		a0, a1, a2, a3 := ai[0], ai[1], ai[2], ai[3]
		var b0, b1, b2, b3 float64
		if bTrans {
			// B is n x k: row j..j+3 of column l is contiguous.
			bj := b.Data[l*b.Stride+j : l*b.Stride+j+4 : l*b.Stride+j+4]
			b0, b1, b2, b3 = bj[0], bj[1], bj[2], bj[3]
		} else {
			b0 = b.Data[j*b.Stride+l]
			b1 = b.Data[(j+1)*b.Stride+l]
			b2 = b.Data[(j+2)*b.Stride+l]
			b3 = b.Data[(j+3)*b.Stride+l]
		}
		c00 += a0 * b0
		c10 += a1 * b0
		c20 += a2 * b0
		c30 += a3 * b0
		c01 += a0 * b1
		c11 += a1 * b1
		c21 += a2 * b1
		c31 += a3 * b1
		c02 += a0 * b2
		c12 += a1 * b2
		c22 += a2 * b2
		c32 += a3 * b2
		c03 += a0 * b3
		c13 += a1 * b3
		c23 += a2 * b3
		c33 += a3 * b3
	}
	c0 := c.Data[j*c.Stride+i : j*c.Stride+i+4 : j*c.Stride+i+4]
	c0[0] -= c00
	c0[1] -= c10
	c0[2] -= c20
	c0[3] -= c30
	c1 := c.Data[(j+1)*c.Stride+i : (j+1)*c.Stride+i+4 : (j+1)*c.Stride+i+4]
	c1[0] -= c01
	c1[1] -= c11
	c1[2] -= c21
	c1[3] -= c31
	c2 := c.Data[(j+2)*c.Stride+i : (j+2)*c.Stride+i+4 : (j+2)*c.Stride+i+4]
	c2[0] -= c02
	c2[1] -= c12
	c2[2] -= c22
	c2[3] -= c32
	c3 := c.Data[(j+3)*c.Stride+i : (j+3)*c.Stride+i+4 : (j+3)*c.Stride+i+4]
	c3[0] -= c03
	c3[1] -= c13
	c3[2] -= c23
	c3[3] -= c33
}

// smallRow1x4 handles one leftover row against a full quad of columns.
func smallRow1x4(c, a, b View, i, j, k int, bTrans bool) {
	var s0, s1, s2, s3 float64
	for l := 0; l < k; l++ {
		av := a.Data[l*a.Stride+i]
		if bTrans {
			bj := b.Data[l*b.Stride+j : l*b.Stride+j+4 : l*b.Stride+j+4]
			s0 += av * bj[0]
			s1 += av * bj[1]
			s2 += av * bj[2]
			s3 += av * bj[3]
		} else {
			s0 += av * b.Data[j*b.Stride+l]
			s1 += av * b.Data[(j+1)*b.Stride+l]
			s2 += av * b.Data[(j+2)*b.Stride+l]
			s3 += av * b.Data[(j+3)*b.Stride+l]
		}
	}
	c.Data[j*c.Stride+i] -= s0
	c.Data[(j+1)*c.Stride+i] -= s1
	c.Data[(j+2)*c.Stride+i] -= s2
	c.Data[(j+3)*c.Stride+i] -= s3
}

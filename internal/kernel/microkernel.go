package kernel

// micro4x4 is the portable register-tile micro-kernel: a 4x4 block of
// C accumulated in sixteen scalar variables over kk packed k-steps.
// ap/bp are one packed A row panel and one packed B column panel (see
// pack.go). The result lands in acc[j*mr+i]; the caller subtracts it
// into C.
func micro4x4(kk int, ap, bp, acc []float64) {
	var c00, c10, c20, c30 float64
	var c01, c11, c21, c31 float64
	var c02, c12, c22, c32 float64
	var c03, c13, c23, c33 float64
	for l := 0; l < kk; l++ {
		o := l * 4
		a := ap[o : o+4 : o+4]
		b := bp[o : o+4 : o+4]
		a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		c00 += a0 * b0
		c10 += a1 * b0
		c20 += a2 * b0
		c30 += a3 * b0
		c01 += a0 * b1
		c11 += a1 * b1
		c21 += a2 * b1
		c31 += a3 * b1
		c02 += a0 * b2
		c12 += a1 * b2
		c22 += a2 * b2
		c32 += a3 * b2
		c03 += a0 * b3
		c13 += a1 * b3
		c23 += a2 * b3
		c33 += a3 * b3
	}
	acc[0], acc[1], acc[2], acc[3] = c00, c10, c20, c30
	acc[4], acc[5], acc[6], acc[7] = c01, c11, c21, c31
	acc[8], acc[9], acc[10], acc[11] = c02, c12, c22, c32
	acc[12], acc[13], acc[14], acc[15] = c03, c13, c23, c33
}

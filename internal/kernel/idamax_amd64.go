package kernel

import "math"

// The AVX2 pivot search vectorizes the two-pass idamax of getf2Micro:
// a VANDPD absolute-value + VMAXPD max reduction over the column, then
// (only when the max beats the head element) a VCMPPD equality scan for
// its first occurrence. VMAXPD returns its second source when either
// operand is NaN; the accumulator — which starts at zero and therefore
// is never NaN — is kept in that slot, so NaN candidates lose every
// contest exactly as in the scalar code. The equality scan uses the
// ordered predicate EQ_OQ, which NaNs also fail, and Inf == Inf holds,
// matching the scalar == rematch pass.

//go:noescape
func maxAbsAVX2(n int, x *float64) float64

//go:noescape
func findAbsAVX2(n int, x *float64, target float64) int

func init() {
	if cpuSupportsAVX2FMA() {
		idamaxRange = idamaxRangeAVX2
	}
}

// idamaxRangeAVX2 mirrors idamaxRangeGeneric's semantics — index of the
// first maximum |col[i]| over [k, m), NaNs losing all comparisons —
// with the interior of both passes vectorized. Short ranges fall back
// to the generic search, where vector startup cost exceeds the scan.
//
//hsd:bitident
func idamaxRangeAVX2(col []float64, k, m int) (int, float64) {
	if m-k < 16 {
		return idamaxRangeGeneric(col, k, m)
	}
	vmax := math.Abs(col[k])
	base := k + 1
	vec := (m - base) &^ 3
	m0 := maxAbsAVX2(vec, &col[base])
	for i := base + vec; i < m; i++ {
		if v := math.Abs(col[i]); v > m0 {
			m0 = v
		}
	}
	if m0 > vmax {
		if idx := findAbsAVX2(vec, &col[base], m0); idx >= 0 {
			return base + idx, m0
		}
		for i := base + vec; i < m; i++ {
			//hsd:allow bitident first-equal rescan tail: same == rematch as the EQ_OQ vector scan it finishes
			if math.Abs(col[i]) == m0 {
				return i, m0
			}
		}
	}
	return k, vmax
}

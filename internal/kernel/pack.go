package kernel

// Packing routines of the packed GEMM. Both produce the contiguous,
// micro-kernel-native formats for a caller-supplied register-tile
// width (tmr rows of A, tnr columns of B): the GEMM path passes the
// active mr/nr, the blocked-GETRF panel path its fixed pmr/pnr.
//
//	ap: ceil(mcLen/tmr) row panels, each kcLen*tmr doubles; element
//	    (i, l) of panel p is ap[p*kcLen*tmr + l*tmr + i] = A(ic+p*tmr+i, pc+l).
//	bp: ceil(ncLen/tnr) column panels, each kcLen*tnr doubles; element
//	    (l, j) of panel q is bp[q*kcLen*tnr + l*tnr + j] = B(pc+l, jc+q*tnr+j).
//
// Edge panels are zero-padded to full tmr/tnr width so the micro-kernel
// never branches on tile shape; the macro-kernel masks the write-back
// instead. Padding multiplies by zero, which is exact for the finite
// values that survive to the update (Inf/NaN blow-ups still propagate
// through the unpadded lanes).

// packA packs the mcLen x kcLen block of a at (ic, pc) into dst as
// tmr-row panels.
func packA(dst []float64, a View, ic, pc, mcLen, kcLen, tmr int) {
	idx := 0
	for p := 0; p < mcLen; p += tmr {
		rows := min(tmr, mcLen-p)
		for l := 0; l < kcLen; l++ {
			col := a.Data[(pc+l)*a.Stride+ic+p:]
			d := dst[idx : idx+tmr]
			copy(d, col[:rows])
			for i := rows; i < tmr; i++ {
				d[i] = 0
			}
			idx += tmr
		}
	}
}

// packB packs the kcLen x ncLen block of b at (pc, jc) into dst as
// tnr-column panels. With trans set, b is read transposed — element
// (l, j) comes from B(jc+q*tnr+j, pc+l) — which is what GemmNT
// (C -= A*Bᵀ) needs; the packed format is identical either way, so the
// micro-kernel is oblivious.
func packB(dst []float64, b View, pc, jc, kcLen, ncLen int, trans bool, tnr int) {
	base := 0
	for q := 0; q < ncLen; q += tnr {
		cols := min(tnr, ncLen-q)
		if trans {
			// Bᵀ(l, j) = B(jc+q+j, pc+l): row jc+q+j is contiguous along l
			// only in steps of Stride, but column pc+l of B holds the j run
			// contiguously — read it.
			for l := 0; l < kcLen; l++ {
				row := b.Data[(pc+l)*b.Stride+jc+q:]
				d := dst[base+l*tnr : base+l*tnr+tnr]
				copy(d, row[:cols])
				for j := cols; j < tnr; j++ {
					d[j] = 0
				}
			}
		} else {
			for j := 0; j < cols; j++ {
				col := b.Data[(jc+q+j)*b.Stride+pc:]
				for l := 0; l < kcLen; l++ {
					dst[base+l*tnr+j] = col[l]
				}
			}
			for j := cols; j < tnr; j++ {
				for l := 0; l < kcLen; l++ {
					dst[base+l*tnr+j] = 0
				}
			}
		}
		base += kcLen * tnr
	}
}

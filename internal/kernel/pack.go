package kernel

// Packing routines of the packed GEMM. Both produce the contiguous,
// micro-kernel-native formats:
//
//   ap: ceil(mcLen/mr) row panels, each kcLen*mr doubles; element
//       (i, l) of panel p is ap[p*kcLen*mr + l*mr + i] = A(ic+p*mr+i, pc+l).
//   bp: ceil(ncLen/nr) column panels, each kcLen*nr doubles; element
//       (l, j) of panel q is bp[q*kcLen*nr + l*nr + j] = B(pc+l, jc+q*nr+j).
//
// Edge panels are zero-padded to full mr/nr width so the micro-kernel
// never branches on tile shape; the macro-kernel masks the write-back
// instead. Padding multiplies by zero, which is exact for the finite
// values that survive to the update (Inf/NaN blow-ups still propagate
// through the unpadded lanes).

// packA packs the mcLen x kcLen block of a at (ic, pc) into dst.
func packA(dst []float64, a View, ic, pc, mcLen, kcLen int) {
	idx := 0
	for p := 0; p < mcLen; p += mr {
		rows := min(mr, mcLen-p)
		for l := 0; l < kcLen; l++ {
			col := a.Data[(pc+l)*a.Stride+ic+p:]
			d := dst[idx : idx+mr]
			copy(d, col[:rows])
			for i := rows; i < mr; i++ {
				d[i] = 0
			}
			idx += mr
		}
	}
}

// packB packs the kcLen x ncLen block of b at (pc, jc) into dst. With
// trans set, b is read transposed — element (l, j) comes from B(jc+q*nr+j,
// pc+l) — which is what GemmNT (C -= A*Bᵀ) needs; the packed format is
// identical either way, so the micro-kernel is oblivious.
func packB(dst []float64, b View, pc, jc, kcLen, ncLen int, trans bool) {
	base := 0
	for q := 0; q < ncLen; q += nr {
		cols := min(nr, ncLen-q)
		if trans {
			// Bᵀ(l, j) = B(jc+q+j, pc+l): row jc+q+j is contiguous along l
			// only in steps of Stride, but column pc+l of B holds the j run
			// contiguously — read it.
			for l := 0; l < kcLen; l++ {
				row := b.Data[(pc+l)*b.Stride+jc+q:]
				d := dst[base+l*nr : base+l*nr+nr]
				copy(d, row[:cols])
				for j := cols; j < nr; j++ {
					d[j] = 0
				}
			}
		} else {
			for j := 0; j < cols; j++ {
				col := b.Data[(jc+q+j)*b.Stride+pc:]
				for l := 0; l < kcLen; l++ {
					dst[base+l*nr+j] = col[l]
				}
			}
			for j := cols; j < nr; j++ {
				for l := 0; l < kcLen; l++ {
					dst[base+l*nr+j] = 0
				}
			}
		}
		base += kcLen * nr
	}
}

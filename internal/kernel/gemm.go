package kernel

import "fmt"

// Gemm computes C -= A * B (the only gemm variant dense LU needs:
// alpha=-1, beta=1), with A m x k, B k x n, C m x n.
//
// Large products take the packed register-tiled path (pack.go,
// microkernel*.go); products below the gemmPackedMinFlops crossover,
// which can never amortize the packing traffic, take the direct
// register-tiled small path (smallgemm.go). All paths are
// exact-arithmetic equivalents up to floating-point reassociation;
// GemmNaive is retained as the correctness oracle.
func Gemm(c, a, b View) {
	ensureTuned()
	m, n, k := c.Rows, c.Cols, a.Cols
	if a.Rows != m || b.Rows != k || b.Cols != n {
		panic(fmt.Sprintf("kernel: gemm shape mismatch C %dx%d, A %dx%d, B %dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if useNaiveKernels {
		gemmNaive(c, a, b)
		return
	}
	if !packedWorthwhile(m, n, k) {
		gemmSmall(c, a, b, false)
		return
	}
	gemmPacked(c, a, b, false)
}

// GemmNT computes C -= A * Bᵀ with A m x k, B n x k, C m x n — the
// symmetric-update kernel of tiled Cholesky (SYRK/GEMM applied to the
// lower triangle blockwise). It shares the packed path with Gemm; only
// the B packing reads transposed.
func GemmNT(c, a, b View) {
	ensureTuned()
	m, n, k := c.Rows, c.Cols, a.Cols
	if a.Rows != m || b.Rows != n || b.Cols != k {
		panic(fmt.Sprintf("kernel: gemmNT shape mismatch C %dx%d, A %dx%d, B %dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if useNaiveKernels {
		gemmNTNaive(c, a, b)
		return
	}
	if !packedWorthwhile(m, n, k) {
		gemmSmall(c, a, b, true)
		return
	}
	gemmPacked(c, a, b, true)
}

// gemmPacked is the three-level blocked driver: jc/pc/ic loops carve
// C -= A*B (or A*Bᵀ when bTrans) into mc x nc tiles updated through
// packed kc-deep slivers, and the macro-kernel walks register tiles
// over the packed buffers.
func gemmPacked(c, a, b View, bTrans bool) {
	m, n, k := c.Rows, c.Cols, a.Cols
	ws := getWorkspace()
	defer putWorkspace(ws)
	for jc := 0; jc < n; jc += nc {
		ncLen := min(nc, n-jc)
		for pc := 0; pc < k; pc += kc {
			kcLen := min(kc, k-pc)
			packB(ws.bp, b, pc, jc, kcLen, ncLen, bTrans, nr)
			for ic := 0; ic < m; ic += mc {
				mcLen := min(mc, m-ic)
				packA(ws.ap, a, ic, pc, mcLen, kcLen, mr)
				macroKernel(c, ws.ap, ws.bp, ic, jc, mcLen, ncLen, kcLen)
			}
		}
	}
}

// macroKernel sweeps mr x nr register tiles over one packed (A, B)
// block pair, subtracting each micro-kernel result into C. Edge tiles
// are computed at full padded width and masked at write-back. The
// packed buffers are passed explicitly so the shared-panel path
// (panelcache.go) can stream B from a cached buffer.
func macroKernel(c View, ap, bp []float64, ic, jc, mcLen, ncLen, kcLen int) {
	var acc [maxMR * maxNR]float64
	for jr := 0; jr < ncLen; jr += nr {
		nrLen := min(nr, ncLen-jr)
		bpPanel := bp[(jr/nr)*kcLen*nr:]
		for ir := 0; ir < mcLen; ir += mr {
			mrLen := min(mr, mcLen-ir)
			apPanel := ap[(ir/mr)*kcLen*mr:]
			microKernel(kcLen, apPanel, bpPanel, acc[:])
			storeTile(c, ic+ir, jc+jr, mrLen, nrLen, acc[:])
		}
	}
}

// storeTile applies C(i0:i0+mrLen, j0:j0+nrLen) -= acc, where acc is a
// full mr x nr tile in column-major order.
func storeTile(c View, i0, j0, mrLen, nrLen int, acc []float64) {
	for j := 0; j < nrLen; j++ {
		cj := c.Data[(j0+j)*c.Stride+i0 : (j0+j)*c.Stride+i0+mrLen]
		aj := acc[j*mr : j*mr+mrLen]
		for i := range cj {
			cj[i] -= aj[i]
		}
	}
}

// GemmNaive is the reference implementation of Gemm: a j-k-i loop nest
// whose inner loop runs down the unit-stride direction of C and A. It
// is the oracle the property tests pin the packed path against, and
// the small-product fast path.
func GemmNaive(c, a, b View) {
	m, n, k := c.Rows, c.Cols, a.Cols
	if a.Rows != m || b.Rows != k || b.Cols != n {
		panic(fmt.Sprintf("kernel: gemm shape mismatch C %dx%d, A %dx%d, B %dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	gemmNaive(c, a, b)
}

// blockK is the k-dimension blocking factor of the naive path. 64
// columns of 8-byte elements keep the streamed A panel inside L1/L2.
const blockK = 64

func gemmNaive(c, a, b View) {
	m, n, k := c.Rows, c.Cols, a.Cols
	for k0 := 0; k0 < k; k0 += blockK {
		k1 := min(k0+blockK, k)
		for j := 0; j < n; j++ {
			cj := c.Data[j*c.Stride : j*c.Stride+m]
			for l := k0; l < k1; l++ {
				// No skip on zero b(l,j): x - 0*y must stay IEEE-exact, and
				// skipping the multiply would mask Inf/NaN in A that the
				// noise-injection experiments rely on seeing propagate.
				al := a.Data[l*a.Stride : l*a.Stride+m]
				axpy(cj, al, -b.Data[j*b.Stride+l])
			}
		}
	}
}

// GemmNTNaive is the reference implementation of GemmNT.
func GemmNTNaive(c, a, b View) {
	m, n, k := c.Rows, c.Cols, a.Cols
	if a.Rows != m || b.Rows != n || b.Cols != k {
		panic(fmt.Sprintf("kernel: gemmNT shape mismatch C %dx%d, A %dx%d, B %dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	gemmNTNaive(c, a, b)
}

func gemmNTNaive(c, a, b View) {
	m, n, k := c.Rows, c.Cols, a.Cols
	for j := 0; j < n; j++ {
		cj := c.Data[j*c.Stride : j*c.Stride+m]
		for l := 0; l < k; l++ {
			al := a.Data[l*a.Stride : l*a.Stride+m]
			axpy(cj, al, -b.Data[l*b.Stride+j])
		}
	}
}

// axpy computes y += alpha*x with 4-way unrolling.
func axpy(y, x []float64, alpha float64) {
	n := len(y)
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

package kernel

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"
)

// The autotuner: pick the kernel Profile for this machine.
//
// Three stages, each cheap enough to hide in process start-up:
//
//  1. Probe the cache hierarchy — sysfs on Linux, a pointer-chase
//     timing probe elsewhere, conservative defaults as the last resort.
//  2. Derive a small candidate grid from the cache sizes (kc from L1,
//     mc from L2, nc from L3, the Goto residency rules) for each
//     registered wide micro-kernel, and micro-benchmark each candidate
//     on one packed GEMM; the fastest wins.
//  3. Persist the winner as JSON under os.UserCacheDir()/hsd keyed by a
//     CPU signature, so every later process (and every later test
//     binary on a CI runner) starts tuned without searching.
//
// HSD_TUNE=off skips all of it (static defaults); HSD_TUNE_DIR
// overrides the persistence directory (tests and CI use a temp dir to
// exercise the cold and warm paths deterministically).

// caches is the probed hierarchy in bytes (per-core L1d/L2, shared L3).
type caches struct {
	L1 int64
	L2 int64
	L3 int64
}

// defaultCaches are the conservative fallback: a small modern x86/arm
// core. Overestimating would oversize the packed blocks and thrash.
var defaultCaches = caches{L1: 32 << 10, L2: 512 << 10, L3: 8 << 20}

// tunedProfile resolves the profile to apply: persisted if present and
// valid, otherwise a fresh search (persisted best-effort afterwards).
func tunedProfile() (Profile, string) {
	sig := cpuSignature()
	if p, ok := loadProfile(sig); ok {
		return p, "persisted"
	}
	p := searchProfile(probeCaches())
	p.Signature = sig
	storeProfile(p)
	return p, "searched"
}

// ---------------------------------------------------------------------
// Cache probe.

// probeCaches returns the cache hierarchy: sysfs when available, the
// timing probe otherwise, defaults for whatever stays unknown.
func probeCaches() caches {
	c := sysfsCaches()
	if c.L1 == 0 && c.L2 == 0 {
		c = timingCaches()
	}
	if c.L1 == 0 {
		c.L1 = defaultCaches.L1
	}
	if c.L2 == 0 {
		c.L2 = defaultCaches.L2
	}
	if c.L3 == 0 {
		c.L3 = defaultCaches.L3
	}
	return c
}

// sysfsCaches reads /sys/devices/system/cpu/cpu0/cache/index*/ — the
// kernel's own CPUID/ACPI enumeration, so it covers every x86 and arm
// Linux machine without asm.
func sysfsCaches() caches {
	var c caches
	base := "/sys/devices/system/cpu/cpu0/cache"
	entries, err := os.ReadDir(base)
	if err != nil {
		return c
	}
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "index") {
			continue
		}
		dir := filepath.Join(base, e.Name())
		typ := strings.TrimSpace(readSmallFile(filepath.Join(dir, "type")))
		if typ == "Instruction" {
			continue
		}
		level := strings.TrimSpace(readSmallFile(filepath.Join(dir, "level")))
		size := parseCacheSize(strings.TrimSpace(readSmallFile(filepath.Join(dir, "size"))))
		if size <= 0 {
			continue
		}
		switch level {
		case "1":
			c.L1 = size
		case "2":
			c.L2 = size
		case "3":
			c.L3 = size
		}
	}
	return c
}

func readSmallFile(path string) string {
	b, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	return string(b)
}

// parseCacheSize parses the sysfs "size" format: "32K", "1024K", "8M".
func parseCacheSize(s string) int64 {
	if s == "" {
		return 0
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	var n int64
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0
		}
		n = n*10 + int64(r-'0')
	}
	return n * mult
}

// timingCaches estimates L1/L2 by pointer-chasing buffers of doubling
// size and watching the per-access latency step up when the working set
// falls out of a level. Coarse on purpose — the candidate grid only
// needs the right order of magnitude — and bounded to a few
// milliseconds.
func timingCaches() caches {
	var c caches
	sizes := []int64{16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10,
		512 << 10, 1 << 20, 2 << 20, 4 << 20}
	lat := make([]float64, len(sizes))
	for i, sz := range sizes {
		lat[i] = chaseLatency(int(sz))
	}
	// A level boundary shows as a >=1.5x latency jump between
	// consecutive sizes; the last size before the first jump is L1, the
	// last before the second is L2.
	level := 0
	for i := 1; i < len(sizes); i++ {
		if lat[i] > 1.5*lat[i-1] {
			switch level {
			case 0:
				c.L1 = sizes[i-1]
			case 1:
				c.L2 = sizes[i-1]
			}
			level++
			if level == 2 {
				break
			}
		}
	}
	return c
}

// chaseLatency measures ns per dependent load over a shuffled cyclic
// pointer chain filling size bytes.
func chaseLatency(size int) float64 {
	n := size / 8
	if n < 64 {
		n = 64
	}
	idx := make([]int32, n)
	// Deterministic LCG shuffle: a permutation cycle with stride far
	// from the prefetchers' comfort zone.
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	state := uint64(0x9E3779B97F4A7C15)
	for i := n - 1; i > 0; i-- {
		state = state*6364136223846793005 + 1442695040888963407
		j := int(state % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < n; i++ {
		idx[perm[i]] = perm[(i+1)%n]
	}
	const steps = 1 << 16
	p := int32(0)
	start := time.Now()
	for s := 0; s < steps; s++ {
		p = idx[p]
	}
	el := time.Since(start)
	if p < 0 { // defeat dead-code elimination; never true
		panic("unreachable")
	}
	return float64(el.Nanoseconds()) / steps
}

// ---------------------------------------------------------------------
// Candidate grid and micro-benchmark search.

// searchProfile derives the candidate grid from the probed caches and
// returns the fastest candidate by micro-benchmark. The portable 4x4
// kernel is the correctness oracle, not a candidate — it can never beat
// a vector kernel it coexists with, so it is only searched when it is
// the sole registered kernel.
func searchProfile(c caches) Profile {
	cands := candidateProfiles(c)
	best := defaultProfile()
	bestScore := benchProfile(best)
	best.GFLOPS = bestScore
	for _, p := range cands {
		if s := benchProfile(p); s > bestScore {
			p.GFLOPS = s
			best, bestScore = p, s
		}
	}
	applyProfile(best)
	return best
}

// candidateProfiles builds the per-kernel candidate blocking grid from
// the Goto residency rules:
//
//	kc: an mr x kc A sliver plus a kc x nr B sliver at 3/4 L1;
//	mc: the mc x kc packed A block at half of L2;
//	nc: the kc x nc packed B block at a quarter of (shared) L3.
func candidateProfiles(c caches) []Profile {
	names := searchKernels()
	var out []Profile
	for _, name := range names {
		impl := microImpls[name]
		kcc := roundDown(int(c.L1*3/4)/(8*(impl.mr+impl.nr)), 8)
		kcc = clamp(kcc, 64, 512)
		mcc := roundDown(int(c.L2/2)/(8*kcc), 2*impl.mr)
		mcc = clamp(mcc, 2*impl.mr, 512)
		ncc := roundDown(int(c.L3/4)/(8*kcc), 2*impl.nr)
		ncc = clamp(ncc, 16*impl.nr, 2048)
		base := defaultProfile()
		base.Kernel, base.MR, base.NR = impl.name, impl.mr, impl.nr
		// Cache-derived blocking, the static defaults, and a
		// half-height A block (favours packing reuse on small L2s).
		add := func(kc, mc, nc int) {
			p := base
			p.KC, p.MC, p.NC = kc, mc, nc
			out = append(out, p)
		}
		add(kcc, mcc, ncc)
		add(defaultKC, defaultMC, defaultNC)
		if h := roundDown(mcc/2, 2*impl.mr); h >= 2*impl.mr && h != defaultMC {
			add(kcc, h, ncc)
		}
	}
	return dedupProfiles(out)
}

// searchKernels lists the kernels worth benchmarking, widest first.
func searchKernels() []string {
	var names []string
	for name := range microImpls {
		if name == "portable-4x4" && len(microImpls) > 1 {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func dedupProfiles(ps []Profile) []Profile {
	seen := map[string]bool{}
	var out []Profile
	for _, p := range ps {
		k := fmt.Sprintf("%s/%d/%d/%d", p.Kernel, p.KC, p.MC, p.NC)
		if !seen[k] {
			seen[k] = true
			out = append(out, p)
		}
	}
	return out
}

// benchN is the micro-benchmark GEMM size: big enough that all three
// blocking levels engage (n > nc/2, k > kc), small enough that the
// whole search stays in the low hundreds of milliseconds.
const benchN = 320

// benchProfile applies p and times C -= A*B at benchN³, returning
// GFLOPS (0 for an unusable profile). One warm-up rep fills the
// workspace and faults the pages; the score is the best of two timed
// reps, which is noise-robust enough for a grid this coarse.
func benchProfile(p Profile) float64 {
	if err := applyProfile(p); err != nil {
		return 0
	}
	n := benchN
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	cdat := make([]float64, n*n)
	// Deterministic pseudo-random fill; values are irrelevant to
	// timing but should not be denormal.
	state := uint64(1)
	for i := range a {
		state = state*6364136223846793005 + 1442695040888963407
		a[i] = 1 + float64(state>>40)*1e-6
		b[i] = 1 - float64(state>>44)*1e-6
	}
	av := View{Rows: n, Cols: n, Stride: n, Data: a}
	bv := View{Rows: n, Cols: n, Stride: n, Data: b}
	cv := View{Rows: n, Cols: n, Stride: n, Data: cdat}
	flops := 2 * float64(n) * float64(n) * float64(n)
	bestScore := 0.0
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		gemmPacked(cv, av, bv, false)
		el := time.Since(start)
		if rep == 0 {
			continue // warm-up
		}
		if s := flops / float64(el.Nanoseconds()); s > bestScore {
			bestScore = s
		}
	}
	return bestScore
}

func roundDown(v, m int) int {
	if m <= 0 {
		return v
	}
	return v - v%m
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ---------------------------------------------------------------------
// Persistence.

// cpuSignature hashes everything a profile depends on: the CPU model,
// the cache sizes, the registered kernels and the format version. Any
// change — new machine, new kernel in the registry, new packed format —
// yields a new file and a fresh search.
func cpuSignature() string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d|%s|%s|", profileVersion, runtime.GOOS, runtime.GOARCH)
	fmt.Fprintf(h, "%s|", cpuModelName())
	c := sysfsCaches()
	fmt.Fprintf(h, "%d/%d/%d|", c.L1, c.L2, c.L3)
	names := make([]string, 0, len(microImpls))
	for name := range microImpls {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(h, "%s", strings.Join(names, ","))
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// cpuModelName extracts "model name" from /proc/cpuinfo (empty
// elsewhere; GOOS/GOARCH still key the signature).
func cpuModelName() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(b), "\n") {
		if strings.HasPrefix(line, "model name") {
			if i := strings.IndexByte(line, ':'); i >= 0 {
				return strings.TrimSpace(line[i+1:])
			}
		}
	}
	return ""
}

// tuneDir resolves the profile cache directory: HSD_TUNE_DIR, else
// os.UserCacheDir()/hsd.
func tuneDir() (string, error) {
	if d := os.Getenv("HSD_TUNE_DIR"); d != "" {
		return d, nil
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return "", err
	}
	return filepath.Join(base, "hsd"), nil
}

func profilePath(sig string) (string, error) {
	dir, err := tuneDir()
	if err != nil {
		return "", err
	}
	return filepath.Join(dir, "tune-"+sig+".json"), nil
}

// loadProfile reads and validates the persisted profile for sig.
func loadProfile(sig string) (Profile, bool) {
	path, err := profilePath(sig)
	if err != nil {
		return Profile{}, false
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return Profile{}, false
	}
	var p Profile
	if json.Unmarshal(b, &p) != nil {
		return Profile{}, false
	}
	if p.Version != profileVersion || p.Signature != sig {
		return Profile{}, false
	}
	if _, ok := microImpls[p.Kernel]; !ok {
		return Profile{}, false
	}
	return p, true
}

// storeProfile persists p atomically (temp file + rename); failures are
// silent — an unwritable cache dir only costs the next process a
// re-search.
func storeProfile(p Profile) {
	path, err := profilePath(p.Signature)
	if err != nil {
		return
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "tune-*.tmp")
	if err != nil {
		return
	}
	_, werr := tmp.Write(append(b, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if os.Rename(tmp.Name(), path) != nil {
		os.Remove(tmp.Name())
	}
}

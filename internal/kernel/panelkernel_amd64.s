// AVX2 panel-update kernel of the blocked GETRF.
// See panelkernel_amd64.go for the register-tile layout and the
// rationale for VMULPD+VSUBPD instead of FMA (bit-identity with the
// scalar rank-1 updates of Getf2).

#include "textflag.h"

// func panelKernel8x4(w int, ap, bp, c *float64, ldc int)
//
// For l = 0..w-1 in order: c[j*ldc+i] -= ap[l*8+i] * bp[l*4+j],
// i in 0..7, j in 0..3, every step rounded as a separate multiply and
// subtract. Y0/Y1 hold C column 0 (rows 0-3 / 4-7), Y2/Y3 column 1,
// Y4/Y5 column 2, Y6/Y7 column 3; Y8/Y9 are the A sliver, Y10 the
// rotating B broadcast and Y11 the product temporary.
TEXT ·panelKernel8x4(SB), NOSPLIT, $0-40
	MOVQ w+0(FP), CX
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), DI
	MOVQ c+24(FP), DX
	MOVQ ldc+32(FP), R8
	SHLQ $3, R8            // ldc in bytes

	LEAQ (DX)(R8*1), R9    // column 1
	LEAQ (DX)(R8*2), R10   // column 2
	LEAQ (R10)(R8*1), R11  // column 3

	// Load the 8x4 C tile into registers.
	VMOVUPD (DX), Y0
	VMOVUPD 32(DX), Y1
	VMOVUPD (R9), Y2
	VMOVUPD 32(R9), Y3
	VMOVUPD (R10), Y4
	VMOVUPD 32(R10), Y5
	VMOVUPD (R11), Y6
	VMOVUPD 32(R11), Y7

loop:
	VMOVUPD      (SI), Y8
	VMOVUPD      32(SI), Y9

	VBROADCASTSD (DI), Y10
	VMULPD       Y8, Y10, Y11
	VSUBPD       Y11, Y0, Y0
	VMULPD       Y9, Y10, Y11
	VSUBPD       Y11, Y1, Y1

	VBROADCASTSD 8(DI), Y10
	VMULPD       Y8, Y10, Y11
	VSUBPD       Y11, Y2, Y2
	VMULPD       Y9, Y10, Y11
	VSUBPD       Y11, Y3, Y3

	VBROADCASTSD 16(DI), Y10
	VMULPD       Y8, Y10, Y11
	VSUBPD       Y11, Y4, Y4
	VMULPD       Y9, Y10, Y11
	VSUBPD       Y11, Y5, Y5

	VBROADCASTSD 24(DI), Y10
	VMULPD       Y8, Y10, Y11
	VSUBPD       Y11, Y6, Y6
	VMULPD       Y9, Y10, Y11
	VSUBPD       Y11, Y7, Y7

	ADDQ $64, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  loop

	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VMOVUPD Y2, (R9)
	VMOVUPD Y3, 32(R9)
	VMOVUPD Y4, (R10)
	VMOVUPD Y5, 32(R10)
	VMOVUPD Y6, (R11)
	VMOVUPD Y7, 32(R11)
	VZEROUPPER
	RET

// func rank1SubAVX2(n int, c, l *float64, u float64)
//
// c[i] -= l[i]*u for i in 0..n-1, multiply and subtract rounded
// separately (VMULPD+VSUBPD / MULSD+SUBSD — bit-identical to the
// portable loop). Unrolled 8-wide; scalar SSE2 tail.
TEXT ·rank1SubAVX2(SB), NOSPLIT, $0-32
	MOVQ         n+0(FP), CX
	MOVQ         c+8(FP), DX
	MOVQ         l+16(FP), SI
	VBROADCASTSD u+24(FP), Y3

	CMPQ CX, $8
	JL   tail4

loop8:
	VMOVUPD (SI), Y0
	VMOVUPD 32(SI), Y4
	VMULPD  Y0, Y3, Y1
	VMULPD  Y4, Y3, Y5
	VMOVUPD (DX), Y2
	VMOVUPD 32(DX), Y6
	VSUBPD  Y1, Y2, Y2
	VSUBPD  Y5, Y6, Y6
	VMOVUPD Y2, (DX)
	VMOVUPD Y6, 32(DX)
	ADDQ    $64, SI
	ADDQ    $64, DX
	SUBQ    $8, CX
	CMPQ    CX, $8
	JGE     loop8

tail4:
	CMPQ CX, $4
	JL   tail1
	VMOVUPD (SI), Y0
	VMULPD  Y0, Y3, Y1
	VMOVUPD (DX), Y2
	VSUBPD  Y1, Y2, Y2
	VMOVUPD Y2, (DX)
	ADDQ    $32, SI
	ADDQ    $32, DX
	SUBQ    $4, CX

tail1:
	TESTQ CX, CX
	JZ    done
scalar:
	MOVSD (SI), X0
	MULSD X3, X0
	MOVSD (DX), X1
	SUBSD X0, X1
	MOVSD X1, (DX)
	ADDQ  $8, SI
	ADDQ  $8, DX
	DECQ  CX
	JNZ   scalar

done:
	VZEROUPPER
	RET

// func scaleVecAVX2(n int, c *float64, alpha float64)
//
// c[i] *= alpha for i in 0..n-1 (the micro-panel's L-column scaling).
TEXT ·scaleVecAVX2(SB), NOSPLIT, $0-24
	MOVQ         n+0(FP), CX
	MOVQ         c+8(FP), DX
	VBROADCASTSD alpha+16(FP), Y3

	CMPQ CX, $8
	JL   stail4

sloop8:
	VMOVUPD (DX), Y0
	VMOVUPD 32(DX), Y1
	VMULPD  Y0, Y3, Y0
	VMULPD  Y1, Y3, Y1
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	ADDQ    $64, DX
	SUBQ    $8, CX
	CMPQ    CX, $8
	JGE     sloop8

stail4:
	CMPQ CX, $4
	JL   stail1
	VMOVUPD (DX), Y0
	VMULPD  Y0, Y3, Y0
	VMOVUPD Y0, (DX)
	ADDQ    $32, DX
	SUBQ    $4, CX

stail1:
	TESTQ CX, CX
	JZ    sdone
sscalar:
	MOVSD (DX), X0
	MULSD X3, X0
	MOVSD X0, (DX)
	ADDQ  $8, DX
	DECQ  CX
	JNZ   sscalar

sdone:
	VZEROUPPER
	RET

// AVX2+FMA 8x4 GEMM micro-kernel and its CPUID feature probe.
// See microkernel_amd64.go for the register-tile layout.

#include "textflag.h"

// func microKernel8x4FMA(kk int, ap, bp, acc *float64)
//
// acc[j*8+i] = sum_l ap[l*8+i] * bp[l*4+j], i in 0..7, j in 0..3.
// Y0/Y1 hold column 0 (rows 0-3 / 4-7), Y2/Y3 column 1, Y4/Y5
// column 2, Y6/Y7 column 3. Y8/Y9 are the A sliver, Y10/Y11 rotate
// through the four B broadcasts. The k-loop is unrolled by two to
// halve loop overhead; kk is a count of packed k-steps (>= 1).
TEXT ·microKernel8x4FMA(SB), NOSPLIT, $0-32
	MOVQ kk+0(FP), CX
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), DI
	MOVQ acc+24(FP), DX

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	MOVQ CX, BX
	SHRQ $1, CX   // CX = kk/2 double-steps
	JZ   tail

loop2:
	// k-step 0
	VMOVUPD      (SI), Y8
	VMOVUPD      32(SI), Y9
	VBROADCASTSD (DI), Y10
	VBROADCASTSD 8(DI), Y11
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VBROADCASTSD 16(DI), Y10
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VBROADCASTSD 24(DI), Y11
	VFMADD231PD  Y8, Y10, Y4
	VFMADD231PD  Y9, Y10, Y5
	VFMADD231PD  Y8, Y11, Y6
	VFMADD231PD  Y9, Y11, Y7

	// k-step 1
	VMOVUPD      64(SI), Y8
	VMOVUPD      96(SI), Y9
	VBROADCASTSD 32(DI), Y10
	VBROADCASTSD 40(DI), Y11
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VBROADCASTSD 48(DI), Y10
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VBROADCASTSD 56(DI), Y11
	VFMADD231PD  Y8, Y10, Y4
	VFMADD231PD  Y9, Y10, Y5
	VFMADD231PD  Y8, Y11, Y6
	VFMADD231PD  Y9, Y11, Y7

	ADDQ $128, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  loop2

tail:
	ANDQ $1, BX
	JZ   done

	VMOVUPD      (SI), Y8
	VMOVUPD      32(SI), Y9
	VBROADCASTSD (DI), Y10
	VBROADCASTSD 8(DI), Y11
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VBROADCASTSD 16(DI), Y10
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VBROADCASTSD 24(DI), Y11
	VFMADD231PD  Y8, Y10, Y4
	VFMADD231PD  Y9, Y10, Y5
	VFMADD231PD  Y8, Y11, Y6
	VFMADD231PD  Y9, Y11, Y7

done:
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VMOVUPD Y2, 64(DX)
	VMOVUPD Y3, 96(DX)
	VMOVUPD Y4, 128(DX)
	VMOVUPD Y5, 160(DX)
	VMOVUPD Y6, 192(DX)
	VMOVUPD Y7, 224(DX)
	VZEROUPPER
	RET

// func cpuSupportsAVX2FMA() bool
TEXT ·cpuSupportsAVX2FMA(SB), NOSPLIT, $0-1
	// Need CPUID leaf 7.
	XORL AX, AX
	CPUID
	CMPL AX, $7
	JL   no

	// Leaf 1 ECX: FMA (bit 12), OSXSAVE (bit 27), AVX (bit 28).
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $0x18001000, R8
	CMPL R8, $0x18001000
	JNE  no

	// XCR0: SSE (bit 1) and AVX (bit 2) state enabled by the OS.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no

	// Leaf 7 EBX: AVX2 (bit 5).
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $0x20, BX
	JZ   no

	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET

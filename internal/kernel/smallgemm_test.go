package kernel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestGemmSmallMatchesNaiveProperty drives the direct register-tiled
// small path against the naive oracle over random sub-crossover shapes
// and strides.
func TestGemmSmallMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(40)
		n := 1 + rng.Intn(40)
		k := 1 + rng.Intn(40)
		a := randView(rng, m, k)
		b := randView(rng, k, n)
		c1 := randView(rng, m, n)
		c2 := cloneView(c1)
		gemmSmall(c1, a, b, false)
		gemmNaive(c2, a, b)
		return maxAbsDiffBacking(c1, c2) <= gemmTol(c2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestGemmNTSmallMatchesNaiveProperty is the transposed-B variant.
func TestGemmNTSmallMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(40)
		n := 1 + rng.Intn(40)
		k := 1 + rng.Intn(40)
		a := randView(rng, m, k)
		b := randView(rng, n, k)
		c1 := randView(rng, m, n)
		c2 := cloneView(c1)
		gemmSmall(c1, a, b, true)
		gemmNTNaive(c2, a, b)
		return maxAbsDiffBacking(c1, c2) <= gemmTol(c2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestGemmSmallEdgeSizes pins the small path on degenerate and
// tile-boundary shapes: empty extents, single rows/columns, and every
// combination of quad-aligned and ragged edges.
func TestGemmSmallEdgeSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	dims := []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 31}
	for _, m := range dims {
		for _, n := range dims {
			for _, k := range dims {
				a := randView(rng, m, k)
				b := randView(rng, k, n)
				c1 := randView(rng, m, n)
				c2 := cloneView(c1)
				gemmSmall(c1, a, b, false)
				gemmNaive(c2, a, b)
				if maxAbsDiffBacking(c1, c2) > gemmTol(c2) {
					t.Fatalf("small gemm wrong at m=%d n=%d k=%d", m, n, k)
				}
			}
		}
	}
}

// TestGemmSmallPropagatesNonFinite: the small path must keep the IEEE
// semantics of the other paths — Inf in A against a zero in B surfaces
// as NaN instead of being skipped.
func TestGemmSmallPropagatesNonFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m, n, k := 9, 6, 8
	a := randView(rng, m, k)
	b := randView(rng, k, n)
	c := randView(rng, m, n)
	a.Set(1, 3, math.Inf(1))
	for j := 0; j < n; j++ {
		b.Set(3, j, 0)
	}
	gemmSmall(c, a, b, false)
	for j := 0; j < n; j++ {
		if !math.IsNaN(c.At(1, j)) {
			t.Fatalf("Inf*0 did not propagate NaN to column %d", j)
		}
	}
}

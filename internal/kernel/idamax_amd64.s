// AVX2 pivot-search helpers: vectorized abs-max reduction and
// first-equal scan. See idamax_amd64.go for the NaN semantics.

#include "textflag.h"

// func maxAbsAVX2(n int, x *float64) float64
//
// Max of |x[i]| over i in [0, n); n is a positive multiple of 4.
// Four lanes accumulate with VMAXPD keeping the accumulator in the
// NaN-wins source slot (acc starts at 0 and never goes NaN), then the
// lanes are reduced with the same ordering.
TEXT ·maxAbsAVX2(SB), NOSPLIT, $0-24
	MOVQ n+0(FP), CX
	MOVQ x+8(FP), SI

	MOVQ         $0x7FFFFFFFFFFFFFFF, AX
	MOVQ         AX, X2
	VPBROADCASTQ X2, Y2 // abs mask
	VXORPD       Y0, Y0, Y0

maxloop:
	VMOVUPD (SI), Y1
	VANDPD  Y2, Y1, Y1
	VMAXPD  Y0, Y1, Y0 // acc = max(cand, acc); NaN cand loses
	ADDQ    $32, SI
	SUBQ    $4, CX
	JNZ     maxloop

	VEXTRACTF128 $1, Y0, X1
	VMAXPD       X0, X1, X0
	VPERMILPD    $1, X0, X1
	VMAXSD       X0, X1, X0
	VMOVSD       X0, ret+16(FP)
	VZEROUPPER
	RET

// func findAbsAVX2(n int, x *float64, target float64) int
//
// First i in [0, n) with |x[i]| == target (ordered compare), or -1.
// n is a positive multiple of 4.
TEXT ·findAbsAVX2(SB), NOSPLIT, $0-32
	MOVQ         n+0(FP), CX
	MOVQ         x+8(FP), SI
	VBROADCASTSD target+16(FP), Y3

	MOVQ         $0x7FFFFFFFFFFFFFFF, AX
	MOVQ         AX, X2
	VPBROADCASTQ X2, Y2 // abs mask
	XORQ         DX, DX

findloop:
	VMOVUPD   (SI), Y1
	VANDPD    Y2, Y1, Y1
	VCMPPD    $0, Y3, Y1, Y1 // EQ_OQ: NaNs fail, Inf == Inf holds
	VMOVMSKPD Y1, AX
	TESTL     AX, AX
	JNZ       found
	ADDQ      $32, SI
	ADDQ      $4, DX
	SUBQ      $4, CX
	JNZ       findloop

	MOVQ $-1, ret+24(FP)
	VZEROUPPER
	RET

found:
	BSFL AX, AX
	ADDQ AX, DX
	MOVQ DX, ret+24(FP)
	VZEROUPPER
	RET

package kernel

import (
	"os"
	"sync"
)

// Blocking parameters of the packed GEMM, following the classic
// three-level Goto/BLIS decomposition:
//
//   - mr x nr is the register tile computed by the micro-kernel. The
//     portable micro-kernel uses 4x4 (16 scalar accumulators); the
//     amd64 AVX2+FMA micro-kernels use 8x4 (eight 256-bit accumulator
//     registers) or 8x6 (twelve). mr and nr are variables because the
//     platform init and the autotuner may swap micro-kernels.
//   - kc limits the k extent of one packed A/B pair so that an mr x kc
//     sliver of A plus a kc x nr sliver of B stay L1-resident while the
//     micro-kernel streams over them.
//   - mc limits the row extent of the packed A block (mc x kc doubles)
//     so it stays L2-resident across the whole macro-kernel sweep.
//   - nc limits the column extent of the packed B block (kc x nc
//     doubles), the L3-resident operand.
//
// Historically kc/mc/nc were constants hand-picked for one Xeon; they
// are now fields of a tuning Profile selected at first kernel use by a
// cache-size probe plus a short micro-benchmark search (tuner.go), and
// persisted per CPU signature so later processes start tuned. The
// values below are the static defaults — the pre-tuner behaviour, and
// what HSD_TUNE=off pins for A/B comparison.
const (
	defaultKC = 256
	defaultMC = 128
	defaultNC = 512

	// maxMR/maxNR bound the register tile over all micro-kernel
	// implementations; the macro-kernel's accumulator scratch is sized
	// by them.
	maxMR = 8
	maxNR = 6
)

// Active GEMM blocking; mutated only by applyProfile (before any
// concurrent kernel use, behind the ensureTuned gate) and read
// everywhere else.
//
//hsd:profile-state
var (
	kc = defaultKC
	mc = defaultMC
	nc = defaultNC
)

// mr x nr is the active GEMM register tile; the platform init installs
// the widest supported kernel (microkernel_amd64.go) and the tuner may
// replace it with whichever registered kernel benches fastest.
//
//hsd:profile-state
var (
	mr = 4
	nr = 4
)

// microKernel computes acc[j*mr+i] = sum_l ap[l*mr+i]*bp[l*nr+j] for a
// full register tile over kk packed k-steps. It must not touch C; the
// macro-kernel subtracts acc into C afterwards, masking edge tiles.
//
//hsd:profile-state
var microKernel = micro4x4

// pmr x pnr is the register tile of the blocked GETRF panel path. It is
// deliberately NOT a tuning knob: the panel kernel's bit-identity
// contract (separate multiply/subtract rounding, see getrf.go) ties it
// to a specific assembly implementation, so it is fixed by the platform
// init (8x4 with AVX2, else the portable 4x4) and never moves with the
// GEMM tile the tuner selects.
var (
	pmr = 4
	pnr = 4
)

// gemmMinFlops is the m*n*k product below which the packed path does
// not pay for its packing traffic and the dispatcher keeps the direct
// small path. Part of the tuning profile so the crossover can move with
// the machine; 32^3 is the static default benched on the shapes
// RecursiveLU and the CALU update generate.
//
//hsd:profile-state
var gemmMinFlops = 32 * 32 * 32

// packedWorthwhile reports whether C (m x n) -= A*B over k should take
// the packed register-tiled path.
func packedWorthwhile(m, n, k int) bool {
	return m >= 4 && n >= 4 && k >= 4 && m*n*k >= gemmMinFlops
}

// trsmBlock is the diagonal-block size of the blocked triangular
// solves: diagonal trsmBlock x trsmBlock systems are solved by the
// naive kernels and everything off-diagonal becomes a GEMM.
const trsmBlock = 32

// panelCrossover is the column count at or below which RecursiveLU
// stops recursing and hands the whole leaf to the blocked micro-panel
// Getrf. It was 16 when the leaves were scalar Getf2; the blocked
// kernel keeps BLAS-3-like reuse up to much wider leaves, so splitting
// below 64 columns only adds recursion overhead.
const panelCrossover = 64

// panelMinArea is the m*n panel area below which the blocked GETRF
// cannot amortize its packing traffic and workspace round trip. Part of
// the tuning profile, like gemmMinFlops.
//
//hsd:profile-state
var panelMinArea = 32 * 32

// panelBlockedWorthwhile reports whether an m x n panel factorization
// should take the blocked micro-panel path: it needs at least two
// register rows to tile, more columns than one micro-panel (otherwise
// there is no trailing update to block), and enough area to pay for
// packing.
func panelBlockedWorthwhile(m, n int) bool {
	return m >= 2*pmr && n > pmr && m*n >= panelMinArea
}

// useNaiveKernels pins every dispatcher to the naive reference kernels.
// It exists for tests (pivot-invariance and differential runs); it is
// not a tuning knob.
var useNaiveKernels = false

// ---------------------------------------------------------------------
// Tuning profiles.

// profileVersion invalidates persisted profiles whenever the packed
// formats or the candidate kernels change shape.
const profileVersion = 1

// Profile is one complete kernel configuration: the micro-kernel and
// the three blocking levels, plus the dispatch crossovers. A Profile is
// what the tuner searches over, persists under os.UserCacheDir(), and
// applies at first kernel use.
type Profile struct {
	// Version is profileVersion at store time; mismatches force a
	// re-tune.
	Version int `json:"version"`
	// Signature identifies the CPU the profile was tuned on.
	Signature string `json:"signature"`
	// Kernel names the registered micro-kernel ("portable-4x4",
	// "avx2-8x4", "avx2-8x6").
	Kernel string `json:"kernel"`
	// MR/NR record the kernel's register tile (informational; the
	// kernel name is authoritative).
	MR int `json:"mr"`
	NR int `json:"nr"`
	// KC/MC/NC are the three blocking levels.
	KC int `json:"kc"`
	MC int `json:"mc"`
	NC int `json:"nc"`
	// GemmMinFlops and PanelMinArea are the dispatch crossovers.
	GemmMinFlops int `json:"gemmMinFlops"`
	PanelMinArea int `json:"panelMinArea"`
	// GFLOPS is the micro-benchmark score the profile achieved during
	// the search (0 for static defaults and loaded profiles that did
	// not re-bench).
	GFLOPS float64 `json:"gflops"`
}

// microImpl is one registered micro-kernel implementation.
type microImpl struct {
	name   string
	mr, nr int
	fn     func(kk int, ap, bp, acc []float64)
}

// microImpls is the kernel registry; platform inits append their
// entries before any tuning runs.
var microImpls = map[string]microImpl{
	"portable-4x4": {name: "portable-4x4", mr: 4, nr: 4, fn: micro4x4},
}

// defaultKernelName is the widest kernel the platform init installed —
// the static-default (HSD_TUNE=off) choice.
var defaultKernelName = "portable-4x4"

// defaultProfile reproduces the pre-tuner behaviour: the platform's
// widest micro-kernel with the hand-picked blocking constants.
func defaultProfile() Profile {
	impl := microImpls[defaultKernelName]
	return Profile{
		Version:      profileVersion,
		Kernel:       impl.name,
		MR:           impl.mr,
		NR:           impl.nr,
		KC:           defaultKC,
		MC:           defaultMC,
		NC:           defaultNC,
		GemmMinFlops: 32 * 32 * 32,
		PanelMinArea: 32 * 32,
	}
}

var (
	tuneOnce sync.Once
	// The reported profile and its provenance move with the blocking
	// globals under the same gate.
	activeProfile = defaultProfile() //hsd:profile-state
	tuneSource    = "static"         //hsd:profile-state ("static", "persisted" or "searched")
)

// ensureTuned runs the autotuner exactly once, before the first real
// kernel dispatch. Every exported kernel entry point (and Reserve)
// calls it; concurrent callers block until tuning completes, so the
// blocking globals are never mutated under a running kernel. HSD_TUNE=off
// skips the tuner entirely and keeps the static defaults.
func ensureTuned() {
	tuneOnce.Do(func() {
		if os.Getenv("HSD_TUNE") == "off" {
			// The blocking globals already hold the static defaults; only
			// the reported profile needs refreshing, because its package-
			// var snapshot ran before the platform init registered the
			// vector kernels.
			wsMu.Lock()
			activeProfile = defaultProfile()
			wsMu.Unlock()
			return
		}
		p, src := tunedProfile()
		if err := applyProfile(p); err != nil {
			// An unusable persisted profile (stale kernel name, garbage
			// sizes): fall back to the static defaults rather than fail.
			applyProfile(defaultProfile())
			src = "static"
		}
		tuneSource = src
	})
}

// applyProfile installs p as the active kernel configuration. The
// workspace free list is flushed so every later checkout is sized for
// the new blocking. Callers must guarantee no kernel is concurrently
// executing (the ensureTuned gate does in production; tests serialize).
func applyProfile(p Profile) error {
	impl, ok := microImpls[p.Kernel]
	if !ok {
		return &profileError{p.Kernel, "unknown kernel"}
	}
	if p.KC < 16 || p.MC < impl.mr || p.NC < impl.nr ||
		p.KC > 4096 || p.MC > 4096 || p.NC > 8192 {
		return &profileError{p.Kernel, "blocking out of range"}
	}
	wsMu.Lock()
	defer wsMu.Unlock()
	mr, nr = impl.mr, impl.nr
	microKernel = impl.fn
	kc, mc, nc = p.KC, p.MC, p.NC
	if p.GemmMinFlops > 0 {
		gemmMinFlops = p.GemmMinFlops
	}
	if p.PanelMinArea > 0 {
		panelMinArea = p.PanelMinArea
	}
	p.MR, p.NR = impl.mr, impl.nr
	activeProfile = p
	// Stale-size buffers on the free list would under-fit the new
	// blocking; drop them (putWorkspace also guards, so checked-out
	// buffers returned later are dropped too).
	for i := range wsFree {
		wsFree[i] = nil
	}
	wsFree = wsFree[:0]
	return nil
}

type profileError struct {
	kernel, msg string
}

func (e *profileError) Error() string {
	return "kernel: profile " + e.kernel + ": " + e.msg
}

// ActiveProfile returns the kernel configuration in effect (running the
// tuner first if it has not run yet) and how it was obtained: "static"
// (defaults / HSD_TUNE=off), "persisted" (loaded from the per-CPU cache
// file) or "searched" (micro-benchmark search this process).
func ActiveProfile() (Profile, string) {
	ensureTuned()
	wsMu.Lock()
	defer wsMu.Unlock()
	return activeProfile, tuneSource
}

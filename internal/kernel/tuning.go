package kernel

// Blocking parameters of the packed GEMM, following the classic
// three-level Goto/BLIS decomposition:
//
//   - mr x nr is the register tile computed by the micro-kernel. The
//     portable micro-kernel uses 4x4 (16 scalar accumulators); the
//     amd64 AVX2+FMA micro-kernel uses 8x4 (eight 256-bit accumulator
//     registers). mr and nr are variables because the platform init
//     may swap in a wider micro-kernel.
//   - kc limits the k extent of one packed A/B pair so that an mr x kc
//     sliver of A plus a kc x nr sliver of B stay L1-resident while the
//     micro-kernel streams over them.
//   - mc limits the row extent of the packed A block (mc x kc doubles,
//     256 KiB at the defaults) so it stays L2-resident across the whole
//     macro-kernel sweep.
//   - nc limits the column extent of the packed B block (kc x nc
//     doubles, 1 MiB at the defaults), the L3-resident operand.
//
// mc must stay a multiple of every supported mr and nc a multiple of
// every supported nr, so edge padding never overflows the workspace.
const (
	kc = 256
	mc = 128
	nc = 512

	// maxMR/maxNR bound the register tile over all micro-kernel
	// implementations; the macro-kernel's accumulator scratch is sized
	// by them.
	maxMR = 8
	maxNR = 4
)

// mr x nr is the active register tile; overridden at init by platform
// micro-kernels (see microkernel_amd64.go).
var (
	mr = 4
	nr = 4
)

// microKernel computes acc[j*mr+i] = sum_l ap[l*mr+i]*bp[l*nr+j] for a
// full register tile over kk packed k-steps. It must not touch C; the
// macro-kernel subtracts acc into C afterwards, masking edge tiles.
var microKernel = micro4x4

// gemmPackedMinFlops is the m*n*k product below which the packed path
// does not pay for its packing traffic and the dispatcher keeps the
// naive loop nest. 32^3 was chosen by benchmarking the crossover on the
// shapes RecursiveLU and the CALU update generate.
const gemmPackedMinFlops = 32 * 32 * 32

// packedWorthwhile reports whether C (m x n) -= A*B over k should take
// the packed register-tiled path.
func packedWorthwhile(m, n, k int) bool {
	return m >= 4 && n >= 4 && k >= 4 && m*n*k >= gemmPackedMinFlops
}

// trsmBlock is the diagonal-block size of the blocked triangular
// solves: diagonal trsmBlock x trsmBlock systems are solved by the
// naive kernels and everything off-diagonal becomes a GEMM.
const trsmBlock = 32

// panelCrossover is the column count at or below which RecursiveLU
// stops recursing and hands the whole leaf to the blocked micro-panel
// Getrf. It was 16 when the leaves were scalar Getf2; the blocked
// kernel keeps BLAS-3-like reuse up to much wider leaves, so splitting
// below 64 columns only adds recursion overhead.
const panelCrossover = 64

// panelBlockedMinArea is the m*n panel area below which the blocked
// GETRF cannot amortize its packing traffic and workspace round trip.
const panelBlockedMinArea = 32 * 32

// panelBlockedWorthwhile reports whether an m x n panel factorization
// should take the blocked micro-panel path: it needs at least two
// register rows to tile, more columns than one micro-panel (otherwise
// there is no trailing update to block), and enough area to pay for
// packing.
func panelBlockedWorthwhile(m, n int) bool {
	return m >= 2*mr && n > mr && m*n >= panelBlockedMinArea
}

// useNaiveKernels pins every dispatcher to the naive reference kernels.
// It exists for tests (pivot-invariance and differential runs); it is
// not a tuning knob.
var useNaiveKernels = false

package kernel

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// randView builds an r x c view with a random non-trivial stride and
// slack elements before/after every column, so out-of-view writes by a
// kernel corrupt detectable padding.
func randView(rng *rand.Rand, r, c int) View {
	stride := r + rng.Intn(5)
	if stride == 0 {
		stride = 1
	}
	data := make([]float64, c*stride+7)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	return View{Rows: r, Cols: c, Stride: stride, Data: data}
}

func cloneView(v View) View {
	d := make([]float64, len(v.Data))
	copy(d, v.Data)
	return View{Rows: v.Rows, Cols: v.Cols, Stride: v.Stride, Data: d}
}

// maxAbsDiffBacking compares the FULL backing slices, so padding
// outside the view must match too (catches stray writes).
func maxAbsDiffBacking(a, b View) float64 {
	m := 0.0
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}

func gemmTol(c View) float64 { return 1e-12 * math.Max(1, NormMax(c)) }

// TestGemmPackedMatchesNaiveProperty drives the packed path directly
// (bypassing the size dispatcher) against the naive oracle over random
// odd shapes and strides.
func TestGemmPackedMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(200)
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(300)
		a := randView(rng, m, k)
		b := randView(rng, k, n)
		c1 := randView(rng, m, n)
		c2 := cloneView(c1)
		gemmPacked(c1, a, b, false)
		gemmNaive(c2, a, b)
		return maxAbsDiffBacking(c1, c2) <= gemmTol(c2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestGemmNTPackedMatchesNaiveProperty is the transposed-B variant.
func TestGemmNTPackedMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(150)
		n := 1 + rng.Intn(150)
		k := 1 + rng.Intn(200)
		a := randView(rng, m, k)
		b := randView(rng, n, k)
		c1 := randView(rng, m, n)
		c2 := cloneView(c1)
		gemmPacked(c1, a, b, true)
		gemmNTNaive(c2, a, b)
		return maxAbsDiffBacking(c1, c2) <= gemmTol(c2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestGemmPackedEdgeSizes pins the packed path on the degenerate and
// register-tile-boundary shapes: 0, 1, mr-1, mr+1, nr-1, nr+1 and the
// cache-blocking boundaries kc±1, mc+1, nc+1.
func TestGemmPackedEdgeSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	dims := []int{0, 1, mr - 1, mr, mr + 1, nr - 1, nr + 1, 2*mr + 3}
	deep := []int{0, 1, mr - 1, nr + 1, kc - 1, kc, kc + 1}
	for _, m := range dims {
		for _, n := range dims {
			for _, k := range deep {
				a := randView(rng, m, k)
				b := randView(rng, k, n)
				c1 := randView(rng, m, n)
				c2 := cloneView(c1)
				gemmPacked(c1, a, b, false)
				gemmNaive(c2, a, b)
				if maxAbsDiffBacking(c1, c2) > gemmTol(c2) {
					t.Fatalf("packed gemm wrong at m=%d n=%d k=%d", m, n, k)
				}
			}
		}
	}
	// Blocking boundaries in m and n (one macro-block plus a sliver).
	for _, dims := range [][3]int{{mc + 1, nr, kc + 1}, {mr, nc + 1, 17}, {mc + mr + 1, nc + nr + 1, kc + 1}} {
		m, n, k := dims[0], dims[1], dims[2]
		a := randView(rng, m, k)
		b := randView(rng, k, n)
		c1 := randView(rng, m, n)
		c2 := cloneView(c1)
		gemmPacked(c1, a, b, false)
		gemmNaive(c2, a, b)
		if maxAbsDiffBacking(c1, c2) > gemmTol(c2) {
			t.Fatalf("packed gemm wrong at m=%d n=%d k=%d", m, n, k)
		}
	}
}

// TestGemmDispatchCrossover checks the public Gemm entry right around
// the packed/naive crossover, where both paths must agree.
func TestGemmDispatchCrossover(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, s := range []int{31, 32, 33, 40} {
		a := randView(rng, s, s)
		b := randView(rng, s, s)
		c1 := randView(rng, s, s)
		c2 := cloneView(c1)
		Gemm(c1, a, b)
		gemmNaive(c2, a, b)
		if maxAbsDiffBacking(c1, c2) > gemmTol(c2) {
			t.Fatalf("dispatcher mismatch at size %d", s)
		}
	}
}

// TestTrsmBlockedMatchesNaive pins the blocked triangular solves to
// their naive twins on sizes spanning several diagonal blocks.
func TestTrsmBlockedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{trsmBlock + 1, 2*trsmBlock - 3, 97, 160} {
		for _, m := range []int{1, 5, 64, 130} {
			// Lower-left-unit: L n x n, B n x m.
			l := randView(rng, n, n)
			for i := 0; i < n; i++ {
				l.Set(i, i, 1)
			}
			b1 := randView(rng, n, m)
			b2 := cloneView(b1)
			TrsmLowerLeftUnit(l, b1)
			trsmLowerLeftUnitNaive(l, b2)
			if d := maxAbsDiffBacking(b1, b2); d > 1e-9*math.Max(1, NormMax(b2)) {
				t.Fatalf("blocked trsmL mismatch n=%d m=%d: %g", n, m, d)
			}
			// Upper-right: U n x n (diagonal away from zero), B m x n.
			u := randView(rng, n, n)
			for i := 0; i < n; i++ {
				u.Set(i, i, 2+rng.Float64())
			}
			c1 := randView(rng, m, n)
			c2 := cloneView(c1)
			TrsmUpperRight(u, c1)
			trsmUpperRightNaive(u, c2)
			if d := maxAbsDiffBacking(c1, c2); d > 1e-9*math.Max(1, NormMax(c2)) {
				t.Fatalf("blocked trsmU mismatch n=%d m=%d: %g", n, m, d)
			}
			// Lower-left non-unit (forward solve sweep, Cholesky L).
			ln := randView(rng, n, n)
			for i := 0; i < n; i++ {
				ln.Set(i, i, 2+rng.Float64())
			}
			e1 := randView(rng, n, m)
			e2 := cloneView(e1)
			TrsmLowerLeft(ln, e1)
			trsmLowerLeftNaive(ln, e2)
			if d := maxAbsDiffBacking(e1, e2); d > 1e-9*math.Max(1, NormMax(e2)) {
				t.Fatalf("blocked trsmLL mismatch n=%d m=%d: %g", n, m, d)
			}
			// Upper-left (backward solve sweep).
			un := randView(rng, n, n)
			for i := 0; i < n; i++ {
				un.Set(i, i, 2+rng.Float64())
			}
			f1 := randView(rng, n, m)
			f2 := cloneView(f1)
			TrsmUpperLeft(un, f1)
			trsmUpperLeftNaive(un, f2)
			if d := maxAbsDiffBacking(f1, f2); d > 1e-9*math.Max(1, NormMax(f2)) {
				t.Fatalf("blocked trsmUL mismatch n=%d m=%d: %g", n, m, d)
			}
			// Right-lower-transposed (Cholesky panel).
			lo := randView(rng, n, n)
			for i := 0; i < n; i++ {
				lo.Set(i, i, 2+rng.Float64())
			}
			d1 := randView(rng, m, n)
			d2 := cloneView(d1)
			TrsmRightLowerTrans(lo, d1)
			trsmRightLowerTransNaive(lo, d2)
			if d := maxAbsDiffBacking(d1, d2); d > 1e-9*math.Max(1, NormMax(d2)) {
				t.Fatalf("blocked trsmRLT mismatch n=%d m=%d: %g", n, m, d)
			}
		}
	}
}

// TestRecursiveLUPivotsInvariant verifies that routing RecursiveLU's
// solve/update through the packed kernels leaves the pivot sequence
// identical to the all-naive reference — the property the CALU
// benchmarks rely on ("same pivots, residual bounds").
func TestRecursiveLUPivotsInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for _, dims := range [][2]int{{64, 64}, {200, 96}, {333, 120}, {512, 64}} {
		m, n := dims[0], dims[1]
		a := randView(rng, m, n)
		tuned := cloneView(a)
		naive := cloneView(a)
		pivTuned := make([]int, n)
		pivNaive := make([]int, n)
		if err := RecursiveLU(tuned, pivTuned); err != nil {
			t.Fatal(err)
		}
		useNaiveKernels = true
		err := RecursiveLU(naive, pivNaive)
		useNaiveKernels = false
		if err != nil {
			t.Fatal(err)
		}
		for k := range pivTuned {
			if pivTuned[k] != pivNaive[k] {
				t.Fatalf("%dx%d: pivot %d differs: tuned %d naive %d", m, n, k, pivTuned[k], pivNaive[k])
			}
		}
		if d := maxAbsDiffBacking(tuned, naive); d > 1e-11*math.Max(1, NormMax(naive)) {
			t.Fatalf("%dx%d: factors diverge: %g", m, n, d)
		}
	}
}

// TestGemmPropagatesNonFinite locks in the IEEE semantics the old
// zero-short-circuit violated: a zero in B against an Inf in A must
// produce NaN, not silently skip the column.
func TestGemmPropagatesNonFinite(t *testing.T) {
	for _, packed := range []bool{false, true} {
		m, n, k := 2*mr, 2*nr, 8
		rng := rand.New(rand.NewSource(5))
		a := randView(rng, m, k)
		b := randView(rng, k, n)
		c := randView(rng, m, n)
		a.Set(1, 3, math.Inf(1))
		for j := 0; j < n; j++ {
			b.Set(3, j, 0) // Inf * 0 must surface as NaN in every column
		}
		if packed {
			gemmPacked(c, a, b, false)
		} else {
			gemmNaive(c, a, b)
		}
		for j := 0; j < n; j++ {
			if !math.IsNaN(c.At(1, j)) {
				t.Fatalf("packed=%v: Inf*0 did not propagate NaN to column %d", packed, j)
			}
		}
	}
}

// TestTrsmPropagatesNonFinite is the TRSM half of the same guarantee.
func TestTrsmPropagatesNonFinite(t *testing.T) {
	n, m := 6, 3
	rng := rand.New(rand.NewSource(6))
	l := randView(rng, n, n)
	for i := 0; i < n; i++ {
		l.Set(i, i, 1)
	}
	l.Set(4, 2, math.Inf(1))
	l.Set(2, 0, 0)
	l.Set(2, 1, 0) // keep b(2,1) untouched until step k=2 consumes it
	b := randView(rng, n, m)
	b.Set(2, 1, 0) // zero rhs entry meets Inf multiplier
	trsmLowerLeftUnitNaive(l, b)
	if !math.IsNaN(b.At(4, 1)) {
		t.Fatal("Inf*0 did not propagate NaN through trsmL")
	}
}

// TestGemmPackedConcurrent runs many packed GEMMs in parallel on
// distinct outputs: the pooled pack workspaces must never alias.
func TestGemmPackedConcurrent(t *testing.T) {
	const workers = 8
	defer Reserve(workers).Release()
	var wg sync.WaitGroup
	errs := make([]float64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for iter := 0; iter < 10; iter++ {
				m, n, k := 64+w, 64+iter, 96
				a := randView(rng, m, k)
				b := randView(rng, k, n)
				c1 := randView(rng, m, n)
				c2 := cloneView(c1)
				gemmPacked(c1, a, b, false)
				gemmNaive(c2, a, b)
				if d := maxAbsDiffBacking(c1, c2); d > errs[w] {
					errs[w] = d
				}
			}
		}(w)
	}
	wg.Wait()
	for w, d := range errs {
		if d > 1e-11 {
			t.Fatalf("worker %d saw mismatch %g under concurrency", w, d)
		}
	}
}

// Black-box tests (external test package so internal/layout, which
// itself imports kernel, can be used): the packed GEMM and blocked
// TRSM must be exact on the strided views the block-cyclic and
// two-level layouts hand to the CALU tasks — including grouped
// (vertically fused) views, whose strides differ from their row counts.
package kernel_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/layout"
	"repro/internal/mat"
)

func denseView(a *mat.Dense) kernel.View {
	return kernel.View{Rows: a.Rows, Cols: a.Cols, Stride: a.Stride, Data: a.Data}
}

// refGemmDense computes C -= A*B with scalar loops on dense matrices.
func refGemmDense(c, a, b *mat.Dense) {
	for j := 0; j < c.Cols; j++ {
		for i := 0; i < c.Rows; i++ {
			s := c.At(i, j)
			for l := 0; l < a.Cols; l++ {
				s -= a.At(i, l) * b.At(l, j)
			}
			c.Set(i, j, s)
		}
	}
}

// TestGemmOnLayoutBlockViews runs the CALU S-task update on real
// layout block views for every storage scheme and checks the layout's
// dense image against a plain dense reference.
func TestGemmOnLayoutBlockViews(t *testing.T) {
	const n, b = 260, 64 // ragged: 5 block rows/cols, last is 4 wide
	rng := rand.New(rand.NewSource(41))
	src := mat.Random(n, n, rng)
	grid := layout.NewGrid(4)
	for _, kind := range []layout.Kind{layout.CM, layout.BCL, layout.TwoLevel} {
		l := layout.New(kind, src, b, grid)
		want := src.Clone()
		mb, nb := l.Blocks()
		// C(i,j) -= A(i,0) * B(0,j) for all off-panel blocks, edge
		// blocks included.
		for i := 1; i < mb; i++ {
			for j := 1; j < nb; j++ {
				av := l.Block(i, 0)
				bv := l.Block(0, j)
				cv := l.Block(i, j)
				// Shapes: A rows(i) x b, B b x cols(j), C rows(i) x cols(j).
				kernel.Gemm(cv, av, bv)
			}
		}
		for i := 1; i < mb; i++ {
			for j := 1; j < nb; j++ {
				ai := want.Slice(i*b, min(n, i*b+b), 0, b)
				bj := want.Slice(0, b, j*b, min(n, j*b+b))
				cij := want.Slice(i*b, min(n, i*b+b), j*b, min(n, j*b+b))
				refGemmDense(cij, ai.Clone(), bj.Clone())
			}
		}
		got := l.ToDense()
		if d := mat.MaxAbsDiff(got, want); d > 1e-11*math.Max(1, want.NormMax()) {
			t.Fatalf("%v: packed gemm wrong on layout views: %g", kind, d)
		}
	}
}

// TestGemmOnGroupedRowViews exercises the vertically fused views the
// trailing update uses (GroupedRows), whose row extent spans several
// blocks while the stride comes from the owner's storage.
func TestGemmOnGroupedRowViews(t *testing.T) {
	const n, b = 256, 32
	rng := rand.New(rand.NewSource(43))
	src := mat.Random(n, n, rng)
	grid := layout.NewGrid(4)
	for _, kind := range []layout.Kind{layout.CM, layout.BCL, layout.TwoLevel} {
		l := layout.New(kind, src, b, grid)
		mb, _ := l.Blocks()
		i0, j := 1, 4
		w := l.RowGroupWidth(i0, j, mb-i0)
		if w < 1 {
			t.Fatalf("%v: no grouped rows at (%d,%d)", kind, i0, j)
		}
		cv := l.GroupedRows(i0, j, w)
		av := l.GroupedRows(i0, 0, w)
		bv := l.Block(0, j)
		kernel.Gemm(cv, av, bv)

		// Dense reference: the same update applied to the rows the
		// group covers (consecutive owned block rows step by the grid
		// row period).
		want := src.Clone()
		period := 1
		if kind != layout.CM {
			period = l.Grid().PR
		}
		for g := 0; g < w; g++ {
			i := i0 + g*period
			r0, r1 := i*b, min(n, i*b+b)
			ai := want.Slice(r0, r1, 0, b)
			bj := want.Slice(0, b, j*b, min(n, j*b+b))
			cij := want.Slice(r0, r1, j*b, min(n, j*b+b))
			refGemmDense(cij, ai.Clone(), bj.Clone())
		}
		got := l.ToDense()
		if d := mat.MaxAbsDiff(got, want); d > 1e-11*math.Max(1, want.NormMax()) {
			t.Fatalf("%v: packed gemm wrong on grouped views (w=%d): %g", kind, w, d)
		}
	}
}

// TestTrsmOnLayoutViews runs the U-task solve on layout block views.
func TestTrsmOnLayoutViews(t *testing.T) {
	const n, b = 200, 64
	rng := rand.New(rand.NewSource(47))
	src := mat.Random(n, n, rng)
	for i := 0; i < n; i++ {
		src.Set(i, i, 1)
		for j := i + 1; j < n; j++ {
			if i < b && j < b {
				src.Set(i, j, 0) // make the (0,0) block unit lower triangular
			}
		}
	}
	grid := layout.NewGrid(4)
	for _, kind := range []layout.Kind{layout.BCL, layout.TwoLevel} {
		l := layout.New(kind, src, b, grid)
		lv := l.Block(0, 0)
		bv := l.Block(0, 2)
		x := mat.FromColMajor(bv.Rows, bv.Cols, bv.Stride, bv.Data).Clone()
		kernel.TrsmLowerLeftUnit(lv, bv)
		// Reference with the naive oracle on a dense copy.
		l00 := src.Slice(0, b, 0, b)
		kernel.TrsmLowerLeftUnitNaive(denseView(l00.Clone()), denseView(x))
		got := mat.FromColMajor(bv.Rows, bv.Cols, bv.Stride, bv.Data)
		maxd := 0.0
		for j := 0; j < x.Cols; j++ {
			for i := 0; i < x.Rows; i++ {
				if d := math.Abs(got.At(i, j) - x.At(i, j)); d > maxd {
					maxd = d
				}
			}
		}
		if maxd > 1e-10*math.Max(1, x.NormMax()) {
			t.Fatalf("%v: blocked trsm wrong on layout views: %g", kind, maxd)
		}
	}
}

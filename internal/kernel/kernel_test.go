package kernel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func view(a *mat.Dense) View {
	return View{Rows: a.Rows, Cols: a.Cols, Stride: a.Stride, Data: a.Data}
}

func TestGemmMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {16, 16, 16}, {65, 33, 70}, {128, 64, 130}} {
		m, n, k := dims[0], dims[1], dims[2]
		a := mat.Random(m, k, rng)
		b := mat.Random(k, n, rng)
		c := mat.Random(m, n, rng)
		want := c.Clone()
		ab := mat.MulNaive(a, b)
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				want.Set(i, j, want.At(i, j)-ab.At(i, j))
			}
		}
		Gemm(view(c), view(a), view(b))
		if mat.MaxAbsDiff(c, want) > 1e-11 {
			t.Fatalf("gemm mismatch for %v: %g", dims, mat.MaxAbsDiff(c, want))
		}
	}
}

func TestGemmOnStridedViews(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	big := mat.Random(20, 20, rng)
	a := big.Slice(2, 8, 3, 7)   // 6x4
	b := big.Slice(10, 14, 5, 9) // 4x4
	c := big.Slice(1, 7, 12, 16) // 6x4
	want := c.Clone()
	ab := mat.MulNaive(a.Clone(), b.Clone())
	for j := 0; j < 4; j++ {
		for i := 0; i < 6; i++ {
			want.Set(i, j, want.At(i, j)-ab.At(i, j))
		}
	}
	Gemm(view(c), view(a), view(b))
	if mat.MaxAbsDiff(c.Clone(), want) > 1e-12 {
		t.Fatal("gemm wrong on strided views")
	}
}

func TestTrsmLowerLeftUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, m := 12, 7
	l := mat.Random(n, n, rng)
	for i := 0; i < n; i++ {
		l.Set(i, i, 1)
		for j := i + 1; j < n; j++ {
			l.Set(i, j, 0)
		}
	}
	b := mat.Random(n, m, rng)
	x := b.Clone()
	TrsmLowerLeftUnit(view(l), view(x))
	lx := mat.MulNaive(l, x)
	if mat.MaxAbsDiff(lx, b) > 1e-10 {
		t.Fatalf("L*X != B: %g", mat.MaxAbsDiff(lx, b))
	}
}

func TestTrsmUpperRight(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, m := 9, 6
	u := mat.Random(n, n, rng)
	for i := 0; i < n; i++ {
		u.Set(i, i, 2+rng.Float64()) // well away from zero
		for j := 0; j < i; j++ {
			u.Set(i, j, 0)
		}
	}
	b := mat.Random(m, n, rng)
	x := b.Clone()
	TrsmUpperRight(view(u), view(x))
	xu := mat.MulNaive(x, u)
	if mat.MaxAbsDiff(xu, b) > 1e-10 {
		t.Fatalf("X*U != B: %g", mat.MaxAbsDiff(xu, b))
	}
}

func TestTrsmUpperRightSingularPanics(t *testing.T) {
	u := mat.Eye(3)
	u.Set(1, 1, 0)
	b := mat.New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on singular U")
		}
	}()
	TrsmUpperRight(view(u), view(b))
}

// factorAndCheck verifies P*A = L*U for a pivoted factorization of a.
func factorAndCheck(t *testing.T, a *mat.Dense, factor func(View, []int) error) {
	t.Helper()
	m, n := a.Rows, a.Cols
	work := a.Clone()
	pivots := make([]int, min(m, n))
	if err := factor(view(work), pivots); err != nil {
		t.Fatalf("factorization failed: %v", err)
	}
	// Build the permutation vector from the swap sequence.
	perm := make([]int, m)
	for i := range perm {
		perm[i] = i
	}
	for k, p := range pivots {
		perm[k], perm[p] = perm[p], perm[k]
	}
	pa := mat.PermuteRows(a, perm)
	// Extract L (m x min) and U (min x n).
	mn := min(m, n)
	l := mat.New(m, mn)
	u := mat.New(mn, n)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			v := work.At(i, j)
			switch {
			case i > j && j < mn:
				l.Set(i, j, v)
			case i <= j && i < mn:
				u.Set(i, j, v)
			}
		}
	}
	for i := 0; i < mn; i++ {
		l.Set(i, i, 1)
	}
	lu := mat.MulNaive(l, u)
	res := mat.MaxAbsDiff(pa, lu) / math.Max(1, a.NormMax())
	if res > 1e-10 {
		t.Fatalf("PA != LU, residual %g", res)
	}
}

func TestGetf2Square(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	factorAndCheck(t, mat.Random(20, 20, rng), Getf2)
}

func TestGetf2TallPanel(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	factorAndCheck(t, mat.Random(57, 8, rng), Getf2)
}

func TestRecursiveLUMatchesShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][2]int{{20, 20}, {100, 40}, {64, 64}, {33, 17}, {130, 50}} {
		factorAndCheck(t, mat.Random(dims[0], dims[1], rng), RecursiveLU)
	}
}

func TestRecursiveLUPartialPivotingGrowth(t *testing.T) {
	// Partial pivoting keeps |L| <= 1.
	rng := rand.New(rand.NewSource(8))
	a := mat.Random(80, 40, rng)
	work := a.Clone()
	pivots := make([]int, 40)
	if err := RecursiveLU(view(work), pivots); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 40; j++ {
		for i := j + 1; i < 80; i++ {
			if math.Abs(work.At(i, j)) > 1+1e-12 {
				t.Fatalf("|L(%d,%d)| = %g > 1: pivoting broken", i, j, work.At(i, j))
			}
		}
	}
}

func TestGetf2Singular(t *testing.T) {
	a := mat.New(4, 4) // all zeros
	pivots := make([]int, 4)
	if err := Getf2(view(a), pivots); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestGetrfNoPiv(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := mat.RandomDiagDominant(16, rng)
	work := a.Clone()
	if err := GetrfNoPiv(view(work)); err != nil {
		t.Fatal(err)
	}
	l := mat.Eye(16)
	u := mat.New(16, 16)
	for j := 0; j < 16; j++ {
		for i := 0; i < 16; i++ {
			if i > j {
				l.Set(i, j, work.At(i, j))
			} else {
				u.Set(i, j, work.At(i, j))
			}
		}
	}
	lu := mat.MulNaive(l, u)
	if mat.MaxAbsDiff(lu, a) > 1e-9*a.NormMax() {
		t.Fatalf("no-pivot LU wrong: %g", mat.MaxAbsDiff(lu, a))
	}
}

func TestGetrfNoPivZeroDiag(t *testing.T) {
	a := mat.New(3, 3)
	a.Set(0, 0, 1)
	// (1,1) stays zero after first elimination
	if err := GetrfNoPiv(view(a)); err == nil {
		t.Fatal("expected zero-diagonal error")
	}
}

func TestLaswpInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := mat.Random(10, 6, rng)
	orig := a.Clone()
	pivots := []int{3, 5, 2, 9, 4, 5}
	Laswp(view(a), pivots, 0, len(pivots))
	LaswpInverse(view(a), pivots, 0, len(pivots))
	if mat.MaxAbsDiff(a, orig) != 0 {
		t.Fatal("laswp inverse is not an inverse")
	}
}

func TestIdamaxCol(t *testing.T) {
	a := mat.New(5, 2)
	a.Set(0, 1, -9)
	a.Set(3, 1, 8)
	if got := IdamaxCol(view(a), 1, 0); got != 0 {
		t.Fatalf("idamax got %d want 0", got)
	}
	if got := IdamaxCol(view(a), 1, 1); got != 3 {
		t.Fatalf("idamax from 1 got %d want 3", got)
	}
}

func TestCopyAndNormMax(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := mat.Random(7, 7, rng)
	b := mat.New(7, 7)
	Copy(view(b), view(a))
	if mat.MaxAbsDiff(a, b) != 0 {
		t.Fatal("copy mismatch")
	}
	if NormMax(view(a)) != a.NormMax() {
		t.Fatal("NormMax mismatch")
	}
}

func TestSubView(t *testing.T) {
	a := mat.New(6, 6)
	a.Set(2, 3, 5)
	v := view(a).Sub(2, 5, 3, 6)
	if v.At(0, 0) != 5 {
		t.Fatal("Sub wrong offset")
	}
	v.Set(1, 1, 7)
	if a.At(3, 4) != 7 {
		t.Fatal("Sub must alias")
	}
}

// Property: recursive LU and unblocked GEPP produce the same U factor
// up to row permutation differences — we verify both reconstruct PA.
func TestRecursiveLUEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 17 + int(rng.Int31n(40))
		n := 5 + int(rng.Int31n(17))
		if m < n {
			m, n = n, m
		}
		a := mat.Random(m, n, rng)

		check := func(factor func(View, []int) error) float64 {
			work := a.Clone()
			pivots := make([]int, n)
			if err := factor(view(work), pivots); err != nil {
				return math.Inf(1)
			}
			perm := make([]int, m)
			for i := range perm {
				perm[i] = i
			}
			for k, p := range pivots {
				perm[k], perm[p] = perm[p], perm[k]
			}
			pa := mat.PermuteRows(a, perm)
			l := mat.New(m, n)
			u := mat.New(n, n)
			for j := 0; j < n; j++ {
				for i := 0; i < m; i++ {
					v := work.At(i, j)
					if i > j {
						l.Set(i, j, v)
					} else {
						u.Set(i, j, v)
					}
				}
			}
			for i := 0; i < n; i++ {
				l.Set(i, i, 1)
			}
			return mat.MaxAbsDiff(pa, mat.MulNaive(l, u))
		}
		return check(Getf2) < 1e-10 && check(RecursiveLU) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPotf2ReconstructsSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 24
	b := mat.Random(n, n, rng)
	a := mat.New(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += b.At(k, i) * b.At(k, j)
			}
			a.Set(i, j, s)
		}
		a.Set(j, j, a.At(j, j)+float64(n))
	}
	work := a.Clone()
	if err := Potf2(view(work)); err != nil {
		t.Fatal(err)
	}
	// Check A = L L^T on the lower triangle.
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			s := 0.0
			for k := 0; k <= j; k++ {
				s += work.At(i, k) * work.At(j, k)
			}
			if math.Abs(s-a.At(i, j)) > 1e-9*a.NormMax() {
				t.Fatalf("LL^T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestPotf2RejectsIndefinite(t *testing.T) {
	a := mat.Eye(4)
	a.Set(2, 2, -1)
	if err := Potf2(view(a)); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
}

func TestTrsmRightLowerTrans(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	n, m := 10, 7
	l := mat.Random(n, n, rng)
	for i := 0; i < n; i++ {
		l.Set(i, i, 2+rng.Float64())
		for j := i + 1; j < n; j++ {
			l.Set(i, j, 0)
		}
	}
	b := mat.Random(m, n, rng)
	x := b.Clone()
	TrsmRightLowerTrans(view(l), view(x))
	// Verify X * L^T = B.
	lt := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			lt.Set(i, j, l.At(j, i))
		}
	}
	xlt := mat.MulNaive(x, lt)
	if mat.MaxAbsDiff(xlt, b) > 1e-10 {
		t.Fatalf("X L^T != B: %g", mat.MaxAbsDiff(xlt, b))
	}
}

func TestGemmNT(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	m, n, k := 9, 6, 5
	a := mat.Random(m, k, rng)
	b := mat.Random(n, k, rng)
	c := mat.Random(m, n, rng)
	want := c.Clone()
	bt := mat.New(k, n)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	abt := mat.MulNaive(a, bt)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			want.Set(i, j, want.At(i, j)-abt.At(i, j))
		}
	}
	GemmNT(view(c), view(a), view(b))
	if mat.MaxAbsDiff(c, want) > 1e-11 {
		t.Fatalf("gemmNT mismatch %g", mat.MaxAbsDiff(c, want))
	}
}

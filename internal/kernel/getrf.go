package kernel

import (
	"errors"
	"fmt"
	"math"
)

// This file is the blocked panel-factorization layer: a register-tiled
// GETRF that replaces scalar Getf2 on the panel critical path. The
// factorization is decomposed into mr-column micro-panels:
//
//   - getf2Micro factors one m x w micro-panel (w <= mr) with a
//     two-pass vectorizable idamax over the pivot column and unrolled
//     rank-1 sweeps over the remaining micro columns;
//   - the w pivot swaps are replayed on the columns left and right of
//     the micro-panel (LAPACK's dlaswp step);
//   - the U rows of the trailing columns are solved by the naive
//     forward substitution (w x w unit triangle, w <= mr);
//   - the rank-w trailing update C -= L21 * U12 runs through the packed
//     register-tiled sweep in panelkernel*.go, reusing the GEMM packing
//     formats and workspace pool.
//
// Every path performs, per matrix element, exactly the multiply/
// subtract sequence of scalar Getf2 in the same k order: the panel
// kernels use separate VMULPD/VSUBPD (never FMA, which would fuse the
// rounding) and each rank-1 step is applied individually instead of
// being accumulated dot-product style. The Go compiler does not fuse
// x*y into +/- on amd64 either, so the blocked factorization produces
// pivots AND values bit-identical to Getf2 — the property the tests pin
// and the reason piv tournaments behave identically on every path.

// SingularError reports an exactly singular pivot column. K is the
// number of leading columns that were fully factored before the failure
// (the "established prefix"): piv[0:K] holds their pivot rows and is
// valid, while the matrix contents and piv entries from column K on are
// unspecified. Callers that can proceed with a partial factorization —
// the tournament-pivoting fallback in internal/piv — recover K with
// errors.As instead of aborting.
type SingularError struct {
	// K counts the factored leading columns; the zero pivot was met in
	// column K.
	K int
}

func (e *SingularError) Error() string {
	return fmt.Sprintf("kernel: singular pivot column %d", e.K)
}

// Getrf computes the same LU factorization with partial pivoting as
// Getf2 — bit-identical pivots and values — using the blocked
// micro-panel algorithm above, so a tall panel runs at a large fraction
// of packed-GEMM speed instead of scalar speed. piv follows the Getf2
// convention. On an exactly singular pivot column it returns a
// *SingularError carrying the established prefix length.
//
//hsd:bitident
func Getrf(a View, piv []int) error {
	ensureTuned()
	m, n := a.Rows, a.Cols
	steps := min(m, n)
	if len(piv) < steps {
		panic("kernel: getrf piv too short")
	}
	if useNaiveKernels || !panelBlockedWorthwhile(m, n) {
		return Getf2(a, piv)
	}
	for j0 := 0; j0 < steps; j0 += pmr {
		w := min(pmr, steps-j0)
		micro := a.Sub(j0, m, j0, j0+w)
		if err := getf2Micro(micro, piv[j0:j0+w]); err != nil {
			var se *SingularError
			if !errors.As(err, &se) {
				return err
			}
			// Globalize the established prefix: offset its pivot rows and
			// report the failing column's global index. The matrix is left
			// partially factored (unspecified beyond the prefix).
			for k := j0; k < j0+se.K; k++ {
				piv[k] += j0
			}
			return &SingularError{K: j0 + se.K}
		}
		// Replay the micro-panel's swaps on the columns to its left
		// (finished L) and right (not yet updated). Swapping the right
		// part before the trailing update commutes with it: the update
		// multipliers move with their rows. Empty sides stay nil views —
		// Sub at the past-the-end column would slice beyond a tight
		// backing array.
		var left, right View
		if j0 > 0 {
			left = a.Sub(0, m, 0, j0)
		}
		if j0+w < n {
			right = a.Sub(0, m, j0+w, n)
		}
		for k := j0; k < j0+w; k++ {
			piv[k] += j0
			if p := piv[k]; p != k {
				swapRows(left, k, p)
				swapRows(right, k, p)
			}
		}
		if j0+w < n {
			// U rows of the trailing columns: forward substitution with the
			// w x w unit lower triangle — the same multiply/subtract
			// sequence Getf2's rank-1 steps apply to rows j0..j0+w.
			l11 := a.Sub(j0, j0+w, j0, j0+w)
			u12 := a.Sub(j0, j0+w, j0+w, n)
			trsmLowerLeftUnitNaive(l11, u12)
			if j0+w < m {
				// Rank-w trailing update through the register-tiled sweep.
				panelUpdate(a.Sub(j0+w, m, j0+w, n), a.Sub(j0+w, m, j0, j0+w), u12)
			}
		}
	}
	return nil
}

// getf2Micro factors the m x w micro-panel (w = a.Cols <= pmr <= m) in
// place, unblocked right-looking like Getf2 but with an unrolled
// two-pass pivot search and 4-way unrolled scale/update loops. piv
// receives w local pivot rows. On a zero pivot column it returns a
// *SingularError with the local prefix length.
//
//hsd:bitident
func getf2Micro(a View, piv []int) error {
	m, w := a.Rows, a.Cols
	for k := 0; k < w; k++ {
		col := a.Data[k*a.Stride:]
		p, vmax := idamaxRange(col, k, m)
		piv[k] = p
		//hsd:allow bitident exact-zero pivot test: singularity is an exact 0.0, matching Getf2
		if vmax == 0 {
			return &SingularError{K: k}
		}
		if p != k {
			swapRows(a, k, p)
		}
		inv := 1 / col[k]
		scaleVec(col[k+1:m], inv)
		for j := k + 1; j < w; j++ {
			cj := a.Data[j*a.Stride:]
			rank1Sub(cj[k+1:m], col[k+1:m], cj[k])
		}
	}
	return nil
}

// idamaxRange returns the index of the first occurrence of the maximum
// |col[i]| over i in [k, m), and that maximum. Overridden with an AVX2
// VMAXPD+mask variant on amd64 (idamax_amd64.go) that preserves the
// same first-max/NaN semantics exactly.
var idamaxRange = idamaxRangeGeneric

// idamaxRangeGeneric is the portable two-pass search — an unrolled max
// reduction, then a scan for its first hit — which keeps the hot pass
// branch-light while reproducing exactly the first-strict-max semantics
// of the scalar scan in Getf2 (NaNs lose every comparison in both
// formulations).
//
//hsd:bitident
func idamaxRangeGeneric(col []float64, k, m int) (int, float64) {
	vmax := math.Abs(col[k])
	i := k + 1
	// Strict > comparisons (not math.Max) so NaNs lose every contest,
	// exactly as in the scalar scan.
	var m0, m1, m2, m3 float64
	for ; i+4 <= m; i += 4 {
		if v := math.Abs(col[i]); v > m0 {
			m0 = v
		}
		if v := math.Abs(col[i+1]); v > m1 {
			m1 = v
		}
		if v := math.Abs(col[i+2]); v > m2 {
			m2 = v
		}
		if v := math.Abs(col[i+3]); v > m3 {
			m3 = v
		}
	}
	for ; i < m; i++ {
		if v := math.Abs(col[i]); v > m0 {
			m0 = v
		}
	}
	if m1 > m0 {
		m0 = m1
	}
	if m2 > m0 {
		m0 = m2
	}
	if m3 > m0 {
		m0 = m3
	}
	if m0 > vmax {
		for i = k + 1; i < m; i++ {
			//hsd:allow bitident first-equal rescan: |col[i]| hits the reduction's max bit-exactly, == finds its first index
			if math.Abs(col[i]) == m0 {
				return i, m0
			}
		}
	}
	return k, vmax
}

// scaleVec multiplies col by alpha elementwise — the L-column scaling
// of the micro-panel. Overridden with an AVX2 variant on amd64.
var scaleVec = scaleVecGeneric

//hsd:bitident
func scaleVecGeneric(col []float64, alpha float64) {
	i := 0
	for ; i+4 <= len(col); i += 4 {
		col[i] *= alpha
		col[i+1] *= alpha
		col[i+2] *= alpha
		col[i+3] *= alpha
	}
	for ; i < len(col); i++ {
		col[i] *= alpha
	}
}

// rank1Sub applies c[i] -= l[i]*u — one rank-1 column of the
// micro-panel's trailing update, with the same multiply-then-subtract
// rounding as Getf2's inner loop. Overridden with an AVX2 variant on
// amd64.
var rank1Sub = rank1SubGeneric

//hsd:bitident
func rank1SubGeneric(c, l []float64, u float64) {
	i := 0
	for ; i+4 <= len(c); i += 4 {
		c[i] -= l[i] * u
		c[i+1] -= l[i+1] * u
		c[i+2] -= l[i+2] * u
		c[i+3] -= l[i+3] * u
	}
	for ; i < len(c); i++ {
		c[i] -= l[i] * u
	}
}

// panelUpdate computes C -= A*B where A is m x w, B w x n, C m x n and
// w <= pmr, applying the w rank-1 steps to each element sequentially in
// ascending k order (never as an accumulated dot product), which keeps
// the blocked factorization bit-identical to Getf2. A and B are packed
// into the GEMM workspace formats so the register-tiled panel kernel
// streams pmr x pnr tiles of C with unit stride. The panel tile is
// fixed per platform (see tuning.go) — the tuner moves only the GEMM
// tile, so the bit-identity contract never depends on the profile.
//
//hsd:bitident
func panelUpdate(c, a, b View) {
	m, n, w := c.Rows, c.Cols, a.Cols
	ws := getWorkspace()
	defer putWorkspace(ws)
	for jc := 0; jc < n; jc += nc {
		ncLen := min(nc, n-jc)
		packB(ws.bp, b, 0, jc, w, ncLen, false, pnr)
		for ic := 0; ic < m; ic += mc {
			mcLen := min(mc, m-ic)
			packA(ws.ap, a, ic, 0, mcLen, w, pmr)
			panelMacro(c, ws, ic, jc, mcLen, ncLen, w)
		}
	}
}

// panelMacro sweeps pmr x pnr register tiles of C over one packed
// (A, B) block pair. Interior tiles go straight to the panel kernel;
// edge tiles are staged through a dense scratch tile (ldc = pmr) so the
// kernel never branches on shape — padded packed lanes contribute
// exact zero updates and are masked at write-back.
//
//hsd:bitident
func panelMacro(c View, ws *workspace, ic, jc, mcLen, ncLen, w int) {
	var scratch [maxMR * maxNR]float64
	for jr := 0; jr < ncLen; jr += pnr {
		nrLen := min(pnr, ncLen-jr)
		bp := ws.bp[(jr/pnr)*w*pnr:]
		for ir := 0; ir < mcLen; ir += pmr {
			mrLen := min(pmr, mcLen-ir)
			ap := ws.ap[(ir/pmr)*w*pmr:]
			if mrLen == pmr && nrLen == pnr {
				off := (jc+jr)*c.Stride + ic + ir
				panelKernel(w, ap, bp, c.Data[off:], c.Stride)
				continue
			}
			for j := 0; j < nrLen; j++ {
				off := (jc+jr+j)*c.Stride + ic + ir
				copy(scratch[j*pmr:j*pmr+mrLen], c.Data[off:off+mrLen])
			}
			panelKernel(w, ap, bp, scratch[:], pmr)
			for j := 0; j < nrLen; j++ {
				off := (jc+jr+j)*c.Stride + ic + ir
				copy(c.Data[off:off+mrLen], scratch[j*pmr:j*pmr+mrLen])
			}
		}
	}
}

package kernel

// The AVX2 panel kernel updates an 8x4 tile of C in registers: eight
// 256-bit accumulators hold the tile, and each of the w rank-1 steps is
// two packed-A vector loads, four B broadcasts and eight separate
// VMULPD+VSUBPD pairs. FMA is deliberately NOT used: fusing the
// multiply and subtract into one rounding would break the bit-identity
// of the blocked GETRF with scalar Getf2 (the Go compiler performs no
// such fusing on amd64), and the panel sweep's speedup comes from
// register reuse and packing, not from the fused op.

//go:noescape
func panelKernel8x4(w int, ap, bp, c *float64, ldc int)

//go:noescape
func rank1SubAVX2(n int, c, l *float64, u float64)

//go:noescape
func scaleVecAVX2(n int, c *float64, alpha float64)

func init() {
	if cpuSupportsAVX2FMA() {
		pmr, pnr = 8, 4
		panelKernel = panelAVX2
		rank1Sub = rank1SubVec
		scaleVec = scaleVecVec
	}
}

// rank1SubVec adapts the assembly rank-1 column update. The vector
// body and its scalar tail both round multiply and subtract
// separately, matching the portable loop bit for bit.
func rank1SubVec(c, l []float64, u float64) {
	if len(c) == 0 {
		return
	}
	rank1SubAVX2(len(c), &c[0], &l[0], u)
}

// scaleVecVec adapts the assembly column scaling.
func scaleVecVec(col []float64, alpha float64) {
	if len(col) == 0 {
		return
	}
	scaleVecAVX2(len(col), &col[0], alpha)
}

// panelAVX2 adapts the assembly kernel to the panelKernel signature.
func panelAVX2(w int, ap, bp, c []float64, ldc int) {
	if w == 0 {
		return
	}
	panelKernel8x4(w, &ap[0], &bp[0], &c[0], ldc)
}

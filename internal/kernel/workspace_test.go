package kernel

import (
	"runtime"
	"testing"
)

// Reserve must retarget the free list to the current run's worker
// count in both directions: a wide run must not pin its buffer sets
// (~1.3 MiB each) after a narrow run starts.
func TestReserveDecaysCap(t *testing.T) {
	defer Reserve(runtime.NumCPU()) // restore a sane default for other tests

	Reserve(6)
	wsMu.Lock()
	free, cap6 := len(wsFree), wsCap
	wsMu.Unlock()
	if free != 6 || cap6 != 6 {
		t.Fatalf("after Reserve(6): free=%d cap=%d, want 6/6", free, cap6)
	}

	Reserve(1)
	wsMu.Lock()
	free, cap1 := len(wsFree), wsCap
	wsMu.Unlock()
	if free != 1 || cap1 != 1 {
		t.Fatalf("after Reserve(1): free=%d cap=%d, want 1/1 (cap must decay)", free, cap1)
	}

	// Buffers returned above the new cap are dropped, not retained.
	a, b := getWorkspace(), getWorkspace()
	putWorkspace(a)
	putWorkspace(b)
	wsMu.Lock()
	free = len(wsFree)
	wsMu.Unlock()
	if free > 1 {
		t.Fatalf("free list grew to %d past the cap of 1", free)
	}
}

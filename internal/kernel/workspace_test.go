package kernel

import (
	"sync"
	"testing"
)

// wsState snapshots the free-list length and the current bound.
func wsState() (free, bound int) {
	wsMu.Lock()
	defer wsMu.Unlock()
	return len(wsFree), wsCapLocked()
}

// The free-list bound must be the SUM of live reservations: a narrow
// run starting while a wide run is in flight must not shrink the bound
// out from under the wide run (the retarget race the old global-cap
// Reserve had), and releases must decay the bound so a wide run's
// ~1.3 MiB-per-worker buffer sets are not pinned forever.
func TestReserveRefcountsOverlappingRuns(t *testing.T) {
	wide := Reserve(6)
	if free, bound := wsState(); free < 6 || bound != 6 {
		t.Fatalf("after Reserve(6): free=%d bound=%d, want >=6/6", free, bound)
	}

	// Overlapping narrow run: bound grows to the sum, never shrinks,
	// and the buffer population is topped up to the sum so both runs
	// find their full share.
	narrow := Reserve(1)
	if free, bound := wsState(); bound != 7 || free < 7 {
		t.Fatalf("overlapping Reserve(1): free=%d bound=%d, want >=7/7 (sum of live reservations)", free, bound)
	}

	narrow.Release()
	if _, bound := wsState(); bound != 6 {
		t.Fatalf("after narrow release: bound=%d, want 6 (wide run still live)", bound)
	}

	wide.Release()
	wide.Release() // idempotent
	if free, bound := wsState(); bound != wsDefaultCap || free > bound {
		t.Fatalf("after all releases: free=%d bound=%d, want bound=%d and free<=bound",
			free, bound, wsDefaultCap)
	}
}

// A second reservation taken while the first run's buffers are checked
// out must still find its full share on the free list.
func TestReserveTopsUpPastCheckedOut(t *testing.T) {
	first := Reserve(2)
	a, b := getWorkspace(), getWorkspace() // first run's workers hold theirs
	second := Reserve(2)
	if free, _ := wsState(); free < 2 {
		t.Fatalf("second Reserve(2) with 2 checked out: free=%d, want >=2", free)
	}
	putWorkspace(a)
	putWorkspace(b)
	first.Release()
	second.Release()
}

// Buffers returned above the bound are dropped, not retained.
func TestReleaseTrimsFreeList(t *testing.T) {
	r := Reserve(4)
	a, b := getWorkspace(), getWorkspace()
	r.Release()
	putWorkspace(a)
	putWorkspace(b)
	if free, bound := wsState(); free > bound {
		t.Fatalf("free list %d exceeds bound %d after release", free, bound)
	}
}

// Concurrent Reserve/Release cycles with checkouts in between must keep
// the accounting consistent (run under -race).
func TestReserveConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				r := Reserve(1 + n%4)
				w := getWorkspace()
				putWorkspace(w)
				r.Release()
			}
		}(i)
	}
	wg.Wait()
	wsMu.Lock()
	reserved := wsReserved
	wsMu.Unlock()
	if reserved != 0 {
		t.Fatalf("leaked %d reservations", reserved)
	}
}

package kernel

import (
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// withProfile applies p for the duration of f, restoring the previously
// active profile afterwards. ensureTuned is spent first so the Once
// cannot fire mid-test and overwrite the applied profile.
func withProfile(t *testing.T, p Profile, f func()) {
	t.Helper()
	ensureTuned()
	prev, _ := ActiveProfile()
	if err := applyProfile(p); err != nil {
		t.Fatalf("applyProfile(%+v): %v", p, err)
	}
	defer func() {
		if err := applyProfile(prev); err != nil {
			t.Fatalf("restore profile: %v", err)
		}
	}()
	f()
}

// testProfiles returns one profile per registered micro-kernel at the
// static blocking, plus odd-blocking variants of the default kernel —
// the grid the bit-identity and accuracy tests sweep.
func testProfiles() []Profile {
	var out []Profile
	for name, impl := range microImpls {
		p := defaultProfile()
		p.Kernel, p.MR, p.NR = name, impl.mr, impl.nr
		out = append(out, p)
	}
	for _, blk := range [][3]int{{72, 48, 96}, {328, 384, 2048}} {
		p := defaultProfile()
		p.KC, p.MC, p.NC = blk[0], blk[1], blk[2]
		out = append(out, p)
	}
	return out
}

// TestGetrfBitIdenticalAcrossProfiles pins the panel layer's invariant
// under the tuner: whatever GEMM profile is active — any registered
// micro-kernel, any blocking — the blocked Getrf produces pivots and
// values EXACTLY equal to scalar Getf2, because the panel tile (pmr x
// pnr) and its separate multiply/subtract rounding never move with the
// profile.
func TestGetrfBitIdenticalAcrossProfiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := randView(rng, 193, 61)
	for _, p := range testProfiles() {
		p := p
		name := fmt.Sprintf("%s-kc%d-mc%d-nc%d", p.Kernel, p.KC, p.MC, p.NC)
		t.Run(name, func(t *testing.T) {
			withProfile(t, p, func() {
				blocked := cloneView(src)
				scalar := cloneView(src)
				pivB := make([]int, 61)
				pivS := make([]int, 61)
				if err := Getrf(blocked, pivB); err != nil {
					t.Fatal(err)
				}
				if err := Getf2(scalar, pivS); err != nil {
					t.Fatal(err)
				}
				for i := range pivB {
					if pivB[i] != pivS[i] {
						t.Fatalf("pivot %d: blocked %d scalar %d", i, pivB[i], pivS[i])
					}
				}
				if d := maxAbsDiffBacking(blocked, scalar); d != 0 {
					t.Fatalf("values diverge: max |diff| = %g (want exactly 0)", d)
				}
			})
		})
	}
}

// TestGemmAccurateAcrossProfiles sweeps the same profile grid over the
// packed GEMM dispatcher against the naive oracle. Packed results vary
// bitwise with kc (the accumulator flushes per kc block), so this is a
// tolerance check, not bit-identity.
func TestGemmAccurateAcrossProfiles(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randView(rng, 137, 93)
	b := randView(rng, 93, 121)
	c0 := randView(rng, 137, 121)
	want := cloneView(c0)
	gemmNaive(want, a, b)
	for _, p := range testProfiles() {
		p := p
		name := fmt.Sprintf("%s-kc%d-mc%d-nc%d", p.Kernel, p.KC, p.MC, p.NC)
		t.Run(name, func(t *testing.T) {
			withProfile(t, p, func() {
				c := cloneView(c0)
				Gemm(c, a, b)
				if d := maxAbsDiffBacking(c, want); d > gemmTol(want) {
					t.Fatalf("max |diff| = %g > tol %g", d, gemmTol(want))
				}
			})
		})
	}
}

// TestApplyProfileRejectsGarbage: unknown kernels and out-of-range
// blocking must be refused, leaving the active configuration untouched.
func TestApplyProfileRejectsGarbage(t *testing.T) {
	ensureTuned()
	before, _ := ActiveProfile()
	bad := []Profile{
		func() Profile { p := defaultProfile(); p.Kernel = "no-such-kernel"; return p }(),
		func() Profile { p := defaultProfile(); p.KC = 8; return p }(),
		func() Profile { p := defaultProfile(); p.NC = 100000; return p }(),
	}
	for _, p := range bad {
		if err := applyProfile(p); err == nil {
			t.Errorf("applyProfile(%+v) accepted garbage", p)
		}
	}
	after, _ := ActiveProfile()
	if before != after {
		t.Fatalf("rejected profiles mutated the active one: %+v -> %+v", before, after)
	}
}

// TestProfilePersistenceRoundtrip: store/load through HSD_TUNE_DIR is
// lossless, and stale version/signature/kernel entries are refused so a
// format bump forces a re-search instead of applying garbage.
func TestProfilePersistenceRoundtrip(t *testing.T) {
	t.Setenv("HSD_TUNE_DIR", t.TempDir())
	p := defaultProfile()
	p.Signature = cpuSignature()
	p.KC, p.MC, p.NC = 72, 48, 96
	p.GFLOPS = 12.5
	storeProfile(p)
	got, ok := loadProfile(p.Signature)
	if !ok {
		t.Fatal("stored profile did not load")
	}
	if got != p {
		t.Fatalf("roundtrip mismatch: stored %+v loaded %+v", p, got)
	}
	if _, ok := loadProfile("0123456789abcdef"); ok {
		t.Fatal("loaded a profile under the wrong signature")
	}
	stale := p
	stale.Version = profileVersion + 1
	storeProfile(stale)
	if _, ok := loadProfile(p.Signature); ok {
		t.Fatal("loaded a profile with a stale version")
	}
	stale = p
	stale.Kernel = "retired-kernel"
	storeProfile(stale)
	if _, ok := loadProfile(p.Signature); ok {
		t.Fatal("loaded a profile naming an unregistered kernel")
	}
}

// TestTunedProfileDeterministic: the first resolution searches and
// persists; every later resolution in the same cache dir loads the
// identical profile without re-benchmarking — the property that makes
// tuned runs reproducible across processes on one machine.
func TestTunedProfileDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("micro-benchmark search in -short mode")
	}
	t.Setenv("HSD_TUNE_DIR", t.TempDir())
	ensureTuned()
	prev, _ := ActiveProfile()
	defer func() {
		if err := applyProfile(prev); err != nil {
			t.Fatalf("restore profile: %v", err)
		}
	}()
	p1, src1 := tunedProfile()
	if src1 != "searched" {
		t.Fatalf("cold resolution source = %q, want searched", src1)
	}
	p2, src2 := tunedProfile()
	if src2 != "persisted" {
		t.Fatalf("warm resolution source = %q, want persisted", src2)
	}
	if p1 != p2 {
		t.Fatalf("warm profile differs from searched one:\n  searched  %+v\n  persisted %+v", p1, p2)
	}
}

// TestCandidateProfilesRespectBounds: every cache geometry, including
// absurd ones, must produce candidates applyProfile accepts.
func TestCandidateProfilesRespectBounds(t *testing.T) {
	ensureTuned()
	prev, _ := ActiveProfile()
	defer applyProfile(prev)
	geoms := []caches{
		defaultCaches,
		{L1: 16 << 10, L2: 128 << 10, L3: 1 << 20},
		{L1: 1 << 20, L2: 64 << 20, L3: 512 << 20},
		{L1: 1, L2: 1, L3: 1},
	}
	for _, c := range geoms {
		for _, p := range candidateProfiles(c) {
			if err := applyProfile(p); err != nil {
				t.Errorf("caches %+v produced rejected candidate %+v: %v", c, p, err)
			}
		}
	}
}

func TestParseCacheSize(t *testing.T) {
	cases := map[string]int64{
		"32K": 32 << 10, "1024K": 1 << 20, "8M": 8 << 20,
		"1G": 1 << 30, "977": 977, "": 0, "bogus": 0, "12Q": 0,
	}
	for in, want := range cases {
		if got := parseCacheSize(in); got != want {
			t.Errorf("parseCacheSize(%q) = %d, want %d", in, got, want)
		}
	}
}

// TestTuneOffPinsStaticDefaults re-executes the test binary with
// HSD_TUNE=off and verifies the escape hatch: no probe, no search, the
// static default profile active.
func TestTuneOffPinsStaticDefaults(t *testing.T) {
	if os.Getenv("HSD_TUNE_OFF_HELPER") == "1" {
		p, src := ActiveProfile()
		d := defaultProfile()
		if src != "static" || p.Kernel != d.Kernel || p.KC != defaultKC || p.MC != defaultMC || p.NC != defaultNC {
			fmt.Printf("HSD_TUNE=off left profile %+v (source %q)\n", p, src)
			os.Exit(1)
		}
		os.Exit(0)
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run", "^TestTuneOffPinsStaticDefaults$", "-test.v")
	cmd.Env = append(os.Environ(),
		"HSD_TUNE=off", "HSD_TUNE_OFF_HELPER=1",
		"HSD_TUNE_DIR="+filepath.Join(t.TempDir(), "unused"))
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("subprocess: %v\n%s", err, out)
	}
}

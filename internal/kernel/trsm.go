package kernel

import "fmt"

// The triangular solves are blocked: the triangle is carved into
// trsmBlock-wide diagonal systems solved by the naive kernels, and all
// off-diagonal mass becomes rank-trsmBlock GEMM updates that ride the
// packed path. The naive variants are retained both as the diagonal
// micro-solvers and as the property-test oracles.

// TrsmLowerLeftUnit solves L*X = B in place (B <- L^{-1} B), where L is
// unit lower triangular n x n and B is n x m. This is the "task U"
// kernel: U_KJ = L_KK^{-1} A_KJ.
func TrsmLowerLeftUnit(l, b View) {
	n, m := b.Rows, b.Cols
	if l.Rows != n || l.Cols != n {
		panic(fmt.Sprintf("kernel: trsmL shape mismatch L %dx%d, B %dx%d", l.Rows, l.Cols, n, m))
	}
	if useNaiveKernels || n <= trsmBlock {
		trsmLowerLeftUnitNaive(l, b)
		return
	}
	for k0 := 0; k0 < n; k0 += trsmBlock {
		k1 := min(k0+trsmBlock, n)
		trsmLowerLeftUnitNaive(l.Sub(k0, k1, k0, k1), b.Sub(k0, k1, 0, m))
		if k1 < n {
			// B2 -= L21 * X1.
			Gemm(b.Sub(k1, n, 0, m), l.Sub(k1, n, k0, k1), b.Sub(k0, k1, 0, m))
		}
	}
}

// TrsmLowerLeftUnitNaive is the unblocked reference forward solve.
func TrsmLowerLeftUnitNaive(l, b View) {
	n, m := b.Rows, b.Cols
	if l.Rows != n || l.Cols != n {
		panic(fmt.Sprintf("kernel: trsmL shape mismatch L %dx%d, B %dx%d", l.Rows, l.Cols, n, m))
	}
	trsmLowerLeftUnitNaive(l, b)
}

// trsmLowerLeftUnitNaive is the micro-solver of the blocked forward
// solve and of the micro-panel U-row solve inside Getrf, so it shares
// the panel layer's rounding contract.
//
//hsd:bitident
func trsmLowerLeftUnitNaive(l, b View) {
	n, m := b.Rows, b.Cols
	for j := 0; j < m; j++ {
		bj := b.Data[j*b.Stride : j*b.Stride+n]
		for k := 0; k < n; k++ {
			// No skip on zero b(k,j): the subtraction must stay IEEE-exact
			// so Inf/NaN in L propagate (see gemmNaive).
			bkj := bj[k]
			lk := l.Data[k*l.Stride:]
			for i := k + 1; i < n; i++ {
				bj[i] -= lk[i] * bkj
			}
		}
	}
}

// TrsmLowerLeft solves L*X = B in place (B <- L^{-1} B), where L is
// non-unit lower triangular n x n and B is n x m — the diagonal task of
// the blocked forward solve sweep with a Cholesky factor (whose L
// carries a real diagonal, unlike LU's unit L).
func TrsmLowerLeft(l, b View) {
	n, m := b.Rows, b.Cols
	if l.Rows != n || l.Cols != n {
		panic(fmt.Sprintf("kernel: trsmLL shape mismatch L %dx%d, B %dx%d", l.Rows, l.Cols, n, m))
	}
	if useNaiveKernels || n <= trsmBlock {
		trsmLowerLeftNaive(l, b)
		return
	}
	for k0 := 0; k0 < n; k0 += trsmBlock {
		k1 := min(k0+trsmBlock, n)
		trsmLowerLeftNaive(l.Sub(k0, k1, k0, k1), b.Sub(k0, k1, 0, m))
		if k1 < n {
			// B2 -= L21 * X1.
			Gemm(b.Sub(k1, n, 0, m), l.Sub(k1, n, k0, k1), b.Sub(k0, k1, 0, m))
		}
	}
}

// TrsmLowerLeftNaive is the unblocked reference non-unit forward solve.
func TrsmLowerLeftNaive(l, b View) {
	n, m := b.Rows, b.Cols
	if l.Rows != n || l.Cols != n {
		panic(fmt.Sprintf("kernel: trsmLL shape mismatch L %dx%d, B %dx%d", l.Rows, l.Cols, n, m))
	}
	trsmLowerLeftNaive(l, b)
}

func trsmLowerLeftNaive(l, b View) {
	n, m := b.Rows, b.Cols
	for j := 0; j < m; j++ {
		bj := b.Data[j*b.Stride : j*b.Stride+n]
		for k := 0; k < n; k++ {
			lkk := l.Data[k*l.Stride+k]
			if lkk == 0 {
				panic("kernel: trsmLL singular diagonal")
			}
			bkj := bj[k] / lkk
			bj[k] = bkj
			lk := l.Data[k*l.Stride:]
			for i := k + 1; i < n; i++ {
				bj[i] -= lk[i] * bkj
			}
		}
	}
}

// TrsmUpperLeft solves U*X = B in place (B <- U^{-1} B), where U is
// upper triangular (non-unit) n x n and B is n x m — the diagonal task
// of the blocked backward solve sweep. Diagonal systems are carved
// bottom-up so the off-diagonal mass rides Gemm.
func TrsmUpperLeft(u, b View) {
	n, m := b.Rows, b.Cols
	if u.Rows != n || u.Cols != n {
		panic(fmt.Sprintf("kernel: trsmUL shape mismatch U %dx%d, B %dx%d", u.Rows, u.Cols, n, m))
	}
	if useNaiveKernels || n <= trsmBlock {
		trsmUpperLeftNaive(u, b)
		return
	}
	for k1 := n; k1 > 0; k1 -= trsmBlock {
		k0 := max(k1-trsmBlock, 0)
		trsmUpperLeftNaive(u.Sub(k0, k1, k0, k1), b.Sub(k0, k1, 0, m))
		if k0 > 0 {
			// B0 -= U01 * X1.
			Gemm(b.Sub(0, k0, 0, m), u.Sub(0, k0, k0, k1), b.Sub(k0, k1, 0, m))
		}
	}
}

// TrsmUpperLeftNaive is the unblocked reference backward solve.
func TrsmUpperLeftNaive(u, b View) {
	n, m := b.Rows, b.Cols
	if u.Rows != n || u.Cols != n {
		panic(fmt.Sprintf("kernel: trsmUL shape mismatch U %dx%d, B %dx%d", u.Rows, u.Cols, n, m))
	}
	trsmUpperLeftNaive(u, b)
}

func trsmUpperLeftNaive(u, b View) {
	n, m := b.Rows, b.Cols
	for j := 0; j < m; j++ {
		bj := b.Data[j*b.Stride : j*b.Stride+n]
		for k := n - 1; k >= 0; k-- {
			ukk := u.Data[k*u.Stride+k]
			if ukk == 0 {
				panic("kernel: trsmUL singular diagonal")
			}
			bkj := bj[k] / ukk
			bj[k] = bkj
			uk := u.Data[k*u.Stride:]
			for i := 0; i < k; i++ {
				bj[i] -= uk[i] * bkj
			}
		}
	}
}

// TrsmUpperRight solves X*U = B in place (B <- B U^{-1}), where U is
// upper triangular (non-unit) n x n and B is m x n. This is the
// "task L" kernel: L_IK = A_IK U_KK^{-1}.
func TrsmUpperRight(u, b View) {
	m, n := b.Rows, b.Cols
	if u.Rows != n || u.Cols != n {
		panic(fmt.Sprintf("kernel: trsmU shape mismatch U %dx%d, B %dx%d", u.Rows, u.Cols, m, n))
	}
	if useNaiveKernels || n <= trsmBlock {
		trsmUpperRightNaive(u, b)
		return
	}
	for j0 := 0; j0 < n; j0 += trsmBlock {
		j1 := min(j0+trsmBlock, n)
		trsmUpperRightNaive(u.Sub(j0, j1, j0, j1), b.Sub(0, m, j0, j1))
		if j1 < n {
			// B2 -= X1 * U12.
			Gemm(b.Sub(0, m, j1, n), b.Sub(0, m, j0, j1), u.Sub(j0, j1, j1, n))
		}
	}
}

// TrsmUpperRightNaive is the unblocked reference right solve.
func TrsmUpperRightNaive(u, b View) {
	m, n := b.Rows, b.Cols
	if u.Rows != n || u.Cols != n {
		panic(fmt.Sprintf("kernel: trsmU shape mismatch U %dx%d, B %dx%d", u.Rows, u.Cols, m, n))
	}
	trsmUpperRightNaive(u, b)
}

func trsmUpperRightNaive(u, b View) {
	m, n := b.Rows, b.Cols
	for j := 0; j < n; j++ {
		bj := b.Data[j*b.Stride : j*b.Stride+m]
		// b_j -= sum_{k<j} b_k * u_kj
		for k := 0; k < j; k++ {
			bk := b.Data[k*b.Stride : k*b.Stride+m]
			axpy(bj, bk, -u.Data[j*u.Stride+k])
		}
		ujj := u.Data[j*u.Stride+j]
		if ujj == 0 {
			panic("kernel: trsmU singular diagonal")
		}
		inv := 1 / ujj
		for i := range bj {
			bj[i] *= inv
		}
	}
}

// TrsmRightLowerTrans solves X * Lᵀ = B in place (B <- B L^{-T}), with
// L lower triangular non-unit n x n and B m x n — the TRSM variant of
// the tiled Cholesky panel. Off-diagonal updates ride GemmNT.
func TrsmRightLowerTrans(l, b View) {
	m, n := b.Rows, b.Cols
	if l.Rows != n || l.Cols != n {
		panic(fmt.Sprintf("kernel: trsmRLT shape mismatch L %dx%d, B %dx%d", l.Rows, l.Cols, m, n))
	}
	if useNaiveKernels || n <= trsmBlock {
		trsmRightLowerTransNaive(l, b)
		return
	}
	for j0 := 0; j0 < n; j0 += trsmBlock {
		j1 := min(j0+trsmBlock, n)
		trsmRightLowerTransNaive(l.Sub(j0, j1, j0, j1), b.Sub(0, m, j0, j1))
		if j1 < n {
			// B2 -= X1 * L21ᵀ, with L21 = L(j1:n, j0:j1).
			GemmNT(b.Sub(0, m, j1, n), b.Sub(0, m, j0, j1), l.Sub(j1, n, j0, j1))
		}
	}
}

// TrsmRightLowerTransNaive is the unblocked reference solve.
func TrsmRightLowerTransNaive(l, b View) {
	m, n := b.Rows, b.Cols
	if l.Rows != n || l.Cols != n {
		panic(fmt.Sprintf("kernel: trsmRLT shape mismatch L %dx%d, B %dx%d", l.Rows, l.Cols, m, n))
	}
	trsmRightLowerTransNaive(l, b)
}

func trsmRightLowerTransNaive(l, b View) {
	m, n := b.Rows, b.Cols
	for j := 0; j < n; j++ {
		bj := b.Data[j*b.Stride : j*b.Stride+m]
		for k := 0; k < j; k++ {
			bk := b.Data[k*b.Stride : k*b.Stride+m]
			axpy(bj, bk, -l.Data[k*l.Stride+j]) // L[j,k]
		}
		ljj := l.Data[j*l.Stride+j]
		if ljj == 0 {
			panic("kernel: trsmRLT singular diagonal")
		}
		inv := 1 / ljj
		for i := range bj {
			bj[i] *= inv
		}
	}
}
